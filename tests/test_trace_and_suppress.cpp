/**
 * @file
 * Tests for the episode tracer and the §6.3 SuppressBPOnNonBr semantics
 * on the covert channels: P2 keeps working against branch victims on
 * Zen 2, dies against non-branch victims there, and is never affected
 * on Zen 1 (the bit is unsupported).
 */

#include "attack/covert.hpp"
#include "attack/testbed.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace phantom::attack {
namespace {

cpu::MicroarchConfig
quiet(cpu::MicroarchConfig cfg)
{
    cfg.noise = mem::NoiseConfig{};
    return cfg;
}

// ---- Episode tracer ----------------------------------------------------------

TEST(EpisodeTrace, RecordsPhantomEpisode)
{
    Testbed bed(quiet(cpu::zen2()));
    bed.syscall(os::kSysGetpid);
    PredictionInjector injector(bed);
    VAddr victim = bed.kernel.getpidGadgetVa();
    VAddr target = bed.kernel.imageBase() + 0x3000;
    injector.inject(victim, target);

    bed.machine.enableEpisodeTrace(32);
    bed.syscall(os::kSysGetpid);

    const auto& trace = bed.machine.episodeTrace();
    auto it = std::find_if(trace.begin(), trace.end(), [&](const auto& r) {
        return r.kind == cpu::EpisodeKind::PhantomFrontend &&
               r.sourcePc == victim;
    });
    ASSERT_NE(it, trace.end());
    EXPECT_EQ(it->target, target);
    EXPECT_EQ(it->priv, Privilege::Kernel);
    EXPECT_EQ(it->actualKind, isa::InsnKind::NopN);
    EXPECT_EQ(it->predictedType, isa::BranchType::IndirectJump);
    EXPECT_TRUE(it->fetched);
    EXPECT_GT(it->decoded, 0u);
    EXPECT_GT(it->executed, 0u);      // Zen 2: transient execution
}

TEST(EpisodeTrace, RespectsCapacityAndDisable)
{
    Testbed bed(quiet(cpu::zen2()));
    bed.machine.enableEpisodeTrace(1);
    PredictionInjector injector(bed);
    injector.inject(bed.kernel.getpidGadgetVa(),
                    bed.kernel.imageBase() + 0x3000);
    bed.syscall(os::kSysGetpid);
    bed.syscall(os::kSysGetpid);
    EXPECT_EQ(bed.machine.episodeTrace().size(), 1u);

    bed.machine.disableEpisodeTrace();
    bed.machine.clearEpisodeTrace();
    bed.syscall(os::kSysGetpid);
    EXPECT_TRUE(bed.machine.episodeTrace().empty());
}

TEST(EpisodeTrace, DetectionStageAndSquashTiming)
{
    // One trace captures both windows of the paper's taxonomy: the
    // second training run's jmp* mispredicts towards the stale first
    // target (resolved only at execute — Spectre), and the kernel
    // victim nop opens a decoder-detected PHANTOM episode.
    Testbed bed(quiet(cpu::zen2()));
    bed.syscall(os::kSysGetpid);
    PredictionInjector injector(bed);
    VAddr victim = bed.kernel.getpidGadgetVa();
    bed.machine.enableEpisodeTrace(64);
    injector.inject(victim, bed.kernel.imageBase() + 0x2000);
    injector.inject(victim, bed.kernel.imageBase() + 0x3000);
    bed.syscall(os::kSysGetpid);

    const auto& trace = bed.machine.episodeTrace();
    auto phantom =
        std::find_if(trace.begin(), trace.end(), [&](const auto& r) {
            return r.kind == cpu::EpisodeKind::PhantomFrontend &&
                   r.sourcePc == victim;
        });
    auto spectre =
        std::find_if(trace.begin(), trace.end(), [](const auto& r) {
            return r.kind == cpu::EpisodeKind::SpectreBackend;
        });
    ASSERT_NE(phantom, trace.end());
    ASSERT_NE(spectre, trace.end());

    // Detection context: the decoder catches the phantom in the kernel;
    // the training branch resolves in user mode.
    EXPECT_EQ(phantom->priv, Privilege::Kernel);
    EXPECT_EQ(spectre->priv, Privilege::User);

    // Squash timing: every record spans at least its resteer penalty,
    // and the execute-resolved window is wider than the decoder one.
    const auto& cfg = bed.machine.config();
    EXPECT_GE(phantom->squashCycle,
              phantom->atCycle + cfg.frontendResteerPenalty);
    EXPECT_GE(spectre->squashCycle,
              spectre->atCycle + cfg.backendResteerPenalty);
    EXPECT_GT(spectre->squashCycle - spectre->atCycle,
              phantom->squashCycle - phantom->atCycle);

    // Episode ids are unique, and the machine counts every episode it
    // began (traced or not).
    EXPECT_NE(phantom->id, spectre->id);
    EXPECT_GE(bed.machine.episodeCount(), trace.size());
}

TEST(EpisodeTrace, PhantomDepthZen2VsZen4)
{
    // Same phantom episode, different microarchitecture: on Zen 2 the
    // decoder resteer misses the µop queue and the target transiently
    // executes; on Zen 4 it stops at decode.
    u32 executed[2] = {0, 0};
    int i = 0;
    for (const auto& base : {cpu::zen2(), cpu::zen4()}) {
        Testbed bed(quiet(base));
        bed.syscall(os::kSysGetpid);
        PredictionInjector injector(bed);
        VAddr victim = bed.kernel.getpidGadgetVa();
        injector.inject(victim, bed.kernel.imageBase() + 0x3000);
        bed.machine.enableEpisodeTrace(64);
        bed.syscall(os::kSysGetpid);

        const auto& trace = bed.machine.episodeTrace();
        auto it = std::find_if(trace.begin(), trace.end(),
                               [&](const auto& r) {
                                   return r.kind ==
                                              cpu::EpisodeKind::
                                                  PhantomFrontend &&
                                          r.sourcePc == victim;
                               });
        ASSERT_NE(it, trace.end()) << base.name;
        EXPECT_TRUE(it->fetched) << base.name;
        EXPECT_GT(it->decoded, 0u) << base.name;
        executed[i++] = it->executed;
    }
    EXPECT_GT(executed[0], 0u);   // zen2: EX reached
    EXPECT_EQ(executed[1], 0u);   // zen4: decoder resteer wins
}

TEST(EpisodeTrace, CountsDroppedEpisodes)
{
    Testbed bed(quiet(cpu::zen2()));
    bed.machine.enableEpisodeTrace(1);
    PredictionInjector injector(bed);
    injector.inject(bed.kernel.getpidGadgetVa(),
                    bed.kernel.imageBase() + 0x3000);
    bed.syscall(os::kSysGetpid);
    bed.syscall(os::kSysGetpid);

    EXPECT_EQ(bed.machine.episodeTrace().size(), 1u);
    EXPECT_GE(bed.machine.droppedEpisodes(), 1u);

    bed.machine.clearEpisodeTrace();
    EXPECT_EQ(bed.machine.droppedEpisodes(), 0u);

    // Disabled tracing drops nothing — the counter only reports
    // records lost to a full trace, not tracing being off.
    bed.machine.disableEpisodeTrace();
    bed.syscall(os::kSysGetpid);
    EXPECT_EQ(bed.machine.droppedEpisodes(), 0u);
}

TEST(EpisodeTrace, ClassifiesAutoIbrsCancellation)
{
    Testbed bed(quiet(cpu::zen4()));
    bed.machine.msrs().setBit(cpu::msr::kEfer, cpu::msr::kAutoIbrsBit,
                              true);
    bed.syscall(os::kSysGetpid);
    PredictionInjector injector(bed);
    injector.inject(bed.kernel.getpidGadgetVa(),
                    bed.kernel.imageBase() + 0x3000);
    bed.machine.enableEpisodeTrace(32);
    bed.syscall(os::kSysGetpid);

    const auto& trace = bed.machine.episodeTrace();
    auto it = std::find_if(trace.begin(), trace.end(), [&](const auto& r) {
        return r.kind == cpu::EpisodeKind::AutoIbrsCancelled;
    });
    ASSERT_NE(it, trace.end());
    EXPECT_TRUE(it->fetched);        // O5: IF still happens
    EXPECT_EQ(it->decoded, 0u);      // but nothing deeper
    EXPECT_EQ(it->executed, 0u);
}

// ---- §6.3: SuppressBPOnNonBr vs the P2 covert channel -------------------------

CovertResult
executeChannel(const cpu::MicroarchConfig& base, bool suppress,
               bool victim_non_branch)
{
    CovertOptions options;
    options.bits = 24;
    options.victimNonBranch = victim_non_branch;
    CovertChannel channel(quiet(base), options);
    if (suppress) {
        channel.testbed().machine.msrs().setBit(
            cpu::msr::kDeCfg2, cpu::msr::kSuppressBpOnNonBrBit, true);
    }
    return channel.runExecuteChannel();
}

TEST(SuppressBpCovert, Zen2BranchVictimUnaffected)
{
    auto result = executeChannel(cpu::zen2(), true, false);
    EXPECT_GE(result.accuracy, 0.95);
}

TEST(SuppressBpCovert, Zen2NonBranchVictimDies)
{
    // Without the bit the nop victim carries the channel...
    auto open_channel = executeChannel(cpu::zen2(), false, true);
    EXPECT_GE(open_channel.accuracy, 0.95);
    // ...with the bit set, received bits are noise (~50%).
    auto closed = executeChannel(cpu::zen2(), true, true);
    EXPECT_LE(closed.accuracy, 0.80);
}

TEST(SuppressBpCovert, Zen1UnsupportedBitChangesNothing)
{
    auto result = executeChannel(cpu::zen1(), true, true);
    EXPECT_GE(result.accuracy, 0.95);
}

} // namespace
} // namespace phantom::attack
