/**
 * @file
 * Tests for the episode tracer and the §6.3 SuppressBPOnNonBr semantics
 * on the covert channels: P2 keeps working against branch victims on
 * Zen 2, dies against non-branch victims there, and is never affected
 * on Zen 1 (the bit is unsupported).
 */

#include "attack/covert.hpp"
#include "attack/testbed.hpp"

#include <gtest/gtest.h>

namespace phantom::attack {
namespace {

cpu::MicroarchConfig
quiet(cpu::MicroarchConfig cfg)
{
    cfg.noise = mem::NoiseConfig{};
    return cfg;
}

// ---- Episode tracer ----------------------------------------------------------

TEST(EpisodeTrace, RecordsPhantomEpisode)
{
    Testbed bed(quiet(cpu::zen2()));
    bed.syscall(os::kSysGetpid);
    PredictionInjector injector(bed);
    VAddr victim = bed.kernel.getpidGadgetVa();
    VAddr target = bed.kernel.imageBase() + 0x3000;
    injector.inject(victim, target);

    bed.machine.enableEpisodeTrace(32);
    bed.syscall(os::kSysGetpid);

    const auto& trace = bed.machine.episodeTrace();
    auto it = std::find_if(trace.begin(), trace.end(), [&](const auto& r) {
        return r.kind == cpu::EpisodeKind::PhantomFrontend &&
               r.sourcePc == victim;
    });
    ASSERT_NE(it, trace.end());
    EXPECT_EQ(it->target, target);
    EXPECT_EQ(it->priv, Privilege::Kernel);
    EXPECT_EQ(it->actualKind, isa::InsnKind::NopN);
    EXPECT_EQ(it->predictedType, isa::BranchType::IndirectJump);
    EXPECT_TRUE(it->fetched);
    EXPECT_GT(it->decoded, 0u);
    EXPECT_GT(it->executed, 0u);      // Zen 2: transient execution
}

TEST(EpisodeTrace, RespectsCapacityAndDisable)
{
    Testbed bed(quiet(cpu::zen2()));
    bed.machine.enableEpisodeTrace(1);
    PredictionInjector injector(bed);
    injector.inject(bed.kernel.getpidGadgetVa(),
                    bed.kernel.imageBase() + 0x3000);
    bed.syscall(os::kSysGetpid);
    bed.syscall(os::kSysGetpid);
    EXPECT_EQ(bed.machine.episodeTrace().size(), 1u);

    bed.machine.disableEpisodeTrace();
    bed.machine.clearEpisodeTrace();
    bed.syscall(os::kSysGetpid);
    EXPECT_TRUE(bed.machine.episodeTrace().empty());
}

TEST(EpisodeTrace, ClassifiesAutoIbrsCancellation)
{
    Testbed bed(quiet(cpu::zen4()));
    bed.machine.msrs().setBit(cpu::msr::kEfer, cpu::msr::kAutoIbrsBit,
                              true);
    bed.syscall(os::kSysGetpid);
    PredictionInjector injector(bed);
    injector.inject(bed.kernel.getpidGadgetVa(),
                    bed.kernel.imageBase() + 0x3000);
    bed.machine.enableEpisodeTrace(32);
    bed.syscall(os::kSysGetpid);

    const auto& trace = bed.machine.episodeTrace();
    auto it = std::find_if(trace.begin(), trace.end(), [&](const auto& r) {
        return r.kind == cpu::EpisodeKind::AutoIbrsCancelled;
    });
    ASSERT_NE(it, trace.end());
    EXPECT_TRUE(it->fetched);        // O5: IF still happens
    EXPECT_EQ(it->decoded, 0u);      // but nothing deeper
    EXPECT_EQ(it->executed, 0u);
}

// ---- §6.3: SuppressBPOnNonBr vs the P2 covert channel -------------------------

CovertResult
executeChannel(const cpu::MicroarchConfig& base, bool suppress,
               bool victim_non_branch)
{
    CovertOptions options;
    options.bits = 24;
    options.victimNonBranch = victim_non_branch;
    CovertChannel channel(quiet(base), options);
    if (suppress) {
        channel.testbed().machine.msrs().setBit(
            cpu::msr::kDeCfg2, cpu::msr::kSuppressBpOnNonBrBit, true);
    }
    return channel.runExecuteChannel();
}

TEST(SuppressBpCovert, Zen2BranchVictimUnaffected)
{
    auto result = executeChannel(cpu::zen2(), true, false);
    EXPECT_GE(result.accuracy, 0.95);
}

TEST(SuppressBpCovert, Zen2NonBranchVictimDies)
{
    // Without the bit the nop victim carries the channel...
    auto open_channel = executeChannel(cpu::zen2(), false, true);
    EXPECT_GE(open_channel.accuracy, 0.95);
    // ...with the bit set, received bits are noise (~50%).
    auto closed = executeChannel(cpu::zen2(), true, true);
    EXPECT_LE(closed.accuracy, 0.80);
}

TEST(SuppressBpCovert, Zen1UnsupportedBitChangesNothing)
{
    auto result = executeChannel(cpu::zen1(), true, true);
    EXPECT_GE(result.accuracy, 0.95);
}

} // namespace
} // namespace phantom::attack
