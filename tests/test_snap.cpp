/**
 * @file
 * Snapshot subsystem tests (src/snap): image round-trips, strict loader
 * rejection, copy-on-write fork equivalence across the full Table-1
 * matrix, snapshot-store accounting, and the deterministic-replay
 * divergence checker.
 */

#include "attack/experiment.hpp"
#include "attack/testbed.hpp"
#include "isa/assembler.hpp"
#include "snap/image.hpp"
#include "snap/replay.hpp"
#include "snap/state.hpp"
#include "snap/store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace phantom::snap {
namespace {

using namespace isa;

// Small installed-memory testbed: big enough to boot the kernel, small
// enough that serializing every mapped frame stays quick.
constexpr u64 kPhys = 256ull * 1024 * 1024;

/** A booted testbed with a short user program mapped and registered. */
struct Warmed
{
    attack::Testbed bed;
    VAddr entry = 0x400000;

    explicit Warmed(u64 seed = 3)
        : bed(cpu::zen2(), kPhys, seed)
    {
        // A store/load loop: touches data memory, the predictors (the
        // backward jcc) and the caches, so every snapshot section has
        // non-trivial content.
        bed.process.mapData(0x800000, kPageBytes);
        Assembler code(entry);
        code.movImm(RAX, 0);
        code.movImm(RDI, 0x800000);
        code.movImm(RCX, 64);
        Label loop = code.newLabel();
        code.bind(loop);
        code.addImm(RAX, 3);
        code.store(RDI, 0, RAX);
        code.load(RBX, RDI, 0);
        code.subImm(RCX, 1);
        code.cmpImm(RCX, 0);
        code.jcc(Cond::Ne, loop);
        code.hlt();
        bed.process.mapCode(entry, code.finish());
    }

    MachineState
    capture()
    {
        return snap::capture(bed.machine, &bed.kernel);
    }
};

// -- Image round-trip ---------------------------------------------------

TEST(SnapImage, RoundTripBitIdentical)
{
    Warmed warmed;
    // Run part of the program so registers/caches/predictors are warm.
    warmed.bed.machine.setPrivilege(Privilege::User);
    warmed.bed.machine.setPc(warmed.entry);
    warmed.bed.machine.run(100);

    MachineState state = warmed.capture();
    std::vector<u8> image = serialize(state);
    ASSERT_FALSE(image.empty());

    LoadResult loaded = load(image);
    ASSERT_TRUE(loaded.ok) << loaded.error;

    // Loaded state must re-serialize to the exact same bytes and carry
    // the exact same semantic digest.
    EXPECT_EQ(serialize(loaded.state), image);
    EXPECT_EQ(stateDigest(loaded.state), stateDigest(state));
    EXPECT_EQ(loaded.state.uarch, "zen2");
    EXPECT_EQ(loaded.state.frames->size(), state.frames->size());
    EXPECT_TRUE(loaded.state.hasPageTable);
    EXPECT_TRUE(loaded.state.hasLayout);
}

TEST(SnapImage, InspectReportsHeaderAndSections)
{
    Warmed warmed;
    std::vector<u8> image = serialize(warmed.capture());

    InspectResult r = inspect(image);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.info.version, kImageVersion);
    EXPECT_EQ(r.info.uarch, "zen2");
    EXPECT_EQ(r.info.installedBytes, kPhys);
    EXPECT_EQ(r.info.sections.size(), 16u);

    // Section names resolve and extents tile the payload area.
    for (const SectionInfo& s : r.info.sections)
        EXPECT_STRNE(s.name.c_str(), "unknown");
}

TEST(SnapImage, RejectsTruncatedImages)
{
    Warmed warmed;
    std::vector<u8> image = serialize(warmed.capture());

    const std::size_t cuts[] = {0, 4, 7, 16, 64, image.size() / 2,
                                image.size() - 1};
    for (std::size_t cut : cuts) {
        std::vector<u8> truncated(image.begin(), image.begin() + cut);
        EXPECT_FALSE(load(truncated).ok) << "cut at " << cut;
        EXPECT_FALSE(inspect(truncated).ok) << "cut at " << cut;
    }
}

TEST(SnapImage, RejectsBitFlippedImages)
{
    Warmed warmed;
    std::vector<u8> image = serialize(warmed.capture());

    // A flip anywhere — magic, header fields, section table, payload —
    // must be caught (digests cover every payload byte; header fields
    // are validated structurally).
    const std::size_t spots[] = {0, 9, 20, 40, 100, image.size() / 2,
                                 image.size() - 1};
    for (std::size_t spot : spots) {
        std::vector<u8> corrupt = image;
        corrupt[spot] ^= 0x40;
        EXPECT_FALSE(load(corrupt).ok) << "flip at " << spot;
    }
}

TEST(SnapImage, RejectsTrailingGarbage)
{
    Warmed warmed;
    std::vector<u8> image = serialize(warmed.capture());
    image.push_back(0xcc);
    EXPECT_FALSE(load(image).ok);
}

// -- Restore / fork equivalence ----------------------------------------

TEST(SnapState, RestoredMachineFinishesIdentically)
{
    Warmed a(7);

    // Reference: run the program to completion on the original machine.
    a.bed.machine.setPrivilege(Privilege::User);
    a.bed.machine.setPc(a.entry);
    a.bed.machine.run(50);
    MachineState mid = a.capture();
    a.bed.machine.run();
    u64 want_rax = a.bed.machine.regs().read(RAX);
    MachineState end_a = snap::capture(a.bed.machine);

    // Fork from the midpoint and finish there; architectural state and
    // the full semantic digest must agree.
    ForkedMachine b = fork(mid, cpu::zen2());
    b.machine->run();
    EXPECT_EQ(b.machine->regs().read(RAX), want_rax);
    MachineState end_b = snap::capture(*b.machine);
    // The fork never had a kernel attached, so compare sans layout.
    end_b.hasLayout = end_a.hasLayout;
    end_b.layout = end_a.layout;
    EXPECT_EQ(stateDigest(end_b), stateDigest(end_a));
}

TEST(SnapState, StatesEqualIsExactAndCowAware)
{
    Warmed warmed;
    MachineState a = warmed.capture();
    MachineState b = warmed.capture();
    // Two captures of an untouched machine share every frame by
    // pointer and must compare equal.
    EXPECT_TRUE(statesEqual(a, b));

    // A one-register perturbation must be visible...
    warmed.bed.machine.regs().write(RAX,
                                    warmed.bed.machine.regs().read(RAX) ^
                                        1);
    MachineState c = warmed.capture();
    EXPECT_FALSE(statesEqual(a, c));

    // ...and so must a single flipped byte in one frame, even though
    // the digest-free frame compare takes the memcmp path only for the
    // unshared page.
    MachineState d = warmed.capture();
    auto frames =
        std::make_shared<mem::PhysicalMemory::FrameMap>(*d.frames);
    auto frame = frames->begin();
    frame->second =
        std::make_shared<mem::PhysicalMemory::Frame>(*frame->second);
    (*frame->second)[0] ^= 1;
    d.frames = frames;
    EXPECT_FALSE(statesEqual(c, d));
    (*frame->second)[0] ^= 1;
    EXPECT_TRUE(statesEqual(c, d));
}

TEST(SnapState, ForkIsCopyOnWrite)
{
    Warmed warmed;
    MachineState state = warmed.capture();
    std::size_t mapped = state.frames->size();
    ASSERT_GT(mapped, 0u);

    ForkedMachine forked = fork(state, cpu::zen2());
    // Before any write, every frame is shared with the snapshot.
    EXPECT_EQ(forked.machine->physMem().framesShared(), mapped);

    forked.machine->setPrivilege(Privilege::User);
    forked.machine->setPc(warmed.entry);
    forked.machine->run();

    // The program dirties only a handful of pages; the rest stay shared
    // (that is what makes fork O(dirty pages)).
    std::size_t shared = forked.machine->physMem().framesShared();
    EXPECT_LT(mapped - shared, 16u);
    // The snapshot's own view never changed.
    EXPECT_EQ(stateDigest(state), stateDigest(warmed.capture()));
}

// -- Table-1 fork equivalence ------------------------------------------

/** Matrix + aggregate metrics of one full 5x5 run. */
struct MatrixResult
{
    std::string cells;
    std::vector<u64> pmc;
    std::vector<u64> attribution;
    u64 episodes = 0;

    bool
    operator==(const MatrixResult& o) const
    {
        return cells == o.cells && pmc == o.pmc &&
               attribution == o.attribution && episodes == o.episodes;
    }
};

MatrixResult
measureMatrix(bool snapshot_reuse)
{
    auto cfg = cpu::zen2();
    attack::StageExperimentOptions options;
    options.trials = 3;
    options.snapshotReuse = snapshot_reuse;
    attack::StageExperiment experiment(cfg, options);

    MatrixResult r;
    for (attack::BranchKind train : attack::table1Kinds())
        for (attack::BranchKind victim : attack::table1Kinds()) {
            attack::StageObservation obs = experiment.run(train, victim);
            r.cells += attack::stageCellName(obs);
            r.cells += '|';
            for (u32 e = 0; e < static_cast<u32>(cpu::PmcEvent::kCount);
                 ++e)
                r.pmc.push_back(
                    obs.pmc.read(static_cast<cpu::PmcEvent>(e)));
            for (u64 c : obs.attribution.cycles)
                r.attribution.push_back(c);
            r.episodes += obs.episodes;
        }
    return r;
}

TEST(SnapFork, Table1MatrixBitIdenticalWithReuse)
{
    // The tentpole equivalence guarantee: warm-once + snapshot-restore
    // per channel produces exactly the signals and metrics of three
    // fresh builds, across every Table-1 cell.
    SnapshotStore store;
    setActiveSnapshotStore(&store);
    MatrixResult with_reuse = measureMatrix(true);
    setActiveSnapshotStore(nullptr);
    MatrixResult without = measureMatrix(false);

    EXPECT_TRUE(with_reuse == without)
        << "reuse: " << with_reuse.cells << "\nfresh: " << without.cells;

    // Store accounting: every (cell, trial) captured once, never hit
    // (per-trial seeds differ), and restored twice (decode + execute
    // channels).
    const StoreStats& stats = store.stats();
    EXPECT_GT(stats.captures, 0u);
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, stats.captures);
    EXPECT_EQ(stats.restores, 2 * stats.captures);
    EXPECT_GT(stats.stateBytes, 0u);
}

TEST(SnapFork, SecondRunHitsTheStore)
{
    SnapshotStore store;
    setActiveSnapshotStore(&store);

    auto cfg = cpu::zen2();
    attack::StageExperimentOptions options;
    options.trials = 2;
    attack::StageExperiment experiment(cfg, options);
    auto first = experiment.run(attack::BranchKind::IndirectJmp,
                                attack::BranchKind::IndirectJmp);
    u64 captures = store.stats().captures;
    EXPECT_GT(captures, 0u);

    auto second = experiment.run(attack::BranchKind::IndirectJmp,
                                 attack::BranchKind::IndirectJmp);
    setActiveSnapshotStore(nullptr);

    // Identical cell, identical seeds: the warmed testbeds are revived
    // from the store, and the observation is unchanged.
    EXPECT_EQ(store.stats().captures, captures);
    EXPECT_EQ(store.stats().hits, captures);
    EXPECT_EQ(std::string(attack::stageCellName(first)),
              std::string(attack::stageCellName(second)));
}

// -- Replay / divergence checker ---------------------------------------

TEST(SnapReplay, TwoForksNeverDrift)
{
    Warmed warmed;
    warmed.bed.machine.setPrivilege(Privilege::User);
    warmed.bed.machine.setPc(warmed.entry);
    MachineState state = warmed.capture();

    ReplayOptions options;
    options.maxInsns = 512;
    options.windowInsns = 32;
    DivergenceReport report =
        checkDivergence(state, cpu::zen2(), options);
    EXPECT_FALSE(report.diverged) << report.summary();
    EXPECT_GT(report.windowsCompared, 0u);
    EXPECT_GT(report.insnsReplayed, 0u);
}

TEST(SnapReplay, InjectedFaultIsPinpointed)
{
    Warmed warmed;
    warmed.bed.machine.setPrivilege(Privilege::User);
    warmed.bed.machine.setPc(warmed.entry);
    MachineState state = warmed.capture();

    ReplayOptions options;
    options.maxInsns = 512;
    options.windowInsns = 32;
    options.perturbAtWindow = 2;
    DivergenceReport report =
        checkDivergence(state, cpu::zen2(), options);

    ASSERT_TRUE(report.diverged) << report.summary();
    EXPECT_EQ(report.divergentWindow, 2u);
    // The perturbation flips a register bit at the window boundary, so
    // the pinpointed instruction is the boundary itself and the register
    // file is among the divergent components.
    EXPECT_NE(std::find(report.divergentComponents.begin(),
                        report.divergentComponents.end(),
                        std::string("regs")),
              report.divergentComponents.end())
        << report.summary();
}

} // namespace
} // namespace phantom::snap
