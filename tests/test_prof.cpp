/**
 * @file
 * Unit tests for the host-time self-profiler (src/obs/prof): gate
 * semantics, exact entry counts under sampling, self-time subtraction,
 * order-free merging across threads, and the three export formatters.
 *
 * The profiler is process-global, so every test starts from
 * resetForTest() and restores the gate on exit.
 */

#include "obs/prof.hpp"
#include "runner/json.hpp"
#include "runner/prof_json.hpp"
#include "runner/schema.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace phantom::obs::prof {
namespace {

/** RAII gate flip: on for the test body, restored (and data cleared)
 *  after. */
class ProfGate
{
  public:
    ProfGate()
    {
        resetForTest();
        setEnabled(true);
    }

    ~ProfGate()
    {
        setEnabled(false);
        resetForTest();
    }
};

const PhaseReport*
findPhase(const Report& report, Phase phase)
{
    for (const PhaseReport& p : report.phases)
        if (p.phase == phase)
            return &p;
    return nullptr;
}

/** Run @p entries scopes of @p phase back to back. */
void
spin(Phase phase, int entries)
{
    for (int i = 0; i < entries; ++i)
        ScopedPhase scope(phase);
}

TEST(Prof, DisabledGateRecordsNothing)
{
    resetForTest();
    setEnabled(false);
    spin(Phase::BpuPredict, 100);
    {
        PROF_SCOPE(MachineRun);
        PROF_SCOPE(DecodeMiss);
    }
    Report report = collect();
    EXPECT_FALSE(report.enabled);
    EXPECT_TRUE(report.phases.empty());
    EXPECT_TRUE(report.stacks.empty());
    EXPECT_EQ(report.events(), 0u);
    resetForTest();
}

TEST(Prof, PhaseNamesRoundTrip)
{
    for (int i = 0; i < kPhaseCount; ++i) {
        Phase phase = static_cast<Phase>(i);
        EXPECT_EQ(phaseFromName(phaseName(phase)), phase);
    }
    EXPECT_EQ(phaseFromName("no.such.phase"), Phase::Count);
    EXPECT_EQ(phaseFromName(""), Phase::Count);
}

TEST(Prof, CountsAreExactUnderSampling)
{
    ProfGate gate;
    // bpu.predict is a sampled phase (shift > 0): only 1-in-2^shift
    // entries are timed, but each of the 1000 entries must be counted.
    ASSERT_GT(phaseSampleShift(Phase::BpuPredict), 0u);
    {
        ScopedPhase outer(Phase::MachineRun);  // always-timed flusher
        spin(Phase::BpuPredict, 1000);
    }
    Report report = collect();
    const PhaseReport* predict = findPhase(report, Phase::BpuPredict);
    ASSERT_NE(predict, nullptr);
    EXPECT_EQ(predict->count, 1000u);
    // The per-thread sample tick starts at zero after resetForTest, so
    // entries 0, P, 2P, ... are timed: ceil(1000 / P) of them.
    u64 period = u64{1} << phaseSampleShift(Phase::BpuPredict);
    EXPECT_EQ(predict->timedCount, (1000u + period - 1) / period);
    EXPECT_LE(predict->selfNs, predict->totalNs);
    // The estimate scales raw self time up to the full entry count.
    if (predict->selfNs > 0)
        EXPECT_GT(predict->estimatedSelfNs(),
                  static_cast<double>(predict->selfNs));
}

TEST(Prof, SelfTimeExcludesTimedChildren)
{
    ProfGate gate;
    {
        ScopedPhase outer(Phase::SnapCapture);  // shift 0
        ScopedPhase inner(Phase::SnapRestore);  // shift 0, timed child
        // Burn a little real time inside the child so the parent's
        // child-subtraction has something to subtract.
        volatile unsigned sink = 0;
        for (unsigned i = 0; i < 50000; ++i)
            sink += i;
    }
    Report report = collect();
    const PhaseReport* outer = findPhase(report, Phase::SnapCapture);
    const PhaseReport* inner = findPhase(report, Phase::SnapRestore);
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->count, 1u);
    EXPECT_EQ(inner->count, 1u);
    // The parent's total spans the child's, and its self time is the
    // total minus the child's span.
    EXPECT_GE(outer->totalNs, inner->totalNs);
    EXPECT_LE(outer->selfNs, outer->totalNs - inner->totalNs);

    // The nested path shows up as a two-deep stack.
    std::string nested = std::string(phaseName(Phase::SnapCapture)) +
                         ";" + phaseName(Phase::SnapRestore);
    bool found = false;
    for (const StackReport& stack : report.stacks)
        found = found || stack.stack == nested;
    EXPECT_TRUE(found) << "missing stack " << nested;
}

TEST(Prof, MergeIsOrderFreeAcrossThreads)
{
    // Two threads, each with its own shard, doing identical work: the
    // merged counts are the sum regardless of interleaving, exactly
    // like MetricsRegistry.
    ProfGate gate;
    auto work = [] {
        for (int i = 0; i < 7; ++i) {
            ScopedPhase outer(Phase::SnapFork);
            spin(Phase::DecodeHit, 32);
        }
    };
    std::thread a(work);
    std::thread b(work);
    a.join();
    b.join();
    Report report = collect();
    EXPECT_EQ(report.threads, 2u);
    const PhaseReport* fork = findPhase(report, Phase::SnapFork);
    const PhaseReport* hit = findPhase(report, Phase::DecodeHit);
    ASSERT_NE(fork, nullptr);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(fork->count, 14u);
    EXPECT_EQ(hit->count, 2u * 7u * 32u);
}

TEST(Prof, ReportInvariantsAndExports)
{
    ProfGate gate;
    for (int i = 0; i < 3; ++i) {
        ScopedPhase run(Phase::MachineRun);
        spin(Phase::BpuPredict, 64);
        spin(Phase::CacheAccess, 64);
    }
    Report report = collect();
    ASSERT_FALSE(report.phases.empty());
    EXPECT_TRUE(report.enabled);

    // Phases arrive in enum order with positive counts only.
    for (std::size_t i = 1; i < report.phases.size(); ++i)
        EXPECT_LT(static_cast<int>(report.phases[i - 1].phase),
                  static_cast<int>(report.phases[i].phase));
    for (const PhaseReport& phase : report.phases) {
        EXPECT_GT(phase.count, 0u);
        EXPECT_LE(phase.timedCount, phase.count);
        EXPECT_LE(phase.selfNs, phase.totalNs);
        EXPECT_EQ(phase.hist.count(), phase.timedCount);
    }

    // Stacks are sorted and self <= total per path.
    for (std::size_t i = 1; i < report.stacks.size(); ++i)
        EXPECT_LT(report.stacks[i - 1].stack, report.stacks[i].stack);
    for (const StackReport& stack : report.stacks)
        EXPECT_LE(stack.selfNs, stack.totalNs);

    // Folded stacks: one "path self" line per positive-self path.
    std::istringstream folded(foldedStacks(report));
    std::string line;
    std::size_t lines = 0;
    while (std::getline(folded, line)) {
        std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        EXPECT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
        ++lines;
    }
    EXPECT_GT(lines, 0u);

    // The Perfetto trace and the bottleneck table mention the root.
    std::string trace = perfettoTraceJson(report);
    runner::JsonValue doc;
    std::string error;
    ASSERT_TRUE(runner::parseJson(trace, doc, &error)) << error;
    ASSERT_NE(doc.find("traceEvents"), nullptr);
    EXPECT_NE(trace.find("machine.run"), std::string::npos);
    std::string table = bottleneckTable(report);
    EXPECT_NE(table.find("machine.run"), std::string::npos);
}

TEST(Prof, JsonRoundTripsThroughProfileFromJson)
{
    ProfGate gate;
    {
        ScopedPhase run(Phase::MachineRun);
        spin(Phase::PageWalk, 128);
    }
    Report report = collect();
    runner::JsonValue doc = runner::profileToJson(report, 1000000);

    const runner::JsonValue* schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->string(), runner::kProfileSchema);
    EXPECT_EQ(runner::findProfile(doc), &doc);

    Report parsed;
    std::string error;
    ASSERT_TRUE(runner::profileFromJson(doc, parsed, &error)) << error;
    ASSERT_EQ(parsed.phases.size(), report.phases.size());
    for (std::size_t i = 0; i < parsed.phases.size(); ++i) {
        EXPECT_EQ(parsed.phases[i].phase, report.phases[i].phase);
        EXPECT_EQ(parsed.phases[i].count, report.phases[i].count);
        EXPECT_EQ(parsed.phases[i].totalNs, report.phases[i].totalNs);
        EXPECT_EQ(parsed.phases[i].selfNs, report.phases[i].selfNs);
    }
    ASSERT_EQ(parsed.stacks.size(), report.stacks.size());
    for (std::size_t i = 0; i < parsed.stacks.size(); ++i)
        EXPECT_EQ(parsed.stacks[i].stack, report.stacks[i].stack);
    // The regenerated folded stacks match the originals exactly — the
    // contract prof_report --check-folded relies on.
    EXPECT_EQ(foldedStacks(parsed), foldedStacks(report));
}

} // namespace
} // namespace phantom::obs::prof
