/**
 * @file
 * Unit tests for the bench observatory's diff layer: metric-path
 * flattening and classification, the baseline comparison engine and its
 * edge cases (one-sided metrics, empty histograms, informational trace
 * counters), the baseline store round trip, ResultSink::metricPaths(),
 * and the paper-conformance checks on synthetic documents.
 */

#include "obs/diff/baseline.hpp"
#include "obs/diff/diff.hpp"
#include "obs/diff/metric_path.hpp"
#include "obs/diff/paper.hpp"
#include "obs/diff/report.hpp"
#include "runner/result_sink.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

using namespace phantom;
using namespace phantom::obs::diff;
using phantom::runner::JsonValue;
using phantom::runner::parseJson;

namespace {

JsonValue
parse(const std::string& text)
{
    JsonValue doc;
    std::string error;
    EXPECT_TRUE(parseJson(text, doc, &error)) << error;
    return doc;
}

/** Minimal valid results document with one deterministic label, one
 *  measured gauge, and one measured histogram. */
std::string
resultsText(const std::string& label, double gauge,
            const std::string& histBuckets, const std::string& extra = "")
{
    return std::string("{\n"
                       "\"schema\": \"phantom-bench-results/v2\",\n"
                       "\"bench\": \"bench_synth\",\n"
                       "\"campaign_seed\": 7,\n"
                       "\"jobs\": 1,\n"
                       "\"experiments\": {\"e\": {\"labels\": {\"cell\": "
                       "\"") +
           label +
           "\"}}},\n"
           "\"metrics\": {\n"
           "  \"deterministic\": {},\n"
           "  \"measured\": {\n"
           "    \"counters\": {\"trace.events_dropped\": 0},\n"
           "    \"gauges\": {\"scheduler.trials_per_second\": 100.0,\n"
           "                 \"speed\": " +
           std::to_string(gauge) +
           "},\n"
           "    \"histograms\": {\"scheduler.trial_micros\": "
           "{\"count\": " +
           (histBuckets.empty() ? "0, \"buckets\": []"
                                : "4, \"buckets\": [" + histBuckets + "]") +
           "}}\n"
           "  },\n"
           "  \"manifest\": {\"bench\": \"bench_synth\", "
           "\"campaign_seed\": 7, \"fast_mode\": true, "
           "\"git_describe\": \"abc\", \"uarch\": [\"zen2\"]}\n"
           "}" +
           extra + "\n}\n";
}

const MetricDiff*
findEntry(const BenchDiff& diff, const std::string& path)
{
    for (const MetricDiff& entry : diff.entries)
        if (entry.path == path)
            return &entry;
    return nullptr;
}

TEST(MetricPath, ClassificationRules)
{
    EXPECT_EQ(classifyMetricPath("experiments.zen2.labels.jmp* x ret"),
              MetricClass::Deterministic);
    EXPECT_EQ(classifyMetricPath("metrics.deterministic.counters.x"),
              MetricClass::Deterministic);
    EXPECT_EQ(classifyMetricPath("metrics.manifest.campaign_seed"),
              MetricClass::Deterministic);
    EXPECT_EQ(classifyMetricPath("metrics.manifest.git_describe"),
              MetricClass::Informational);
    EXPECT_EQ(classifyMetricPath("metrics.measured.gauges.micro.x"),
              MetricClass::Measured);
    EXPECT_EQ(classifyMetricPath("timing.wall_seconds"),
              MetricClass::Measured);
    EXPECT_EQ(classifyMetricPath("timing.speedup"),
              MetricClass::Informational);
    EXPECT_EQ(classifyMetricPath("jobs"), MetricClass::Informational);
    EXPECT_EQ(classifyMetricPath("schema"), MetricClass::Informational);
    EXPECT_EQ(classifyMetricPath("baseline_of.tool"),
              MetricClass::Informational);
    // Dropped trace events are scheduling detail, never deterministic.
    EXPECT_EQ(classifyMetricPath(
                  "metrics.measured.counters.trace.events_dropped"),
              MetricClass::Informational);
    EXPECT_EQ(classifyMetricPath(
                  "metrics.measured.counters.scheduler.steals"),
              MetricClass::Informational);
    // Decode-cache effectiveness varies with PHANTOM_DECODE_CACHE while
    // the model output does not: report-only, never gated.
    EXPECT_EQ(classifyMetricPath(
                  "metrics.measured.counters.decode_cache.hits"),
              MetricClass::Informational);
    EXPECT_EQ(classifyMetricPath(
                  "metrics.measured.counters.decode_cache.invalidates"),
              MetricClass::Informational);
    // Host-profiler output is wall-clock observation of this process:
    // informational everywhere, never part of the gate.
    EXPECT_EQ(classifyMetricPath("profile.phases.machine.run.self_ns"),
              MetricClass::Informational);
    EXPECT_EQ(classifyMetricPath("profile.wall_ns"),
              MetricClass::Informational);
    // Segment boundary: "jobs" must not swallow "jobs_extra".
    EXPECT_EQ(classifyMetricPath("jobs_extra"),
              MetricClass::Deterministic);
    // Unknown paths can never bypass the gate.
    EXPECT_EQ(classifyMetricPath("brand_new_section.value"),
              MetricClass::Deterministic);
}

TEST(MetricPath, EnumerationFlattensSortedAndKeepsHistogramsWhole)
{
    JsonValue doc = parse(resultsText("EX", 2.0,
                                      "{\"lo\": 1, \"count\": 4}"));
    auto leaves = enumerateMetricPaths(doc);
    ASSERT_FALSE(leaves.empty());
    EXPECT_TRUE(std::is_sorted(leaves.begin(), leaves.end(),
                               [](const MetricLeaf& a, const MetricLeaf& b) {
                                   return a.path < b.path;
                               }));

    bool histogram_whole = false;
    bool uarch_list = false;
    for (const MetricLeaf& leaf : leaves) {
        if (leaf.path ==
            "metrics.measured.histograms.scheduler.trial_micros") {
            EXPECT_EQ(leaf.kind, LeafKind::Histogram);
            histogram_whole = true;
        }
        if (leaf.path == "metrics.manifest.uarch") {
            EXPECT_EQ(leaf.kind, LeafKind::List);
            uarch_list = true;
        }
        // No path may descend into a histogram's buckets.
        EXPECT_EQ(leaf.path.find("trial_micros."), std::string::npos);
    }
    EXPECT_TRUE(histogram_whole);
    EXPECT_TRUE(uarch_list);
}

TEST(HistogramDistance, EmptyAndIdenticalCases)
{
    JsonValue empty = parse("{\"count\": 0, \"buckets\": []}");
    JsonValue full = parse("{\"count\": 4, \"buckets\": "
                           "[{\"lo\": 1, \"count\": 4}]}");
    EXPECT_DOUBLE_EQ(histogramDistance(empty, empty), 0.0);
    EXPECT_DOUBLE_EQ(histogramDistance(full, full), 0.0);
    // Empty vs non-empty is maximal: mass appeared from nowhere.
    EXPECT_DOUBLE_EQ(histogramDistance(empty, full), 1.0);
    EXPECT_DOUBLE_EQ(histogramDistance(full, empty), 1.0);

    JsonValue shifted = parse("{\"count\": 4, \"buckets\": "
                              "[{\"lo\": 64, \"count\": 4}]}");
    EXPECT_DOUBLE_EQ(histogramDistance(full, shifted), 1.0);
    JsonValue half = parse("{\"count\": 4, \"buckets\": "
                           "[{\"lo\": 1, \"count\": 2}, "
                           "{\"lo\": 64, \"count\": 2}]}");
    EXPECT_DOUBLE_EQ(histogramDistance(full, half), 0.5);
}

TEST(Diff, IdenticalDocumentsPass)
{
    JsonValue doc = parse(resultsText("EX", 2.0,
                                      "{\"lo\": 1, \"count\": 4}"));
    BenchDiff diff = diffResults("bench_synth", doc, doc);
    EXPECT_TRUE(diff.pass());
    EXPECT_EQ(diff.summary.drifts, 0u);
    EXPECT_EQ(diff.summary.regressions, 0u);
    EXPECT_EQ(diff.summary.missing, 0u);
    EXPECT_GT(diff.summary.matches, 0u);
}

TEST(Diff, DeterministicDriftFails)
{
    JsonValue a = parse(resultsText("EX", 2.0, "{\"lo\": 1, \"count\": 4}"));
    JsonValue b = parse(resultsText("ID", 2.0, "{\"lo\": 1, \"count\": 4}"));
    BenchDiff diff = diffResults("bench_synth", a, b);
    EXPECT_FALSE(diff.pass());
    EXPECT_EQ(diff.summary.drifts, 1u);
    const MetricDiff* entry = findEntry(diff, "experiments.e.labels.cell");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->status, DiffStatus::DeterministicDrift);
    EXPECT_EQ(entry->baseline, "EX");
    EXPECT_EQ(entry->current, "ID");
}

TEST(Diff, MeasuredToleranceAndRegression)
{
    JsonValue base = parse(resultsText("EX", 100.0,
                                       "{\"lo\": 1, \"count\": 4}"));
    JsonValue close = parse(resultsText("EX", 110.0,
                                        "{\"lo\": 1, \"count\": 4}"));
    JsonValue far = parse(resultsText("EX", 1000.0,
                                      "{\"lo\": 1, \"count\": 4}"));
    DiffOptions options;
    options.relTol = 0.25;

    BenchDiff within = diffResults("bench_synth", base, close, options);
    EXPECT_TRUE(within.pass());
    const MetricDiff* entry =
        findEntry(within, "metrics.measured.gauges.speed");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->status, DiffStatus::WithinTolerance);

    BenchDiff beyond = diffResults("bench_synth", base, far, options);
    EXPECT_FALSE(beyond.pass());
    entry = findEntry(beyond, "metrics.measured.gauges.speed");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->status, DiffStatus::MeasuredRegression);
}

TEST(Diff, EmptyVsNonEmptyHistogramRegresses)
{
    JsonValue base = parse(resultsText("EX", 2.0, ""));
    JsonValue current = parse(resultsText("EX", 2.0,
                                          "{\"lo\": 1, \"count\": 4}"));
    BenchDiff diff = diffResults("bench_synth", base, current);
    EXPECT_FALSE(diff.pass());
    const MetricDiff* entry = findEntry(
        diff, "metrics.measured.histograms.scheduler.trial_micros");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->status, DiffStatus::MeasuredRegression);
    EXPECT_DOUBLE_EQ(entry->delta, 1.0);
}

TEST(Diff, MissingMetricIsReportedNeverSkipped)
{
    JsonValue base = parse(resultsText(
        "EX", 2.0, "{\"lo\": 1, \"count\": 4}",
        ",\n\"extra\": {\"deterministic_thing\": 1}"));
    JsonValue current = parse(resultsText("EX", 2.0,
                                          "{\"lo\": 1, \"count\": 4}"));

    BenchDiff gone = diffResults("bench_synth", base, current);
    EXPECT_FALSE(gone.pass());
    const MetricDiff* entry = findEntry(gone, "extra.deterministic_thing");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->status, DiffStatus::MissingInCurrent);
    EXPECT_EQ(entry->current, "-");

    BenchDiff appeared = diffResults("bench_synth", current, base);
    EXPECT_FALSE(appeared.pass());
    entry = findEntry(appeared, "extra.deterministic_thing");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->status, DiffStatus::MissingInBaseline);
    EXPECT_EQ(entry->baseline, "-");
}

TEST(Diff, DroppedTraceEventsNeverGate)
{
    JsonValue base = parse(resultsText("EX", 2.0,
                                       "{\"lo\": 1, \"count\": 4}"));
    std::string text = resultsText("EX", 2.0, "{\"lo\": 1, \"count\": 4}");
    std::size_t at = text.find("\"trace.events_dropped\": 0");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, std::string("\"trace.events_dropped\": 0").size(),
                 "\"trace.events_dropped\": 9999");
    JsonValue current = parse(text);

    BenchDiff diff = diffResults("bench_synth", base, current);
    EXPECT_TRUE(diff.pass());
    const MetricDiff* entry = findEntry(
        diff, "metrics.measured.counters.trace.events_dropped");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->status, DiffStatus::Info);
    EXPECT_FALSE(entry->failing());
}

TEST(Baseline, RoundTripStampsProvenance)
{
    JsonValue doc = parse(resultsText("EX", 2.0,
                                      "{\"lo\": 1, \"count\": 4}"));
    JsonValue baseline = toBaseline(doc);
    EXPECT_EQ(baseline.findPath("schema")->string(),
              phantom::runner::kResultSchemaV2);
    ASSERT_NE(baseline.findPath("baseline_of"), nullptr);
    EXPECT_EQ(baseline.findPath("baseline_of.git_describe")->string(),
              "abc");
    EXPECT_EQ(baseline.findPath("baseline_of.tool")->string(),
              "bench_report");

    std::string dir = ::testing::TempDir() + "/phantom_baselines";
    std::string path = dir + "/bench_synth.json";
    std::string error;
    // writeBaselineFile expects the directory to exist.
    std::filesystem::create_directories(dir);
    ASSERT_TRUE(writeBaselineFile(path, baseline, &error)) << error;

    JsonValue loaded;
    ASSERT_TRUE(loadResultsFile(path, loaded, &error)) << error;
    EXPECT_TRUE(loaded == baseline);

    std::map<std::string, JsonValue> store;
    ASSERT_TRUE(loadResultsDir(dir, store, &error)) << error;
    ASSERT_EQ(store.count("bench_synth"), 1u);

    // A baseline diffed against its own source differs only in the
    // informational baseline_of block.
    BenchDiff diff = diffResults("bench_synth", baseline, doc);
    EXPECT_TRUE(diff.pass());
    EXPECT_EQ(diff.summary.drifts, 0u);
}

TEST(Baseline, RejectsUnknownSchema)
{
    EXPECT_TRUE(isBenchResultsSchema("phantom-bench-results/v1"));
    EXPECT_TRUE(isBenchResultsSchema("phantom-bench-results/v2"));
    EXPECT_FALSE(isBenchResultsSchema("phantom-bench-results/v3"));
    EXPECT_FALSE(isBenchResultsSchema(""));

    std::string dir = ::testing::TempDir() + "/phantom_bad_schema";
    std::filesystem::create_directories(dir);
    std::ofstream(dir + "/bad.json") << "{\"schema\": \"nope\"}\n";
    std::map<std::string, JsonValue> store;
    std::string error;
    EXPECT_FALSE(loadResultsDir(dir, store, &error));
    EXPECT_FALSE(error.empty());
}

TEST(ResultSink, MetricPathsSortedAndComplete)
{
    runner::ResultSink sink("bench_x", 7, 1);
    auto& exp = sink.experiment("zeta");
    exp.addSample("metric_b", 1.0);
    exp.setScalar("scalar_a", 2.0);
    exp.setLabel("label_c", "EX");
    sink.experiment("alpha").setScalar("s", 1.0);

    auto paths = sink.metricPaths();
    EXPECT_TRUE(std::is_sorted(paths.begin(), paths.end()));
    auto has = [&](const char* p) {
        return std::find(paths.begin(), paths.end(), p) != paths.end();
    };
    EXPECT_TRUE(has("experiments.alpha.scalars.s"));
    EXPECT_TRUE(has("experiments.zeta.labels.label_c"));
    EXPECT_TRUE(has("experiments.zeta.metrics.metric_b"));
    EXPECT_TRUE(has("experiments.zeta.scalars.scalar_a"));

    // Every enumerated path is classified deterministic: the
    // experiments subtree is the seeded-simulation contract.
    for (const std::string& path : paths)
        EXPECT_EQ(classifyMetricPath(path), MetricClass::Deterministic)
            << path;
}

TEST(Paper, Fig6ConformanceChecksDipOffset)
{
    JsonValue good = parse(
        "{\"schema\": \"phantom-bench-results/v2\", "
        "\"bench\": \"bench_fig6\", \"experiments\": {"
        "\"zen2\": {\"scalars\": {\"dip_offset\": 2752, \"min_hits\": 1}},"
        "\"zen4\": {\"scalars\": {\"dip_offset\": 2752, \"min_hits\": 0}}"
        "}}");
    auto checks = paperConformance("bench_fig6", good);
    ASSERT_FALSE(checks.empty());
    for (const PaperCheck& check : checks)
        EXPECT_TRUE(check.pass) << check.item;

    JsonValue bad = parse(
        "{\"schema\": \"phantom-bench-results/v2\", "
        "\"bench\": \"bench_fig6\", \"experiments\": {"
        "\"zen2\": {\"scalars\": {\"dip_offset\": 64, \"min_hits\": 1}}}}");
    checks = paperConformance("bench_fig6", bad);
    bool failed = false;
    for (const PaperCheck& check : checks)
        if (check.applicable && !check.pass)
            failed = true;
    EXPECT_TRUE(failed);
}

TEST(Paper, UnknownBenchYieldsNoChecks)
{
    JsonValue doc = parse("{\"bench\": \"bench_unknown\"}");
    EXPECT_TRUE(paperConformance("bench_unknown", doc).empty());
}

/** A small host-profile section for resultsText's `extra` slot. */
std::string
profileExtra(u64 machine_self_ns, u64 decode_self_ns)
{
    return ",\n\"profile\": {"
           "\"schema\": \"phantom-host-profile/v1\", "
           "\"enabled\": true, \"clock\": \"tsc\", "
           "\"wall_ns\": 1000000, \"threads\": 1, "
           "\"phases\": {"
           "\"machine.run\": {\"count\": 10, \"timed_count\": 10, "
           "\"total_ns\": 900000, \"self_ns\": " +
           std::to_string(machine_self_ns) +
           "}, "
           "\"decode.miss\": {\"count\": 100, \"timed_count\": 25, "
           "\"total_ns\": 250000, \"self_ns\": " +
           std::to_string(decode_self_ns) +
           "}}, "
           "\"stacks\": [{\"stack\": \"machine.run\", \"count\": 10, "
           "\"total_ns\": 900000, \"self_ns\": 600000}]}";
}

TEST(Diff, ProfileSectionsRankTopPhasesAndNeverGate)
{
    JsonValue a = parse(resultsText("E", 2.0,
                                    "{\"lo\": 1, \"count\": 4}",
                                    profileExtra(600000, 50000)));
    JsonValue b = parse(resultsText("E", 2.0,
                                    "{\"lo\": 1, \"count\": 4}",
                                    profileExtra(500000, 60000)));
    BenchDiff diff = diffResults("bench_synth", a, b);
    // Profile differences are informational: the gate still passes.
    EXPECT_TRUE(diff.pass());
    ASSERT_EQ(diff.profileTop.size(), 2u);
    // Ranked by current-run estimated self time, descending. machine.run
    // is fully timed, so its estimate equals its raw self time; the
    // sampled decode.miss scales 60000 by 100/25.
    EXPECT_EQ(diff.profileTop[0].phase, "machine.run");
    EXPECT_NEAR(diff.profileTop[0].currentSelfMs, 0.5, 1e-9);
    EXPECT_NEAR(diff.profileTop[0].baselineSelfMs, 0.6, 1e-9);
    EXPECT_EQ(diff.profileTop[1].phase, "decode.miss");
    EXPECT_NEAR(diff.profileTop[1].currentSelfMs, 0.24, 1e-9);
    EXPECT_EQ(diff.profileTop[1].count, 100u);

    // One profiled side alone produces no table.
    JsonValue plain = parse(resultsText("E", 2.0,
                                        "{\"lo\": 1, \"count\": 4}"));
    EXPECT_TRUE(
        diffResults("bench_synth", plain, b).profileTop.empty());
    EXPECT_TRUE(
        diffResults("bench_synth", a, plain).profileTop.empty());

    // The report gains the "Top host phases" table for profiled pairs.
    std::map<std::string, JsonValue> current;
    current["bench_synth"] = b;
    std::string markdown = renderMarkdown(
        buildReport({diff}, current, DiffOptions{}));
    EXPECT_NE(markdown.find("Top host phases: bench_synth"),
              std::string::npos);
    EXPECT_NE(markdown.find("machine.run"), std::string::npos);
}

TEST(Report, MarkdownCarriesVerdictAndEscapesPipes)
{
    JsonValue a = parse(resultsText("E|X", 2.0,
                                    "{\"lo\": 1, \"count\": 4}"));
    JsonValue b = parse(resultsText("I|D", 2.0,
                                    "{\"lo\": 1, \"count\": 4}"));
    std::vector<BenchDiff> diffs = {diffResults("bench_synth", a, b)};
    std::map<std::string, JsonValue> current;
    current["bench_synth"] = b;
    Report report = buildReport(diffs, current, DiffOptions{});
    EXPECT_FALSE(report.pass);
    std::string markdown = renderMarkdown(report);
    EXPECT_NE(markdown.find("**Verdict: FAIL**"), std::string::npos);
    EXPECT_NE(markdown.find("DETERMINISTIC DRIFT"), std::string::npos);
    EXPECT_NE(markdown.find("E\\|X"), std::string::npos);
    std::string html = renderHtml(report);
    EXPECT_NE(html.find("Verdict: FAIL"), std::string::npos);
}

} // namespace
