/**
 * @file
 * The runner subsystem contract:
 *
 *  - scheduling is invisible: 1 worker and N workers produce identical
 *    per-trial results and identical merged statistics for a seed,
 *  - exceptions thrown inside worker trials propagate to the caller,
 *  - shard merging orders samples by trial, not by worker,
 *  - the ResultSink emits JSON that parses back to the same document,
 *  - SampleSet's cached sorted view stays correct across add().
 */

#include "runner/json.hpp"
#include "runner/result_sink.hpp"
#include "runner/scheduler.hpp"
#include "runner/seed_stream.hpp"
#include "runner/shard_stats.hpp"
#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace phantom::runner {
namespace {

/** A deterministic stand-in for one simulation trial. */
double
fakeTrial(u64 seed)
{
    Rng rng(seed);
    double acc = 0.0;
    for (int i = 0; i < 100; ++i)
        acc += rng.uniform();
    return acc;
}

TEST(TrialScheduler, ResultsIdenticalAcrossThreadCounts)
{
    SeedStream seeds(99);
    auto campaign = [&](unsigned jobs) {
        TrialScheduler scheduler(jobs);
        return scheduler.run(
            257, [&](u64 trial) { return fakeTrial(seeds.trialSeed(trial)); });
    };

    auto serial = campaign(1);
    for (unsigned jobs : {2u, 4u, 7u}) {
        auto parallel = campaign(jobs);
        // Bit-identical, not approximately equal: the whole point.
        EXPECT_EQ(serial, parallel) << "jobs=" << jobs;
    }
}

TEST(TrialScheduler, MergedStatisticsIdenticalAcrossThreadCounts)
{
    SeedStream seeds(7);
    auto campaign = [&](unsigned jobs) {
        TrialScheduler scheduler(jobs);
        std::vector<ShardStats> shards(scheduler.jobs());
        scheduler.forEach(100, [&](u64 trial, unsigned worker) {
            double x = fakeTrial(seeds.trialSeed(trial));
            shards[worker].add("metric", trial, x);
            shards[worker].add("half", trial, x / 2.0);
        });
        return mergeShards(shards);
    };

    auto serial = campaign(1);
    auto parallel = campaign(4);
    ASSERT_EQ(serial.size(), 2u);
    ASSERT_EQ(parallel.size(), 2u);
    for (const char* metric : {"metric", "half"}) {
        EXPECT_EQ(serial[metric].samples(), parallel[metric].samples());
        EXPECT_EQ(serial[metric].median(), parallel[metric].median());
        EXPECT_EQ(serial[metric].quantile(0.9),
                  parallel[metric].quantile(0.9));
    }
}

TEST(TrialScheduler, BoolResultsIdenticalAcrossThreadCounts)
{
    // bool results are staged in bytes (std::vector<bool> packs bits,
    // so parallel writes to neighbouring trials would race on the
    // shared word) — the staging must still return every trial's value.
    SeedStream seeds(11);
    auto campaign = [&](unsigned jobs) {
        TrialScheduler scheduler(jobs);
        return scheduler.run(513, [&](u64 trial) {
            return fakeTrial(seeds.trialSeed(trial)) > 50.0;
        });
    };

    auto serial = campaign(1);
    EXPECT_EQ(serial.size(), 513u);
    for (unsigned jobs : {2u, 4u, 7u})
        EXPECT_EQ(serial, campaign(jobs)) << "jobs=" << jobs;
}

TEST(TrialScheduler, RunsEveryTrialExactlyOnce)
{
    TrialScheduler scheduler(4);
    std::vector<std::atomic<int>> hits(1000);
    scheduler.forEach(1000, [&](u64 trial, unsigned) { ++hits[trial]; });
    for (const auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(TrialScheduler, PropagatesWorkerExceptions)
{
    TrialScheduler scheduler(4);
    try {
        scheduler.forEach(64, [&](u64 trial, unsigned) {
            if (trial == 13)
                throw std::runtime_error("trial 13 exploded");
        });
        FAIL() << "expected the worker exception to propagate";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "trial 13 exploded");
    }
}

TEST(TrialScheduler, PropagatesSerialExceptions)
{
    TrialScheduler scheduler(1);
    EXPECT_THROW(scheduler.forEach(4,
                                   [&](u64, unsigned) {
                                       throw std::runtime_error("serial");
                                   }),
                 std::runtime_error);
}

TEST(TrialScheduler, JobsDefaultsAndOverrides)
{
    EXPECT_EQ(TrialScheduler(3).jobs(), 3u);
    EXPECT_GE(TrialScheduler(0).jobs(), 1u);
    EXPECT_GE(hardwareJobs(), 1u);
}

TEST(TrialScheduler, TracksBusyTime)
{
    TrialScheduler scheduler(2);
    EXPECT_EQ(scheduler.busySeconds(), 0.0);
    scheduler.forEach(16, [&](u64 trial, unsigned) {
        volatile double sink = 0;
        for (int i = 0; i < 1000; ++i)
            sink = sink + fakeTrial(trial);
    });
    EXPECT_GT(scheduler.busySeconds(), 0.0);
}

TEST(ShardStats, MergeOrdersByTrialNotByWorker)
{
    // Worker 1 finished trials 0 and 2; worker 0 finished 1 and 3 —
    // merge must come out in trial order regardless.
    std::vector<ShardStats> shards(2);
    shards[1].add("m", 2, 20.0);
    shards[1].add("m", 0, 0.0);
    shards[0].add("m", 3, 30.0);
    shards[0].add("m", 1, 10.0);

    auto merged = mergeShards(shards);
    ASSERT_EQ(merged.count("m"), 1u);
    EXPECT_EQ(merged["m"].samples(),
              (std::vector<double>{0.0, 10.0, 20.0, 30.0}));
}

TEST(ShardStats, MergePreservesInsertionOrderWithinTrial)
{
    std::vector<ShardStats> shards(1);
    shards[0].add("m", 5, 3.0);
    shards[0].add("m", 5, 1.0);
    shards[0].add("m", 5, 2.0);
    auto merged = mergeShards(shards);
    EXPECT_EQ(merged["m"].samples(),
              (std::vector<double>{3.0, 1.0, 2.0}));
}

TEST(ShardStats, MergeSeparatesMetrics)
{
    std::vector<ShardStats> shards(2);
    shards[0].add("a", 0, 1.0);
    shards[1].add("b", 0, 2.0);
    auto merged = mergeShards(shards);
    EXPECT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged["a"].count(), 1u);
    EXPECT_EQ(merged["b"].count(), 1u);
}

TEST(SampleSetCache, SortedViewInvalidatedByAdd)
{
    SampleSet set;
    set.add(3.0);
    set.add(1.0);
    EXPECT_EQ(set.median(), 2.0);
    // A second add after a median() call must invalidate the cache.
    set.add(2.0);
    EXPECT_EQ(set.median(), 2.0);
    set.add(100.0);
    EXPECT_EQ(set.quantile(1.0), 100.0);
    EXPECT_EQ(set.sorted(), (std::vector<double>{1.0, 2.0, 3.0, 100.0}));
    // samples() stays in insertion order.
    EXPECT_EQ(set.samples(), (std::vector<double>{3.0, 1.0, 2.0, 100.0}));
}

TEST(Json, RoundTripsThroughDumpAndParse)
{
    JsonValue doc = JsonValue::object();
    doc.set("name", JsonValue("phantom \"quoted\" \n"));
    doc.set("count", JsonValue(u64{42}));
    doc.set("ratio", JsonValue(0.1));
    doc.set("flag", JsonValue(true));
    doc.set("nothing", JsonValue());
    JsonValue list = JsonValue::array();
    for (double x : {1.5, -2.25, 1e-17})
        list.push(JsonValue(x));
    doc.set("samples", std::move(list));

    for (int indent : {0, 2}) {
        JsonValue parsed;
        std::string error;
        ASSERT_TRUE(parseJson(doc.dump(indent), parsed, &error)) << error;
        EXPECT_EQ(parsed, doc);
    }
}

TEST(Json, RejectsMalformedInput)
{
    for (const char* bad : {"", "{", "{\"a\":}", "[1,]", "tru", "1x",
                            "{\"a\":1}x", "\"unterminated"}) {
        JsonValue out;
        std::string error;
        EXPECT_FALSE(parseJson(bad, out, &error)) << bad;
        EXPECT_FALSE(error.empty());
    }
}

TEST(Json, BoundsNestingDepth)
{
    auto nested = [](std::size_t depth) {
        std::string text(depth, '[');
        text.append(depth, ']');
        return text;
    };

    JsonValue out;
    std::string error;
    EXPECT_TRUE(parseJson(nested(64), out, &error)) << error;
    // Past the bound the parser must fail cleanly instead of recursing
    // until the stack overflows.
    EXPECT_FALSE(parseJson(nested(100000), out, &error));
    EXPECT_NE(error.find("nesting too deep"), std::string::npos);
}

TEST(Json, FindPathWalksNestedObjects)
{
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(R"({"a":{"b":{"c":3}}})", doc, &error));
    const JsonValue* c = doc.findPath("a.b.c");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->number(), 3.0);
    EXPECT_EQ(doc.findPath("a.b.missing"), nullptr);
    EXPECT_EQ(doc.findPath("a.b.c.d"), nullptr);
}

TEST(ResultSink, WritesParseableJsonWithExperiments)
{
    ResultSink sink("test_bench", 7, 2);
    auto& exp = sink.experiment("exp1");
    exp.addSample("metric", 1.0);
    exp.addSample("metric", 2.0);
    exp.setScalar("count", 2.0);
    exp.setLabel("verdict", "ok");
    sink.experiment("exp2").addSample("other", 0.5);
    sink.setBusySeconds(1.5);

    std::string path =
        testing::TempDir() + "/phantom_result_sink_test.json";
    ASSERT_EQ(sink.writeJson(path), path);

    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(buffer.str(), doc, &error)) << error;

    EXPECT_EQ(doc.findPath("schema")->string(),
              phantom::runner::kResultSchemaV2);
    EXPECT_EQ(doc.findPath("campaign_seed")->number(), 7.0);
    EXPECT_EQ(doc.findPath("jobs")->number(), 2.0);
    ASSERT_NE(doc.findPath("experiments.exp1.metrics.metric"), nullptr);
    EXPECT_EQ(
        doc.findPath("experiments.exp1.metrics.metric.count")->number(),
        2.0);
    EXPECT_EQ(
        doc.findPath("experiments.exp1.metrics.metric.median")->number(),
        1.5);
    EXPECT_EQ(doc.findPath("experiments.exp1.scalars.count")->number(),
              2.0);
    EXPECT_EQ(doc.findPath("experiments.exp1.labels.verdict")->string(),
              "ok");
    ASSERT_NE(doc.findPath("experiments.exp2"), nullptr);
    EXPECT_GT(doc.findPath("timing.busy_seconds")->number(), 0.0);
    std::remove(path.c_str());
}

TEST(ResultSink, ReportsFailureOnUnwritablePath)
{
    ResultSink sink("nope", 1, 1);
    EXPECT_EQ(sink.writeJson("/nonexistent-dir/x/y.json"), "");
}

} // namespace
} // namespace phantom::runner
