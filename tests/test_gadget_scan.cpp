/**
 * @file
 * Tests for the §9.3 gadget-surface scanner.
 */

#include "analysis/gadget_scan.hpp"
#include "isa/assembler.hpp"

#include <gtest/gtest.h>

namespace phantom::analysis {
namespace {

using namespace isa;

std::vector<u8>
assemble(void (*build)(Assembler&))
{
    Assembler code(0);
    build(code);
    return code.finish();
}

TEST(GadgetScan, ClassicDoubleLoadDetected)
{
    auto code = assemble([](Assembler& c) {
        c.cmpImm(RDI, 16);
        c.jcc(Cond::Ge, c.here() + 6 + 12);
        c.load(RAX, RDI, 0x40);     // secret = array[index]
        c.load(RBX, RAX, 0);        // encode(secret)
        c.ret();
    });
    auto result = scanGadgets(code, 0);
    EXPECT_EQ(result.conditionalBranches, 1u);
    EXPECT_EQ(result.classicGadgets, 1u);
    EXPECT_EQ(result.phantomGadgets, 1u);
}

TEST(GadgetScan, SingleLoadIsPhantomOnly)
{
    auto code = assemble([](Assembler& c) {
        c.cmpImm(RDI, 16);
        c.jcc(Cond::Ge, c.here() + 6 + 6);
        c.load(RAX, RDI, 0x40);     // the Listing-4 MDS gadget
        c.ret();
    });
    auto result = scanGadgets(code, 0);
    EXPECT_EQ(result.classicGadgets, 0u);
    EXPECT_EQ(result.phantomGadgets, 1u);
}

TEST(GadgetScan, TaintFlowsThroughArithmetic)
{
    auto code = assemble([](Assembler& c) {
        c.cmpImm(RDI, 16);
        c.jcc(Cond::Ge, c.here() + 6 + 30);
        c.load(RAX, RDI, 0);
        c.shl(RAX, 6);              // shift does not clear taint...
        c.movReg(RBX, RAX);         // ...and moves propagate it
        c.add(RBX, RSI);
        c.load(RCX, RBX, 0);        // dependent second load
        c.ret();
    });
    auto result = scanGadgets(code, 0);
    EXPECT_EQ(result.classicGadgets, 1u);
}

TEST(GadgetScan, OverwriteClearsTaint)
{
    auto code = assemble([](Assembler& c) {
        c.cmpImm(RDI, 16);
        c.jcc(Cond::Ge, c.here() + 6 + 30);
        c.load(RAX, RDI, 0);
        c.movImm(RAX, 0);           // secret destroyed
        c.load(RCX, RAX, 0);        // independent load: not classic
        c.ret();
    });
    auto result = scanGadgets(code, 0);
    EXPECT_EQ(result.classicGadgets, 0u);
    EXPECT_EQ(result.phantomGadgets, 1u);
}

TEST(GadgetScan, LfenceClosesTheWindow)
{
    auto code = assemble([](Assembler& c) {
        c.cmpImm(RDI, 16);
        c.jcc(Cond::Ge, c.here() + 6 + 30);
        c.lfence();                 // recommended mitigation (§8.2)
        c.load(RAX, RDI, 0);
        c.load(RBX, RAX, 0);
        c.ret();
    });
    auto result = scanGadgets(code, 0);
    EXPECT_EQ(result.classicGadgets, 0u);
    EXPECT_EQ(result.phantomGadgets, 0u);
}

TEST(GadgetScan, WindowBudgetLimitsReach)
{
    auto code = assemble([](Assembler& c) {
        c.cmpImm(RDI, 16);
        c.jcc(Cond::Ge, c.here() + 6 + 200);
        for (int i = 0; i < 30; ++i)
            c.nop();
        c.load(RAX, RDI, 0);        // beyond an 8-insn window
        c.ret();
    });
    GadgetScanOptions narrow;
    narrow.windowInsns = 8;
    EXPECT_EQ(scanGadgets(code, 0, narrow).phantomGadgets, 0u);
    GadgetScanOptions wide;
    wide.windowInsns = 40;
    EXPECT_EQ(scanGadgets(code, 0, wide).phantomGadgets, 1u);
}

TEST(GadgetScan, SyntheticTextShowsSurfaceExpansion)
{
    auto text = syntheticKernelText(1 << 20, 99);
    auto result = scanGadgets(text, 0);
    EXPECT_GT(result.conditionalBranches, 100u);
    EXPECT_GT(result.classicGadgets, 0u);
    // The paper's qualitative claim: several times more single-load
    // gadgets than dependent double-load gadgets.
    EXPECT_GE(result.expansionFactor(), 2.0);
    EXPECT_LE(result.expansionFactor(), 20.0);
}

TEST(GadgetScan, SyntheticTextIsDeterministic)
{
    EXPECT_EQ(syntheticKernelText(1 << 16, 4), syntheticKernelText(1 << 16, 4));
    EXPECT_NE(syntheticKernelText(1 << 16, 4), syntheticKernelText(1 << 16, 5));
}

} // namespace
} // namespace phantom::analysis
