/**
 * @file
 * Software mitigation tests (§2.4, §8): retpolines kill classic
 * Spectre-V2 injection but are bypassed by return type confusion on
 * Zen 1/2 (the Retbleed lineage) and are irrelevant to PHANTOM, which
 * hijacks arbitrary instructions; IBPB on privilege transitions stops
 * the cross-privilege attacks.
 */

#include "attack/testbed.hpp"
#include "os/retpoline.hpp"

#include <gtest/gtest.h>

namespace phantom {
namespace {

using namespace isa;
using attack::PredictionInjector;
using attack::Testbed;

cpu::MicroarchConfig
quiet(cpu::MicroarchConfig cfg)
{
    cfg.noise = mem::NoiseConfig{};
    return cfg;
}

/**
 * Victim fixture: a kernel module that performs an indirect jump to a
 * table-selected function, either directly (jmp*) or via a retpoline.
 * The attacker tries to steer speculation towards `gadgetVa`, a kernel
 * gadget loading [rsi] (whose D-cache footprint is the signal).
 */
struct DispatchVictim
{
    Testbed bed;
    VAddr branchSiteVa = 0;    ///< the jmp* (or retpoline ret) address
    VAddr gadgetVa = 0;        ///< load rax, [rsi]; ret
    VAddr signalVa = 0;        ///< kernel data line the gadget touches
    u64 syscallNr = os::kSysModuleBase;

    explicit DispatchVictim(const cpu::MicroarchConfig& cfg,
                            bool retpoline)
        : bed(quiet(cfg))
    {
        // Kernel gadget: the disclosure target the attacker wants
        // executed speculatively.
        constexpr VAddr kGadgetPage = 0xffffffffc8000000ull;
        Assembler gadget(kGadgetPage);
        gadget.load(RAX, RSI, 0);
        gadget.ret();
        bed.kernel.mapKernelCode(kGadgetPage, gadget.finish());
        gadgetVa = kGadgetPage;

        constexpr VAddr kSignalPage = 0xffffffffc9000000ull;
        bed.kernel.mapKernelData(kSignalPage, kPageBytes);
        signalVa = kSignalPage + 0x540;

        // Module: r8 = &legit; <indirect jump r8>; legit: ret
        Assembler code(0);
        Label legit = code.newLabel();
        code.movImm(R8, 0);                    // patched after load
        u64 imm_offset = code.size() - 8;
        u64 site_offset;
        if (retpoline) {
            auto site = os::emitRetpolineJmp(code, R8);
            site_offset = site.retVa;          // base-relative (base==0)
        } else {
            site_offset = code.size();
            code.jmpInd(R8);
        }
        code.padTo(0x100);
        code.bind(legit);
        code.nop();
        code.ret();
        VAddr base = bed.kernel.loadModule(code.finish(), syscallNr);
        branchSiteVa = base + site_offset;
        // Patch the legit target immediate now that the base is known.
        bed.machine.debugWrite64(base + imm_offset, base + 0x100);

        bed.syscall(syscallNr, 0, signalVa);   // warm
        bed.syscall(syscallNr, 0, signalVa);
    }

    /** Attack round: inject at the branch site, run, check the signal. */
    bool
    attack()
    {
        PredictionInjector injector(bed);
        injector.inject(branchSiteVa, gadgetVa);
        bed.machine.clflushVirt(signalVa);
        bed.syscall(syscallNr, 0, signalVa);
        Cycle lat =
            bed.machine.timedDataAccess(signalVa, Privilege::Kernel);
        return lat < bed.machine.caches().config().latMem;
    }
};

TEST(Retpoline, EmitsExpectedShape)
{
    Assembler code(0x400000);
    auto site = os::emitRetpolineJmp(code, R8);
    auto bytes = code.finish();
    // The ret is the last byte; the call is first.
    Insn call = decode(bytes.data(), bytes.size());
    EXPECT_EQ(call.kind, InsnKind::CallRel);
    Insn ret = decode(bytes.data() + (site.retVa - 0x400000),
                      bytes.size() - (site.retVa - 0x400000));
    EXPECT_EQ(ret.kind, InsnKind::Ret);
}

TEST(Retpoline, ArchitecturallyEquivalentToIndirectJmp)
{
    Testbed bed(quiet(cpu::zen2()));
    Assembler code(0x400000);
    Label target = code.newLabel();
    code.movImm(R8, 0);
    u64 imm_at = code.here() - 8;
    os::emitRetpolineJmp(code, R8);
    code.padTo(0x400080);
    code.bind(target);
    code.movImm(RBX, 77);
    code.hlt();
    bed.process.mapCode(0x400000, code.finish());
    bed.machine.debugWrite64(imm_at, 0x400080);

    auto result = bed.runUser(0x400000);
    EXPECT_EQ(result.reason, cpu::ExitReason::Halt);
    EXPECT_EQ(bed.machine.regs().read(RBX), 77u);
}

TEST(Retpoline, StopsIndirectTargetInjection)
{
    // Classic Spectre-V2 against the plain jmp* works on Zen 4 (the
    // injected absolute target is followed until execute resolves)...
    DispatchVictim plain(cpu::zen4(), /*retpoline=*/false);
    EXPECT_TRUE(plain.attack());

    // ...and the retpoline kills it: the RSB-predicted return lands in
    // the lfence trap, never at the injected target.
    DispatchVictim protected_victim(cpu::zen4(), /*retpoline=*/true);
    EXPECT_FALSE(protected_victim.attack());
}

TEST(Retpoline, BypassedByRetTypeConfusionOnZen12)
{
    // Retbleed: on Zen 1/2 the decoder does not validate the predicted
    // type at a ret, so a jmp*-trained prediction at the retpoline's ret
    // still speculates to the attacker target.
    DispatchVictim zen2(cpu::zen2(), /*retpoline=*/true);
    EXPECT_TRUE(zen2.attack());

    DispatchVictim zen3(cpu::zen3(), /*retpoline=*/true);
    EXPECT_FALSE(zen3.attack());
}

TEST(Retpoline, IrrelevantToPhantomOnNonBranches)
{
    // PHANTOM does not need the victim to contain any indirect branch:
    // injection at the getpid nop works regardless of how the kernel's
    // indirect branches were compiled.
    for (bool retpoline : {false, true}) {
        DispatchVictim victim(cpu::zen2(), retpoline);
        Testbed& bed = victim.bed;
        bed.syscall(os::kSysGetpid);
        PredictionInjector injector(bed);
        VAddr target = bed.kernel.imageBase() + 0x3000;
        injector.inject(bed.kernel.getpidGadgetVa(), target);
        bed.machine.clflushVirt(target);
        bed.syscall(os::kSysGetpid);
        Cycle lat =
            bed.machine.timedFetchAccess(target, Privilege::Kernel);
        EXPECT_LT(lat, bed.machine.caches().config().latMem)
            << "retpoline=" << retpoline;
    }
}

TEST(Ibpb, OnSyscallStopsCrossPrivilegeInjection)
{
    DispatchVictim victim(cpu::zen2(), /*retpoline=*/false);
    victim.bed.machine.setIbpbOnSyscall(true);
    EXPECT_FALSE(victim.attack());
}

TEST(Ibpb, ManualBarrierFlushesInjectedPrediction)
{
    Testbed bed(quiet(cpu::zen3()));
    bed.syscall(os::kSysGetpid);
    PredictionInjector injector(bed);
    VAddr target = bed.kernel.imageBase() + 0x3000;
    injector.inject(bed.kernel.getpidGadgetVa(), target);
    bed.machine.writeMsr(cpu::msr::kPredCmd, cpu::msr::kIbpbBit);
    bed.machine.clflushVirt(target);
    bed.syscall(os::kSysGetpid);
    Cycle lat = bed.machine.timedFetchAccess(target, Privilege::Kernel);
    EXPECT_EQ(lat, bed.machine.caches().config().latMem);
}

} // namespace
} // namespace phantom
