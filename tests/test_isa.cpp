/**
 * @file
 * Unit tests for the ISA: encode/decode roundtrips, instruction
 * classification, and the assembler's label fixups.
 */

#include "isa/assembler.hpp"
#include "isa/encoder.hpp"

#include <gtest/gtest.h>

namespace phantom::isa {
namespace {

std::vector<Insn>
sampleInstructions()
{
    return {
        makeNop(),
        makeNopN(5),
        makeNopN(15),
        makeMovImm(RAX, 0xdeadbeefcafebabeull),
        makeMovReg(RBX, RCX),
        makeLoad(RDX, RSI, 0x1234),
        makeLoad(R13, R9, -64),
        makeStore(RDI, -8, R8),
        makeAdd(R9, R10),
        makeAddImm(R11, 100),
        makeSub(R12, R13),
        makeSubImm(RSP, 8),
        makeXor(R14, R15),
        makeAnd(RAX, RBX),
        makeAndImm(RCX, 0xff),
        makeShl(RDX, 6),
        makeShr(RSI, 12),
        makeCmpImm(RDI, 42),
        makeCmpReg(R8, R9),
        makeJmpRel(0x1000),
        makeJmpRel(-0x1000),
        makeJccRel(Cond::Eq, 0x40),
        makeJccRel(Cond::Ne, -0x40),
        makeJccRel(Cond::Lt, 8),
        makeJccRel(Cond::Ge, 8),
        makeJmpInd(R8),
        makeCallRel(0x2000),
        makeCallInd(R11),
        makeRet(),
        makePush(RBP),
        makePop(RBP),
        makeSyscall(),
        makeSysret(),
        makeLfence(),
        makeMfence(),
        makeClflush(RDI),
        makeRdtsc(),
        makeRdpmc(),
        makeHlt(),
        makeUd2(),
    };
}

TEST(IsaEncode, RoundTripAllKinds)
{
    for (const Insn& insn : sampleInstructions()) {
        std::vector<u8> bytes;
        std::size_t len = encode(insn, bytes);
        ASSERT_EQ(len, bytes.size());
        ASSERT_EQ(len, insn.length) << toString(insn);

        Insn decoded = decode(bytes.data(), bytes.size());
        EXPECT_EQ(decoded.kind, insn.kind) << toString(insn);
        EXPECT_EQ(decoded.length, insn.length) << toString(insn);
        EXPECT_EQ(decoded.dst, insn.dst) << toString(insn);
        EXPECT_EQ(decoded.src, insn.src) << toString(insn);
        EXPECT_EQ(decoded.disp, insn.disp) << toString(insn);
        if (insn.kind != InsnKind::NopN) {
            EXPECT_EQ(decoded.imm, insn.imm) << toString(insn);
        }
        EXPECT_EQ(decoded.cond, insn.cond) << toString(insn);
    }
}

TEST(IsaEncode, TruncatedBytesDecodeInvalid)
{
    for (const Insn& insn : sampleInstructions()) {
        if (insn.length == 1)
            continue;
        std::vector<u8> bytes;
        encode(insn, bytes);
        // Any strict prefix must decode as Invalid, never out-of-bounds.
        for (std::size_t cut = 1; cut + 1 < bytes.size(); ++cut) {
            Insn decoded = decode(bytes.data(), cut);
            if (decoded.kind != InsnKind::Invalid) {
                EXPECT_LE(decoded.length, cut) << toString(insn);
            }
        }
    }
}

TEST(IsaEncode, UnknownOpcodeDecodesInvalid)
{
    u8 bad[] = {0x06, 0x00, 0x00};
    Insn insn = decode(bad, sizeof(bad));
    EXPECT_EQ(insn.kind, InsnKind::Invalid);
    EXPECT_EQ(insn.length, 1);
}

TEST(IsaBranchType, Classification)
{
    EXPECT_EQ(makeJmpRel(0).branchType(), BranchType::DirectJump);
    EXPECT_EQ(makeJccRel(Cond::Eq, 0).branchType(), BranchType::CondJump);
    EXPECT_EQ(makeJmpInd(RAX).branchType(), BranchType::IndirectJump);
    EXPECT_EQ(makeCallRel(0).branchType(), BranchType::DirectCall);
    EXPECT_EQ(makeCallInd(RAX).branchType(), BranchType::IndirectCall);
    EXPECT_EQ(makeRet().branchType(), BranchType::Return);
    EXPECT_EQ(makeNop().branchType(), BranchType::None);
    EXPECT_EQ(makeLoad(RAX, RBX, 0).branchType(), BranchType::None);
}

TEST(IsaBranchType, ExecuteDependence)
{
    EXPECT_FALSE(makeJmpRel(0).isExecuteDependent());
    EXPECT_FALSE(makeCallRel(0).isExecuteDependent());
    EXPECT_TRUE(makeJccRel(Cond::Eq, 0).isExecuteDependent());
    EXPECT_TRUE(makeJmpInd(RAX).isExecuteDependent());
    EXPECT_TRUE(makeCallInd(RAX).isExecuteDependent());
    EXPECT_TRUE(makeRet().isExecuteDependent());
}

TEST(IsaInsn, RelTarget)
{
    Insn jmp = makeJmpRel(0x100);
    EXPECT_EQ(jmp.relTarget(0x1000), 0x1000u + 5 + 0x100);
    Insn back = makeJmpRel(-0x10);
    EXPECT_EQ(back.relTarget(0x1000), 0x1000u + 5 - 0x10);
}

TEST(Assembler, ForwardLabelFixup)
{
    Assembler code(0x400000);
    Label skip = code.newLabel();
    code.jmp(skip);
    code.movImm(RAX, 1);
    code.bind(skip);
    code.hlt();
    std::vector<u8> bytes = code.finish();

    Insn jmp = decode(bytes.data(), bytes.size());
    ASSERT_EQ(jmp.kind, InsnKind::JmpRel);
    EXPECT_EQ(jmp.relTarget(0x400000), code.labelAddress(skip));
}

TEST(Assembler, BackwardBranch)
{
    Assembler code(0x400000);
    Label loop = code.newLabel();
    code.bind(loop);
    code.addImm(RAX, 1);
    code.jcc(Cond::Ne, loop);
    std::vector<u8> bytes = code.finish();

    Insn jcc = decode(bytes.data() + 6, bytes.size() - 6);
    ASSERT_EQ(jcc.kind, InsnKind::JccRel);
    EXPECT_EQ(jcc.relTarget(0x400006), 0x400000u);
}

TEST(Assembler, PadToAndAlign)
{
    Assembler code(0x400000);
    code.nop();
    code.padTo(0x400040);
    EXPECT_EQ(code.here(), 0x400040u);
    code.nop();
    code.alignTo(64);
    EXPECT_EQ(code.here() % 64, 0u);
}

TEST(Assembler, AbsoluteTargetBranch)
{
    Assembler code(0x400000);
    code.jmp(VAddr{0x500000});
    std::vector<u8> bytes = code.finish();
    Insn jmp = decode(bytes.data(), bytes.size());
    EXPECT_EQ(jmp.relTarget(0x400000), 0x500000u);
}

TEST(Assembler, UnboundLabelThrows)
{
    Assembler code(0x400000);
    Label never = code.newLabel();
    code.jmp(never);
    EXPECT_THROW(code.finish(), std::logic_error);
}

TEST(IsaDisasm, ProducesText)
{
    EXPECT_EQ(toString(makeRet()), "ret");
    EXPECT_EQ(toString(makeJmpInd(R8)), "jmp *r8");
    EXPECT_NE(toString(makeLoad(R12, R12, 0xbe0)).find("r12"),
              std::string::npos);
}

} // namespace
} // namespace phantom::isa
