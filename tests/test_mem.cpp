/**
 * @file
 * Unit tests for the memory subsystem: sparse physical memory, page
 * tables and permissions, set-associative caches with LRU, the cache
 * hierarchy's latencies, the µop cache, and the noise injector.
 */

#include "mem/cache.hpp"
#include "mem/hierarchy.hpp"
#include "mem/noise.hpp"
#include "mem/paging.hpp"
#include "mem/phys_mem.hpp"
#include "mem/uop_cache.hpp"

#include <gtest/gtest.h>

namespace phantom::mem {
namespace {

// ---- PhysicalMemory ---------------------------------------------------------

TEST(PhysMem, ZeroInitializedAndSparse)
{
    PhysicalMemory mem(1ull << 30);
    EXPECT_EQ(mem.read64(0x12345), 0u);
    EXPECT_EQ(mem.framesAllocated(), 0u);   // reads allocate nothing
    mem.write8(0x12345, 0xab);
    EXPECT_EQ(mem.framesAllocated(), 1u);
    EXPECT_EQ(mem.read8(0x12345), 0xab);
}

TEST(PhysMem, Read64LittleEndian)
{
    PhysicalMemory mem(1 << 20);
    mem.write8(0x100, 0x11);
    mem.write8(0x101, 0x22);
    EXPECT_EQ(mem.read64(0x100), 0x2211u);
    mem.write64(0x200, 0x0807060504030201ull);
    EXPECT_EQ(mem.read8(0x200), 0x01);
    EXPECT_EQ(mem.read8(0x207), 0x08);
}

TEST(PhysMem, BlockOpsCrossFrames)
{
    PhysicalMemory mem(1 << 20);
    std::vector<u8> blob(kPageBytes + 100);
    for (std::size_t i = 0; i < blob.size(); ++i)
        blob[i] = static_cast<u8>(i * 7);
    mem.writeBlock(kPageBytes - 50, blob);
    auto out = mem.readBlock(kPageBytes - 50, blob.size());
    EXPECT_EQ(out, blob);
}

TEST(PhysMem, OutOfRangeThrows)
{
    PhysicalMemory mem(1 << 20);
    EXPECT_THROW(mem.write8(1 << 20, 1), std::out_of_range);
    EXPECT_THROW(mem.read8((1 << 20) + 5), std::out_of_range);
}

// ---- PageTable --------------------------------------------------------------

TEST(Paging, Map4kTranslate)
{
    PageTable pt;
    PageFlags flags;
    flags.user = true;
    flags.executable = true;
    pt.map4k(0x400000, 0x10000, flags);

    auto t = pt.translate(0x400123, Privilege::User, Access::Read);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t.paddr, 0x10123u);
    EXPECT_FALSE(t.huge);
}

TEST(Paging, Map2mTranslate)
{
    PageTable pt;
    PageFlags flags;
    pt.map2m(0x40000000, 0x200000, flags);
    auto t = pt.translate(0x400fffff, Privilege::Kernel, Access::Write);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t.paddr, 0x200000u + 0xfffff);
    EXPECT_TRUE(t.huge);
}

TEST(Paging, FaultKinds)
{
    PageTable pt;
    PageFlags kernel_rw;               // not user, not executable
    pt.map4k(0x1000, 0x2000, kernel_rw);

    EXPECT_EQ(pt.translate(0x9000, Privilege::Kernel, Access::Read).fault,
              Fault::NotPresent);
    EXPECT_EQ(pt.translate(0x1000, Privilege::User, Access::Read).fault,
              Fault::Protection);
    EXPECT_EQ(pt.translate(0x1000, Privilege::Kernel, Access::Fetch).fault,
              Fault::NoExec);

    PageFlags ro = kernel_rw;
    ro.writable = false;
    pt.protect(0x1000, ro);
    EXPECT_EQ(pt.translate(0x1000, Privilege::Kernel, Access::Write).fault,
              Fault::Protection);
    EXPECT_TRUE(pt.translate(0x1000, Privilege::Kernel, Access::Read).ok());
}

TEST(Paging, NonCanonicalFaults)
{
    PageTable pt;
    EXPECT_EQ(pt.translate(0x0008000000000000ull, Privilege::Kernel,
                           Access::Read)
                  .fault,
              Fault::NonCanonical);
}

TEST(Paging, UnmapRemoves)
{
    PageTable pt;
    pt.map4k(0x1000, 0x2000, PageFlags{});
    EXPECT_TRUE(pt.translate(0x1000, Privilege::Kernel, Access::Read).ok());
    pt.unmap(0x1000);
    EXPECT_EQ(pt.translate(0x1000, Privilege::Kernel, Access::Read).fault,
              Fault::NotPresent);
}

TEST(Paging, SmallOverridesHugeOnLookupOrder)
{
    PageTable pt;
    pt.map2m(0x200000, 0x400000, PageFlags{});
    PageFlags special;
    pt.map4k(0x201000, 0x900000, special);
    // The 4 KiB entry shadows the region it covers.
    auto t = pt.translate(0x201010, Privilege::Kernel, Access::Read);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t.paddr, 0x900010u);
}

// ---- Cache ------------------------------------------------------------------

TEST(CacheModel, HitAfterFill)
{
    Cache cache("t", CacheGeometry{64, 8, 64});
    EXPECT_FALSE(cache.contains(0x1000));
    EXPECT_FALSE(cache.access(0x1000));   // miss + fill
    EXPECT_TRUE(cache.contains(0x1000));
    EXPECT_TRUE(cache.access(0x1000));    // hit
    EXPECT_EQ(cache.hitCount(), 1u);
    EXPECT_EQ(cache.missCount(), 1u);
}

TEST(CacheModel, SameLineSharesEntry)
{
    Cache cache("t", CacheGeometry{64, 8, 64});
    cache.access(0x1000);
    EXPECT_TRUE(cache.access(0x103f));    // same 64-byte line
    EXPECT_FALSE(cache.access(0x1040));   // next line
}

TEST(CacheModel, LruEvictionOrder)
{
    Cache cache("t", CacheGeometry{4, 2, 64});
    // Two ways in set 0: fill A, B, touch A, fill C -> B evicted.
    u64 a = 0 * 4 * 64, b = 1 * 4 * 64 + a, c = 2 * 4 * 64 + a;
    b = a + 4 * 64;
    c = a + 8 * 64;
    cache.access(a);
    cache.access(b);
    cache.access(a);          // refresh A
    cache.access(c);          // evicts LRU = B
    EXPECT_TRUE(cache.contains(a));
    EXPECT_FALSE(cache.contains(b));
    EXPECT_TRUE(cache.contains(c));
}

TEST(CacheModel, FlushOperations)
{
    Cache cache("t", CacheGeometry{8, 2, 64});
    cache.access(0x0);
    cache.access(0x40);
    EXPECT_TRUE(cache.flushLine(0x0));
    EXPECT_FALSE(cache.flushLine(0x0));   // already gone
    EXPECT_FALSE(cache.contains(0x0));
    EXPECT_TRUE(cache.contains(0x40));
    cache.flushAll();
    EXPECT_FALSE(cache.contains(0x40));
}

TEST(CacheModel, OccupancyAndSetFlush)
{
    Cache cache("t", CacheGeometry{4, 4, 64});
    for (u64 w = 0; w < 4; ++w)
        cache.fill(w * 4 * 64);           // all land in set 0
    EXPECT_EQ(cache.occupancy(0), 4u);
    EXPECT_EQ(cache.occupancy(1), 0u);
    cache.evictLruOf(0);
    EXPECT_EQ(cache.occupancy(0), 3u);
    cache.flushSet(0);
    EXPECT_EQ(cache.occupancy(0), 0u);
}

/** Parameterized LRU property: filling ways+1 distinct lines into one
 *  set always evicts exactly the first-touched line. */
class CacheGeometrySweep : public ::testing::TestWithParam<CacheGeometry>
{
};

TEST_P(CacheGeometrySweep, FillingSetEvictsOldest)
{
    CacheGeometry geom = GetParam();
    Cache cache("t", geom);
    u64 stride = u64{geom.sets} * geom.lineBytes;
    for (u32 w = 0; w < geom.ways + 1; ++w)
        cache.access(u64{w} * stride);
    EXPECT_FALSE(cache.contains(0));
    for (u32 w = 1; w < geom.ways + 1; ++w)
        EXPECT_TRUE(cache.contains(u64{w} * stride)) << w;
    EXPECT_EQ(cache.occupancy(0), geom.ways);
}

TEST_P(CacheGeometrySweep, DistinctSetsDoNotInterfere)
{
    CacheGeometry geom = GetParam();
    if (geom.sets < 2)
        GTEST_SKIP();
    Cache cache("t", geom);
    u64 stride = u64{geom.sets} * geom.lineBytes;
    // Saturate set 0.
    for (u32 w = 0; w < geom.ways * 2; ++w)
        cache.access(u64{w} * stride);
    // Set 1 untouched.
    EXPECT_EQ(cache.occupancy(1), 0u);
    cache.access(geom.lineBytes);
    EXPECT_EQ(cache.occupancy(1), 1u);
    EXPECT_EQ(cache.occupancy(0), geom.ways);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometrySweep,
    ::testing::Values(CacheGeometry{1, 1, 64}, CacheGeometry{4, 2, 64},
                      CacheGeometry{64, 8, 64}, CacheGeometry{1024, 8, 64},
                      CacheGeometry{16, 16, 64}, CacheGeometry{64, 8, 32}));

// ---- CacheHierarchy ----------------------------------------------------------

TEST(Hierarchy, LatencyLadder)
{
    CacheHierarchy caches;
    const auto& cfg = caches.config();
    EXPECT_EQ(caches.dataAccess(0x1000), cfg.latMem);   // cold
    EXPECT_EQ(caches.dataAccess(0x1000), cfg.latL1);    // L1 hit
    caches.l1d().flushLine(0x1000);
    EXPECT_EQ(caches.dataAccess(0x1000), cfg.latL2);    // L2 hit
    EXPECT_EQ(caches.dataAccess(0x1000), cfg.latL1);
}

TEST(Hierarchy, FetchAndDataAreSplitAtL1)
{
    CacheHierarchy caches;
    const auto& cfg = caches.config();
    caches.fetchAccess(0x2000);
    // Same line as data: misses L1D but hits the shared L2.
    EXPECT_EQ(caches.dataAccess(0x2000), cfg.latL2);
}

TEST(Hierarchy, FlushLineEvictsAllLevels)
{
    CacheHierarchy caches;
    const auto& cfg = caches.config();
    caches.dataAccess(0x3000);
    caches.flushLine(0x3000);
    EXPECT_EQ(caches.dataAccess(0x3000), cfg.latMem);
}

// ---- UopCache ----------------------------------------------------------------

TEST(UopCacheModel, SetSelectionByLow12Bits)
{
    UopCache cache;
    // Bits [11:6] select the set: page offset determines it.
    EXPECT_EQ(cache.setIndex(0xac0), 0xac0u / 64);
    EXPECT_EQ(cache.setIndex(0x10000ac0ull), 0xac0u / 64);
    EXPECT_EQ(cache.setIndex(0x000), 0u);
}

TEST(UopCacheModel, EightWaysPerSet)
{
    UopCache cache;
    // 9 lines at the same page offset (distinct pages): one eviction.
    for (u64 k = 0; k < 9; ++k)
        cache.lookupFill(k * kPageBytes + 0xac0);
    EXPECT_EQ(cache.occupancy(0xac0 / 64), 8u);
    EXPECT_FALSE(cache.contains(0xac0));          // oldest evicted
    EXPECT_TRUE(cache.contains(8 * kPageBytes + 0xac0));
}

TEST(UopCacheModel, HitMissCounts)
{
    UopCache cache;
    EXPECT_FALSE(cache.lookupFill(0x1000));
    EXPECT_TRUE(cache.lookupFill(0x1000));
    EXPECT_EQ(cache.hitCount(), 1u);
    EXPECT_EQ(cache.missCount(), 1u);
}

// ---- NoiseInjector -------------------------------------------------------------

TEST(Noise, DeterministicForSeed)
{
    NoiseConfig config;
    config.l1iEvictChance = 2.5;
    config.l1dEvictChance = 0.7;

    auto run = [&](u64 seed) {
        CacheHierarchy caches;
        for (u64 line = 0; line < 512; ++line)
            caches.dataAccess(line * 64);
        NoiseInjector noise(config, seed);
        noise.disturb(caches, 100);
        u64 occupied = 0;
        for (u32 s = 0; s < caches.l1d().geometry().sets; ++s)
            occupied += caches.l1d().occupancy(s);
        return occupied;
    };

    EXPECT_EQ(run(1), run(1));
    // Evictions did happen.
    EXPECT_LT(run(1), 512u);
}

TEST(Noise, ZeroConfigIsNoOp)
{
    CacheHierarchy caches;
    caches.dataAccess(0x0);
    NoiseInjector noise(NoiseConfig{}, 3);
    noise.disturb(caches, 1000);
    EXPECT_TRUE(caches.l1d().contains(0x0));
}

TEST(Noise, ExpectedEvictionsAboveOne)
{
    NoiseConfig config;
    config.l1dEvictChance = 4.0;   // 4 evictions per disturb
    CacheHierarchy caches;
    for (u64 line = 0; line < 4096; ++line)
        caches.dataAccess(line * 64);
    NoiseInjector noise(config, 9);
    noise.disturb(caches);
    u64 occupied = 0;
    for (u32 s = 0; s < caches.l1d().geometry().sets; ++s)
        occupied += caches.l1d().occupancy(s);
    // Exactly 4 evictions (sets chosen may coincide, but evictLruOf on a
    // full set always removes a line).
    EXPECT_EQ(occupied, 512u - 4);
}

} // namespace
} // namespace phantom::mem
