/**
 * @file
 * Tests for the next-line instruction prefetcher and the §5.1 confound
 * it creates: an I-cache timing channel cannot distinguish transient
 * fetch from prefetch, but the µop-cache channel can — prefetched lines
 * never enter the pipeline.
 */

#include "attack/testbed.hpp"
#include "isa/assembler.hpp"

#include <gtest/gtest.h>

namespace phantom {
namespace {

using namespace isa;
using attack::Testbed;

cpu::MicroarchConfig
prefetching(cpu::MicroarchConfig cfg)
{
    cfg.noise = mem::NoiseConfig{};
    cfg.nextLinePrefetch = true;
    return cfg;
}

TEST(Prefetcher, FillsAdjacentLine)
{
    Testbed bed(prefetching(cpu::zen2()));
    Assembler code(0x400000);
    code.nop();
    code.hlt();
    bed.process.mapCode(0x400000, code.finish());
    // Make the adjacent line's content valid (it is never executed).
    // mapCode already mapped the page.

    bed.runUser(0x400000);
    EXPECT_GT(bed.machine.pmc().read(cpu::PmcEvent::L1IPrefetch), 0u);

    // The next line is hot without ever being executed or speculated to.
    Cycle lat = bed.machine.timedFetchAccess(0x400040, Privilege::User);
    EXPECT_LT(lat, bed.machine.caches().config().latMem);
}

TEST(Prefetcher, DoesNotTouchUopCache)
{
    Testbed bed(prefetching(cpu::zen2()));
    Assembler code(0x400000);
    code.nop();
    code.hlt();
    bed.process.mapCode(0x400000, code.finish());
    bed.runUser(0x400000);
    // Line 0x40 was prefetched into L1I but never decoded.
    EXPECT_TRUE(bed.machine.caches().l1i().contains(
        bed.kernel.pageTable().lookup(0x400040)->paddr & ~63ull));
    EXPECT_FALSE(bed.machine.uopCache().contains(0x400040));
}

TEST(Prefetcher, StopsAtUnmappedPage)
{
    Testbed bed(prefetching(cpu::zen2()));
    VAddr last_line = 0x400000 + kPageBytes - kCacheLineBytes;
    Assembler code(last_line);
    code.nop();
    code.hlt();
    std::vector<u8> bytes = code.finish();
    bed.process.mapCode(last_line, bytes);
    bed.kernel.pageTable().unmap(0x400000 + kPageBytes);

    auto result = bed.runUser(last_line);
    EXPECT_EQ(result.reason, cpu::ExitReason::Halt);   // no stray fault
}

TEST(Prefetcher, ConfoundsTheIfChannelButNotId)
{
    // The §5.1 confound, reproduced: the victim executes code whose
    // *next line* is the monitored target. With the prefetcher on, the
    // IF channel reports a (false) signal although no prediction was
    // ever injected; the µop-cache channel stays silent.
    Testbed bed(prefetching(cpu::zen2()));

    Assembler code(0x400000);
    code.nop();
    code.hlt();               // executes entirely within line 0x400000
    bed.process.mapCode(0x400000, code.finish());
    VAddr monitored = 0x400040;

    bed.machine.clflushVirt(monitored);
    u64 uop_misses_before =
        bed.machine.uopCache().missCount();
    bed.runUser(0x400000);

    // IF channel: hot -> would be attributed to transient fetch.
    Cycle lat = bed.machine.timedFetchAccess(monitored, Privilege::User);
    EXPECT_LT(lat, bed.machine.caches().config().latMem);

    // ID channel: the monitored line was never decoded.
    EXPECT_FALSE(bed.machine.uopCache().contains(monitored));
    EXPECT_LE(bed.machine.uopCache().missCount() - uop_misses_before, 2u);
}

TEST(Prefetcher, OffByDefaultKeepsIfChannelClean)
{
    auto cfg = cpu::zen2();
    cfg.noise = mem::NoiseConfig{};
    ASSERT_FALSE(cfg.nextLinePrefetch);
    Testbed bed(cfg);
    Assembler code(0x400000);
    code.nop();
    code.hlt();
    bed.process.mapCode(0x400000, code.finish());
    bed.machine.clflushVirt(0x400040);
    bed.runUser(0x400000);
    Cycle lat = bed.machine.timedFetchAccess(0x400040, Privilege::User);
    EXPECT_EQ(lat, bed.machine.caches().config().latMem);
}

} // namespace
} // namespace phantom
