/**
 * @file
 * Predecoded-instruction cache tests: unit-level insert/lookup and
 * invalidation semantics, the three system-level invalidation sources
 * (self-modifying stores, clflush, page-table remap), and the hard
 * bit-identity requirement — cached and uncached runs, and replay after
 * snapshot restore, must produce byte-identical machine state.
 */

#include "cpu/decode_cache.hpp"
#include "cpu/machine.hpp"
#include "cpu/microarch.hpp"
#include "isa/assembler.hpp"
#include "os/kernel.hpp"
#include "os/process.hpp"
#include "snap/image.hpp"
#include "snap/replay.hpp"
#include "snap/state.hpp"

#include <gtest/gtest.h>

namespace phantom {
namespace {

using namespace isa;
using cpu::DecodeCache;
using cpu::DecodeCacheStats;
using cpu::ExitReason;
using cpu::Machine;
using cpu::PmcEvent;

// ---- Unit tests on a bare cache --------------------------------------------

TEST(DecodeCacheUnit, HitMissAndCounterAccounting)
{
    DecodeCache cache;
    cache.setEnabled(true);

    const Insn insn = makeMovImm(3, 0x1234);
    EXPECT_EQ(cache.lookup(0x1000), nullptr);
    EXPECT_EQ(cache.stats().misses, 1u);

    cache.insert(0x1000, insn);
    EXPECT_EQ(cache.entryCount(), 1u);

    const Insn* hit = cache.lookup(0x1000);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->kind, insn.kind);
    EXPECT_EQ(hit->length, insn.length);
    EXPECT_EQ(hit->imm, insn.imm);
    EXPECT_EQ(cache.stats().hits, 1u);

    // Same line, different offset: a miss, not a false hit.
    EXPECT_EQ(cache.lookup(0x1001), nullptr);
    EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(DecodeCacheUnit, InvalidDecodesAreNeverCached)
{
    DecodeCache cache;
    cache.setEnabled(true);
    Insn bad;
    bad.kind = InsnKind::Invalid;
    bad.length = 1;
    cache.insert(0x2000, bad);
    EXPECT_EQ(cache.entryCount(), 0u);
}

TEST(DecodeCacheUnit, PageSpanningInstructionsAreNeverCached)
{
    DecodeCache cache;
    cache.setEnabled(true);
    const Insn insn = makeMovImm(0, 42);
    ASSERT_GT(insn.length, 1);

    // Last byte would land on the next page: must be rejected.
    const PAddr spanning = kPageBytes - (insn.length - 1);
    cache.insert(spanning, insn);
    EXPECT_EQ(cache.entryCount(), 0u);

    // Exactly fitting against the page end is fine.
    const PAddr fitting = kPageBytes - insn.length;
    cache.insert(fitting, insn);
    EXPECT_EQ(cache.entryCount(), 1u);
    EXPECT_NE(cache.lookup(fitting), nullptr);
}

TEST(DecodeCacheUnit, WriteInvalidatesOnlyOverlappingEntries)
{
    DecodeCache cache;
    cache.setEnabled(true);
    const Insn nop = makeNop();
    ASSERT_EQ(nop.length, 1);
    cache.insert(0x100, nop);
    cache.insert(0x101, nop);

    // A one-byte write at 0x101 overlaps the second entry only.
    cache.onPhysWrite(0x101, 1);
    EXPECT_NE(cache.lookup(0x100), nullptr);
    EXPECT_EQ(cache.lookup(0x101), nullptr);
    EXPECT_EQ(cache.stats().invalidates, 1u);
}

TEST(DecodeCacheUnit, LineSpillingEntryInvalidatedFromEitherLine)
{
    // A variable-length encoding starting near the end of a cache line
    // spills into the next one; a write to *either* line must kill it.
    DecodeCache cache;
    cache.setEnabled(true);
    const Insn insn = makeMovImm(1, 0xdeadbeef);
    ASSERT_GT(static_cast<u64>(insn.length), 4u);
    const PAddr start = kCacheLineBytes - 4;   // spills into line 1

    cache.insert(start, insn);
    cache.onPhysWrite(kCacheLineBytes + 2, 1);  // hits the spilled tail
    EXPECT_EQ(cache.lookup(start), nullptr) << "stale entry survived a "
                                               "write to its second line";

    cache.insert(start, insn);
    cache.onPhysWrite(start, 1);                // hits the first byte
    EXPECT_EQ(cache.lookup(start), nullptr);
}

TEST(DecodeCacheUnit, FlushCountsButDisableDoesNot)
{
    DecodeCache cache;
    cache.setEnabled(true);
    cache.insert(0x40, makeNop());
    cache.insert(0x80, makeNop());

    cache.flushAll();
    EXPECT_EQ(cache.entryCount(), 0u);
    EXPECT_EQ(cache.stats().invalidates, 2u);

    cache.insert(0x40, makeNop());
    cache.setEnabled(false);   // test control, not model activity
    EXPECT_EQ(cache.entryCount(), 0u);
    EXPECT_EQ(cache.stats().invalidates, 2u);
}

TEST(DecodeCacheUnit, DisabledCacheIsInert)
{
    DecodeCache cache;
    cache.setEnabled(false);
    cache.insert(0x300, makeNop());
    EXPECT_EQ(cache.entryCount(), 0u);
    EXPECT_EQ(cache.lookup(0x300), nullptr);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(DecodeCacheUnit, CountersDrainIntoAmbientSinkOnDestruction)
{
    DecodeCacheStats sink;
    cpu::setActiveDecodeCacheStats(&sink);
    {
        DecodeCache cache;
        cache.setEnabled(true);
        cache.insert(0x40, makeNop());
        EXPECT_NE(cache.lookup(0x40), nullptr);
        EXPECT_EQ(cache.lookup(0x48), nullptr);
        EXPECT_EQ(sink.hits, 0u) << "drained before destruction";
    }
    cpu::setActiveDecodeCacheStats(nullptr);
    EXPECT_EQ(sink.hits, 1u);
    EXPECT_EQ(sink.misses, 1u);
}

// ---- System tests on a full machine ----------------------------------------

constexpr u64 kPhys = 256ull * 1024 * 1024;

struct Sys
{
    Machine machine;
    os::Kernel kernel;
    os::Process process;

    Sys()
        : machine(cpu::zen2(), kPhys),
          kernel(machine, os::KernelConfig{42, true, true}),
          process(kernel, machine)
    {
        machine.noise().setConfig(mem::NoiseConfig{});
    }

    cpu::RunResult
    runUser(VAddr entry, u64 max_insns = 10000)
    {
        machine.setPrivilege(Privilege::User);
        machine.setPc(entry);
        return machine.run(max_insns);
    }
};

TEST(DecodeCacheSys, RepeatedExecutionHitsTheCache)
{
    Sys sys;
    sys.machine.decodeCache().setEnabled(true);
    Assembler code(0x400000);
    code.movImm(RCX, 50);
    Label loop = code.newLabel();
    code.bind(loop);
    code.subImm(RCX, 1);
    code.cmpImm(RCX, 0);
    code.jcc(Cond::Ne, loop);
    code.hlt();
    sys.process.mapCode(0x400000, code.finish());

    auto result = sys.runUser(0x400000);
    EXPECT_EQ(result.reason, ExitReason::Halt);
    const auto& stats = sys.machine.decodeCache().stats();
    EXPECT_GT(sys.machine.decodeCache().entryCount(), 0u);
    // 50 loop iterations over 3 cached instructions: hits dominate.
    EXPECT_GT(stats.hits, stats.misses);
}

TEST(DecodeCacheSys, ArchitecturalStoreInvalidatesStaleDecode)
{
    // Self-modifying code through the pipeline itself: a store rewrites
    // an already-executed (and therefore cached) instruction, and the
    // next execution of that address must see the new bytes.
    Sys sys;
    sys.machine.decodeCache().setEnabled(true);

    const VAddr target = 0x401000;
    Assembler v1(target);
    v1.movImm(RAX, 1);
    v1.hlt();
    std::vector<u8> blob1 = v1.finish();

    Assembler v2(target);
    v2.movImm(RAX, 2);
    v2.hlt();
    std::vector<u8> blob2 = v2.finish();
    ASSERT_EQ(blob1.size(), blob2.size());

    sys.process.mapCode(target, blob1);
    // The SMC store needs the code page writable as well as executable.
    ASSERT_TRUE(sys.machine.pageTable()->protect(
        target, mem::PageFlags{true, true, true, true}));

    // Pack the replacement bytes into two 8-byte stores.
    std::vector<u8> patch = blob2;
    patch.resize(16, 0);
    u64 lo = 0;
    u64 hi = 0;
    for (int i = 7; i >= 0; --i) {
        lo = (lo << 8) | patch[i];
        hi = (hi << 8) | patch[8 + i];
    }

    Assembler patcher(0x400000);
    patcher.movImm(RDI, target);
    patcher.movImm(RSI, lo);
    patcher.store(RDI, 0, RSI);
    patcher.movImm(RSI, hi);
    patcher.store(RDI, 8, RSI);
    patcher.jmp(target);
    sys.process.mapCode(0x400000, patcher.finish());

    // Warm the cache with the v1 decode of the target.
    auto warm = sys.runUser(target);
    ASSERT_EQ(warm.reason, ExitReason::Halt);
    ASSERT_EQ(sys.machine.regs().read(RAX), 1u);

    const u64 invalidates_before =
        sys.machine.decodeCache().stats().invalidates;
    auto patched = sys.runUser(0x400000);
    EXPECT_EQ(patched.reason, ExitReason::Halt);
    EXPECT_EQ(sys.machine.regs().read(RAX), 2u)
        << "stale cached decode executed after an overwriting store";
    EXPECT_GT(sys.machine.decodeCache().stats().invalidates,
              invalidates_before);
}

TEST(DecodeCacheSys, DebugWriteInvalidatesStaleDecode)
{
    // Same property through the tooling write path (write8 per byte).
    Sys sys;
    sys.machine.decodeCache().setEnabled(true);
    const VAddr entry = 0x400000;
    Assembler code(entry);
    code.movImm(RAX, 7);
    code.hlt();
    sys.process.mapCode(entry, code.finish());

    ASSERT_EQ(sys.runUser(entry).reason, ExitReason::Halt);
    ASSERT_EQ(sys.machine.regs().read(RAX), 7u);

    Assembler repl(entry);
    repl.movImm(RAX, 9);
    repl.hlt();
    ASSERT_TRUE(sys.machine.debugWriteBytes(entry, repl.finish()));

    ASSERT_EQ(sys.runUser(entry).reason, ExitReason::Halt);
    EXPECT_EQ(sys.machine.regs().read(RAX), 9u);
}

TEST(DecodeCacheSys, ClflushInvalidatesTheFlushedLine)
{
    Sys sys;
    sys.machine.decodeCache().setEnabled(true);
    const VAddr target = 0x401000;   // line-aligned, separate page
    Assembler fn(target);
    fn.movImm(RAX, 5);
    fn.hlt();
    sys.process.mapCode(target, fn.finish());

    ASSERT_EQ(sys.runUser(target).reason, ExitReason::Halt);
    auto t = sys.machine.pageTable()->lookup(target);
    ASSERT_TRUE(t.has_value());
    {
        // The first instruction of the warm run is cached.
        u64 hits_before = sys.machine.decodeCache().stats().hits;
        ASSERT_NE(sys.machine.decodeCache().lookup(t->paddr), nullptr);
        ASSERT_GT(sys.machine.decodeCache().stats().hits, hits_before);
    }

    Assembler flusher(0x400000);
    flusher.movImm(RDI, target);
    flusher.clflush(RDI);
    flusher.hlt();
    sys.process.mapCode(0x400000, flusher.finish());
    ASSERT_EQ(sys.runUser(0x400000).reason, ExitReason::Halt);

    EXPECT_EQ(sys.machine.decodeCache().lookup(t->paddr), nullptr)
        << "clflush left a stale predecode behind";
}

TEST(DecodeCacheSys, PageTableMutationFlushesTheCache)
{
    Sys sys;
    sys.machine.decodeCache().setEnabled(true);
    const VAddr entry = 0x400000;
    Assembler code(entry);
    code.movImm(RAX, 3);
    code.hlt();
    sys.process.mapCode(entry, code.finish());

    ASSERT_EQ(sys.runUser(entry).reason, ExitReason::Halt);
    const std::size_t warm_entries =
        sys.machine.decodeCache().entryCount();
    ASSERT_GT(warm_entries, 0u);
    const u64 invalidates_before =
        sys.machine.decodeCache().stats().invalidates;

    // Any translation-affecting mutation bumps the generation; the next
    // decode notices and conservatively rebuilds from scratch.
    sys.process.mapData(0x900000, kPageBytes);
    ASSERT_EQ(sys.runUser(entry).reason, ExitReason::Halt);
    EXPECT_GE(sys.machine.decodeCache().stats().invalidates,
              invalidates_before + warm_entries);
    EXPECT_EQ(sys.machine.regs().read(RAX), 3u);
}

// ---- Bit-identity ----------------------------------------------------------

/** A speculation-heavy scenario: a trained loop branch that finally
 *  mispredicts, plus a BTB-injected phantom prediction on a straight
 *  nop so transient wrong-path execution runs through the cache too. */
void
runSpeculativeScenario(Sys& sys)
{
    const VAddr entry = 0x400000;
    const VAddr gadget = 0x404000;
    sys.process.mapData(0x800000, kPageBytes);

    Assembler gad(gadget);
    gad.movImm(RSI, 0x800000);
    gad.load(RDX, RSI, 0);
    gad.addImm(RDX, 1);
    gad.store(RSI, 8, RDX);
    gad.hlt();
    sys.process.mapCode(gadget, gad.finish());

    Assembler code(entry);
    code.movImm(RCX, 16);
    code.movImm(RAX, 0);
    Label loop = code.newLabel();
    code.bind(loop);
    code.addImm(RAX, 1);
    code.subImm(RCX, 1);
    code.cmpImm(RCX, 0);
    code.jcc(Cond::Ne, loop);     // trained taken, mispredicts at exit
    const VAddr phantom_site = code.here();
    code.nopN(5);                 // phantom site: BTB-injected target
    code.movImm(RBX, 7);
    code.hlt();
    sys.process.mapCode(entry, code.finish());

    sys.machine.bpu().btb().train(phantom_site,
                                  isa::BranchType::IndirectJump, gadget,
                                  Privilege::User);
    ASSERT_EQ(sys.runUser(entry).reason, ExitReason::Halt);
    ASSERT_EQ(sys.runUser(entry).reason, ExitReason::Halt);
}

TEST(DecodeCacheSys, CachedAndUncachedRunsAreBitIdentical)
{
    Sys cached;
    cached.machine.decodeCache().setEnabled(true);
    runSpeculativeScenario(cached);

    Sys uncached;
    uncached.machine.decodeCache().setEnabled(false);
    runSpeculativeScenario(uncached);

    // The scenario must actually speculate, and only one run may cache.
    EXPECT_GT(cached.machine.pmc().read(PmcEvent::SpecDecode), 0u);
    EXPECT_GT(cached.machine.decodeCache().stats().hits, 0u);
    EXPECT_EQ(uncached.machine.decodeCache().stats().hits, 0u);

    const std::vector<u8> a =
        snap::serialize(snap::capture(cached.machine, &cached.kernel));
    const std::vector<u8> b = snap::serialize(
        snap::capture(uncached.machine, &uncached.kernel));
    EXPECT_EQ(a, b) << "decode cache changed observable machine state";
}

TEST(DecodeCacheSys, ForkedMachineStartsColdAndConverges)
{
    Sys sys;
    sys.machine.decodeCache().setEnabled(true);
    const VAddr entry = 0x400000;
    Assembler code(entry);
    code.movImm(RCX, 20);
    Label loop = code.newLabel();
    code.bind(loop);
    code.subImm(RCX, 1);
    code.cmpImm(RCX, 0);
    code.jcc(Cond::Ne, loop);
    code.hlt();
    sys.process.mapCode(entry, code.finish());

    // Warm the original's cache, then capture a pre-run snapshot.
    ASSERT_EQ(sys.runUser(entry).reason, ExitReason::Halt);
    sys.machine.setPrivilege(Privilege::User);
    sys.machine.setPc(entry);
    snap::MachineState state = snap::capture(sys.machine, &sys.kernel);

    snap::ForkedMachine forked = snap::fork(state, cpu::zen2());
    forked.machine->noise().setConfig(mem::NoiseConfig{});
    // Derived state is not snapshotted: the fork must start cold.
    EXPECT_EQ(forked.machine->decodeCache().entryCount(), 0u);

    ASSERT_EQ(sys.machine.run(10000).reason, ExitReason::Halt);
    ASSERT_EQ(forked.machine->run(10000).reason, ExitReason::Halt);

    const std::vector<u8> a =
        snap::serialize(snap::capture(sys.machine, nullptr));
    const std::vector<u8> b =
        snap::serialize(snap::capture(*forked.machine, nullptr));
    EXPECT_EQ(a, b) << "cold-cache fork diverged from warm original";
}

TEST(DecodeCacheSys, ReplayWithCacheEnabledNeverDiverges)
{
    Sys sys;
    sys.machine.decodeCache().setEnabled(true);
    const VAddr entry = 0x400000;
    Assembler code(entry);
    code.movImm(RCX, 200);
    Label loop = code.newLabel();
    code.bind(loop);
    code.addImm(RAX, 3);
    code.subImm(RCX, 1);
    code.cmpImm(RCX, 0);
    code.jcc(Cond::Ne, loop);
    code.hlt();
    sys.process.mapCode(entry, code.finish());

    sys.machine.setPrivilege(Privilege::User);
    sys.machine.setPc(entry);
    snap::MachineState state = snap::capture(sys.machine, &sys.kernel);

    snap::ReplayOptions options;
    options.maxInsns = 512;
    options.windowInsns = 64;
    snap::DivergenceReport report =
        snap::checkDivergence(state, cpu::zen2(), options);
    EXPECT_FALSE(report.diverged) << report.summary();
    EXPECT_GT(report.insnsReplayed, 0u);
}

// ---- Decoded-superblock engine ---------------------------------------------

TEST(DecodeCacheUnit, SuperblockInvalidationMarksPinnedBlockDead)
{
    DecodeCache cache;
    cache.setEnabled(true);
    cache.setSuperblocksEnabled(true);

    auto block = std::make_shared<DecodeCache::Superblock>();
    block->pa = 0x1000;
    const Insn nop = makeNop();
    for (int i = 0; i < 4; ++i)
        block->entries.push_back({nop, cpu::handlerFor(nop.kind)});
    block->byteLen = 4;

    auto pinned = cache.insertBlock(std::move(block));
    ASSERT_NE(pinned, nullptr);
    EXPECT_EQ(cache.blockCount(), 1u);
    EXPECT_EQ(cache.stats().blockBuilds, 1u);
    EXPECT_EQ(cache.lookupBlock(0x1000), pinned);
    EXPECT_EQ(cache.stats().blockHits, 1u);

    // A write outside the block's span leaves it alone...
    cache.onPhysWrite(0x1004, 1);
    EXPECT_EQ(cache.blockCount(), 1u);
    EXPECT_FALSE(pinned->dead);

    // ...but a write into the middle unregisters it and flags the pin,
    // so a mid-block executor notices and bails after the current entry.
    cache.onPhysWrite(0x1002, 1);
    EXPECT_EQ(cache.blockCount(), 0u);
    EXPECT_EQ(cache.lookupBlock(0x1000), nullptr);
    EXPECT_TRUE(pinned->dead);
    EXPECT_EQ(cache.stats().blockInvalidates, 1u);
}

TEST(DecodeCacheUnit, SuperblockGateDropsAndRefusesBlocks)
{
    DecodeCache cache;
    cache.setEnabled(true);
    cache.setSuperblocksEnabled(true);

    auto make = [] {
        auto b = std::make_shared<DecodeCache::Superblock>();
        b->pa = 0x2000;
        const Insn nop = makeNop();
        b->entries.push_back({nop, cpu::handlerFor(nop.kind)});
        b->byteLen = 1;
        return b;
    };

    auto pinned = cache.insertBlock(make());
    ASSERT_NE(pinned, nullptr);
    EXPECT_EQ(cache.blockCount(), 1u);

    // Gating the layer off drops every block (and flags pins) without
    // counting model invalidations, mirroring setEnabled.
    cache.setSuperblocksEnabled(false);
    EXPECT_EQ(cache.blockCount(), 0u);
    EXPECT_TRUE(pinned->dead);
    EXPECT_EQ(cache.stats().blockInvalidates, 0u);
    EXPECT_FALSE(cache.blocksEnabled());
    EXPECT_EQ(cache.insertBlock(make()), nullptr);
    EXPECT_EQ(cache.lookupBlock(0x2000), nullptr);

    cache.setSuperblocksEnabled(true);
    EXPECT_TRUE(cache.blocksEnabled());
    EXPECT_NE(cache.insertBlock(make()), nullptr);
    EXPECT_NE(cache.lookupBlock(0x2000), nullptr);
}

/** Serialized full machine state — the bit-identity yardstick. */
std::vector<u8>
stateOf(Sys& sys)
{
    return snap::serialize(snap::capture(sys.machine, nullptr));
}

TEST(DecodeCacheSys, StoreIntoExecutingSuperblockBitIdentical)
{
    // One straight-line block whose early stores overwrite a *later*
    // instruction of the same block (movImm RAX,1 -> movImm RAX,2).
    // The block was fully decoded before the store retires, so a buggy
    // engine would run the stale tail; the dead-flag check must instead
    // abandon the block and re-decode the fresh bytes — exactly what
    // the single-step loop does.
    const VAddr entry = 0x400000;

    auto assemble = [&](u64 lo, u64 hi, u64 tgt) {
        Assembler code(entry);
        code.movImm(RDI, tgt);
        code.movImm(RSI, lo);
        code.store(RDI, 0, RSI);
        code.movImm(RSI, hi);
        code.store(RDI, 8, RSI);
        const VAddr tail = code.here();
        code.movImm(RAX, 1);
        code.hlt();
        code.nopN(5);    // pad so the 16-byte patch stays in the blob
        return std::pair<std::vector<u8>, VAddr>(code.finish(), tail);
    };

    // Pass 1 learns the tail address (all encodings are fixed-length);
    // pass 2 bakes in the patch bytes and their destination.
    const VAddr tail_va = assemble(0, 0, 0).second;
    Assembler repl(tail_va);
    repl.movImm(RAX, 2);
    repl.hlt();
    std::vector<u8> patch = repl.finish();
    patch.resize(16, 0);
    u64 lo = 0;
    u64 hi = 0;
    for (int i = 7; i >= 0; --i) {
        lo = (lo << 8) | patch[i];
        hi = (hi << 8) | patch[8 + i];
    }
    auto [blob, tail_check] = assemble(lo, hi, tail_va);
    ASSERT_EQ(tail_check, tail_va);

    auto scenario = [&](bool superblocks) {
        Sys sys;
        sys.machine.decodeCache().setEnabled(true);
        sys.machine.decodeCache().setSuperblocksEnabled(superblocks);
        sys.process.mapCode(entry, blob);
        EXPECT_TRUE(sys.machine.pageTable()->protect(
            entry, mem::PageFlags{true, true, true, true}));
        EXPECT_EQ(sys.runUser(entry).reason, ExitReason::Halt);
        EXPECT_EQ(sys.machine.regs().read(RAX), 2u)
            << "stale superblock tail executed after an in-block store";
        if (superblocks) {
            EXPECT_GT(sys.machine.decodeCache().stats().blockBuilds, 0u);
            EXPECT_GT(sys.machine.decodeCache().stats().blockInvalidates,
                      0u);
        }
        return stateOf(sys);
    };
    EXPECT_EQ(scenario(true), scenario(false))
        << "superblock engine changed observable machine state";
}

TEST(DecodeCacheSys, ClflushAndRemapSplittingSuperblockBitIdentical)
{
    // A loop body that clflushes its own first line every iteration:
    // the block dies mid-execution each pass and the remaining entries
    // must still retire through the rebuild path. A page-table mutation
    // between runs additionally exercises the generation-flush kill.
    const VAddr entry = 0x400000;
    Assembler code(entry);
    code.movImm(RCX, 8);
    code.movImm(RAX, 0);
    Label loop = code.newLabel();
    code.bind(loop);
    code.movImm(RDI, entry);
    code.clflush(RDI);           // kills the very block being executed
    code.addImm(RAX, 1);
    code.subImm(RCX, 1);
    code.cmpImm(RCX, 0);
    code.jcc(Cond::Ne, loop);
    code.hlt();
    const std::vector<u8> blob = code.finish();

    auto scenario = [&](bool superblocks) {
        Sys sys;
        sys.machine.decodeCache().setEnabled(true);
        sys.machine.decodeCache().setSuperblocksEnabled(superblocks);
        sys.process.mapCode(entry, blob);
        EXPECT_EQ(sys.runUser(entry).reason, ExitReason::Halt);
        EXPECT_EQ(sys.machine.regs().read(RAX), 8u);
        if (superblocks)
            EXPECT_GT(sys.machine.decodeCache().stats().blockInvalidates,
                      0u)
                << "self-clflush never split the executing block";
        // Remap: the generation bump must flush blocks before reuse.
        sys.process.mapData(0x900000, kPageBytes);
        EXPECT_EQ(sys.runUser(entry).reason, ExitReason::Halt);
        EXPECT_EQ(sys.machine.regs().read(RAX), 8u);
        return stateOf(sys);
    };
    EXPECT_EQ(scenario(true), scenario(false))
        << "superblock engine changed observable machine state";
}

TEST(DecodeCacheSys, SuperblockSpanningLineBoundaryBitIdentical)
{
    // A straight-line block much longer than one 64-byte cache line:
    // the per-entry line-change work (µop-cache lookups, L1I fills,
    // next-line prefetch) must fire at exactly the same points as in
    // the single-step loop or cycle counts diverge.
    const VAddr entry = 0x400000;
    Assembler code(entry);
    for (u64 i = 0; i < 12; ++i)     // 12 x 10 bytes: spans 2+ lines
        code.movImm(RAX, i);
    code.addImm(RAX, 100);
    code.hlt();
    const std::vector<u8> blob = code.finish();

    auto scenario = [&](bool superblocks) {
        Sys sys;
        sys.machine.decodeCache().setEnabled(true);
        sys.machine.decodeCache().setSuperblocksEnabled(superblocks);
        sys.process.mapCode(entry, blob);
        auto result = sys.runUser(entry);
        EXPECT_EQ(result.reason, ExitReason::Halt);
        EXPECT_EQ(sys.machine.regs().read(RAX), 111u);
        if (superblocks)
            EXPECT_GT(sys.machine.decodeCache().stats().blockBuilds, 0u);
        return std::pair<std::vector<u8>, Cycle>(stateOf(sys),
                                                 result.cycles);
    };
    auto on = scenario(true);
    auto off = scenario(false);
    EXPECT_EQ(on.second, off.second)
        << "line-boundary fetch work diverged inside a superblock";
    EXPECT_EQ(on.first, off.first)
        << "superblock engine changed observable machine state";
}

TEST(DecodeCacheSys, FaultMidSuperblockBitIdentical)
{
    // A load in the middle of a block faults: the run must exit with
    // the same FaultInfo and *without* executing the block's remaining
    // (already decoded) entries.
    const VAddr entry = 0x400000;
    const VAddr unmapped = 0xdead0000;
    Assembler code(entry);
    code.movImm(RAX, 5);
    code.movImm(RSI, unmapped);
    code.load(RDX, RSI, 0);      // #PF here, mid-block
    code.movImm(RAX, 99);        // must never retire
    code.hlt();
    const std::vector<u8> blob = code.finish();

    auto scenario = [&](bool superblocks) {
        Sys sys;
        sys.machine.decodeCache().setEnabled(true);
        sys.machine.decodeCache().setSuperblocksEnabled(superblocks);
        sys.process.mapCode(entry, blob);
        auto result = sys.runUser(entry);
        EXPECT_EQ(result.reason, ExitReason::Fault);
        EXPECT_EQ(result.fault.va, unmapped);
        EXPECT_EQ(sys.machine.regs().read(RAX), 5u)
            << "entries past a faulting instruction retired";
        return std::pair<std::vector<u8>, u64>(stateOf(sys),
                                               result.instructions);
    };
    auto on = scenario(true);
    auto off = scenario(false);
    EXPECT_EQ(on.second, off.second);
    EXPECT_EQ(on.first, off.first)
        << "superblock engine changed observable machine state";
}

TEST(DecodeCacheSys, ForkThenMutateParentLeavesChildSuperblocksIntact)
{
    // Fork a machine whose parent has warm superblocks, then rewrite
    // the *parent's* code. Copy-on-write isolation plus cold derived
    // state must leave the child executing the original bytes — and the
    // child must match a superblocks-off child bit for bit.
    const VAddr entry = 0x400000;
    Assembler code(entry);
    code.movImm(RAX, 7);
    code.hlt();
    const std::vector<u8> blob = code.finish();
    Assembler repl(entry);
    repl.movImm(RAX, 9);
    repl.hlt();
    const std::vector<u8> patched = repl.finish();

    auto scenario = [&](bool superblocks) {
        Sys sys;
        sys.machine.decodeCache().setEnabled(true);
        sys.machine.decodeCache().setSuperblocksEnabled(superblocks);
        sys.process.mapCode(entry, blob);
        EXPECT_EQ(sys.runUser(entry).reason, ExitReason::Halt);  // warm
        EXPECT_EQ(sys.machine.regs().read(RAX), 7u);

        sys.machine.setPrivilege(Privilege::User);
        sys.machine.setPc(entry);
        snap::MachineState state =
            snap::capture(sys.machine, &sys.kernel);
        snap::ForkedMachine forked = snap::fork(state, cpu::zen2());
        forked.machine->noise().setConfig(mem::NoiseConfig{});
        forked.machine->decodeCache().setSuperblocksEnabled(superblocks);
        EXPECT_EQ(forked.machine->decodeCache().blockCount(), 0u)
            << "superblocks leaked through the snapshot";

        // Mutate the parent *after* the fork.
        EXPECT_TRUE(sys.machine.debugWriteBytes(entry, patched));
        EXPECT_EQ(sys.runUser(entry).reason, ExitReason::Halt);
        EXPECT_EQ(sys.machine.regs().read(RAX), 9u);

        EXPECT_EQ(forked.machine->run(10000).reason, ExitReason::Halt);
        EXPECT_EQ(forked.machine->regs().read(RAX), 7u)
            << "parent mutation bled into the forked child";
        return snap::serialize(snap::capture(*forked.machine, nullptr));
    };
    EXPECT_EQ(scenario(true), scenario(false))
        << "superblock engine changed observable child state";
}

} // namespace
} // namespace phantom
