/**
 * @file
 * Edge-case tests for the machine: privilege boundaries, page-crossing
 * fetches, deep call nesting vs the RSB, fault details, PMC/rdpmc
 * behaviour, and timing-port corner cases.
 */

#include "cpu/machine.hpp"
#include "isa/assembler.hpp"
#include "os/kernel.hpp"
#include "os/process.hpp"

#include <gtest/gtest.h>

namespace phantom {
namespace {

using namespace isa;
using cpu::ExitReason;

struct Sys
{
    cpu::Machine machine;
    os::Kernel kernel;
    os::Process process;

    Sys()
        : machine(cpu::zen2(), 256ull << 20),
          kernel(machine, os::KernelConfig{77, true, true}),
          process(kernel, machine)
    {
        machine.noise().setConfig(mem::NoiseConfig{});
    }

    cpu::RunResult
    runUser(VAddr entry, u64 max_insns = 100000)
    {
        machine.setPrivilege(Privilege::User);
        machine.setPc(entry);
        return machine.run(max_insns);
    }
};

TEST(MachineEdge, SysretFromUserModeFaults)
{
    Sys sys;
    Assembler code(0x400000);
    code.sysret();
    code.hlt();
    sys.process.mapCode(0x400000, code.finish());
    auto result = sys.runUser(0x400000);
    ASSERT_EQ(result.reason, ExitReason::Fault);
    EXPECT_TRUE(result.fault.invalidOpcode);
}

TEST(MachineEdge, InsnStraddlingUnmappedPageFaultsCleanly)
{
    Sys sys;
    // A 10-byte movImm whose encoding crosses into an unmapped page:
    // only the first bytes are fetchable, decode yields Invalid -> #UD.
    VAddr page = 0x400000;
    Assembler code(page + kPageBytes - 4);
    code.movImm(RAX, 0x1122334455667788ull);
    std::vector<u8> bytes = code.finish();
    bytes.resize(4);    // map only the in-page prefix
    sys.process.mapCode(page + kPageBytes - 4, bytes);
    // Unmap the would-be second page if the helper mapped it.
    sys.kernel.pageTable().unmap(page + kPageBytes);

    auto result = sys.runUser(page + kPageBytes - 4, 10);
    ASSERT_EQ(result.reason, ExitReason::Fault);
    EXPECT_TRUE(result.fault.invalidOpcode);
}

TEST(MachineEdge, InsnStraddlingMappedPagesExecutes)
{
    Sys sys;
    VAddr start = 0x400000 + kPageBytes - 4;
    Assembler code(start);
    code.movImm(RAX, 0xdeadbeef);
    code.hlt();
    sys.process.mapCode(start, code.finish());   // maps both pages
    auto result = sys.runUser(start);
    EXPECT_EQ(result.reason, ExitReason::Halt);
    EXPECT_EQ(sys.machine.regs().read(RAX), 0xdeadbeefu);
}

TEST(MachineEdge, DeepCallNestingBalances)
{
    Sys sys;
    // fib-style nesting: 12 nested calls then returns; RSB (32 deep)
    // predicts every return correctly -> no backend mispredicts beyond
    // the cold pass.
    Assembler code(0x400000);
    Label fn = code.newLabel();
    Label base = code.newLabel();
    code.movImm(RCX, 12);
    code.movImm(RAX, 0);
    code.call(fn);
    code.hlt();
    code.bind(fn);
    code.addImm(RAX, 1);
    code.subImm(RCX, 1);
    code.cmpImm(RCX, 0);
    code.jcc(Cond::Eq, base);
    code.call(fn);
    code.bind(base);
    code.ret();
    sys.process.mapCode(0x400000, code.finish());

    auto result = sys.runUser(0x400000);
    ASSERT_EQ(result.reason, ExitReason::Halt);
    EXPECT_EQ(sys.machine.regs().read(RAX), 12u);

    // Warm pass: returns predicted via the RSB, no backend resteers.
    sys.machine.regs().write(RSP,
                             sys.machine.regs().read(RSP));   // keep
    u64 before =
        sys.machine.pmc().read(cpu::PmcEvent::MispredictBackend);
    sys.runUser(0x400000);
    u64 delta =
        sys.machine.pmc().read(cpu::PmcEvent::MispredictBackend) - before;
    // The RSB predicts every return; the only backend mispredict left is
    // the loop-exit jcc (trained not-taken, taken once at the base case).
    EXPECT_LE(delta, 1u);
}

TEST(MachineEdge, RsbOverflowMispredictsDeepReturns)
{
    Sys sys;
    // Nesting deeper than the RSB (32): the outermost returns pop an
    // exhausted RSB; underflow predictions resolve at execute.
    Assembler code(0x400000);
    Label fn = code.newLabel();
    Label base = code.newLabel();
    code.movImm(RCX, 40);
    code.call(fn);
    code.hlt();
    code.bind(fn);
    code.subImm(RCX, 1);
    code.cmpImm(RCX, 0);
    code.jcc(Cond::Eq, base);
    code.call(fn);
    code.bind(base);
    code.ret();
    sys.process.mapCode(0x400000, code.finish());

    auto result = sys.runUser(0x400000);
    ASSERT_EQ(result.reason, ExitReason::Halt);
    EXPECT_GT(sys.machine.pmc().read(cpu::PmcEvent::MispredictBackend),
              0u);
}

TEST(MachineEdge, FaultReportsAccessKindAndAddress)
{
    Sys sys;
    Assembler code(0x400000);
    code.movImm(RDI, 0x55550000);
    code.store(RDI, 8, RAX);
    code.hlt();
    sys.process.mapCode(0x400000, code.finish());
    auto result = sys.runUser(0x400000);
    ASSERT_EQ(result.reason, ExitReason::Fault);
    EXPECT_EQ(result.fault.access, mem::Access::Write);
    EXPECT_EQ(result.fault.va, 0x55550008u);
    EXPECT_EQ(result.fault.pc, 0x40000au);
}

TEST(MachineEdge, WriteToReadOnlyCodeFaults)
{
    Sys sys;
    Assembler code(0x400000);
    code.movImm(RDI, 0x400000);
    code.store(RDI, 0, RAX);
    code.hlt();
    sys.process.mapCode(0x400000, code.finish());
    auto result = sys.runUser(0x400000);
    ASSERT_EQ(result.reason, ExitReason::Fault);
    EXPECT_EQ(result.fault.fault, mem::Fault::Protection);
}

TEST(MachineEdge, RdpmcReadsSelectedCounter)
{
    Sys sys;
    Assembler code(0x400000);
    code.movImm(RCX,
                static_cast<u64>(cpu::PmcEvent::Instructions));
    code.rdpmc();
    code.movReg(RBX, RAX);
    code.rdpmc();
    code.hlt();
    sys.process.mapCode(0x400000, code.finish());
    auto result = sys.runUser(0x400000);
    ASSERT_EQ(result.reason, ExitReason::Halt);
    // Two instructions retired between the two reads.
    EXPECT_EQ(sys.machine.regs().read(RAX),
              sys.machine.regs().read(RBX) + 2);
}

TEST(MachineEdge, InsnLimitStopsRunawayLoop)
{
    Sys sys;
    Assembler code(0x400000);
    Label loop = code.newLabel();
    code.bind(loop);
    code.jmp(loop);
    sys.process.mapCode(0x400000, code.finish());
    auto result = sys.runUser(0x400000, 1000);
    EXPECT_EQ(result.reason, ExitReason::InsnLimit);
    EXPECT_EQ(result.instructions, 1000u);
}

TEST(MachineEdge, TimedFetchOfNxPageBehavesAsMiss)
{
    Sys sys;
    sys.process.mapData(0x800000, kPageBytes);    // NX user data
    Cycle lat = sys.machine.timedFetchAccess(0x800000, Privilege::User);
    EXPECT_EQ(lat, sys.machine.caches().config().latMem);
    // And the line was NOT filled into the I-cache.
    Cycle again = sys.machine.timedFetchAccess(0x800000, Privilege::User);
    EXPECT_EQ(again, sys.machine.caches().config().latMem);
}

TEST(MachineEdge, DebugPortsBypassPermissions)
{
    Sys sys;
    // Kernel image text is neither readable nor writable from user mode,
    // but the host debug port reaches it.
    VAddr text = sys.kernel.imageBase() + 0x100;
    auto value = sys.machine.debugRead64(text);
    ASSERT_TRUE(value.has_value());
    EXPECT_FALSE(sys.machine.debugRead64(0x123456789000ull).has_value());
}

TEST(MachineEdge, SyscallFromKernelModeReenters)
{
    // The dispatcher itself never issues syscall, but the semantics are
    // defined: it re-enters at the syscall entry in kernel mode.
    Sys sys;
    Assembler code(0x400000);
    code.movImm(RAX, os::kSysGetpid);
    code.syscall();
    code.hlt();
    sys.process.mapCode(0x400000, code.finish());
    auto result = sys.runUser(0x400000);
    EXPECT_EQ(result.reason, ExitReason::Halt);
}

TEST(MachineEdge, HltInKernelStopsRun)
{
    Sys sys;
    // Map a kernel module that halts; the run must stop in kernel mode.
    Assembler code(0);
    code.hlt();
    sys.kernel.loadModule(code.finish(), os::kSysModuleBase);

    Assembler user(0x400000);
    user.movImm(RAX, os::kSysModuleBase);
    user.syscall();
    user.hlt();
    sys.process.mapCode(0x400000, user.finish());
    auto result = sys.runUser(0x400000);
    EXPECT_EQ(result.reason, ExitReason::Halt);
    EXPECT_EQ(sys.machine.privilege(), Privilege::Kernel);
    sys.machine.setPrivilege(Privilege::User);   // restore for teardown
}

TEST(MachineEdge, NopSledExecutesAtFullWidth)
{
    Sys sys;
    Assembler code(0x400000);
    for (int i = 0; i < 64; ++i)
        code.nop();
    code.hlt();
    sys.process.mapCode(0x400000, code.finish());
    auto result = sys.runUser(0x400000);
    EXPECT_EQ(result.reason, ExitReason::Halt);
    EXPECT_EQ(result.instructions, 65u);
}

} // namespace
} // namespace phantom
