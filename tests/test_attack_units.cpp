/**
 * @file
 * Unit tests for the attack toolkit: aliasing helpers, Prime+Probe on
 * all three cache levels, Flush+Reload, and the prediction injector.
 */

#include "attack/prime_probe.hpp"
#include "attack/testbed.hpp"

#include <gtest/gtest.h>

namespace phantom::attack {
namespace {

cpu::MicroarchConfig
quiet(cpu::MicroarchConfig cfg)
{
    cfg.noise = mem::NoiseConfig{};
    return cfg;
}

// ---- IcacheSetProbe -----------------------------------------------------------

TEST(IcacheProbe, BaselineAfterPrime)
{
    Testbed bed(quiet(cpu::zen2()));
    IcacheSetProbe probe(bed, 17, 0x70000000);
    probe.prime();
    EXPECT_EQ(probe.probe(), probe.baseline());
}

TEST(IcacheProbe, DetectsForeignFetchIntoSet)
{
    Testbed bed(quiet(cpu::zen2()));
    u32 set = 17;
    IcacheSetProbe probe(bed, set, 0x70000000);
    probe.prime();
    // A kernel fetch into the same set evicts one way.
    VAddr foreign = bed.kernel.imageBase() + 0x2000 +
                    u64{set} * kCacheLineBytes;
    bed.machine.timedFetchAccess(foreign, Privilege::Kernel);
    EXPECT_GT(probe.probe(), probe.baseline());
}

TEST(IcacheProbe, IgnoresFetchIntoOtherSet)
{
    Testbed bed(quiet(cpu::zen2()));
    IcacheSetProbe probe(bed, 17, 0x70000000);
    probe.prime();
    VAddr foreign = bed.kernel.imageBase() + 0x2000 +
                    u64{40} * kCacheLineBytes;
    bed.machine.timedFetchAccess(foreign, Privilege::Kernel);
    EXPECT_EQ(probe.probe(), probe.baseline());
}

// ---- DcacheSetProbe -----------------------------------------------------------

TEST(DcacheProbe, DetectsForeignLoad)
{
    Testbed bed(quiet(cpu::zen2()));
    u32 set = 21;
    DcacheSetProbe probe(bed, set, 0x71000000);
    probe.prime();
    VAddr foreign = bed.kernel.physmapVaOf(0x5000 +
                                           u64{set} * kCacheLineBytes);
    bed.machine.timedDataAccess(foreign, Privilege::Kernel);
    EXPECT_GT(probe.probe(), probe.baseline());
}

// ---- L2SetProbe -----------------------------------------------------------------

TEST(L2Probe, BaselineIsL2Resident)
{
    Testbed bed(quiet(cpu::zen2()));
    L2SetProbe probe(bed, 47, 0x80000000);
    probe.prime();
    Cycle lat = probe.probe();
    // After L1 eviction the lines answer from L2.
    EXPECT_EQ(lat, probe.baseline());
}

TEST(L2Probe, DetectsForeignLineInSet)
{
    Testbed bed(quiet(cpu::zen2()));
    u32 set = 47;
    L2SetProbe probe(bed, set, 0x80000000);
    probe.prime();
    // 8 foreign fills into L2 set 47 (distinct tags) evict our ways.
    for (u64 k = 0; k < 8; ++k) {
        VAddr foreign = bed.kernel.physmapVaOf(
            (1ull << 24) + k * (1ull << 21) + u64{set} * kCacheLineBytes);
        bed.machine.timedDataAccess(foreign, Privilege::Kernel);
    }
    EXPECT_GT(probe.probe(), probe.baseline());
}

// ---- FlushReload ---------------------------------------------------------------

TEST(FlushReloadChannel, DetectsSharedLineTouch)
{
    Testbed bed(quiet(cpu::zen2()));
    PAddr pa = bed.process.mapData(0x72000000, kPageBytes);
    FlushReload fr(bed, 0x72000040);

    fr.flush();
    EXPECT_FALSE(fr.reload());   // cold after flush

    fr.flush();
    // Kernel touches the same physical line through the physmap.
    bed.machine.timedDataAccess(bed.kernel.physmapVaOf(pa + 0x40),
                                Privilege::Kernel);
    EXPECT_TRUE(fr.reload());
}

// ---- userAlias -----------------------------------------------------------------

TEST(UserAliasHelper, ProducesCanonicalUserAddresses)
{
    for (auto kind : {bpu::BtbHashKind::Zen12, bpu::BtbHashKind::Zen34,
                      bpu::BtbHashKind::IntelSalted}) {
        VAddr va = 0x00000000114006fbull;
        VAddr alias = userAlias(kind, va);
        EXPECT_NE(alias, va);
        EXPECT_TRUE(isCanonical(alias));
        EXPECT_EQ(bit(alias, 47), 0u);
        // Low 12 bits preserved (same page offset, required for VIPT
        // set agreement in the experiments).
        EXPECT_EQ(alias & 0xfff, va & 0xfff);
    }
}

// ---- PredictionInjector -----------------------------------------------------------

TEST(Injector, RepatchesTargetOnReinjection)
{
    Testbed bed(quiet(cpu::zen3()));
    PredictionInjector injector(bed);
    VAddr victim = bed.kernel.getpidGadgetVa();

    ASSERT_TRUE(injector.inject(victim, bed.kernel.imageBase() + 0x2000));
    auto pred = bed.machine.bpu().btb().lookup(victim, Privilege::Kernel);
    ASSERT_TRUE(pred.has_value());
    EXPECT_EQ(pred->absTarget, bed.kernel.imageBase() + 0x2000);

    ASSERT_TRUE(injector.inject(victim, bed.kernel.imageBase() + 0x4000));
    pred = bed.machine.bpu().btb().lookup(victim, Privilege::Kernel);
    ASSERT_TRUE(pred.has_value());
    EXPECT_EQ(pred->absTarget, bed.kernel.imageBase() + 0x4000);
}

TEST(Injector, AliasIsUserReachable)
{
    Testbed bed(quiet(cpu::zen4()));
    PredictionInjector injector(bed);
    VAddr victim = bed.kernel.fdgetPosCallVa();
    VAddr alias = injector.aliasOf(victim);
    EXPECT_EQ(bit(alias, 47), 0u);
    ASSERT_TRUE(injector.inject(victim, bed.kernel.imageBase() + 0x2000));
    // The injection site is mapped user-executable.
    auto t = bed.kernel.pageTable().translate(alias, Privilege::User,
                                              mem::Access::Fetch);
    EXPECT_TRUE(t.ok());
}

TEST(Injector, InjectionSurvivesUnrelatedSyscalls)
{
    Testbed bed(quiet(cpu::zen3()));
    bed.syscall(os::kSysReadv, 0, 0);   // warm an unrelated path
    PredictionInjector injector(bed);
    VAddr victim = bed.kernel.getpidGadgetVa();
    injector.inject(victim, bed.kernel.imageBase() + 0x2000);
    bed.syscall(os::kSysReadv, 0, 0);   // different path, no collision
    auto pred = bed.machine.bpu().btb().lookup(victim, Privilege::Kernel);
    EXPECT_TRUE(pred.has_value());
}

TEST(Injector, PhantomConsumesNonBranchPrediction)
{
    // After the phantom episode fires at a non-branch victim, the
    // decoder drops the bogus entry (decoder feedback); the attack has
    // to re-inject for the next round — exactly what the exploits do.
    Testbed bed(quiet(cpu::zen3()));
    bed.syscall(os::kSysGetpid);        // warm
    PredictionInjector injector(bed);
    VAddr victim = bed.kernel.getpidGadgetVa();
    injector.inject(victim, bed.kernel.imageBase() + 0x2000);
    bed.syscall(os::kSysGetpid);        // phantom fires
    EXPECT_FALSE(
        bed.machine.bpu().btb().lookup(victim, Privilege::Kernel));
    EXPECT_GT(bed.machine.pmc().read(cpu::PmcEvent::DecoderInvalidate),
              0u);
}

// ---- Testbed syscall stub ----------------------------------------------------------

TEST(TestbedHarness, SyscallPassesArguments)
{
    Testbed bed(quiet(cpu::zen2()));
    auto result = bed.syscall(os::kSysReadv, 7, 0xabcd);
    EXPECT_EQ(result.reason, cpu::ExitReason::Halt);
    EXPECT_EQ(bed.machine.regs().read(isa::R12), 0xabcdu);
}

TEST(TestbedHarness, GetpidReturnsPid)
{
    Testbed bed(quiet(cpu::zen1()));
    bed.syscall(os::kSysGetpid);
    EXPECT_EQ(bed.machine.regs().read(isa::RAX), 42u);
}

} // namespace
} // namespace phantom::attack
