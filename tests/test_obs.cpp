/**
 * @file
 * Tests for the observability subsystem: the ring trace sink and ambient
 * sink plumbing, the log2-bucket histogram and metrics registry (exact,
 * order-independent merges), the metrics JSON export, and the Chrome
 * trace_event rendering of speculation episodes.
 */

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "runner/json.hpp"
#include "runner/metrics_json.hpp"

#include <gtest/gtest.h>

namespace phantom::obs {
namespace {

TraceEvent
event(TraceEventKind kind, Cycle cycle, u64 episode = 0, u64 pc = 0,
      u64 addr = 0, u32 arg32 = 0, u8 arg8 = 0)
{
    TraceEvent e;
    e.kind = kind;
    e.arg8 = arg8;
    e.arg32 = arg32;
    e.cycle = cycle;
    e.episode = episode;
    e.pc = pc;
    e.addr = addr;
    return e;
}

// ---- RingTraceSink -----------------------------------------------------------

TEST(RingTraceSink, RoundsCapacityToPowerOfTwo)
{
    RingTraceSink ring(5);
    EXPECT_EQ(ring.capacity(), 8u);
    EXPECT_EQ(RingTraceSink(1).capacity(), 1u);
    EXPECT_EQ(RingTraceSink(64).capacity(), 64u);
}

TEST(RingTraceSink, OverwritesOldestAndCountsDrops)
{
    RingTraceSink ring(4);
    for (u64 i = 0; i < 10; ++i)
        ring.emit(event(TraceEventKind::SpecFetch, i));

    EXPECT_EQ(ring.emitted(), 10u);
    EXPECT_EQ(ring.dropped(), 6u);

    auto events = ring.snapshot();
    ASSERT_EQ(events.size(), 4u);
    for (u64 i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].cycle, 6 + i);   // oldest first, newest kept
}

TEST(RingTraceSink, ClearResetsEverything)
{
    RingTraceSink ring(2);
    ring.emit(event(TraceEventKind::SpecFetch, 1));
    ring.emit(event(TraceEventKind::SpecFetch, 2));
    ring.emit(event(TraceEventKind::SpecFetch, 3));
    ring.clear();
    EXPECT_EQ(ring.emitted(), 0u);
    EXPECT_EQ(ring.dropped(), 0u);
    EXPECT_TRUE(ring.snapshot().empty());
}

TEST(AmbientSink, ScopedInstallAndRestore)
{
    ASSERT_EQ(activeTraceSink(), nullptr);
    RingTraceSink outer(4);
    {
        ScopedTraceSink a(&outer);
        EXPECT_EQ(activeTraceSink(), &outer);
        RingTraceSink inner(4);
        {
            ScopedTraceSink b(&inner);
            EXPECT_EQ(activeTraceSink(), &inner);
        }
        EXPECT_EQ(activeTraceSink(), &outer);
    }
    EXPECT_EQ(activeTraceSink(), nullptr);
}

// ---- Histogram ---------------------------------------------------------------

TEST(Histogram, BucketBoundaries)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0);
    EXPECT_EQ(Histogram::bucketOf(1), 0);
    EXPECT_EQ(Histogram::bucketOf(2), 1);
    EXPECT_EQ(Histogram::bucketOf(3), 1);
    EXPECT_EQ(Histogram::bucketOf(4), 2);
    EXPECT_EQ(Histogram::bucketOf(1023), 9);
    EXPECT_EQ(Histogram::bucketOf(1024), 10);
    EXPECT_EQ(Histogram::bucketOf(~0ull), 63);

    EXPECT_EQ(Histogram::bucketLo(0), 0u);
    EXPECT_EQ(Histogram::bucketLo(1), 2u);
    EXPECT_EQ(Histogram::bucketLo(10), 1024u);
}

TEST(Histogram, ObserveAndMergeAreExact)
{
    Histogram a;
    Histogram b;
    a.observe(1);
    a.observe(100);
    b.observe(7);
    b.observe(1 << 20);

    Histogram merged_ab = a;
    merged_ab.merge(b);
    Histogram merged_ba = b;
    merged_ba.merge(a);

    EXPECT_EQ(merged_ab.count(), 4u);
    EXPECT_EQ(merged_ab.sum(), 1u + 100u + 7u + (1u << 20));
    EXPECT_EQ(merged_ab.buckets(), merged_ba.buckets());  // order-free
    EXPECT_EQ(merged_ab.sum(), merged_ba.sum());
    EXPECT_DOUBLE_EQ(merged_ab.mean(),
                     double(merged_ab.sum()) / 4.0);
}

// ---- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistry, MergeSemantics)
{
    MetricsRegistry a;
    MetricsRegistry b;
    EXPECT_TRUE(a.empty());

    a.counter("trials").inc(3);
    b.counter("trials").inc(4);
    b.counter("only_b").inc(1);
    a.gauge("jobs").set(1.0);
    b.gauge("jobs").set(2.0);
    a.histogram("micros").observe(10);
    b.histogram("micros").observe(1000);

    a.merge(b);
    EXPECT_EQ(a.counter("trials").value(), 7u);      // counters add
    EXPECT_EQ(a.counter("only_b").value(), 1u);
    EXPECT_DOUBLE_EQ(a.gauge("jobs").value(), 2.0);  // gauges last-write
    EXPECT_EQ(a.histogram("micros").count(), 2u);    // histograms add
    EXPECT_FALSE(a.empty());
}

TEST(MetricsRegistry, JsonExportShape)
{
    MetricsRegistry reg;
    reg.counter("episodes.total").inc(42);
    reg.gauge("scheduler.jobs").set(2.0);
    reg.histogram("trial_micros").observe(100);
    reg.histogram("trial_micros").observe(100);

    runner::JsonValue doc = runner::metricsToJson(reg);
    ASSERT_TRUE(doc.isObject());

    // Dotted metric names are object keys, not paths: look up directly.
    const runner::JsonValue* counters = doc.find("counters");
    ASSERT_NE(counters, nullptr);
    const runner::JsonValue* c = counters->find("episodes.total");
    ASSERT_NE(c, nullptr);
    EXPECT_DOUBLE_EQ(c->number(), 42.0);

    const runner::JsonValue* gauges = doc.find("gauges");
    ASSERT_NE(gauges, nullptr);
    ASSERT_NE(gauges->find("scheduler.jobs"), nullptr);

    const runner::JsonValue* hist =
        doc.find("histograms")->find("trial_micros");
    ASSERT_NE(hist, nullptr);
    EXPECT_DOUBLE_EQ(hist->find("count")->number(), 2.0);
    EXPECT_DOUBLE_EQ(hist->find("sum")->number(), 200.0);
    // Only the one non-empty bucket is serialized.
    ASSERT_TRUE(hist->find("buckets")->isArray());
    EXPECT_EQ(hist->find("buckets")->items().size(), 1u);
}

// ---- Chrome trace export -----------------------------------------------------

const char*
labelOf(u8 kind)
{
    return kind == 0 ? "phantom" : "spectre";
}

TEST(ChromeTrace, RendersEpisodeWithStageChildren)
{
    ShardTrace shard;
    shard.shard = 0;
    shard.events = {
        event(TraceEventKind::EpisodeBegin, 100, 1, 0x400000, 0x500000),
        event(TraceEventKind::SpecFetch, 101, 1),
        event(TraceEventKind::SpecDecode, 102, 1),
        event(TraceEventKind::SpecDecode, 103, 1),
        event(TraceEventKind::SpecExec, 104, 1),
        event(TraceEventKind::FrontendResteer, 105, 1, 0x400000,
              0x500000),
        event(TraceEventKind::EpisodeEnd, 110, 1, 0x400000, 0x500000, 0,
              /*arg8=*/0),
    };

    ChromeTraceOptions options;
    options.episodeLabel = labelOf;
    std::string text = chromeTraceJson({shard}, options);

    runner::JsonValue doc;
    std::string error;
    ASSERT_TRUE(runner::parseJson(text, doc, &error)) << error;

    const runner::JsonValue* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    const runner::JsonValue* episode = nullptr;
    int stage_slices = 0;
    int instants = 0;
    for (const auto& e : events->items()) {
        const auto* name = e.find("name");
        if (name == nullptr)
            continue;
        if (name->string() == "episode:phantom")
            episode = &e;
        if (name->string() == "IF" || name->string() == "ID" ||
            name->string() == "EX")
            ++stage_slices;
        if (name->string() == "frontend_resteer")
            ++instants;
    }

    ASSERT_NE(episode, nullptr);
    EXPECT_DOUBLE_EQ(episode->find("ts")->number(), 100.0);
    EXPECT_DOUBLE_EQ(episode->find("dur")->number(), 10.0);
    EXPECT_DOUBLE_EQ(episode->findPath("args.spec_decode")->number(), 2.0);
    EXPECT_DOUBLE_EQ(episode->findPath("args.spec_exec")->number(), 1.0);
    EXPECT_EQ(stage_slices, 3);   // IF, ID and EX all reached
    EXPECT_EQ(instants, 1);
}

TEST(ChromeTrace, TruncatedRingDropsOrphanEpisodeEnd)
{
    // An EpisodeEnd whose EpisodeBegin was overwritten must not produce
    // a slice (there is no start timestamp to anchor it).
    ShardTrace shard;
    shard.shard = 1;
    shard.dropped = 12;
    shard.events = {
        event(TraceEventKind::EpisodeEnd, 50, 7),
    };

    std::string text = chromeTraceJson({shard});
    runner::JsonValue doc;
    std::string error;
    ASSERT_TRUE(runner::parseJson(text, doc, &error)) << error;

    bool has_slice = false;
    bool dropped_in_label = false;
    for (const auto& e : doc.find("traceEvents")->items()) {
        const auto* ph = e.find("ph");
        if (ph != nullptr && ph->string() == "X")
            has_slice = true;
        const auto* args = e.findPath("args.name");
        if (args != nullptr &&
            args->string().find("12 events dropped") != std::string::npos)
            dropped_in_label = true;
    }
    EXPECT_FALSE(has_slice);
    EXPECT_TRUE(dropped_in_label);   // truncation is never silent
}

} // namespace
} // namespace phantom::obs
