/**
 * @file
 * Unit tests for the branch prediction unit: BTB training/lookup
 * semantics (PC-relative direct targets, absolute indirect targets,
 * RSB-backed returns), the cross-privilege hash functions, the RSB, the
 * PHT, and the mitigation-related behaviours.
 */

#include "attack/testbed.hpp"
#include "bpu/bpu.hpp"
#include "bpu/btb_hash.hpp"

#include <gtest/gtest.h>

#include <set>

namespace phantom::bpu {
namespace {

using isa::BranchType;

BtbConfig
smallBtb(BtbHashKind hash = BtbHashKind::Zen12)
{
    BtbConfig config;
    config.sets = 64;
    config.ways = 4;
    config.hash = hash;
    return config;
}

// ---- Btb ---------------------------------------------------------------------

TEST(BtbModel, TrainThenLookup)
{
    Btb btb(smallBtb());
    btb.train(0x400000, BranchType::IndirectJump, 0x500000,
              Privilege::User);
    auto pred = btb.lookup(0x400000, Privilege::User);
    ASSERT_TRUE(pred.has_value());
    EXPECT_EQ(pred->type, BranchType::IndirectJump);
    EXPECT_EQ(pred->absTarget, 0x500000u);
    EXPECT_EQ(pred->creator, Privilege::User);
}

TEST(BtbModel, MissOnDifferentAddress)
{
    Btb btb(smallBtb());
    btb.train(0x400000, BranchType::DirectJump, 0x400100,
              Privilege::User);
    EXPECT_FALSE(btb.lookup(0x400005, Privilege::User).has_value());
}

TEST(BtbModel, DirectTargetsServedPcRelative)
{
    // §5.2: "the branch predictor serves direct branch targets as
    // PC-relative" — the same entry at a different (aliasing) source
    // yields a shifted target.
    Btb btb(smallBtb());
    btb.train(0x400000, BranchType::DirectJump, 0x400100,
              Privilege::User);
    auto pred = btb.lookup(0x400000, Privilege::User);
    ASSERT_TRUE(pred.has_value());
    EXPECT_EQ(pred->targetFor(0x400000), 0x400100u);
    EXPECT_EQ(pred->targetFor(0x7700000), 0x7700100u);
}

TEST(BtbModel, IndirectTargetsServedAbsolute)
{
    Btb btb(smallBtb());
    btb.train(0x400000, BranchType::IndirectCall, 0x99999000,
              Privilege::User);
    auto pred = btb.lookup(0x400000, Privilege::User);
    ASSERT_TRUE(pred.has_value());
    EXPECT_EQ(pred->targetFor(0x123456), 0x99999000u);
}

TEST(BtbModel, RetrainOverwritesTypeAndTarget)
{
    Btb btb(smallBtb());
    btb.train(0x400000, BranchType::IndirectJump, 0x500000,
              Privilege::User);
    btb.train(0x400000, BranchType::DirectJump, 0x400100,
              Privilege::User);
    auto pred = btb.lookup(0x400000, Privilege::User);
    ASSERT_TRUE(pred.has_value());
    EXPECT_EQ(pred->type, BranchType::DirectJump);
}

TEST(BtbModel, LruEvictionWithinSet)
{
    BtbConfig config = smallBtb();
    config.sets = 4;
    config.ways = 2;
    Btb btb(config);
    // Under the Zen12 key the index is bits [13:0] mod sets; use large
    // strides to land in the same set with distinct tags.
    VAddr base = 0x400000;
    u64 stride = 1ull << 14;     // beyond the index bits
    btb.train(base + 0 * stride, BranchType::DirectJump, base,
              Privilege::User);
    btb.train(base + 1 * stride, BranchType::DirectJump, base,
              Privilege::User);
    btb.lookup(base + 0 * stride, Privilege::User);   // refresh entry 0
    btb.train(base + 2 * stride, BranchType::DirectJump, base,
              Privilege::User);                        // evicts entry 1
    EXPECT_TRUE(btb.lookup(base + 0 * stride, Privilege::User));
    EXPECT_FALSE(btb.lookup(base + 1 * stride, Privilege::User));
    EXPECT_TRUE(btb.lookup(base + 2 * stride, Privilege::User));
}

TEST(BtbModel, InvalidateAndFlush)
{
    Btb btb(smallBtb());
    btb.train(0x400000, BranchType::DirectJump, 0x400100,
              Privilege::User);
    EXPECT_TRUE(btb.invalidate(0x400000, Privilege::User));
    EXPECT_FALSE(btb.invalidate(0x400000, Privilege::User));
    EXPECT_FALSE(btb.lookup(0x400000, Privilege::User));

    btb.train(0x400000, BranchType::DirectJump, 0x400100,
              Privilege::User);
    EXPECT_EQ(btb.validCount(), 1u);
    btb.flushAll();
    EXPECT_EQ(btb.validCount(), 0u);
}

// ---- Hash functions -------------------------------------------------------------

class HashKindSweep : public ::testing::TestWithParam<BtbHashKind>
{
};

TEST_P(HashKindSweep, KeyIsDeterministic)
{
    BtbHashKind kind = GetParam();
    EXPECT_EQ(btbKey(kind, 0x400abc, Privilege::User),
              btbKey(kind, 0x400abc, Privilege::User));
}

TEST_P(HashKindSweep, KeySensitiveToLowBits)
{
    BtbHashKind kind = GetParam();
    EXPECT_NE(btbKey(kind, 0x400abc, Privilege::User),
              btbKey(kind, 0x400abd, Privilege::User));
}

TEST_P(HashKindSweep, UserAliasSharesKey)
{
    BtbHashKind kind = GetParam();
    VAddr va = 0x00000000114006fbull;
    VAddr alias = attack::userAlias(kind, va);
    EXPECT_NE(alias, va);
    EXPECT_EQ(btbKey(kind, alias, Privilege::User),
              btbKey(kind, va, Privilege::User));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, HashKindSweep,
                         ::testing::Values(BtbHashKind::Zen12,
                                           BtbHashKind::Zen34,
                                           BtbHashKind::IntelSalted));

TEST(BtbHash, IntelSaltSeparatesPrivileges)
{
    VAddr va = 0xffffffff81234000ull;
    EXPECT_NE(btbKey(BtbHashKind::IntelSalted, va, Privilege::User),
              btbKey(BtbHashKind::IntelSalted, va, Privilege::Kernel));
    // AMD hashes ignore the privilege mode entirely.
    EXPECT_EQ(btbKey(BtbHashKind::Zen34, va, Privilege::User),
              btbKey(BtbHashKind::Zen34, va, Privilege::Kernel));
}

TEST(BtbHash, Zen34ParityFunctionsAllContainBit47)
{
    for (u64 mask : zen34ParityMasks())
        EXPECT_TRUE(mask & (1ull << 47));
    EXPECT_FALSE(zen34ExtraParityMask() & (1ull << 47));
}

TEST(BtbHash, Zen34FunctionsLinearlyIndependent)
{
    // Gaussian elimination over the 12 masks: rank must be 12.
    std::vector<u64> rows(zen34ParityMasks().begin(),
                          zen34ParityMasks().end());
    std::size_t rank = 0;
    for (int bit = 63; bit >= 0; --bit) {
        std::size_t pivot = rank;
        while (pivot < rows.size() && !(rows[pivot] & (1ull << bit)))
            ++pivot;
        if (pivot == rows.size())
            continue;
        std::swap(rows[rank], rows[pivot]);
        for (std::size_t r = 0; r < rows.size(); ++r) {
            if (r != rank && (rows[r] & (1ull << bit)))
                rows[r] ^= rows[rank];
        }
        ++rank;
    }
    EXPECT_EQ(rank, zen34ParityMasks().size());
}

TEST(BtbHash, EveryAddressBitCovered)
{
    // Any single-bit flip in [12, 47] must change the Zen34 key —
    // otherwise benign programs would suffer pervasive aliasing.
    VAddr va = 0x0000456789abc000ull;
    for (unsigned b = 12; b <= 47; ++b) {
        EXPECT_NE(btbKey(BtbHashKind::Zen34, va ^ (1ull << b),
                         Privilege::User),
                  btbKey(BtbHashKind::Zen34, va, Privilege::User))
            << "bit " << b;
    }
}

TEST(BtbHash, CrossPrivAliasDistribution)
{
    // Aliases of distinct kernel addresses are distinct user addresses.
    std::set<VAddr> aliases;
    for (u64 slot = 0; slot < 100; ++slot) {
        VAddr kva = 0xffffffff80000000ull + slot * kHugePageBytes + 0x520;
        VAddr alias = crossPrivAlias(BtbHashKind::Zen34, kva);
        EXPECT_EQ(bit(alias, 47), 0u);
        EXPECT_TRUE(isCanonical(alias));
        aliases.insert(alias);
    }
    EXPECT_EQ(aliases.size(), 100u);
}

// ---- Rsb ---------------------------------------------------------------------

TEST(RsbModel, LifoOrder)
{
    Rsb rsb(4);
    rsb.push(0x100);
    rsb.push(0x200);
    EXPECT_EQ(rsb.pop().value(), 0x200u);
    EXPECT_EQ(rsb.pop().value(), 0x100u);
    EXPECT_FALSE(rsb.pop().has_value());
}

TEST(RsbModel, OverflowWrapsOldest)
{
    Rsb rsb(2);
    rsb.push(0x1);
    rsb.push(0x2);
    rsb.push(0x3);              // overwrites 0x1
    EXPECT_EQ(rsb.depth(), 2u);
    EXPECT_EQ(rsb.pop().value(), 0x3u);
    EXPECT_EQ(rsb.pop().value(), 0x2u);
    EXPECT_FALSE(rsb.pop().has_value());
}

TEST(RsbModel, RestoreRepairsSpeculativePops)
{
    Rsb rsb(8);
    rsb.push(0xa);
    rsb.push(0xb);
    std::size_t top = rsb.top(), depth = rsb.depth();
    EXPECT_EQ(rsb.pop().value(), 0xbu);
    EXPECT_EQ(rsb.pop().value(), 0xau);
    rsb.restore(top, depth);
    EXPECT_EQ(rsb.pop().value(), 0xbu);
    EXPECT_EQ(rsb.pop().value(), 0xau);
}

// ---- Pht ---------------------------------------------------------------------

TEST(PhtModel, InitiallyWeaklyTaken)
{
    Pht pht;
    EXPECT_TRUE(pht.predictTaken(0x400000, 0));
}

TEST(PhtModel, SaturatesNotTaken)
{
    Pht pht;
    for (int i = 0; i < 3; ++i)
        pht.update(0x400000, 0, false);
    EXPECT_FALSE(pht.predictTaken(0x400000, 0));
    // One taken is not enough to flip a saturated counter.
    pht.update(0x400000, 0, true);
    EXPECT_FALSE(pht.predictTaken(0x400000, 0));
    pht.update(0x400000, 0, true);
    EXPECT_TRUE(pht.predictTaken(0x400000, 0));
}

TEST(PhtModel, AliasedAddressesShareDirection)
{
    // Addresses equal in their low bits share the counter — the
    // property cross-address conditional training relies on.
    Pht pht;
    VAddr a = 0x0000000011000500ull;
    VAddr b = 0x0000001091000500ull;    // same low 12 bits
    for (int i = 0; i < 3; ++i)
        pht.update(a, 0, false);
    EXPECT_FALSE(pht.predictTaken(b, 0));
}

// ---- Bpu facade -----------------------------------------------------------------

TEST(BpuFacade, CondDirectionFromPht)
{
    BpuConfig config;
    Bpu bpu(config);
    bpu.trainBranch(0x400000, BranchType::CondJump, 0x400100, true,
                    Privilege::User, false);
    auto pred = bpu.predictAt(0x400000, Privilege::User, false);
    ASSERT_TRUE(pred.has_value());
    EXPECT_TRUE(pred->taken);

    for (int i = 0; i < 4; ++i)
        bpu.trainBranch(0x400000, BranchType::CondJump, 0x400100, false,
                        Privilege::User, false);
    pred = bpu.predictAt(0x400000, Privilege::User, false);
    ASSERT_TRUE(pred.has_value());
    EXPECT_FALSE(pred->taken);
}

TEST(BpuFacade, ReturnPredictionPopsRsb)
{
    BpuConfig config;
    Bpu bpu(config);
    bpu.rsb().push(0x1234);
    bpu.trainBranch(0x400000, BranchType::Return, 0x1234, true,
                    Privilege::User, true);
    bpu.rsb().push(0x9999);
    auto pred = bpu.predictAt(0x400000, Privilege::User, false);
    ASSERT_TRUE(pred.has_value());
    EXPECT_TRUE(pred->usedRsb);
    EXPECT_EQ(pred->target, 0x9999u);
    EXPECT_EQ(bpu.rsb().depth(), 1u);   // 0x1234 remains
    // Restore repairs the speculative pop.
    bpu.restoreRsb(pred->rsbBefore);
    EXPECT_EQ(bpu.rsb().depth(), 2u);
    EXPECT_EQ(bpu.rsb().peek().value(), 0x9999u);
}

TEST(BpuFacade, ReturnUnderflowSurfacesUnusableTarget)
{
    BpuConfig config;
    Bpu bpu(config);
    bpu.trainBranch(0x400000, BranchType::Return, 0x1234, true,
                    Privilege::User, false);
    // trainBranch consumed nothing (rsb empty); lookup underflows.
    auto pred = bpu.predictAt(0x400000, Privilege::User, false);
    ASSERT_TRUE(pred.has_value());
    EXPECT_EQ(pred->target, 0u);
    EXPECT_FALSE(pred->usedRsb);
}

TEST(BpuFacade, AutoIbrsRestrictsLowerPrivilegePredictions)
{
    BpuConfig config;
    Bpu bpu(config);
    bpu.trainBranch(0xffffffff81000000ull, BranchType::IndirectJump,
                    0xffffffff81002000ull, true, Privilege::User, false);

    auto unrestricted =
        bpu.predictAt(0xffffffff81000000ull, Privilege::Kernel, false);
    ASSERT_TRUE(unrestricted.has_value());
    EXPECT_FALSE(unrestricted->restricted);

    auto restricted =
        bpu.predictAt(0xffffffff81000000ull, Privilege::Kernel, true);
    ASSERT_TRUE(restricted.has_value());
    EXPECT_TRUE(restricted->restricted);

    // Kernel-created entries are never restricted.
    bpu.trainBranch(0xffffffff81000000ull, BranchType::IndirectJump,
                    0xffffffff81002000ull, true, Privilege::Kernel, false);
    auto kernel_owned =
        bpu.predictAt(0xffffffff81000000ull, Privilege::Kernel, true);
    ASSERT_TRUE(kernel_owned.has_value());
    EXPECT_FALSE(kernel_owned->restricted);
}

TEST(BpuFacade, IbpbFlushesEverything)
{
    BpuConfig config;
    Bpu bpu(config);
    bpu.trainBranch(0x400000, BranchType::IndirectJump, 0x500000, true,
                    Privilege::User, false);
    bpu.rsb().push(0x1);
    for (int i = 0; i < 3; ++i)
        bpu.trainBranch(0x600000, BranchType::CondJump, 0x600100, false,
                        Privilege::User, false);
    bpu.ibpb();
    EXPECT_FALSE(bpu.predictAt(0x400000, Privilege::User, false));
    EXPECT_EQ(bpu.rsb().depth(), 0u);
    EXPECT_TRUE(bpu.pht().predictTaken(0x600000, 0));   // reset to weak
}

TEST(BpuFacade, NotTakenCondDoesNotInstallBtbEntry)
{
    BpuConfig config;
    Bpu bpu(config);
    bpu.trainBranch(0x400000, BranchType::CondJump, 0x400100, false,
                    Privilege::User, false);
    EXPECT_FALSE(bpu.predictAt(0x400000, Privilege::User, false));
}

} // namespace
} // namespace phantom::bpu
