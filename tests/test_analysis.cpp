/**
 * @file
 * Unit and property tests for the GF(2) machinery that replaces the
 * paper's Z3 step: span arithmetic and bounded-weight parity recovery.
 */

#include "analysis/gf2.hpp"
#include "bpu/btb_hash.hpp"
#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace phantom::analysis {
namespace {

TEST(Gf2SpanModel, InsertAndContains)
{
    Gf2Span span;
    EXPECT_TRUE(span.insert(0b1010));
    EXPECT_TRUE(span.insert(0b0110));
    EXPECT_FALSE(span.insert(0b1100));    // = xor of the two
    EXPECT_TRUE(span.contains(0b1010));
    EXPECT_TRUE(span.contains(0b1100));
    EXPECT_FALSE(span.contains(0b0001));
    EXPECT_EQ(span.rank(), 2u);
}

TEST(Gf2SpanModel, ZeroAlwaysContained)
{
    Gf2Span span;
    EXPECT_TRUE(span.contains(0));
    EXPECT_FALSE(span.insert(0));
}

TEST(Gf2SpanModel, RankBoundedByBits)
{
    Gf2Span span;
    Rng rng(5);
    for (int i = 0; i < 200; ++i)
        span.insert(rng.next() & 0xff);
    EXPECT_LE(span.rank(), 8u);
    EXPECT_EQ(span.rank(), 8u);   // 200 random bytes span all 8 bits whp
}

TEST(Parity, MatchesPopcountParity)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i) {
        u64 x = rng.next();
        EXPECT_EQ(parity(x), static_cast<u64>(__builtin_parityll(x)));
    }
}

TEST(MaskToString, Formats)
{
    EXPECT_EQ(maskToString((1ull << 47) | (1ull << 35) | (1ull << 23)),
              "b47 ^ b35 ^ b23");
    EXPECT_EQ(maskToString(1ull << 3), "b3");
}

/**
 * Property: given collision diffs generated from a known set of parity
 * functions, recovery returns exactly those functions (when they are
 * minimal-weight and independent).
 */
class ParityRecoveryProperty : public ::testing::TestWithParam<u64>
{
};

TEST_P(ParityRecoveryProperty, RecoversPlantedFunctions)
{
    u64 seed = GetParam();
    Rng rng(seed);

    // Plant 3 random independent weight-3 functions over bits [12, 46],
    // all containing bit 47.
    std::set<u64> planted;
    Gf2Span span;
    while (planted.size() < 3) {
        u64 mask = 1ull << 47;
        while (__builtin_popcountll(mask) < 4)
            mask |= 1ull << rng.range(12, 46);
        if (__builtin_popcountll(mask) == 4 && span.contains(mask) == false) {
            span.insert(mask);
            planted.insert(mask);
        }
    }

    // Generate diffs d with bit 47 set, random other bits, subject to
    // parity(f & d) == 0 for every planted f (rejection sampling).
    std::vector<u64> diffs;
    while (diffs.size() < 60) {
        u64 d = (rng.next() & 0x00007ffffffff000ull) | (1ull << 47);
        bool ok = true;
        for (u64 f : planted)
            ok = ok && parity(f & d) == 0;
        if (ok)
            diffs.push_back(d);
    }

    ParityRecoveryOptions options;
    options.maxWeight = 4;
    auto recovered = recoverParityMasks(diffs, options);

    // Everything recovered must satisfy the constraints and include the
    // planted functions (up to GF(2) span equality).
    Gf2Span planted_span;
    for (u64 f : planted)
        planted_span.insert(f);
    std::size_t found = 0;
    for (u64 f : planted) {
        if (std::find(recovered.begin(), recovered.end(), f) !=
            recovered.end())
            ++found;
    }
    // With 60 diffs the solution space is cut down to the planted span;
    // all three planted functions are minimal-weight representatives.
    EXPECT_EQ(found, 3u) << "seed " << seed;
    for (u64 f : recovered) {
        for (u64 d : diffs)
            EXPECT_EQ(parity(f & d), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParityRecoveryProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ParityRecovery, RecoversFigure7FromIdealDiffs)
{
    // Diffs drawn directly from the Zen 3/4 key-equality condition.
    Rng rng(42);
    std::vector<u64> diffs;
    VAddr kernel = 0xffffffff81234000ull;
    while (diffs.size() < 40) {
        VAddr user = (rng.next() & 0x00007ffffffff000ull);
        if (bpu::btbKey(bpu::BtbHashKind::Zen34, user, Privilege::User) ==
            bpu::btbKey(bpu::BtbHashKind::Zen34, kernel,
                        Privilege::Kernel))
            diffs.push_back(user ^ kernel);
    }

    auto recovered = recoverParityMasks(diffs, {});
    const auto& published = bpu::zen34ParityMasks();
    ASSERT_EQ(recovered.size(), published.size());
    for (u64 f : published) {
        EXPECT_NE(std::find(recovered.begin(), recovered.end(), f),
                  recovered.end())
            << maskToString(f);
    }
}

TEST(ParityRecovery, WithoutBit47FindsTheExtraFunction)
{
    // Relaxing the bit-47 requirement surfaces the extra non-b47 parity
    // (the functions the paper suspects exist but could not find).
    Rng rng(43);
    std::vector<u64> diffs;
    // Same-privilege collisions: both addresses user-space.
    VAddr base = 0x00001234567ff000ull;
    while (diffs.size() < 60) {
        VAddr other = (rng.next() & 0x00007ffffffff000ull);
        if (bpu::btbKey(bpu::BtbHashKind::Zen34, other, Privilege::User) ==
            bpu::btbKey(bpu::BtbHashKind::Zen34, base, Privilege::User) &&
            other != base)
            diffs.push_back(other ^ base);
    }

    ParityRecoveryOptions options;
    options.requireBit47 = false;
    options.maxWeight = 3;
    auto recovered = recoverParityMasks(diffs, options);
    EXPECT_NE(std::find(recovered.begin(), recovered.end(),
                        bpu::zen34ExtraParityMask()),
              recovered.end());
}

TEST(ParityRecovery, NoDiffsYieldsEverything)
{
    // With no constraints, the weight-1 masks alone span the space.
    ParityRecoveryOptions options;
    options.maxWeight = 2;
    options.requireBit47 = false;
    options.bitLo = 12;
    options.bitHi = 15;
    auto recovered = recoverParityMasks({}, options);
    EXPECT_EQ(recovered.size(), 4u);   // b12..b15
}

TEST(ParityRecovery, ContradictoryDiffsYieldNothing)
{
    // Random dense diffs admit no low-weight parity function.
    Rng rng(44);
    std::vector<u64> diffs;
    for (int i = 0; i < 50; ++i)
        diffs.push_back(rng.next() | (1ull << 47));
    auto recovered = recoverParityMasks(diffs, {});
    EXPECT_TRUE(recovered.empty());
}

} // namespace
} // namespace phantom::analysis
