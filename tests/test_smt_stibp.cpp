/**
 * @file
 * SMT / STIBP tests (§2.4): the two hardware threads of a core share all
 * predictors, so a sibling can inject predictions into the victim — until
 * STIBP restricts each thread to its own entries.
 */

#include "attack/testbed.hpp"
#include "isa/assembler.hpp"

#include <gtest/gtest.h>

namespace phantom {
namespace {

using namespace isa;
using attack::Testbed;

cpu::MicroarchConfig
quiet(cpu::MicroarchConfig cfg)
{
    cfg.noise = mem::NoiseConfig{};
    return cfg;
}

/** Fixture: attacker trains on thread 1; victim executes on thread 0. */
struct SmtPair
{
    Testbed bed;
    VAddr victimNop = 0x0000000000400000ull + 0x6c0;
    VAddr target = 0;

    explicit SmtPair(bool stibp) : bed(quiet(cpu::zen2()))
    {
        if (stibp)
            bed.machine.msrs().setBit(cpu::msr::kSpecCtrl,
                                      cpu::msr::kStibpBit, true);

        // Victim code (thread 0): nop sled then hlt.
        Assembler victim(victimNop);
        victim.nopN(5);
        victim.hlt();
        bed.process.mapCode(victimNop, victim.finish());

        // Signal target: user-executable page the phantom fetch fills.
        target = 0x0000000000500000ull;
        Assembler gadget(target);
        gadget.nop();
        gadget.ret();
        bed.process.mapCode(target, gadget.finish());

        // Warm the victim once on its own thread.
        bed.machine.setSmtThread(0);
        bed.runUser(victimNop);
    }

    /** Train a jmp*->target prediction at the victim's address from the
     *  sibling thread. */
    void
    trainFromSibling()
    {
        // The sibling thread executes a jmp* at a BTB-aliasing address
        // (the threads of this fixture share the address space, like two
        // attacker threads sandwiching a victim).
        bed.machine.setSmtThread(1);
        VAddr alias = attack::userAlias(
            bed.machine.config().bpu.btb.hash, victimNop);
        Assembler site(alias - 10);
        site.movImm(R8, target);
        site.jmpInd(R8);
        bed.process.mapCode(alias - 10, site.finish());
        bed.runUser(alias - 10);
        bed.machine.setSmtThread(0);
    }

    /** Run the victim on thread 0; true if the target was fetched. */
    bool
    victimLeaks()
    {
        bed.machine.clflushVirt(target);
        bed.machine.setSmtThread(0);
        bed.runUser(victimNop);
        Cycle lat = bed.machine.timedFetchAccess(target, Privilege::User);
        return lat < bed.machine.caches().config().latMem;
    }
};

TEST(SmtStibp, SiblingInjectionWorksWithoutStibp)
{
    SmtPair pair(/*stibp=*/false);
    pair.trainFromSibling();
    EXPECT_TRUE(pair.victimLeaks());
}

TEST(SmtStibp, StibpBlocksSiblingPredictions)
{
    SmtPair pair(/*stibp=*/true);
    pair.trainFromSibling();
    EXPECT_FALSE(pair.victimLeaks());
}

TEST(SmtStibp, StibpAllowsOwnThreadPredictions)
{
    // The victim thread's own entries are unaffected by STIBP: a branch
    // trained and re-executed on thread 0 still predicts.
    Testbed bed(quiet(cpu::zen3()));
    bed.machine.msrs().setBit(cpu::msr::kSpecCtrl, cpu::msr::kStibpBit,
                              true);
    Assembler code(0x400000);
    code.movImm(R8, 0x400040);
    code.jmpInd(R8);
    code.padTo(0x400040);
    code.hlt();
    bed.process.mapCode(0x400000, code.finish());

    bed.machine.setSmtThread(0);
    bed.runUser(0x400000);
    auto pred = bed.machine.bpu().btb().lookup(0x40000a, Privilege::User,
                                               /*thread=*/0,
                                               /*stibp=*/true);
    EXPECT_TRUE(pred.has_value());
    // And the sibling cannot consume it under STIBP.
    auto sibling = bed.machine.bpu().btb().lookup(0x40000a,
                                                  Privilege::User,
                                                  /*thread=*/1,
                                                  /*stibp=*/true);
    EXPECT_FALSE(sibling.has_value());
}

TEST(SmtStibp, ThreadIdClampedToOneBit)
{
    Testbed bed(quiet(cpu::zen2()));
    bed.machine.setSmtThread(7);
    EXPECT_EQ(bed.machine.smtThread(), 1);
}

} // namespace
} // namespace phantom
