/**
 * @file
 * Tests for the simulation substrate: deterministic RNG, statistics
 * helpers, the address/bit utilities in types.hpp, and the leveled
 * log's line prefix and access-log channel.
 */

#include "sim/log.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <regex>
#include <sstream>

namespace phantom {
namespace {

// ---- Rng ---------------------------------------------------------------------

TEST(RngModel, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngModel, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next()) ? 1 : 0;
    EXPECT_EQ(same, 0);
}

TEST(RngModel, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(17), 17u);
    for (int i = 0; i < 1000; ++i) {
        u64 v = rng.range(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(RngModel, BelowIsRoughlyUniform)
{
    Rng rng(11);
    int buckets[8] = {};
    for (int i = 0; i < 8000; ++i)
        ++buckets[rng.below(8)];
    for (int b = 0; b < 8; ++b) {
        EXPECT_GT(buckets[b], 800);
        EXPECT_LT(buckets[b], 1200);
    }
}

TEST(RngModel, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_GT(hits, 2200);
    EXPECT_LT(hits, 2800);
}

TEST(RngModel, ReseedResets)
{
    Rng rng(5);
    u64 first = rng.next();
    rng.next();
    rng.reseed(5);
    EXPECT_EQ(rng.next(), first);
}

// ---- Stats --------------------------------------------------------------------

TEST(Stats, MeanMedianBasics)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
    EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Stats, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({2, 8}), 4.0);
    EXPECT_NEAR(geomean({1.0, 1.21}), 1.1, 1e-9);
}

TEST(Stats, Stddev)
{
    EXPECT_DOUBLE_EQ(stddev({5, 5, 5}), 0.0);
    EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-9);
}

TEST(Stats, Quantile)
{
    std::vector<double> xs = {10, 20, 30, 40, 50};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 50.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 30.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 20.0);
}

TEST(Stats, SampleSetAccumulates)
{
    SampleSet samples;
    samples.add(1.0);
    samples.add(3.0);
    EXPECT_EQ(samples.count(), 2u);
    EXPECT_DOUBLE_EQ(samples.mean(), 2.0);
    EXPECT_DOUBLE_EQ(samples.median(), 2.0);
}

TEST(Stats, SuccessRate)
{
    EXPECT_DOUBLE_EQ(successRate({true, true, false, true}), 0.75);
    EXPECT_DOUBLE_EQ(successRate({}), 0.0);
}

// ---- types.hpp helpers ------------------------------------------------------------

TEST(Types, BitHelpers)
{
    EXPECT_EQ(bit(0b1010, 1), 1u);
    EXPECT_EQ(bit(0b1010, 2), 0u);
    EXPECT_EQ(bits(0xabcd, 15, 12), 0xau);
    EXPECT_EQ(bits(0xabcd, 11, 0), 0xbcdu);
}

TEST(Types, Alignment)
{
    EXPECT_EQ(alignDown(0x12345, 0x1000), 0x12000u);
    EXPECT_EQ(alignUp(0x12345, 0x1000), 0x13000u);
    EXPECT_EQ(alignUp(0x12000, 0x1000), 0x12000u);
}

TEST(Types, Canonical)
{
    EXPECT_TRUE(isCanonical(0x00007fffffffffffull));
    EXPECT_TRUE(isCanonical(0xffff800000000000ull));
    EXPECT_FALSE(isCanonical(0x0000800000000000ull));
    EXPECT_FALSE(isCanonical(0xfffe800000000000ull));
    EXPECT_EQ(canonicalize(0x0000800000000000ull), 0xffff800000000000ull);
    EXPECT_EQ(canonicalize(0xffff7fffffffffffull), 0x00007fffffffffffull);
}

// ---- Log ---------------------------------------------------------------------

TEST(Log, LinesCarryLevelAndMonotonicTimestampPrefix)
{
    std::ostringstream captured;
    setLogStream(&captured);
    LogLevel saved = logLevel();
    setLogLevel(LogLevel::Info);
    logWarn("first ", 1);
    logError("second");
    logInfo("third ", 3);
    setLogLevel(saved);
    setLogStream(nullptr);

    std::istringstream lines(captured.str());
    std::string warn_line, error_line, info_line;
    ASSERT_TRUE(std::getline(lines, warn_line));
    ASSERT_TRUE(std::getline(lines, error_line));
    ASSERT_TRUE(std::getline(lines, info_line));

    // `[phantom:LEVEL t=<ns>] message` — the emitting call's actual
    // level name and a numeric monotonic timestamp, so interleaved
    // worker output can be both classified and ordered.
    std::regex warn_re(R"(\[phantom:WARN t=\d+\] first 1)");
    std::regex error_re(R"(\[phantom:ERROR t=\d+\] second)");
    std::regex info_re(R"(\[phantom:INFO t=\d+\] third 3)");
    EXPECT_TRUE(std::regex_match(warn_line, warn_re)) << warn_line;
    EXPECT_TRUE(std::regex_match(error_line, error_re)) << error_line;
    EXPECT_TRUE(std::regex_match(info_line, info_re)) << info_line;

    // The prefix names are the public logLevelName() values.
    EXPECT_STREQ(logLevelName(LogLevel::Error), "ERROR");
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "WARN");
    EXPECT_STREQ(logLevelName(LogLevel::Info), "INFO");
    EXPECT_STREQ(logLevelName(LogLevel::Trace), "TRACE");

    // Timestamps never run backwards across lines.
    auto ns_of = [](const std::string& line) {
        std::size_t start = line.find("t=") + 2;
        return std::stoull(line.substr(start, line.find(']') - start));
    };
    EXPECT_LE(ns_of(warn_line), ns_of(error_line));
    EXPECT_LE(ns_of(error_line), ns_of(info_line));
}

TEST(Log, AccessLogChannelIsRawAndIndependentlySwitched)
{
    // No prefix, no level gate: the access channel carries
    // pre-formatted JSON lines and only writes when a stream is set.
    std::ostringstream captured;
    setAccessLogStream(&captured);
    EXPECT_TRUE(accessLogEnabled());
    logAccessLine("{\"id\":1}");
    setAccessLogStream(nullptr);
    EXPECT_EQ(captured.str(), "{\"id\":1}\n");
}

} // namespace
} // namespace phantom
