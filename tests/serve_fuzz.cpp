/**
 * @file
 * Mutation fuzzing for the serve protocol layer (src/serve/http.cpp,
 * src/serve/spec.cpp). Links only phantom_serve_http — no simulator —
 * so the whole suite is a few milliseconds and can afford many
 * thousands of mutants.
 *
 * Strategy mirrors snap_fuzz: start from a valid artifact (an HTTP
 * request head, a JSON spec), apply seeded byte mutations (flip,
 * truncate, insert, splice), and assert the parsers either accept or
 * reject with a sane status — never crash, hang, or report success
 * with garbage fields. Plus directed cases for every limit the daemon
 * relies on (oversized Content-Length, absurd lengths that would
 * overflow, chunked encoding, bad versions).
 */

#include "serve/http.hpp"
#include "serve/spec.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>

namespace phantom {
namespace {

using serve::HttpLimits;
using serve::HttpParseResult;
using serve::HttpRequest;

const char kValidHead[] =
    "POST /run HTTP/1.1\r\n"
    "Host: 127.0.0.1\r\n"
    "Content-Type: application/json\r\n"
    "Content-Length: 42\r\n"
    "\r\n";

const char kValidSpec[] =
    "{\"uarch\": \"zen2\", \"train\": \"jmp*\", \"victim\": \"ret\", "
    "\"seed\": 7, \"trials\": 3, \"target_page_offset\": 2752, "
    "\"suppress_bp_on_non_br\": false, \"auto_ibrs\": false}";

/** Apply one seeded mutation to @p text. */
std::string
mutate(std::string text, std::mt19937& rng)
{
    if (text.empty())
        return text;
    std::uniform_int_distribution<std::size_t> pos_dist(0,
                                                        text.size() - 1);
    std::uniform_int_distribution<int> byte_dist(0, 255);
    std::size_t pos = pos_dist(rng);
    switch (rng() % 4) {
      case 0:   // flip a byte
        text[pos] = static_cast<char>(byte_dist(rng));
        break;
      case 1:   // truncate
        text.resize(pos);
        break;
      case 2:   // insert a byte
        text.insert(text.begin() + static_cast<std::ptrdiff_t>(pos),
                    static_cast<char>(byte_dist(rng)));
        break;
      default:  // duplicate a chunk (splice)
        text.insert(pos, text.substr(pos / 2, 16));
        break;
    }
    return text;
}

/** Parse outcome must be internally consistent, whatever the input. */
void
checkHeadInvariants(const std::string& input)
{
    HttpRequest request;
    HttpParseResult result = serve::parseRequestHead(input, request);
    if (result.ok) {
        EXPECT_FALSE(request.method.empty());
        EXPECT_FALSE(request.target.empty());
        EXPECT_EQ(request.target[0], '/');
        EXPECT_LE(result.headBytes, input.size());
        EXPECT_LE(result.contentLength, HttpLimits{}.maxBodyBytes);
    } else {
        EXPECT_GE(result.status, 400);
        EXPECT_LE(result.status, 505);
        EXPECT_FALSE(result.error.empty());
    }
}

TEST(ServeFuzz, MutatedRequestHeadsNeverCrashTheParser)
{
    std::mt19937 rng(0xF00D);
    for (int round = 0; round < 20000; ++round) {
        std::string head = kValidHead;
        int mutations = 1 + static_cast<int>(rng() % 4);
        for (int m = 0; m < mutations; ++m)
            head = mutate(std::move(head), rng);
        checkHeadInvariants(head);
    }
}

TEST(ServeFuzz, RandomGarbageHeadsNeverParseAsRequests)
{
    std::mt19937 rng(0xBEEF);
    std::uniform_int_distribution<int> byte_dist(0, 255);
    for (int round = 0; round < 2000; ++round) {
        std::string junk(rng() % 512, '\0');
        for (char& c : junk)
            c = static_cast<char>(byte_dist(rng));
        junk += "\r\n\r\n";   // guarantee a head terminator
        checkHeadInvariants(junk);
    }
}

TEST(ServeFuzz, MutatedSpecsNeverCrashTheValidator)
{
    std::mt19937 rng(0xCAFE);
    for (int round = 0; round < 20000; ++round) {
        std::string body = kValidSpec;
        int mutations = 1 + static_cast<int>(rng() % 4);
        for (int m = 0; m < mutations; ++m)
            body = mutate(std::move(body), rng);

        runner::JsonValue doc;
        std::string error;
        if (!runner::parseJson(body, doc, &error))
            continue;   // a parse rejection is a fine outcome
        serve::ExperimentSpec spec;
        if (serve::parseSpec(doc, spec, &error)) {
            // Accepted mutants must satisfy every documented range.
            EXPECT_TRUE(serve::isKindName(spec.train));
            EXPECT_TRUE(serve::isKindName(spec.victim));
            EXPECT_GE(spec.trials, 1u);
            EXPECT_LE(spec.trials, 64u);
            EXPECT_LE(spec.targetPageOffset, 0xfffu);
        } else {
            EXPECT_FALSE(error.empty());
        }
    }
}

TEST(ServeFuzz, TruncatedHeadsAreRejectedNotAccepted)
{
    std::string head = kValidHead;
    for (std::size_t cut = 0; cut + 1 < head.size(); ++cut) {
        HttpRequest request;
        HttpParseResult result =
            serve::parseRequestHead(head.substr(0, cut), request);
        EXPECT_FALSE(result.ok) << "accepted a head cut at " << cut;
        EXPECT_GE(result.status, 400);
    }
}

TEST(ServeFuzz, ContentLengthEdgeCases)
{
    const struct
    {
        const char* value;
        int status;
    } cases[] = {
        {"42", 200},
        {"0", 200},
        {"1048576", 200},                     // exactly maxBodyBytes
        {"1048577", 413},                     // one past the limit
        {"999999999999", 413},                // huge but representable
        {"999999999999999999999999999", 413}, // would overflow u64
        {"18446744073709551616", 413},        // 2^64
        {"-1", 400},
        {"0x10", 400},
        {"4 2", 400},
        {"", 400},
        {"four", 400},
    };
    for (const auto& c : cases) {
        std::string head = std::string("POST /run HTTP/1.1\r\n") +
            "Content-Length: " + c.value + "\r\n\r\n";
        HttpRequest request;
        HttpParseResult result = serve::parseRequestHead(head, request);
        if (c.status == 200) {
            EXPECT_TRUE(result.ok) << c.value << ": " << result.error;
        } else {
            ASSERT_FALSE(result.ok) << c.value;
            EXPECT_EQ(result.status, c.status) << c.value;
        }
    }

    // Two Content-Length headers disagreeing is request smuggling bait.
    HttpRequest request;
    HttpParseResult result = serve::parseRequestHead(
        "POST /run HTTP/1.1\r\nContent-Length: 1\r\n"
        "Content-Length: 2\r\n\r\n",
        request);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.status, 400);
}

TEST(ServeFuzz, ProtocolRejections)
{
    const struct
    {
        const char* head;
        int status;
    } cases[] = {
        {"POST /run HTTP/2.0\r\n\r\n", 505},
        {"POST /run SPDY/1\r\n\r\n", 505},
        {"POST /run HTTP/1.1 extra\r\n\r\n", 400},
        {"POST run HTTP/1.1\r\n\r\n", 400},
        {"PO ST /run HTTP/1.1\r\n\r\n", 400},
        {" /run HTTP/1.1\r\n\r\n", 400},
        {"POST /run HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
        {"POST /run HTTP/1.1\r\nno-colon-here\r\n\r\n", 400},
        {"POST /run HTTP/1.1\r\n: empty-name\r\n\r\n", 400},
        {"POST /run HTTP/1.1\r\nBad Name: x\r\n\r\n", 400},
    };
    for (const auto& c : cases) {
        HttpRequest request;
        HttpParseResult result = serve::parseRequestHead(c.head, request);
        ASSERT_FALSE(result.ok) << c.head;
        EXPECT_EQ(result.status, c.status) << c.head;
    }
}

TEST(ServeFuzz, OversizedRequestLineIs431)
{
    std::string head = "GET /" + std::string(9000, 'a') +
        " HTTP/1.1\r\n\r\n";
    HttpRequest request;
    HttpParseResult result = serve::parseRequestHead(head, request);
    ASSERT_FALSE(result.ok);
    EXPECT_EQ(result.status, 431);
}

TEST(ServeFuzz, RoundTripSerializeParse)
{
    HttpRequest request;
    request.method = "POST";
    request.target = "/run";
    request.version = "HTTP/1.1";
    request.headers.emplace_back("content-type", "application/json");
    request.body = "{\"k\": 1}";
    std::string wire = serve::serializeRequest(request);

    HttpRequest reparsed;
    HttpParseResult result = serve::parseRequestHead(wire, reparsed);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(reparsed.method, "POST");
    EXPECT_EQ(reparsed.target, "/run");
    EXPECT_EQ(result.contentLength, request.body.size());
    EXPECT_EQ(wire.substr(result.headBytes), request.body);
}

} // namespace
} // namespace phantom
