/**
 * @file
 * Machine execution tests: architectural semantics, faults, syscalls,
 * timing ports, and predictor training side effects.
 */

#include "cpu/machine.hpp"
#include "isa/assembler.hpp"
#include "os/kernel.hpp"
#include "os/process.hpp"

#include <gtest/gtest.h>

namespace phantom {
namespace {

using namespace isa;
using cpu::ExitReason;
using cpu::Machine;
using cpu::PmcEvent;

constexpr u64 kPhys = 256ull * 1024 * 1024;

struct Sys
{
    Machine machine;
    os::Kernel kernel;
    os::Process process;

    Sys()
        : machine(cpu::zen2(), kPhys),
          kernel(machine, os::KernelConfig{42, true, true}),
          process(kernel, machine)
    {
        // Execution tests do not want stochastic cache noise.
        machine.noise().setConfig(mem::NoiseConfig{});
    }

    cpu::RunResult
    runUser(VAddr entry, u64 max_insns = 10000)
    {
        machine.setPrivilege(Privilege::User);
        machine.setPc(entry);
        return machine.run(max_insns);
    }
};

TEST(MachineExec, ArithmeticAndFlags)
{
    Sys sys;
    Assembler code(0x400000);
    code.movImm(RAX, 10);
    code.movImm(RBX, 3);
    code.sub(RAX, RBX);       // rax = 7
    code.shl(RAX, 2);         // rax = 28
    code.addImm(RAX, -4);     // rax = 24
    code.shr(RAX, 3);         // rax = 3
    code.xorReg(RCX, RCX);
    code.cmpImm(RAX, 3);
    code.hlt();
    sys.process.mapCode(0x400000, code.finish());

    auto result = sys.runUser(0x400000);
    EXPECT_EQ(result.reason, ExitReason::Halt);
    EXPECT_EQ(sys.machine.regs().read(RAX), 3u);
    EXPECT_TRUE(sys.machine.flags().zf);
}

TEST(MachineExec, LoadStoreRoundTrip)
{
    Sys sys;
    sys.process.mapData(0x800000, kPageBytes);
    Assembler code(0x400000);
    code.movImm(RDI, 0x800000);
    code.movImm(RSI, 0x1122334455667788ull);
    code.store(RDI, 0x10, RSI);
    code.load(RAX, RDI, 0x10);
    code.hlt();
    sys.process.mapCode(0x400000, code.finish());

    auto result = sys.runUser(0x400000);
    EXPECT_EQ(result.reason, ExitReason::Halt);
    EXPECT_EQ(sys.machine.regs().read(RAX), 0x1122334455667788ull);
}

TEST(MachineExec, CallRetAndStack)
{
    Sys sys;
    Assembler code(0x400000);
    Label fn = code.newLabel();
    code.movImm(RAX, 0);
    code.call(fn);
    code.addImm(RAX, 1);      // after return: rax = 6
    code.hlt();
    code.bind(fn);
    code.movImm(RAX, 5);
    code.ret();
    sys.process.mapCode(0x400000, code.finish());

    auto result = sys.runUser(0x400000);
    EXPECT_EQ(result.reason, ExitReason::Halt);
    EXPECT_EQ(sys.machine.regs().read(RAX), 6u);
}

TEST(MachineExec, ConditionalBranchDirections)
{
    Sys sys;
    Assembler code(0x400000);
    Label not_taken_path = code.newLabel();
    code.movImm(RAX, 5);
    code.cmpImm(RAX, 5);
    code.jcc(Cond::Ne, not_taken_path);   // not taken
    code.movImm(RBX, 1);
    code.hlt();
    code.bind(not_taken_path);
    code.movImm(RBX, 2);
    code.hlt();
    sys.process.mapCode(0x400000, code.finish());

    auto result = sys.runUser(0x400000);
    EXPECT_EQ(result.reason, ExitReason::Halt);
    EXPECT_EQ(sys.machine.regs().read(RBX), 1u);
}

TEST(MachineExec, LoopExecutes)
{
    Sys sys;
    Assembler code(0x400000);
    Label loop = code.newLabel();
    code.movImm(RAX, 0);
    code.movImm(RCX, 10);
    code.bind(loop);
    code.addImm(RAX, 3);
    code.subImm(RCX, 1);
    code.cmpImm(RCX, 0);
    code.jcc(Cond::Ne, loop);
    code.hlt();
    sys.process.mapCode(0x400000, code.finish());

    auto result = sys.runUser(0x400000);
    EXPECT_EQ(result.reason, ExitReason::Halt);
    EXPECT_EQ(sys.machine.regs().read(RAX), 30u);
}

TEST(MachineExec, UserFetchOfKernelFaults)
{
    Sys sys;
    Assembler code(0x400000);
    code.movImm(R8, sys.kernel.imageBase());
    code.jmpInd(R8);
    code.hlt();
    sys.process.mapCode(0x400000, code.finish());

    auto result = sys.runUser(0x400000);
    ASSERT_EQ(result.reason, ExitReason::Fault);
    EXPECT_EQ(result.fault.fault, mem::Fault::Protection);
    EXPECT_EQ(result.fault.va, sys.kernel.imageBase());
}

TEST(MachineExec, UnmappedLoadFaults)
{
    Sys sys;
    Assembler code(0x400000);
    code.movImm(RDI, 0x123450000ull);
    code.load(RAX, RDI, 0);
    code.hlt();
    sys.process.mapCode(0x400000, code.finish());

    auto result = sys.runUser(0x400000);
    ASSERT_EQ(result.reason, ExitReason::Fault);
    EXPECT_EQ(result.fault.fault, mem::Fault::NotPresent);
}

TEST(MachineExec, InvalidOpcodeFaults)
{
    Sys sys;
    sys.process.mapCode(0x400000, {0x06, 0x06, 0x06});
    auto result = sys.runUser(0x400000);
    ASSERT_EQ(result.reason, ExitReason::Fault);
    EXPECT_TRUE(result.fault.invalidOpcode);
}

TEST(MachineExec, GetpidSyscall)
{
    Sys sys;
    Assembler code(0x400000);
    code.movImm(RAX, os::kSysGetpid);
    code.syscall();
    code.hlt();
    sys.process.mapCode(0x400000, code.finish());

    auto result = sys.runUser(0x400000);
    EXPECT_EQ(result.reason, ExitReason::Halt);
    EXPECT_EQ(sys.machine.regs().read(RAX), 42u);   // the model's pid
    EXPECT_EQ(sys.machine.privilege(), Privilege::User);
    EXPECT_GE(sys.machine.pmc().read(PmcEvent::Syscalls), 1u);
}

TEST(MachineExec, ReadvSyscallMovesRsiToR12)
{
    Sys sys;
    Assembler code(0x400000);
    code.movImm(RAX, os::kSysReadv);
    code.movImm(RSI, 0xabcdef);
    code.syscall();
    code.hlt();
    sys.process.mapCode(0x400000, code.finish());

    auto result = sys.runUser(0x400000);
    EXPECT_EQ(result.reason, ExitReason::Halt);
    EXPECT_EQ(sys.machine.regs().read(R12), 0xabcdefu);
}

TEST(MachineExec, RdtscMonotone)
{
    Sys sys;
    Assembler code(0x400000);
    code.rdtsc();
    code.movReg(RBX, RAX);
    code.rdtsc();
    code.hlt();
    sys.process.mapCode(0x400000, code.finish());

    auto result = sys.runUser(0x400000);
    EXPECT_EQ(result.reason, ExitReason::Halt);
    EXPECT_GT(sys.machine.regs().read(RAX), sys.machine.regs().read(RBX));
}

TEST(MachineExec, ClflushEvictsLine)
{
    Sys sys;
    sys.process.mapData(0x800000, kPageBytes);
    // Warm the line, then flush it, then time an access.
    sys.machine.timedDataAccess(0x800000, Privilege::User);
    Cycle warm = sys.machine.timedDataAccess(0x800000, Privilege::User);
    EXPECT_EQ(warm, sys.machine.caches().config().latL1);

    Assembler code(0x400000);
    code.movImm(RDI, 0x800000);
    code.clflush(RDI);
    code.hlt();
    sys.process.mapCode(0x400000, code.finish());
    ASSERT_EQ(sys.runUser(0x400000).reason, ExitReason::Halt);

    Cycle cold = sys.machine.timedDataAccess(0x800000, Privilege::User);
    EXPECT_EQ(cold, sys.machine.caches().config().latMem);
}

TEST(MachineExec, BranchTrainsBtb)
{
    Sys sys;
    Assembler code(0x400000);
    code.movImm(R8, 0x400020);
    code.jmpInd(R8);
    code.padTo(0x400020);
    code.hlt();
    sys.process.mapCode(0x400000, code.finish());

    ASSERT_EQ(sys.runUser(0x400000).reason, ExitReason::Halt);
    auto pred = sys.machine.bpu().btb().lookup(0x40000a, Privilege::User);
    ASSERT_TRUE(pred.has_value());
    EXPECT_EQ(pred->type, BranchType::IndirectJump);
    EXPECT_EQ(pred->absTarget, 0x400020u);
}

TEST(MachineExec, TrainingBranchToKernelInstallsBtbEntryDespiteFault)
{
    Sys sys;
    VAddr target = sys.kernel.imageBase() + 0x1000;
    Assembler code(0x400000);
    code.movImm(R8, target);
    code.jmpInd(R8);
    sys.process.mapCode(0x400000, code.finish());

    auto result = sys.runUser(0x400000);
    ASSERT_EQ(result.reason, ExitReason::Fault);

    auto pred = sys.machine.bpu().btb().lookup(0x40000a, Privilege::User);
    ASSERT_TRUE(pred.has_value());
    EXPECT_EQ(pred->absTarget, target);
    EXPECT_EQ(pred->creator, Privilege::User);
}

TEST(MachineExec, WriteMsrIbpbFlushesBtb)
{
    Sys sys;
    sys.machine.bpu().btb().train(0x1234, BranchType::DirectJump, 0x5678,
                                  Privilege::User);
    EXPECT_GT(sys.machine.bpu().btb().validCount(), 0u);
    sys.machine.writeMsr(cpu::msr::kPredCmd, cpu::msr::kIbpbBit);
    EXPECT_EQ(sys.machine.bpu().btb().validCount(), 0u);
}

TEST(MachineExec, TimedPortsReflectCacheState)
{
    Sys sys;
    sys.process.mapData(0x900000, kPageBytes);
    const auto& cfg = sys.machine.caches().config();
    EXPECT_EQ(sys.machine.timedDataAccess(0x900040, Privilege::User),
              cfg.latMem);
    EXPECT_EQ(sys.machine.timedDataAccess(0x900040, Privilege::User),
              cfg.latL1);
    // Unmapped access looks like a full-latency miss.
    EXPECT_EQ(sys.machine.timedDataAccess(0x7123456000ull, Privilege::User),
              cfg.latMem);
}

TEST(MachineExec, UopCacheCountsHits)
{
    Sys sys;
    // A loop spanning two cache lines: each iteration crosses two line
    // boundaries, so iterations after the first are op-cache hits.
    Assembler code(0x400000);
    Label loop = code.newLabel();
    Label second = code.newLabel();
    code.movImm(RCX, 5);
    code.bind(loop);
    code.subImm(RCX, 1);
    code.jmp(second);
    code.padTo(0x400040);          // next line
    code.bind(second);
    code.cmpImm(RCX, 0);
    code.jcc(Cond::Ne, loop);
    code.hlt();
    sys.process.mapCode(0x400000, code.finish());

    ASSERT_EQ(sys.runUser(0x400000).reason, ExitReason::Halt);
    EXPECT_GT(sys.machine.pmc().read(PmcEvent::OpCacheHit), 0u);
}

} // namespace
} // namespace phantom
