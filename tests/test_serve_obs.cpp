/**
 * @file
 * Unit tests for the request-scoped observability layer (ISSUE 7):
 * RequestTimeline monotonicity and exact stage partitioning, the
 * TimelineRing bounds, request-id uniqueness under concurrent daemon
 * connections, the JSON-lines access log, the Prometheus /metricsz
 * exposition, and the flight recorder's bounded file set.
 */

#include "obs/prof.hpp"
#include "obs/prometheus.hpp"
#include "obs/timeline.hpp"
#include "runner/json.hpp"
#include "runner/prof_json.hpp"
#include "runner/schema.hpp"
#include "serve/daemon.hpp"
#include "serve/server.hpp"
#include "sim/log.hpp"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace phantom {
namespace {

using obs::RequestStage;
using obs::RequestTimeline;
using runner::JsonValue;
using serve::ExperimentSpec;
using serve::RequestContext;
using serve::ServeResult;
using serve::Server;
using serve::ServerOptions;

ExperimentSpec
fastSpec()
{
    ExperimentSpec spec;
    spec.uarch = "zen2";
    spec.train = "jmp*";
    spec.victim = "ret";
    spec.seed = 7;
    spec.trials = 1;
    return spec;
}

serve::HttpResponse
roundTrip(int port, const std::string& method, const std::string& target,
          const std::string& body = "")
{
    serve::HttpRequest request;
    request.method = method;
    request.target = target;
    request.version = "HTTP/1.1";
    if (!body.empty()) {
        request.headers.emplace_back("content-type", "application/json");
        request.body = body;
    }
    serve::HttpResponse response;
    std::string error;
    EXPECT_TRUE(serve::httpRoundTrip(port, request, response, &error))
        << error;
    return response;
}

// ---- RequestTimeline --------------------------------------------------

TEST(Timeline, MarksAreMonotonicAndPartitionTotal)
{
    RequestTimeline timeline(42);
    EXPECT_EQ(timeline.id(), 42u);
    EXPECT_TRUE(timeline.marked(RequestStage::Accepted));

    timeline.mark(RequestStage::HeadParsed);
    timeline.mark(RequestStage::Validated);
    timeline.mark(RequestStage::Enqueued);
    timeline.mark(RequestStage::Dequeued);
    timeline.mark(RequestStage::TrainOrFork);
    timeline.mark(RequestStage::Executed);
    timeline.mark(RequestStage::Serialized);
    timeline.mark(RequestStage::Written);

    // Stage timestamps never run backwards...
    u64 previous = timeline.ns(RequestStage::Accepted);
    for (std::size_t i = 1; i < obs::kRequestStages; ++i) {
        RequestStage stage = static_cast<RequestStage>(i);
        ASSERT_TRUE(timeline.marked(stage));
        EXPECT_GE(timeline.ns(stage), previous)
            << obs::requestStageName(stage);
        previous = timeline.ns(stage);
    }

    // ...and the per-stage micros partition the total exactly.
    std::array<u64, obs::kRequestStages> micros = timeline.stageMicros();
    u64 sum = 0;
    for (std::size_t i = 1; i < obs::kRequestStages; ++i)
        sum += micros[i];
    EXPECT_EQ(sum, timeline.totalMicros());
}

TEST(Timeline, SkippedStagesStillPartitionExactly)
{
    // An error request marks only a few stages (e.g. a 404 never
    // validates or executes); the marked subset must still telescope.
    RequestTimeline timeline(7);
    timeline.mark(RequestStage::HeadParsed);
    timeline.mark(RequestStage::Serialized);
    timeline.mark(RequestStage::Written);

    EXPECT_FALSE(timeline.marked(RequestStage::Validated));
    EXPECT_FALSE(timeline.marked(RequestStage::Executed));

    std::array<u64, obs::kRequestStages> micros = timeline.stageMicros();
    u64 sum = 0;
    for (std::size_t i = 1; i < obs::kRequestStages; ++i)
        sum += micros[i];
    EXPECT_EQ(sum, timeline.totalMicros());
}

TEST(Timeline, RingEvictsOldestAndCountsEvictions)
{
    obs::TimelineRing ring(3);
    for (u64 id = 1; id <= 5; ++id) {
        obs::TimelineRecord record;
        record.timeline = RequestTimeline(id);
        ring.push(std::move(record));
    }
    EXPECT_EQ(ring.capacity(), 3u);
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.pushed(), 5u);
    EXPECT_EQ(ring.evicted(), 2u);

    std::vector<obs::TimelineRecord> held = ring.snapshot();
    ASSERT_EQ(held.size(), 3u);
    EXPECT_EQ(held.front().timeline.id(), 3u);  // 1 and 2 evicted
    EXPECT_EQ(held.back().timeline.id(), 5u);
}

// ---- Request ids ------------------------------------------------------

TEST(ServeObs, ConcurrentConnectionsGetUniqueRequestIds)
{
    ServerOptions options;
    options.jobs = 2;
    Server server(options);
    serve::Daemon daemon(server, 0);
    int port = daemon.port();

    constexpr int kConnections = 12;
    std::vector<std::future<std::string>> futures;
    for (int i = 0; i < kConnections; ++i)
        futures.push_back(std::async(std::launch::async, [port] {
            serve::HttpResponse response =
                roundTrip(port, "GET", "/healthz");
            const std::string* id =
                response.header("x-phantom-request-id");
            return id != nullptr ? *id : std::string();
        }));

    std::set<std::string> ids;
    for (auto& future : futures) {
        std::string id = future.get();
        EXPECT_FALSE(id.empty());
        EXPECT_TRUE(ids.insert(id).second) << "duplicate id " << id;
    }
    EXPECT_EQ(ids.size(), static_cast<std::size_t>(kConnections));
    daemon.stop();
    server.stop();
}

TEST(ServeObs, ErrorBodiesEmbedTheHeaderRequestId)
{
    Server server(ServerOptions{});
    serve::Daemon daemon(server, 0);
    serve::HttpResponse response =
        roundTrip(daemon.port(), "GET", "/nope");
    EXPECT_EQ(response.status, 404);
    const std::string* id = response.header("x-phantom-request-id");
    ASSERT_NE(id, nullptr);
    JsonValue body;
    std::string error;
    ASSERT_TRUE(runner::parseJson(response.body, body, &error)) << error;
    const JsonValue* embedded = body.find("request_id");
    ASSERT_NE(embedded, nullptr);
    EXPECT_EQ(std::to_string(static_cast<unsigned long long>(
                  embedded->number())),
              *id);
    daemon.stop();
    server.stop();
}

// ---- Run-path timeline ------------------------------------------------

TEST(ServeObs, RunStampsTheFullTimeline)
{
    ServerOptions options;
    options.jobs = 1;
    Server server(options);

    RequestContext ctx = server.beginRequest("POST", "/run");
    ServeResult result = server.run(fastSpec(), ctx);
    EXPECT_EQ(result.status, 200);
    ctx.status = result.status;
    server.finishRequest(ctx);

    for (RequestStage stage :
         {RequestStage::Accepted, RequestStage::Validated,
          RequestStage::Enqueued, RequestStage::Dequeued,
          RequestStage::TrainOrFork, RequestStage::Executed,
          RequestStage::Serialized, RequestStage::Written})
        EXPECT_TRUE(ctx.timeline.marked(stage))
            << obs::requestStageName(stage);
    EXPECT_EQ(ctx.warmSource, "capture");

    std::array<u64, obs::kRequestStages> micros =
        ctx.timeline.stageMicros();
    u64 sum = 0;
    for (std::size_t i = 1; i < obs::kRequestStages; ++i)
        sum += micros[i];
    EXPECT_EQ(sum, ctx.timeline.totalMicros());

    // A 200 body carries no request id — it would break the seeded
    // bit-identity contract between identical specs.
    EXPECT_EQ(result.body.find("request_id"), nullptr);
    server.stop();
}

TEST(ServeObs, StatszSurfacesRecentTimelines)
{
    ServerOptions options;
    options.jobs = 1;
    options.timelineRingCapacity = 2;
    Server server(options);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(server.run(fastSpec()).status, 200);

    JsonValue stats = server.statsz();
    const JsonValue* timelines = stats.find("timelines");
    ASSERT_NE(timelines, nullptr);
    ASSERT_TRUE(timelines->isArray());
    EXPECT_EQ(timelines->items().size(), 2u);  // capacity bound
    const JsonValue* ring = stats.find("timeline_ring");
    ASSERT_NE(ring, nullptr);
    EXPECT_EQ(ring->find("pushed")->number(), 3.0);
    EXPECT_EQ(ring->find("evicted")->number(), 1.0);
    server.stop();
}

// ---- Access log -------------------------------------------------------

TEST(ServeObs, AccessLogLinePartitionsTotalMicros)
{
    std::ostringstream captured;
    setAccessLogStream(&captured);
    {
        ServerOptions options;
        options.jobs = 1;
        Server server(options);
        EXPECT_EQ(server.run(fastSpec()).status, 200);
        server.stop();
    }
    setAccessLogStream(nullptr);

    std::istringstream lines(captured.str());
    std::string line;
    ASSERT_TRUE(std::getline(lines, line));
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(runner::parseJson(line, doc, &error)) << error;
    EXPECT_EQ(doc.find("status")->number(), 200.0);
    EXPECT_EQ(doc.find("target")->string(), "/run");
    EXPECT_EQ(doc.find("warm")->string(), "capture");
    EXPECT_FALSE(doc.find("batch_key")->string().empty());

    const JsonValue* stages = doc.find("stages");
    ASSERT_NE(stages, nullptr);
    double sum = 0.0;
    for (const auto& [name, micros] : stages->members()) {
        (void)name;
        sum += micros.number();
    }
    EXPECT_EQ(sum, doc.find("total_micros")->number());
}

// ---- Prometheus exposition --------------------------------------------

TEST(ServeObs, PromExpositionShapesCountersGaugesHistograms)
{
    obs::MetricsRegistry registry;
    registry.counter("serve.status.200").inc(4);
    registry.gauge("queue_depth").set(1.5);
    obs::Histogram& hist = registry.histogram("stage_micros");
    hist.observe(1);
    hist.observe(3);
    hist.observe(300);

    std::string text = obs::promExposition(registry);
    EXPECT_NE(text.find("# TYPE phantom_serve_status_200 counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("phantom_serve_status_200 4\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE phantom_queue_depth gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE phantom_stage_micros histogram\n"),
              std::string::npos);
    // Cumulative buckets: le="1" holds 1 observation, le="3" holds 2,
    // and +Inf always equals the count.
    EXPECT_NE(text.find("phantom_stage_micros_bucket{le=\"1\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("phantom_stage_micros_bucket{le=\"3\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("phantom_stage_micros_bucket{le=\"+Inf\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("phantom_stage_micros_count 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("phantom_stage_micros_sum 304\n"),
              std::string::npos);
}

TEST(ServeObs, PromMetricNameSanitizesIllegalCharacters)
{
    EXPECT_EQ(obs::promMetricName("serve.stage.executed_micros"),
              "phantom_serve_stage_executed_micros");
    EXPECT_EQ(obs::promMetricName("a-b c"), "phantom_a_b_c");
    EXPECT_EQ(obs::promMetricName("serve", ""), "serve");
    EXPECT_EQ(obs::promMetricName("9lives", ""), "_9lives");
}

// ---- Flight recorder --------------------------------------------------

TEST(ServeObs, FlightRecorderKeepsAtMostMaxFiles)
{
    std::string dir = ::testing::TempDir() + "phantom_flight_test";
    std::remove((dir + "/req-000001.trace.json").c_str());
    ::mkdir(dir.c_str(), 0755);

    ServerOptions options;
    options.jobs = 1;
    options.slowRequestMs = 0;  // every request exports
    options.flightDir = dir;
    options.flightMaxFiles = 2;
    Server server(options);

    std::vector<u64> ids;
    for (int i = 0; i < 4; ++i) {
        RequestContext ctx = server.beginRequest("POST", "/run");
        ServeResult result = server.run(fastSpec(), ctx);
        EXPECT_EQ(result.status, 200);
        ctx.status = result.status;
        server.finishRequest(ctx);
        ids.push_back(ctx.timeline.id());
    }

    // The two newest traces survive; the two oldest were evicted.
    int present = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
        char name[48];
        std::snprintf(name, sizeof name, "req-%06llu.trace.json",
                      static_cast<unsigned long long>(ids[i]));
        std::ifstream trace(dir + "/" + name);
        bool exists = static_cast<bool>(trace);
        if (exists)
            ++present;
        EXPECT_EQ(exists, i >= ids.size() - 2) << name;
    }
    EXPECT_EQ(present, 2);

    JsonValue stats = server.statsz();
    const JsonValue* metrics = stats.findPath("metrics.counters");
    ASSERT_NE(metrics, nullptr);
    EXPECT_EQ(metrics->find("serve.flight.exported")->number(), 4.0);
    EXPECT_EQ(metrics->find("serve.flight.evicted")->number(), 2.0);
    server.stop();
}

// ---- Health -----------------------------------------------------------

TEST(ServeObs, HealthzCarriesUptimeAndGitDescribe)
{
    Server server(ServerOptions{});
    JsonValue health = server.healthz();
    const JsonValue* uptime = health.find("uptime_seconds");
    ASSERT_NE(uptime, nullptr);
    EXPECT_GE(uptime->number(), 0.0);
    const JsonValue* describe = health.find("git_describe");
    ASSERT_NE(describe, nullptr);
    EXPECT_FALSE(describe->string().empty());
    server.stop();
}

// ---- Host profiler endpoints ------------------------------------------

TEST(ServeObs, ProfilezAlwaysRoutableAndSchemaTagged)
{
    // The endpoint exists regardless of the PHANTOM_PROF gate; with it
    // off the embedded profile is just empty.
    obs::prof::resetForTest();
    obs::prof::setEnabled(false);
    ServerOptions options;
    options.jobs = 1;
    Server server(options);
    serve::Daemon daemon(server, 0);

    serve::HttpResponse response =
        roundTrip(daemon.port(), "GET", "/profilez");
    EXPECT_EQ(response.status, 200);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(runner::parseJson(response.body, doc, &error)) << error;
    ASSERT_NE(doc.find("schema"), nullptr);
    EXPECT_EQ(doc.find("schema")->string(), runner::kServeProfileSchema);
    const JsonValue* profile = runner::findProfile(doc);
    ASSERT_NE(profile, nullptr);
    EXPECT_FALSE(profile->find("enabled")->boolean());
    EXPECT_TRUE(profile->find("phases")->members().empty());

    // Method discipline matches the other read endpoints.
    EXPECT_EQ(roundTrip(daemon.port(), "POST", "/profilez").status, 405);
    daemon.stop();
    server.stop();
}

TEST(ServeObs, ProfiledDispatchSurfacesInProfilezAndMetricsz)
{
    obs::prof::resetForTest();
    obs::prof::setEnabled(true);
    ServerOptions options;
    options.jobs = 1;
    Server server(options);

    // With the gate off metricsz must not carry prof rows at all —
    // that is the byte-identity contract for unprofiled daemons.
    obs::prof::setEnabled(false);
    EXPECT_EQ(server.metricsText().find("phantom_prof_"),
              std::string::npos);
    obs::prof::setEnabled(true);

    EXPECT_EQ(server.run(fastSpec()).status, 200);

    JsonValue doc = server.profilez();
    const JsonValue* profile = runner::findProfile(doc);
    ASSERT_NE(profile, nullptr);
    obs::prof::Report report;
    std::string error;
    ASSERT_TRUE(runner::profileFromJson(*profile, report, &error))
        << error;
    bool saw_dispatch = false;
    for (const obs::prof::PhaseReport& phase : report.phases) {
        if (phase.phase == obs::prof::Phase::ServeDispatch) {
            saw_dispatch = true;
            EXPECT_GE(phase.count, 1u);
            EXPECT_LE(phase.selfNs, phase.totalNs);
        }
    }
    EXPECT_TRUE(saw_dispatch);

    std::string text = server.metricsText();
    EXPECT_NE(text.find("phantom_prof_serve_dispatch_count"),
              std::string::npos);
    EXPECT_NE(text.find("phantom_prof_serve_dispatch_self_ns"),
              std::string::npos);

    obs::prof::setEnabled(false);
    obs::prof::resetForTest();
    server.stop();
}

TEST(ServeObs, ServerOptionsFromEnvReadsSlowKnob)
{
    ::unsetenv("PHANTOM_SERVE_SLOW_MS");
    ServerOptions options = serve::serverOptionsFromEnv();
    EXPECT_EQ(options.slowRequestMs, ServerOptions::kSlowDisabled);

    ::setenv("PHANTOM_SERVE_SLOW_MS", "250", 1);
    ::setenv("PHANTOM_SERVE_FLIGHT_DIR", "/tmp/phantom-flight", 1);
    options = serve::serverOptionsFromEnv();
    EXPECT_EQ(options.slowRequestMs, 250u);
    EXPECT_EQ(options.flightDir, "/tmp/phantom-flight");
    ::unsetenv("PHANTOM_SERVE_SLOW_MS");
    ::unsetenv("PHANTOM_SERVE_FLIGHT_DIR");
}

} // namespace
} // namespace phantom
