/**
 * @file
 * Loader fuzzing: feed seeded mutations of a valid snapshot image — bit
 * flips, truncations, splices, and pure garbage — to snap::load() and
 * snap::inspect(). The loader must either accept (only possible when a
 * mutation cancels out) or reject with a diagnostic; it must never
 * crash, hang, or allocate unboundedly. Runs under PHANTOM_SANITIZE
 * builds so out-of-bounds reads surface as ASan reports.
 */

#include "attack/testbed.hpp"
#include "sim/rng.hpp"
#include "snap/image.hpp"
#include "snap/state.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace phantom::snap {
namespace {

constexpr u64 kPhys = 256ull * 1024 * 1024;

std::vector<u8>
validImage()
{
    attack::Testbed bed(cpu::zen2(), kPhys, /*seed=*/11);
    MachineState state = capture(bed.machine, &bed.kernel);
    return serialize(state);
}

/** Drive both entry points; the return value is irrelevant, surviving
 *  (and bounded work) is the property under test. */
void
feed(const std::vector<u8>& bytes)
{
    LoadResult r = load(bytes);
    if (r.ok) {
        // An accepted image must be internally consistent: it has to
        // re-serialize and round-trip through load() again.
        EXPECT_TRUE(load(serialize(r.state)).ok);
    }
    (void)inspect(bytes);
}

TEST(SnapFuzz, BitFlips)
{
    std::vector<u8> image = validImage();
    Rng rng(0x5eed5eedull);
    for (int i = 0; i < 256; ++i) {
        std::vector<u8> mutant = image;
        // 1-4 independent flips per round.
        u64 flips = 1 + rng.next() % 4;
        for (u64 f = 0; f < flips; ++f)
            mutant[rng.next() % mutant.size()] ^=
                static_cast<u8>(1u << (rng.next() % 8));
        feed(mutant);
    }
}

TEST(SnapFuzz, Truncations)
{
    std::vector<u8> image = validImage();
    Rng rng(0xcafef00dull);
    for (int i = 0; i < 128; ++i) {
        std::size_t cut = rng.next() % (image.size() + 1);
        feed(std::vector<u8>(image.begin(), image.begin() + cut));
    }
}

TEST(SnapFuzz, SplicedExtents)
{
    std::vector<u8> image = validImage();
    Rng rng(0xdecafbadull);
    for (int i = 0; i < 128; ++i) {
        std::vector<u8> mutant = image;
        // Overwrite a random run with bytes from elsewhere in the image
        // — simulates header/section-table fields pointing at the wrong
        // extents while keeping byte statistics realistic.
        std::size_t dst = rng.next() % mutant.size();
        std::size_t src = rng.next() % mutant.size();
        std::size_t len = rng.next() % 64;
        for (std::size_t b = 0; b < len; ++b)
            mutant[(dst + b) % mutant.size()] =
                image[(src + b) % image.size()];
        feed(mutant);
    }
}

TEST(SnapFuzz, PureGarbage)
{
    Rng rng(0xbadc0ffeull);
    for (int i = 0; i < 64; ++i) {
        std::vector<u8> garbage(rng.next() % 4096);
        for (u8& b : garbage)
            b = static_cast<u8>(rng.next());
        feed(garbage);
    }
    // Garbage that starts with a valid magic but lies about everything
    // after it.
    for (int i = 0; i < 64; ++i) {
        std::vector<u8> garbage(64 + rng.next() % 512);
        for (u8& b : garbage)
            b = static_cast<u8>(rng.next());
        for (std::size_t m = 0; m < sizeof(kImageMagic); ++m)
            garbage[m] = static_cast<u8>(kImageMagic[m]);
        feed(garbage);
    }
}

} // namespace
} // namespace phantom::snap
