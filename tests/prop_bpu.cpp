/**
 * @file
 * Property tests for the predictors, parameterized over the three hash
 * kinds: train/lookup consistency over random addresses, aliasing-class
 * soundness, and RSB stack discipline under random push/pop sequences.
 */

#include "attack/testbed.hpp"
#include "bpu/bpu.hpp"
#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <deque>

namespace phantom::bpu {
namespace {

using isa::BranchType;

class BtbProperty : public ::testing::TestWithParam<BtbHashKind>
{
  protected:
    BtbConfig
    config() const
    {
        BtbConfig cfg;
        cfg.sets = 512;
        cfg.ways = 8;
        cfg.hash = GetParam();
        return cfg;
    }
};

TEST_P(BtbProperty, FreshTrainingsAreAlwaysServed)
{
    Btb btb(config());
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        VAddr va = canonicalize(rng.next() & 0x00007fffffffffffull);
        VAddr target = rng.next() & 0x00007fffffffffffull;
        btb.train(va, BranchType::IndirectJump, target, Privilege::User);
        auto pred = btb.lookup(va, Privilege::User);
        ASSERT_TRUE(pred.has_value()) << std::hex << va;
        EXPECT_EQ(pred->absTarget, target);
    }
}

TEST_P(BtbProperty, LookupNeverInventsEntries)
{
    Btb btb(config());
    Rng rng(5);
    // Empty BTB: no address may produce a prediction.
    for (int i = 0; i < 2000; ++i) {
        VAddr va = canonicalize(rng.next());
        EXPECT_FALSE(btb.lookup(va, Privilege::User).has_value());
    }
}

TEST_P(BtbProperty, AliasClassIsSymmetricAndStable)
{
    // userAlias must be an involution companion: alias(alias(x)) == x,
    // since it XORs a fixed mask.
    BtbHashKind kind = GetParam();
    Rng rng(7);
    for (int i = 0; i < 500; ++i) {
        VAddr va = rng.next() & 0x00007ffffffffff0ull;
        VAddr alias = attack::userAlias(kind, va);
        EXPECT_EQ(attack::userAlias(kind, alias), va);
        EXPECT_EQ(btbKey(kind, alias, Privilege::User),
                  btbKey(kind, va, Privilege::User));
    }
}

TEST_P(BtbProperty, RandomNonAliasesRarelyCollide)
{
    // Sanity: the hash is not degenerate — random address pairs collide
    // with probability well below 1%.
    BtbHashKind kind = GetParam();
    Rng rng(9);
    int collisions = 0;
    for (int i = 0; i < 5000; ++i) {
        VAddr a = rng.next() & 0x00007fffffffffffull;
        VAddr b = rng.next() & 0x00007fffffffffffull;
        if (a != b && btbKey(kind, a, Privilege::User) ==
                          btbKey(kind, b, Privilege::User))
            ++collisions;
    }
    EXPECT_LT(collisions, 50);
}

INSTANTIATE_TEST_SUITE_P(AllHashes, BtbProperty,
                         ::testing::Values(BtbHashKind::Zen12,
                                           BtbHashKind::Zen34,
                                           BtbHashKind::IntelSalted));

TEST(RsbProperty, MatchesReferenceStackUnderRandomOps)
{
    Rng rng(11);
    Rsb rsb(16);
    std::deque<VAddr> reference;
    for (int i = 0; i < 5000; ++i) {
        if (rng.chance(0.55)) {
            VAddr va = rng.next();
            rsb.push(va);
            reference.push_back(va);
            if (reference.size() > 16)
                reference.pop_front();   // capacity overwrites oldest
        } else {
            auto got = rsb.pop();
            if (reference.empty()) {
                EXPECT_FALSE(got.has_value());
            } else {
                ASSERT_TRUE(got.has_value());
                EXPECT_EQ(*got, reference.back());
                reference.pop_back();
            }
        }
    }
}

TEST(RsbProperty, SaveRestoreIsIdempotent)
{
    Rng rng(13);
    Rsb rsb(8);
    for (int round = 0; round < 200; ++round) {
        // Random fill.
        u64 pushes = rng.below(12);
        for (u64 i = 0; i < pushes; ++i)
            rsb.push(rng.next());
        std::size_t top = rsb.top(), depth = rsb.depth();
        auto first = rsb.pop();

        // Speculate: random pops, then restore.
        u64 pops = rng.below(8);
        for (u64 i = 0; i < pops; ++i)
            rsb.pop();
        rsb.restore(top, depth);
        EXPECT_EQ(rsb.depth(), depth);
        auto again = rsb.pop();
        EXPECT_EQ(again.has_value(), first.has_value());
        if (first) {
            EXPECT_EQ(*again, *first);
        }
    }
}

TEST(PhtProperty, CountersStayInBounds)
{
    Pht pht(64);
    Rng rng(15);
    for (int i = 0; i < 10000; ++i) {
        VAddr va = rng.next() & 0xffff;
        pht.update(va, 0, rng.chance(0.5));
        // predictTaken must never crash or produce UB; the call itself
        // is the assertion (counters are saturating by construction).
        pht.predictTaken(va, 0);
    }
}

TEST(PhtProperty, ConvergesToBias)
{
    // A branch taken 90% of the time must be predicted taken.
    Pht pht;
    Rng rng(17);
    VAddr va = 0x1234;
    for (int i = 0; i < 1000; ++i)
        pht.update(va, 0, rng.chance(0.9));
    int predicted_taken = 0;
    for (int i = 0; i < 100; ++i) {
        predicted_taken += pht.predictTaken(va, 0) ? 1 : 0;
        pht.update(va, 0, rng.chance(0.9));
    }
    EXPECT_GT(predicted_taken, 80);
}

} // namespace
} // namespace phantom::bpu
