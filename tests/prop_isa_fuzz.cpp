/**
 * @file
 * Decoder robustness properties: decoding arbitrary byte soup never
 * reads out of bounds, never reports impossible lengths, and always
 * round-trips through the encoder for valid instructions.
 */

#include "fuzz/generator.hpp"
#include "isa/assembler.hpp"
#include "isa/encoder.hpp"
#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace phantom::isa {
namespace {

class DecoderFuzz : public ::testing::TestWithParam<u64>
{
};

TEST_P(DecoderFuzz, RandomBytesNeverMisbehave)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 2000; ++trial) {
        u8 buffer[32];
        std::size_t avail = 1 + rng.below(sizeof buffer);
        for (std::size_t i = 0; i < avail; ++i)
            buffer[i] = static_cast<u8>(rng.next());

        Insn insn = decode(buffer, avail);
        ASSERT_GE(insn.length, 1);
        ASSERT_LE(insn.length, kMaxInsnBytes);
        if (insn.kind != InsnKind::Invalid) {
            // The decoder may not claim more bytes than were available.
            ASSERT_LE(static_cast<std::size_t>(insn.length), avail);
        }
    }
}

TEST_P(DecoderFuzz, ByteWiseScanTerminates)
{
    Rng rng(GetParam() * 31 + 5);
    std::vector<u8> blob(4096);
    for (auto& byte : blob)
        byte = static_cast<u8>(rng.next());

    // Scanning any byte soup instruction-by-instruction always makes
    // progress and terminates.
    std::size_t offset = 0;
    std::size_t steps = 0;
    while (offset < blob.size()) {
        Insn insn = decode(blob.data() + offset, blob.size() - offset);
        ASSERT_GE(insn.length, 1);
        offset += insn.length;
        ASSERT_LT(++steps, blob.size() + 1);
    }
}

TEST_P(DecoderFuzz, ValidEncodingsRoundTripAtEveryRegister)
{
    // Instructions come from the shared seeded source
    // (fuzz::ProgramGenerator::randomInsn) — every encodable kind with
    // randomized operands — instead of a local sample table.
    Rng rng(GetParam() * 17 + 3);
    for (int trial = 0; trial < 3000; ++trial) {
        Insn insn = fuzz::ProgramGenerator::randomInsn(rng);
        std::vector<u8> bytes;
        encode(insn, bytes);
        Insn back = decode(bytes.data(), bytes.size());
        ASSERT_EQ(back.kind, insn.kind);
        ASSERT_EQ(back.length, insn.length);
        ASSERT_EQ(back.dst, insn.dst);
        ASSERT_EQ(back.src, insn.src);
        ASSERT_EQ(back.cond, insn.cond);
        ASSERT_EQ(back.disp, insn.disp);
        ASSERT_EQ(back.imm, insn.imm);
    }
}

TEST_P(DecoderFuzz, ValidDecodesArePrefixClosed)
{
    // The decode cache memoizes a decode keyed only by the physical
    // address of byte 0, so a valid decode must depend on exactly its
    // own bytes: shrinking avail to the instruction length or mutating
    // every trailing byte must reproduce the identical Insn.
    Rng rng(GetParam() * 101 + 7);
    for (int trial = 0; trial < 2000; ++trial) {
        u8 buffer[32];
        std::size_t avail = 1 + rng.below(sizeof buffer);
        for (std::size_t i = 0; i < avail; ++i)
            buffer[i] = static_cast<u8>(rng.next());

        Insn insn = decode(buffer, avail);
        if (insn.kind == InsnKind::Invalid)
            continue;

        u8 mutated[32];
        std::memcpy(mutated, buffer, sizeof buffer);
        for (std::size_t i = insn.length; i < avail; ++i)
            mutated[i] = static_cast<u8>(~mutated[i]);

        const Insn exact = decode(buffer, insn.length);
        const Insn noisy = decode(mutated, avail);
        for (const Insn& again : {exact, noisy}) {
            ASSERT_EQ(again.kind, insn.kind);
            ASSERT_EQ(again.length, insn.length);
            ASSERT_EQ(again.dst, insn.dst);
            ASSERT_EQ(again.src, insn.src);
            ASSERT_EQ(again.cond, insn.cond);
            ASSERT_EQ(again.disp, insn.disp);
            ASSERT_EQ(again.imm, insn.imm);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(AssemblerProperty, ConcatenatedProgramsDecodeBackExactly)
{
    // Assemble a program of every instruction kind, then decode the blob
    // sequentially: the instruction stream must match what was emitted.
    Assembler code(0x400000);
    code.nop();
    code.nopN(7);
    code.movImm(RAX, 1);
    code.load(RBX, RAX, 16);
    code.store(RAX, -16, RBX);
    code.addImm(RCX, 5);
    code.cmpReg(RAX, RBX);
    Label l = code.newLabel();
    code.jcc(Cond::Ne, l);
    code.lfence();
    code.bind(l);
    code.rdtsc();
    code.hlt();
    std::vector<u8> blob = code.finish();

    const InsnKind expected[] = {
        InsnKind::Nop,    InsnKind::NopN,   InsnKind::MovImm,
        InsnKind::Load,   InsnKind::Store,  InsnKind::AddImm,
        InsnKind::CmpReg, InsnKind::JccRel, InsnKind::Lfence,
        InsnKind::Rdtsc,  InsnKind::Hlt,
    };
    std::size_t offset = 0;
    for (InsnKind kind : expected) {
        Insn insn = decode(blob.data() + offset, blob.size() - offset);
        ASSERT_EQ(insn.kind, kind);
        offset += insn.length;
    }
    EXPECT_EQ(offset, blob.size());
}

} // namespace
} // namespace phantom::isa
