/**
 * @file
 * Unit tests for the experiment service (src/serve): spec parsing and
 * its kind-name table, admission control, snapshot-fork batching,
 * deadlines, and response determinism under concurrency.
 */

#include "attack/experiment.hpp"
#include "runner/schema.hpp"
#include "serve/server.hpp"
#include "serve/spec.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

namespace phantom {
namespace {

using runner::JsonValue;
using serve::ExperimentSpec;
using serve::ServeResult;
using serve::Server;
using serve::ServerOptions;

ExperimentSpec
fastSpec()
{
    ExperimentSpec spec;
    spec.uarch = "zen2";
    spec.train = "jmp*";
    spec.victim = "ret";
    spec.seed = 7;
    spec.trials = 1;
    return spec;
}

bool
awaitQueueDepth(Server& server, std::size_t depth)
{
    for (int i = 0; i < 5000; ++i) {
        if (server.queueDepth() == depth)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
}

u64
snapCounter(Server& server, const char* name)
{
    JsonValue stats = server.statsz();
    const JsonValue* snap = stats.find("snap");
    EXPECT_NE(snap, nullptr);
    const JsonValue* value = snap == nullptr ? nullptr : snap->find(name);
    EXPECT_NE(value, nullptr) << name;
    return value == nullptr ? 0 : static_cast<u64>(value->number());
}

// The spec layer keeps its own copy of the canonical kind names so it
// can link without the simulator; this is the tripwire that keeps the
// copy honest.
TEST(ServeSpec, KindNamesMatchAttackTable)
{
    const auto& names = serve::specKindNames();
    const auto& kinds = attack::table1Kinds();
    ASSERT_EQ(names.size(), kinds.size());
    for (std::size_t i = 0; i < kinds.size(); ++i)
        EXPECT_STREQ(names[i], attack::branchKindName(kinds[i]));
}

TEST(ServeSpec, ParsesFullSpecAndRejectsJunk)
{
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(runner::parseJson(
        "{\"experiment\": \"stage\", \"uarch\": \"zen4\", "
        "\"train\": \"jcc\", \"victim\": \"non branch\", \"seed\": 11, "
        "\"trials\": 9, \"target_page_offset\": 128, "
        "\"suppress_bp_on_non_br\": true, \"auto_ibrs\": true, "
        "\"deadline_ms\": 250}",
        doc, &error));
    ExperimentSpec spec;
    ASSERT_TRUE(serve::parseSpec(doc, spec, &error)) << error;
    EXPECT_EQ(spec.uarch, "zen4");
    EXPECT_EQ(spec.train, "jcc");
    EXPECT_EQ(spec.victim, "non branch");
    EXPECT_EQ(spec.seed, 11u);
    EXPECT_EQ(spec.trials, 9u);
    EXPECT_EQ(spec.targetPageOffset, 128u);
    EXPECT_TRUE(spec.suppressBpOnNonBr);
    EXPECT_TRUE(spec.autoIbrs);
    EXPECT_EQ(spec.deadlineMs, 250u);

    const struct
    {
        const char* json;
        const char* why;
    } rejected[] = {
        {"[1, 2]", "not an object"},
        {"{\"uarch\": \"zen2\", \"train\": \"jmp*\"}", "missing victim"},
        {"{\"uarch\": \"zen2\", \"train\": \"call\", "
         "\"victim\": \"ret\"}",
         "unknown kind"},
        {"{\"uarch\": \"zen2\", \"train\": \"jmp*\", "
         "\"victim\": \"ret\", \"bogus\": 1}",
         "unknown key"},
        {"{\"uarch\": \"zen2\", \"train\": \"jmp*\", "
         "\"victim\": \"ret\", \"trials\": 0}",
         "zero trials"},
        {"{\"uarch\": \"zen2\", \"train\": \"jmp*\", "
         "\"victim\": \"ret\", \"trials\": 65}",
         "too many trials"},
        {"{\"uarch\": \"zen2\", \"train\": \"jmp*\", "
         "\"victim\": \"ret\", \"seed\": -3}",
         "negative seed"},
        {"{\"uarch\": \"zen2\", \"train\": \"jmp*\", "
         "\"victim\": \"ret\", \"seed\": 1.5}",
         "fractional seed"},
        {"{\"uarch\": \"zen2\", \"train\": \"jmp*\", "
         "\"victim\": \"ret\", \"target_page_offset\": 4096}",
         "offset past the page"},
        {"{\"uarch\": \"zen2\", \"train\": \"jmp*\", "
         "\"victim\": \"ret\", \"experiment\": \"fig6\"}",
         "unserved experiment"},
    };
    for (const auto& bad : rejected) {
        ASSERT_TRUE(runner::parseJson(bad.json, doc, &error)) << bad.why;
        EXPECT_FALSE(serve::parseSpec(doc, spec, &error)) << bad.why;
        EXPECT_FALSE(error.empty()) << bad.why;
    }
}

TEST(ServeSpec, BatchKeyIgnoresTrialsAndDeadline)
{
    ExperimentSpec a = fastSpec();
    ExperimentSpec b = fastSpec();
    b.trials = 5;
    b.deadlineMs = 1000;
    EXPECT_EQ(a.batchKey(), b.batchKey());
    b.seed = 8;
    EXPECT_NE(a.batchKey(), b.batchKey());
    ExperimentSpec c = fastSpec();
    c.autoIbrs = true;
    EXPECT_NE(a.batchKey(), c.batchKey());
}

TEST(Server, RejectsUnknownUarchBeforeQueueing)
{
    ServerOptions options;
    options.jobs = 1;
    Server server(options);
    ExperimentSpec spec = fastSpec();
    spec.uarch = "vax";
    ServeResult result = server.run(spec);
    EXPECT_EQ(result.status, 400);
    const JsonValue* schema = result.body.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->string(), runner::kServeErrorSchema);
}

// Queue-full answers 429 with a Retry-After hint, and the rejection
// never disturbs the requests already admitted.
TEST(Server, AdmissionControlRejectsButNeverDrops)
{
    ServerOptions options;
    options.jobs = 1;
    options.queueCapacity = 3;
    Server server(options);
    server.setDispatchPaused(true);

    std::vector<std::future<ServeResult>> admitted;
    for (int i = 0; i < 3; ++i)
        admitted.push_back(std::async(std::launch::async, [&server] {
            return server.run(fastSpec());
        }));
    ASSERT_TRUE(awaitQueueDepth(server, 3));

    ServeResult bounced = server.run(fastSpec());
    EXPECT_EQ(bounced.status, 429);
    EXPECT_GT(bounced.retryAfterS, 0);
    const JsonValue* schema = bounced.body.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->string(), runner::kServeErrorSchema);

    server.setDispatchPaused(false);
    for (auto& future : admitted)
        EXPECT_EQ(future.get().status, 200);

    JsonValue stats = server.statsz();
    EXPECT_EQ(stats.findPath("metrics.counters")
                  ->find("serve.rejected_queue_full")
                  ->number(),
              1.0);
    EXPECT_EQ(stats.findPath("metrics.counters")
                  ->find("serve.accepted")
                  ->number(),
              3.0);
}

// The snapshot-pooling contract: N identical specs in one batch run on
// one worker shard, so the first trains (1 capture) and the remaining
// N-1 CoW-fork the warm parent instead of retraining.
TEST(Server, BatchedIdenticalSpecsForkInsteadOfRetraining)
{
    ServerOptions options;
    options.jobs = 1;
    options.queueCapacity = 16;
    Server server(options);
    server.setDispatchPaused(true);

    constexpr int kRequests = 4;
    std::vector<std::future<ServeResult>> futures;
    for (int i = 0; i < kRequests; ++i)
        futures.push_back(std::async(std::launch::async, [&server] {
            return server.run(fastSpec());
        }));
    ASSERT_TRUE(awaitQueueDepth(server, kRequests));
    server.setDispatchPaused(false);

    std::vector<ServeResult> results;
    for (auto& future : futures)
        results.push_back(future.get());
    for (const ServeResult& result : results) {
        ASSERT_EQ(result.status, 200);
        // Identical specs, bit-identical seeded subtrees.
        EXPECT_EQ(*result.body.find("experiments"),
                  *results.front().body.find("experiments"));
        EXPECT_EQ(*result.body.findPath("metrics.deterministic"),
                  *results.front().body.findPath("metrics.deterministic"));
    }

    server.waitIdle();
    EXPECT_EQ(snapCounter(server, "captures"), 1u);
    EXPECT_EQ(snapCounter(server, "forks"),
              static_cast<u64>(kRequests - 1));
    EXPECT_EQ(snapCounter(server, "hits"),
              static_cast<u64>(kRequests - 1));
}

// A request whose deadline lapses while queued is cancelled cleanly:
// well-formed error JSON, 504, and the rest of the batch still runs.
TEST(Server, ExpiredDeadlineCancelsCleanly)
{
    ServerOptions options;
    options.jobs = 1;
    options.queueCapacity = 4;
    Server server(options);
    server.setDispatchPaused(true);

    ExperimentSpec doomed = fastSpec();
    doomed.deadlineMs = 1;
    auto doomed_future = std::async(std::launch::async, [&server, doomed] {
        return server.run(doomed);
    });
    auto healthy_future = std::async(std::launch::async, [&server] {
        return server.run(fastSpec());
    });
    ASSERT_TRUE(awaitQueueDepth(server, 2));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server.setDispatchPaused(false);

    ServeResult expired = doomed_future.get();
    EXPECT_EQ(expired.status, 504);
    const JsonValue* schema = expired.body.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->string(), runner::kServeErrorSchema);
    EXPECT_NE(expired.body.find("error"), nullptr);

    EXPECT_EQ(healthy_future.get().status, 200);

    JsonValue stats = server.statsz();
    EXPECT_EQ(stats.findPath("metrics.counters")
                  ->find("serve.deadline_expired")
                  ->number(),
              1.0);
}

// Concurrency must not leak into the seeded subtrees: the same spec
// through a jobs=2 server and a jobs=1 server answers identically.
TEST(Server, ResponsesAreBitIdenticalAcrossConcurrency)
{
    ExperimentSpec spec = fastSpec();
    spec.trials = 3;

    JsonValue serial_experiments;
    JsonValue serial_deterministic;
    {
        ServerOptions options;
        options.jobs = 1;
        Server server(options);
        ServeResult result = server.run(spec);
        ASSERT_EQ(result.status, 200);
        serial_experiments = *result.body.find("experiments");
        serial_deterministic =
            *result.body.findPath("metrics.deterministic");
    }

    ServerOptions options;
    options.jobs = 2;
    options.queueCapacity = 16;
    Server server(options);
    std::vector<std::future<ServeResult>> futures;
    for (int i = 0; i < 4; ++i)
        futures.push_back(std::async(std::launch::async, [&server, spec] {
            return server.run(spec);
        }));
    for (auto& future : futures) {
        ServeResult result = future.get();
        ASSERT_EQ(result.status, 200);
        EXPECT_EQ(*result.body.find("experiments"), serial_experiments);
        EXPECT_EQ(*result.body.findPath("metrics.deterministic"),
                  serial_deterministic);
    }
}

TEST(Server, StopFailsQueuedRequestsWith503)
{
    ServerOptions options;
    options.jobs = 1;
    options.queueCapacity = 4;
    Server server(options);
    server.setDispatchPaused(true);
    auto parked = std::async(std::launch::async, [&server] {
        return server.run(fastSpec());
    });
    ASSERT_TRUE(awaitQueueDepth(server, 1));
    server.stop();
    EXPECT_EQ(parked.get().status, 503);
    EXPECT_EQ(server.run(fastSpec()).status, 503);
}

} // namespace
} // namespace phantom
