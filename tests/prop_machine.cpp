/**
 * @file
 * Property tests for the machine:
 *
 *  - Architectural equivalence: randomly generated programs produce the
 *    same final register file on the speculating machine and on an
 *    independent reference interpreter (speculation must never change
 *    architectural results).
 *  - Transient invisibility: running a victim with and without an
 *    injected prediction yields identical architectural state.
 *  - Determinism: identical seeds give identical cycle counts.
 */

#include "attack/testbed.hpp"
#include "fuzz/generator.hpp"
#include "isa/assembler.hpp"
#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace phantom {
namespace {

using namespace isa;
using attack::Testbed;

constexpr VAddr kCodeVa = 0x0000000000400000ull;
constexpr VAddr kDataVa = 0x0000000000800000ull;
constexpr u64 kDataBytes = 4 * kPageBytes;

/**
 * An independent, dead-simple reference interpreter: no caches, no
 * predictors, no speculation. Any divergence from the Machine is a
 * correctness bug in one of them.
 */
struct Reference
{
    std::array<u64, kNumRegs> regs{};
    bool zf = false, cf = false;
    std::vector<u8> data;    // backs [kDataVa, kDataVa + kDataBytes)
    const std::vector<u8>& code;

    explicit Reference(const std::vector<u8>& code_bytes)
        : data(kDataBytes, 0), code(code_bytes)
    {
    }

    u64
    read64(VAddr va)
    {
        u64 v = 0;
        for (int i = 7; i >= 0; --i)
            v = (v << 8) | data.at(va - kDataVa + i);
        return v;
    }

    void
    write64(VAddr va, u64 v)
    {
        for (int i = 0; i < 8; ++i)
            data.at(va - kDataVa + i) = static_cast<u8>(v >> (8 * i));
    }

    void
    run()
    {
        VAddr pc = kCodeVa;
        for (int steps = 0; steps < 100000; ++steps) {
            std::size_t off = pc - kCodeVa;
            Insn insn = decode(code.data() + off, code.size() - off);
            VAddr next = pc + insn.length;
            switch (insn.kind) {
              case InsnKind::Hlt:
                return;
              case InsnKind::Nop:
              case InsnKind::NopN:
                break;
              case InsnKind::MovImm: regs[insn.dst] = insn.imm; break;
              case InsnKind::MovReg: regs[insn.dst] = regs[insn.src]; break;
              case InsnKind::Add: regs[insn.dst] += regs[insn.src]; break;
              case InsnKind::AddImm:
                regs[insn.dst] += static_cast<i64>(
                    static_cast<i32>(insn.imm));
                break;
              case InsnKind::Sub:
                zf = regs[insn.dst] == regs[insn.src];
                cf = regs[insn.dst] < regs[insn.src];
                regs[insn.dst] -= regs[insn.src];
                break;
              case InsnKind::SubImm: {
                u64 b = static_cast<u64>(
                    static_cast<i64>(static_cast<i32>(insn.imm)));
                zf = regs[insn.dst] == b;
                cf = regs[insn.dst] < b;
                regs[insn.dst] -= b;
                break;
              }
              case InsnKind::Xor: regs[insn.dst] ^= regs[insn.src]; break;
              case InsnKind::And: regs[insn.dst] &= regs[insn.src]; break;
              case InsnKind::AndImm: regs[insn.dst] &= insn.imm; break;
              case InsnKind::Shl: regs[insn.dst] <<= (insn.imm & 63); break;
              case InsnKind::Shr: regs[insn.dst] >>= (insn.imm & 63); break;
              case InsnKind::CmpImm: {
                u64 b = static_cast<u64>(
                    static_cast<i64>(static_cast<i32>(insn.imm)));
                zf = regs[insn.dst] == b;
                cf = regs[insn.dst] < b;
                break;
              }
              case InsnKind::CmpReg:
                zf = regs[insn.dst] == regs[insn.src];
                cf = regs[insn.dst] < regs[insn.src];
                break;
              case InsnKind::Load:
                regs[insn.dst] = read64(regs[insn.src] +
                                        static_cast<i64>(insn.disp));
                break;
              case InsnKind::Store:
                write64(regs[insn.dst] + static_cast<i64>(insn.disp),
                        regs[insn.src]);
                break;
              case InsnKind::JmpRel:
                next = insn.relTarget(pc);
                break;
              case InsnKind::JccRel: {
                bool taken = false;
                switch (insn.cond) {
                  case Cond::Eq: taken = zf; break;
                  case Cond::Ne: taken = !zf; break;
                  case Cond::Lt: taken = cf; break;
                  case Cond::Ge: taken = !cf; break;
                }
                if (taken)
                    next = insn.relTarget(pc);
                break;
              }
              default:
                FAIL() << "reference: unexpected " << toString(insn);
                return;
            }
            pc = next;
        }
        FAIL() << "reference: ran away";
    }
};

/** The shared seeded program source (fuzz::ProgramGenerator),
 *  restricted to the classes the Reference interpreter executes. */
std::vector<u8>
randomProgram(u64 seed)
{
    fuzz::GenOptions options;
    options.codeVa = kCodeVa;
    options.dataVa = kDataVa;
    options.dataBytes = kDataBytes;
    options.classes = fuzz::kReferenceSafeClasses;
    return fuzz::ProgramGenerator(options).generate(seed).assemble();
}

class ArchEquivalence : public ::testing::TestWithParam<u64>
{
};

TEST_P(ArchEquivalence, MachineMatchesReference)
{
    u64 seed = GetParam();
    std::vector<u8> program = randomProgram(seed);

    // Reference run.
    Reference ref(program);
    ref.run();

    // Machine run, on the microarchitecture with the deepest speculation
    // (Zen 2: phantom windows + SLS + Spectre windows all active).
    auto cfg = cpu::zen2();
    Testbed bed(cfg, 1ull << 30, seed);
    bed.process.mapCode(kCodeVa, program);
    bed.process.mapData(kDataVa, kDataBytes);
    auto result = bed.runUser(kCodeVa, 200000);
    ASSERT_EQ(result.reason, cpu::ExitReason::Halt) << "seed " << seed;

    for (u8 r = 0; r < kNumRegs; ++r) {
        if (r == RSP)
            continue;
        EXPECT_EQ(bed.machine.regs().read(r), ref.regs[r])
            << "seed " << seed << " reg " << regName(r);
    }
    for (u64 off = 0; off < kDataBytes; off += 8) {
        ASSERT_EQ(bed.machine.debugRead64(kDataVa + off).value(),
                  ref.read64(kDataVa + off))
            << "seed " << seed << " data+0x" << std::hex << off;
    }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, ArchEquivalence,
                         ::testing::Range<u64>(1, 25));

class TransientInvisibility : public ::testing::TestWithParam<u64>
{
};

TEST_P(TransientInvisibility, InjectionNeverChangesArchitecturalState)
{
    u64 seed = GetParam();
    std::vector<u8> program = randomProgram(seed);

    auto run_with = [&](bool inject) {
        auto cfg = cpu::zen2();
        cfg.noise = mem::NoiseConfig{};
        Testbed bed(cfg, 1ull << 30, 1);
        bed.process.mapCode(kCodeVa, program);
        bed.process.mapData(kDataVa, kDataBytes);
        if (inject) {
            // Plant hostile predictions at several program addresses:
            // each fires as PHANTOM speculation during the run.
            for (u64 off : {u64{0}, u64{32}, u64{64}, u64{160}}) {
                bed.machine.bpu().btb().train(
                    kCodeVa + off, isa::BranchType::IndirectJump,
                    kCodeVa + 0x500, Privilege::User);
            }
        }
        auto result = bed.runUser(kCodeVa, 200000);
        EXPECT_EQ(result.reason, cpu::ExitReason::Halt);
        std::vector<u64> state;
        for (u8 r = 0; r < kNumRegs; ++r)
            state.push_back(bed.machine.regs().read(r));
        for (u64 off = 0; off < kDataBytes; off += 8)
            state.push_back(bed.machine.debugRead64(kDataVa + off).value());
        return state;
    };

    EXPECT_EQ(run_with(false), run_with(true)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, TransientInvisibility,
                         ::testing::Range<u64>(100, 112));

TEST(MachineDeterminism, SameSeedSameCycles)
{
    auto run = [&] {
        Testbed bed(cpu::zen2(), 1ull << 30, 9);
        std::vector<u8> program = randomProgram(7);
        bed.process.mapCode(kCodeVa, program);
        bed.process.mapData(kDataVa, kDataBytes);
        auto result = bed.runUser(kCodeVa, 200000);
        return std::pair{result.cycles, result.instructions};
    };
    EXPECT_EQ(run(), run());
}

TEST(SpeculationInvariant, FailedSpeculativeFetchNeverFillsCaches)
{
    // Train a prediction towards unmapped memory; the I-cache must stay
    // untouched (this is the P1/P2 distinction).
    auto cfg = cpu::zen2();
    cfg.noise = mem::NoiseConfig{};
    Testbed bed(cfg, 1ull << 30, 2);
    Assembler code(kCodeVa);
    code.nopN(5);
    code.hlt();
    bed.process.mapCode(kCodeVa, code.finish());

    VAddr unmapped = 0x0000000066600000ull;
    bed.machine.bpu().btb().train(kCodeVa, isa::BranchType::IndirectJump,
                                  unmapped, Privilege::User);
    u64 spec_before = bed.machine.pmc().read(cpu::PmcEvent::SpecFetch);
    bed.runUser(kCodeVa);
    EXPECT_EQ(bed.machine.pmc().read(cpu::PmcEvent::SpecFetch),
              spec_before);
}

TEST(SpeculationInvariant, TransientStoresNeverReachMemory)
{
    // A Spectre window executes a store transiently; memory must be
    // unchanged after the resteer.
    auto cfg = cpu::zen2();
    cfg.noise = mem::NoiseConfig{};
    Testbed bed(cfg, 1ull << 30, 3);
    bed.process.mapData(kDataVa, kPageBytes);

    Assembler code(kCodeVa);
    Label wrong = code.newLabel();
    Label out = code.newLabel();
    code.movImm(RDI, kDataVa);
    code.movImm(RAX, 1);
    // Train taken...
    code.cmpImm(RAX, 1);
    code.jcc(Cond::Eq, wrong);
    code.bind(out);
    code.hlt();
    code.bind(wrong);
    code.store(RDI, 0x10, RAX);    // architectural when taken
    code.jmp(out);
    bed.process.mapCode(kCodeVa, code.finish());

    // First run: taken path stores 1. Reset memory, flip the condition
    // so the second run mispredicts into the store transiently.
    bed.runUser(kCodeVa);
    EXPECT_EQ(bed.machine.debugRead64(kDataVa + 0x10).value(), 1u);
    bed.machine.debugWrite64(kDataVa + 0x10, 0);

    Assembler patch(kCodeVa + 10);     // overwrite 'mov rax, 1'
    patch.movImm(RAX, 2);
    bed.machine.debugWriteBytes(kCodeVa + 10, patch.finish());
    bed.machine.uopCache().flushAll();

    bed.runUser(kCodeVa);
    EXPECT_EQ(bed.machine.debugRead64(kDataVa + 0x10).value(), 0u);
}

TEST(SpeculationInvariant, TransientLoadsDoFillCaches)
{
    // The flip side: a transient load in a Spectre window leaves a
    // D-cache trace (the entire paper rests on this).
    auto cfg = cpu::zen2();
    cfg.noise = mem::NoiseConfig{};
    Testbed bed(cfg, 1ull << 30, 4);
    bed.process.mapData(kDataVa, kPageBytes);

    Assembler code(kCodeVa);
    Label wrong = code.newLabel();
    Label out = code.newLabel();
    code.movImm(RDI, kDataVa);
    code.movImm(RAX, 1);
    code.cmpImm(RAX, 1);
    code.jcc(Cond::Eq, wrong);
    code.bind(out);
    code.hlt();
    code.bind(wrong);
    code.load(RBX, RDI, 0x80);
    code.jmp(out);
    bed.process.mapCode(kCodeVa, code.finish());

    bed.runUser(kCodeVa);                  // trains taken
    Assembler patch(kCodeVa + 10);
    patch.movImm(RAX, 2);                  // now not taken
    bed.machine.debugWriteBytes(kCodeVa + 10, patch.finish());
    bed.machine.uopCache().flushAll();
    bed.machine.clflushVirt(kDataVa + 0x80);

    bed.runUser(kCodeVa);
    Cycle lat = bed.machine.timedDataAccess(kDataVa + 0x80,
                                            Privilege::User);
    EXPECT_LT(lat, bed.machine.caches().config().latMem);
}

} // namespace
} // namespace phantom
