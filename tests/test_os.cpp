/**
 * @file
 * Tests for the OS model: KASLR layout, kernel image contents (the
 * paper's Listing 1-3 gadgets at their documented offsets), physmap
 * mapping, module loading, syscall dispatch, and the process helpers.
 */

#include "attack/testbed.hpp"
#include "isa/assembler.hpp"

#include <gtest/gtest.h>

#include <set>

namespace phantom::os {
namespace {

using attack::Testbed;
using cpu::ExitReason;

cpu::MicroarchConfig
quietZen3()
{
    auto cfg = cpu::zen3();
    cfg.noise = mem::NoiseConfig{};
    return cfg;
}

TEST(Kaslr, ImageBaseWithinRegionAndAligned)
{
    for (u64 seed = 1; seed <= 20; ++seed) {
        Testbed bed(quietZen3(), 1ull << 30, seed);
        VAddr base = bed.kernel.imageBase();
        EXPECT_GE(base, kImageRegionBase);
        EXPECT_LT(base, kImageRegionBase + kImageSlots * kImageSlotStride);
        EXPECT_EQ(base % kImageSlotStride, 0u);
    }
}

TEST(Kaslr, SeedsProduceDifferentLayouts)
{
    std::set<VAddr> images, physmaps;
    for (u64 seed = 1; seed <= 12; ++seed) {
        Testbed bed(quietZen3(), 1ull << 30, seed);
        images.insert(bed.kernel.imageBase());
        physmaps.insert(bed.kernel.physmapBase());
    }
    EXPECT_GT(images.size(), 8u);
    EXPECT_GT(physmaps.size(), 8u);
}

TEST(Kaslr, DisabledRandomizationIsDeterministic)
{
    cpu::Machine machine(quietZen3(), 1ull << 30);
    Kernel kernel(machine, KernelConfig{5, false, false});
    EXPECT_EQ(kernel.imageBase(), kImageRegionBase);
    EXPECT_EQ(kernel.physmapBase(), kPhysmapRegionBase);
}

TEST(KernelImage, Listing1GadgetAtDocumentedOffset)
{
    Testbed bed(quietZen3(), 1ull << 30, 3);
    // Listing 1: nop DWORD PTR; push rbp; mov rbp, rsp
    VAddr va = bed.kernel.getpidGadgetVa();
    EXPECT_EQ(va, bed.kernel.imageBase() + kGetpidGadgetOffset);

    auto read_insn = [&](VAddr at) {
        std::vector<u8> bytes;
        for (int i = 0; i < 16; ++i)
            bytes.push_back(static_cast<u8>(
                bed.machine.debugRead64(at + i).value_or(0)));
        return isa::decode(bytes.data(), bytes.size());
    };

    isa::Insn nop = read_insn(va);
    EXPECT_EQ(nop.kind, isa::InsnKind::NopN);
    EXPECT_EQ(nop.length, 5);
    isa::Insn push = read_insn(va + 5);
    EXPECT_EQ(push.kind, isa::InsnKind::Push);
    EXPECT_EQ(push.src, isa::RBP);
}

TEST(KernelImage, Listing3DisclosureGadget)
{
    Testbed bed(quietZen3(), 1ull << 30, 3);
    VAddr va = bed.kernel.disclosureGadgetVa();
    EXPECT_EQ(va, bed.kernel.imageBase() + kDisclosureGadgetOffset);

    std::vector<u8> bytes;
    for (int i = 0; i < 8; ++i)
        bytes.push_back(
            static_cast<u8>(bed.machine.debugRead64(va + i).value_or(0)));
    isa::Insn load = isa::decode(bytes.data(), bytes.size());
    EXPECT_EQ(load.kind, isa::InsnKind::Load);      // mov r12, [r12+0xbe0]
    EXPECT_EQ(load.dst, isa::R12);
    EXPECT_EQ(load.src, isa::R12);
    EXPECT_EQ(load.disp, kDisclosureDisp);
}

TEST(KernelImage, Listing2VictimCallInsideFdgetPos)
{
    Testbed bed(quietZen3(), 1ull << 30, 3);
    VAddr call_va = bed.kernel.fdgetPosCallVa();
    EXPECT_GT(call_va, bed.kernel.imageBase() + kFdgetPosOffset);
    EXPECT_LT(call_va, bed.kernel.imageBase() + kFdgetPosOffset + 0x40);

    std::vector<u8> bytes;
    for (int i = 0; i < 8; ++i)
        bytes.push_back(static_cast<u8>(
            bed.machine.debugRead64(call_va + i).value_or(0)));
    isa::Insn call = isa::decode(bytes.data(), bytes.size());
    EXPECT_EQ(call.kind, isa::InsnKind::CallRel);
}

TEST(KernelImage, TextIsExecutableDataIsNot)
{
    Testbed bed(quietZen3(), 1ull << 30, 3);
    auto& pt = bed.kernel.pageTable();
    VAddr text = bed.kernel.imageBase() + 0x1000;
    VAddr data = bed.kernel.syscallTableVa();
    EXPECT_TRUE(pt.translate(text, Privilege::Kernel,
                             mem::Access::Fetch).ok());
    EXPECT_EQ(pt.translate(data, Privilege::Kernel, mem::Access::Fetch)
                  .fault,
              mem::Fault::NoExec);
    EXPECT_TRUE(pt.translate(data, Privilege::Kernel,
                             mem::Access::Write).ok());
    // User mode reaches neither.
    EXPECT_EQ(pt.translate(text, Privilege::User, mem::Access::Fetch).fault,
              mem::Fault::Protection);
}

TEST(Physmap, AliasesAllInstalledMemory)
{
    Testbed bed(quietZen3(), 1ull << 30, 4);
    auto& pt = bed.kernel.pageTable();
    for (PAddr pa : {PAddr{0}, PAddr{0x12345678ull & ~0xfffull},
                     PAddr{(1ull << 30) - kPageBytes}}) {
        auto t = pt.translate(bed.kernel.physmapVaOf(pa), Privilege::Kernel,
                              mem::Access::Read);
        ASSERT_TRUE(t.ok()) << pa;
        EXPECT_EQ(t.paddr, pa);
    }
    // Non-executable (the paper's P2 motivation) and kernel-only.
    EXPECT_EQ(pt.translate(bed.kernel.physmapVaOf(0), Privilege::Kernel,
                           mem::Access::Fetch)
                  .fault,
              mem::Fault::NoExec);
    EXPECT_EQ(pt.translate(bed.kernel.physmapVaOf(0), Privilege::User,
                           mem::Access::Read)
                  .fault,
              mem::Fault::Protection);
}

TEST(Physmap, WritesVisibleThroughAlias)
{
    Testbed bed(quietZen3(), 1ull << 30, 4);
    PAddr pa = bed.process.mapData(0x800000, kPageBytes);
    bed.machine.debugWrite64(0x800000, 0xfeedface);
    EXPECT_EQ(bed.machine.debugRead64(bed.kernel.physmapVaOf(pa)).value(),
              0xfeedfaceu);
}

TEST(Modules, LoadAndDispatch)
{
    Testbed bed(quietZen3(), 1ull << 30, 5);
    // Module: rax = 1234; ret
    isa::Assembler code(0);
    code.movImm(isa::RAX, 1234);
    code.ret();
    VAddr base = bed.kernel.loadModule(code.finish(), kSysModuleBase);
    EXPECT_GE(base, kModuleRegionBase);

    auto result = bed.syscall(kSysModuleBase);
    EXPECT_EQ(result.reason, ExitReason::Halt);
    EXPECT_EQ(bed.machine.regs().read(isa::RAX), 1234u);
}

TEST(Modules, DistinctAddressesAndGuardGap)
{
    Testbed bed(quietZen3(), 1ull << 30, 6);
    isa::Assembler code(0);
    code.ret();
    VAddr a = bed.kernel.loadModule(code.finish(), 0);
    isa::Assembler code2(0);
    code2.ret();
    VAddr b = bed.kernel.loadModule(code2.finish(), 0);
    EXPECT_GE(b, a + 2 * kPageBytes);   // guard page between modules
}

TEST(Modules, UnregisteredSyscallIsNop)
{
    Testbed bed(quietZen3(), 1ull << 30, 7);
    bed.machine.regs().write(isa::RAX, 0);
    auto result = bed.syscall(kSysModuleBase + 5);
    EXPECT_EQ(result.reason, ExitReason::Halt);   // dispatcher returns
}

TEST(Syscalls, ReadvPathExecutesFdgetPos)
{
    Testbed bed(quietZen3(), 1ull << 30, 8);
    auto result = bed.syscall(kSysReadv, 1, 0x42);
    EXPECT_EQ(result.reason, ExitReason::Halt);
    EXPECT_EQ(bed.machine.regs().read(isa::R12), 0x42u);
    EXPECT_EQ(bed.machine.regs().read(isa::RSI), 0x4000u);  // Listing 2
    EXPECT_EQ(bed.machine.privilege(), Privilege::User);
}

TEST(Process, CodeMappingRoundTrip)
{
    Testbed bed(quietZen3(), 1ull << 30, 9);
    isa::Assembler code(0x12340abc);    // deliberately unaligned start
    code.movImm(isa::RBX, 7);
    code.hlt();
    bed.process.mapCode(0x12340abc, code.finish());
    auto result = bed.runUser(0x12340abc);
    EXPECT_EQ(result.reason, ExitReason::Halt);
    EXPECT_EQ(bed.machine.regs().read(isa::RBX), 7u);
}

TEST(Process, HugePageIsPhysicallyContiguous)
{
    Testbed bed(quietZen3(), 1ull << 30, 10);
    PAddr pa = bed.process.mapHugeData(0x40000000);
    EXPECT_EQ(pa % kHugePageBytes, 0u);
    auto& pt = bed.kernel.pageTable();
    for (u64 off : {u64{0}, u64{0x1000}, kHugePageBytes - 64}) {
        auto t = pt.translate(0x40000000 + off, Privilege::User,
                              mem::Access::Read);
        ASSERT_TRUE(t.ok());
        EXPECT_EQ(t.paddr, pa + off);
    }
}

TEST(Process, RandomPlacementStaysInBounds)
{
    Testbed bed(quietZen3(), 4ull << 30, 11);
    for (int i = 0; i < 16; ++i) {
        PAddr pa = bed.kernel.allocFramesRandom(kHugePageBytes,
                                                kHugePageBytes);
        EXPECT_EQ(pa % kHugePageBytes, 0u);
        EXPECT_LT(pa + kHugePageBytes,
                  bed.machine.physMem().installedBytes() + 1);
    }
}

TEST(Kernel, OutOfPhysicalMemoryThrows)
{
    Testbed bed(quietZen3(), 64ull << 20, 12);   // 64 MiB only
    EXPECT_THROW(
        {
            for (int i = 0; i < 100; ++i)
                bed.kernel.allocFrames(kHugePageBytes);
        },
        std::runtime_error);
}

} // namespace
} // namespace phantom::os
