/**
 * @file
 * Golden regression test: the complete Table-1 matrix per
 * microarchitecture, as measured by the observation channels, must match
 * the paper-derived expectation exactly. Any model change that shifts a
 * cell shows up here.
 */

#include "attack/experiment.hpp"

#include <gtest/gtest.h>

#include <string>

namespace phantom::attack {
namespace {

constexpr BranchKind kKinds[] = {
    BranchKind::IndirectJmp, BranchKind::DirectJmp, BranchKind::CondJmp,
    BranchKind::Ret, BranchKind::NonBranch,
};

char
cellChar(const StageObservation& obs)
{
    if (!obs.applicable)
        return '-';
    if (obs.signals.execute)
        return 'E';
    if (obs.signals.decode)
        return 'D';
    if (obs.signals.fetch)
        return 'F';
    return '.';
}

/** Measure the full 5x5 matrix as a 25-char string (row-major, training
 *  kind outer). */
std::string
measureMatrix(const cpu::MicroarchConfig& base)
{
    auto cfg = base;
    cfg.noise = mem::NoiseConfig{};   // golden values are noise-free
    StageExperimentOptions options;
    options.trials = 3;
    StageExperiment experiment(cfg, options);

    std::string matrix;
    for (BranchKind train : kKinds)
        for (BranchKind victim : kKinds)
            matrix.push_back(cellChar(experiment.run(train, victim)));
    return matrix;
}

struct Golden
{
    cpu::MicroarchConfig (*config)();
    const char* expected;   // 25 cells, victim-major within training rows
};

// Rows: jmp*, jmp, jcc, ret, nb training; columns: jmp*, jmp, jcc, ret,
// nb victims. E=execute, D=decode, F=fetch, -=not applicable.
const Golden kGolden[] = {
    // Zen 1/2: every applicable cell executes (phantom window, Spectre,
    // Retbleed, SLS).
    {cpu::zen1, "EEEEE" "EEEEE" "EEEEE" "EEE-E" "EEEE-"},
    {cpu::zen2, "EEEEE" "EEEEE" "EEEEE" "EEE-E" "EEEE-"},
    // Zen 3/4: decode everywhere, execute only for symmetric jmp*
    // (Spectre-V2).
    {cpu::zen3, "EDDDD" "DDDDD" "DDDDD" "DDD-D" "DDDD-"},
    {cpu::zen4, "EDDDD" "DDDDD" "DDDDD" "DDD-D" "DDDD-"},
    // Intel: like Zen 3/4 but asymmetric jmp* victims are opaque.
    {cpu::intel9, "EDDDD" ".DDDD" ".DDDD" ".DD-D" "DDDD-"},
    {cpu::intel12, "EDDDD" ".DDDD" ".DDDD" ".DD-D" "DDDD-"},
};

class Table1Golden : public ::testing::TestWithParam<Golden>
{
};

TEST_P(Table1Golden, MatrixMatchesExpectation)
{
    const Golden& golden = GetParam();
    auto cfg = golden.config();
    EXPECT_EQ(measureMatrix(cfg), golden.expected) << cfg.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllParts, Table1Golden, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<Golden>& info) {
        return info.param.config().name;
    });

} // namespace
} // namespace phantom::attack
