/**
 * @file
 * SeedStream: per-trial seed derivation must be collision-free across
 * trial indices, independent across named substreams, and pinned to
 * golden values so the derivation can never drift silently (a drift
 * would invalidate every recorded campaign).
 */

#include "runner/seed_stream.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace phantom::runner {
namespace {

TEST(SeedStream, DistinctSeedsPerTrialIndex)
{
    SeedStream stream(7);
    std::unordered_set<u64> seen;
    for (u64 i = 0; i < 100'000; ++i)
        EXPECT_TRUE(seen.insert(stream.trialSeed(i)).second)
            << "collision at trial " << i;
}

TEST(SeedStream, DistinctAcrossCampaignSeeds)
{
    // Different campaign seeds must give different trial seeds (for the
    // overwhelming majority of indices; check a window exactly).
    SeedStream a(1);
    SeedStream b(2);
    for (u64 i = 0; i < 1000; ++i)
        EXPECT_NE(a.trialSeed(i), b.trialSeed(i));
}

TEST(SeedStream, SubstreamsAreIndependent)
{
    SeedStream root(42);
    SeedStream x = root.substream("accuracy");
    SeedStream y = root.substream("bandwidth");
    EXPECT_NE(x.base(), y.base());
    for (u64 i = 0; i < 1000; ++i)
        EXPECT_NE(x.trialSeed(i), y.trialSeed(i));

    // Same name -> same stream: substreams are a pure function.
    EXPECT_EQ(root.substream("accuracy").base(), x.base());
}

TEST(SeedStream, StableAcrossCalls)
{
    SeedStream stream(123);
    for (u64 i = 0; i < 100; ++i)
        EXPECT_EQ(stream.trialSeed(i), stream.trialSeed(i));
}

/**
 * Golden values. These pin the exact derivation — splitmix64 over
 * base + (i+1)*gamma — as pure u64 arithmetic, so they must hold on
 * every platform, compiler, and build type. If this test ever needs
 * updating, every previously exported campaign seed is invalidated:
 * bump the JSON schema version as well.
 */
TEST(SeedStream, GoldenDerivation)
{
    EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafull);
    EXPECT_EQ(splitmix64(1), 0x910a2dec89025cc1ull);

    SeedStream stream(0);
    EXPECT_EQ(stream.trialSeed(0), 0x6e789e6aa1b965f4ull);
    EXPECT_EQ(stream.trialSeed(1), 0x06c45d188009454full);
    EXPECT_EQ(stream.trialSeed(2), 0xf88bb8a8724c81ecull);

    SeedStream seven(7);
    EXPECT_EQ(seven.trialSeed(0), 0x044c3cd7f43c661cull);
    EXPECT_EQ(seven.trialSeed(1), 0xe6984080bab12a02ull);

    EXPECT_EQ(fnv1a("table1"), 0xe265c9dbf29f8fcaull);
}

} // namespace
} // namespace phantom::runner
