/**
 * @file
 * The differential-fuzz subsystem's own tests (FUZZING.md):
 *
 *  - generator determinism, class stratification and mask restriction;
 *  - statement-target assembly and dropStmt renumbering;
 *  - .phz corpus format round-trip and strict-parser rejection;
 *  - all four oracles clean on ordinary generated programs;
 *  - the injected-bug pipeline: a deliberately skipped decode-cache
 *    invalidation (cpu::DecodeCache test hook) must be caught by the
 *    decode-cache oracle, delta-minimized to a tiny repro, written to a
 *    corpus file, and reproduced from that file by the replayer;
 *  - campaign summaries bit-identical across worker counts.
 */

#include "fuzz/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

namespace phantom::fuzz {
namespace {

TEST(FuzzGenerator, DeterministicAndSeedSensitive)
{
    ProgramGenerator gen;
    Program a = gen.generate(42);
    Program b = gen.generate(42);
    ASSERT_EQ(a.stmts.size(), b.stmts.size());
    for (std::size_t i = 0; i < a.stmts.size(); ++i)
        EXPECT_TRUE(a.stmts[i] == b.stmts[i]) << "stmt " << i;
    EXPECT_EQ(a.classCounts, b.classCounts);
    EXPECT_EQ(a.assemble(), b.assemble());

    Program c = gen.generate(43);
    EXPECT_NE(a.assemble(), c.assemble());
}

TEST(FuzzGenerator, StratifiesEveryClass)
{
    // Equal pick probability per enabled class: across a few dozen
    // seeds every class must appear, including the rare shapes.
    ProgramGenerator gen;
    std::array<u64, kGenClassCount> totals{};
    for (u64 seed = 1; seed <= 40; ++seed) {
        Program p = gen.generate(seed);
        for (int c = 0; c < kGenClassCount; ++c)
            totals[static_cast<std::size_t>(c)] +=
                p.classCounts[static_cast<std::size_t>(c)];
    }
    for (int c = 0; c < kGenClassCount; ++c)
        EXPECT_GT(totals[static_cast<std::size_t>(c)], 0u)
            << genClassName(static_cast<GenClass>(c));
}

TEST(FuzzGenerator, ReferenceSafeMaskRestrictsKinds)
{
    using isa::InsnKind;
    const std::set<InsnKind> allowed = {
        InsnKind::MovImm, InsnKind::MovReg, InsnKind::Add,
        InsnKind::AddImm, InsnKind::Sub,    InsnKind::SubImm,
        InsnKind::Xor,    InsnKind::And,    InsnKind::Shl,
        InsnKind::Shr,    InsnKind::CmpReg, InsnKind::CmpImm,
        InsnKind::Load,   InsnKind::Store,  InsnKind::JccRel,
        InsnKind::Nop,    InsnKind::NopN,   InsnKind::Hlt,
    };
    GenOptions options;
    options.classes = kReferenceSafeClasses;
    ProgramGenerator gen(options);
    for (u64 seed = 1; seed <= 20; ++seed) {
        Program p = gen.generate(seed);
        for (const Stmt& stmt : p.stmts)
            ASSERT_TRUE(allowed.count(stmt.insn.kind))
                << "seed " << seed << ": "
                << isa::toString(stmt.insn);
    }
}

TEST(FuzzGenerator, AssembleResolvesStatementTargets)
{
    ProgramGenerator gen;
    for (u64 seed = 1; seed <= 20; ++seed) {
        Program p = gen.generate(seed);
        std::vector<u8> bytes = p.assemble();
        ASSERT_EQ(bytes.size(), p.byteSize());

        std::vector<VAddr> vas = p.stmtVas();
        VAddr end = p.options.codeVa + p.byteSize();
        for (std::size_t i = 0; i < p.stmts.size(); ++i) {
            i32 target = p.stmts[i].target;
            if (target < 0)
                continue;
            VAddr expect = static_cast<std::size_t>(target) < vas.size()
                               ? vas[static_cast<std::size_t>(target)]
                               : end;
            // Decode the emitted instruction and re-derive where it
            // points: branch displacements and materialized addresses
            // must land exactly on the target statement.
            std::size_t off = vas[i] - p.options.codeVa;
            isa::Insn insn =
                isa::decode(bytes.data() + off, bytes.size() - off);
            switch (insn.kind) {
              case isa::InsnKind::JmpRel:
              case isa::InsnKind::JccRel:
              case isa::InsnKind::CallRel:
                EXPECT_EQ(insn.relTarget(vas[i]), expect)
                    << "seed " << seed << " stmt " << i;
                break;
              case isa::InsnKind::MovImm:
                EXPECT_EQ(insn.imm, expect)
                    << "seed " << seed << " stmt " << i;
                break;
              default:
                FAIL() << "unexpected targeted kind at stmt " << i;
            }
        }
    }
}

TEST(FuzzMinimize, DropStmtRenumbersTargets)
{
    Program p;
    p.stmts = {
        Stmt{isa::makeNop(), -1},
        Stmt{isa::makeJccRel(isa::Cond::Ne, 0), 3},   // past the drop
        Stmt{isa::makeNop(), -1},                      // dropped
        Stmt{isa::makeJmpRel(0), 2},                   // at the drop
        Stmt{isa::makeMovImm(isa::RBP, 0), 99},        // clamps to last
        Stmt{isa::makeHlt(), -1},
    };
    Program d = dropStmt(p, 2);
    ASSERT_EQ(d.stmts.size(), 5u);
    EXPECT_EQ(d.stmts[1].target, 2);  // 3 shifted down
    EXPECT_EQ(d.stmts[2].target, 2);  // pointed at dropped: successor
    EXPECT_EQ(d.stmts[3].target, 4);  // out of range clamps to last
}

TEST(FuzzCorpus, FormatParseRoundTrip)
{
    ProgramGenerator gen;
    for (u64 seed = 1; seed <= 10; ++seed) {
        CorpusEntry entry;
        entry.program = gen.generate(seed);
        entry.uarch = "zen4";
        entry.oracle = Oracle::DecodeCacheIdentity;
        entry.note = "round-trip test";

        std::string text = formatEntry(entry);
        CorpusEntry back;
        std::string error;
        ASSERT_TRUE(parseEntry(text, back, &error)) << error;
        EXPECT_EQ(formatEntry(back), text);
        ASSERT_EQ(back.program.stmts.size(), entry.program.stmts.size());
        EXPECT_EQ(back.program.assemble(), entry.program.assemble());
        EXPECT_EQ(back.uarch, entry.uarch);
        EXPECT_EQ(back.oracle, entry.oracle);
        EXPECT_EQ(back.note, entry.note);
    }
}

TEST(FuzzCorpus, StrictParserRejectsMalformed)
{
    CorpusEntry out;
    std::string error;
    // Bad magic.
    EXPECT_FALSE(parseEntry("nonsense\nend\n", out, &error));
    // No statements.
    EXPECT_FALSE(parseEntry(std::string(kCorpusMagic) +
                                "\nseed 0x1\nuarch zen2\noracle none\n"
                                "gen code_va=0x400000 data_va=0x800000 "
                                "data_bytes=0x4000\nend\n",
                            out, &error));
    // Unknown statement kind.
    EXPECT_FALSE(parseEntry(std::string(kCorpusMagic) +
                                "\nseed 0x1\nuarch zen2\noracle none\n"
                                "gen code_va=0x400000 data_va=0x800000 "
                                "data_bytes=0x4000\nstmt frobnicate\n"
                                "end\n",
                            out, &error));
    // Missing end marker.
    EXPECT_FALSE(parseEntry(std::string(kCorpusMagic) +
                                "\nseed 0x1\nuarch zen2\noracle none\n"
                                "gen code_va=0x400000 data_va=0x800000 "
                                "data_bytes=0x4000\nstmt hlt\n",
                            out, &error));
}

TEST(FuzzOracles, CleanOnGeneratedPrograms)
{
    ProgramGenerator gen;
    OracleOptions options;
    for (u64 seed = 1; seed <= 4; ++seed) {
        CheckReport report = checkProgram(gen.generate(seed), options);
        for (int o = 0; o < kOracleCount; ++o)
            EXPECT_FALSE(report.outcomes[static_cast<std::size_t>(o)]
                             .diverged)
                << "seed " << seed << " oracle "
                << oracleName(static_cast<Oracle>(o)) << ": "
                << report.outcomes[static_cast<std::size_t>(o)].detail;
    }
}

/** Temp directory that cleans up after the test. */
struct TempDir
{
    std::filesystem::path path;
    TempDir()
    {
        path = std::filesystem::temp_directory_path() /
               ("phantom_fuzz_test_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                "_" + std::to_string(reinterpret_cast<uintptr_t>(this)));
        std::filesystem::create_directories(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(FuzzInjectedBug, PinpointMinimizeCorpusReplay)
{
    // The end-to-end satellite: arm the test-only decode-cache defect
    // (stores no longer invalidate cached decodes), let the oracle
    // catch it, minimize, write the repro, replay it from disk.
    ProgramGenerator gen;
    OracleOptions buggy;
    buggy.decodeCacheBug = true;

    u64 divergent_seed = 0;
    Program program;
    for (u64 seed = 1; seed <= 40 && divergent_seed == 0; ++seed) {
        Program candidate = gen.generate(seed);
        if (runOracle(candidate, Oracle::DecodeCacheIdentity, buggy)
                .diverged) {
            divergent_seed = seed;
            program = candidate;
        }
    }
    ASSERT_NE(divergent_seed, 0u)
        << "no seed exposes the injected decode-cache bug";

    // Without the defect the same program must be clean — the
    // divergence is the injected bug, not the program.
    EXPECT_FALSE(
        runOracle(program, Oracle::DecodeCacheIdentity, OracleOptions{})
            .diverged);

    MinimizeResult minimized =
        minimize(program, Oracle::DecodeCacheIdentity, buggy);
    EXPECT_LE(minimized.stmtsAfter, 8u)
        << "repro did not minimize below 8 instructions";
    EXPECT_LT(minimized.stmtsAfter, minimized.stmtsBefore);
    EXPECT_TRUE(
        runOracle(minimized.program, Oracle::DecodeCacheIdentity, buggy)
            .diverged);

    // Corpus round trip: write, list, replay. Replaying with the bug
    // armed reproduces the divergence; replaying on the fixed machine
    // is clean (what the checked-in corpus asserts forever after).
    TempDir dir;
    CorpusEntry entry;
    entry.program = minimized.program;
    entry.uarch = buggy.uarch;
    entry.oracle = Oracle::DecodeCacheIdentity;
    entry.note = "injected decode-cache bug repro";
    std::string path = (dir.path / "repro.phz").string();
    std::string error;
    ASSERT_TRUE(writeEntryFile(path, entry, &error)) << error;

    std::vector<std::string> listed = listCorpus(dir.path.string());
    ASSERT_EQ(listed.size(), 1u);

    std::vector<ReplayResult> broken =
        replayCorpus(listed, buggy, /*jobs=*/1);
    ASSERT_EQ(broken.size(), 1u);
    EXPECT_TRUE(broken[0].parsed);
    EXPECT_FALSE(broken[0].clean) << "repro lost the divergence";

    std::vector<ReplayResult> fixed =
        replayCorpus(listed, OracleOptions{}, /*jobs=*/1);
    ASSERT_EQ(fixed.size(), 1u);
    EXPECT_TRUE(fixed[0].clean) << fixed[0].detail;
}

TEST(FuzzCampaign, SummaryInvariantAcrossJobs)
{
    CampaignOptions options;
    options.budget = 8;
    options.seed = 11;
    options.uarchMatrix = {"zen2", "zen4"};

    options.jobs = 1;
    CampaignSummary s1 = runCampaign(options);
    options.jobs = 2;
    CampaignSummary s2 = runCampaign(options);

    EXPECT_EQ(s1.programs, options.budget);
    runner::JsonValue j1 = summaryToJson(s1);
    runner::JsonValue j2 = summaryToJson(s2);
    // "jobs" is the one member documented to differ.
    j1.set("jobs", 0);
    j2.set("jobs", 0);
    EXPECT_EQ(j1.dump(), j2.dump());
}

TEST(FuzzCampaign, DivergencesAreMinimizedAndRecorded)
{
    TempDir dir;
    CampaignOptions options;
    options.budget = 6;
    options.seed = 3;
    options.uarchMatrix = {"zen2"};
    options.oracle.decodeCacheBug = true;
    options.corpusDir = dir.path.string();

    CampaignSummary summary = runCampaign(options);
    ASSERT_FALSE(summary.clean())
        << "campaign missed the injected bug";
    for (const Divergence& div : summary.divergences) {
        EXPECT_EQ(div.oracle, Oracle::DecodeCacheIdentity);
        EXPECT_LE(div.stmtsAfter, 8u);
        EXPECT_FALSE(div.corpusFile.empty());
        CorpusEntry entry;
        std::string error;
        ASSERT_TRUE(readEntryFile(
            (dir.path / div.corpusFile).string(), entry, &error))
            << error;
        EXPECT_EQ(entry.program.stmts.size(), div.stmtsAfter);
    }
    // The summary counts agree with the divergence list.
    u64 diverged = 0;
    for (int o = 0; o < kOracleCount; ++o)
        diverged += summary.oracleDiverged[static_cast<std::size_t>(o)];
    EXPECT_EQ(diverged, summary.divergences.size());
}

} // namespace
} // namespace phantom::fuzz
