/**
 * @file
 * Core PHANTOM behaviour tests: the observations O1-O5 of the paper as
 * machine-level invariants, on the microarchitectures where they hold.
 */

#include "attack/experiment.hpp"
#include "attack/testbed.hpp"

#include <gtest/gtest.h>

namespace phantom::attack {
namespace {

using cpu::MicroarchConfig;

MicroarchConfig
quiet(MicroarchConfig cfg)
{
    cfg.noise = mem::NoiseConfig{};   // determinism for unit tests
    return cfg;
}

StageObservation
observe(const MicroarchConfig& cfg, BranchKind train, BranchKind victim,
        StageExperimentOptions opts = {})
{
    opts.trials = 3;
    StageExperiment experiment(quiet(cfg), opts);
    return experiment.run(train, victim);
}

// O1/O2: phantom fetch and decode on a *non-branch* victim, everywhere
// on AMD.
TEST(PhantomCore, NonBranchVictimFetchAndDecodeOnAmd)
{
    for (const auto& cfg : cpu::amdMicroarchs()) {
        auto obs = observe(cfg, BranchKind::IndirectJmp,
                           BranchKind::NonBranch);
        EXPECT_TRUE(obs.signals.fetch) << cfg.name;
        EXPECT_TRUE(obs.signals.decode) << cfg.name;
    }
}

// O3: transient execution of the phantom target on Zen 1/2 only.
TEST(PhantomCore, NonBranchVictimExecutesOnZen12Only)
{
    EXPECT_TRUE(observe(cpu::zen1(), BranchKind::IndirectJmp,
                        BranchKind::NonBranch).signals.execute);
    EXPECT_TRUE(observe(cpu::zen2(), BranchKind::IndirectJmp,
                        BranchKind::NonBranch).signals.execute);
    EXPECT_FALSE(observe(cpu::zen3(), BranchKind::IndirectJmp,
                         BranchKind::NonBranch).signals.execute);
    EXPECT_FALSE(observe(cpu::zen4(), BranchKind::IndirectJmp,
                         BranchKind::NonBranch).signals.execute);
}

// Symmetric jmp*/jmp* is Spectre-V2: execute everywhere (Table 1 'a').
TEST(PhantomCore, SymmetricIndirectIsSpectreV2)
{
    for (const auto& cfg : {cpu::zen2(), cpu::zen4(), cpu::intel12()}) {
        auto obs = observe(cfg, BranchKind::IndirectJmp,
                           BranchKind::IndirectJmp);
        EXPECT_TRUE(obs.signals.execute) << cfg.name;
    }
}

// Retbleed (Table 1 'b'): jmp*-trained ret victims execute on Zen 1/2,
// but only fetch/decode on Zen 3/4.
TEST(PhantomCore, RetVictimTypeConfusion)
{
    EXPECT_TRUE(observe(cpu::zen2(), BranchKind::IndirectJmp,
                        BranchKind::Ret).signals.execute);
    auto zen4 = observe(cpu::zen4(), BranchKind::IndirectJmp,
                        BranchKind::Ret);
    EXPECT_FALSE(zen4.signals.execute);
    EXPECT_TRUE(zen4.signals.fetch);
}

// Straight-line speculation (Table 1 'c'): non-branch training at a
// branch victim speculates into the fall-through.
TEST(PhantomCore, StraightLineSpeculation)
{
    auto zen2 = observe(cpu::zen2(), BranchKind::NonBranch,
                        BranchKind::Ret);
    EXPECT_TRUE(zen2.signals.fetch);
    EXPECT_TRUE(zen2.signals.decode);
    EXPECT_TRUE(zen2.signals.execute);

    auto zen4 = observe(cpu::zen4(), BranchKind::NonBranch,
                        BranchKind::DirectJmp);
    EXPECT_TRUE(zen4.signals.fetch);
    EXPECT_FALSE(zen4.signals.execute);
}

// Intel quirk (§6): no observable IF/ID when the victim is jmp*.
TEST(PhantomCore, IntelIndirectVictimOpaque)
{
    auto obs = observe(cpu::intel12(), BranchKind::DirectJmp,
                       BranchKind::IndirectJmp);
    EXPECT_FALSE(obs.signals.fetch);
    EXPECT_FALSE(obs.signals.decode);
    EXPECT_FALSE(obs.signals.execute);
}

// Intel still fetches and decodes phantom targets for non-branch victims
// (Table 1: the non-branch column shows IF/ID on Intel parts).
TEST(PhantomCore, IntelNonBranchVictimFetchDecode)
{
    auto obs = observe(cpu::intel13(), BranchKind::IndirectJmp,
                       BranchKind::NonBranch);
    EXPECT_TRUE(obs.signals.fetch);
    EXPECT_TRUE(obs.signals.decode);
    EXPECT_FALSE(obs.signals.execute);
}

// O4: SuppressBPOnNonBr stops transient execute on Zen 2 but not IF/ID.
TEST(PhantomCore, SuppressBpOnNonBrStopsExecuteOnly)
{
    StageExperimentOptions opts;
    opts.suppressBpOnNonBr = true;
    auto obs = observe(cpu::zen2(), BranchKind::IndirectJmp,
                       BranchKind::NonBranch, opts);
    EXPECT_TRUE(obs.signals.fetch);     // O4: IF not prevented
    EXPECT_TRUE(obs.signals.decode);    // O4: ID not prevented
    EXPECT_FALSE(obs.signals.execute);  // EX suppressed
}

// Zen 1 does not support the bit: setting it changes nothing.
TEST(PhantomCore, SuppressBpUnsupportedOnZen1)
{
    StageExperimentOptions opts;
    opts.suppressBpOnNonBr = true;
    auto obs = observe(cpu::zen1(), BranchKind::IndirectJmp,
                       BranchKind::NonBranch, opts);
    EXPECT_TRUE(obs.signals.execute);
}

// The branch-victim cases are unaffected by SuppressBPOnNonBr: P2/P3
// still work when targeting control-flow edges (§6.3).
TEST(PhantomCore, SuppressBpDoesNotAffectBranchVictims)
{
    StageExperimentOptions opts;
    opts.suppressBpOnNonBr = true;
    auto obs = observe(cpu::zen2(), BranchKind::IndirectJmp,
                       BranchKind::DirectJmp, opts);
    EXPECT_TRUE(obs.signals.execute);
}

// Figure 6: speculative decode evicts the primed µop-cache set only at
// the matching page offset.
TEST(PhantomCore, Fig6SetSelectivity)
{
    StageExperiment experiment(quiet(cpu::zen2()), {});
    u64 hits_matching = experiment.fig6OpCacheHits(0xac0);
    u64 hits_other = experiment.fig6OpCacheHits(0x400);
    EXPECT_LT(hits_matching, hits_other);
    EXPECT_EQ(hits_other, experiment.fig6MaxHits());
}

// Cross-privilege alias addresses collide in the BTB on AMD.
TEST(PhantomCore, CrossPrivAliasesCollide)
{
    for (auto kind : {bpu::BtbHashKind::Zen12, bpu::BtbHashKind::Zen34}) {
        VAddr kva = 0xffffffff81234ac0ull;
        VAddr uva = bpu::crossPrivAlias(kind, kva);
        EXPECT_NE(uva, 0u);
        EXPECT_EQ(bit(uva, 47), 0u);
        EXPECT_EQ(bpu::btbKey(kind, uva, Privilege::User),
                  bpu::btbKey(kind, kva, Privilege::Kernel));
    }
    EXPECT_EQ(bpu::crossPrivAlias(bpu::BtbHashKind::IntelSalted,
                                  0xffffffff81234ac0ull), 0u);
}

// The paper's confirmed Zen 3/4 collision masks work under our hash.
TEST(PhantomCore, PaperZen34MasksCollide)
{
    VAddr kva = 0xffffffff8f6520ull | 0xffff800000000000ull;
    for (u64 mask : {0xffffbff800000000ull, 0xffff8003ff800000ull}) {
        VAddr uva = canonicalize(kva ^ mask);
        EXPECT_EQ(bpu::btbKey(bpu::BtbHashKind::Zen34, uva,
                              Privilege::User),
                  bpu::btbKey(bpu::BtbHashKind::Zen34, kva,
                              Privilege::Kernel))
            << std::hex << mask;
    }
}

// User->kernel prediction injection plants a kernel-visible BTB entry.
TEST(PhantomCore, InjectionPlantsKernelPrediction)
{
    Testbed bed(quiet(cpu::zen3()));
    PredictionInjector injector(bed);
    VAddr victim = bed.kernel.getpidGadgetVa();
    VAddr target = bed.kernel.imageBase() + 0x2000;
    ASSERT_TRUE(injector.inject(victim, target));

    auto pred = bed.machine.bpu().btb().lookup(victim, Privilege::Kernel);
    ASSERT_TRUE(pred.has_value());
    EXPECT_EQ(pred->absTarget, target);
    EXPECT_EQ(pred->creator, Privilege::User);
}

// On Intel there is no cross-privilege aliasing to exploit.
TEST(PhantomCore, InjectionImpossibleOnIntel)
{
    Testbed bed(quiet(cpu::intel12()));
    PredictionInjector injector(bed);
    EXPECT_FALSE(injector.inject(bed.kernel.getpidGadgetVa(),
                                 bed.kernel.imageBase() + 0x2000));
}

// End-to-end O1 in the kernel: injected prediction at the getpid nop
// causes a transient fetch of a mapped executable kernel target during
// the syscall.
TEST(PhantomCore, KernelPhantomFetchSignal)
{
    Testbed bed(quiet(cpu::zen3()));
    PredictionInjector injector(bed);
    VAddr victim = bed.kernel.getpidGadgetVa();
    VAddr target = bed.kernel.imageBase() + 0x3000;   // mapped, executable

    injector.inject(victim, target);
    bed.machine.clflushVirt(target);
    bed.syscall(os::kSysGetpid);
    Cycle lat = bed.machine.timedFetchAccess(target, Privilege::Kernel);
    EXPECT_LT(lat, bed.machine.caches().config().latMem);

    // Negative: no injection, flushed target stays cold.
    bed.machine.writeMsr(cpu::msr::kPredCmd, cpu::msr::kIbpbBit);
    bed.machine.clflushVirt(target);
    bed.syscall(os::kSysGetpid);
    Cycle cold = bed.machine.timedFetchAccess(target, Privilege::Kernel);
    EXPECT_EQ(cold, bed.machine.caches().config().latMem);
}

// O5: AutoIBRS still allows the transient fetch (IF) of a user-injected
// prediction in kernel mode, but nothing deeper.
TEST(PhantomCore, AutoIbrsAllowsFetchOnly)
{
    Testbed bed(quiet(cpu::zen4()));
    bed.machine.msrs().setBit(cpu::msr::kEfer, cpu::msr::kAutoIbrsBit,
                              true);
    PredictionInjector injector(bed);
    VAddr victim = bed.kernel.getpidGadgetVa();
    VAddr target = bed.kernel.imageBase() + 0x3000;

    bed.syscall(os::kSysGetpid);    // warm the kernel path's own branches
    injector.inject(victim, target);
    bed.machine.clflushVirt(target);
    u64 decode_before = bed.machine.pmc().read(cpu::PmcEvent::SpecDecode);
    bed.syscall(os::kSysGetpid);
    u64 decode_delta =
        bed.machine.pmc().read(cpu::PmcEvent::SpecDecode) - decode_before;

    Cycle lat = bed.machine.timedFetchAccess(target, Privilege::Kernel);
    EXPECT_LT(lat, bed.machine.caches().config().latMem);   // IF happened
    EXPECT_EQ(decode_delta, 0u);                            // ID did not
}

} // namespace
} // namespace phantom::attack
