/**
 * @file
 * Reproduces Table 5: finding the physical address of an attacker huge
 * page by guessing physmap offsets through the P2 load and verifying
 * with Flush+Reload. The page's physical placement is re-randomized per
 * run by allocating a random number (0-99) of huge pages first.
 */

#include "attack/exploits.hpp"
#include "bench_util.hpp"
#include "sim/rng.hpp"

#include <cstdio>

using namespace phantom;
using namespace phantom::attack;

int
main()
{
    bench::header("Table 5: physical address of a user page (P2 + F+R)");

    u64 runs = bench::runCount(100, 5);

    struct Row
    {
        cpu::MicroarchConfig cfg;
        u64 physBytes;
        const char* memory;
    };
    Row rows[] = {
        {cpu::zen1(), 8ull << 30, "8 GB"},
        {cpu::zen2(), 64ull << 30, "64 GB"},
    };

    std::printf("%-6s %-22s %-8s %10s %14s   (%llu runs)\n", "uarch",
                "model", "memory", "accuracy", "median time",
                static_cast<unsigned long long>(runs));
    bench::rule();

    for (const Row& row : rows) {
        SampleSet times;
        u64 successes = 0;
        for (u64 r = 0; r < runs; ++r) {
            Testbed bed(row.cfg, row.physBytes, 555 + r * 101);
            // Re-randomized physical placement per run (paper §7.4): the
            // buddy allocator hands out frames from anywhere in installed
            // memory, which is what ties scan time to memory size.
            VAddr page_va = 0x0000000100000000ull;
            bed.process.mapHugeData(page_va, /*random_placement=*/true);

            PhysAddrFinder finder(bed, bed.kernel.imageBase(),
                                  bed.kernel.physmapBase(), page_va);
            DerandResult result = finder.run();
            successes += result.success ? 1 : 0;
            times.add(result.seconds);
        }
        std::printf("%-6s %-22s %-8s %9.0f%% %11.5f s\n",
                    row.cfg.name.c_str(), row.cfg.model.c_str(), row.memory,
                    100.0 * static_cast<double>(successes) /
                        static_cast<double>(runs),
                    times.median());
    }

    std::printf("Paper: zen1/8GB 99%% 1 s | zen2/64GB 100%% 16 s\n");
    return 0;
}
