/**
 * @file
 * Reproduces Table 5: finding the physical address of an attacker huge
 * page by guessing physmap offsets through the P2 load and verifying
 * with Flush+Reload. The page's physical placement is re-randomized per
 * run by allocating a random number (0-99) of huge pages first.
 *
 * Each (row, run) pair is one scheduler trial; the per-uarch JSON
 * experiments aggregate in trial order (jobs-independent).
 */

#include "attack/exploits.hpp"
#include "bench_util.hpp"
#include "sim/rng.hpp"

#include <cstdio>

using namespace phantom;
using namespace phantom::attack;

int
main()
{
    bench::header("Table 5: physical address of a user page (P2 + F+R)");

    u64 runs = bench::runCount(100, 5);

    struct Row
    {
        cpu::MicroarchConfig cfg;
        u64 physBytes;
        const char* memory;
    };
    Row rows[] = {
        {cpu::zen1(), 8ull << 30, "8 GB"},
        {cpu::zen2(), 64ull << 30, "64 GB"},
    };
    constexpr std::size_t kRows = sizeof rows / sizeof rows[0];

    std::printf("%-6s %-22s %-8s %10s %14s   (%llu runs)\n", "uarch",
                "model", "memory", "accuracy", "median time",
                static_cast<unsigned long long>(runs));
    bench::rule();

    bench::Campaign campaign("bench_table5");
    auto seeds = campaign.seeds("table5");

    u64 trials = kRows * runs;
    auto results = campaign.scheduler().run(trials, [&](u64 trial) {
        const Row& row = rows[trial / runs];
        Testbed bed(row.cfg, row.physBytes, seeds.trialSeed(trial));
        // Re-randomized physical placement per run (paper §7.4): the
        // buddy allocator hands out frames from anywhere in installed
        // memory, which is what ties scan time to memory size.
        VAddr page_va = 0x0000000100000000ull;
        bed.process.mapHugeData(page_va, /*random_placement=*/true);

        PhysAddrFinder finder(bed, bed.kernel.imageBase(),
                              bed.kernel.physmapBase(), page_va);
        return finder.run();
    });

    for (std::size_t idx = 0; idx < kRows; ++idx) {
        const Row& row = rows[idx];
        campaign.noteUarch(row.cfg.name);
        auto& exp = campaign.sink().experiment(row.cfg.name);

        SampleSet times;
        u64 successes = 0;
        for (u64 r = 0; r < runs; ++r) {
            const DerandResult& result = results[idx * runs + r];
            successes += result.success ? 1 : 0;
            times.add(result.seconds);
        }
        double accuracy = static_cast<double>(successes) /
                          static_cast<double>(runs);
        exp.addSamples("seconds", times);
        exp.setScalar("accuracy", accuracy);
        exp.setScalar("runs", static_cast<double>(runs));
        exp.setScalar("memory_gib",
                      static_cast<double>(row.physBytes >> 30));
        exp.setLabel("memory", row.memory);
        std::printf("%-6s %-22s %-8s %9.0f%% %11.5f s\n",
                    row.cfg.name.c_str(), row.cfg.model.c_str(), row.memory,
                    100.0 * accuracy, times.median());
    }

    std::printf("Paper: zen1/8GB 99%% 1 s | zen2/64GB 100%% 16 s\n");
    return campaign.finish();
}
