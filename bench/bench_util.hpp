/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: environment
 * knobs for scaling run counts, and formatted output.
 *
 * Every bench accepts:
 *   PHANTOM_FAST=1     reduced runs/sizes for quick iteration
 *   PHANTOM_RUNS=N     override the per-experiment repeat count
 */

#ifndef PHANTOM_BENCH_UTIL_HPP
#define PHANTOM_BENCH_UTIL_HPP

#include "sim/stats.hpp"
#include "sim/types.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace phantom::bench {

inline bool
fastMode()
{
    const char* env = std::getenv("PHANTOM_FAST");
    return env != nullptr && env[0] == '1';
}

inline u64
envOr(const char* name, u64 fallback)
{
    if (const char* env = std::getenv(name)) {
        char* end = nullptr;
        u64 v = std::strtoull(env, &end, 10);
        if (end != env)
            return v;
    }
    return fallback;
}

/** Default repeat count: @p full normally, @p fast under PHANTOM_FAST. */
inline u64
runCount(u64 full, u64 fast)
{
    return envOr("PHANTOM_RUNS", fastMode() ? fast : full);
}

inline void
header(const std::string& title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

inline void
rule()
{
    std::printf("---------------------------------------------"
                "---------------------------\n");
}

} // namespace phantom::bench

#endif // PHANTOM_BENCH_UTIL_HPP
