/**
 * @file
 * Shared helpers for the table/figure reproduction binaries:
 * environment knobs for scaling run counts, formatted output, and the
 * Campaign entry point that wires a bench through the parallel
 * experiment runner (src/runner).
 *
 * Every bench accepts:
 *   PHANTOM_FAST=1       reduced runs/sizes for quick iteration
 *   PHANTOM_RUNS=N       override the per-experiment repeat count
 *   PHANTOM_JOBS=N       worker threads (default: hardware concurrency;
 *                        1 = the pre-runner serial path)
 *   PHANTOM_SEED=N       campaign seed for per-trial seed derivation
 *   PHANTOM_JSON_DIR=D   directory for the JSON results file
 *                        (default ".", i.e. next to the text output)
 */

#ifndef PHANTOM_BENCH_UTIL_HPP
#define PHANTOM_BENCH_UTIL_HPP

#include "runner/result_sink.hpp"
#include "runner/scheduler.hpp"
#include "runner/seed_stream.hpp"
#include "runner/shard_stats.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace phantom::bench {

inline bool
fastMode()
{
    const char* env = std::getenv("PHANTOM_FAST");
    return env != nullptr && env[0] == '1';
}

/**
 * @p name from the environment as a decimal u64, or @p fallback when
 * unset. Malformed values — empty, trailing garbage ("10x"), negative,
 * out of range — fall back with a warning on stderr instead of being
 * silently half-parsed.
 */
inline u64
envOr(const char* name, u64 fallback)
{
    const char* env = std::getenv(name);
    if (env == nullptr)
        return fallback;
    // strtoull skips leading whitespace and accepts '-' (wrapping the
    // value), so check for a sign the same way it would see it.
    const char* first = env;
    while (std::isspace(static_cast<unsigned char>(*first)))
        ++first;
    char* end = nullptr;
    errno = 0;
    u64 v = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || *first == '-') {
        std::fprintf(stderr,
                     "phantom: ignoring malformed %s=\"%s\" "
                     "(using %llu)\n",
                     name, env,
                     static_cast<unsigned long long>(fallback));
        return fallback;
    }
    return v;
}

/** Default repeat count: @p full normally, @p fast under PHANTOM_FAST. */
inline u64
runCount(u64 full, u64 fast)
{
    return envOr("PHANTOM_RUNS", fastMode() ? fast : full);
}

inline void
header(const std::string& title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

inline void
rule()
{
    std::printf("---------------------------------------------"
                "---------------------------\n");
}

/** Default campaign seed when PHANTOM_SEED is unset. */
inline constexpr u64 kDefaultCampaignSeed = 7;

/**
 * The per-bench runner bundle: a work-stealing scheduler sized from
 * PHANTOM_JOBS, a campaign seed from PHANTOM_SEED, and a ResultSink
 * that mirrors the printed tables into <bench>.json.
 *
 * Usage:
 *   Campaign campaign("bench_foo");
 *   auto seeds = campaign.seeds("experiment-name");
 *   auto results = campaign.scheduler().run(n, [&](u64 trial) {
 *       return runOneTrial(seeds.trialSeed(trial));
 *   });
 *   ... print + campaign.sink().experiment("experiment-name") ...
 *   return campaign.finish();
 */
class Campaign
{
  public:
    explicit Campaign(const char* bench_name)
        : seed_(envOr("PHANTOM_SEED", kDefaultCampaignSeed)),
          scheduler_(),
          sink_(bench_name, seed_, scheduler_.jobs())
    {
    }

    runner::TrialScheduler& scheduler() { return scheduler_; }
    runner::ResultSink& sink() { return sink_; }
    u64 seed() const { return seed_; }
    unsigned jobs() const { return scheduler_.jobs(); }

    /** Independent seed stream for the named experiment. */
    runner::SeedStream
    seeds(const char* experiment) const
    {
        return runner::SeedStream(seed_).substream(experiment);
    }

    /**
     * Write the JSON results file and report where it went. Returns
     * the bench's exit code (0 even if the JSON write failed: the text
     * tables were already produced and remain authoritative).
     */
    int
    finish()
    {
        sink_.setBusySeconds(scheduler_.busySeconds());
        std::string path = sink_.writeJson();
        if (!path.empty())
            std::printf("\n[%s: seed=%llu jobs=%u results -> %s]\n",
                        sink_.benchName().c_str(),
                        static_cast<unsigned long long>(seed_), jobs(),
                        path.c_str());
        return 0;
    }

  private:
    u64 seed_;
    runner::TrialScheduler scheduler_;
    runner::ResultSink sink_;
};

} // namespace phantom::bench

#endif // PHANTOM_BENCH_UTIL_HPP
