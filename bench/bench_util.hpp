/**
 * @file
 * Shared helpers for the table/figure reproduction binaries:
 * environment knobs for scaling run counts, formatted output, and the
 * Campaign entry point that wires a bench through the parallel
 * experiment runner (src/runner).
 *
 * Every bench accepts:
 *   PHANTOM_FAST=1       reduced runs/sizes for quick iteration
 *   PHANTOM_RUNS=N       override the per-experiment repeat count
 *   PHANTOM_JOBS=N       worker threads (default: hardware concurrency;
 *                        1 = the pre-runner serial path)
 *   PHANTOM_SEED=N       campaign seed for per-trial seed derivation
 *   PHANTOM_JSON_DIR=D   directory for the JSON results file
 *                        (default ".", i.e. next to the text output)
 *   PHANTOM_TRACE=F      write a Chrome trace_event JSON of pipeline
 *                        events to F (open in Perfetto / chrome://tracing)
 *   PHANTOM_TRACE_EVENTS=N  per-shard trace ring capacity (default 2^18)
 *   PHANTOM_SNAP=0       disable warm-machine snapshot reuse (on by
 *                        default; src/snap)
 *   PHANTOM_SNAP_DIR=D   persist snapshot images under D and revive
 *                        them on store misses in later runs
 *   PHANTOM_DECODE_CACHE=0  disable the predecoded-instruction cache
 *                        (on by default; src/cpu/decode_cache.hpp —
 *                        results are bit-identical either way)
 *   PHANTOM_SUPERBLOCKS=0  disable the decoded-superblock execution
 *                        engine, keeping single-instruction predecode
 *                        (on by default; results are bit-identical)
 *   PHANTOM_PROF=1       host-time self-profiler (src/obs/prof.hpp):
 *                        adds a "profile" section to the JSON results
 *                        (off by default; when off, output is
 *                        byte-identical to an unprofiled build)
 *   PHANTOM_PROF_DIR=D   also write <bench>.folded (flamegraph.pl
 *                        input) and <bench>.prof.trace.json (Perfetto)
 *                        under D when profiling is on
 *
 * The authoritative table of every PHANTOM_* variable lives in
 * EXPERIMENTS.md ("Environment variables").
 */

#ifndef PHANTOM_BENCH_UTIL_HPP
#define PHANTOM_BENCH_UTIL_HPP

#include "cpu/decode_cache.hpp"
#include "cpu/machine.hpp"
#include "obs/build_info.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "runner/env.hpp"
#include "runner/metrics_json.hpp"
#include "runner/prof_json.hpp"
#include "runner/result_sink.hpp"
#include "runner/scheduler.hpp"
#include "runner/seed_stream.hpp"
#include "runner/shard_stats.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"
#include "snap/store.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace phantom::bench {

inline bool
fastMode()
{
    const char* env = std::getenv("PHANTOM_FAST");
    return env != nullptr && env[0] == '1';
}

/**
 * @p name from the environment as a decimal u64, or @p fallback when
 * unset. Malformed values — empty, trailing garbage ("10x"), negative,
 * out of range — fall back with a warning on stderr instead of being
 * silently half-parsed. Campaign-selecting variables (PHANTOM_SEED,
 * PHANTOM_JOBS) do NOT go through this: they use the strict variant in
 * runner/env.hpp and fail loudly instead.
 */
inline u64
envOr(const char* name, u64 fallback)
{
    return runner::envU64Or(name, fallback);
}

/** Default repeat count: @p full normally, @p fast under PHANTOM_FAST. */
inline u64
runCount(u64 full, u64 fast)
{
    return envOr("PHANTOM_RUNS", fastMode() ? fast : full);
}

inline void
header(const std::string& title)
{
    std::printf("\n==== %s ====\n", title.c_str());
}

inline void
rule()
{
    std::printf("---------------------------------------------"
                "---------------------------\n");
}

/** Default campaign seed when PHANTOM_SEED is unset. */
inline constexpr u64 kDefaultCampaignSeed = 7;

/**
 * The per-bench runner bundle: a work-stealing scheduler sized from
 * PHANTOM_JOBS, a campaign seed from PHANTOM_SEED, and a ResultSink
 * that mirrors the printed tables into <bench>.json.
 *
 * Usage:
 *   Campaign campaign("bench_foo");
 *   auto seeds = campaign.seeds("experiment-name");
 *   auto results = campaign.scheduler().run(n, [&](u64 trial) {
 *       return runOneTrial(seeds.trialSeed(trial));
 *   });
 *   ... print + campaign.sink().experiment("experiment-name") ...
 *   return campaign.finish();
 */
class Campaign
{
  public:
    explicit Campaign(const char* bench_name)
        : seed_(runner::envU64Strict("PHANTOM_SEED", kDefaultCampaignSeed)),
          scheduler_(),
          sink_(bench_name, seed_, scheduler_.jobs()),
          mainThread_(std::this_thread::get_id()),
          tracePath_(obs::tracePathFromEnv()),
          started_(std::chrono::steady_clock::now())
    {
        if (!tracePath_.empty()) {
            // One private ring per scheduler shard plus one for the
            // main thread (index jobs): workers never share a ring, so
            // the emit path stays lock-free. The worker hooks make the
            // ambient sink follow the current thread; Machines pick it
            // up at construction (Machine's ctor calls setTraceSink()).
            std::size_t events = static_cast<std::size_t>(
                envOr("PHANTOM_TRACE_EVENTS", u64{1} << 18));
            for (unsigned w = 0; w <= scheduler_.jobs(); ++w)
                rings_.push_back(
                    std::make_unique<obs::RingTraceSink>(events));
            obs::setActiveTraceSink(rings_.back().get());
        }
        if (snap::snapshotReuseEnabled()) {
            // Same shape for snapshot stores: one per shard plus one
            // for the main thread, so CoW frame sharing never crosses
            // a thread boundary (shared_ptr<Frame> maps are not
            // synchronized).
            for (unsigned w = 0; w <= scheduler_.jobs(); ++w)
                snapStores_.push_back(
                    std::make_unique<snap::SnapshotStore>());
            snap::setActiveSnapshotStore(snapStores_.back().get());
        }
        // Decode-cache counters pool the same way: one stats slot per
        // shard plus one for the main thread, drained by each Machine's
        // destructor via the ambient pointer. The vector is sized once
        // here and never resized, so the installed addresses are stable.
        decodeStats_.resize(scheduler_.jobs() + 1);
        cpu::setActiveDecodeCacheStats(&decodeStats_.back());
        scheduler_.setWorkerHooks(
            [this](unsigned worker) {
                if (!rings_.empty())
                    obs::setActiveTraceSink(rings_[worker].get());
                if (!snapStores_.empty())
                    snap::setActiveSnapshotStore(
                        snapStores_[worker].get());
                cpu::setActiveDecodeCacheStats(&decodeStats_[worker]);
            },
            [this](unsigned) {
                // The serial path runs the hooks on the campaign's own
                // thread: hand that thread its ring/store back. Pool
                // threads are about to exit; nulling their slot keeps
                // any late-constructed Machine silent.
                bool main = std::this_thread::get_id() == mainThread_;
                if (!rings_.empty())
                    obs::setActiveTraceSink(
                        main ? rings_.back().get() : nullptr);
                if (!snapStores_.empty())
                    snap::setActiveSnapshotStore(
                        main ? snapStores_.back().get() : nullptr);
                cpu::setActiveDecodeCacheStats(
                    main ? &decodeStats_.back() : nullptr);
            });
    }

    ~Campaign()
    {
        if (std::this_thread::get_id() == mainThread_) {
            if (!tracePath_.empty())
                obs::setActiveTraceSink(nullptr);
            if (!snapStores_.empty())
                snap::setActiveSnapshotStore(nullptr);
            cpu::setActiveDecodeCacheStats(nullptr);
        }
    }

    runner::TrialScheduler& scheduler() { return scheduler_; }
    runner::ResultSink& sink() { return sink_; }
    u64 seed() const { return seed_; }
    unsigned jobs() const { return scheduler_.jobs(); }
    bool tracing() const { return !tracePath_.empty(); }

    /**
     * Campaign metrics derived from seeded simulation only (PMC
     * aggregates, cycle attribution, episode counts). Contents must be
     * bit-identical for any PHANTOM_JOBS — aggregate in trial order.
     */
    obs::MetricsRegistry& deterministic() { return deterministic_; }

    /** Wall-clock-derived metrics; legitimately vary run to run. */
    obs::MetricsRegistry& measured() { return measured_; }

    /** Record a microarchitecture this campaign simulated (manifest). */
    void
    noteUarch(const std::string& name)
    {
        for (const std::string& existing : uarches_)
            if (existing == name)
                return;
        uarches_.push_back(name);
    }

    /** Independent seed stream for the named experiment. */
    runner::SeedStream
    seeds(const char* experiment) const
    {
        return runner::SeedStream(seed_).substream(experiment);
    }

    /**
     * Write the JSON results file (and the Chrome trace, when enabled)
     * and report where they went. Returns the bench's exit code (0
     * even if a write failed: the text tables were already produced
     * and remain authoritative).
     */
    int
    finish()
    {
        sink_.setBusySeconds(scheduler_.busySeconds());
        exportSchedulerMetrics();
        writeTrace();

        JsonValue metrics = JsonValue::object();
        metrics.set("deterministic",
                    runner::metricsToJson(deterministic_));
        metrics.set("measured", runner::metricsToJson(measured_));
        metrics.set("manifest", manifestJson());
        sink_.setMetrics(std::move(metrics));
        exportProfile();

        std::string path = sink_.writeJson();
        if (!path.empty())
            std::printf("\n[%s: seed=%llu jobs=%u results -> %s]\n",
                        sink_.benchName().c_str(),
                        static_cast<unsigned long long>(seed_), jobs(),
                        path.c_str());
        return 0;
    }

    using JsonValue = runner::JsonValue;

  private:
    void
    exportSchedulerMetrics()
    {
        const runner::SchedulerStats& stats = scheduler_.stats();
        measured_.counter("scheduler.trials").inc(stats.trials);
        measured_.counter("scheduler.steals").inc(stats.steals);
        measured_.gauge("scheduler.jobs").set(double(jobs()));
        measured_.gauge("scheduler.shard_imbalance")
            .set(stats.imbalance());
        double busy = scheduler_.busySeconds();
        measured_.gauge("scheduler.trials_per_second")
            .set(busy > 0.0 ? double(stats.trials) / busy : 0.0);
        measured_.histogram("scheduler.trial_micros")
            .merge(stats.trialMicros);
        if (!rings_.empty()) {
            u64 emitted = 0, dropped = 0;
            for (const auto& ring : rings_) {
                emitted += ring->emitted();
                dropped += ring->dropped();
            }
            measured_.counter("trace.events_emitted").inc(emitted);
            measured_.counter("trace.events_dropped").inc(dropped);
        }
        if (!snapStores_.empty()) {
            // Store effectiveness depends on the shard split, so these
            // live in the measured registry; obs/diff classifies
            // metrics.measured.counters.snap.* as informational.
            snap::StoreStats total;
            for (const auto& store : snapStores_)
                total.merge(store->stats());
            measured_.counter("snap.captures").inc(total.captures);
            measured_.counter("snap.hits").inc(total.hits);
            measured_.counter("snap.misses").inc(total.misses);
            measured_.counter("snap.restores").inc(total.restores);
            measured_.counter("snap.forks").inc(total.forks);
            measured_.counter("snap.state_bytes").inc(total.stateBytes);
            measured_.counter("snap.image_loads").inc(total.imageLoads);
            measured_.counter("snap.image_stores")
                .inc(total.imageStores);
        }
        // Decode-cache effectiveness varies with PHANTOM_DECODE_CACHE
        // (zeros when disabled) while the model output is identical, so
        // these are measured, and obs/diff classifies
        // metrics.measured.counters.decode_cache.* as informational.
        cpu::DecodeCacheStats decode;
        for (const cpu::DecodeCacheStats& shard : decodeStats_)
            decode.merge(shard);
        measured_.counter("decode_cache.hits").inc(decode.hits);
        measured_.counter("decode_cache.misses").inc(decode.misses);
        measured_.counter("decode_cache.invalidates")
            .inc(decode.invalidates);
        measured_.counter("decode_cache.block_builds")
            .inc(decode.blockBuilds);
        measured_.counter("decode_cache.block_hits")
            .inc(decode.blockHits);
        measured_.counter("decode_cache.block_invalidates")
            .inc(decode.blockInvalidates);
    }

    /**
     * Attach the host-time self-profile (only while PHANTOM_PROF=1:
     * with the gate off the sink never learns a "profile" key exists
     * and the document stays byte-identical to an unprofiled build).
     * PHANTOM_PROF_DIR additionally gets the flamegraph.pl folded
     * stacks and a Perfetto-loadable trace, ready to view without
     * running tools/prof_report.
     */
    void
    exportProfile()
    {
        if (!obs::prof::enabled())
            return;
        auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - started_);
        u64 wall_ns = wall.count() < 0 ? 0 : static_cast<u64>(wall.count());
        obs::prof::Report report = obs::prof::collect();
        sink_.setProfile(runner::profileToJson(report, wall_ns));

        std::string dir = runner::envStringOr("PHANTOM_PROF_DIR");
        if (dir.empty())
            return;
        if (dir.back() != '/')
            dir.push_back('/');
        writeTextFile(dir + sink_.benchName() + ".folded",
                      obs::prof::foldedStacks(report));
        writeTextFile(dir + sink_.benchName() + ".prof.trace.json",
                      obs::prof::perfettoTraceJson(report));
    }

    void
    writeTextFile(const std::string& path, const std::string& text)
    {
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "phantom: cannot open %s\n",
                         path.c_str());
            return;
        }
        bool ok = std::fwrite(text.data(), 1, text.size(), f) ==
                      text.size() &&
                  std::fclose(f) == 0;
        if (ok)
            std::printf("[%s: host profile -> %s]\n",
                        sink_.benchName().c_str(), path.c_str());
        else
            std::fprintf(stderr, "phantom: short write to %s\n",
                         path.c_str());
    }

    JsonValue
    manifestJson() const
    {
        // Everything here must be jobs-independent: trace_check
        // compares the manifest across PHANTOM_JOBS settings (the
        // worker count lives in the top-level "jobs" field and the
        // measured metrics instead).
        JsonValue m = JsonValue::object();
        m.set("bench", JsonValue(sink_.benchName()));
        m.set("campaign_seed", JsonValue(seed_));
        m.set("fast_mode", JsonValue(fastMode()));
        m.set("git_describe", JsonValue(gitDescribe()));
        JsonValue uarches = JsonValue::array();
        for (const std::string& name : uarches_)
            uarches.push(JsonValue(name));
        m.set("uarch", std::move(uarches));
        return m;
    }

    /** The build's git describe string, shared with /healthz. */
    static const char*
    gitDescribe()
    {
        return obs::gitDescribe();
    }

    void
    writeTrace()
    {
        if (tracePath_.empty())
            return;
        std::vector<obs::ShardTrace> shards;
        for (unsigned w = 0; w < rings_.size(); ++w) {
            obs::ShardTrace shard;
            shard.shard = w;
            shard.dropped = rings_[w]->dropped();
            shard.events = rings_[w]->snapshot();
            shards.push_back(std::move(shard));
        }
        obs::ChromeTraceOptions options;
        options.processName = sink_.benchName();
        options.episodeLabel = [](u8 kind) {
            return cpu::episodeKindName(
                static_cast<cpu::EpisodeKind>(kind));
        };
        if (obs::writeChromeTrace(tracePath_, shards, options))
            std::printf("[%s: pipeline trace -> %s]\n",
                        sink_.benchName().c_str(), tracePath_.c_str());
    }

    u64 seed_;
    runner::TrialScheduler scheduler_;
    runner::ResultSink sink_;
    std::thread::id mainThread_;
    std::string tracePath_;
    std::chrono::steady_clock::time_point started_;
    std::vector<std::unique_ptr<obs::RingTraceSink>> rings_;
    std::vector<std::unique_ptr<snap::SnapshotStore>> snapStores_;
    // One slot per worker plus one for the main thread (back()); sized
    // once up front so the addresses handed to
    // cpu::setActiveDecodeCacheStats stay stable.
    std::vector<cpu::DecodeCacheStats> decodeStats_;
    obs::MetricsRegistry deterministic_;
    obs::MetricsRegistry measured_;
    std::vector<std::string> uarches_;
};

} // namespace phantom::bench

#endif // PHANTOM_BENCH_UTIL_HPP
