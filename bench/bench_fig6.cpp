/**
 * @file
 * Reproduces Figure 6: speculative decode detection. Training a
 * non-branch victim with jmp*, the µop-cache hit count while
 * re-executing a jmp series (primed at page offset 0xac0) dips only when
 * the phantom target C is placed at the matching page offset.
 */

#include "attack/experiment.hpp"
#include "bench_util.hpp"

#include <cstdio>

using namespace phantom;
using namespace phantom::attack;

int
main()
{
    bench::header("Figure 6: op-cache hits vs page offset of C");
    std::printf("Series primed at page offset 0xac0; the dip marks "
                "speculative decode of C.\n\n");

    auto configs = {cpu::zen2(), cpu::zen4()};

    std::printf("%-10s", "offset");
    for (const auto& cfg : configs)
        std::printf("%10s", cfg.name.c_str());
    std::printf("\n");
    bench::rule();

    u64 dip_offset[2] = {0, 0};
    u64 min_hits[2] = {~0ull, ~0ull};

    // Set-granular sweep (bits [11:6] select the µop-cache set); fast
    // mode keeps a coarse sweep plus the matching offset.
    std::vector<u64> offsets;
    for (u64 offset = 0x000; offset <= 0xfc0;
         offset += bench::fastMode() ? 0x200 : 0x40)
        offsets.push_back(offset);
    if (bench::fastMode())
        offsets.insert(offsets.begin() + 6, 0xac0);

    for (u64 offset : offsets) {
        std::printf("0x%03llx    ", static_cast<unsigned long long>(offset));
        int idx = 0;
        for (const auto& cfg : configs) {
            StageExperiment experiment(cfg, {});
            u64 hits = experiment.fig6OpCacheHits(offset);
            std::printf("%10llu", static_cast<unsigned long long>(hits));
            if (hits < min_hits[idx]) {
                min_hits[idx] = hits;
                dip_offset[idx] = offset;
            }
            ++idx;
        }
        std::printf("\n");
    }

    std::printf("\nDip at offset: zen2 -> 0x%03llx, zen4 -> 0x%03llx "
                "(paper: 0xac0 on both)\n",
                static_cast<unsigned long long>(dip_offset[0]),
                static_cast<unsigned long long>(dip_offset[1]));
    return 0;
}
