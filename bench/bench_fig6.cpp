/**
 * @file
 * Reproduces Figure 6: speculative decode detection. Training a
 * non-branch victim with jmp*, the µop-cache hit count while
 * re-executing a jmp series (primed at page offset 0xac0) dips only when
 * the phantom target C is placed at the matching page offset.
 *
 * Each (offset, uarch) sweep point is an independent trial dispatched
 * through the campaign scheduler; the table and dip detection run on
 * the joined results in offset order, independent of PHANTOM_JOBS.
 */

#include "attack/experiment.hpp"
#include "bench_util.hpp"

#include <cstdio>

using namespace phantom;
using namespace phantom::attack;

int
main()
{
    bench::header("Figure 6: op-cache hits vs page offset of C");
    std::printf("Series primed at page offset 0xac0; the dip marks "
                "speculative decode of C.\n\n");

    std::vector<cpu::MicroarchConfig> configs = {cpu::zen2(), cpu::zen4()};

    std::printf("%-10s", "offset");
    for (const auto& cfg : configs)
        std::printf("%10s", cfg.name.c_str());
    std::printf("\n");
    bench::rule();

    // Set-granular sweep (bits [11:6] select the µop-cache set); fast
    // mode keeps a coarse sweep plus the matching offset.
    std::vector<u64> offsets;
    for (u64 offset = 0x000; offset <= 0xfc0;
         offset += bench::fastMode() ? 0x200 : 0x40)
        offsets.push_back(offset);
    if (bench::fastMode())
        offsets.insert(offsets.begin() + 6, 0xac0);

    bench::Campaign campaign("bench_fig6");
    auto seeds = campaign.seeds("fig6");

    // The sweep compares hit counts ACROSS offsets, so every offset of
    // one microarchitecture uses that uarch's seed; only the campaign
    // seed varies the noise realization.
    u64 points = offsets.size() * configs.size();
    auto hits = campaign.scheduler().run(points, [&](u64 trial) {
        u64 offset = offsets[trial / configs.size()];
        std::size_t cfg_idx = trial % configs.size();
        StageExperimentOptions options;
        options.seed = seeds.trialSeed(cfg_idx);
        StageExperiment experiment(configs[cfg_idx], options);
        return experiment.fig6OpCacheHits(offset);
    });

    for (const auto& cfg : configs)
        campaign.noteUarch(cfg.name);

    std::vector<u64> dip_offset(configs.size(), 0);
    std::vector<u64> min_hits(configs.size(), ~0ull);

    u64 trial = 0;
    for (u64 offset : offsets) {
        std::printf("0x%03llx    ", static_cast<unsigned long long>(offset));
        for (std::size_t idx = 0; idx < configs.size(); ++idx) {
            u64 h = hits[trial++];
            std::printf("%10llu", static_cast<unsigned long long>(h));
            if (h < min_hits[idx]) {
                min_hits[idx] = h;
                dip_offset[idx] = offset;
            }
            // Metric named from the canonical PMC table: the sweep
            // counts PmcEvent::OpCacheHit, so the JSON key must match
            // what every other surface calls that event.
            campaign.sink()
                .experiment(configs[idx].name)
                .addSample(cpu::pmcEventName(cpu::PmcEvent::OpCacheHit),
                           static_cast<double>(h));
        }
        std::printf("\n");
    }

    for (std::size_t idx = 0; idx < configs.size(); ++idx) {
        auto& exp = campaign.sink().experiment(configs[idx].name);
        exp.setScalar("dip_offset", static_cast<double>(dip_offset[idx]));
        exp.setScalar("min_hits", static_cast<double>(min_hits[idx]));
    }

    std::printf("\nDip at offset: zen2 -> 0x%03llx, zen4 -> 0x%03llx "
                "(paper: 0xac0 on both)\n",
                static_cast<unsigned long long>(dip_offset[0]),
                static_cast<unsigned long long>(dip_offset[1]));
    return campaign.finish();
}
