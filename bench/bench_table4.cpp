/**
 * @file
 * Reproduces Table 4: physmap KASLR derandomization via P2 (transient
 * load through the __fdget_pos victim call and the Listing-3 disclosure
 * gadget) with L2 Prime+Probe on 2 MiB huge pages. Zen 1/2 only.
 *
 * Each (uarch, run) pair is one scheduler trial; the per-uarch JSON
 * experiments aggregate in trial order (jobs-independent).
 */

#include "attack/exploits.hpp"
#include "bench_util.hpp"

#include <cstdio>

using namespace phantom;
using namespace phantom::attack;

int
main()
{
    bench::header("Table 4: physmap KASLR derandomization (P2)");

    u64 runs = bench::runCount(10, 3);

    std::printf("%-6s %-22s %10s %14s   (%llu runs)\n", "uarch", "model",
                "accuracy", "median time",
                static_cast<unsigned long long>(runs));
    bench::rule();

    bench::Campaign campaign("bench_table4");
    auto seeds = campaign.seeds("table4");

    std::vector<cpu::MicroarchConfig> configs = {cpu::zen1(), cpu::zen2()};
    u64 trials = configs.size() * runs;
    auto results = campaign.scheduler().run(trials, [&](u64 trial) {
        const auto& cfg = configs[trial / runs];
        Testbed bed(cfg, kDefaultPhysBytes, seeds.trialSeed(trial));
        // The image base is known from the Table-3 step.
        PhysmapKaslrBreak exploit(bed, bed.kernel.imageBase());
        return exploit.run();
    });

    for (std::size_t idx = 0; idx < configs.size(); ++idx) {
        const auto& cfg = configs[idx];
        campaign.noteUarch(cfg.name);
        auto& exp = campaign.sink().experiment(cfg.name);

        SampleSet times;
        u64 successes = 0;
        for (u64 r = 0; r < runs; ++r) {
            const DerandResult& result = results[idx * runs + r];
            successes += result.success ? 1 : 0;
            times.add(result.seconds);
        }
        double accuracy = static_cast<double>(successes) /
                          static_cast<double>(runs);
        exp.addSamples("seconds", times);
        exp.setScalar("accuracy", accuracy);
        exp.setScalar("runs", static_cast<double>(runs));
        std::printf("%-6s %-22s %9.0f%% %11.4f s\n", cfg.name.c_str(),
                    cfg.model.c_str(), 100.0 * accuracy, times.median());
    }

    std::printf("Paper: zen1 100%% 101 s | zen2 90%% 106.5 s\n"
                "(Shape: physmap takes far longer than the 488-slot image "
                "scan of Table 3.)\n");
    return campaign.finish();
}
