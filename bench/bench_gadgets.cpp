/**
 * @file
 * Reproduces the §9.3 attack-surface comparison: with PHANTOM's P3, a
 * disclosure gadget needs only a *single* load after a conditional
 * branch (Kasper's "MDS gadgets") instead of the dependent double load
 * of classic Spectre-V1. On the Linux kernel the paper reports roughly a
 * 4x expansion (183 -> 722 gadgets). We scan a synthetic kernel-like
 * instruction mix and report the same two counts and their ratio.
 */

#include "analysis/gadget_scan.hpp"
#include "bench_util.hpp"

#include <cstdio>

using namespace phantom;
using namespace phantom::analysis;

int
main()
{
    bench::header("Section 9.3: speculative gadget surface expansion");

    u64 bytes = bench::fastMode() ? (1u << 20) : (8u << 20);
    std::printf("scanning %llu MiB of synthetic kernel-like text\n\n",
                static_cast<unsigned long long>(bytes >> 20));

    std::printf("%-8s %12s %16s %16s %10s\n", "window", "cond. jcc",
                "classic gadgets", "phantom gadgets", "ratio");
    bench::rule();

    auto text = syntheticKernelText(bytes, /*seed=*/271828);
    for (u32 window : {8u, 16u, 24u, 48u}) {
        GadgetScanOptions options;
        options.windowInsns = window;
        auto result = scanGadgets(text, 0, options);
        std::printf("%-8u %12llu %16llu %16llu %9.1fx\n", window,
                    static_cast<unsigned long long>(
                        result.conditionalBranches),
                    static_cast<unsigned long long>(result.classicGadgets),
                    static_cast<unsigned long long>(result.phantomGadgets),
                    result.expansionFactor());
    }

    std::printf("\nPaper (via Kasper, real Linux kernel): 183 classic -> "
                "722 phantom-exploitable, ~3.9x.\n"
                "Shape: single-load gadgets outnumber dependent "
                "double-load gadgets several-fold at every window.\n");
    return 0;
}
