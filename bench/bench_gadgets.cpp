/**
 * @file
 * Reproduces the §9.3 attack-surface comparison: with PHANTOM's P3, a
 * disclosure gadget needs only a *single* load after a conditional
 * branch (Kasper's "MDS gadgets") instead of the dependent double load
 * of classic Spectre-V1. On the Linux kernel the paper reports roughly a
 * 4x expansion (183 -> 722 gadgets). We scan a synthetic kernel-like
 * instruction mix and report the same two counts and their ratio.
 *
 * One scheduler trial per scan window; all counts are derived from the
 * fixed-seed synthetic text, so the JSON experiments are deterministic.
 */

#include "analysis/gadget_scan.hpp"
#include "bench_util.hpp"

#include <cstdio>

using namespace phantom;
using namespace phantom::analysis;

int
main()
{
    bench::header("Section 9.3: speculative gadget surface expansion");

    u64 bytes = bench::fastMode() ? (1u << 20) : (8u << 20);
    std::printf("scanning %llu MiB of synthetic kernel-like text\n\n",
                static_cast<unsigned long long>(bytes >> 20));

    std::printf("%-8s %12s %16s %16s %10s\n", "window", "cond. jcc",
                "classic gadgets", "phantom gadgets", "ratio");
    bench::rule();

    bench::Campaign campaign("bench_gadgets");

    auto text = syntheticKernelText(bytes, /*seed=*/271828);
    std::vector<u32> windows = {8, 16, 24, 48};
    auto results =
        campaign.scheduler().run(windows.size(), [&](u64 trial) {
            GadgetScanOptions options;
            options.windowInsns = windows[trial];
            return scanGadgets(text, 0, options);
        });

    for (std::size_t idx = 0; idx < windows.size(); ++idx) {
        u32 window = windows[idx];
        const auto& result = results[idx];
        std::printf("%-8u %12llu %16llu %16llu %9.1fx\n", window,
                    static_cast<unsigned long long>(
                        result.conditionalBranches),
                    static_cast<unsigned long long>(result.classicGadgets),
                    static_cast<unsigned long long>(result.phantomGadgets),
                    result.expansionFactor());

        char name[16];
        std::snprintf(name, sizeof name, "w%u", window);
        auto& exp = campaign.sink().experiment(name);
        exp.setScalar("window_insns", static_cast<double>(window));
        exp.setScalar("conditional_branches",
                      static_cast<double>(result.conditionalBranches));
        exp.setScalar("classic_gadgets",
                      static_cast<double>(result.classicGadgets));
        exp.setScalar("phantom_gadgets",
                      static_cast<double>(result.phantomGadgets));
        exp.setScalar("ratio", result.expansionFactor());
    }

    std::printf("\nPaper (via Kasper, real Linux kernel): 183 classic -> "
                "722 phantom-exploitable, ~3.9x.\n"
                "Shape: single-load gadgets outnumber dependent "
                "double-load gadgets several-fold at every window.\n");
    return campaign.finish();
}
