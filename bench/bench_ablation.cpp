/**
 * @file
 * Ablations over the design choices DESIGN.md calls out:
 *
 *  A1: phantom execute window (µop-queue squash latency) sweep — at
 *      which window size each observation stage appears, and when the
 *      MDS chain becomes exploitable.
 *  A2: §7.3 multi-set scoring — KASLR accuracy as a function of the
 *      number of accumulated cache sets under elevated noise.
 *  A3: BTB hash sensitivity — swapping the AMD hash for the
 *      privilege-salted Intel hash kills the cross-privilege attack.
 *  A4: Spectre window sweep — the §7.4 leak needs the window to cover
 *      the gadget chain up to the hijacked call.
 */

#include "attack/covert.hpp"
#include "attack/experiment.hpp"
#include "attack/exploits.hpp"
#include "isa/assembler.hpp"
#include "bench_util.hpp"

#include <cstdio>

using namespace phantom;
using namespace phantom::attack;

int
main()
{
    bench::header("A1: phantom execute window sweep (zen2 base)");
    std::printf("%-8s %6s %6s %6s %14s\n", "window", "IF", "ID", "EX",
                "mds leak acc");
    bench::rule();
    for (u32 window : {0u, 1u, 2u, 4u, 6u, 8u}) {
        auto cfg = cpu::zen2();
        cfg.transientExecUops = window;
        StageExperimentOptions options;
        options.trials = 3;
        StageExperiment experiment(cfg, options);
        auto obs =
            experiment.run(BranchKind::IndirectJmp, BranchKind::NonBranch);

        MdsLeakOptions mds_options;
        mds_options.bytes = 64;
        MdsGadgetLeak leak(cfg, mds_options);
        MdsLeakResult mds = leak.run();
        std::printf("%-8u %6d %6d %6d %13.0f%%\n", window,
                    obs.signals.fetch, obs.signals.decode,
                    obs.signals.execute,
                    mds.supported ? mds.accuracy * 100.0 : 0.0);
    }
    std::printf("(EX needs window >= 1; the MDS chain needs the nested "
                "add+load, window >= 2.)\n");

    bench::header("A2: section-7.3 multi-set scoring under noise");
    std::printf("%-8s %10s   (zen4 with 3x noise, %llu runs each)\n",
                "sets", "accuracy",
                static_cast<unsigned long long>(bench::runCount(20, 4)));
    bench::rule();
    {
        u64 runs = bench::runCount(20, 4);
        auto cfg = cpu::zen4();
        cfg.noise.l1iEvictChance *= 3.0;   // stress the channel
        for (u32 sets : {1u, 4u, 16u, 64u}) {
            u64 success = 0;
            for (u64 r = 0; r < runs; ++r) {
                Testbed bed(cfg, kDefaultPhysBytes, 909 + r * 53);
                KaslrOptions options;
                options.scoreSets = sets;
                KernelImageKaslrBreak exploit(bed, options);
                success += exploit.run().success ? 1 : 0;
            }
            std::printf("%-8u %9.0f%%\n", sets,
                        100.0 * static_cast<double>(success) /
                            static_cast<double>(runs));
        }
    }

    bench::header("A3: BTB hash sensitivity (root-cause check)");
    {
        for (auto hash : {bpu::BtbHashKind::Zen34,
                          bpu::BtbHashKind::IntelSalted}) {
            auto cfg = cpu::zen4();
            cfg.bpu.btb.hash = hash;
            Testbed bed(cfg, kDefaultPhysBytes, 11);
            PredictionInjector injector(bed);
            bool injected =
                injector.inject(bed.kernel.getpidGadgetVa(),
                                bed.kernel.imageBase() + 0x3000);
            std::printf("  hash=%-12s cross-priv injection possible: %s\n",
                        hash == bpu::BtbHashKind::Zen34 ? "zen34"
                                                        : "intel-salted",
                        injected ? "yes" : "no");
        }
        std::printf("  (Privilege-salting the hash removes the paper's "
                    "user->kernel attack surface.)\n");
    }

    bench::header("A4: Spectre window sweep for the section-7.4 leak");
    std::printf("%-8s %14s   (zen2, 64 bytes)\n", "window",
                "mds leak acc");
    bench::rule();
    for (u32 window : {2u, 4u, 8u, 16u, 48u}) {
        auto cfg = cpu::zen2();
        cfg.spectreWindowUops = window;
        MdsLeakOptions options;
        options.bytes = 64;
        MdsGadgetLeak leak(cfg, options);
        MdsLeakResult result = leak.run();
        std::printf("%-8u %13.0f%%\n", window,
                    result.supported ? result.accuracy * 100.0 : 0.0);
    }
    std::printf("(The gadget chain spends ~6 µops before the hijacked "
                "call; shorter windows leak nothing.)\n");

    bench::header("A5: the prefetcher confound of section 5.1");
    {
        // Victim code whose *next line* is monitored; no prediction is
        // ever injected. With the next-line prefetcher enabled the
        // I-cache (IF) channel reports a false signal; the µop-cache
        // (ID) channel does not — this is why the paper built it.
        for (bool prefetch : {false, true}) {
            auto cfg = cpu::zen2();
            cfg.noise = mem::NoiseConfig{};
            cfg.nextLinePrefetch = prefetch;
            Testbed bed(cfg);
            isa::Assembler code(0x400000);
            code.nop();
            code.hlt();
            bed.process.mapCode(0x400000, code.finish());
            VAddr monitored = 0x400040;
            bed.machine.clflushVirt(monitored);
            bed.runUser(0x400000);
            bool if_signal =
                bed.machine.timedFetchAccess(monitored, Privilege::User) <
                bed.machine.caches().config().latMem;
            bool id_signal = bed.machine.uopCache().contains(monitored);
            std::printf("  prefetcher=%d: IF channel=%d  ID channel=%d\n",
                        prefetch, if_signal, id_signal);
        }
        std::printf("  (IF alone cannot distinguish prefetch from "
                    "transient fetch; ID can.)\n");
    }
    return 0;
}
