/**
 * @file
 * Ablations over the design choices DESIGN.md calls out:
 *
 *  A1: phantom execute window (µop-queue squash latency) sweep — at
 *      which window size each observation stage appears, and when the
 *      MDS chain becomes exploitable.
 *  A2: §7.3 multi-set scoring — KASLR accuracy as a function of the
 *      number of accumulated cache sets under elevated noise.
 *  A3: BTB hash sensitivity — swapping the AMD hash for the
 *      privilege-salted Intel hash kills the cross-privilege attack.
 *  A4: Spectre window sweep — the §7.4 leak needs the window to cover
 *      the gadget chain up to the hijacked call.
 *  A5: the §5.1 prefetcher confound (serial; two deterministic probes).
 *
 * Sweep points and repeated KASLR runs are independent trials executed
 * through the campaign scheduler and reported in sweep order.
 */

#include "attack/covert.hpp"
#include "attack/experiment.hpp"
#include "attack/exploits.hpp"
#include "isa/assembler.hpp"
#include "bench_util.hpp"

#include <cstdio>

using namespace phantom;
using namespace phantom::attack;

int
main()
{
    bench::Campaign campaign("bench_ablation");
    campaign.noteUarch(cpu::zen2().name);

    bench::header("A1: phantom execute window sweep (zen2 base)");
    std::printf("%-8s %6s %6s %6s %14s\n", "window", "IF", "ID", "EX",
                "mds leak acc");
    bench::rule();
    {
        const std::vector<u32> windows = {0, 1, 2, 4, 6, 8};
        struct Point
        {
            StageObservation obs;
            bool supported;
            double accuracy;
        };
        auto seeds = campaign.seeds("a1");
        auto points = campaign.scheduler().run(
            windows.size(), [&](u64 trial) {
                auto cfg = cpu::zen2();
                cfg.transientExecUops = windows[trial];
                StageExperimentOptions options;
                options.trials = 3;
                options.seed = seeds.trialSeed(trial);
                StageExperiment experiment(cfg, options);
                Point point;
                point.obs = experiment.run(BranchKind::IndirectJmp,
                                           BranchKind::NonBranch);

                MdsLeakOptions mds_options;
                mds_options.bytes = 64;
                MdsGadgetLeak leak(cfg, mds_options);
                MdsLeakResult mds = leak.run();
                point.supported = mds.supported;
                point.accuracy = mds.supported ? mds.accuracy : 0.0;
                return point;
            });

        auto& exp = campaign.sink().experiment("a1_window_sweep");
        for (std::size_t i = 0; i < windows.size(); ++i) {
            const Point& p = points[i];
            std::printf("%-8u %6d %6d %6d %13.0f%%\n", windows[i],
                        p.obs.signals.fetch, p.obs.signals.decode,
                        p.obs.signals.execute, p.accuracy * 100.0);
            exp.addSample("mds_accuracy", p.accuracy);
        }
        std::printf("(EX needs window >= 1; the MDS chain needs the "
                    "nested add+load, window >= 2.)\n");
    }

    bench::header("A2: section-7.3 multi-set scoring under noise");
    u64 a2_runs = bench::runCount(20, 4);
    std::printf("%-8s %10s   (zen4 with 3x noise, %llu runs each)\n",
                "sets", "accuracy",
                static_cast<unsigned long long>(a2_runs));
    bench::rule();
    {
        const std::vector<u32> set_counts = {1, 4, 16, 64};
        auto base = cpu::zen4();
        base.noise.l1iEvictChance *= 3.0;   // stress the channel
        auto seeds = campaign.seeds("a2");

        // Trial layout: sets-sweep outer, repeat index inner. The seed
        // depends only on the repeat index so every set count is scored
        // against the same noise realizations (paired comparison).
        auto successes = campaign.scheduler().run(
            set_counts.size() * a2_runs, [&](u64 trial) {
                u32 sets = set_counts[trial / a2_runs];
                Testbed bed(base, kDefaultPhysBytes,
                            seeds.trialSeed(trial % a2_runs));
                KaslrOptions options;
                options.scoreSets = sets;
                KernelImageKaslrBreak exploit(bed, options);
                return exploit.run().success;
            });

        auto& exp = campaign.sink().experiment("a2_multiset");
        for (std::size_t i = 0; i < set_counts.size(); ++i) {
            u64 success = 0;
            for (u64 r = 0; r < a2_runs; ++r)
                success += successes[i * a2_runs + r] ? 1 : 0;
            double rate = static_cast<double>(success) /
                          static_cast<double>(a2_runs);
            std::printf("%-8u %9.0f%%\n", set_counts[i], 100.0 * rate);
            exp.addSample("kaslr_accuracy", rate);
        }
    }

    bench::header("A3: BTB hash sensitivity (root-cause check)");
    {
        const std::vector<bpu::BtbHashKind> hashes = {
            bpu::BtbHashKind::Zen34, bpu::BtbHashKind::IntelSalted};
        auto seeds = campaign.seeds("a3");
        auto injected = campaign.scheduler().run(
            hashes.size(), [&](u64 trial) {
                auto cfg = cpu::zen4();
                cfg.bpu.btb.hash = hashes[trial];
                Testbed bed(cfg, kDefaultPhysBytes,
                            seeds.trialSeed(trial));
                PredictionInjector injector(bed);
                return injector.inject(bed.kernel.getpidGadgetVa(),
                                       bed.kernel.imageBase() + 0x3000);
            });

        auto& exp = campaign.sink().experiment("a3_hash");
        for (std::size_t i = 0; i < hashes.size(); ++i) {
            const char* name = hashes[i] == bpu::BtbHashKind::Zen34
                                   ? "zen34"
                                   : "intel-salted";
            std::printf("  hash=%-12s cross-priv injection possible: %s\n",
                        name, injected[i] ? "yes" : "no");
            exp.setLabel(name, injected[i] ? "yes" : "no");
        }
        std::printf("  (Privilege-salting the hash removes the paper's "
                    "user->kernel attack surface.)\n");
    }

    bench::header("A4: Spectre window sweep for the section-7.4 leak");
    std::printf("%-8s %14s   (zen2, 64 bytes)\n", "window",
                "mds leak acc");
    bench::rule();
    {
        const std::vector<u32> windows = {2, 4, 8, 16, 48};
        auto accuracies = campaign.scheduler().run(
            windows.size(), [&](u64 trial) {
                auto cfg = cpu::zen2();
                cfg.spectreWindowUops = windows[trial];
                MdsLeakOptions options;
                options.bytes = 64;
                MdsGadgetLeak leak(cfg, options);
                MdsLeakResult result = leak.run();
                return result.supported ? result.accuracy : 0.0;
            });

        auto& exp = campaign.sink().experiment("a4_spectre_window");
        for (std::size_t i = 0; i < windows.size(); ++i) {
            std::printf("%-8u %13.0f%%\n", windows[i],
                        accuracies[i] * 100.0);
            exp.addSample("mds_accuracy", accuracies[i]);
        }
        std::printf("(The gadget chain spends ~6 µops before the hijacked "
                    "call; shorter windows leak nothing.)\n");
    }

    bench::header("A5: the prefetcher confound of section 5.1");
    {
        // Victim code whose *next line* is monitored; no prediction is
        // ever injected. With the next-line prefetcher enabled the
        // I-cache (IF) channel reports a false signal; the µop-cache
        // (ID) channel does not — this is why the paper built it.
        auto& exp = campaign.sink().experiment("a5_prefetch");
        for (bool prefetch : {false, true}) {
            auto cfg = cpu::zen2();
            cfg.noise = mem::NoiseConfig{};
            cfg.nextLinePrefetch = prefetch;
            Testbed bed(cfg);
            isa::Assembler code(0x400000);
            code.nop();
            code.hlt();
            bed.process.mapCode(0x400000, code.finish());
            VAddr monitored = 0x400040;
            bed.machine.clflushVirt(monitored);
            bed.runUser(0x400000);
            bool if_signal =
                bed.machine.timedFetchAccess(monitored, Privilege::User) <
                bed.machine.caches().config().latMem;
            bool id_signal = bed.machine.uopCache().contains(monitored);
            std::printf("  prefetcher=%d: IF channel=%d  ID channel=%d\n",
                        prefetch, if_signal, id_signal);
            exp.setLabel(prefetch ? "prefetch_on" : "prefetch_off",
                         std::string("IF=") + (if_signal ? "1" : "0") +
                             " ID=" + (id_signal ? "1" : "0"));
        }
        std::printf("  (IF alone cannot distinguish prefetch from "
                    "transient fetch; ID can.)\n");
    }
    return campaign.finish();
}
