/**
 * @file
 * Reproduces §6.3 and §8: mitigation effectiveness and cost.
 *
 *  - SuppressBPOnNonBr overhead on the UnixBench-proxy suite
 *    (paper: 0.69% single-core / 0.42% multi-core geometric mean).
 *  - O4: the bit stops transient execute at non-branches but not IF/ID.
 *  - O5: AutoIBRS does not stop the transient fetch of cross-privilege
 *    targets (P1 survives).
 *  - IBPB on privilege transitions stops all three primitives, at a
 *    large cost.
 *
 * The overhead suite runs dispatch through the campaign scheduler; the
 * stage/fetch probes are single seeded simulations recorded as JSON
 * labels and scalars (experiments: suppress_overhead, o4_stages,
 * o5_autoibrs, ibpb, stibp).
 */

#include "attack/covert.hpp"
#include "attack/experiment.hpp"
#include "attack/exploits.hpp"
#include "attack/workloads.hpp"
#include "bench_util.hpp"

#include <cstdio>

using namespace phantom;
using namespace phantom::attack;

namespace {

void
printStage(const char* label, const StageObservation& obs)
{
    std::printf("  %-44s IF=%d ID=%d EX=%d\n", label, obs.signals.fetch,
                obs.signals.decode, obs.signals.execute);
}

} // namespace

int
main()
{
    bench::header("Mitigations (paper section 6.3 / 8)");

    bench::Campaign campaign("bench_mitigations");
    for (const char* uarch : {"zen1", "zen2", "zen3", "zen4"})
        campaign.noteUarch(uarch);

    // ---- SuppressBPOnNonBr overhead ---------------------------------------
    {
        std::vector<cpu::MicroarchConfig> configs = {cpu::zen2(),
                                                     cpu::zen4()};
        auto overheads =
            campaign.scheduler().run(configs.size(), [&](u64 trial) {
                MitigationSetting setting;
                setting.suppressBpOnNonBr = true;
                return mitigationOverhead(configs[trial], setting);
            });
        std::printf("SuppressBPOnNonBr overhead (geomean over suite):\n");
        std::printf("  zen2: %.2f%%   zen4: %.2f%%   (paper UnixBench: "
                    "0.69%% single / 0.42%% multi)\n",
                    overheads[0] * 100.0, overheads[1] * 100.0);
        auto& exp = campaign.sink().experiment("suppress_overhead");
        exp.setScalar("zen2", overheads[0]);
        exp.setScalar("zen4", overheads[1]);
    }

    // ---- O4: SuppressBPOnNonBr vs the pipeline stages -----------------------
    {
        std::printf("\nO4: SuppressBPOnNonBr on zen2, jmp* training of a "
                    "non-branch victim:\n");
        auto& exp = campaign.sink().experiment("o4_stages");

        StageExperimentOptions options;
        options.trials = 3;
        StageExperiment off(cpu::zen2(), options);
        StageObservation obs =
            off.run(BranchKind::IndirectJmp, BranchKind::NonBranch);
        printStage("bit clear:", obs);
        exp.setLabel("bit_clear", stageCellName(obs));

        options.suppressBpOnNonBr = true;
        StageExperiment on(cpu::zen2(), options);
        obs = on.run(BranchKind::IndirectJmp, BranchKind::NonBranch);
        printStage("bit set (expect IF/ID only):", obs);
        exp.setLabel("bit_set_nonbranch", stageCellName(obs));

        obs = on.run(BranchKind::IndirectJmp, BranchKind::DirectJmp);
        printStage("bit set, branch victim (expect EX, unaffected):", obs);
        exp.setLabel("bit_set_branch", stageCellName(obs));

        // Zen 1 does not support the bit at all.
        StageExperimentOptions z1 = options;
        StageExperiment zen1(cpu::zen1(), z1);
        obs = zen1.run(BranchKind::IndirectJmp, BranchKind::NonBranch);
        printStage("zen1, bit set but unsupported (expect EX):", obs);
        exp.setLabel("zen1_unsupported", stageCellName(obs));
    }

    // ---- O5: AutoIBRS vs cross-privilege transient fetch --------------------
    {
        std::printf("\nO5: AutoIBRS on zen4, user-injected prediction at a "
                    "kernel nop:\n");
        auto& exp = campaign.sink().experiment("o5_autoibrs");
        for (bool auto_ibrs : {false, true}) {
            Testbed bed(cpu::zen4(), kDefaultPhysBytes, 7);
            bed.machine.msrs().setBit(cpu::msr::kEfer,
                                      cpu::msr::kAutoIbrsBit, auto_ibrs);
            bed.syscall(os::kSysGetpid);   // warm
            PredictionInjector injector(bed);
            VAddr victim = bed.kernel.getpidGadgetVa();
            VAddr target = bed.kernel.imageBase() + 0x3000;
            injector.inject(victim, target);
            bed.machine.clflushVirt(target);
            u64 decode0 = bed.machine.pmc().read(cpu::PmcEvent::SpecDecode);
            bed.syscall(os::kSysGetpid);
            u64 decode_delta =
                bed.machine.pmc().read(cpu::PmcEvent::SpecDecode) - decode0;
            Cycle lat =
                bed.machine.timedFetchAccess(target, Privilege::Kernel);
            bool fetched = lat < bed.machine.caches().config().latMem;
            std::printf("  AutoIBRS=%d: target fetched=%d, %s=%llu"
                        "  (paper: IF survives AutoIBRS)\n",
                        auto_ibrs, fetched,
                        cpu::pmcEventName(cpu::PmcEvent::SpecDecode),
                        static_cast<unsigned long long>(decode_delta));
            const char* key = auto_ibrs ? "fetched_autoibrs_on"
                                        : "fetched_autoibrs_off";
            exp.setLabel(key, fetched ? "yes" : "no");
        }
    }

    // ---- IBPB stops the covert channel -------------------------------------
    {
        std::printf("\nIBPB on every kernel entry vs the P1 channel "
                    "(zen3, 128 bits):\n");
        auto& exp = campaign.sink().experiment("ibpb");
        for (bool ibpb : {false, true}) {
            CovertOptions options;
            options.bits = 128;
            CovertChannel channel(cpu::zen3(), options);
            channel.testbed().machine.setIbpbOnSyscall(ibpb);
            CovertResult result = channel.runFetchChannel();
            std::printf("  ibpb=%d: accuracy %.1f%% (%s)\n", ibpb,
                        result.accuracy * 100.0,
                        ibpb ? "expect ~50% = channel dead"
                             : "expect ~100%");
            exp.setScalar(ibpb ? "accuracy_ibpb" : "accuracy_no_ibpb",
                          result.accuracy);
        }

        MitigationSetting setting;
        setting.ibpbEverySyscall = true;
        double cost = mitigationOverhead(cpu::zen3(), setting);
        std::printf("  IBPB-per-syscall overhead on the suite: %.1f%% "
                    "(the paper calls the penalty 'large')\n",
                    cost * 100.0);
        exp.setScalar("overhead", cost);
    }

    // ---- STIBP: cross-thread, not cross-privilege -----------------------------
    {
        std::printf("\nSTIBP restricts sibling-thread predictions (§2.4) "
                    "but not same-thread\nuser->kernel injection — the "
                    "PHANTOM path is unaffected:\n");
        Testbed bed(cpu::zen2(), kDefaultPhysBytes, 3);
        bed.machine.msrs().setBit(cpu::msr::kSpecCtrl,
                                  cpu::msr::kStibpBit, true);
        bed.syscall(os::kSysGetpid);
        PredictionInjector injector(bed);
        VAddr target = bed.kernel.imageBase() + 0x3000;
        injector.inject(bed.kernel.getpidGadgetVa(), target);
        bed.machine.clflushVirt(target);
        bed.syscall(os::kSysGetpid);
        bool fetched =
            bed.machine.timedFetchAccess(target, Privilege::Kernel) <
            bed.machine.caches().config().latMem;
        std::printf("  STIBP on, same-thread injection: target fetched=%d "
                    "(expect 1 — STIBP is no PHANTOM defence)\n",
                    fetched);
        campaign.sink().experiment("stibp").setLabel(
            "same_thread_fetched", fetched ? "yes" : "no");
    }
    return campaign.finish();
}
