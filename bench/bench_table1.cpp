/**
 * @file
 * Reproduces Table 1: for every asymmetric combination of training and
 * victim instruction, the deepest pipeline stage the mispredicted target
 * reaches (IF / ID / EX), per microarchitecture.
 *
 * Paper expectations: every combination fetches and decodes on AMD;
 * Zen 1/2 additionally execute; Intel shows IF/ID except for jmp*
 * victims; jmp* x jmp* is Spectre-V2 (EX everywhere); jmp* training of ret
 * victims is Retbleed (EX on Zen 1/2).
 *
 * Each (uarch, train, victim) cell is an independent trial dispatched
 * through the campaign scheduler; cells are printed in table order
 * after the join, so the output is identical for any PHANTOM_JOBS.
 */

#include "attack/experiment.hpp"
#include "bench_util.hpp"

#include <cstdio>

using namespace phantom;
using namespace phantom::attack;

int
main()
{
    // Canonical row/column order and cell naming shared with the diff
    // layer's paper-conformance checks (attack/experiment.hpp).
    const auto& kKinds = table1Kinds();
    const std::size_t kNumKinds = kKinds.size();
    bench::header("Table 1: training x victim -> deepest pipeline stage");
    std::printf("Cells: EX = transient execute, ID = transient decode,\n"
                "IF = transient fetch, . = no signal, -- = not applicable\n");

    u32 trials = static_cast<u32>(bench::runCount(5, 3));

    bench::Campaign campaign("bench_table1");
    auto seeds = campaign.seeds("table1");
    auto configs = cpu::allMicroarchs();

    // One trial per table cell, flattened over (uarch, train, victim).
    u64 cells = configs.size() * kNumKinds * kNumKinds;
    auto observations =
        campaign.scheduler().run(cells, [&](u64 trial) {
            std::size_t cfg_idx = trial / (kNumKinds * kNumKinds);
            std::size_t train_idx = (trial / kNumKinds) % kNumKinds;
            std::size_t victim_idx = trial % kNumKinds;

            StageExperimentOptions options;
            options.trials = trials;
            options.seed = seeds.trialSeed(trial);
            StageExperiment experiment(configs[cfg_idx], options);
            return experiment.run(kKinds[train_idx], kKinds[victim_idx]);
        });

    u64 trial = 0;
    u64 episodes = 0;
    for (const auto& cfg : configs) {
        std::printf("\n%-8s (%s)\n", cfg.name.c_str(), cfg.model.c_str());
        std::printf("%-12s", "train\\victim");
        for (BranchKind victim : kKinds)
            std::printf("%12s", branchKindName(victim));
        std::printf("\n");
        bench::rule();

        campaign.noteUarch(cfg.name);
        auto& exp = campaign.sink().experiment(cfg.name);
        for (BranchKind train : kKinds) {
            std::printf("%-12s", branchKindName(train));
            for (BranchKind victim : kKinds) {
                // Trial-order aggregation into the deterministic
                // registry: identical for any PHANTOM_JOBS.
                const StageObservation& obs = observations[trial];
                cpu::exportPmc(obs.pmc, campaign.deterministic());
                cpu::exportCycleAttribution(obs.attribution,
                                            campaign.deterministic());
                episodes += obs.episodes;

                const char* stage = stageCellName(observations[trial++]);
                std::printf("%12s", stage);
                exp.setLabel(std::string(branchKindName(train)) + " x " +
                                 branchKindName(victim),
                             stage);
            }
            std::printf("\n");
        }
    }
    campaign.deterministic().counter("episodes.total").inc(episodes);

    std::printf("\nPaper shape check: AMD cells reach >= ID; Zen 1/2 reach"
                " EX;\nZen 3/4 stop at ID; Intel jmp* victim columns are"
                " opaque;\njmp*xjmp* = Spectre-V2 (EX everywhere);"
                " jmp*xret = Retbleed (EX on Zen 1/2).\n");
    return campaign.finish();
}
