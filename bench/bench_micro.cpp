/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrate itself:
 * decode throughput, BTB lookup, cache access, end-to-end simulated IPS,
 * and kernel boot cost. These bound how long the table/figure harnesses
 * take and catch performance regressions in the model.
 *
 * The custom main wires the run through bench::Campaign: every
 * benchmark's items/s and ns/iteration land in the measured metrics
 * section of bench_micro.json (wall-clock numbers are never
 * deterministic, so they gate only with tolerance), and the set of
 * benchmarks that ran is recorded as deterministic experiment labels.
 * PHANTOM_FAST caps iteration counts so the regression gate stays fast.
 */

#include "attack/testbed.hpp"
#include "bench_util.hpp"
#include "isa/assembler.hpp"

#include <benchmark/benchmark.h>

using namespace phantom;

namespace {

/** Fast mode pins a small fixed iteration count instead of letting the
 *  library auto-scale towards its default min time. */
void
microArgs(benchmark::internal::Benchmark* b)
{
    if (bench::fastMode())
        b->Iterations(64);
}

void
BM_DecodeMixed(benchmark::State& state)
{
    isa::Assembler code(0x400000);
    for (int i = 0; i < 32; ++i) {
        code.movImm(isa::RAX, i);
        code.addImm(isa::RBX, i);
        code.load(isa::RCX, isa::RAX, 8);
        code.jcc(isa::Cond::Ne, VAddr{0x400000});
        code.nopN(7);
    }
    std::vector<u8> bytes = code.finish();
    for (auto _ : state) {
        std::size_t offset = 0;
        while (offset < bytes.size()) {
            isa::Insn insn =
                isa::decode(bytes.data() + offset, bytes.size() - offset);
            benchmark::DoNotOptimize(insn);
            offset += insn.length;
        }
    }
    state.SetItemsProcessed(state.iterations() * 160);
}
BENCHMARK(BM_DecodeMixed)->Apply(microArgs);

void
BM_BtbLookup(benchmark::State& state)
{
    bpu::BtbConfig config;
    config.hash = bpu::BtbHashKind::Zen34;
    bpu::Btb btb(config);
    for (u64 i = 0; i < 4096; ++i)
        btb.train(0x400000 + i * 16, isa::BranchType::DirectJump,
                  0x500000 + i, Privilege::User);
    u64 va = 0x400000;
    for (auto _ : state) {
        auto hit = btb.lookup(va, Privilege::User);
        benchmark::DoNotOptimize(hit);
        va += 16;
        if (va > 0x410000)
            va = 0x400000;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtbLookup)->Apply(microArgs);

void
BM_CacheAccess(benchmark::State& state)
{
    mem::CacheHierarchy caches;
    u64 pa = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(caches.dataAccess(pa));
        pa = (pa + 832) & 0xfffff;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Apply(microArgs);

void
BM_SimulatedLoopIps(benchmark::State& state)
{
    attack::Testbed bed(cpu::zen2(), 1ull << 30, 1);
    isa::Assembler code(0x400000);
    isa::Label loop = code.newLabel();
    code.movImm(isa::RCX, 10000);
    code.bind(loop);
    code.addImm(isa::RAX, 1);
    code.subImm(isa::RCX, 1);
    code.cmpImm(isa::RCX, 0);
    code.jcc(isa::Cond::Ne, loop);
    code.hlt();
    bed.process.mapCode(0x400000, code.finish());

    u64 instructions = 0;
    for (auto _ : state) {
        auto result = bed.runUser(0x400000, 100'000);
        instructions += result.instructions;
    }
    state.SetItemsProcessed(static_cast<i64>(instructions));
}
BENCHMARK(BM_SimulatedLoopIps)->Apply(microArgs);

void
BM_KernelBoot(benchmark::State& state)
{
    u64 seed = 1;
    for (auto _ : state) {
        attack::Testbed bed(cpu::zen3(), 1ull << 30, seed++);
        benchmark::DoNotOptimize(bed.kernel.imageBase());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelBoot)->Apply(microArgs);

void
BM_SyscallRoundTrip(benchmark::State& state)
{
    attack::Testbed bed(cpu::zen3(), 1ull << 30, 1);
    bed.syscall(os::kSysGetpid);
    for (auto _ : state) {
        auto result = bed.syscall(os::kSysGetpid);
        benchmark::DoNotOptimize(result.cycles);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SyscallRoundTrip)->Apply(microArgs);

/**
 * ConsoleReporter that additionally mirrors every run into the
 * campaign's measured metrics and the "micro" experiment's labels.
 */
class CampaignReporter : public benchmark::ConsoleReporter
{
  public:
    explicit CampaignReporter(bench::Campaign& campaign)
        : campaign_(campaign)
    {
    }

    void
    ReportRuns(const std::vector<Run>& reports) override
    {
        for (const Run& run : reports) {
            if (run.error_occurred)
                continue;
            std::string name = run.benchmark_name();
            std::string prefix = "micro." + name;
            double iters = static_cast<double>(run.iterations);
            if (iters > 0.0)
                campaign_.measured()
                    .gauge(prefix + ".ns_per_iteration")
                    .set(run.real_accumulated_time * 1e9 / iters);
            auto items = run.counters.find("items_per_second");
            if (items != run.counters.end())
                campaign_.measured()
                    .gauge(prefix + ".items_per_second")
                    .set(items->second.value);
            campaign_.sink().experiment("micro").setLabel(name, "run");
        }
        ConsoleReporter::ReportRuns(reports);
    }

  private:
    bench::Campaign& campaign_;
};

} // namespace

int
main(int argc, char** argv)
{
    bench::Campaign campaign("bench_micro");
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    CampaignReporter reporter(campaign);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    return campaign.finish();
}
