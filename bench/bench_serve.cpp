/**
 * @file
 * In-process load generator for the experiment daemon (src/serve).
 *
 * Two phases:
 *
 *  1. Load: D distinct specs × R repeats posted concurrently at the
 *     Server (no sockets — the protocol layer has its own smoke test;
 *     this bench measures the queue/batch/fork machinery). Per spec,
 *     every repeat must answer bit-identically; the seeded subtrees
 *     (stage label, episode count, a digest of the whole "experiments"
 *     tree) land in the sink as deterministic experiment data, and the
 *     client-side latency distribution (p50/p90/p99, throughput) lands
 *     in metrics.measured.
 *
 *  2. Admission: a capacity-2 paused server admits exactly 2 requests
 *     and bounces exactly 3 with 429 — deterministic by construction,
 *     so the accept/reject counts live in metrics.deterministic and
 *     are gated bit-exactly by bench_regress.
 *
 * Usage: bench_serve   (PHANTOM_FAST=1 for the CI-sized run;
 *                       PHANTOM_SERVE_QUEUE overrides the load-phase
 *                       queue capacity, strictly validated)
 */

#include "bench_util.hpp"
#include "runner/schema.hpp"
#include "serve/server.hpp"
#include "sim/digest.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <future>
#include <vector>

namespace {

using namespace phantom;
using bench::Campaign;
using runner::JsonValue;
using serve::ExperimentSpec;
using serve::ServeResult;
using serve::Server;
using serve::ServerOptions;

struct LoadSpec
{
    const char* name;   ///< experiment key in the JSON results
    const char* uarch;
    const char* train;
    const char* victim;
};

/** Experiment keys use short kind tokens (jmp_ind for "jmp*", nonbr
 *  for "non branch") — metric paths must stay shell-safe. */
constexpr LoadSpec kLoadSpecs[] = {
    {"zen2_jmp_ind_x_ret", "zen2", "jmp*", "ret"},
    {"zen1_jmp_ind_x_nonbr", "zen1", "jmp*", "non branch"},
    {"zen4_jcc_x_jmp", "zen4", "jcc", "jmp"},
    {"intel12_jmp_ind_x_jmp_ind", "intel12", "jmp*", "jmp*"},
};

ExperimentSpec
makeSpec(const LoadSpec& load, u64 seed)
{
    ExperimentSpec spec;
    spec.uarch = load.uarch;
    spec.train = load.train;
    spec.victim = load.victim;
    spec.seed = seed;
    spec.trials = 1;
    return spec;
}

double
percentile(std::vector<u64>& sorted_us, double p)
{
    if (sorted_us.empty())
        return 0.0;
    std::size_t index = static_cast<std::size_t>(
        p * static_cast<double>(sorted_us.size() - 1));
    return static_cast<double>(sorted_us[index]);
}

} // namespace

int
main()
{
    Campaign campaign("bench_serve");
    bench::header("bench_serve: experiment daemon load generator");

    const u64 repeats = bench::runCount(/*full=*/8, /*fast=*/3);
    constexpr std::size_t kSpecs =
        sizeof(kLoadSpecs) / sizeof(kLoadSpecs[0]);

    ServerOptions options;
    options.jobs = campaign.jobs();
    options.queueCapacity = static_cast<std::size_t>(
        runner::envU64Strict("PHANTOM_SERVE_QUEUE", 256, 1, 65536));
    Server server(options);

    // ---- Phase 1: concurrent load -----------------------------------
    // R waves of D concurrent requests: within a wave the dispatcher
    // batches identical keys; across waves the per-shard stores stay
    // warm, so from wave 2 on every request forks instead of training.
    std::vector<u64> latencies_us;
    std::vector<std::vector<ServeResult>> results(kSpecs);
    // Every marked stage duration of every request, accumulated into
    // serve.stage.* histograms after the load completes — the
    // server-side decomposition of the client-side latency above.
    std::vector<serve::RequestContext> contexts;
    int failures = 0;
    auto load_start = std::chrono::steady_clock::now();
    for (u64 wave = 0; wave < repeats; ++wave) {
        std::vector<
            std::future<std::pair<ServeResult, serve::RequestContext>>>
            futures;
        for (std::size_t d = 0; d < kSpecs; ++d) {
            ExperimentSpec spec = makeSpec(kLoadSpecs[d], campaign.seed());
            futures.push_back(
                std::async(std::launch::async, [&server, spec] {
                    serve::RequestContext ctx =
                        server.beginRequest("POST", "/run");
                    ServeResult result = server.run(spec, ctx);
                    ctx.status = result.status;
                    ctx.responseBytes = result.body.dump().size();
                    server.finishRequest(ctx);
                    return std::make_pair(std::move(result),
                                          std::move(ctx));
                }));
        }
        for (std::size_t d = 0; d < kSpecs; ++d) {
            auto [result, ctx] = futures[d].get();
            latencies_us.push_back(ctx.timeline.totalMicros());
            contexts.push_back(std::move(ctx));
            if (result.status != 200) {
                std::printf("FAIL %s wave %llu: HTTP %d\n",
                            kLoadSpecs[d].name,
                            static_cast<unsigned long long>(wave),
                            result.status);
                ++failures;
                continue;
            }
            results[d].push_back(std::move(result));
        }
    }
    double load_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      load_start)
            .count();
    server.waitIdle();

    // Per spec: every repeat bit-identical on the seeded subtrees, and
    // the subtree content goes into the sink as this bench's
    // deterministic experiment data.
    bench::rule();
    std::printf("%-28s %-6s %-8s %-10s %s\n", "spec", "stage", "episodes",
                "digest", "repeats identical");
    u64 episodes_total = 0;
    for (std::size_t d = 0; d < kSpecs; ++d) {
        if (results[d].empty()) {
            ++failures;
            continue;
        }
        const JsonValue& body = results[d].front().body;
        bool identical = true;
        for (const ServeResult& repeat : results[d])
            identical = identical &&
                *repeat.body.find("experiments") ==
                    *body.find("experiments") &&
                *repeat.body.findPath("metrics.deterministic") ==
                    *body.findPath("metrics.deterministic");
        if (!identical)
            ++failures;

        const JsonValue* experiments = body.find("experiments");
        const JsonValue* cell = experiments->find(kLoadSpecs[d].uarch);
        const std::string& stage =
            cell->find("labels")->members().begin()->second.string();
        u64 episodes = static_cast<u64>(
            cell->find("scalars")->find("episodes")->number());
        episodes_total += episodes;

        std::string seeded = experiments->dump() +
            body.findPath("metrics.deterministic")->dump();
        char digest[20];
        std::snprintf(digest, sizeof digest, "%016llx",
                      static_cast<unsigned long long>(
                          Digest::of(seeded.data(), seeded.size())));

        std::printf("%-28s %-6s %-8llu %-16s %s\n", kLoadSpecs[d].name,
                    stage.c_str(),
                    static_cast<unsigned long long>(episodes), digest,
                    identical ? "yes" : "NO");

        auto& experiment = campaign.sink().experiment(kLoadSpecs[d].name);
        experiment.setLabel("stage", stage);
        experiment.setLabel("digest", digest);
        experiment.setScalar("episodes", static_cast<double>(episodes));
        experiment.setScalar("repeats_identical", identical ? 1.0 : 0.0);
        campaign.noteUarch(kLoadSpecs[d].uarch);
    }

    campaign.deterministic().counter("serve.load.specs").inc(kSpecs);
    campaign.deterministic().counter("serve.load.repeats").inc(repeats);
    campaign.deterministic()
        .counter("serve.load.episodes_total")
        .inc(episodes_total);

    // Client-side latency/throughput — measured, varies run to run.
    std::sort(latencies_us.begin(), latencies_us.end());
    obs::MetricsRegistry& measured = campaign.measured();
    for (u64 us : latencies_us)
        measured.histogram("serve.client_micros").observe(us);

    // Per-stage decomposition from the request timelines: where inside
    // the server each request's wall-clock went (queue wait shows up as
    // "dequeued", the snapshot machinery as "train_or_fork", ...).
    for (const serve::RequestContext& ctx : contexts) {
        std::array<u64, obs::kRequestStages> stage_us =
            ctx.timeline.stageMicros();
        for (std::size_t i = 1; i < obs::kRequestStages; ++i) {
            obs::RequestStage stage = static_cast<obs::RequestStage>(i);
            if (!ctx.timeline.marked(stage))
                continue;
            measured
                .histogram(std::string("serve.stage.") +
                           obs::requestStageName(stage) + "_micros")
                .observe(stage_us[i]);
        }
    }
    measured.gauge("serve.latency_p50_us")
        .set(percentile(latencies_us, 0.50));
    measured.gauge("serve.latency_p90_us")
        .set(percentile(latencies_us, 0.90));
    measured.gauge("serve.latency_p99_us")
        .set(percentile(latencies_us, 0.99));
    measured.gauge("serve.throughput_rps")
        .set(load_seconds > 0.0
                 ? static_cast<double>(latencies_us.size()) / load_seconds
                 : 0.0);

    // Server-side view after the drain: fork-pooling effectiveness.
    JsonValue stats = server.statsz();
    const JsonValue* snap = stats.find("snap");
    for (const char* key :
         {"captures", "hits", "misses", "restores", "forks"})
        measured.counter(std::string("serve.snap.") + key)
            .inc(static_cast<u64>(snap->find(key)->number()));
    double forks = snap->find("forks")->number();
    double captures = snap->find("captures")->number();
    measured.gauge("serve.fork_reuse_rate")
        .set(forks / std::max(1.0, forks + captures));
    measured.gauge("serve.queue_capacity")
        .set(static_cast<double>(options.queueCapacity));

    bench::rule();
    std::printf("requests=%zu p50=%.0fus p90=%.0fus p99=%.0fus "
                "throughput=%.1f rps fork_reuse=%.2f\n",
                latencies_us.size(), percentile(latencies_us, 0.50),
                percentile(latencies_us, 0.90),
                percentile(latencies_us, 0.99),
                measured.gauge("serve.throughput_rps").value(),
                measured.gauge("serve.fork_reuse_rate").value());
    server.stop();

    // ---- Phase 2: deterministic admission control -------------------
    // Paused capacity-2 server: exactly 2 requests park, exactly 3
    // bounce with 429. No timing window — these counts are seeded-run
    // deterministic and bench_regress gates them bit-exactly.
    {
        ServerOptions admission_options;
        admission_options.jobs = 1;
        admission_options.queueCapacity = 2;
        Server admission(admission_options);
        admission.setDispatchPaused(true);

        ExperimentSpec spec = makeSpec(kLoadSpecs[0], campaign.seed());
        std::vector<std::future<ServeResult>> parked;
        for (int i = 0; i < 2; ++i)
            parked.push_back(std::async(
                std::launch::async,
                [&admission, spec] { return admission.run(spec); }));
        while (admission.queueDepth() < 2)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));

        u64 accepted = 2;
        u64 rejected = 0;
        for (int i = 0; i < 3; ++i) {
            ServeResult bounced = admission.run(spec);
            if (bounced.status == 429 && bounced.retryAfterS > 0)
                ++rejected;
            else
                ++failures;
        }
        admission.setDispatchPaused(false);
        for (auto& future : parked)
            if (future.get().status != 200) {
                ++failures;
                --accepted;
            }

        campaign.deterministic()
            .counter("serve.admission.accepted")
            .inc(accepted);
        campaign.deterministic()
            .counter("serve.admission.rejected")
            .inc(rejected);
        std::printf("admission: accepted=%llu rejected=%llu (capacity 2, "
                    "5 offered)\n",
                    static_cast<unsigned long long>(accepted),
                    static_cast<unsigned long long>(rejected));
    }

    if (failures != 0) {
        std::printf("bench_serve: %d failure(s)\n", failures);
        return 1;
    }
    return campaign.finish();
}
