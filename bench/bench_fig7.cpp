/**
 * @file
 * Reproduces §6.2 and Figure 7: reverse engineering the Zen 3/4
 * cross-privilege BTB functions.
 *
 *  1. Brute force (flip bit 47 + up to 5 more bits): succeeds instantly
 *     on Zen 2, finds nothing on Zen 3 — matching the paper's failed
 *     first attempt.
 *  2. Random collision sampling + bounded-weight GF(2) recovery (the
 *     paper used Z3): recovers the twelve Figure-7 parity functions.
 *  3. Validates the two collision masks the paper confirms on Zen 3/4.
 */

#include "attack/btb_re.hpp"
#include "bench_util.hpp"
#include "bpu/btb_hash.hpp"

#include <algorithm>
#include <cstdio>

using namespace phantom;
using namespace phantom::attack;

int
main()
{
    bench::header("Figure 7: cross-privilege BTB function recovery");

    // ---- Step 1: brute force ---------------------------------------------
    {
        BtbReverseEngineer re(cpu::zen2(), 17);
        auto masks = re.bruteForce(2);
        std::printf("zen2 brute force (<= 2 flips): %zu pattern(s) found "
                    "[%llu queries]\n",
                    masks.size(),
                    static_cast<unsigned long long>(re.queries()));
        for (u64 mask : masks)
            std::printf("    K ^ 0x%016llx collides\n",
                        static_cast<unsigned long long>(mask));
    }
    {
        unsigned flips = bench::fastMode() ? 4 : 6;
        BtbReverseEngineer re(cpu::zen3(), 17);
        auto masks = re.bruteForce(flips);
        std::printf("zen3 brute force (<= %u flips): %zu pattern(s) found "
                    "[%llu queries] (paper: none up to 6)\n",
                    flips, masks.size(),
                    static_cast<unsigned long long>(re.queries()));
    }

    // ---- Step 2: sampling + GF(2) solver ------------------------------------
    {
        BtbReverseEngineer re(cpu::zen3(), 23);
        u64 want = bench::runCount(28, 16);
        auto functions = re.recoverFunctions(want, 2'000'000);
        std::printf("\nzen3 solver: %zu collision samples -> %zu functions "
                    "[%llu queries]\n",
                    static_cast<std::size_t>(want), functions.size(),
                    static_cast<unsigned long long>(re.queries()));

        auto published = bpu::zen34ParityMasks();
        std::size_t matched = 0;
        for (u64 f : functions) {
            bool in_paper =
                std::find(published.begin(), published.end(), f) !=
                published.end();
            matched += in_paper ? 1 : 0;
            std::printf("    %-34s %s\n",
                        analysis::maskToString(f).c_str(),
                        in_paper ? "(= Figure 7)" : "(new)");
        }
        std::printf("Figure-7 functions recovered: %zu / %u\n", matched,
                    bpu::kNumZen34Functions);
    }

    // ---- Step 3: the paper's confirmed masks ---------------------------------
    {
        std::printf("\nConfirming the paper's collision masks on zen3 and "
                    "zen4:\n");
        for (const auto& cfg : {cpu::zen3(), cpu::zen4()}) {
            BtbReverseEngineer re(cfg, 31);
            for (u64 mask :
                 {0xffffbff800000000ull, 0xffff8003ff800000ull}) {
                VAddr candidate =
                    canonicalize(re.kernelVictimVa() ^ mask);
                bool hit = re.collides(candidate) && re.collides(candidate);
                std::printf("    %s: K ^ 0x%016llx -> %s\n",
                            cfg.name.c_str(),
                            static_cast<unsigned long long>(mask),
                            hit ? "collides" : "no collision");
            }
        }
    }
    return 0;
}
