/**
 * @file
 * Reproduces §6.2 and Figure 7: reverse engineering the Zen 3/4
 * cross-privilege BTB functions.
 *
 *  1. Brute force (flip bit 47 + up to 5 more bits): succeeds instantly
 *     on Zen 2, finds nothing on Zen 3 — matching the paper's failed
 *     first attempt.
 *  2. Random collision sampling + bounded-weight GF(2) recovery (the
 *     paper used Z3): recovers the twelve Figure-7 parity functions.
 *  3. Validates the two collision masks the paper confirms on Zen 3/4.
 *
 * The five blocks (two brute forces, the solver, two confirmation
 * sweeps) are independent; the campaign scheduler runs them
 * concurrently and the report is printed in paper order after the join.
 */

#include "attack/btb_re.hpp"
#include "bench_util.hpp"
#include "bpu/btb_hash.hpp"

#include <algorithm>
#include <cstdio>

using namespace phantom;
using namespace phantom::attack;

namespace {

constexpr u64 kPaperMasks[] = {0xffffbff800000000ull,
                               0xffff8003ff800000ull};

/** Result of one scheduled block; only the relevant fields are set. */
struct BlockResult
{
    std::vector<u64> masks;        ///< brute-force collision masks
    std::vector<u64> functions;    ///< recovered parity functions
    std::vector<bool> confirmed;   ///< per paper mask, collides?
    u64 queries = 0;
};

} // namespace

int
main()
{
    bench::header("Figure 7: cross-privilege BTB function recovery");

    unsigned zen3_flips = bench::fastMode() ? 4 : 6;
    u64 want_samples = bench::runCount(28, 16);

    bench::Campaign campaign("bench_fig7");

    // Block 0: zen2 brute force.  Block 1: zen3 brute force.
    // Block 2: zen3 solver.  Blocks 3/4: confirm paper masks on zen3/4.
    const std::vector<cpu::MicroarchConfig> confirm_cfgs = {cpu::zen3(),
                                                            cpu::zen4()};
    campaign.noteUarch(cpu::zen2().name);
    for (const auto& cfg : confirm_cfgs)
        campaign.noteUarch(cfg.name);
    auto blocks = campaign.scheduler().run(5, [&](u64 block) {
        BlockResult result;
        switch (block) {
          case 0: {
            BtbReverseEngineer re(cpu::zen2(), 17);
            result.masks = re.bruteForce(2);
            result.queries = re.queries();
            break;
          }
          case 1: {
            BtbReverseEngineer re(cpu::zen3(), 17);
            result.masks = re.bruteForce(zen3_flips);
            result.queries = re.queries();
            break;
          }
          case 2: {
            BtbReverseEngineer re(cpu::zen3(), 23);
            result.functions =
                re.recoverFunctions(want_samples, 2'000'000);
            result.queries = re.queries();
            break;
          }
          case 3:
          case 4: {
            BtbReverseEngineer re(confirm_cfgs[block - 3], 31);
            for (u64 mask : kPaperMasks) {
                VAddr candidate =
                    canonicalize(re.kernelVictimVa() ^ mask);
                result.confirmed.push_back(re.collides(candidate) &&
                                           re.collides(candidate));
            }
            result.queries = re.queries();
            break;
          }
        }
        return result;
    });

    // ---- Step 1: brute force ---------------------------------------------
    auto& brute = campaign.sink().experiment("brute_force");
    std::printf("zen2 brute force (<= 2 flips): %zu pattern(s) found "
                "[%llu queries]\n",
                blocks[0].masks.size(),
                static_cast<unsigned long long>(blocks[0].queries));
    for (u64 mask : blocks[0].masks)
        std::printf("    K ^ 0x%016llx collides\n",
                    static_cast<unsigned long long>(mask));
    brute.setScalar("zen2_patterns",
                    static_cast<double>(blocks[0].masks.size()));

    std::printf("zen3 brute force (<= %u flips): %zu pattern(s) found "
                "[%llu queries] (paper: none up to 6)\n",
                zen3_flips, blocks[1].masks.size(),
                static_cast<unsigned long long>(blocks[1].queries));
    brute.setScalar("zen3_patterns",
                    static_cast<double>(blocks[1].masks.size()));

    // ---- Step 2: sampling + GF(2) solver ------------------------------------
    {
        const auto& functions = blocks[2].functions;
        std::printf("\nzen3 solver: %zu collision samples -> %zu functions "
                    "[%llu queries]\n",
                    static_cast<std::size_t>(want_samples),
                    functions.size(),
                    static_cast<unsigned long long>(blocks[2].queries));

        auto published = bpu::zen34ParityMasks();
        std::size_t matched = 0;
        for (u64 f : functions) {
            bool in_paper =
                std::find(published.begin(), published.end(), f) !=
                published.end();
            matched += in_paper ? 1 : 0;
            std::printf("    %-34s %s\n",
                        analysis::maskToString(f).c_str(),
                        in_paper ? "(= Figure 7)" : "(new)");
        }
        std::printf("Figure-7 functions recovered: %zu / %u\n", matched,
                    bpu::kNumZen34Functions);

        auto& solver = campaign.sink().experiment("solver");
        solver.setScalar("recovered",
                         static_cast<double>(functions.size()));
        solver.setScalar("matched_figure7", static_cast<double>(matched));
        solver.setScalar("published",
                         static_cast<double>(bpu::kNumZen34Functions));
    }

    // ---- Step 3: the paper's confirmed masks ---------------------------------
    {
        std::printf("\nConfirming the paper's collision masks on zen3 and "
                    "zen4:\n");
        auto& confirm = campaign.sink().experiment("confirmed_masks");
        for (std::size_t idx = 0; idx < confirm_cfgs.size(); ++idx) {
            const auto& cfg = confirm_cfgs[idx];
            const auto& hits = blocks[3 + idx].confirmed;
            for (std::size_t m = 0; m < std::size(kPaperMasks); ++m) {
                char key[64];
                std::snprintf(key, sizeof key, "%s_0x%016llx",
                              cfg.name.c_str(),
                              static_cast<unsigned long long>(
                                  kPaperMasks[m]));
                confirm.setLabel(key,
                                 hits[m] ? "collides" : "no collision");
                std::printf("    %s: K ^ 0x%016llx -> %s\n",
                            cfg.name.c_str(),
                            static_cast<unsigned long long>(kPaperMasks[m]),
                            hits[m] ? "collides" : "no collision");
            }
        }
    }
    return campaign.finish();
}
