/**
 * @file
 * Reproduces Table 3: kernel image KASLR derandomization via P1
 * (transient fetch) with the §7.3 bounded multi-set scoring. Each run
 * "reboots" the machine (fresh KASLR seed), scans all 488 candidate
 * slots, and reports accuracy plus median time.
 *
 * Each (uarch, reboot) pair is one scheduler trial; the accuracy and
 * timing tables aggregate in trial order so the JSON "experiments"
 * section is identical for any PHANTOM_JOBS.
 */

#include "attack/exploits.hpp"
#include "bench_util.hpp"

#include <cstdio>

using namespace phantom;
using namespace phantom::attack;

int
main()
{
    bench::header("Table 3: kernel image KASLR derandomization (P1)");

    u64 runs = bench::runCount(100, 5);
    u32 sets = static_cast<u32>(
        bench::envOr("PHANTOM_SETS", bench::fastMode() ? 8 : 32));

    std::printf("%-6s %-22s %10s %14s   (%llu runs, %u sets)\n", "uarch",
                "model", "accuracy", "median time",
                static_cast<unsigned long long>(runs), sets);
    bench::rule();

    bench::Campaign campaign("bench_table3");
    auto seeds = campaign.seeds("table3");

    std::vector<cpu::MicroarchConfig> configs = {cpu::zen2(), cpu::zen3(),
                                                 cpu::zen4()};
    u64 trials = configs.size() * runs;
    auto results = campaign.scheduler().run(trials, [&](u64 trial) {
        const auto& cfg = configs[trial / runs];
        Testbed bed(cfg, kDefaultPhysBytes, seeds.trialSeed(trial));
        KaslrOptions options;
        options.scoreSets = sets;
        KernelImageKaslrBreak exploit(bed, options);
        return exploit.run();
    });

    for (std::size_t idx = 0; idx < configs.size(); ++idx) {
        const auto& cfg = configs[idx];
        campaign.noteUarch(cfg.name);
        auto& exp = campaign.sink().experiment(cfg.name);

        SampleSet times;
        u64 successes = 0;
        for (u64 r = 0; r < runs; ++r) {
            const DerandResult& result = results[idx * runs + r];
            successes += result.success ? 1 : 0;
            times.add(result.seconds);
        }
        double accuracy = static_cast<double>(successes) /
                          static_cast<double>(runs);
        exp.addSamples("seconds", times);
        exp.setScalar("accuracy", accuracy);
        exp.setScalar("runs", static_cast<double>(runs));
        exp.setScalar("score_sets", static_cast<double>(sets));
        std::printf("%-6s %-22s %9.0f%% %11.4f s\n", cfg.name.c_str(),
                    cfg.model.c_str(), 100.0 * accuracy, times.median());
    }

    std::printf("Paper: zen2 97%% 4.09 s | zen3 100%% 1.38 s | "
                "zen4 95%% 1.23 s\n"
                "(Simulated seconds are smaller: the model needs no "
                "noise-retry amplification.)\n");
    return campaign.finish();
}
