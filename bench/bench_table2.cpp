/**
 * @file
 * Reproduces Table 2: accuracy and leakage rate of the P1 (fetch) and
 * P2 (execute) covert channels, leaking a random payload through a
 * hijacked direct branch in a kernel module. Median of N runs.
 *
 * Absolute bits/s are far higher than the paper's (the simulated channel
 * needs no retries against real-world noise); the shape to check is the
 * accuracy band and that the execute channel exists only on Zen 1/2.
 *
 * Each (uarch, run) pair is one scheduler trial; per-run seeds come
 * from a per-channel seed substream so the JSON "experiments" section
 * is bit-identical across PHANTOM_JOBS settings.
 */

#include "attack/covert.hpp"
#include "bench_util.hpp"

#include <cstdio>

using namespace phantom;
using namespace phantom::attack;

namespace {

void
runChannel(bench::Campaign& campaign, bool fetch_channel)
{
    u64 runs = bench::runCount(10, 3);
    u64 bits = bench::envOr("PHANTOM_BITS", bench::fastMode() ? 512 : 4096);

    std::printf("%-6s %-22s %10s %14s\n", "uarch", "model", "accuracy",
                "rate");
    bench::rule();

    auto configs = fetch_channel
                       ? std::vector<cpu::MicroarchConfig>{cpu::zen1(),
                                                           cpu::zen2(),
                                                           cpu::zen3(),
                                                           cpu::zen4()}
                       : std::vector<cpu::MicroarchConfig>{cpu::zen1(),
                                                           cpu::zen2()};
    const char* channel_key = fetch_channel ? "p1" : "p2";
    auto seeds = campaign.seeds(channel_key);

    u64 trials = configs.size() * runs;
    auto results = campaign.scheduler().run(trials, [&](u64 trial) {
        const auto& cfg = configs[trial / runs];
        CovertOptions options;
        options.bits = bits;
        options.seed = seeds.trialSeed(trial);
        CovertChannel channel(cfg, options);
        return fetch_channel ? channel.runFetchChannel()
                             : channel.runExecuteChannel();
    });

    for (std::size_t idx = 0; idx < configs.size(); ++idx) {
        const auto& cfg = configs[idx];
        campaign.noteUarch(cfg.name);
        std::string name = std::string(channel_key) + "_" + cfg.name;
        auto& exp = campaign.sink().experiment(name);

        SampleSet accuracy;
        SampleSet rate;
        u64 supported = 0;
        for (u64 r = 0; r < runs; ++r) {
            const CovertResult& result = results[idx * runs + r];
            if (!result.supported)
                continue;
            ++supported;
            accuracy.add(result.accuracy);
            rate.add(result.bitsPerSecond);
        }
        exp.setScalar("runs", static_cast<double>(runs));
        exp.setScalar("supported_runs", static_cast<double>(supported));
        exp.setScalar("payload_bits", static_cast<double>(bits));
        exp.setLabel("channel", fetch_channel ? "fetch" : "execute");
        if (accuracy.count() == 0)
            continue;
        exp.addSamples("accuracy", accuracy);
        exp.addSamples("bits_per_second", rate);
        std::printf("%-6s %-22s %9.2f%% %11.0f b/s\n", cfg.name.c_str(),
                    cfg.model.c_str(), accuracy.median() * 100.0,
                    rate.median());
    }
}

} // namespace

int
main()
{
    bench::Campaign campaign("bench_table2");

    bench::header("Table 2 (top): P1 fetch covert channel");
    runChannel(campaign, true);
    std::printf("Paper: zen1 96.30%% 204 b/s | zen2 93.04%% 215 b/s | "
                "zen3 100%% 256 b/s | zen4 90.67%% 341 b/s\n");

    bench::header("Table 2 (bottom): P2 execute covert channel");
    runChannel(campaign, false);
    std::printf("Paper: zen1 100%% 256 b/s | zen2 99.28%% 292 b/s "
                "(Zen 1/2 only)\n");
    return campaign.finish();
}
