/**
 * @file
 * Reproduces Table 2: accuracy and leakage rate of the P1 (fetch) and
 * P2 (execute) covert channels, leaking a random payload through a
 * hijacked direct branch in a kernel module. Median of N runs.
 *
 * Absolute bits/s are far higher than the paper's (the simulated channel
 * needs no retries against real-world noise); the shape to check is the
 * accuracy band and that the execute channel exists only on Zen 1/2.
 */

#include "attack/covert.hpp"
#include "bench_util.hpp"

#include <cstdio>

using namespace phantom;
using namespace phantom::attack;

namespace {

void
runChannel(bool fetch_channel)
{
    u64 runs = bench::runCount(10, 3);
    u64 bits = bench::envOr("PHANTOM_BITS", bench::fastMode() ? 512 : 4096);

    std::printf("%-6s %-22s %10s %14s\n", "uarch", "model", "accuracy",
                "rate");
    bench::rule();

    auto configs = fetch_channel
                       ? std::vector<cpu::MicroarchConfig>{cpu::zen1(),
                                                           cpu::zen2(),
                                                           cpu::zen3(),
                                                           cpu::zen4()}
                       : std::vector<cpu::MicroarchConfig>{cpu::zen1(),
                                                           cpu::zen2()};
    for (const auto& cfg : configs) {
        SampleSet accuracy;
        SampleSet rate;
        for (u64 r = 0; r < runs; ++r) {
            CovertOptions options;
            options.bits = bits;
            options.seed = 1000 + r * 77;
            CovertChannel channel(cfg, options);
            CovertResult result = fetch_channel
                                      ? channel.runFetchChannel()
                                      : channel.runExecuteChannel();
            if (!result.supported)
                continue;
            accuracy.add(result.accuracy);
            rate.add(result.bitsPerSecond);
        }
        if (accuracy.count() == 0)
            continue;
        std::printf("%-6s %-22s %9.2f%% %11.0f b/s\n", cfg.name.c_str(),
                    cfg.model.c_str(), accuracy.median() * 100.0,
                    rate.median());
    }
}

} // namespace

int
main()
{
    bench::header("Table 2 (top): P1 fetch covert channel");
    runChannel(true);
    std::printf("Paper: zen1 96.30%% 204 b/s | zen2 93.04%% 215 b/s | "
                "zen3 100%% 256 b/s | zen4 90.67%% 341 b/s\n");

    bench::header("Table 2 (bottom): P2 execute covert channel");
    runChannel(false);
    std::printf("Paper: zen1 100%% 256 b/s | zen2 99.28%% 292 b/s "
                "(Zen 1/2 only)\n");
    return 0;
}
