/**
 * @file
 * Reproduces §7.4 "Leaking memory with MDS gadgets": a single-load
 * bounds-check gadget in a kernel module (Listing 4) is combined with P3
 * — a nested PHANTOM speculation that dispatches the secret-dependent
 * load from a hijacked call — to leak 4096 bytes of randomized kernel
 * data via Flush+Reload. Zen 2 in the paper; we run Zen 1 and Zen 2.
 */

#include "attack/exploits.hpp"
#include "bench_util.hpp"

#include <cstdio>

using namespace phantom;
using namespace phantom::attack;

int
main()
{
    bench::header("Section 7.4: arbitrary kernel leak via MDS gadget + P3");

    u64 runs = bench::runCount(10, 2);
    u64 bytes =
        bench::envOr("PHANTOM_BYTES", bench::fastMode() ? 256 : 4096);

    std::printf("%-6s %-22s %10s %10s %14s   (%llu runs x %llu B)\n",
                "uarch", "model", "accuracy", "no-signal", "bandwidth",
                static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(bytes));
    bench::rule();

    for (const auto& cfg : {cpu::zen1(), cpu::zen2()}) {
        SampleSet accuracy;
        SampleSet bandwidth;
        u64 runs_with_signal = 0;
        for (u64 r = 0; r < runs; ++r) {
            MdsLeakOptions options;
            options.bytes = bytes;
            options.seed = 777 + r * 13;
            MdsGadgetLeak leak(cfg, options);
            MdsLeakResult result = leak.run();
            if (!result.supported)
                continue;
            accuracy.add(result.accuracy);
            bandwidth.add(result.bytesPerSecond);
            runs_with_signal += (result.noSignal < result.bytes) ? 1 : 0;
        }
        if (accuracy.count() == 0) {
            std::printf("%-6s %-22s  (no transient execution window)\n",
                        cfg.name.c_str(), cfg.model.c_str());
            continue;
        }
        std::printf("%-6s %-22s %9.2f%% %10llu %11.0f B/s\n",
                    cfg.name.c_str(), cfg.model.c_str(),
                    accuracy.median() * 100.0,
                    static_cast<unsigned long long>(runs -
                                                    runs_with_signal),
                    bandwidth.median());
    }

    std::printf("Paper (zen2): 100%% accuracy, median 84 B/s, signal in "
                "8/10 runs.\n");

    // Negative control: on Zen 3/4 the nested window carries no execute
    // stage, so the gadget chain yields nothing.
    {
        MdsLeakOptions options;
        options.bytes = 64;
        MdsGadgetLeak leak(cpu::zen4(), options);
        MdsLeakResult result = leak.run();
        std::printf("zen4 negative control: supported=%s (paper: MDS "
                    "gadgets unexploitable beyond Zen 2)\n",
                    result.supported ? "yes (UNEXPECTED)" : "no");
    }
    return 0;
}
