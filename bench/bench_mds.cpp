/**
 * @file
 * Reproduces §7.4 "Leaking memory with MDS gadgets": a single-load
 * bounds-check gadget in a kernel module (Listing 4) is combined with P3
 * — a nested PHANTOM speculation that dispatches the secret-dependent
 * load from a hijacked call — to leak 4096 bytes of randomized kernel
 * data via Flush+Reload. Zen 2 in the paper; we run Zen 1 and Zen 2.
 *
 * The repeated runs per microarchitecture are independent trials: each
 * builds its own MdsGadgetLeak from a SeedStream-derived seed and
 * records accuracy/bandwidth into per-worker ShardStats, merged into
 * SampleSets at join — so the medians are identical for any
 * PHANTOM_JOBS.
 */

#include "attack/exploits.hpp"
#include "bench_util.hpp"

#include <cstdio>

using namespace phantom;
using namespace phantom::attack;

int
main()
{
    bench::header("Section 7.4: arbitrary kernel leak via MDS gadget + P3");

    u64 runs = bench::runCount(10, 2);
    u64 bytes =
        bench::envOr("PHANTOM_BYTES", bench::fastMode() ? 256 : 4096);

    std::printf("%-6s %-22s %10s %10s %14s   (%llu runs x %llu B)\n",
                "uarch", "model", "accuracy", "no-signal", "bandwidth",
                static_cast<unsigned long long>(runs),
                static_cast<unsigned long long>(bytes));
    bench::rule();

    bench::Campaign campaign("bench_mds");

    for (const auto& cfg : {cpu::zen1(), cpu::zen2()}) {
        campaign.noteUarch(cfg.name);
        auto seeds = campaign.seeds(cfg.name.c_str());
        std::vector<runner::ShardStats> shards(campaign.jobs());

        auto signals = campaign.scheduler().runSharded(
            runs, [&](u64 trial, unsigned worker) {
                MdsLeakOptions options;
                options.bytes = bytes;
                options.seed = seeds.trialSeed(trial);
                MdsGadgetLeak leak(cfg, options);
                MdsLeakResult result = leak.run();
                if (!result.supported)
                    return false;
                shards[worker].add("accuracy", trial, result.accuracy);
                shards[worker].add("bandwidth", trial,
                                   result.bytesPerSecond);
                return result.noSignal < result.bytes;
            });

        auto merged = runner::mergeShards(shards);
        const SampleSet& accuracy = merged["accuracy"];
        const SampleSet& bandwidth = merged["bandwidth"];
        u64 runs_with_signal = 0;
        for (bool s : signals)
            runs_with_signal += s ? 1 : 0;

        if (accuracy.count() == 0) {
            std::printf("%-6s %-22s  (no transient execution window)\n",
                        cfg.name.c_str(), cfg.model.c_str());
            continue;
        }
        std::printf("%-6s %-22s %9.2f%% %10llu %11.0f B/s\n",
                    cfg.name.c_str(), cfg.model.c_str(),
                    accuracy.median() * 100.0,
                    static_cast<unsigned long long>(runs -
                                                    runs_with_signal),
                    bandwidth.median());

        auto& exp = campaign.sink().experiment(cfg.name);
        exp.addSamples("accuracy", accuracy);
        exp.addSamples("bandwidth", bandwidth);
        exp.setScalar("runs", static_cast<double>(runs));
        exp.setScalar("runs_with_signal",
                      static_cast<double>(runs_with_signal));
        exp.setScalar("bytes", static_cast<double>(bytes));
    }

    std::printf("Paper (zen2): 100%% accuracy, median 84 B/s, signal in "
                "8/10 runs.\n");

    // Negative control: on Zen 3/4 the nested window carries no execute
    // stage, so the gadget chain yields nothing.
    {
        MdsLeakOptions options;
        options.bytes = 64;
        MdsGadgetLeak leak(cpu::zen4(), options);
        MdsLeakResult result = leak.run();
        std::printf("zen4 negative control: supported=%s (paper: MDS "
                    "gadgets unexploitable beyond Zen 2)\n",
                    result.supported ? "yes (UNEXPECTED)" : "no");
        campaign.sink()
            .experiment("negative_control")
            .setLabel("zen4_supported", result.supported ? "yes" : "no");
    }
    return campaign.finish();
}
