/**
 * @file
 * Staleness checker for the eight top-level documents, run as the
 * `doc_check` CTest.
 *
 *   doc_check REPO_ROOT
 *
 * Scans README.md, DESIGN.md, EXPERIMENTS.md, OBSERVABILITY.md,
 * ARCHITECTURE.md, SERVING.md, FUZZING.md and CHANGES.md and requires
 * that
 * everything they point at still exists in the tree:
 *
 *   - markdown links `[text](path)` — the relative path must exist
 *     (http(s)/mailto/anchor-only targets are skipped);
 *   - path tokens rooted at src/ bench/ tools/ tests/ cmake/ examples/
 *     — files must exist, `file:line` references must stay within the
 *     file, and extensionless names must be a directory or a CLI /
 *     bench / example whose `<name>.cpp` source exists (glob tokens
 *     like `bench/bench_*` are skipped);
 *   - `PHANTOM_*` tokens — every variable a document mentions must
 *     appear in the sources or CMake files, so a renamed or removed
 *     knob cannot linger in the docs;
 *   - the EXPERIMENTS.md environment-variable table is cross-checked
 *     against the set of `"PHANTOM_*"` string literals the C++ sources
 *     actually read, in both directions: a table row naming a variable
 *     no read site uses is stale, and a variable the code reads but the
 *     table omits is undocumented. Either direction fails the gate.
 *
 * Exit codes: 0 = all references resolve, 1 = at least one stale
 * reference (each printed as doc:line: message), 64 = usage error.
 * Deliberately links nothing — pure std C++ — so the docs gate cannot
 * be broken by a library refactor.
 */

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitStale = 1;
constexpr int kExitUsage = 64;

const char* const kDocs[] = {
    "README.md",        "DESIGN.md",       "EXPERIMENTS.md",
    "OBSERVABILITY.md", "ARCHITECTURE.md", "CHANGES.md",
    "SERVING.md",       "FUZZING.md",
};

/** Directory prefixes that make a token a checkable repo path. */
const char* const kPathPrefixes[] = {
    "src/", "bench/", "tools/", "tests/", "cmake/", "examples/",
};

/** Directories scanned (with the root CMakeLists.txt) to build the
 *  set of PHANTOM_* names the code actually knows about. */
const char* const kSourceDirs[] = {
    "src", "bench", "tools", "tests", "cmake", "examples",
};

bool
isTokenChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
        c == '.' || c == '/';
}

bool
isUpperTokenChar(char c)
{
    return (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '_';
}

bool
startsWith(const std::string& s, const char* prefix)
{
    return s.rfind(prefix, 0) == 0;
}

struct Checker {
    fs::path root;
    std::set<std::string> knownEnv;
    /** Variables with a read site: every complete, quoted
     *  PHANTOM_-prefixed string literal in a .cpp/.hpp under the
     *  scanned directories. */
    std::set<std::string> readEnv;
    /** Every PHANTOM_* token EXPERIMENTS.md mentions anywhere. */
    std::set<std::string> documentedEnv;
    std::map<std::string, std::size_t> lineCounts;
    int failures = 0;

    void
    fail(const std::string& doc, std::size_t line, const std::string& msg)
    {
        std::fprintf(stderr, "doc_check: %s:%zu: %s\n", doc.c_str(), line,
                     msg.c_str());
        ++failures;
    }

    /** Line count of a repo-relative file, cached across references. */
    std::size_t
    lineCount(const std::string& rel)
    {
        auto it = lineCounts.find(rel);
        if (it != lineCounts.end())
            return it->second;
        std::ifstream in(root / rel, std::ios::binary);
        std::size_t lines = 0;
        std::string line;
        while (std::getline(in, line))
            ++lines;
        lineCounts[rel] = lines;
        return lines;
    }

    /** Collect every PHANTOM_* identifier the sources mention. */
    void
    collectKnownEnv()
    {
        std::vector<fs::path> files{root / "CMakeLists.txt"};
        for (const char* dir : kSourceDirs) {
            std::error_code ec;
            fs::recursive_directory_iterator it(root / dir, ec);
            if (ec)
                continue;
            for (const fs::directory_entry& entry : it) {
                if (!entry.is_regular_file())
                    continue;
                std::string ext = entry.path().extension().string();
                if (ext == ".cpp" || ext == ".hpp" || ext == ".cmake" ||
                    ext == ".txt")
                    files.push_back(entry.path());
            }
        }
        for (const fs::path& file : files) {
            std::string ext = file.extension().string();
            bool cxx = ext == ".cpp" || ext == ".hpp";
            std::ifstream in(file, std::ios::binary);
            std::string line;
            while (std::getline(in, line)) {
                std::size_t pos = 0;
                while ((pos = line.find("PHANTOM_", pos)) !=
                       std::string::npos) {
                    std::size_t end = pos + 8;
                    while (end < line.size() && isUpperTokenChar(line[end]))
                        ++end;
                    if (end > pos + 8) {
                        std::string token = line.substr(pos, end - pos);
                        knownEnv.insert(token);
                        // A quoted full name in C++ is a read site (all
                        // env reads funnel the name through a string
                        // literal: std::getenv and the runner/env.hpp
                        // helpers).
                        if (cxx && pos > 0 && line[pos - 1] == '"' &&
                            end < line.size() && line[end] == '"')
                            readEnv.insert(token);
                    }
                    pos = end;
                }
            }
        }
    }

    /** `[text](target)` markdown links: relative targets must exist. */
    void
    checkMarkdownLinks(const std::string& doc, std::size_t lineNo,
                       const std::string& line)
    {
        std::size_t pos = 0;
        while ((pos = line.find("](", pos)) != std::string::npos) {
            std::size_t end = line.find(')', pos + 2);
            if (end == std::string::npos)
                break;
            std::string target = line.substr(pos + 2, end - pos - 2);
            pos = end + 1;
            if (target.empty() || target[0] == '#' ||
                startsWith(target, "http://") ||
                startsWith(target, "https://") ||
                startsWith(target, "mailto:"))
                continue;
            std::size_t hash = target.find('#');
            if (hash != std::string::npos)
                target.resize(hash);
            if (!fs::exists(root / target))
                fail(doc, lineNo, "broken link target: " + target);
        }
    }

    /** Path tokens rooted at a known top-level directory. */
    void
    checkPathTokens(const std::string& doc, std::size_t lineNo,
                    const std::string& line)
    {
        for (const char* prefix : kPathPrefixes) {
            std::size_t pos = 0;
            while ((pos = line.find(prefix, pos)) != std::string::npos) {
                if (pos > 0) {
                    char before = line[pos - 1];
                    // Mid-identifier hits ("snap/..." in "PHANSNAP/..")
                    // are not path references; '/' is fine — the token
                    // is the tail of a longer path like build/bench/x.
                    if (std::isalnum(static_cast<unsigned char>(before)) ||
                        before == '_' || before == '-') {
                        pos += 1;
                        continue;
                    }
                }
                std::size_t end = pos;
                while (end < line.size() && isTokenChar(line[end]))
                    ++end;
                std::string token = line.substr(pos, end - pos);
                // Glob references (bench/bench_*) name a family, not a
                // file; line references carry a :NUMBER suffix.
                bool glob = end < line.size() && line[end] == '*';
                std::size_t refLine = 0;
                if (end + 1 < line.size() && line[end] == ':' &&
                    std::isdigit(static_cast<unsigned char>(line[end + 1]))) {
                    std::size_t digits = end + 1;
                    refLine = 0;
                    while (digits < line.size() &&
                           std::isdigit(
                               static_cast<unsigned char>(line[digits]))) {
                        refLine = refLine * 10 +
                            static_cast<std::size_t>(line[digits] - '0');
                        ++digits;
                    }
                    end = digits;
                }
                pos = end;
                while (!token.empty() &&
                       (token.back() == '.' || token.back() == '/' ||
                        token.back() == ','))
                    token.pop_back();
                if (glob || token.empty() ||
                    token.find('/') == std::string::npos)
                    continue;
                checkPathToken(doc, lineNo, token, refLine);
            }
        }
    }

    void
    checkPathToken(const std::string& doc, std::size_t lineNo,
                   const std::string& token, std::size_t refLine)
    {
        fs::path full = root / token;
        std::string last = token.substr(token.rfind('/') + 1);
        if (last.find('.') != std::string::npos) {
            // Has an extension: a concrete file, maybe with :line.
            if (!fs::is_regular_file(full)) {
                fail(doc, lineNo, "missing file: " + token);
                return;
            }
            if (refLine > 0 && refLine > lineCount(token))
                fail(doc, lineNo,
                     token + ":" + std::to_string(refLine) +
                         " is past the end of the file (" +
                         std::to_string(lineCount(token)) + " lines)");
            return;
        }
        // Extensionless: a directory, or a CLI/bench/example name whose
        // source is <token>.cpp.
        if (fs::is_directory(full) || fs::is_regular_file(full))
            return;
        fs::path source = full;
        source += ".cpp";
        if (fs::is_regular_file(source))
            return;
        fail(doc, lineNo,
             "unresolved reference: " + token + " (no such directory and no " +
                 token + ".cpp)");
    }

    /** PHANTOM_* tokens must name variables the code knows. */
    void
    checkEnvTokens(const std::string& doc, std::size_t lineNo,
                   const std::string& line)
    {
        std::size_t pos = 0;
        while ((pos = line.find("PHANTOM_", pos)) != std::string::npos) {
            std::size_t end = pos + 8;
            while (end < line.size() && isUpperTokenChar(line[end]))
                ++end;
            std::string token = line.substr(pos, end - pos);
            // `PHANTOM_*` (a wildcard over the family) and bracket
            // shorthand like PHANTOM_SNAP[_DIR] leave a valid prefix;
            // a bare "PHANTOM_" match is the wildcard itself.
            bool wildcard = end < line.size() && line[end] == '*';
            pos = end;
            if (wildcard || token.size() == 8)
                continue;
            if (knownEnv.count(token) == 0)
                fail(doc, lineNo,
                     token + " is not referenced by any source or CMake file");
        }
    }

    /**
     * EXPERIMENTS.md carries the authoritative environment-variable
     * table; a row there is a claim that the code reads the variable,
     * so every table row's leading variable must match a read site.
     */
    void
    checkEnvTableRow(const std::string& doc, std::size_t lineNo,
                     const std::string& line)
    {
        if (line.rfind("| `PHANTOM_", 0) != 0)
            return;
        std::size_t pos = 3;
        std::size_t end = pos + 8;
        while (end < line.size() && isUpperTokenChar(line[end]))
            ++end;
        std::string token = line.substr(pos, end - pos);
        if (token.size() > 8 && readEnv.count(token) == 0)
            fail(doc, lineNo,
                 token + " is documented in the variable table but no "
                         "source reads it as a string literal");
    }

    /** Reverse direction: a variable the code reads must be in the
     *  EXPERIMENTS.md table (documentedEnv holds every mention). */
    void
    checkUndocumentedEnv()
    {
        for (const std::string& token : readEnv)
            if (documentedEnv.count(token) == 0)
                fail("EXPERIMENTS.md", 0,
                     token + " is read by the sources but missing from "
                             "the environment-variable table");
    }

    void
    checkDoc(const std::string& doc)
    {
        std::ifstream in(root / doc, std::ios::binary);
        if (!in) {
            fail(doc, 0, "document missing");
            return;
        }
        std::string line;
        std::size_t lineNo = 0;
        bool experiments = doc == "EXPERIMENTS.md";
        while (std::getline(in, line)) {
            ++lineNo;
            checkMarkdownLinks(doc, lineNo, line);
            checkPathTokens(doc, lineNo, line);
            checkEnvTokens(doc, lineNo, line);
            if (experiments) {
                checkEnvTableRow(doc, lineNo, line);
                std::size_t pos = 0;
                while ((pos = line.find("PHANTOM_", pos)) !=
                       std::string::npos) {
                    std::size_t end = pos + 8;
                    while (end < line.size() && isUpperTokenChar(line[end]))
                        ++end;
                    if (end > pos + 8)
                        documentedEnv.insert(line.substr(pos, end - pos));
                    pos = end;
                }
            }
        }
    }
};

} // namespace

int
main(int argc, char** argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: doc_check REPO_ROOT\n");
        return kExitUsage;
    }
    Checker checker;
    checker.root = argv[1];
    if (!fs::is_directory(checker.root)) {
        std::fprintf(stderr, "doc_check: not a directory: %s\n", argv[1]);
        return kExitUsage;
    }
    checker.collectKnownEnv();
    for (const char* doc : kDocs)
        checker.checkDoc(doc);
    checker.checkUndocumentedEnv();
    if (checker.failures > 0) {
        std::fprintf(stderr, "doc_check: %d stale reference%s\n",
                     checker.failures, checker.failures == 1 ? "" : "s");
        return kExitStale;
    }
    std::printf("doc_check: %zu documents clean\n",
                sizeof(kDocs) / sizeof(kDocs[0]));
    return kExitOk;
}
