/**
 * @file
 * Snapshot image inspector.
 *
 *   snap_inspect IMAGE          dump header, section table and digests
 *   snap_inspect IMAGE IMAGE2   diff two images by component digest
 *
 * Exit codes: 0 on success (diff mode: images equivalent), 1 on a
 * malformed/unreadable image, 2 in diff mode when the images differ.
 */

#include "snap/image.hpp"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace phantom;

namespace {

bool
readFile(const char* path, std::vector<u8>& out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "snap_inspect: cannot open %s\n", path);
        return false;
    }
    out.assign(std::istreambuf_iterator<char>(in),
               std::istreambuf_iterator<char>());
    return true;
}

int
dump(const char* path)
{
    std::vector<u8> bytes;
    if (!readFile(path, bytes))
        return 1;

    snap::InspectResult r = snap::inspect(bytes);
    if (!r.ok) {
        std::fprintf(stderr, "snap_inspect: %s: %s\n", path,
                     r.error.c_str());
        return 1;
    }

    const snap::ImageInfo& info = r.info;
    std::printf("image:           %s (%llu bytes)\n", path,
                static_cast<unsigned long long>(bytes.size()));
    std::printf("version:         %u\n", info.version);
    std::printf("uarch:           %s\n", info.uarch.c_str());
    std::printf("installed bytes: %llu\n",
                static_cast<unsigned long long>(info.installedBytes));
    std::printf("total digest:    %016llx\n",
                static_cast<unsigned long long>(info.totalDigest));
    std::printf("sections:        %zu\n", info.sections.size());
    std::printf("  %-10s %10s %10s  %s\n", "section", "offset",
                "length", "digest");
    for (const snap::SectionInfo& s : info.sections)
        std::printf("  %-10s %10llu %10llu  %016llx\n", s.name.c_str(),
                    static_cast<unsigned long long>(s.offset),
                    static_cast<unsigned long long>(s.length),
                    static_cast<unsigned long long>(s.digest));
    return 0;
}

int
diff(const char* path_a, const char* path_b)
{
    std::vector<u8> bytes_a, bytes_b;
    if (!readFile(path_a, bytes_a) || !readFile(path_b, bytes_b))
        return 1;

    snap::LoadResult a = snap::load(bytes_a);
    if (!a.ok) {
        std::fprintf(stderr, "snap_inspect: %s: %s\n", path_a,
                     a.error.c_str());
        return 1;
    }
    snap::LoadResult b = snap::load(bytes_b);
    if (!b.ok) {
        std::fprintf(stderr, "snap_inspect: %s: %s\n", path_b,
                     b.error.c_str());
        return 1;
    }

    std::vector<snap::ComponentDigest> da = componentDigests(a.state);
    std::vector<snap::ComponentDigest> db = componentDigests(b.state);
    // componentDigests() emits a fixed component set in a stable order,
    // so the two lists always pair up index-by-index.
    unsigned differing = 0;
    std::printf("  %-10s %-16s  %-16s\n", "component", "A", "B");
    for (std::size_t i = 0; i < da.size() && i < db.size(); ++i) {
        bool same = da[i].digest == db[i].digest;
        differing += same ? 0 : 1;
        std::printf("%s %-10s %016llx  %016llx\n", same ? " " : "!",
                    da[i].name.c_str(),
                    static_cast<unsigned long long>(da[i].digest),
                    static_cast<unsigned long long>(db[i].digest));
    }
    if (differing == 0) {
        std::printf("images are state-equivalent\n");
        return 0;
    }
    std::printf("%u component(s) differ\n", differing);
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc == 2)
        return dump(argv[1]);
    if (argc == 3)
        return diff(argv[1], argv[2]);
    std::fprintf(stderr, "usage: snap_inspect IMAGE [IMAGE2]\n");
    return 1;
}
