/**
 * @file
 * The differential-fuzz campaign driver (FUZZING.md).
 *
 *   fuzz_campaign [--budget N] [--seed S] [--jobs N] [--uarch A,B,..]
 *                 [--no-minimize] [--corpus DIR] [--json FILE]
 *                 [--max-insns N]
 *       Generate and check N programs; minimize and (with --corpus)
 *       record divergences. Prints a one-line verdict per oracle.
 *   fuzz_campaign --replay DIR [--jobs N]
 *       Replay every *.phz regression entry in DIR; all four oracles
 *       must come back clean.
 *   fuzz_campaign --emit DIR
 *       Write the preventive seed corpus: for each high-risk generator
 *       class (self-modifying stores, RSB patterns, clflush-of-code),
 *       the first seed whose program exercises it and passes every
 *       oracle today. These entries pin current behavior.
 *
 * Environment: PHANTOM_FUZZ_BUDGET / PHANTOM_FUZZ_CORPUS /
 * PHANTOM_FUZZ_MAX_INSNS supply defaults for the matching flags;
 * PHANTOM_SEED seeds the campaign; PHANTOM_JOBS sizes the scheduler.
 * PHANTOM_PROF=1 adds a host-profile section (fuzz.generate /
 * fuzz.oracle / fuzz.minimize phases) to the --json document.
 *
 * Exit codes: 0 = clean, 1 = divergence (or replay regression),
 * 2 = I/O failure, 64 = usage error — the json_check convention.
 */

#include "fuzz/campaign.hpp"
#include "runner/env.hpp"
#include "runner/prof_json.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace phantom;
using namespace phantom::fuzz;

namespace {

constexpr int kExitClean = 0;
constexpr int kExitDiverged = 1;
constexpr int kExitIo = 2;
constexpr int kExitUsage = 64;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: fuzz_campaign [--budget N] [--seed S] [--jobs N]\n"
        "                     [--uarch A,B,...] [--no-minimize]\n"
        "                     [--corpus DIR] [--json FILE]\n"
        "                     [--max-insns N]\n"
        "       fuzz_campaign --replay DIR [--jobs N]\n"
        "       fuzz_campaign --emit DIR\n");
    return kExitUsage;
}

bool
parseU64Arg(const char* text, u64& out)
{
    if (text == nullptr || *text == '\0')
        return false;
    char* end = nullptr;
    out = std::strtoull(text, &end, 0);
    return end != text && *end == '\0';
}

std::vector<std::string>
splitList(const std::string& text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        if (comma > start)
            out.push_back(text.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

bool
writeDocument(const std::string& path, const runner::JsonValue& doc)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "fuzz_campaign: cannot write %s\n",
                     path.c_str());
        return false;
    }
    out << doc.dump(2) << "\n";
    out.flush();
    return static_cast<bool>(out);
}

int
runCampaignMode(const CampaignOptions& options, const std::string& json)
{
    auto start = std::chrono::steady_clock::now();
    CampaignSummary summary = runCampaign(options);
    u64 wall_ns = static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());

    std::printf("fuzz: %llu programs, %llu stmts, seed 0x%llx, "
                "jobs %u\n",
                static_cast<unsigned long long>(summary.programs),
                static_cast<unsigned long long>(summary.totalStmts),
                static_cast<unsigned long long>(summary.seed),
                summary.jobs);
    for (int o = 0; o < kOracleCount; ++o) {
        std::printf(
            "fuzz:   %-22s ran %llu skipped %llu diverged %llu\n",
            oracleName(static_cast<Oracle>(o)),
            static_cast<unsigned long long>(summary.oracleRan[o]),
            static_cast<unsigned long long>(summary.oracleSkipped[o]),
            static_cast<unsigned long long>(summary.oracleDiverged[o]));
    }
    for (const Divergence& div : summary.divergences) {
        std::printf("fuzz: DIVERGENCE trial %llu seed 0x%llx uarch %s "
                    "oracle %s: %s (minimized %llu -> %llu stmts%s%s)\n",
                    static_cast<unsigned long long>(div.trial),
                    static_cast<unsigned long long>(div.seed),
                    div.uarch.c_str(), oracleName(div.oracle),
                    div.detail.c_str(),
                    static_cast<unsigned long long>(div.stmtsBefore),
                    static_cast<unsigned long long>(div.stmtsAfter),
                    div.corpusFile.empty() ? "" : ", corpus ",
                    div.corpusFile.c_str());
    }

    if (!json.empty()) {
        runner::JsonValue doc = summaryToJson(summary);
        if (obs::prof::enabled())
            doc.set("profile", runner::profileToJson(obs::prof::collect(),
                                                     wall_ns));
        if (!writeDocument(json, doc))
            return kExitIo;
    }
    return summary.clean() ? kExitClean : kExitDiverged;
}

int
runReplayMode(const std::string& dir, unsigned jobs)
{
    std::vector<std::string> paths = listCorpus(dir);
    if (paths.empty()) {
        std::fprintf(stderr,
                     "fuzz_campaign: no *.phz entries under %s\n",
                     dir.c_str());
        return kExitIo;
    }
    OracleOptions options;
    options.maxInsns =
        runner::envU64Or("PHANTOM_FUZZ_MAX_INSNS", options.maxInsns);
    std::vector<ReplayResult> results = replayCorpus(paths, options, jobs);

    int failures = 0;
    bool io_failure = false;
    for (const ReplayResult& result : results) {
        if (result.clean) {
            std::printf("fuzz: replay ok %s\n", result.path.c_str());
            continue;
        }
        if (!result.parsed)
            io_failure = true;
        ++failures;
        std::fprintf(stderr, "fuzz: replay FAILED %s: %s\n",
                     result.path.c_str(), result.detail.c_str());
    }
    std::printf("fuzz: replayed %zu corpus entries, %d failures\n",
                results.size(), failures);
    if (obs::prof::enabled()) {
        obs::prof::Report report = obs::prof::collect();
        for (const obs::prof::PhaseReport& phase : report.phases)
            std::printf("fuzz: prof %-16s count %llu self %.2f ms\n",
                        obs::prof::phaseName(phase.phase),
                        static_cast<unsigned long long>(phase.count),
                        phase.estimatedSelfNs() / 1e6);
    }
    if (io_failure)
        return kExitIo;
    return failures == 0 ? kExitClean : kExitDiverged;
}

/** Preventive corpus: the first seed per high-risk class that both
 *  exercises the class and passes every oracle today. */
int
runEmitMode(const std::string& dir)
{
    struct Want
    {
        GenClass cls;
        const char* why;
    };
    const Want wants[] = {
        {GenClass::SelfModify, "self-modifying store patches a nop slot"},
        {GenClass::RsbPattern, "call/ret + push-addr/ret RSB shapes"},
        {GenClass::CacheFlush, "clflush of data and program code"},
    };

    OracleOptions oracle_options;
    ProgramGenerator generator;
    int written = 0;
    for (const Want& want : wants) {
        bool found = false;
        for (u64 seed = 1; seed <= 512 && !found; ++seed) {
            Program program = generator.generate(seed);
            if (program.classCounts[static_cast<int>(want.cls)] == 0)
                continue;
            if (checkProgram(program, oracle_options).anyDivergence())
                continue;

            CorpusEntry entry;
            entry.program = program;
            entry.uarch = oracle_options.uarch;
            entry.note = std::string("preventive: ") + want.why;
            std::string path = dir + "/seed_" +
                               genClassName(want.cls) + ".phz";
            std::string error;
            if (!writeEntryFile(path, entry, &error)) {
                std::fprintf(stderr, "fuzz_campaign: %s\n",
                             error.c_str());
                return kExitIo;
            }
            std::printf("fuzz: emitted %s (seed 0x%llx, %zu stmts)\n",
                        path.c_str(),
                        static_cast<unsigned long long>(seed),
                        program.stmts.size());
            ++written;
            found = true;
        }
        if (!found) {
            std::fprintf(stderr,
                         "fuzz_campaign: no clean seed exercises %s\n",
                         genClassName(want.cls));
            return kExitDiverged;
        }
    }
    std::printf("fuzz: emitted %d preventive entries\n", written);
    return kExitClean;
}

} // namespace

int
main(int argc, char** argv)
{
    CampaignOptions options;
    options.budget = runner::envU64Or("PHANTOM_FUZZ_BUDGET", 200);
    options.seed = runner::envU64Or("PHANTOM_SEED", 1);
    options.oracle.maxInsns = runner::envU64Or("PHANTOM_FUZZ_MAX_INSNS",
                                               options.oracle.maxInsns);
    options.corpusDir = runner::envStringOr("PHANTOM_FUZZ_CORPUS");

    std::string json;
    std::string replay_dir;
    std::string emit_dir;
    unsigned jobs = 0;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        u64 parsed = 0;
        if (arg == "--budget") {
            if (!parseU64Arg(value(), options.budget))
                return usage();
        } else if (arg == "--seed") {
            if (!parseU64Arg(value(), options.seed))
                return usage();
        } else if (arg == "--jobs") {
            if (!parseU64Arg(value(), parsed) || parsed == 0)
                return usage();
            jobs = static_cast<unsigned>(parsed);
        } else if (arg == "--uarch") {
            const char* list = value();
            if (list == nullptr)
                return usage();
            options.uarchMatrix = splitList(list);
            if (options.uarchMatrix.empty())
                return usage();
        } else if (arg == "--max-insns") {
            if (!parseU64Arg(value(), options.oracle.maxInsns))
                return usage();
        } else if (arg == "--minimize") {
            options.minimizeDivergences = true;
        } else if (arg == "--no-minimize") {
            options.minimizeDivergences = false;
        } else if (arg == "--corpus") {
            const char* dir = value();
            if (dir == nullptr)
                return usage();
            options.corpusDir = dir;
        } else if (arg == "--json") {
            const char* path = value();
            if (path == nullptr)
                return usage();
            json = path;
        } else if (arg == "--replay") {
            const char* dir = value();
            if (dir == nullptr)
                return usage();
            replay_dir = dir;
        } else if (arg == "--emit") {
            const char* dir = value();
            if (dir == nullptr)
                return usage();
            emit_dir = dir;
        } else {
            std::fprintf(stderr, "fuzz_campaign: unknown flag %s\n",
                         arg.c_str());
            return usage();
        }
    }

    if (!replay_dir.empty() && !emit_dir.empty())
        return usage();
    if (!replay_dir.empty())
        return runReplayMode(replay_dir, jobs);
    if (!emit_dir.empty())
        return runEmitMode(emit_dir);

    options.jobs = jobs;
    if (options.budget == 0)
        return usage();
    return runCampaignMode(options, json);
}
