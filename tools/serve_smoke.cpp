/**
 * @file
 * End-to-end smoke test of the experiment daemon, driven by
 * cmake/RunServeSmoke.cmake (the serve_smoke CTest).
 *
 * Starts a real Daemon on an ephemeral loopback port and exercises the
 * full surface over actual sockets:
 *
 *   - /healthz and /statsz answer their schemas
 *   - two concurrent identical POST /run succeed; their bodies are
 *     written to <out_dir>/r1.json and r2.json for json_check to
 *     validate (--metrics-schema) and bit-compare (--equal-path
 *     experiments / metrics.deterministic)
 *   - every response carries a distinct X-Phantom-Request-Id
 *   - /metricsz serves a Prometheus text exposition (saved to
 *     <out_dir>/metricsz.txt for json_check --prom-schema)
 *   - protocol errors: unknown target (404), wrong method (405),
 *     malformed JSON and unknown spec keys (400), oversized
 *     Content-Length (413), unsupported HTTP version (505)
 *   - admission control: a capacity-1 server with dispatch paused
 *     queues one request and answers 429 + Retry-After for the next,
 *     over the socket; unpausing completes the queued request
 *
 * The first daemon takes its observability knobs from the environment
 * (serverOptionsFromEnv). When the driver sets PHANTOM_SERVE_LOG /
 * PHANTOM_SERVE_SLOW_MS=0 / PHANTOM_SERVE_FLIGHT_DIR, the smoke
 * additionally verifies, after the daemon drains: every 2xx access-log
 * line's per-stage micros sum exactly to its total, r1's header id has
 * a matching log line, and r1's flight trace exists under the flight
 * dir. Without those variables the checks are skipped (direct runs).
 *
 * Exit 0 iff every check passed.
 */

#include "runner/json.hpp"
#include "runner/schema.hpp"
#include "serve/daemon.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>

namespace {

using namespace phantom;

int failures = 0;

bool
check(bool ok, const char* what)
{
    std::printf("%s %s\n", ok ? "PASS" : "FAIL", what);
    if (!ok)
        ++failures;
    return ok;
}

serve::HttpResponse
roundTrip(int port, const std::string& method, const std::string& target,
          const std::string& body = "")
{
    serve::HttpRequest request;
    request.method = method;
    request.target = target;
    request.version = "HTTP/1.1";
    if (!body.empty()) {
        request.headers.emplace_back("content-type", "application/json");
        request.body = body;
    }
    serve::HttpResponse response;
    std::string error;
    if (!serve::httpRoundTrip(port, request, response, &error)) {
        std::printf("FAIL transport %s %s: %s\n", method.c_str(),
                    target.c_str(), error.c_str());
        ++failures;
        response.status = -1;
    }
    return response;
}

bool
writeFile(const std::string& path, const std::string& text)
{
    std::ofstream out(path);
    out << text;
    return static_cast<bool>(out);
}

/** Spin until @p server's queue holds @p depth requests (or time out). */
bool
awaitQueueDepth(serve::Server& server, std::size_t depth)
{
    for (int i = 0; i < 5000; ++i) {
        if (server.queueDepth() == depth)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
}

/** The X-Phantom-Request-Id of @p response, or "" when absent. */
std::string
requestIdOf(const serve::HttpResponse& response)
{
    const std::string* id = response.header("x-phantom-request-id");
    return id != nullptr ? *id : std::string();
}

/**
 * Replay the access log written by the first daemon: every 2xx line's
 * stage micros must sum exactly to its total (the timeline telescopes
 * by construction — a mismatch means a stage was double-counted or
 * lost), and the id the client saw in r1's response header must match
 * a logged line.
 */
void
checkAccessLog(const std::string& log_path, const std::string& r1_id)
{
    std::ifstream in(log_path);
    if (!check(static_cast<bool>(in), "access log exists"))
        return;
    std::string line;
    std::size_t lines = 0;
    std::size_t two_xx = 0;
    bool sums_ok = true;
    bool r1_seen = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ++lines;
        runner::JsonValue doc;
        std::string error;
        if (!runner::parseJson(line, doc, &error)) {
            std::printf("FAIL access log line %zu unparsable: %s\n",
                        lines, error.c_str());
            ++failures;
            return;
        }
        const runner::JsonValue* id = doc.find("id");
        const runner::JsonValue* status = doc.find("status");
        const runner::JsonValue* total = doc.find("total_micros");
        const runner::JsonValue* stages = doc.find("stages");
        if (id == nullptr || status == nullptr || total == nullptr ||
            stages == nullptr || !stages->isObject()) {
            std::printf("FAIL access log line %zu lacks "
                        "id/status/total_micros/stages\n",
                        lines);
            ++failures;
            return;
        }
        if (std::to_string(
                static_cast<unsigned long long>(id->number())) == r1_id)
            r1_seen = true;
        if (status->number() < 200 || status->number() >= 300)
            continue;
        ++two_xx;
        double sum = 0.0;
        for (const auto& [name, micros] : stages->members()) {
            (void)name;
            sum += micros.number();
        }
        if (sum != total->number()) {
            std::printf("FAIL line %zu: stages sum %.0f != total %.0f\n",
                        lines, sum, total->number());
            sums_ok = false;
        }
    }
    check(two_xx > 0, "access log holds 2xx lines");
    check(sums_ok, "2xx stage micros sum exactly to total_micros");
    check(r1_seen, "r1's header id matches an access-log line");
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: serve_smoke OUT_DIR\n");
        return 64;
    }
    std::string out_dir = argv[1];

    const std::string spec =
        "{\"uarch\": \"zen2\", \"train\": \"jmp*\", \"victim\": \"ret\", "
        "\"seed\": 7, \"trials\": 3}";

    const char* log_env = std::getenv("PHANTOM_SERVE_LOG");
    const char* flight_env = std::getenv("PHANTOM_SERVE_FLIGHT_DIR");
    std::string r1_id;

    {
        serve::ServerOptions base;
        base.jobs = 2;
        base.queueCapacity = 8;
        serve::ServerOptions options = serve::serverOptionsFromEnv(base);
        serve::Server server(options);
        serve::Daemon daemon(server, 0);
        int port = daemon.port();
        std::printf("serve_smoke: daemon on 127.0.0.1:%d\n", port);

        serve::HttpResponse health = roundTrip(port, "GET", "/healthz");
        check(health.status == 200, "GET /healthz is 200");
        check(health.body.find(runner::kServeHealthSchema) !=
                  std::string::npos,
              "healthz body carries its schema marker");
        check(health.body.find("uptime_seconds") != std::string::npos &&
                  health.body.find("git_describe") != std::string::npos,
              "healthz reports uptime_seconds and git_describe");
        check(!requestIdOf(health).empty(),
              "healthz carries X-Phantom-Request-Id");

        // Two identical specs posted concurrently: the dispatcher must
        // batch them onto one snapshot store, and the bodies must agree
        // bit-for-bit on every seeded subtree (json_check re-checks the
        // written files).
        auto post = [&] { return roundTrip(port, "POST", "/run", spec); };
        auto first = std::async(std::launch::async, post);
        auto second = std::async(std::launch::async, post);
        serve::HttpResponse r1 = first.get();
        serve::HttpResponse r2 = second.get();
        check(r1.status == 200, "concurrent POST /run #1 is 200");
        check(r2.status == 200, "concurrent POST /run #2 is 200");
        check(writeFile(out_dir + "/r1.json", r1.body) &&
                  writeFile(out_dir + "/r2.json", r2.body),
              "response bodies written for json_check");
        r1_id = requestIdOf(r1);
        check(!r1_id.empty() && !requestIdOf(r2).empty() &&
                  r1_id != requestIdOf(r2),
              "concurrent runs carry distinct request ids");

        serve::HttpResponse stats = roundTrip(port, "GET", "/statsz");
        check(stats.status == 200, "GET /statsz is 200");
        check(stats.body.find(runner::kServeStatsSchema) !=
                  std::string::npos,
              "statsz body carries its schema marker");
        check(stats.body.find("\"serve.completed\": 2") !=
                  std::string::npos,
              "statsz counts both completed requests");
        check(stats.body.find("\"timelines\"") != std::string::npos &&
                  stats.body.find("\"timeline_ring\"") !=
                      std::string::npos,
              "statsz surfaces the recent-timeline ring");

        serve::HttpResponse metrics = roundTrip(port, "GET", "/metricsz");
        check(metrics.status == 200, "GET /metricsz is 200");
        const std::string* content_type = metrics.header("content-type");
        check(content_type != nullptr &&
                  content_type->find("version=0.0.4") !=
                      std::string::npos,
              "metricsz content-type declares exposition 0.0.4");
        check(metrics.body.find("# TYPE ") != std::string::npos,
              "metricsz body carries TYPE lines");
        check(metrics.body.find("phantom_serve_stage_") !=
                  std::string::npos,
              "metricsz exposes per-stage histograms");
        check(writeFile(out_dir + "/metricsz.txt", metrics.body),
              "metricsz exposition written for json_check");

        check(roundTrip(port, "GET", "/nope").status == 404,
              "unknown target is 404");
        check(roundTrip(port, "PUT", "/run", spec).status == 405,
              "PUT /run is 405");
        check(roundTrip(port, "POST", "/run", "{oops").status == 400,
              "malformed JSON body is 400");
        check(roundTrip(port, "POST", "/run",
                        "{\"uarch\": \"zen2\", \"train\": \"jmp*\", "
                        "\"victim\": \"ret\", \"typo\": 1}")
                      .status == 400,
              "unknown spec key is 400");
        check(roundTrip(port, "POST", "/run",
                        "{\"uarch\": \"vax\", \"train\": \"jmp*\", "
                        "\"victim\": \"ret\"}")
                      .status == 400,
              "unknown uarch is 400");

        {
            serve::HttpRequest oversized;
            oversized.method = "POST";
            oversized.target = "/run";
            oversized.version = "HTTP/1.1";
            oversized.headers.emplace_back("content-length", "999999999");
            serve::HttpResponse response;
            std::string error;
            bool ok = serve::httpRoundTrip(port, oversized, response,
                                           &error);
            check(ok && response.status == 413,
                  "oversized Content-Length is 413");
        }
        {
            serve::HttpRequest ancient;
            ancient.method = "GET";
            ancient.target = "/healthz";
            ancient.version = "HTTP/9.9";
            serve::HttpResponse response;
            std::string error;
            bool ok =
                serve::httpRoundTrip(port, ancient, response, &error);
            check(ok && response.status == 505,
                  "unsupported HTTP version is 505");
        }

        daemon.stop();
        server.stop();
    }

    // The first daemon has drained: replay its access log and look for
    // r1's flight trace. Driven by the environment so a bare
    // `serve_smoke <dir>` (no knobs set) still passes.
    if (log_env != nullptr)
        checkAccessLog(log_env, r1_id);
    else
        std::printf("SKIP access-log checks (PHANTOM_SERVE_LOG unset)\n");
    if (flight_env != nullptr && !r1_id.empty()) {
        char name[48];
        std::snprintf(name, sizeof name, "req-%06llu.trace.json",
                      std::strtoull(r1_id.c_str(), nullptr, 10));
        std::ifstream trace(std::string(flight_env) + "/" + name);
        check(static_cast<bool>(trace),
              "r1's flight trace exists (PHANTOM_SERVE_SLOW_MS=0)");
    } else {
        std::printf(
            "SKIP flight-trace check (PHANTOM_SERVE_FLIGHT_DIR unset)\n");
    }

    // Admission control, made deterministic by pausing dispatch: with
    // capacity 1, the first request parks in the queue and the second
    // must bounce with 429 + Retry-After — no timing window involved.
    {
        serve::ServerOptions options;
        options.jobs = 1;
        options.queueCapacity = 1;
        serve::Server server(options);
        serve::Daemon daemon(server, 0);
        int port = daemon.port();

        server.setDispatchPaused(true);
        auto parked = std::async(std::launch::async, [&] {
            return roundTrip(port, "POST", "/run", spec);
        });
        check(awaitQueueDepth(server, 1), "first request parks in queue");

        serve::HttpResponse bounced =
            roundTrip(port, "POST", "/run", spec);
        check(bounced.status == 429, "queue-full POST /run is 429");
        const std::string* retry_after = bounced.header("retry-after");
        check(retry_after != nullptr, "429 carries Retry-After");
        check(bounced.body.find(runner::kServeErrorSchema) !=
                  std::string::npos,
              "429 body carries the error schema");

        server.setDispatchPaused(false);
        serve::HttpResponse completed = parked.get();
        check(completed.status == 200,
              "parked request completes after unpause");

        daemon.stop();
        server.stop();
    }

    std::printf("serve_smoke: %d failure(s)\n", failures);
    return failures == 0 ? 0 : 1;
}
