/**
 * @file
 * End-to-end smoke test of the experiment daemon, driven by
 * cmake/RunServeSmoke.cmake (the serve_smoke CTest).
 *
 * Starts a real Daemon on an ephemeral loopback port and exercises the
 * full surface over actual sockets:
 *
 *   - /healthz and /statsz answer their schemas
 *   - two concurrent identical POST /run succeed; their bodies are
 *     written to <out_dir>/r1.json and r2.json for json_check to
 *     validate (--metrics-schema) and bit-compare (--equal-path
 *     experiments / metrics.deterministic)
 *   - protocol errors: unknown target (404), wrong method (405),
 *     malformed JSON and unknown spec keys (400), oversized
 *     Content-Length (413), unsupported HTTP version (505)
 *   - admission control: a capacity-1 server with dispatch paused
 *     queues one request and answers 429 + Retry-After for the next,
 *     over the socket; unpausing completes the queued request
 *
 * Exit 0 iff every check passed.
 */

#include "runner/schema.hpp"
#include "serve/daemon.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <thread>

namespace {

using namespace phantom;

int failures = 0;

bool
check(bool ok, const char* what)
{
    std::printf("%s %s\n", ok ? "PASS" : "FAIL", what);
    if (!ok)
        ++failures;
    return ok;
}

serve::HttpResponse
roundTrip(int port, const std::string& method, const std::string& target,
          const std::string& body = "")
{
    serve::HttpRequest request;
    request.method = method;
    request.target = target;
    request.version = "HTTP/1.1";
    if (!body.empty()) {
        request.headers.emplace_back("content-type", "application/json");
        request.body = body;
    }
    serve::HttpResponse response;
    std::string error;
    if (!serve::httpRoundTrip(port, request, response, &error)) {
        std::printf("FAIL transport %s %s: %s\n", method.c_str(),
                    target.c_str(), error.c_str());
        ++failures;
        response.status = -1;
    }
    return response;
}

bool
writeFile(const std::string& path, const std::string& text)
{
    std::ofstream out(path);
    out << text;
    return static_cast<bool>(out);
}

/** Spin until @p server's queue holds @p depth requests (or time out). */
bool
awaitQueueDepth(serve::Server& server, std::size_t depth)
{
    for (int i = 0; i < 5000; ++i) {
        if (server.queueDepth() == depth)
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: serve_smoke OUT_DIR\n");
        return 64;
    }
    std::string out_dir = argv[1];

    const std::string spec =
        "{\"uarch\": \"zen2\", \"train\": \"jmp*\", \"victim\": \"ret\", "
        "\"seed\": 7, \"trials\": 3}";

    {
        serve::ServerOptions options;
        options.jobs = 2;
        options.queueCapacity = 8;
        serve::Server server(options);
        serve::Daemon daemon(server, 0);
        int port = daemon.port();
        std::printf("serve_smoke: daemon on 127.0.0.1:%d\n", port);

        serve::HttpResponse health = roundTrip(port, "GET", "/healthz");
        check(health.status == 200, "GET /healthz is 200");
        check(health.body.find(runner::kServeHealthSchema) !=
                  std::string::npos,
              "healthz body carries its schema marker");

        // Two identical specs posted concurrently: the dispatcher must
        // batch them onto one snapshot store, and the bodies must agree
        // bit-for-bit on every seeded subtree (json_check re-checks the
        // written files).
        auto post = [&] { return roundTrip(port, "POST", "/run", spec); };
        auto first = std::async(std::launch::async, post);
        auto second = std::async(std::launch::async, post);
        serve::HttpResponse r1 = first.get();
        serve::HttpResponse r2 = second.get();
        check(r1.status == 200, "concurrent POST /run #1 is 200");
        check(r2.status == 200, "concurrent POST /run #2 is 200");
        check(writeFile(out_dir + "/r1.json", r1.body) &&
                  writeFile(out_dir + "/r2.json", r2.body),
              "response bodies written for json_check");

        serve::HttpResponse stats = roundTrip(port, "GET", "/statsz");
        check(stats.status == 200, "GET /statsz is 200");
        check(stats.body.find(runner::kServeStatsSchema) !=
                  std::string::npos,
              "statsz body carries its schema marker");
        check(stats.body.find("\"serve.completed\": 2") !=
                  std::string::npos,
              "statsz counts both completed requests");

        check(roundTrip(port, "GET", "/nope").status == 404,
              "unknown target is 404");
        check(roundTrip(port, "PUT", "/run", spec).status == 405,
              "PUT /run is 405");
        check(roundTrip(port, "POST", "/run", "{oops").status == 400,
              "malformed JSON body is 400");
        check(roundTrip(port, "POST", "/run",
                        "{\"uarch\": \"zen2\", \"train\": \"jmp*\", "
                        "\"victim\": \"ret\", \"typo\": 1}")
                      .status == 400,
              "unknown spec key is 400");
        check(roundTrip(port, "POST", "/run",
                        "{\"uarch\": \"vax\", \"train\": \"jmp*\", "
                        "\"victim\": \"ret\"}")
                      .status == 400,
              "unknown uarch is 400");

        {
            serve::HttpRequest oversized;
            oversized.method = "POST";
            oversized.target = "/run";
            oversized.version = "HTTP/1.1";
            oversized.headers.emplace_back("content-length", "999999999");
            serve::HttpResponse response;
            std::string error;
            bool ok = serve::httpRoundTrip(port, oversized, response,
                                           &error);
            check(ok && response.status == 413,
                  "oversized Content-Length is 413");
        }
        {
            serve::HttpRequest ancient;
            ancient.method = "GET";
            ancient.target = "/healthz";
            ancient.version = "HTTP/9.9";
            serve::HttpResponse response;
            std::string error;
            bool ok =
                serve::httpRoundTrip(port, ancient, response, &error);
            check(ok && response.status == 505,
                  "unsupported HTTP version is 505");
        }

        daemon.stop();
        server.stop();
    }

    // Admission control, made deterministic by pausing dispatch: with
    // capacity 1, the first request parks in the queue and the second
    // must bounce with 429 + Retry-After — no timing window involved.
    {
        serve::ServerOptions options;
        options.jobs = 1;
        options.queueCapacity = 1;
        serve::Server server(options);
        serve::Daemon daemon(server, 0);
        int port = daemon.port();

        server.setDispatchPaused(true);
        auto parked = std::async(std::launch::async, [&] {
            return roundTrip(port, "POST", "/run", spec);
        });
        check(awaitQueueDepth(server, 1), "first request parks in queue");

        serve::HttpResponse bounced =
            roundTrip(port, "POST", "/run", spec);
        check(bounced.status == 429, "queue-full POST /run is 429");
        const std::string* retry_after = bounced.header("retry-after");
        check(retry_after != nullptr, "429 carries Retry-After");
        check(bounced.body.find(runner::kServeErrorSchema) !=
                  std::string::npos,
              "429 body carries the error schema");

        server.setDispatchPaused(false);
        serve::HttpResponse completed = parked.get();
        check(completed.status == 200,
              "parked request completes after unpause");

        daemon.stop();
        server.stop();
    }

    std::printf("serve_smoke: %d failure(s)\n", failures);
    return failures == 0 ? 0 : 1;
}
