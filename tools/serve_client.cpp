/**
 * @file
 * Thin command-line client for the experiment daemon. Links only the
 * serve protocol layer (phantom_serve_http) — no simulator, no runner
 * threads — so it builds and starts instantly.
 *
 *   serve_client [--port PORT] --healthz
 *   serve_client [--port PORT] --statsz
 *   serve_client [--port PORT] --metricsz
 *   serve_client [--port PORT] --run SPEC_FILE [--out FILE]
 *
 * The port defaults to PHANTOM_SERVE_PORT (strictly validated). --run
 * validates the spec locally before posting, so a typo'd key fails
 * with the parse diagnostic instead of a round trip. --metricsz passes
 * the Prometheus text exposition through untouched (it is not JSON).
 * The response body is written to --out (or stdout); exit 0 on a 2xx
 * status, 1 on any HTTP error, 2 on transport failure, 64 on usage
 * errors. A failed --run additionally reports the server-assigned
 * X-Phantom-Request-Id on stderr, for correlation with the daemon's
 * access log and flight traces.
 */

#include "runner/env.hpp"
#include "serve/http.hpp"
#include "serve/spec.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: serve_client [--port PORT] --healthz\n"
                 "       serve_client [--port PORT] --statsz\n"
                 "       serve_client [--port PORT] --metricsz\n"
                 "       serve_client [--port PORT] --run SPEC_FILE "
                 "[--out FILE]\n");
    return 64;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace phantom;

    u64 port = runner::envU64Strict("PHANTOM_SERVE_PORT", 0, 0, 65535);
    std::string mode;
    std::string spec_path;
    std::string out_path;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
            u64 parsed = 0;
            if (!runner::parseEnvU64(argv[++i], parsed) || parsed > 65535) {
                std::fprintf(stderr, "serve_client: bad port \"%s\"\n",
                             argv[i]);
                return 64;
            }
            port = parsed;
        } else if (std::strcmp(argv[i], "--healthz") == 0 ||
                   std::strcmp(argv[i], "--statsz") == 0 ||
                   std::strcmp(argv[i], "--metricsz") == 0) {
            mode = argv[i];
        } else if (std::strcmp(argv[i], "--run") == 0 && i + 1 < argc) {
            mode = "--run";
            spec_path = argv[++i];
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            return usage();
        }
    }
    if (mode.empty())
        return usage();
    if (port == 0) {
        std::fprintf(stderr,
                     "serve_client: no port (--port or "
                     "PHANTOM_SERVE_PORT)\n");
        return 64;
    }

    serve::HttpRequest request;
    request.version = "HTTP/1.1";
    if (mode == "--run") {
        std::ifstream in(spec_path);
        if (!in) {
            std::fprintf(stderr, "serve_client: cannot read %s\n",
                         spec_path.c_str());
            return 64;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        std::string error;
        runner::JsonValue doc;
        serve::ExperimentSpec spec;
        if (!runner::parseJson(buffer.str(), doc, &error) ||
            !serve::parseSpec(doc, spec, &error)) {
            std::fprintf(stderr, "serve_client: %s: %s\n",
                         spec_path.c_str(), error.c_str());
            return 64;
        }
        request.method = "POST";
        request.target = "/run";
        request.headers.emplace_back("content-type", "application/json");
        request.body = buffer.str();
    } else {
        request.method = "GET";
        request.target = mode == "--healthz"   ? "/healthz"
                         : mode == "--statsz"  ? "/statsz"
                                               : "/metricsz";
    }

    serve::HttpResponse response;
    std::string error;
    if (!serve::httpRoundTrip(static_cast<int>(port), request, response,
                              &error)) {
        std::fprintf(stderr, "serve_client: 127.0.0.1:%llu: %s\n",
                     static_cast<unsigned long long>(port), error.c_str());
        return 2;
    }

    if (!out_path.empty()) {
        std::ofstream out(out_path);
        out << response.body;
        if (!out) {
            std::fprintf(stderr, "serve_client: cannot write %s\n",
                         out_path.c_str());
            return 2;
        }
    } else {
        std::fputs(response.body.c_str(), stdout);
    }
    if (response.status < 200 || response.status >= 300) {
        std::fprintf(stderr, "serve_client: HTTP %d %s\n", response.status,
                     serve::statusReason(response.status));
        if (mode == "--run") {
            const std::string* rid =
                response.header("x-phantom-request-id");
            if (rid != nullptr)
                std::fprintf(stderr, "serve_client: request id %s\n",
                             rid->c_str());
        }
        return 1;
    }
    return 0;
}
