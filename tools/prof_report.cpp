/**
 * @file
 * Reporting CLI for the host-time self-profiler (src/obs/prof).
 *
 *   prof_report FILE
 *       print the ranked bottleneck table (phases by estimated self
 *       time). FILE is a bench results document with a "profile"
 *       section, a GET /profilez body, or a bare profile document.
 *       Exit 1 when the profile is empty — an "everything is fine"
 *       table with no rows means the profiled run recorded nothing.
 *   prof_report --folded FILE [OUT]
 *       write the flamegraph.pl folded-stack lines to OUT (default
 *       stdout): `flamegraph.pl out.folded > prof.svg`
 *   prof_report --trace FILE [OUT]
 *       write a Perfetto-loadable Chrome trace (merged call tree as
 *       nested slices plus per-phase counter tracks)
 *   prof_report --check-folded FILE FOLDED
 *       regenerate the folded lines from FILE and require FOLDED to
 *       match byte for byte (the prof_check round-trip)
 *   prof_report --compare OLD NEW
 *       per-phase delta view of estimated self time between two runs
 *   prof_report --compare-counts A B [--ignore-prefix P]...
 *       require both profiles to carry the same phase set with the
 *       same exact entry counts (durations may differ) — the
 *       merge-order-freedom check between PHANTOM_JOBS settings
 *   prof_report --overhead-gate --base FILE... --prof FILE...
 *               [--max-pct P] [--slack-ms M]
 *       compare timing.wall_seconds of two unprofiled and two profiled
 *       bench runs (min of each pair, so one scheduler hiccup cannot
 *       fail the gate) and require the profiled minimum to stay within
 *       P percent plus M milliseconds of the unprofiled minimum
 *       (defaults: 5 percent, 250 ms)
 *
 * Exit codes: 0 = ok, 1 = validation/gate failure, 2 = parse or I/O
 * failure, 64 = usage error — json_check's convention.
 */

#include "runner/json.hpp"
#include "runner/prof_json.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using phantom::obs::prof::PhaseReport;
using phantom::obs::prof::Report;
using phantom::runner::JsonValue;
using phantom::runner::parseJson;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitFail = 1;
constexpr int kExitParse = 2;
constexpr int kExitUsage = 64;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: prof_report FILE\n"
        "       prof_report --folded FILE [OUT]\n"
        "       prof_report --trace FILE [OUT]\n"
        "       prof_report --check-folded FILE FOLDED\n"
        "       prof_report --compare OLD NEW\n"
        "       prof_report --compare-counts A B [--ignore-prefix P]...\n"
        "       prof_report --overhead-gate --base FILE... --prof FILE...\n"
        "                   [--max-pct P] [--slack-ms M]\n");
    return kExitUsage;
}

bool
loadJson(const char* path, JsonValue& out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "prof_report: cannot read %s\n", path);
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    if (!parseJson(buffer.str(), out, &error)) {
        std::fprintf(stderr, "prof_report: %s: %s\n", path,
                     error.c_str());
        return false;
    }
    return true;
}

/** Load @p path and rebuild its profile Report. Exit-code semantics
 *  via @p status: kExitParse for I/O, kExitFail for shape. */
bool
loadReport(const char* path, Report& out, int& status)
{
    JsonValue doc;
    if (!loadJson(path, doc)) {
        status = kExitParse;
        return false;
    }
    const JsonValue* profile = phantom::runner::findProfile(doc);
    if (profile == nullptr) {
        std::fprintf(stderr,
                     "prof_report: %s: no host-profile section (was the "
                     "run made with PHANTOM_PROF=1?)\n",
                     path);
        status = kExitFail;
        return false;
    }
    std::string error;
    if (!phantom::runner::profileFromJson(*profile, out, &error)) {
        std::fprintf(stderr, "prof_report: %s: %s\n", path,
                     error.c_str());
        status = kExitFail;
        return false;
    }
    return true;
}

bool
writeOut(const char* path, const std::string& text)
{
    if (path == nullptr) {
        std::fwrite(text.data(), 1, text.size(), stdout);
        return true;
    }
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "prof_report: cannot open %s\n", path);
        return false;
    }
    bool ok = std::fwrite(text.data(), 1, text.size(), f) ==
                  text.size() &&
              std::fclose(f) == 0;
    if (!ok)
        std::fprintf(stderr, "prof_report: short write to %s\n", path);
    return ok;
}

int
cmdTable(const char* path)
{
    Report report;
    int status = kExitOk;
    if (!loadReport(path, report, status))
        return status;
    if (report.phases.empty()) {
        std::fprintf(stderr, "prof_report: %s: profile has no phases\n",
                     path);
        return kExitFail;
    }
    std::fputs(phantom::obs::prof::bottleneckTable(report).c_str(),
               stdout);
    return kExitOk;
}

int
cmdCompare(const char* old_path, const char* new_path)
{
    Report old_report;
    Report new_report;
    int status = kExitOk;
    if (!loadReport(old_path, old_report, status) ||
        !loadReport(new_path, new_report, status))
        return status;

    std::map<std::string, std::pair<double, double>> rows;
    for (const PhaseReport& phase : old_report.phases)
        rows[phantom::obs::prof::phaseName(phase.phase)].first =
            phase.estimatedSelfNs();
    for (const PhaseReport& phase : new_report.phases)
        rows[phantom::obs::prof::phaseName(phase.phase)].second =
            phase.estimatedSelfNs();

    std::vector<std::pair<std::string, std::pair<double, double>>>
        ranked(rows.begin(), rows.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                  return std::fabs(a.second.second - a.second.first) >
                         std::fabs(b.second.second - b.second.first);
              });

    std::printf("%-16s %12s %12s %12s %8s\n", "phase", "old_self_ms",
                "new_self_ms", "delta_ms", "delta%");
    for (const auto& [name, self] : ranked) {
        double old_ms = self.first / 1e6;
        double new_ms = self.second / 1e6;
        double pct = self.first > 0.0
                         ? 100.0 * (self.second - self.first) / self.first
                         : (self.second > 0.0 ? 100.0 : 0.0);
        std::printf("%-16s %12.3f %12.3f %+12.3f %+7.1f%%\n",
                    name.c_str(), old_ms, new_ms, new_ms - old_ms, pct);
    }
    return kExitOk;
}

int
cmdCompareCounts(const char* a_path, const char* b_path,
                 const std::vector<std::string>& ignore_prefixes)
{
    Report a;
    Report b;
    int status = kExitOk;
    if (!loadReport(a_path, a, status) || !loadReport(b_path, b, status))
        return status;

    auto ignored = [&](const std::string& name) {
        for (const std::string& prefix : ignore_prefixes)
            if (name.compare(0, prefix.size(), prefix) == 0)
                return true;
        return false;
    };
    auto countsOf = [&](const Report& report) {
        std::map<std::string, phantom::u64> counts;
        for (const PhaseReport& phase : report.phases) {
            std::string name = phantom::obs::prof::phaseName(phase.phase);
            if (!ignored(name))
                counts[name] = phase.count;
        }
        return counts;
    };

    std::map<std::string, phantom::u64> ca = countsOf(a);
    std::map<std::string, phantom::u64> cb = countsOf(b);
    int failures = 0;
    for (const auto& [name, count] : ca) {
        auto it = cb.find(name);
        if (it == cb.end()) {
            std::fprintf(stderr,
                         "prof_report: phase \"%s\" present in %s but "
                         "not %s\n",
                         name.c_str(), a_path, b_path);
            ++failures;
        } else if (it->second != count) {
            std::fprintf(
                stderr,
                "prof_report: phase \"%s\" count %llu in %s vs %llu "
                "in %s\n",
                name.c_str(), static_cast<unsigned long long>(count),
                a_path, static_cast<unsigned long long>(it->second),
                b_path);
            ++failures;
        }
    }
    for (const auto& [name, count] : cb) {
        (void)count;
        if (ca.find(name) == ca.end()) {
            std::fprintf(stderr,
                         "prof_report: phase \"%s\" present in %s but "
                         "not %s\n",
                         name.c_str(), b_path, a_path);
            ++failures;
        }
    }
    if (failures == 0)
        std::printf("prof_report: %zu phases, identical counts\n",
                    ca.size());
    return failures == 0 ? kExitOk : kExitFail;
}

/** timing.wall_seconds of the bench document at @p path. */
bool
wallSecondsOf(const char* path, double& out)
{
    JsonValue doc;
    if (!loadJson(path, doc))
        return false;
    const JsonValue* wall = doc.findPath("timing.wall_seconds");
    if (wall == nullptr) {
        std::fprintf(stderr,
                     "prof_report: %s: no timing.wall_seconds\n", path);
        return false;
    }
    out = wall->number();
    return true;
}

/** Minimum timing.wall_seconds across @p paths, or false on any
 *  unreadable document. */
bool
minWallSecondsOf(const std::vector<const char*>& paths, double& out)
{
    out = 0.0;
    for (std::size_t i = 0; i < paths.size(); ++i) {
        double wall;
        if (!wallSecondsOf(paths[i], wall))
            return false;
        if (i == 0 || wall < out)
            out = wall;
    }
    return true;
}

int
cmdOverheadGate(const std::vector<const char*>& bases,
                const std::vector<const char*>& profs, double max_pct,
                double slack_ms)
{
    // Min over each run set: on a busy single-core host a single
    // scheduler hiccup would otherwise dominate the comparison. The
    // caller should interleave base and profiled runs so slow machine
    // phases (cold caches, co-tenant load) hit both sets alike.
    double base;
    double prof;
    if (!minWallSecondsOf(bases, base) || !minWallSecondsOf(profs, prof))
        return kExitParse;
    double overhead = prof - base;
    double budget = base * max_pct / 100.0 + slack_ms / 1000.0;
    std::printf("prof_report: wall base=%.3fs profiled=%.3fs "
                "overhead=%+.3fs budget=%.3fs (%.1f%% + %.0fms)\n",
                base, prof, overhead, budget, max_pct, slack_ms);
    if (overhead > budget) {
        std::fprintf(stderr,
                     "prof_report: profiling overhead %.3fs exceeds "
                     "budget %.3fs\n",
                     overhead, budget);
        return kExitFail;
    }
    return kExitOk;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage();
    std::string mode = argv[1];

    if (mode == "--folded" || mode == "--trace") {
        if (argc != 3 && argc != 4)
            return usage();
        Report report;
        int status = kExitOk;
        if (!loadReport(argv[2], report, status))
            return status;
        std::string text =
            mode == "--folded"
                ? phantom::obs::prof::foldedStacks(report)
                : phantom::obs::prof::perfettoTraceJson(report);
        return writeOut(argc == 4 ? argv[3] : nullptr, text)
                   ? kExitOk
                   : kExitParse;
    }

    if (mode == "--check-folded") {
        if (argc != 4)
            return usage();
        Report report;
        int status = kExitOk;
        if (!loadReport(argv[2], report, status))
            return status;
        std::ifstream in(argv[3]);
        if (!in) {
            std::fprintf(stderr, "prof_report: cannot read %s\n",
                         argv[3]);
            return kExitParse;
        }
        std::ostringstream buffer;
        buffer << in.rdbuf();
        if (buffer.str() != phantom::obs::prof::foldedStacks(report)) {
            std::fprintf(stderr,
                         "prof_report: %s does not round-trip the "
                         "profile in %s\n",
                         argv[3], argv[2]);
            return kExitFail;
        }
        std::printf("prof_report: folded stacks round-trip\n");
        return kExitOk;
    }

    if (mode == "--compare") {
        if (argc != 4)
            return usage();
        return cmdCompare(argv[2], argv[3]);
    }

    if (mode == "--compare-counts") {
        if (argc < 4)
            return usage();
        std::vector<std::string> ignore;
        for (int i = 4; i < argc; i += 2) {
            if (std::strcmp(argv[i], "--ignore-prefix") != 0 ||
                i + 1 >= argc)
                return usage();
            ignore.push_back(argv[i + 1]);
        }
        return cmdCompareCounts(argv[2], argv[3], ignore);
    }

    if (mode == "--overhead-gate") {
        double max_pct = 5.0;
        double slack_ms = 250.0;
        std::vector<const char*> bases;
        std::vector<const char*> profs;
        std::vector<const char*>* files = nullptr;
        for (int i = 2; i < argc; ++i) {
            if (std::strcmp(argv[i], "--base") == 0) {
                files = &bases;
            } else if (std::strcmp(argv[i], "--prof") == 0) {
                files = &profs;
            } else if (std::strcmp(argv[i], "--max-pct") == 0 ||
                       std::strcmp(argv[i], "--slack-ms") == 0) {
                if (i + 1 >= argc)
                    return usage();
                (argv[i][2] == 'm' ? max_pct : slack_ms) =
                    std::atof(argv[i + 1]);
                files = nullptr;
                ++i;
            } else if (files != nullptr) {
                files->push_back(argv[i]);
            } else {
                return usage();
            }
        }
        if (bases.empty() || profs.empty())
            return usage();
        return cmdOverheadGate(bases, profs, max_pct, slack_ms);
    }

    if (mode.rfind("--", 0) == 0 && mode != "--table")
        return usage();
    return cmdTable(mode == "--table" ? argv[2] : argv[1]);
}
