/**
 * @file
 * Baseline comparison / regression-gate CLI over phantom-bench-results
 * files (the bench observatory front end).
 *
 *   bench_report --compare [BASELINE_DIR] RESULTS_DIR [output options]
 *       diff every bench in RESULTS_DIR against its checked-in
 *       baseline. BASELINE_DIR defaults to $PHANTOM_BASELINE_DIR, then
 *       "bench/baselines". Exit 0 = clean, 1 = deterministic drift /
 *       measured regression / unmatched bench, 2 = usage or I/O error.
 *   bench_report --diff BASELINE.json CURRENT.json [output options]
 *       same gate for a single pair of files (used by the bench_regress
 *       CTest to assert PHANTOM_JOBS=1 vs =2 zero deterministic drift).
 *   bench_report --update-baselines RESULTS_DIR [BASELINE_DIR]
 *       rewrite the baseline store from RESULTS_DIR, stamping each file
 *       with "baseline_of" provenance.
 *
 * Output options:
 *   --report OUT.md    write the Markdown report (with per-figure
 *                      paper-conformance tables)
 *   --html OUT.html    write the same report as a standalone HTML page
 *   --rel-tol X        measured scalar relative tolerance
 *   --hist-tol Y       measured histogram total-variation threshold
 *                      (defaults also honour PHANTOM_DIFF_RELTOL /
 *                      PHANTOM_DIFF_HISTTOL)
 */

#include "obs/diff/baseline.hpp"
#include "obs/diff/diff.hpp"
#include "obs/diff/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

using namespace phantom;
using namespace phantom::obs::diff;
using phantom::runner::JsonValue;

namespace {

constexpr int kExitClean = 0;
constexpr int kExitRegression = 1;
constexpr int kExitError = 2;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: bench_report --compare [BASELINE_DIR] RESULTS_DIR "
        "[options]\n"
        "       bench_report --diff BASELINE.json CURRENT.json "
        "[options]\n"
        "       bench_report --update-baselines RESULTS_DIR "
        "[BASELINE_DIR]\n"
        "options: --report OUT.md  --html OUT.html  --rel-tol X  "
        "--hist-tol Y\n");
    return kExitError;
}

struct Cli
{
    std::string mode;
    std::vector<std::string> positional;
    std::string reportPath;
    std::string htmlPath;
    DiffOptions options = DiffOptions::fromEnv();
};

bool
parseCli(int argc, char** argv, Cli& cli)
{
    if (argc < 2)
        return false;
    cli.mode = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](std::string& slot) {
            if (i + 1 >= argc)
                return false;
            slot = argv[++i];
            return true;
        };
        if (arg == "--report") {
            if (!next(cli.reportPath))
                return false;
        } else if (arg == "--html") {
            if (!next(cli.htmlPath))
                return false;
        } else if (arg == "--rel-tol" || arg == "--hist-tol") {
            std::string value;
            if (!next(value))
                return false;
            char* end = nullptr;
            double v = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0' || !(v >= 0.0))
                return false;
            (arg == "--rel-tol" ? cli.options.relTol
                                : cli.options.histTol) = v;
        } else if (arg.rfind("--", 0) == 0) {
            return false;
        } else {
            cli.positional.push_back(std::move(arg));
        }
    }
    return true;
}

bool
writeTextFile(const std::string& path, const std::string& text)
{
    std::ofstream out(path);
    out << text;
    out.flush();
    if (!out) {
        std::fprintf(stderr, "bench_report: cannot write %s\n",
                     path.c_str());
        return false;
    }
    return true;
}

int
emitReport(const Cli& cli, const std::vector<BenchDiff>& diffs,
           const std::map<std::string, JsonValue>& current)
{
    Report report = buildReport(diffs, current, cli.options);

    for (const BenchDiff& diff : diffs) {
        std::printf("bench_report: %-20s %s (drift=%llu regression=%llu "
                    "missing=%llu tolerated=%llu of %llu)\n",
                    diff.bench.c_str(), diff.pass() ? "PASS" : "FAIL",
                    static_cast<unsigned long long>(diff.summary.drifts),
                    static_cast<unsigned long long>(
                        diff.summary.regressions),
                    static_cast<unsigned long long>(diff.summary.missing),
                    static_cast<unsigned long long>(
                        diff.summary.withinTolerance),
                    static_cast<unsigned long long>(
                        diff.summary.compared));
        for (const MetricDiff& entry : diff.entries)
            if (entry.failing())
                std::printf("    %-22s %s: %s -> %s\n",
                            diffStatusName(entry.status),
                            entry.path.c_str(), entry.baseline.c_str(),
                            entry.current.c_str());
    }

    if (!cli.reportPath.empty() &&
        !writeTextFile(cli.reportPath, renderMarkdown(report)))
        return kExitError;
    if (!cli.htmlPath.empty() &&
        !writeTextFile(cli.htmlPath, renderHtml(report)))
        return kExitError;
    if (!cli.reportPath.empty())
        std::printf("bench_report: report -> %s\n",
                    cli.reportPath.c_str());
    if (!cli.htmlPath.empty())
        std::printf("bench_report: html -> %s\n", cli.htmlPath.c_str());

    std::printf("bench_report: verdict %s\n",
                report.pass ? "PASS" : "FAIL");
    return report.pass ? kExitClean : kExitRegression;
}

int
runCompare(const Cli& cli)
{
    if (cli.positional.empty() || cli.positional.size() > 2)
        return usage();
    std::string results_dir = cli.positional.back();
    std::string baseline_dir =
        cli.positional.size() == 2
            ? cli.positional.front()
            : baselineDirFromEnv("bench/baselines");

    std::string error;
    std::map<std::string, JsonValue> baselines;
    std::map<std::string, JsonValue> current;
    if (!loadResultsDir(baseline_dir, baselines, &error) ||
        !loadResultsDir(results_dir, current, &error)) {
        std::fprintf(stderr, "bench_report: %s\n", error.c_str());
        return kExitError;
    }
    if (baselines.empty()) {
        std::fprintf(stderr,
                     "bench_report: no baselines in %s (run "
                     "--update-baselines first)\n",
                     baseline_dir.c_str());
        return kExitError;
    }

    std::vector<BenchDiff> diffs;
    for (const auto& [bench, baseline] : baselines) {
        auto hit = current.find(bench);
        if (hit == current.end()) {
            // A baseline with no fresh results would silently shrink
            // the gate — treat the whole document as missing.
            BenchDiff missing_bench;
            missing_bench.bench = bench;
            MetricDiff entry;
            entry.path = "(entire document)";
            entry.status = DiffStatus::MissingInCurrent;
            entry.baseline = "baseline file";
            entry.current = "-";
            missing_bench.summary.compared = 1;
            missing_bench.summary.missing = 1;
            missing_bench.entries.push_back(std::move(entry));
            diffs.push_back(std::move(missing_bench));
            continue;
        }
        diffs.push_back(
            diffResults(bench, baseline, hit->second, cli.options));
    }
    for (const auto& [bench, doc] : current) {
        (void)doc;
        if (baselines.count(bench) != 0)
            continue;
        BenchDiff unbaselined;
        unbaselined.bench = bench;
        MetricDiff entry;
        entry.path = "(entire document)";
        entry.status = DiffStatus::MissingInBaseline;
        entry.baseline = "-";
        entry.current = "results file (refresh baselines)";
        unbaselined.summary.compared = 1;
        unbaselined.summary.missing = 1;
        unbaselined.entries.push_back(std::move(entry));
        diffs.push_back(std::move(unbaselined));
    }
    return emitReport(cli, diffs, current);
}

int
runDiff(const Cli& cli)
{
    if (cli.positional.size() != 2)
        return usage();
    std::string error;
    JsonValue baseline;
    JsonValue current;
    if (!loadResultsFile(cli.positional[0], baseline, &error) ||
        !loadResultsFile(cli.positional[1], current, &error)) {
        std::fprintf(stderr, "bench_report: %s\n", error.c_str());
        return kExitError;
    }
    const JsonValue* bench = current.find("bench");
    std::string name = bench != nullptr &&
                               bench->kind() == JsonValue::Kind::String
                           ? bench->string()
                           : cli.positional[1];
    std::map<std::string, JsonValue> current_map;
    current_map[name] = current;
    std::vector<BenchDiff> diffs = {
        diffResults(name, baseline, current, cli.options)};
    return emitReport(cli, diffs, current_map);
}

int
runUpdateBaselines(const Cli& cli)
{
    if (cli.positional.empty() || cli.positional.size() > 2)
        return usage();
    std::string results_dir = cli.positional.front();
    std::string baseline_dir =
        cli.positional.size() == 2
            ? cli.positional.back()
            : baselineDirFromEnv("bench/baselines");

    std::string error;
    std::map<std::string, JsonValue> current;
    if (!loadResultsDir(results_dir, current, &error)) {
        std::fprintf(stderr, "bench_report: %s\n", error.c_str());
        return kExitError;
    }
    if (current.empty()) {
        std::fprintf(stderr, "bench_report: no results in %s\n",
                     results_dir.c_str());
        return kExitError;
    }

    std::error_code ec;
    std::filesystem::create_directories(baseline_dir, ec);
    if (ec) {
        std::fprintf(stderr, "bench_report: cannot create %s: %s\n",
                     baseline_dir.c_str(), ec.message().c_str());
        return kExitError;
    }
    for (const auto& [bench, doc] : current) {
        std::string path = baseline_dir + "/" + bench + ".json";
        if (!writeBaselineFile(path, toBaseline(doc), &error)) {
            std::fprintf(stderr, "bench_report: %s\n", error.c_str());
            return kExitError;
        }
        std::printf("bench_report: baseline -> %s\n", path.c_str());
    }
    return kExitClean;
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli;
    if (!parseCli(argc, argv, cli))
        return usage();
    if (cli.mode == "--compare")
        return runCompare(cli);
    if (cli.mode == "--diff")
        return runDiff(cli);
    if (cli.mode == "--update-baselines")
        return runUpdateBaselines(cli);
    return usage();
}
