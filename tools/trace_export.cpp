/**
 * @file
 * Standalone Chrome-trace exporter: runs a small canned pair of
 * speculation scenarios on Zen 2 with a RingTraceSink attached and
 * writes the captured pipeline events as a trace_event JSON document.
 *
 *   trace_export OUT.json
 *
 * The scenarios cover both halves of the paper's taxonomy:
 *   1. an injected prediction at a kernel nop — the decoder detects the
 *      misprediction (PHANTOM window, frontend resteer), and
 *   2. a mispredicted real branch — resolved only at execute (Spectre
 *      window, backend resteer).
 *
 * Open the output in Perfetto (ui.perfetto.dev) or chrome://tracing;
 * OBSERVABILITY.md documents the slice layout. The same exporter runs
 * inside every bench when PHANTOM_TRACE is set — this tool exists so the
 * export path can be exercised (and the schema CI-checked) in isolation,
 * without a full campaign.
 */

#include "attack/experiment.hpp"
#include "attack/testbed.hpp"
#include "cpu/machine.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

#include <cstdio>

using namespace phantom;

int
main(int argc, char** argv)
{
    if (argc != 2) {
        std::fprintf(stderr, "usage: trace_export OUT.json\n");
        return 2;
    }

    obs::RingTraceSink ring(1u << 16);
    obs::ScopedTraceSink scoped(&ring);

    // Scenario 1: PHANTOM. A user-injected BTB entry at the kernel's
    // getpid nop gadget fires on the next syscall; the decoder sees a
    // non-branch and resteers the frontend.
    {
        auto cfg = cpu::zen2();
        cfg.noise = mem::NoiseConfig{};
        attack::Testbed bed(cfg);
        bed.syscall(os::kSysGetpid);   // warm the kernel path
        attack::PredictionInjector injector(bed);
        injector.inject(bed.kernel.getpidGadgetVa(),
                        bed.kernel.imageBase() + 0x3000);
        bed.syscall(os::kSysGetpid);
    }

    // Scenario 2: Spectre. Train jmp* against a real direct branch; the
    // misprediction survives decode and is only resolved at execute.
    {
        attack::StageExperimentOptions options;
        options.trials = 1;
        attack::StageExperiment experiment(cpu::zen2(), options);
        experiment.run(attack::BranchKind::IndirectJmp,
                       attack::BranchKind::DirectJmp);
    }

    obs::ShardTrace shard;
    shard.shard = 0;
    shard.dropped = ring.dropped();
    shard.events = ring.snapshot();

    obs::ChromeTraceOptions options;
    options.processName = "trace_export";
    options.episodeLabel = [](u8 kind) {
        return cpu::episodeKindName(static_cast<cpu::EpisodeKind>(kind));
    };

    if (!obs::writeChromeTrace(argv[1], {shard}, options))
        return 1;
    std::printf("trace_export: %llu events (%llu dropped) -> %s\n",
                static_cast<unsigned long long>(ring.emitted()),
                static_cast<unsigned long long>(ring.dropped()), argv[1]);
    return 0;
}
