/**
 * @file
 * Validation tool for the bench JSON result files, used by the
 * bench_smoke and bench_regress CTest suites.
 *
 *   json_check --parse FILE
 *       exit 0 iff FILE is valid JSON
 *   json_check --expect-experiments FILE KEY...
 *       additionally require the schema marker (v1 or v2) and every
 *       KEY under "experiments"
 *   json_check --metrics-schema FILE
 *       require the v2 "metrics" section: deterministic / measured /
 *       manifest members present, histograms well-formed (strictly
 *       increasing bucket lower bounds, positive bucket counts summing
 *       to the histogram count), manifest carrying bench /
 *       campaign_seed / fast_mode / uarch
 *   json_check --equal-path PATH FILE1 FILE2
 *       require the subtrees at dotted PATH to be structurally equal
 *       (used to assert PHANTOM_JOBS=1 and =N produce byte-identical
 *       aggregated statistics)
 *   json_check --trace-schema FILE
 *       require FILE to be a Chrome trace_event document: an object
 *       with a "traceEvents" array whose entries carry ph/pid/tid/name,
 *       ts+dur on "X" slices — and at least one episode slice (the
 *       per-stage rendering the trace exists for)
 *   json_check --prom-schema FILE
 *       require FILE to be a Prometheus text exposition (format 0.0.4,
 *       what GET /metricsz serves — plain text, not JSON): every sample
 *       preceded by exactly one # TYPE line for its family, no
 *       duplicate samples, numeric values, and well-formed histograms
 *       (strictly increasing le edges, non-decreasing cumulative
 *       bucket counts, an le="+Inf" bucket agreeing with _count)
 *   json_check --profile-schema FILE
 *       require a host-profile section (the document itself, its
 *       "profile" member, or a GET /profilez body): every phase name
 *       known to the profiler, timed_count <= count, self_ns <=
 *       total_ns per phase and per stack, the sum of phase self times
 *       bounded by wall_ns x threads, histograms well-formed
 *   json_check --expect-no-profile FILE
 *       require the bench result to carry NO "profile" member — the
 *       PHANTOM_PROF=0 byte-identity guard
 *   json_check --fuzz-schema FILE
 *       require a phantom-fuzz-results/v1 campaign summary
 *       (tools/fuzz_campaign --json): campaign totals consistent with
 *       the budget, per-oracle ran+skipped covering every program,
 *       generator-class and oracle keys drawn from the fuzz library's
 *       own name tables, and each divergence entry carrying a
 *       minimized repro no larger than the original
 *
 * Exit codes: 0 = valid, 1 = schema/validation failure, 2 = parse or
 * I/O failure, 64 = usage error. CI consumers branch on the parse vs
 * schema distinction ("the bench crashed mid-write" vs "the bench
 * wrote the wrong shape").
 */

#include "fuzz/campaign.hpp"
#include "runner/json.hpp"
#include "runner/prof_json.hpp"
#include "runner/schema.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using phantom::runner::JsonValue;
using phantom::runner::parseJson;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitSchema = 1;
constexpr int kExitParse = 2;
constexpr int kExitUsage = 64;

/** Load and parse, or report and return false (exit kExitParse). */
bool
loadJson(const char* path, JsonValue& out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "json_check: cannot read %s\n", path);
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    if (!parseJson(buffer.str(), out, &error)) {
        std::fprintf(stderr, "json_check: %s: %s\n", path, error.c_str());
        return false;
    }
    return true;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: json_check --parse FILE\n"
                 "       json_check --expect-experiments FILE KEY...\n"
                 "       json_check --metrics-schema FILE\n"
                 "       json_check --equal-path PATH FILE1 FILE2\n"
                 "       json_check --trace-schema FILE\n"
                 "       json_check --prom-schema FILE\n"
                 "       json_check --profile-schema FILE\n"
                 "       json_check --expect-no-profile FILE\n"
                 "       json_check --fuzz-schema FILE\n");
    return kExitUsage;
}

bool
hasResultSchema(const JsonValue& doc, const char* path)
{
    const JsonValue* schema = doc.find("schema");
    if (schema != nullptr &&
        (schema->string() == phantom::runner::kResultSchemaV1 ||
         schema->string() == phantom::runner::kResultSchemaV2))
        return true;
    std::fprintf(stderr, "json_check: %s: missing schema marker\n", path);
    return false;
}

/** One registry histogram: {"count": N, "buckets": [{"lo","count"}...]}
 *  with strictly increasing lower bounds and positive per-bucket counts
 *  summing to the total. */
bool
checkHistogram(const char* path, const std::string& name,
               const JsonValue& hist)
{
    const JsonValue* count = hist.find("count");
    const JsonValue* buckets = hist.find("buckets");
    if (count == nullptr || buckets == nullptr || !buckets->isArray()) {
        std::fprintf(stderr,
                     "json_check: %s: histogram \"%s\" lacks "
                     "count/buckets\n",
                     path, name.c_str());
        return false;
    }
    double previous_lo = -1.0;
    bool first = true;
    double total = 0.0;
    std::size_t index = 0;
    for (const JsonValue& bucket : buckets->items()) {
        const JsonValue* lo = bucket.find("lo");
        const JsonValue* n = bucket.find("count");
        if (lo == nullptr || n == nullptr) {
            std::fprintf(stderr,
                         "json_check: %s: histogram \"%s\" bucket %zu "
                         "lacks lo/count\n",
                         path, name.c_str(), index);
            return false;
        }
        if (!first && !(lo->number() > previous_lo)) {
            std::fprintf(stderr,
                         "json_check: %s: histogram \"%s\" bucket edges "
                         "not strictly increasing at %zu\n",
                         path, name.c_str(), index);
            return false;
        }
        if (!(n->number() > 0.0)) {
            std::fprintf(stderr,
                         "json_check: %s: histogram \"%s\" bucket %zu "
                         "has non-positive count (zero buckets are "
                         "elided on write)\n",
                         path, name.c_str(), index);
            return false;
        }
        previous_lo = lo->number();
        first = false;
        total += n->number();
        ++index;
    }
    if (total != count->number()) {
        std::fprintf(stderr,
                     "json_check: %s: histogram \"%s\" bucket counts sum "
                     "to %.0f, count says %.0f\n",
                     path, name.c_str(), total, count->number());
        return false;
    }
    return true;
}

/** One of metrics.deterministic / metrics.measured. */
bool
checkRegistry(const char* path, const char* which,
              const JsonValue& registry)
{
    if (!registry.isObject()) {
        std::fprintf(stderr, "json_check: %s: metrics.%s not an object\n",
                     path, which);
        return false;
    }
    const JsonValue* histograms = registry.find("histograms");
    if (histograms == nullptr)
        return true;
    if (!histograms->isObject()) {
        std::fprintf(stderr,
                     "json_check: %s: metrics.%s.histograms not an "
                     "object\n",
                     path, which);
        return false;
    }
    for (const auto& [name, hist] : histograms->members())
        if (!checkHistogram(path, name, hist))
            return false;
    return true;
}

int
checkMetricsSchema(const char* path, const JsonValue& doc)
{
    if (!hasResultSchema(doc, path))
        return kExitSchema;
    const JsonValue* metrics = doc.find("metrics");
    if (metrics == nullptr || !metrics->isObject()) {
        std::fprintf(stderr, "json_check: %s: no \"metrics\" object\n",
                     path);
        return kExitSchema;
    }
    for (const char* which : {"deterministic", "measured"}) {
        const JsonValue* registry = metrics->find(which);
        if (registry == nullptr) {
            std::fprintf(stderr, "json_check: %s: metrics.%s missing\n",
                         path, which);
            return kExitSchema;
        }
        if (!checkRegistry(path, which, *registry))
            return kExitSchema;
    }
    const JsonValue* manifest = metrics->find("manifest");
    if (manifest == nullptr || !manifest->isObject()) {
        std::fprintf(stderr, "json_check: %s: metrics.manifest missing\n",
                     path);
        return kExitSchema;
    }
    for (const char* key : {"bench", "campaign_seed", "fast_mode",
                            "uarch"}) {
        if (manifest->find(key) == nullptr) {
            std::fprintf(stderr,
                         "json_check: %s: metrics.manifest.%s missing\n",
                         path, key);
            return kExitSchema;
        }
    }
    return kExitOk;
}

/** One parsed exposition sample line. */
struct PromSample
{
    std::string name;    ///< metric name, suffix included (foo_bucket)
    std::string labels;  ///< raw text between the braces, "" when none
    double value = 0.0;
};

/** The family a sample belongs to: its TYPE-line name. Histogram
 *  samples carry a _bucket/_sum/_count suffix on top of it. */
std::string
promFamily(const std::string& name,
           const std::map<std::string, std::string>& types)
{
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
        std::size_t n = std::strlen(suffix);
        if (name.size() > n &&
            name.compare(name.size() - n, n, suffix) == 0) {
            std::string base = name.substr(0, name.size() - n);
            auto it = types.find(base);
            if (it != types.end() && it->second == "histogram")
                return base;
        }
    }
    return name;
}

/** Value of the le label in @p labels, or false when absent. */
bool
promLeOf(const std::string& labels, std::string& out)
{
    std::size_t pos = labels.find("le=\"");
    if (pos == std::string::npos)
        return false;
    std::size_t start = pos + 4;
    std::size_t end = labels.find('"', start);
    if (end == std::string::npos)
        return false;
    out = labels.substr(start, end - start);
    return true;
}

int
checkPromSchema(const char* path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "json_check: cannot read %s\n", path);
        return kExitParse;
    }

    std::map<std::string, std::string> types;  // family -> kind
    std::vector<PromSample> samples;
    std::set<std::string> seen;  // name + labels, for duplicate detection
    std::string line;
    std::size_t lineno = 0;

    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            std::istringstream comment(line);
            std::string hash, keyword, name, kind;
            comment >> hash >> keyword >> name >> kind;
            if (keyword != "TYPE")
                continue;  // HELP and free comments pass through
            if (name.empty() || kind.empty()) {
                std::fprintf(stderr,
                             "json_check: %s:%zu: malformed TYPE line\n",
                             path, lineno);
                return kExitSchema;
            }
            if (!types.emplace(name, kind).second) {
                std::fprintf(stderr,
                             "json_check: %s:%zu: duplicate TYPE for "
                             "\"%s\"\n",
                             path, lineno, name.c_str());
                return kExitSchema;
            }
            continue;
        }

        PromSample sample;
        std::size_t name_end = line.find_first_of("{ ");
        if (name_end == std::string::npos || name_end == 0) {
            std::fprintf(stderr,
                         "json_check: %s:%zu: malformed sample line\n",
                         path, lineno);
            return kExitSchema;
        }
        sample.name = line.substr(0, name_end);
        std::size_t value_start = name_end;
        if (line[name_end] == '{') {
            std::size_t close = line.find('}', name_end);
            if (close == std::string::npos) {
                std::fprintf(stderr,
                             "json_check: %s:%zu: unterminated labels\n",
                             path, lineno);
                return kExitSchema;
            }
            sample.labels =
                line.substr(name_end + 1, close - name_end - 1);
            value_start = close + 1;
        }
        std::istringstream rest(line.substr(value_start));
        std::string value_text;
        rest >> value_text;
        char* end = nullptr;
        sample.value = std::strtod(value_text.c_str(), &end);
        if (value_text.empty() || end == value_text.c_str()) {
            std::fprintf(stderr,
                         "json_check: %s:%zu: non-numeric value \"%s\"\n",
                         path, lineno, value_text.c_str());
            return kExitSchema;
        }

        // The TYPE line must already have been seen: exposition readers
        // stream, so a sample before its family's TYPE is untyped.
        std::string family = promFamily(sample.name, types);
        if (types.find(family) == types.end()) {
            std::fprintf(stderr,
                         "json_check: %s:%zu: sample \"%s\" has no "
                         "preceding TYPE line\n",
                         path, lineno, sample.name.c_str());
            return kExitSchema;
        }
        if (!seen.insert(sample.name + "{" + sample.labels + "}").second) {
            std::fprintf(stderr,
                         "json_check: %s:%zu: duplicate sample \"%s\"\n",
                         path, lineno, sample.name.c_str());
            return kExitSchema;
        }
        samples.push_back(std::move(sample));
    }

    if (samples.empty()) {
        std::fprintf(stderr, "json_check: %s: no samples\n", path);
        return kExitSchema;
    }

    // Histogram shape: per family, le edges strictly increasing with
    // non-decreasing cumulative counts, ending in an le="+Inf" bucket
    // that agrees with the _count sample.
    for (const auto& [family, kind] : types) {
        if (kind != "histogram")
            continue;
        double previous_le = -1.0;
        double previous_count = -1.0;
        bool saw_bucket = false;
        bool saw_inf = false;
        double inf_count = 0.0;
        double count_sample = -1.0;
        for (const PromSample& sample : samples) {
            if (sample.name == family + "_count")
                count_sample = sample.value;
            if (sample.name != family + "_bucket")
                continue;
            std::string le;
            if (!promLeOf(sample.labels, le)) {
                std::fprintf(stderr,
                             "json_check: %s: histogram \"%s\" bucket "
                             "lacks an le label\n",
                             path, family.c_str());
                return kExitSchema;
            }
            saw_bucket = true;
            if (sample.value + 1e-9 < previous_count) {
                std::fprintf(stderr,
                             "json_check: %s: histogram \"%s\" cumulative "
                             "bucket counts decrease at le=\"%s\"\n",
                             path, family.c_str(), le.c_str());
                return kExitSchema;
            }
            previous_count = sample.value;
            if (le == "+Inf") {
                saw_inf = true;
                inf_count = sample.value;
                continue;
            }
            if (saw_inf) {
                std::fprintf(stderr,
                             "json_check: %s: histogram \"%s\" has a "
                             "bucket after le=\"+Inf\"\n",
                             path, family.c_str());
                return kExitSchema;
            }
            double edge = std::strtod(le.c_str(), nullptr);
            if (edge <= previous_le) {
                std::fprintf(stderr,
                             "json_check: %s: histogram \"%s\" le edges "
                             "not strictly increasing at \"%s\"\n",
                             path, family.c_str(), le.c_str());
                return kExitSchema;
            }
            previous_le = edge;
        }
        if (!saw_bucket || !saw_inf || count_sample < 0.0) {
            std::fprintf(stderr,
                         "json_check: %s: histogram \"%s\" lacks "
                         "buckets/+Inf/_count\n",
                         path, family.c_str());
            return kExitSchema;
        }
        if (inf_count != count_sample) {
            std::fprintf(stderr,
                         "json_check: %s: histogram \"%s\" +Inf bucket "
                         "(%.0f) disagrees with _count (%.0f)\n",
                         path, family.c_str(), inf_count, count_sample);
            return kExitSchema;
        }
    }
    return kExitOk;
}

/** u64-ish field of @p node, or report against @p what and fail. */
bool
profField(const char* path, const std::string& what, const JsonValue& node,
          const char* key, double& out)
{
    const JsonValue* field = node.find(key);
    if (field == nullptr) {
        std::fprintf(stderr, "json_check: %s: %s lacks \"%s\"\n", path,
                     what.c_str(), key);
        return false;
    }
    out = field->number();
    if (out < 0.0) {
        std::fprintf(stderr, "json_check: %s: %s.%s is negative\n", path,
                     what.c_str(), key);
        return false;
    }
    return true;
}

int
checkProfileSchema(const char* path, const JsonValue& doc)
{
    const JsonValue* profile = phantom::runner::findProfile(doc);
    if (profile == nullptr) {
        std::fprintf(stderr,
                     "json_check: %s: no \"%s\" profile section\n", path,
                     phantom::runner::kProfileSchema);
        return kExitSchema;
    }

    double wall_ns = 0.0;
    double threads = 0.0;
    if (!profField(path, "profile", *profile, "wall_ns", wall_ns) ||
        !profField(path, "profile", *profile, "threads", threads))
        return kExitSchema;

    const JsonValue* phases = profile->find("phases");
    if (phases == nullptr || !phases->isObject()) {
        std::fprintf(stderr,
                     "json_check: %s: profile lacks a \"phases\" object\n",
                     path);
        return kExitSchema;
    }
    double self_sum = 0.0;
    for (const auto& [name, phase] : phases->members()) {
        if (phantom::obs::prof::phaseFromName(name) ==
            phantom::obs::prof::Phase::Count) {
            std::fprintf(stderr,
                         "json_check: %s: unknown profile phase \"%s\"\n",
                         path, name.c_str());
            return kExitSchema;
        }
        std::string what = "phase \"" + name + "\"";
        double count = 0.0;
        double timed = 0.0;
        double total = 0.0;
        double self = 0.0;
        if (!profField(path, what, phase, "count", count) ||
            !profField(path, what, phase, "timed_count", timed) ||
            !profField(path, what, phase, "total_ns", total) ||
            !profField(path, what, phase, "self_ns", self))
            return kExitSchema;
        if (timed > count) {
            std::fprintf(stderr,
                         "json_check: %s: %s timed_count %.0f exceeds "
                         "count %.0f\n",
                         path, what.c_str(), timed, count);
            return kExitSchema;
        }
        if (self > total) {
            std::fprintf(stderr,
                         "json_check: %s: %s self_ns %.0f exceeds "
                         "total_ns %.0f\n",
                         path, what.c_str(), self, total);
            return kExitSchema;
        }
        if (const JsonValue* hist = phase.find("hist"))
            if (!checkHistogram(path, name, *hist))
                return kExitSchema;
        self_sum += self;
    }
    // Raw self times are actual measured nanoseconds, so across all
    // phases they cannot exceed the wall clock per recording thread.
    double budget = wall_ns * (threads > 1.0 ? threads : 1.0);
    if (self_sum > budget) {
        std::fprintf(stderr,
                     "json_check: %s: phase self_ns sum %.0f exceeds "
                     "wall_ns x threads %.0f\n",
                     path, self_sum, budget);
        return kExitSchema;
    }

    const JsonValue* stacks = profile->find("stacks");
    if (stacks == nullptr || !stacks->isArray()) {
        std::fprintf(stderr,
                     "json_check: %s: profile lacks a \"stacks\" array\n",
                     path);
        return kExitSchema;
    }
    std::size_t index = 0;
    for (const JsonValue& stack : stacks->items()) {
        std::string what = "stacks[" + std::to_string(index) + "]";
        const JsonValue* name = stack.find("stack");
        if (name == nullptr ||
            name->kind() != JsonValue::Kind::String ||
            name->string().empty()) {
            std::fprintf(stderr,
                         "json_check: %s: %s lacks a \"stack\" string\n",
                         path, what.c_str());
            return kExitSchema;
        }
        double count = 0.0;
        double total = 0.0;
        double self = 0.0;
        if (!profField(path, what, stack, "count", count) ||
            !profField(path, what, stack, "total_ns", total) ||
            !profField(path, what, stack, "self_ns", self))
            return kExitSchema;
        if (self > total) {
            std::fprintf(stderr,
                         "json_check: %s: %s self_ns exceeds total_ns\n",
                         path, what.c_str());
            return kExitSchema;
        }
        ++index;
    }
    return kExitOk;
}

/** u64-ish field of @p node (see profField, same contract). */
bool
fuzzField(const char* path, const std::string& what,
          const JsonValue& node, const char* key, double& out)
{
    return profField(path, what, node, key, out);
}

int
checkFuzzSchema(const char* path, const JsonValue& doc)
{
    const JsonValue* schema = doc.find("schema");
    if (schema == nullptr ||
        schema->string() != phantom::runner::kFuzzResultSchema) {
        std::fprintf(stderr, "json_check: %s: missing \"%s\" marker\n",
                     path, phantom::runner::kFuzzResultSchema);
        return kExitSchema;
    }
    double jobs = 0.0;
    if (!fuzzField(path, "document", doc, "jobs", jobs))
        return kExitSchema;
    if (jobs < 1.0) {
        std::fprintf(stderr, "json_check: %s: jobs < 1\n", path);
        return kExitSchema;
    }

    const JsonValue* campaign = doc.find("campaign");
    if (campaign == nullptr || !campaign->isObject()) {
        std::fprintf(stderr, "json_check: %s: no \"campaign\" object\n",
                     path);
        return kExitSchema;
    }
    double budget = 0.0;
    double programs = 0.0;
    double total_stmts = 0.0;
    if (!fuzzField(path, "campaign", *campaign, "budget", budget) ||
        !fuzzField(path, "campaign", *campaign, "programs", programs) ||
        !fuzzField(path, "campaign", *campaign, "total_stmts",
                   total_stmts))
        return kExitSchema;
    if (programs != budget) {
        std::fprintf(stderr,
                     "json_check: %s: campaign ran %.0f of %.0f budgeted "
                     "programs\n",
                     path, programs, budget);
        return kExitSchema;
    }
    const JsonValue* seed = campaign->find("seed");
    if (seed == nullptr || seed->kind() != JsonValue::Kind::String ||
        seed->string().rfind("0x", 0) != 0) {
        // Seeds are u64; a JSON number would round them through double.
        std::fprintf(stderr,
                     "json_check: %s: campaign.seed is not a hex "
                     "string\n",
                     path);
        return kExitSchema;
    }
    const JsonValue* matrix = campaign->find("uarch_matrix");
    if (matrix == nullptr || !matrix->isArray() ||
        matrix->items().empty()) {
        std::fprintf(stderr,
                     "json_check: %s: campaign.uarch_matrix missing or "
                     "empty\n",
                     path);
        return kExitSchema;
    }
    const JsonValue* classes = campaign->find("classes");
    if (classes == nullptr || !classes->isObject()) {
        std::fprintf(stderr,
                     "json_check: %s: campaign.classes missing\n", path);
        return kExitSchema;
    }
    std::set<std::string> known_classes;
    for (int c = 0; c < phantom::fuzz::kGenClassCount; ++c)
        known_classes.insert(phantom::fuzz::genClassName(
            static_cast<phantom::fuzz::GenClass>(c)));
    for (const auto& [name, count] : classes->members()) {
        if (known_classes.count(name) == 0) {
            std::fprintf(stderr,
                         "json_check: %s: unknown generator class "
                         "\"%s\"\n",
                         path, name.c_str());
            return kExitSchema;
        }
        if (count.number() < 0.0) {
            std::fprintf(stderr,
                         "json_check: %s: class \"%s\" count negative\n",
                         path, name.c_str());
            return kExitSchema;
        }
    }

    const JsonValue* oracles = doc.find("oracles");
    if (oracles == nullptr || !oracles->isObject()) {
        std::fprintf(stderr, "json_check: %s: no \"oracles\" object\n",
                     path);
        return kExitSchema;
    }
    for (int o = 0; o < phantom::fuzz::kOracleCount; ++o) {
        const char* name =
            phantom::fuzz::oracleName(static_cast<phantom::fuzz::Oracle>(o));
        const JsonValue* oracle = oracles->find(name);
        std::string what = std::string("oracles.") + name;
        if (oracle == nullptr) {
            std::fprintf(stderr, "json_check: %s: %s missing\n", path,
                         what.c_str());
            return kExitSchema;
        }
        double ran = 0.0;
        double skipped = 0.0;
        double diverged = 0.0;
        if (!fuzzField(path, what, *oracle, "ran", ran) ||
            !fuzzField(path, what, *oracle, "skipped", skipped) ||
            !fuzzField(path, what, *oracle, "diverged", diverged))
            return kExitSchema;
        if (ran + skipped != programs) {
            std::fprintf(stderr,
                         "json_check: %s: %s ran %.0f + skipped %.0f "
                         "does not cover %.0f programs\n",
                         path, what.c_str(), ran, skipped, programs);
            return kExitSchema;
        }
        if (diverged > ran) {
            std::fprintf(stderr,
                         "json_check: %s: %s diverged %.0f exceeds ran "
                         "%.0f\n",
                         path, what.c_str(), diverged, ran);
            return kExitSchema;
        }
    }
    for (const auto& [name, oracle] : oracles->members()) {
        (void)oracle;
        if (phantom::fuzz::oracleFromName(name) ==
            phantom::fuzz::Oracle::kCount) {
            std::fprintf(stderr,
                         "json_check: %s: unknown oracle \"%s\"\n", path,
                         name.c_str());
            return kExitSchema;
        }
    }

    const JsonValue* divergences = doc.find("divergences");
    if (divergences == nullptr || !divergences->isArray()) {
        std::fprintf(stderr,
                     "json_check: %s: no \"divergences\" array\n", path);
        return kExitSchema;
    }
    const JsonValue* minimization = doc.find("minimization");
    if (minimization == nullptr || !minimization->isObject()) {
        std::fprintf(stderr,
                     "json_check: %s: no \"minimization\" object\n",
                     path);
        return kExitSchema;
    }
    double div_count = 0.0;
    double steps = 0.0;
    if (!fuzzField(path, "minimization", *minimization, "divergences",
                   div_count) ||
        !fuzzField(path, "minimization", *minimization, "steps", steps))
        return kExitSchema;
    if (div_count != static_cast<double>(divergences->items().size())) {
        std::fprintf(stderr,
                     "json_check: %s: minimization.divergences %.0f "
                     "disagrees with the divergences array (%zu)\n",
                     path, div_count, divergences->items().size());
        return kExitSchema;
    }

    std::size_t index = 0;
    for (const JsonValue& div : divergences->items()) {
        std::string what = "divergences[" + std::to_string(index) + "]";
        double trial = 0.0;
        double before = 0.0;
        double after = 0.0;
        if (!fuzzField(path, what, div, "trial", trial) ||
            !fuzzField(path, what, div, "stmts_before", before) ||
            !fuzzField(path, what, div, "stmts_after", after))
            return kExitSchema;
        if (trial >= budget || after < 1.0 || after > before) {
            std::fprintf(stderr,
                         "json_check: %s: %s is inconsistent (trial "
                         "%.0f, stmts %.0f -> %.0f)\n",
                         path, what.c_str(), trial, before, after);
            return kExitSchema;
        }
        const JsonValue* oracle = div.find("oracle");
        if (oracle == nullptr ||
            phantom::fuzz::oracleFromName(oracle->string()) ==
                phantom::fuzz::Oracle::kCount) {
            std::fprintf(stderr,
                         "json_check: %s: %s has no valid oracle\n",
                         path, what.c_str());
            return kExitSchema;
        }
        ++index;
    }
    return kExitOk;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 3)
        return usage();
    std::string mode = argv[1];

    if (mode == "--parse") {
        JsonValue doc;
        return loadJson(argv[2], doc) ? kExitOk : kExitParse;
    }

    if (mode == "--expect-experiments") {
        JsonValue doc;
        if (!loadJson(argv[2], doc))
            return kExitParse;
        if (!hasResultSchema(doc, argv[2]))
            return kExitSchema;
        const JsonValue* experiments = doc.find("experiments");
        if (experiments == nullptr || !experiments->isObject()) {
            std::fprintf(stderr,
                         "json_check: %s: no \"experiments\" object\n",
                         argv[2]);
            return kExitSchema;
        }
        int missing = 0;
        for (int i = 3; i < argc; ++i) {
            if (experiments->find(argv[i]) == nullptr) {
                std::fprintf(stderr,
                             "json_check: %s: experiment \"%s\" missing\n",
                             argv[2], argv[i]);
                ++missing;
            }
        }
        return missing == 0 ? kExitOk : kExitSchema;
    }

    if (mode == "--metrics-schema") {
        JsonValue doc;
        if (!loadJson(argv[2], doc))
            return kExitParse;
        return checkMetricsSchema(argv[2], doc);
    }

    if (mode == "--trace-schema") {
        JsonValue doc;
        if (!loadJson(argv[2], doc))
            return kExitParse;
        const JsonValue* events = doc.find("traceEvents");
        if (events == nullptr || !events->isArray()) {
            std::fprintf(stderr,
                         "json_check: %s: no \"traceEvents\" array\n",
                         argv[2]);
            return kExitSchema;
        }
        phantom::u64 slices = 0;
        phantom::u64 episode_slices = 0;
        phantom::u64 index = 0;
        for (const JsonValue& event : events->items()) {
            const JsonValue* ph = event.find("ph");
            const JsonValue* pid = event.find("pid");
            const JsonValue* tid = event.find("tid");
            const JsonValue* name = event.find("name");
            // tid is optional only on process-scoped metadata ("M").
            bool needs_tid =
                ph != nullptr && ph->kind() == JsonValue::Kind::String &&
                ph->string() != "M";
            if (ph == nullptr || ph->kind() != JsonValue::Kind::String ||
                pid == nullptr || name == nullptr ||
                (needs_tid && tid == nullptr)) {
                std::fprintf(stderr,
                             "json_check: %s: traceEvents[%llu] lacks "
                             "ph/pid/tid/name\n",
                             argv[2],
                             static_cast<unsigned long long>(index));
                return kExitSchema;
            }
            if (ph->string() == "X") {
                if (event.find("ts") == nullptr ||
                    event.find("dur") == nullptr) {
                    std::fprintf(stderr,
                                 "json_check: %s: slice traceEvents[%llu] "
                                 "lacks ts/dur\n",
                                 argv[2],
                                 static_cast<unsigned long long>(index));
                    return kExitSchema;
                }
                ++slices;
                if (name->string().rfind("episode:", 0) == 0)
                    ++episode_slices;
            }
            ++index;
        }
        if (episode_slices == 0) {
            std::fprintf(stderr,
                         "json_check: %s: %llu slices but no "
                         "\"episode:*\" slice — the trace shows no "
                         "speculation episode\n",
                         argv[2], static_cast<unsigned long long>(slices));
            return kExitSchema;
        }
        return kExitOk;
    }

    if (mode == "--prom-schema")
        return checkPromSchema(argv[2]);

    if (mode == "--profile-schema") {
        JsonValue doc;
        if (!loadJson(argv[2], doc))
            return kExitParse;
        return checkProfileSchema(argv[2], doc);
    }

    if (mode == "--expect-no-profile") {
        JsonValue doc;
        if (!loadJson(argv[2], doc))
            return kExitParse;
        if (doc.find("profile") != nullptr) {
            std::fprintf(stderr,
                         "json_check: %s: unexpected \"profile\" section "
                         "(is PHANTOM_PROF=1 leaking into a default "
                         "run?)\n",
                         argv[2]);
            return kExitSchema;
        }
        return kExitOk;
    }

    if (mode == "--fuzz-schema") {
        JsonValue doc;
        if (!loadJson(argv[2], doc))
            return kExitParse;
        return checkFuzzSchema(argv[2], doc);
    }

    if (mode == "--equal-path") {
        if (argc != 5)
            return usage();
        JsonValue a;
        JsonValue b;
        if (!loadJson(argv[3], a) || !loadJson(argv[4], b))
            return kExitParse;
        const JsonValue* lhs = a.findPath(argv[2]);
        const JsonValue* rhs = b.findPath(argv[2]);
        if (lhs == nullptr || rhs == nullptr) {
            std::fprintf(stderr, "json_check: path \"%s\" missing\n",
                         argv[2]);
            return kExitSchema;
        }
        if (*lhs != *rhs) {
            std::fprintf(stderr,
                         "json_check: subtree \"%s\" differs between %s "
                         "and %s\n",
                         argv[2], argv[3], argv[4]);
            return kExitSchema;
        }
        return kExitOk;
    }

    return usage();
}
