/**
 * @file
 * Validation tool for the bench JSON result files, used by the
 * bench_smoke CTest suite.
 *
 *   json_check --parse FILE
 *       exit 0 iff FILE is valid JSON
 *   json_check --expect-experiments FILE KEY...
 *       additionally require the schema marker and every KEY under
 *       "experiments"
 *   json_check --equal-path PATH FILE1 FILE2
 *       require the subtrees at dotted PATH to be structurally equal
 *       (used to assert PHANTOM_JOBS=1 and =N produce byte-identical
 *       aggregated statistics)
 *   json_check --trace-schema FILE
 *       require FILE to be a Chrome trace_event document: an object
 *       with a "traceEvents" array whose entries carry ph/pid/tid/name,
 *       ts+dur on "X" slices — and at least one episode slice (the
 *       per-stage rendering the trace exists for)
 */

#include "runner/json.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using phantom::runner::JsonValue;
using phantom::runner::parseJson;

namespace {

bool
loadJson(const char* path, JsonValue& out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "json_check: cannot read %s\n", path);
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    if (!parseJson(buffer.str(), out, &error)) {
        std::fprintf(stderr, "json_check: %s: %s\n", path, error.c_str());
        return false;
    }
    return true;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: json_check --parse FILE\n"
                 "       json_check --expect-experiments FILE KEY...\n"
                 "       json_check --equal-path PATH FILE1 FILE2\n"
                 "       json_check --trace-schema FILE\n");
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 3)
        return usage();
    std::string mode = argv[1];

    if (mode == "--parse") {
        JsonValue doc;
        return loadJson(argv[2], doc) ? 0 : 1;
    }

    if (mode == "--expect-experiments") {
        JsonValue doc;
        if (!loadJson(argv[2], doc))
            return 1;
        const JsonValue* schema = doc.find("schema");
        if (schema == nullptr ||
            schema->string() != "phantom-bench-results/v1") {
            std::fprintf(stderr, "json_check: %s: missing schema marker\n",
                         argv[2]);
            return 1;
        }
        const JsonValue* experiments = doc.find("experiments");
        if (experiments == nullptr || !experiments->isObject()) {
            std::fprintf(stderr,
                         "json_check: %s: no \"experiments\" object\n",
                         argv[2]);
            return 1;
        }
        int missing = 0;
        for (int i = 3; i < argc; ++i) {
            if (experiments->find(argv[i]) == nullptr) {
                std::fprintf(stderr,
                             "json_check: %s: experiment \"%s\" missing\n",
                             argv[2], argv[i]);
                ++missing;
            }
        }
        return missing == 0 ? 0 : 1;
    }

    if (mode == "--trace-schema") {
        JsonValue doc;
        if (!loadJson(argv[2], doc))
            return 1;
        const JsonValue* events = doc.find("traceEvents");
        if (events == nullptr || !events->isArray()) {
            std::fprintf(stderr,
                         "json_check: %s: no \"traceEvents\" array\n",
                         argv[2]);
            return 1;
        }
        phantom::u64 slices = 0;
        phantom::u64 episode_slices = 0;
        phantom::u64 index = 0;
        for (const JsonValue& event : events->items()) {
            const JsonValue* ph = event.find("ph");
            const JsonValue* pid = event.find("pid");
            const JsonValue* tid = event.find("tid");
            const JsonValue* name = event.find("name");
            // tid is optional only on process-scoped metadata ("M").
            bool needs_tid =
                ph != nullptr && ph->kind() == JsonValue::Kind::String &&
                ph->string() != "M";
            if (ph == nullptr || ph->kind() != JsonValue::Kind::String ||
                pid == nullptr || name == nullptr ||
                (needs_tid && tid == nullptr)) {
                std::fprintf(stderr,
                             "json_check: %s: traceEvents[%llu] lacks "
                             "ph/pid/tid/name\n",
                             argv[2],
                             static_cast<unsigned long long>(index));
                return 1;
            }
            if (ph->string() == "X") {
                if (event.find("ts") == nullptr ||
                    event.find("dur") == nullptr) {
                    std::fprintf(stderr,
                                 "json_check: %s: slice traceEvents[%llu] "
                                 "lacks ts/dur\n",
                                 argv[2],
                                 static_cast<unsigned long long>(index));
                    return 1;
                }
                ++slices;
                if (name->string().rfind("episode:", 0) == 0)
                    ++episode_slices;
            }
            ++index;
        }
        if (episode_slices == 0) {
            std::fprintf(stderr,
                         "json_check: %s: %llu slices but no "
                         "\"episode:*\" slice — the trace shows no "
                         "speculation episode\n",
                         argv[2], static_cast<unsigned long long>(slices));
            return 1;
        }
        return 0;
    }

    if (mode == "--equal-path") {
        if (argc != 5)
            return usage();
        JsonValue a;
        JsonValue b;
        if (!loadJson(argv[3], a) || !loadJson(argv[4], b))
            return 1;
        const JsonValue* lhs = a.findPath(argv[2]);
        const JsonValue* rhs = b.findPath(argv[2]);
        if (lhs == nullptr || rhs == nullptr) {
            std::fprintf(stderr, "json_check: path \"%s\" missing\n",
                         argv[2]);
            return 1;
        }
        if (*lhs != *rhs) {
            std::fprintf(stderr,
                         "json_check: subtree \"%s\" differs between %s "
                         "and %s\n",
                         argv[2], argv[3], argv[4]);
            return 1;
        }
        return 0;
    }

    return usage();
}
