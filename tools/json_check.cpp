/**
 * @file
 * Validation tool for the bench JSON result files, used by the
 * bench_smoke and bench_regress CTest suites.
 *
 *   json_check --parse FILE
 *       exit 0 iff FILE is valid JSON
 *   json_check --expect-experiments FILE KEY...
 *       additionally require the schema marker (v1 or v2) and every
 *       KEY under "experiments"
 *   json_check --metrics-schema FILE
 *       require the v2 "metrics" section: deterministic / measured /
 *       manifest members present, histograms well-formed (strictly
 *       increasing bucket lower bounds, positive bucket counts summing
 *       to the histogram count), manifest carrying bench /
 *       campaign_seed / fast_mode / uarch
 *   json_check --equal-path PATH FILE1 FILE2
 *       require the subtrees at dotted PATH to be structurally equal
 *       (used to assert PHANTOM_JOBS=1 and =N produce byte-identical
 *       aggregated statistics)
 *   json_check --trace-schema FILE
 *       require FILE to be a Chrome trace_event document: an object
 *       with a "traceEvents" array whose entries carry ph/pid/tid/name,
 *       ts+dur on "X" slices — and at least one episode slice (the
 *       per-stage rendering the trace exists for)
 *
 * Exit codes: 0 = valid, 1 = schema/validation failure, 2 = parse or
 * I/O failure, 64 = usage error. CI consumers branch on the parse vs
 * schema distinction ("the bench crashed mid-write" vs "the bench
 * wrote the wrong shape").
 */

#include "runner/json.hpp"
#include "runner/schema.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using phantom::runner::JsonValue;
using phantom::runner::parseJson;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitSchema = 1;
constexpr int kExitParse = 2;
constexpr int kExitUsage = 64;

/** Load and parse, or report and return false (exit kExitParse). */
bool
loadJson(const char* path, JsonValue& out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "json_check: cannot read %s\n", path);
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    if (!parseJson(buffer.str(), out, &error)) {
        std::fprintf(stderr, "json_check: %s: %s\n", path, error.c_str());
        return false;
    }
    return true;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: json_check --parse FILE\n"
                 "       json_check --expect-experiments FILE KEY...\n"
                 "       json_check --metrics-schema FILE\n"
                 "       json_check --equal-path PATH FILE1 FILE2\n"
                 "       json_check --trace-schema FILE\n");
    return kExitUsage;
}

bool
hasResultSchema(const JsonValue& doc, const char* path)
{
    const JsonValue* schema = doc.find("schema");
    if (schema != nullptr &&
        (schema->string() == phantom::runner::kResultSchemaV1 ||
         schema->string() == phantom::runner::kResultSchemaV2))
        return true;
    std::fprintf(stderr, "json_check: %s: missing schema marker\n", path);
    return false;
}

/** One registry histogram: {"count": N, "buckets": [{"lo","count"}...]}
 *  with strictly increasing lower bounds and positive per-bucket counts
 *  summing to the total. */
bool
checkHistogram(const char* path, const std::string& name,
               const JsonValue& hist)
{
    const JsonValue* count = hist.find("count");
    const JsonValue* buckets = hist.find("buckets");
    if (count == nullptr || buckets == nullptr || !buckets->isArray()) {
        std::fprintf(stderr,
                     "json_check: %s: histogram \"%s\" lacks "
                     "count/buckets\n",
                     path, name.c_str());
        return false;
    }
    double previous_lo = -1.0;
    bool first = true;
    double total = 0.0;
    std::size_t index = 0;
    for (const JsonValue& bucket : buckets->items()) {
        const JsonValue* lo = bucket.find("lo");
        const JsonValue* n = bucket.find("count");
        if (lo == nullptr || n == nullptr) {
            std::fprintf(stderr,
                         "json_check: %s: histogram \"%s\" bucket %zu "
                         "lacks lo/count\n",
                         path, name.c_str(), index);
            return false;
        }
        if (!first && !(lo->number() > previous_lo)) {
            std::fprintf(stderr,
                         "json_check: %s: histogram \"%s\" bucket edges "
                         "not strictly increasing at %zu\n",
                         path, name.c_str(), index);
            return false;
        }
        if (!(n->number() > 0.0)) {
            std::fprintf(stderr,
                         "json_check: %s: histogram \"%s\" bucket %zu "
                         "has non-positive count (zero buckets are "
                         "elided on write)\n",
                         path, name.c_str(), index);
            return false;
        }
        previous_lo = lo->number();
        first = false;
        total += n->number();
        ++index;
    }
    if (total != count->number()) {
        std::fprintf(stderr,
                     "json_check: %s: histogram \"%s\" bucket counts sum "
                     "to %.0f, count says %.0f\n",
                     path, name.c_str(), total, count->number());
        return false;
    }
    return true;
}

/** One of metrics.deterministic / metrics.measured. */
bool
checkRegistry(const char* path, const char* which,
              const JsonValue& registry)
{
    if (!registry.isObject()) {
        std::fprintf(stderr, "json_check: %s: metrics.%s not an object\n",
                     path, which);
        return false;
    }
    const JsonValue* histograms = registry.find("histograms");
    if (histograms == nullptr)
        return true;
    if (!histograms->isObject()) {
        std::fprintf(stderr,
                     "json_check: %s: metrics.%s.histograms not an "
                     "object\n",
                     path, which);
        return false;
    }
    for (const auto& [name, hist] : histograms->members())
        if (!checkHistogram(path, name, hist))
            return false;
    return true;
}

int
checkMetricsSchema(const char* path, const JsonValue& doc)
{
    if (!hasResultSchema(doc, path))
        return kExitSchema;
    const JsonValue* metrics = doc.find("metrics");
    if (metrics == nullptr || !metrics->isObject()) {
        std::fprintf(stderr, "json_check: %s: no \"metrics\" object\n",
                     path);
        return kExitSchema;
    }
    for (const char* which : {"deterministic", "measured"}) {
        const JsonValue* registry = metrics->find(which);
        if (registry == nullptr) {
            std::fprintf(stderr, "json_check: %s: metrics.%s missing\n",
                         path, which);
            return kExitSchema;
        }
        if (!checkRegistry(path, which, *registry))
            return kExitSchema;
    }
    const JsonValue* manifest = metrics->find("manifest");
    if (manifest == nullptr || !manifest->isObject()) {
        std::fprintf(stderr, "json_check: %s: metrics.manifest missing\n",
                     path);
        return kExitSchema;
    }
    for (const char* key : {"bench", "campaign_seed", "fast_mode",
                            "uarch"}) {
        if (manifest->find(key) == nullptr) {
            std::fprintf(stderr,
                         "json_check: %s: metrics.manifest.%s missing\n",
                         path, key);
            return kExitSchema;
        }
    }
    return kExitOk;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 3)
        return usage();
    std::string mode = argv[1];

    if (mode == "--parse") {
        JsonValue doc;
        return loadJson(argv[2], doc) ? kExitOk : kExitParse;
    }

    if (mode == "--expect-experiments") {
        JsonValue doc;
        if (!loadJson(argv[2], doc))
            return kExitParse;
        if (!hasResultSchema(doc, argv[2]))
            return kExitSchema;
        const JsonValue* experiments = doc.find("experiments");
        if (experiments == nullptr || !experiments->isObject()) {
            std::fprintf(stderr,
                         "json_check: %s: no \"experiments\" object\n",
                         argv[2]);
            return kExitSchema;
        }
        int missing = 0;
        for (int i = 3; i < argc; ++i) {
            if (experiments->find(argv[i]) == nullptr) {
                std::fprintf(stderr,
                             "json_check: %s: experiment \"%s\" missing\n",
                             argv[2], argv[i]);
                ++missing;
            }
        }
        return missing == 0 ? kExitOk : kExitSchema;
    }

    if (mode == "--metrics-schema") {
        JsonValue doc;
        if (!loadJson(argv[2], doc))
            return kExitParse;
        return checkMetricsSchema(argv[2], doc);
    }

    if (mode == "--trace-schema") {
        JsonValue doc;
        if (!loadJson(argv[2], doc))
            return kExitParse;
        const JsonValue* events = doc.find("traceEvents");
        if (events == nullptr || !events->isArray()) {
            std::fprintf(stderr,
                         "json_check: %s: no \"traceEvents\" array\n",
                         argv[2]);
            return kExitSchema;
        }
        phantom::u64 slices = 0;
        phantom::u64 episode_slices = 0;
        phantom::u64 index = 0;
        for (const JsonValue& event : events->items()) {
            const JsonValue* ph = event.find("ph");
            const JsonValue* pid = event.find("pid");
            const JsonValue* tid = event.find("tid");
            const JsonValue* name = event.find("name");
            // tid is optional only on process-scoped metadata ("M").
            bool needs_tid =
                ph != nullptr && ph->kind() == JsonValue::Kind::String &&
                ph->string() != "M";
            if (ph == nullptr || ph->kind() != JsonValue::Kind::String ||
                pid == nullptr || name == nullptr ||
                (needs_tid && tid == nullptr)) {
                std::fprintf(stderr,
                             "json_check: %s: traceEvents[%llu] lacks "
                             "ph/pid/tid/name\n",
                             argv[2],
                             static_cast<unsigned long long>(index));
                return kExitSchema;
            }
            if (ph->string() == "X") {
                if (event.find("ts") == nullptr ||
                    event.find("dur") == nullptr) {
                    std::fprintf(stderr,
                                 "json_check: %s: slice traceEvents[%llu] "
                                 "lacks ts/dur\n",
                                 argv[2],
                                 static_cast<unsigned long long>(index));
                    return kExitSchema;
                }
                ++slices;
                if (name->string().rfind("episode:", 0) == 0)
                    ++episode_slices;
            }
            ++index;
        }
        if (episode_slices == 0) {
            std::fprintf(stderr,
                         "json_check: %s: %llu slices but no "
                         "\"episode:*\" slice — the trace shows no "
                         "speculation episode\n",
                         argv[2], static_cast<unsigned long long>(slices));
            return kExitSchema;
        }
        return kExitOk;
    }

    if (mode == "--equal-path") {
        if (argc != 5)
            return usage();
        JsonValue a;
        JsonValue b;
        if (!loadJson(argv[3], a) || !loadJson(argv[4], b))
            return kExitParse;
        const JsonValue* lhs = a.findPath(argv[2]);
        const JsonValue* rhs = b.findPath(argv[2]);
        if (lhs == nullptr || rhs == nullptr) {
            std::fprintf(stderr, "json_check: path \"%s\" missing\n",
                         argv[2]);
            return kExitSchema;
        }
        if (*lhs != *rhs) {
            std::fprintf(stderr,
                         "json_check: subtree \"%s\" differs between %s "
                         "and %s\n",
                         argv[2], argv[3], argv[4]);
            return kExitSchema;
        }
        return kExitOk;
    }

    return usage();
}
