/**
 * @file
 * The experiment daemon entry point: bind 127.0.0.1, serve /run,
 * /healthz and /statsz until SIGINT/SIGTERM.
 *
 * Environment (all strictly validated — a malformed value exits 64
 * naming the offending string, see runner/env.hpp):
 *   PHANTOM_SERVE_PORT         port to bind (default 0 = ephemeral;
 *                              the chosen port is printed on stdout)
 *   PHANTOM_SERVE_QUEUE        admission queue capacity (default 64)
 *   PHANTOM_SERVE_DEADLINE_MS  default per-request deadline; 0 = none
 *   PHANTOM_JOBS               worker pool size (shared with benches)
 */

#include "runner/env.hpp"
#include "serve/daemon.hpp"

#include <csignal>
#include <cstdio>

int
main()
{
    using namespace phantom;

    u64 port = runner::envU64Strict("PHANTOM_SERVE_PORT", 0, 0, 65535);
    u64 queue = runner::envU64Strict("PHANTOM_SERVE_QUEUE", 64, 1, 65536);
    u64 deadline_ms =
        runner::envU64Strict("PHANTOM_SERVE_DEADLINE_MS", 0);

    // Block the shutdown signals before any thread exists so every
    // thread inherits the mask and sigwait() below is the only receiver.
    sigset_t signals;
    sigemptyset(&signals);
    sigaddset(&signals, SIGINT);
    sigaddset(&signals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &signals, nullptr);

    serve::ServerOptions options;
    options.queueCapacity = static_cast<std::size_t>(queue);
    options.defaultDeadlineMs = deadline_ms;
    serve::Server server(options);

    try {
        serve::Daemon daemon(server, static_cast<int>(port));
        std::printf(
            "phantom-serve: listening on 127.0.0.1:%d "
            "(jobs=%u, queue=%zu, deadline_ms=%llu)\n",
            daemon.port(), server.jobs(), server.queueCapacity(),
            static_cast<unsigned long long>(deadline_ms));
        std::fflush(stdout);

        int received = 0;
        sigwait(&signals, &received);
        std::printf("phantom-serve: signal %d, draining\n", received);
        daemon.stop();
        server.stop();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "phantom-serve: %s\n", e.what());
        return 1;
    }
    return 0;
}
