/**
 * @file
 * The experiment daemon entry point: bind 127.0.0.1, serve /run,
 * /healthz, /statsz and /metricsz until SIGINT/SIGTERM.
 *
 * Environment (numeric knobs strictly validated — a malformed value
 * exits 64 naming the offending string, see runner/env.hpp):
 *   PHANTOM_SERVE_PORT         port to bind (default 0 = ephemeral;
 *                              the chosen port is printed on stdout)
 *   PHANTOM_SERVE_QUEUE        admission queue capacity (default 64)
 *   PHANTOM_SERVE_DEADLINE_MS  default per-request deadline; 0 = none
 *   PHANTOM_SERVE_LOG          JSON-lines access log destination
 *   PHANTOM_SERVE_SLOW_MS      flight-recorder threshold in ms
 *                              (0 = every request; unset = disabled)
 *   PHANTOM_SERVE_FLIGHT_DIR   where flight traces land (default ".")
 *   PHANTOM_JOBS               worker pool size (shared with benches)
 */

#include "runner/env.hpp"
#include "serve/daemon.hpp"

#include <csignal>
#include <cstdio>

int
main()
{
    using namespace phantom;

    u64 port = runner::envU64Strict("PHANTOM_SERVE_PORT", 0, 0, 65535);

    // Block the shutdown signals before any thread exists so every
    // thread inherits the mask and sigwait() below is the only receiver.
    sigset_t signals;
    sigemptyset(&signals);
    sigaddset(&signals, SIGINT);
    sigaddset(&signals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &signals, nullptr);

    serve::ServerOptions options = serve::serverOptionsFromEnv();
    serve::Server server(options);

    try {
        serve::Daemon daemon(server, static_cast<int>(port));
        std::printf(
            "phantom-serve: listening on 127.0.0.1:%d "
            "(jobs=%u, queue=%zu, deadline_ms=%llu)\n",
            daemon.port(), server.jobs(), server.queueCapacity(),
            static_cast<unsigned long long>(options.defaultDeadlineMs));
        if (options.slowRequestMs != serve::ServerOptions::kSlowDisabled)
            std::printf(
                "phantom-serve: flight recorder on "
                "(slow_ms=%llu, dir=%s, max_files=%zu)\n",
                static_cast<unsigned long long>(options.slowRequestMs),
                options.flightDir.c_str(), options.flightMaxFiles);
        std::fflush(stdout);

        int received = 0;
        sigwait(&signals, &received);
        std::printf("phantom-serve: signal %d, draining\n", received);
        daemon.stop();
        server.stop();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "phantom-serve: %s\n", e.what());
        return 1;
    }
    return 0;
}
