# Configures a separate build tree with PHANTOM_SANITIZE=ON, builds the
# snapshot test binaries under ASan+UBSan, and runs them. Invoked by the
# sanitize_check CTest as:
#
#   cmake -DSOURCE_DIR=<repo root> -DWORK_DIR=<scratch dir>
#         "-DTARGETS=<;-list of test executables>"
#         -P RunSanitizeCheck.cmake
#
# The loader fuzzers are the main beneficiary: an out-of-bounds read in
# snap::load() that a plain build tolerates becomes a hard failure here.

set(BUILD_DIR "${WORK_DIR}/sanitize-build")
file(MAKE_DIRECTORY "${BUILD_DIR}")

execute_process(
    COMMAND ${CMAKE_COMMAND}
        -S "${SOURCE_DIR}" -B "${BUILD_DIR}"
        -DPHANTOM_SANITIZE=ON
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
    RESULT_VARIABLE config_rv
    OUTPUT_VARIABLE config_out
    ERROR_VARIABLE config_err)
if(NOT config_rv EQUAL 0)
    message(FATAL_ERROR
        "sanitize configure failed (rv=${config_rv})\n"
        "${config_out}\n${config_err}")
endif()

foreach(target IN LISTS TARGETS)
    execute_process(
        COMMAND ${CMAKE_COMMAND} --build "${BUILD_DIR}"
            --target ${target} --parallel 2
        RESULT_VARIABLE build_rv
        OUTPUT_VARIABLE build_out
        ERROR_VARIABLE build_err)
    if(NOT build_rv EQUAL 0)
        message(FATAL_ERROR
            "sanitize build of ${target} failed (rv=${build_rv})\n"
            "${build_out}\n${build_err}")
    endif()
    execute_process(
        COMMAND "${BUILD_DIR}/tests/${target}"
        RESULT_VARIABLE run_rv
        OUTPUT_VARIABLE run_out
        ERROR_VARIABLE run_err)
    if(NOT run_rv EQUAL 0)
        message(FATAL_ERROR
            "${target} failed under ASan+UBSan (rv=${run_rv})\n"
            "${run_out}\n${run_err}")
    endif()
    message(STATUS "${target}: clean under ASan+UBSan")
endforeach()
