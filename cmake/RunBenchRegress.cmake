# Runs the full fast bench campaign and gates it against the checked-in
# baseline store. Invoked by the bench_regress CTest (and, with
# -DUPDATE=ON, by the `baselines` convenience target) as:
#
#   cmake -DBENCH_DIR=<dir with bench_* exes> -DREPORT=<bench_report exe>
#         -DCHECKER=<json_check exe> -DBASELINE_DIR=<bench/baselines>
#         -DWORK_DIR=<scratch dir> "-DBENCHES=<;-list>" [-DUPDATE=ON]
#         -P RunBenchRegress.cmake
#
# Steps:
#   1. run every bench with PHANTOM_FAST=1 PHANTOM_JOBS=1 (serial-safe
#      on 1-core hosts) into WORK_DIR/results
#   2. validate each result file against the v2 metrics schema
#   3. UPDATE=ON: rewrite BASELINE_DIR from the results and stop
#   4. otherwise: rerun bench_table1 with PHANTOM_JOBS=2 and require the
#      jobs=1 vs jobs=2 diff to report zero deterministic drift
#   5. compare results against BASELINE_DIR with generous measured
#      tolerances (PHANTOM_DIFF_RELTOL=9, PHANTOM_DIFF_HISTTOL=1.0:
#      wall-clock noise never gates, deterministic metrics always gate
#      bit-exactly) and write WORK_DIR/report.md + report.html

set(RESULTS_DIR "${WORK_DIR}/results")
file(REMOVE_RECURSE "${RESULTS_DIR}")
file(MAKE_DIRECTORY "${RESULTS_DIR}")

foreach(bench IN LISTS BENCHES)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env
            PHANTOM_FAST=1 PHANTOM_JOBS=1
            "PHANTOM_JSON_DIR=${RESULTS_DIR}"
            "${BENCH_DIR}/${bench}"
        RESULT_VARIABLE bench_rv
        OUTPUT_VARIABLE bench_out
        ERROR_VARIABLE bench_err)
    if(NOT bench_rv EQUAL 0)
        message(FATAL_ERROR
            "${bench} failed (rv=${bench_rv})\n${bench_out}\n${bench_err}")
    endif()
    execute_process(
        COMMAND "${CHECKER}" --metrics-schema
            "${RESULTS_DIR}/${bench}.json"
        RESULT_VARIABLE check_rv)
    if(NOT check_rv EQUAL 0)
        message(FATAL_ERROR "${bench}: metrics schema validation failed")
    endif()
endforeach()

if(UPDATE)
    execute_process(
        COMMAND "${REPORT}" --update-baselines "${RESULTS_DIR}"
            "${BASELINE_DIR}"
        RESULT_VARIABLE update_rv
        OUTPUT_VARIABLE update_out
        ERROR_VARIABLE update_err)
    if(NOT update_rv EQUAL 0)
        message(FATAL_ERROR
            "baseline update failed (rv=${update_rv})\n"
            "${update_out}\n${update_err}")
    endif()
    message(STATUS "baselines refreshed in ${BASELINE_DIR}")
    return()
endif()

# Jobs-invariance: the deterministic sections must be bit-identical for
# any worker count. Generous measured tolerances keep wall-clock noise
# out of this check; deterministic drift always fails it.
file(MAKE_DIRECTORY "${WORK_DIR}/results_j2")
execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
        PHANTOM_FAST=1 PHANTOM_JOBS=2
        "PHANTOM_JSON_DIR=${WORK_DIR}/results_j2"
        "${BENCH_DIR}/bench_table1"
    RESULT_VARIABLE j2_rv
    OUTPUT_VARIABLE j2_out
    ERROR_VARIABLE j2_err)
if(NOT j2_rv EQUAL 0)
    message(FATAL_ERROR
        "bench_table1 jobs=2 rerun failed (rv=${j2_rv})\n"
        "${j2_out}\n${j2_err}")
endif()
execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
        PHANTOM_DIFF_RELTOL=9 PHANTOM_DIFF_HISTTOL=1.0
        "${REPORT}" --diff
        "${RESULTS_DIR}/bench_table1.json"
        "${WORK_DIR}/results_j2/bench_table1.json"
    RESULT_VARIABLE jobs_rv
    OUTPUT_VARIABLE jobs_out
    ERROR_VARIABLE jobs_err)
if(NOT jobs_rv EQUAL 0)
    message(FATAL_ERROR
        "bench_table1: PHANTOM_JOBS=1 vs =2 shows deterministic drift\n"
        "${jobs_out}\n${jobs_err}")
endif()

# The regression gate proper: diff against the checked-in baselines.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
        PHANTOM_DIFF_RELTOL=9 PHANTOM_DIFF_HISTTOL=1.0
        "${REPORT}" --compare "${BASELINE_DIR}" "${RESULTS_DIR}"
        --report "${WORK_DIR}/report.md" --html "${WORK_DIR}/report.html"
    RESULT_VARIABLE gate_rv
    OUTPUT_VARIABLE gate_out
    ERROR_VARIABLE gate_err)
message(STATUS "${gate_out}")
if(NOT gate_rv EQUAL 0)
    message(FATAL_ERROR
        "bench_regress gate FAILED — see ${WORK_DIR}/report.md\n"
        "${gate_out}\n${gate_err}\n"
        "If the change is intentional, refresh the store with\n"
        "  cmake --build build --target baselines\n"
        "and commit bench/baselines/.")
endif()
message(STATUS "bench_regress gate passed; report in ${WORK_DIR}/report.md")
