# End-to-end check of the observability subsystem. Invoked by the
# trace_check CTest target as:
#
#   cmake -DBENCH=<bench exe> -DCHECKER=<json_check exe>
#         -DEXPORTER=<trace_export exe> -DNAME=<bench name>
#         -DWORK_DIR=<scratch dir> -P RunTraceCheck.cmake
#
# Steps:
#   1. run the bench under PHANTOM_FAST=1 PHANTOM_JOBS=2 with
#      PHANTOM_TRACE set, and validate the emitted Chrome trace_event
#      document (episode slices included) with json_check --trace-schema
#   2. rerun with PHANTOM_JOBS=1 and require the metrics sections that
#      claim determinism — metrics.deterministic and metrics.manifest —
#      to be structurally identical across job counts
#   3. run the standalone trace_export tool and schema-check its output
#      too, so the export path is covered without a campaign in the loop

file(MAKE_DIRECTORY "${WORK_DIR}/jobs2")
file(MAKE_DIRECTORY "${WORK_DIR}/jobs1")

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
        PHANTOM_FAST=1 PHANTOM_JOBS=2
        "PHANTOM_JSON_DIR=${WORK_DIR}/jobs2"
        "PHANTOM_TRACE=${WORK_DIR}/jobs2/${NAME}.trace.json"
        "${BENCH}"
    RESULT_VARIABLE bench_rv
    OUTPUT_VARIABLE bench_out
    ERROR_VARIABLE bench_err)
if(NOT bench_rv EQUAL 0)
    message(FATAL_ERROR
        "${NAME} (traced) failed (rv=${bench_rv})\n${bench_out}\n"
        "${bench_err}")
endif()

execute_process(
    COMMAND "${CHECKER}" --trace-schema
        "${WORK_DIR}/jobs2/${NAME}.trace.json"
    RESULT_VARIABLE trace_rv)
if(NOT trace_rv EQUAL 0)
    message(FATAL_ERROR "${NAME}: Chrome trace schema validation failed")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
        PHANTOM_FAST=1 PHANTOM_JOBS=1
        "PHANTOM_JSON_DIR=${WORK_DIR}/jobs1"
        "${BENCH}"
    RESULT_VARIABLE serial_rv
    OUTPUT_VARIABLE serial_out
    ERROR_VARIABLE serial_err)
if(NOT serial_rv EQUAL 0)
    message(FATAL_ERROR
        "${NAME} serial rerun failed (rv=${serial_rv})\n${serial_out}\n"
        "${serial_err}")
endif()

foreach(path metrics.deterministic metrics.manifest)
    execute_process(
        COMMAND "${CHECKER}" --equal-path ${path}
            "${WORK_DIR}/jobs2/${NAME}.json"
            "${WORK_DIR}/jobs1/${NAME}.json"
        RESULT_VARIABLE equal_rv)
    if(NOT equal_rv EQUAL 0)
        message(FATAL_ERROR
            "${NAME}: \"${path}\" differs between PHANTOM_JOBS=2 and "
            "PHANTOM_JOBS=1 — a section documented as jobs-independent "
            "is not")
    endif()
endforeach()

execute_process(
    COMMAND "${EXPORTER}" "${WORK_DIR}/standalone.trace.json"
    RESULT_VARIABLE export_rv
    OUTPUT_VARIABLE export_out
    ERROR_VARIABLE export_err)
if(NOT export_rv EQUAL 0)
    message(FATAL_ERROR
        "trace_export failed (rv=${export_rv})\n${export_out}\n"
        "${export_err}")
endif()

execute_process(
    COMMAND "${CHECKER}" --trace-schema "${WORK_DIR}/standalone.trace.json"
    RESULT_VARIABLE standalone_rv)
if(NOT standalone_rv EQUAL 0)
    message(FATAL_ERROR
        "trace_export output failed Chrome trace schema validation")
endif()
