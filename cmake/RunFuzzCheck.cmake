# The differential-fuzz CI gate (FUZZING.md). Invoked by the
# fuzz_check CTest as:
#
#   cmake -DCAMPAIGN=<fuzz_campaign exe> -DCHECKER=<json_check exe>
#         -DCORPUS_DIR=<tests/corpus> -DOUT_DIR=<scratch dir>
#         [-DBUDGET=10000] -P RunFuzzCheck.cmake
#
# Steps:
#   1. the mass campaign: BUDGET fixed-seed programs through all four
#      differential oracles across the default uarch matrix — any
#      divergence (exit 1) fails the gate
#   2. the summary JSON must satisfy the phantom-fuzz-results/v1 schema
#   3. determinism: a smaller campaign run twice, --jobs 1 vs --jobs 2,
#      must produce bit-identical compared subtrees (campaign, oracles,
#      minimization, divergences) — scheduling must never leak into
#      results
#   4. every checked-in regression repro in CORPUS_DIR replays clean
#
# The campaign budget is a knob so bigger sweeps can reuse this script
# (ctest only runs the default).

if(NOT BUDGET)
    set(BUDGET 10000)
endif()

file(MAKE_DIRECTORY "${OUT_DIR}")

# -- 1. the mass campaign ---------------------------------------------
execute_process(
    COMMAND "${CAMPAIGN}" --budget ${BUDGET} --seed 1
        --json "${OUT_DIR}/campaign.json"
    RESULT_VARIABLE campaign_rv
    OUTPUT_VARIABLE campaign_out
    ERROR_VARIABLE campaign_err)
message(STATUS "${campaign_out}")
if(NOT campaign_rv EQUAL 0)
    message(FATAL_ERROR
        "fuzz_check: campaign of ${BUDGET} programs found divergences "
        "or failed (rv=${campaign_rv})\n${campaign_out}\n${campaign_err}")
endif()

# -- 2. schema ---------------------------------------------------------
execute_process(
    COMMAND "${CHECKER}" --fuzz-schema "${OUT_DIR}/campaign.json"
    RESULT_VARIABLE schema_rv)
if(NOT schema_rv EQUAL 0)
    message(FATAL_ERROR
        "fuzz_check: campaign.json fails the phantom-fuzz-results/v1 "
        "schema")
endif()

# -- 3. jobs invariance ------------------------------------------------
foreach(jobs 1 2)
    execute_process(
        COMMAND "${CAMPAIGN}" --budget 300 --seed 1 --jobs ${jobs}
            --json "${OUT_DIR}/jobs${jobs}.json"
        RESULT_VARIABLE jobs_rv
        OUTPUT_QUIET)
    if(NOT jobs_rv EQUAL 0)
        message(FATAL_ERROR
            "fuzz_check: invariance campaign (--jobs ${jobs}) failed "
            "(rv=${jobs_rv})")
    endif()
endforeach()
foreach(subtree campaign oracles minimization divergences)
    execute_process(
        COMMAND "${CHECKER}" --equal-path ${subtree}
            "${OUT_DIR}/jobs1.json" "${OUT_DIR}/jobs2.json"
        RESULT_VARIABLE equal_rv)
    if(NOT equal_rv EQUAL 0)
        message(FATAL_ERROR
            "fuzz_check: '${subtree}' differs between --jobs 1 and "
            "--jobs 2 — the campaign leaked scheduling nondeterminism")
    endif()
endforeach()

# -- 4. regression corpus ---------------------------------------------
execute_process(
    COMMAND "${CAMPAIGN}" --replay "${CORPUS_DIR}"
    RESULT_VARIABLE replay_rv
    OUTPUT_VARIABLE replay_out
    ERROR_VARIABLE replay_err)
message(STATUS "${replay_out}")
if(NOT replay_rv EQUAL 0)
    message(FATAL_ERROR
        "fuzz_check: corpus replay regressed "
        "(rv=${replay_rv})\n${replay_out}\n${replay_err}")
endif()
