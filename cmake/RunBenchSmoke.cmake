# Smoke-runs one wired bench under the parallel runner and validates its
# JSON result export. Invoked by the bench_smoke CTest targets as:
#
#   cmake -DBENCH=<bench exe> -DCHECKER=<json_check exe> -DNAME=<bench name>
#         -DJSON_DIR=<scratch dir> -DKEYS=<;-list of experiment keys>
#         [-DCOMPARE_JOBS=ON] -P RunBenchSmoke.cmake
#
# Steps:
#   1. run the bench with PHANTOM_FAST=1 PHANTOM_JOBS=2
#   2. check the emitted JSON parses, carries the schema marker, and
#      contains the expected experiment keys
#   3. check the "metrics" section against the v2 schema (registries
#      present, histograms well-formed, manifest complete)
#   4. with COMPARE_JOBS: rerun serially (PHANTOM_JOBS=1) and require the
#      "experiments" subtree — every aggregated statistic — to be
#      structurally identical to the parallel run
#   5. with COMPARE_DECODE_CACHE: rerun with PHANTOM_DECODE_CACHE=0 and
#      require both the "experiments" subtree and the
#      "metrics.deterministic" registry to be bit-identical — the
#      predecode cache is a pure speedup, never a model change
#   6. with COMPARE_SUPERBLOCKS: same contract for the decoded-superblock
#      engine (PHANTOM_SUPERBLOCKS=0 rerun) — block-threaded dispatch
#      must be indistinguishable from the single-step loop
#   7. with CHECK_PROFILE: require the default run to carry NO "profile"
#      section (PHANTOM_PROF defaults off), rerun with PHANTOM_PROF=1,
#      validate the emitted profile section against the host-profile
#      schema, and require the "experiments" subtree to be identical —
#      the profiler observes host time, never simulated state

file(MAKE_DIRECTORY "${JSON_DIR}")

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
        PHANTOM_FAST=1 PHANTOM_JOBS=2 "PHANTOM_JSON_DIR=${JSON_DIR}"
        "${BENCH}"
    RESULT_VARIABLE bench_rv
    OUTPUT_VARIABLE bench_out
    ERROR_VARIABLE bench_err)
if(NOT bench_rv EQUAL 0)
    message(FATAL_ERROR
        "${NAME} failed (rv=${bench_rv})\n${bench_out}\n${bench_err}")
endif()

execute_process(
    COMMAND "${CHECKER}" --expect-experiments "${JSON_DIR}/${NAME}.json"
        ${KEYS}
    RESULT_VARIABLE check_rv)
if(NOT check_rv EQUAL 0)
    message(FATAL_ERROR "${NAME}: JSON validation failed")
endif()

execute_process(
    COMMAND "${CHECKER}" --metrics-schema "${JSON_DIR}/${NAME}.json"
    RESULT_VARIABLE metrics_rv)
if(NOT metrics_rv EQUAL 0)
    message(FATAL_ERROR "${NAME}: metrics schema validation failed")
endif()

if(COMPARE_JOBS)
    file(MAKE_DIRECTORY "${JSON_DIR}/serial")
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env
            PHANTOM_FAST=1 PHANTOM_JOBS=1
            "PHANTOM_JSON_DIR=${JSON_DIR}/serial"
            "${BENCH}"
        RESULT_VARIABLE serial_rv
        OUTPUT_VARIABLE serial_out
        ERROR_VARIABLE serial_err)
    if(NOT serial_rv EQUAL 0)
        message(FATAL_ERROR
            "${NAME} serial rerun failed (rv=${serial_rv})\n"
            "${serial_out}\n${serial_err}")
    endif()
    execute_process(
        COMMAND "${CHECKER}" --equal-path experiments
            "${JSON_DIR}/${NAME}.json" "${JSON_DIR}/serial/${NAME}.json"
        RESULT_VARIABLE equal_rv)
    if(NOT equal_rv EQUAL 0)
        message(FATAL_ERROR
            "${NAME}: PHANTOM_JOBS=2 and PHANTOM_JOBS=1 disagree on "
            "aggregated statistics")
    endif()
endif()

if(COMPARE_DECODE_CACHE)
    file(MAKE_DIRECTORY "${JSON_DIR}/nodc")
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env
            PHANTOM_FAST=1 PHANTOM_JOBS=2 PHANTOM_DECODE_CACHE=0
            "PHANTOM_JSON_DIR=${JSON_DIR}/nodc"
            "${BENCH}"
        RESULT_VARIABLE nodc_rv
        OUTPUT_VARIABLE nodc_out
        ERROR_VARIABLE nodc_err)
    if(NOT nodc_rv EQUAL 0)
        message(FATAL_ERROR
            "${NAME} PHANTOM_DECODE_CACHE=0 rerun failed (rv=${nodc_rv})\n"
            "${nodc_out}\n${nodc_err}")
    endif()
    foreach(subtree experiments metrics.deterministic)
        execute_process(
            COMMAND "${CHECKER}" --equal-path ${subtree}
                "${JSON_DIR}/${NAME}.json" "${JSON_DIR}/nodc/${NAME}.json"
            RESULT_VARIABLE dc_equal_rv)
        if(NOT dc_equal_rv EQUAL 0)
            message(FATAL_ERROR
                "${NAME}: '${subtree}' differs between "
                "PHANTOM_DECODE_CACHE=1 and =0 — the predecode cache "
                "leaked into simulated state")
        endif()
    endforeach()
endif()

if(COMPARE_SUPERBLOCKS)
    file(MAKE_DIRECTORY "${JSON_DIR}/nosb")
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env
            PHANTOM_FAST=1 PHANTOM_JOBS=2 PHANTOM_SUPERBLOCKS=0
            "PHANTOM_JSON_DIR=${JSON_DIR}/nosb"
            "${BENCH}"
        RESULT_VARIABLE nosb_rv
        OUTPUT_VARIABLE nosb_out
        ERROR_VARIABLE nosb_err)
    if(NOT nosb_rv EQUAL 0)
        message(FATAL_ERROR
            "${NAME} PHANTOM_SUPERBLOCKS=0 rerun failed (rv=${nosb_rv})\n"
            "${nosb_out}\n${nosb_err}")
    endif()
    foreach(subtree experiments metrics.deterministic)
        execute_process(
            COMMAND "${CHECKER}" --equal-path ${subtree}
                "${JSON_DIR}/${NAME}.json" "${JSON_DIR}/nosb/${NAME}.json"
            RESULT_VARIABLE sb_equal_rv)
        if(NOT sb_equal_rv EQUAL 0)
            message(FATAL_ERROR
                "${NAME}: '${subtree}' differs between "
                "PHANTOM_SUPERBLOCKS=1 and =0 — the superblock engine "
                "leaked into simulated state")
        endif()
    endforeach()
endif()

if(CHECK_PROFILE)
    execute_process(
        COMMAND "${CHECKER}" --expect-no-profile "${JSON_DIR}/${NAME}.json"
        RESULT_VARIABLE noprof_rv)
    if(NOT noprof_rv EQUAL 0)
        message(FATAL_ERROR
            "${NAME}: default run emitted a profile section — "
            "PHANTOM_PROF must default off")
    endif()
    file(MAKE_DIRECTORY "${JSON_DIR}/prof")
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env
            PHANTOM_FAST=1 PHANTOM_JOBS=2 PHANTOM_PROF=1
            "PHANTOM_JSON_DIR=${JSON_DIR}/prof"
            "${BENCH}"
        RESULT_VARIABLE prof_rv
        OUTPUT_VARIABLE prof_out
        ERROR_VARIABLE prof_err)
    if(NOT prof_rv EQUAL 0)
        message(FATAL_ERROR
            "${NAME} PHANTOM_PROF=1 rerun failed (rv=${prof_rv})\n"
            "${prof_out}\n${prof_err}")
    endif()
    execute_process(
        COMMAND "${CHECKER}" --profile-schema
            "${JSON_DIR}/prof/${NAME}.json"
        RESULT_VARIABLE prof_schema_rv)
    if(NOT prof_schema_rv EQUAL 0)
        message(FATAL_ERROR "${NAME}: profile schema validation failed")
    endif()
    execute_process(
        COMMAND "${CHECKER}" --equal-path experiments
            "${JSON_DIR}/${NAME}.json" "${JSON_DIR}/prof/${NAME}.json"
        RESULT_VARIABLE prof_equal_rv)
    if(NOT prof_equal_rv EQUAL 0)
        message(FATAL_ERROR
            "${NAME}: 'experiments' differs between PHANTOM_PROF=0 "
            "and =1 — the profiler leaked into simulated state")
    endif()
endif()
