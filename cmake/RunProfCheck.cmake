# End-to-end check of the host-time self-profiler (src/obs/prof).
# Invoked by the prof_check CTest target as:
#
#   cmake -DBENCH=<bench exe> -DCHECKER=<json_check exe>
#         -DREPORT=<prof_report exe> -DNAME=<bench name>
#         -DWORK_DIR=<scratch dir> -P RunProfCheck.cmake
#
# Steps:
#   1. run the bench three times unprofiled and three times with
#      PHANTOM_PROF=1, interleaved so machine-speed drift (cold
#      caches, co-tenant load) hits both sets alike (PHANTOM_PROF_DIR
#      set on the first profiled run so the folded stacks and Perfetto
#      trace land on disk)
#   2. schema-check the profiled result documents (self <= total per
#      phase, self-time sum bounded by wall clock) and require the
#      unprofiled ones to carry no profile section at all
#   3. require "experiments" to be identical between the profiled and
#      unprofiled runs: profiling observes host time, never the model
#   4. rerun profiled with PHANTOM_JOBS=1 and require identical phase
#      sets and entry counts vs the jobs=2 run (prof_report
#      --compare-counts) — the order-free-merge guarantee. Snapshots
#      are disabled for this pair: the capture/fork counts depend on
#      how trials split across workers.
#   5. gate measured overhead: min wall clock over the profiled runs
#      must stay within 5% + 750ms of the unprofiled runs' (the slack
#      absorbs single-core host noise, which round-robin scheduling
#      makes comparable to the overhead itself on a ~5s campaign)
#   6. round-trip the folded stacks through prof_report --check-folded,
#      parse-check the written Perfetto trace, and require the ranked
#      bottleneck table to mention the machine.run phase

foreach(dir base1 base2 base3 prof1 prof2 prof3 prof_jobs1)
    file(MAKE_DIRECTORY "${WORK_DIR}/${dir}")
endforeach()

function(run_bench out_dir)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env
            PHANTOM_FAST=1 "PHANTOM_JSON_DIR=${WORK_DIR}/${out_dir}"
            ${ARGN} "${BENCH}"
        RESULT_VARIABLE rv
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rv EQUAL 0)
        message(FATAL_ERROR
            "${NAME} (${out_dir}) failed (rv=${rv})\n${out}\n${err}")
    endif()
endfunction()

run_bench(base1 PHANTOM_JOBS=2)
run_bench(prof1 PHANTOM_JOBS=2 PHANTOM_PROF=1
    "PHANTOM_PROF_DIR=${WORK_DIR}/prof1")
run_bench(base2 PHANTOM_JOBS=2)
run_bench(prof2 PHANTOM_JOBS=2 PHANTOM_PROF=1)
run_bench(base3 PHANTOM_JOBS=2)
run_bench(prof3 PHANTOM_JOBS=2 PHANTOM_PROF=1)
run_bench(prof_jobs1 PHANTOM_JOBS=1 PHANTOM_PROF=1 PHANTOM_SNAP=0)

foreach(dir base1 base2 base3)
    execute_process(
        COMMAND "${CHECKER}" --expect-no-profile
            "${WORK_DIR}/${dir}/${NAME}.json"
        RESULT_VARIABLE noprof_rv)
    if(NOT noprof_rv EQUAL 0)
        message(FATAL_ERROR
            "${NAME}: unprofiled run ${dir} carries a profile section")
    endif()
endforeach()

foreach(dir prof1 prof2 prof3 prof_jobs1)
    execute_process(
        COMMAND "${CHECKER}" --profile-schema
            "${WORK_DIR}/${dir}/${NAME}.json"
        RESULT_VARIABLE schema_rv)
    if(NOT schema_rv EQUAL 0)
        message(FATAL_ERROR
            "${NAME}: ${dir} failed host-profile schema validation")
    endif()
endforeach()

execute_process(
    COMMAND "${CHECKER}" --equal-path experiments
        "${WORK_DIR}/base1/${NAME}.json" "${WORK_DIR}/prof1/${NAME}.json"
    RESULT_VARIABLE equal_rv)
if(NOT equal_rv EQUAL 0)
    message(FATAL_ERROR
        "${NAME}: 'experiments' differs between PHANTOM_PROF=0 and =1 "
        "— the profiler leaked into simulated state")
endif()

# The jobs=1 profiled run used PHANTOM_SNAP=0, so run a jobs=2 partner
# under the same snapshot setting for the count comparison.
file(MAKE_DIRECTORY "${WORK_DIR}/prof_jobs2")
run_bench(prof_jobs2 PHANTOM_JOBS=2 PHANTOM_PROF=1 PHANTOM_SNAP=0)
execute_process(
    COMMAND "${REPORT}" --compare-counts
        "${WORK_DIR}/prof_jobs1/${NAME}.json"
        "${WORK_DIR}/prof_jobs2/${NAME}.json"
    RESULT_VARIABLE counts_rv)
if(NOT counts_rv EQUAL 0)
    message(FATAL_ERROR
        "${NAME}: phase entry counts differ between PHANTOM_JOBS=1 and "
        "=2 — the per-shard merge is not order-free")
endif()

execute_process(
    COMMAND "${REPORT}" --overhead-gate
        --base "${WORK_DIR}/base1/${NAME}.json"
            "${WORK_DIR}/base2/${NAME}.json"
            "${WORK_DIR}/base3/${NAME}.json"
        --prof "${WORK_DIR}/prof1/${NAME}.json"
            "${WORK_DIR}/prof2/${NAME}.json"
            "${WORK_DIR}/prof3/${NAME}.json"
        --max-pct 5 --slack-ms 750
    RESULT_VARIABLE gate_rv)
if(NOT gate_rv EQUAL 0)
    message(FATAL_ERROR
        "${NAME}: PHANTOM_PROF=1 overhead exceeds the 5% budget")
endif()

execute_process(
    COMMAND "${REPORT}" --check-folded
        "${WORK_DIR}/prof1/${NAME}.json"
        "${WORK_DIR}/prof1/${NAME}.folded"
    RESULT_VARIABLE folded_rv)
if(NOT folded_rv EQUAL 0)
    message(FATAL_ERROR
        "${NAME}: folded stacks do not round-trip through prof_report")
endif()

execute_process(
    COMMAND "${CHECKER}" --parse
        "${WORK_DIR}/prof1/${NAME}.prof.trace.json"
    RESULT_VARIABLE trace_parse_rv)
if(NOT trace_parse_rv EQUAL 0)
    message(FATAL_ERROR
        "${NAME}: PHANTOM_PROF_DIR Perfetto trace is not valid JSON")
endif()
execute_process(
    COMMAND "${REPORT}" --trace "${WORK_DIR}/prof1/${NAME}.json"
        "${WORK_DIR}/regen.trace.json"
    RESULT_VARIABLE trace_rv)
if(NOT trace_rv EQUAL 0)
    message(FATAL_ERROR
        "${NAME}: prof_report --trace failed on the profiled result")
endif()

execute_process(
    COMMAND "${REPORT}" "${WORK_DIR}/prof1/${NAME}.json"
    RESULT_VARIABLE table_rv
    OUTPUT_VARIABLE table_out)
if(NOT table_rv EQUAL 0)
    message(FATAL_ERROR "${NAME}: prof_report bottleneck table failed")
endif()
if(NOT table_out MATCHES "machine\\.run")
    message(FATAL_ERROR
        "${NAME}: bottleneck table does not mention machine.run:\n"
        "${table_out}")
endif()
