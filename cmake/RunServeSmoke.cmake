# Smoke-tests the experiment daemon end to end. Invoked by the
# serve_smoke CTest as:
#
#   cmake -DSMOKE=<serve_smoke exe> -DCHECKER=<json_check exe>
#         -DOUT_DIR=<scratch dir> -P RunServeSmoke.cmake
#
# Steps:
#   1. run serve_smoke: real daemon on an ephemeral loopback port,
#      protocol checks (404/405/400/413/429/505), two concurrent
#      identical POST /run whose bodies land in OUT_DIR
#   2. check each body against the v2 metrics schema and the expected
#      experiment key
#   3. require the two responses to be bit-identical on "experiments"
#      and "metrics.deterministic" — identical specs with identical
#      seeds must agree regardless of queueing and concurrency

file(MAKE_DIRECTORY "${OUT_DIR}")

execute_process(
    COMMAND "${SMOKE}" "${OUT_DIR}"
    RESULT_VARIABLE smoke_rv
    OUTPUT_VARIABLE smoke_out
    ERROR_VARIABLE smoke_err)
message(STATUS "${smoke_out}")
if(NOT smoke_rv EQUAL 0)
    message(FATAL_ERROR
        "serve_smoke failed (rv=${smoke_rv})\n${smoke_out}\n${smoke_err}")
endif()

foreach(response r1 r2)
    execute_process(
        COMMAND "${CHECKER}" --metrics-schema "${OUT_DIR}/${response}.json"
        RESULT_VARIABLE metrics_rv)
    if(NOT metrics_rv EQUAL 0)
        message(FATAL_ERROR
            "serve_smoke: ${response}.json fails the v2 metrics schema")
    endif()
    execute_process(
        COMMAND "${CHECKER}" --expect-experiments
            "${OUT_DIR}/${response}.json" zen2
        RESULT_VARIABLE keys_rv)
    if(NOT keys_rv EQUAL 0)
        message(FATAL_ERROR
            "serve_smoke: ${response}.json lacks the zen2 experiment")
    endif()
endforeach()

foreach(subtree experiments metrics.deterministic metrics.manifest)
    execute_process(
        COMMAND "${CHECKER}" --equal-path ${subtree}
            "${OUT_DIR}/r1.json" "${OUT_DIR}/r2.json"
        RESULT_VARIABLE equal_rv)
    if(NOT equal_rv EQUAL 0)
        message(FATAL_ERROR
            "serve_smoke: '${subtree}' differs between two identical "
            "seeded requests — the daemon leaked nondeterminism")
    endif()
endforeach()
