# Smoke-tests the experiment daemon end to end. Invoked by the
# serve_smoke CTest as:
#
#   cmake -DSMOKE=<serve_smoke exe> -DCHECKER=<json_check exe>
#         -DOUT_DIR=<scratch dir> -P RunServeSmoke.cmake
#
# Steps:
#   1. run serve_smoke with the observability knobs set (JSON access
#      log, flight recorder on for every request): real daemon on an
#      ephemeral loopback port, protocol checks (404/405/400/413/429/
#      505), two concurrent identical POST /run whose bodies land in
#      OUT_DIR, /metricsz saved as metricsz.txt, request ids checked
#      against the access log, flight trace presence checked
#   2. check each body against the v2 metrics schema and the expected
#      experiment key
#   3. require the two responses to be bit-identical on "experiments"
#      and "metrics.deterministic" — identical specs with identical
#      seeds must agree regardless of queueing and concurrency
#   4. check the /metricsz exposition against the Prometheus 0.0.4
#      text format (--prom-schema)
#   5. require at least one flight trace and check each against the
#      Chrome trace schema (--trace-schema)

file(MAKE_DIRECTORY "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}/flight")
file(REMOVE "${OUT_DIR}/access.log")
file(GLOB stale_traces "${OUT_DIR}/flight/req-*.trace.json")
if(stale_traces)
    file(REMOVE ${stale_traces})
endif()

set(ENV{PHANTOM_SERVE_LOG} "${OUT_DIR}/access.log")
set(ENV{PHANTOM_SERVE_SLOW_MS} "0")
set(ENV{PHANTOM_SERVE_FLIGHT_DIR} "${OUT_DIR}/flight")

execute_process(
    COMMAND "${SMOKE}" "${OUT_DIR}"
    RESULT_VARIABLE smoke_rv
    OUTPUT_VARIABLE smoke_out
    ERROR_VARIABLE smoke_err)
message(STATUS "${smoke_out}")
if(NOT smoke_rv EQUAL 0)
    message(FATAL_ERROR
        "serve_smoke failed (rv=${smoke_rv})\n${smoke_out}\n${smoke_err}")
endif()

foreach(response r1 r2)
    execute_process(
        COMMAND "${CHECKER}" --metrics-schema "${OUT_DIR}/${response}.json"
        RESULT_VARIABLE metrics_rv)
    if(NOT metrics_rv EQUAL 0)
        message(FATAL_ERROR
            "serve_smoke: ${response}.json fails the v2 metrics schema")
    endif()
    execute_process(
        COMMAND "${CHECKER}" --expect-experiments
            "${OUT_DIR}/${response}.json" zen2
        RESULT_VARIABLE keys_rv)
    if(NOT keys_rv EQUAL 0)
        message(FATAL_ERROR
            "serve_smoke: ${response}.json lacks the zen2 experiment")
    endif()
endforeach()

foreach(subtree experiments metrics.deterministic metrics.manifest)
    execute_process(
        COMMAND "${CHECKER}" --equal-path ${subtree}
            "${OUT_DIR}/r1.json" "${OUT_DIR}/r2.json"
        RESULT_VARIABLE equal_rv)
    if(NOT equal_rv EQUAL 0)
        message(FATAL_ERROR
            "serve_smoke: '${subtree}' differs between two identical "
            "seeded requests — the daemon leaked nondeterminism")
    endif()
endforeach()

execute_process(
    COMMAND "${CHECKER}" --prom-schema "${OUT_DIR}/metricsz.txt"
    RESULT_VARIABLE prom_rv)
if(NOT prom_rv EQUAL 0)
    message(FATAL_ERROR
        "serve_smoke: metricsz.txt fails the Prometheus text schema")
endif()

file(GLOB flight_traces "${OUT_DIR}/flight/req-*.trace.json")
if(NOT flight_traces)
    message(FATAL_ERROR
        "serve_smoke: PHANTOM_SERVE_SLOW_MS=0 produced no flight traces")
endif()
foreach(trace ${flight_traces})
    execute_process(
        COMMAND "${CHECKER}" --trace-schema "${trace}"
        RESULT_VARIABLE trace_rv)
    if(NOT trace_rv EQUAL 0)
        message(FATAL_ERROR
            "serve_smoke: flight trace ${trace} fails the Chrome trace "
            "schema")
    endif()
endforeach()
