# Empty dependencies file for bench_mds.
# This may be replaced when dependencies are built.
