file(REMOVE_RECURSE
  "CMakeFiles/bench_mds.dir/bench_mds.cpp.o"
  "CMakeFiles/bench_mds.dir/bench_mds.cpp.o.d"
  "bench_mds"
  "bench_mds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
