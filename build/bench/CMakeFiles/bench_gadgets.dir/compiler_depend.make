# Empty compiler generated dependencies file for bench_gadgets.
# This may be replaced when dependencies are built.
