file(REMOVE_RECURSE
  "CMakeFiles/bench_mitigations.dir/bench_mitigations.cpp.o"
  "CMakeFiles/bench_mitigations.dir/bench_mitigations.cpp.o.d"
  "bench_mitigations"
  "bench_mitigations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mitigations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
