# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_phantom_core[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_bpu[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_os[1]_include.cmake")
include("/root/repo/build/tests/test_attack_units[1]_include.cmake")
include("/root/repo/build/tests/test_exploits[1]_include.cmake")
include("/root/repo/build/tests/prop_machine[1]_include.cmake")
include("/root/repo/build/tests/test_mitigation_sw[1]_include.cmake")
include("/root/repo/build/tests/test_machine_edge[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_trace_and_suppress[1]_include.cmake")
include("/root/repo/build/tests/test_prefetch[1]_include.cmake")
include("/root/repo/build/tests/test_smt_stibp[1]_include.cmake")
include("/root/repo/build/tests/prop_isa_fuzz[1]_include.cmake")
include("/root/repo/build/tests/prop_bpu[1]_include.cmake")
include("/root/repo/build/tests/test_gadget_scan[1]_include.cmake")
include("/root/repo/build/tests/test_table1_golden[1]_include.cmake")
