file(REMOVE_RECURSE
  "CMakeFiles/test_mitigation_sw.dir/test_mitigation_sw.cpp.o"
  "CMakeFiles/test_mitigation_sw.dir/test_mitigation_sw.cpp.o.d"
  "test_mitigation_sw"
  "test_mitigation_sw.pdb"
  "test_mitigation_sw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mitigation_sw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
