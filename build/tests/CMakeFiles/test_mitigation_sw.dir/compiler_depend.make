# Empty compiler generated dependencies file for test_mitigation_sw.
# This may be replaced when dependencies are built.
