# Empty compiler generated dependencies file for test_gadget_scan.
# This may be replaced when dependencies are built.
