file(REMOVE_RECURSE
  "CMakeFiles/test_gadget_scan.dir/test_gadget_scan.cpp.o"
  "CMakeFiles/test_gadget_scan.dir/test_gadget_scan.cpp.o.d"
  "test_gadget_scan"
  "test_gadget_scan.pdb"
  "test_gadget_scan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gadget_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
