file(REMOVE_RECURSE
  "CMakeFiles/test_attack_units.dir/test_attack_units.cpp.o"
  "CMakeFiles/test_attack_units.dir/test_attack_units.cpp.o.d"
  "test_attack_units"
  "test_attack_units.pdb"
  "test_attack_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
