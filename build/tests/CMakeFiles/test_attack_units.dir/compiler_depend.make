# Empty compiler generated dependencies file for test_attack_units.
# This may be replaced when dependencies are built.
