file(REMOVE_RECURSE
  "CMakeFiles/test_phantom_core.dir/test_phantom_core.cpp.o"
  "CMakeFiles/test_phantom_core.dir/test_phantom_core.cpp.o.d"
  "test_phantom_core"
  "test_phantom_core.pdb"
  "test_phantom_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phantom_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
