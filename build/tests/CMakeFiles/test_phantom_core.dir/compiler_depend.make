# Empty compiler generated dependencies file for test_phantom_core.
# This may be replaced when dependencies are built.
