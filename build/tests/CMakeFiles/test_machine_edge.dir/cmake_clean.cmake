file(REMOVE_RECURSE
  "CMakeFiles/test_machine_edge.dir/test_machine_edge.cpp.o"
  "CMakeFiles/test_machine_edge.dir/test_machine_edge.cpp.o.d"
  "test_machine_edge"
  "test_machine_edge.pdb"
  "test_machine_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
