# Empty dependencies file for test_machine_edge.
# This may be replaced when dependencies are built.
