file(REMOVE_RECURSE
  "CMakeFiles/prop_machine.dir/prop_machine.cpp.o"
  "CMakeFiles/prop_machine.dir/prop_machine.cpp.o.d"
  "prop_machine"
  "prop_machine.pdb"
  "prop_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
