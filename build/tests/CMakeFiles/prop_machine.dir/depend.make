# Empty dependencies file for prop_machine.
# This may be replaced when dependencies are built.
