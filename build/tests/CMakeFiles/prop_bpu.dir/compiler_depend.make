# Empty compiler generated dependencies file for prop_bpu.
# This may be replaced when dependencies are built.
