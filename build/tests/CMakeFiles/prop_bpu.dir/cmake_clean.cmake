file(REMOVE_RECURSE
  "CMakeFiles/prop_bpu.dir/prop_bpu.cpp.o"
  "CMakeFiles/prop_bpu.dir/prop_bpu.cpp.o.d"
  "prop_bpu"
  "prop_bpu.pdb"
  "prop_bpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_bpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
