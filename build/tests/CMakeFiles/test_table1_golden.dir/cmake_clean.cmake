file(REMOVE_RECURSE
  "CMakeFiles/test_table1_golden.dir/test_table1_golden.cpp.o"
  "CMakeFiles/test_table1_golden.dir/test_table1_golden.cpp.o.d"
  "test_table1_golden"
  "test_table1_golden.pdb"
  "test_table1_golden[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_table1_golden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
