# Empty compiler generated dependencies file for test_table1_golden.
# This may be replaced when dependencies are built.
