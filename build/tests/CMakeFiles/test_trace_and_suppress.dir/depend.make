# Empty dependencies file for test_trace_and_suppress.
# This may be replaced when dependencies are built.
