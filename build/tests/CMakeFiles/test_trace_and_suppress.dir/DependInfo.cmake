
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_trace_and_suppress.cpp" "tests/CMakeFiles/test_trace_and_suppress.dir/test_trace_and_suppress.cpp.o" "gcc" "tests/CMakeFiles/test_trace_and_suppress.dir/test_trace_and_suppress.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/phantom_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/phantom_os.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/phantom_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/bpu/CMakeFiles/phantom_bpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/phantom_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/phantom_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/phantom_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/phantom_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
