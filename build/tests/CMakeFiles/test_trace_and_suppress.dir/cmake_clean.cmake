file(REMOVE_RECURSE
  "CMakeFiles/test_trace_and_suppress.dir/test_trace_and_suppress.cpp.o"
  "CMakeFiles/test_trace_and_suppress.dir/test_trace_and_suppress.cpp.o.d"
  "test_trace_and_suppress"
  "test_trace_and_suppress.pdb"
  "test_trace_and_suppress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_and_suppress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
