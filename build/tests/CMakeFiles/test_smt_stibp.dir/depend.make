# Empty dependencies file for test_smt_stibp.
# This may be replaced when dependencies are built.
