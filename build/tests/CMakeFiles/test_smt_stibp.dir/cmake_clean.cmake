file(REMOVE_RECURSE
  "CMakeFiles/test_smt_stibp.dir/test_smt_stibp.cpp.o"
  "CMakeFiles/test_smt_stibp.dir/test_smt_stibp.cpp.o.d"
  "test_smt_stibp"
  "test_smt_stibp.pdb"
  "test_smt_stibp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smt_stibp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
