# Empty compiler generated dependencies file for prop_isa_fuzz.
# This may be replaced when dependencies are built.
