file(REMOVE_RECURSE
  "CMakeFiles/prop_isa_fuzz.dir/prop_isa_fuzz.cpp.o"
  "CMakeFiles/prop_isa_fuzz.dir/prop_isa_fuzz.cpp.o.d"
  "prop_isa_fuzz"
  "prop_isa_fuzz.pdb"
  "prop_isa_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prop_isa_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
