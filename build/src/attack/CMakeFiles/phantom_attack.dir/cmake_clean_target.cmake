file(REMOVE_RECURSE
  "libphantom_attack.a"
)
