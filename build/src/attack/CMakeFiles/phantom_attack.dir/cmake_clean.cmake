file(REMOVE_RECURSE
  "CMakeFiles/phantom_attack.dir/btb_re.cpp.o"
  "CMakeFiles/phantom_attack.dir/btb_re.cpp.o.d"
  "CMakeFiles/phantom_attack.dir/covert.cpp.o"
  "CMakeFiles/phantom_attack.dir/covert.cpp.o.d"
  "CMakeFiles/phantom_attack.dir/experiment.cpp.o"
  "CMakeFiles/phantom_attack.dir/experiment.cpp.o.d"
  "CMakeFiles/phantom_attack.dir/exploits.cpp.o"
  "CMakeFiles/phantom_attack.dir/exploits.cpp.o.d"
  "CMakeFiles/phantom_attack.dir/prime_probe.cpp.o"
  "CMakeFiles/phantom_attack.dir/prime_probe.cpp.o.d"
  "CMakeFiles/phantom_attack.dir/testbed.cpp.o"
  "CMakeFiles/phantom_attack.dir/testbed.cpp.o.d"
  "CMakeFiles/phantom_attack.dir/workloads.cpp.o"
  "CMakeFiles/phantom_attack.dir/workloads.cpp.o.d"
  "libphantom_attack.a"
  "libphantom_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
