# Empty compiler generated dependencies file for phantom_attack.
# This may be replaced when dependencies are built.
