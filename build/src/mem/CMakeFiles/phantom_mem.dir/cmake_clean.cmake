file(REMOVE_RECURSE
  "CMakeFiles/phantom_mem.dir/cache.cpp.o"
  "CMakeFiles/phantom_mem.dir/cache.cpp.o.d"
  "CMakeFiles/phantom_mem.dir/hierarchy.cpp.o"
  "CMakeFiles/phantom_mem.dir/hierarchy.cpp.o.d"
  "CMakeFiles/phantom_mem.dir/noise.cpp.o"
  "CMakeFiles/phantom_mem.dir/noise.cpp.o.d"
  "CMakeFiles/phantom_mem.dir/paging.cpp.o"
  "CMakeFiles/phantom_mem.dir/paging.cpp.o.d"
  "CMakeFiles/phantom_mem.dir/phys_mem.cpp.o"
  "CMakeFiles/phantom_mem.dir/phys_mem.cpp.o.d"
  "libphantom_mem.a"
  "libphantom_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
