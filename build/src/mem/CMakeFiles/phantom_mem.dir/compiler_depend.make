# Empty compiler generated dependencies file for phantom_mem.
# This may be replaced when dependencies are built.
