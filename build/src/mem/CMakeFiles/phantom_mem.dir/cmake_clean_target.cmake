file(REMOVE_RECURSE
  "libphantom_mem.a"
)
