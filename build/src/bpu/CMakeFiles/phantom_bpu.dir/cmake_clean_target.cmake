file(REMOVE_RECURSE
  "libphantom_bpu.a"
)
