
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bpu/bpu.cpp" "src/bpu/CMakeFiles/phantom_bpu.dir/bpu.cpp.o" "gcc" "src/bpu/CMakeFiles/phantom_bpu.dir/bpu.cpp.o.d"
  "/root/repo/src/bpu/btb.cpp" "src/bpu/CMakeFiles/phantom_bpu.dir/btb.cpp.o" "gcc" "src/bpu/CMakeFiles/phantom_bpu.dir/btb.cpp.o.d"
  "/root/repo/src/bpu/btb_hash.cpp" "src/bpu/CMakeFiles/phantom_bpu.dir/btb_hash.cpp.o" "gcc" "src/bpu/CMakeFiles/phantom_bpu.dir/btb_hash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/phantom_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/phantom_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
