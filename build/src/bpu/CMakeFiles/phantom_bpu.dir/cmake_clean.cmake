file(REMOVE_RECURSE
  "CMakeFiles/phantom_bpu.dir/bpu.cpp.o"
  "CMakeFiles/phantom_bpu.dir/bpu.cpp.o.d"
  "CMakeFiles/phantom_bpu.dir/btb.cpp.o"
  "CMakeFiles/phantom_bpu.dir/btb.cpp.o.d"
  "CMakeFiles/phantom_bpu.dir/btb_hash.cpp.o"
  "CMakeFiles/phantom_bpu.dir/btb_hash.cpp.o.d"
  "libphantom_bpu.a"
  "libphantom_bpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_bpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
