# Empty compiler generated dependencies file for phantom_bpu.
# This may be replaced when dependencies are built.
