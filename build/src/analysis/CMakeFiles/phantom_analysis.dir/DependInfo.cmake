
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/gadget_scan.cpp" "src/analysis/CMakeFiles/phantom_analysis.dir/gadget_scan.cpp.o" "gcc" "src/analysis/CMakeFiles/phantom_analysis.dir/gadget_scan.cpp.o.d"
  "/root/repo/src/analysis/gf2.cpp" "src/analysis/CMakeFiles/phantom_analysis.dir/gf2.cpp.o" "gcc" "src/analysis/CMakeFiles/phantom_analysis.dir/gf2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/phantom_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/phantom_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
