file(REMOVE_RECURSE
  "libphantom_analysis.a"
)
