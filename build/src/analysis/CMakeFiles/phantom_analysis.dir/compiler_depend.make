# Empty compiler generated dependencies file for phantom_analysis.
# This may be replaced when dependencies are built.
