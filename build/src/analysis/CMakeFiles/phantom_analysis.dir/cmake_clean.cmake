file(REMOVE_RECURSE
  "CMakeFiles/phantom_analysis.dir/gadget_scan.cpp.o"
  "CMakeFiles/phantom_analysis.dir/gadget_scan.cpp.o.d"
  "CMakeFiles/phantom_analysis.dir/gf2.cpp.o"
  "CMakeFiles/phantom_analysis.dir/gf2.cpp.o.d"
  "libphantom_analysis.a"
  "libphantom_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
