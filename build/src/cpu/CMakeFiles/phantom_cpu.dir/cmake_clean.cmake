file(REMOVE_RECURSE
  "CMakeFiles/phantom_cpu.dir/machine.cpp.o"
  "CMakeFiles/phantom_cpu.dir/machine.cpp.o.d"
  "CMakeFiles/phantom_cpu.dir/microarch.cpp.o"
  "CMakeFiles/phantom_cpu.dir/microarch.cpp.o.d"
  "libphantom_cpu.a"
  "libphantom_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
