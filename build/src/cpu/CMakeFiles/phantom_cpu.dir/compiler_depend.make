# Empty compiler generated dependencies file for phantom_cpu.
# This may be replaced when dependencies are built.
