file(REMOVE_RECURSE
  "libphantom_cpu.a"
)
