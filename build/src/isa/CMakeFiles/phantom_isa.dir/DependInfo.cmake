
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/assembler.cpp" "src/isa/CMakeFiles/phantom_isa.dir/assembler.cpp.o" "gcc" "src/isa/CMakeFiles/phantom_isa.dir/assembler.cpp.o.d"
  "/root/repo/src/isa/encoder.cpp" "src/isa/CMakeFiles/phantom_isa.dir/encoder.cpp.o" "gcc" "src/isa/CMakeFiles/phantom_isa.dir/encoder.cpp.o.d"
  "/root/repo/src/isa/insn.cpp" "src/isa/CMakeFiles/phantom_isa.dir/insn.cpp.o" "gcc" "src/isa/CMakeFiles/phantom_isa.dir/insn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/phantom_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
