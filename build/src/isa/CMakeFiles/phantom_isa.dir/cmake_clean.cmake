file(REMOVE_RECURSE
  "CMakeFiles/phantom_isa.dir/assembler.cpp.o"
  "CMakeFiles/phantom_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/phantom_isa.dir/encoder.cpp.o"
  "CMakeFiles/phantom_isa.dir/encoder.cpp.o.d"
  "CMakeFiles/phantom_isa.dir/insn.cpp.o"
  "CMakeFiles/phantom_isa.dir/insn.cpp.o.d"
  "libphantom_isa.a"
  "libphantom_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
