file(REMOVE_RECURSE
  "libphantom_isa.a"
)
