# Empty dependencies file for phantom_isa.
# This may be replaced when dependencies are built.
