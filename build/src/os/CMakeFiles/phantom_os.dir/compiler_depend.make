# Empty compiler generated dependencies file for phantom_os.
# This may be replaced when dependencies are built.
