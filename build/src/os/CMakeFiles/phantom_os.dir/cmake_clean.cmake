file(REMOVE_RECURSE
  "CMakeFiles/phantom_os.dir/kernel.cpp.o"
  "CMakeFiles/phantom_os.dir/kernel.cpp.o.d"
  "CMakeFiles/phantom_os.dir/process.cpp.o"
  "CMakeFiles/phantom_os.dir/process.cpp.o.d"
  "libphantom_os.a"
  "libphantom_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
