file(REMOVE_RECURSE
  "libphantom_os.a"
)
