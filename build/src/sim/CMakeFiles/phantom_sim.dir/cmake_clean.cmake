file(REMOVE_RECURSE
  "CMakeFiles/phantom_sim.dir/log.cpp.o"
  "CMakeFiles/phantom_sim.dir/log.cpp.o.d"
  "CMakeFiles/phantom_sim.dir/stats.cpp.o"
  "CMakeFiles/phantom_sim.dir/stats.cpp.o.d"
  "libphantom_sim.a"
  "libphantom_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
