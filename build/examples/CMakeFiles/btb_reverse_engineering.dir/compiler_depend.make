# Empty compiler generated dependencies file for btb_reverse_engineering.
# This may be replaced when dependencies are built.
