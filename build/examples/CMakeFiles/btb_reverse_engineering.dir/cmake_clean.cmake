file(REMOVE_RECURSE
  "CMakeFiles/btb_reverse_engineering.dir/btb_reverse_engineering.cpp.o"
  "CMakeFiles/btb_reverse_engineering.dir/btb_reverse_engineering.cpp.o.d"
  "btb_reverse_engineering"
  "btb_reverse_engineering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btb_reverse_engineering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
