file(REMOVE_RECURSE
  "CMakeFiles/kaslr_break.dir/kaslr_break.cpp.o"
  "CMakeFiles/kaslr_break.dir/kaslr_break.cpp.o.d"
  "kaslr_break"
  "kaslr_break.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kaslr_break.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
