# Empty compiler generated dependencies file for kaslr_break.
# This may be replaced when dependencies are built.
