file(REMOVE_RECURSE
  "CMakeFiles/mds_leak.dir/mds_leak.cpp.o"
  "CMakeFiles/mds_leak.dir/mds_leak.cpp.o.d"
  "mds_leak"
  "mds_leak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mds_leak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
