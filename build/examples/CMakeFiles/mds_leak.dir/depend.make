# Empty dependencies file for mds_leak.
# This may be replaced when dependencies are built.
