# Empty compiler generated dependencies file for inspect_speculation.
# This may be replaced when dependencies are built.
