file(REMOVE_RECURSE
  "CMakeFiles/inspect_speculation.dir/inspect_speculation.cpp.o"
  "CMakeFiles/inspect_speculation.dir/inspect_speculation.cpp.o.d"
  "inspect_speculation"
  "inspect_speculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
