file(REMOVE_RECURSE
  "CMakeFiles/covert_channel.dir/covert_channel.cpp.o"
  "CMakeFiles/covert_channel.dir/covert_channel.cpp.o.d"
  "covert_channel"
  "covert_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covert_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
