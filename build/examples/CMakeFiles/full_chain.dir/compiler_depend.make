# Empty compiler generated dependencies file for full_chain.
# This may be replaced when dependencies are built.
