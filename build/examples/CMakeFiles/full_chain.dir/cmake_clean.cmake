file(REMOVE_RECURSE
  "CMakeFiles/full_chain.dir/full_chain.cpp.o"
  "CMakeFiles/full_chain.dir/full_chain.cpp.o.d"
  "full_chain"
  "full_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
