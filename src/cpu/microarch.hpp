/**
 * @file
 * Per-microarchitecture parameter packs.
 *
 * One MicroarchConfig per part the paper evaluates: AMD Zen 1/2/3/4 and
 * Intel 9th/11th/12th/13th gen (P cores). The Table-1 differences emerge
 * from these parameters rather than being hard-coded:
 *
 *  - transientExecUops > 0 (Zen 1/2): µops of a decoder-detected phantom
 *    target dispatch before the frontend resteer squash reaches the µop
 *    queue, so a memory load can issue (paper O3).
 *  - btb hash kind: Zen 3/4 use the Figure-7 cross-privilege parity
 *    functions; Intel salts with privilege (no user->kernel reuse, §6).
 *  - indirectVictimOpaque (Intel): the paper could not observe ID (and
 *    sometimes not IF) when the victim instruction is jmp*.
 */

#ifndef PHANTOM_CPU_MICROARCH_HPP
#define PHANTOM_CPU_MICROARCH_HPP

#include "bpu/bpu.hpp"
#include "mem/hierarchy.hpp"
#include "mem/noise.hpp"

#include <string>
#include <vector>

namespace phantom::cpu {

/** CPU vendor, for reporting. */
enum class Vendor : u8 { Amd, Intel };

/** Full parameterization of one simulated part. */
struct MicroarchConfig
{
    std::string name;           ///< e.g. "zen2"
    std::string model;          ///< e.g. "AMD EPYC 7252"
    Vendor vendor = Vendor::Amd;
    double clockGhz = 3.0;      ///< converts cycles to wall-clock time

    // Frontend.
    u32 fetchBlockBytes = 32;
    u32 decodeWidth = 4;
    u32 phantomDecodeInsns = 8;   ///< insns decoded at a phantom target
    Cycle frontendResteerPenalty = 12;
    Cycle backendResteerPenalty = 20;

    /**
     * Next-line I-cache prefetcher. Prefetched lines fill L1I without
     * entering the pipeline — which is exactly why the paper's IF
     * observation channel cannot distinguish transient fetch from
     * prefetching (§5.1), motivating the µop-cache ID channel. Off by
     * default so the IF channel stays unambiguous in the harness; the
     * A5 ablation and tests/test_prefetch.cpp turn it on.
     */
    bool nextLinePrefetch = false;

    /**
     * Number of already-decoded wrong-path µops that dispatch to execute
     * before a *decoder-issued* resteer squashes the µop queue. Nonzero
     * only on Zen 1/2: this is the PHANTOM transient-execution window.
     */
    u32 transientExecUops = 0;

    /** Wrong-path µop budget for *backend-resolved* mispredictions
     *  (classic Spectre window). */
    u32 spectreWindowUops = 48;

    /**
     * Whether the decoder validates the *predicted branch type* against a
     * decoded return. On Zen 1/2 it does not: a jmp*-trained prediction
     * fires at a ret and only resolves at execute — the Retbleed branch
     * type confusion (Table 1 marker b, CVE-2022-23825). Zen 3/4 and
     * Intel detect the confusion at decode (short PHANTOM window only).
     */
    bool decoderChecksRetType = true;

    // Predictors.
    bpu::BpuConfig bpu;

    // Memory system.
    mem::HierarchyConfig hierarchy;
    u32 uopCacheSets = 64;
    u32 uopCacheWays = 8;

    // Mitigation support matrix.
    bool supportsSuppressBpOnNonBr = false;  ///< Zen 2 only (not Zen 1)
    bool supportsAutoIbrs = false;           ///< Zen 4
    bool supportsEibrs = false;              ///< Intel >= 9th gen

    /** Intel quirk (§6): no observable IF/ID when the victim is jmp*. */
    bool indirectVictimOpaque = false;

    // Environmental noise (calibrated per part; see DESIGN.md).
    mem::NoiseConfig noise;
    u32 noiseEveryInsns = 64;   ///< disturb() cadence during execution
};

/** AMD Ryzen 5 1600X. */
MicroarchConfig zen1();
/** AMD EPYC 7252. */
MicroarchConfig zen2();
/** AMD Ryzen 5 5600G. */
MicroarchConfig zen3();
/** AMD Ryzen 7 7700X. */
MicroarchConfig zen4();
/** Intel 9th gen (Coffee Lake R). */
MicroarchConfig intel9();
/** Intel 11th gen (Rocket Lake). */
MicroarchConfig intel11();
/** Intel 12th gen P core (Alder Lake). */
MicroarchConfig intel12();
/** Intel 13th gen P core (Raptor Lake). */
MicroarchConfig intel13();

/** All eight configs the paper evaluates, in Table-1 order. */
std::vector<MicroarchConfig> allMicroarchs();

/** The four AMD configs. */
std::vector<MicroarchConfig> amdMicroarchs();

} // namespace phantom::cpu

#endif // PHANTOM_CPU_MICROARCH_HPP
