/**
 * @file
 * Model-specific registers controlling the mitigations the paper
 * evaluates (§6.3, §8): SuppressBPOnNonBr, AutoIBRS, IBPB via PRED_CMD.
 */

#ifndef PHANTOM_CPU_MSR_HPP
#define PHANTOM_CPU_MSR_HPP

#include "sim/types.hpp"

#include <unordered_map>

namespace phantom::cpu {

/** MSR addresses used by the model (matching the real encodings where
 *  the paper names them). */
namespace msr {

/** AMD DE_CFG2; bit 1 is SuppressBPOnNonBr (paper §6.3). */
inline constexpr u32 kDeCfg2 = 0xC00110E3;
inline constexpr u64 kSuppressBpOnNonBrBit = 1ull << 1;

/** EFER; bit 21 enables Automatic IBRS on Zen 4. */
inline constexpr u32 kEfer = 0xC0000080;
inline constexpr u64 kAutoIbrsBit = 1ull << 21;

/** PRED_CMD; writing bit 0 issues an IBPB. */
inline constexpr u32 kPredCmd = 0x49;
inline constexpr u64 kIbpbBit = 1ull << 0;

/** SPEC_CTRL; bit 1 is STIBP (Single Thread Indirect Branch
 *  Predictors: sibling-thread predictions are not served). */
inline constexpr u32 kSpecCtrl = 0x48;
inline constexpr u64 kStibpBit = 1ull << 1;

} // namespace msr

/** Sparse MSR file. */
class MsrFile
{
  public:
    u64
    read(u32 index) const
    {
        auto it = values_.find(index);
        return it == values_.end() ? 0 : it->second;
    }

    void write(u32 index, u64 value) { values_[index] = value; }

    bool
    testBit(u32 index, u64 mask) const
    {
        return (read(index) & mask) != 0;
    }

    void
    setBit(u32 index, u64 mask, bool on)
    {
        u64 v = read(index);
        write(index, on ? (v | mask) : (v & ~mask));
    }

    using ValueMap = std::unordered_map<u32, u64>;

    /** Every explicitly written MSR (snapshot enumeration). */
    const ValueMap& values() const { return values_; }

    /** Replace the MSR file wholesale (snapshot restore). */
    void setValues(ValueMap values) { values_ = std::move(values); }

  private:
    ValueMap values_;
};

} // namespace phantom::cpu

#endif // PHANTOM_CPU_MSR_HPP
