/**
 * @file
 * Performance monitoring counters.
 *
 * Models the counters the paper samples:
 * de_dis_uops_from_decoder.opcache_dispatched (Zen 2),
 * op_cache_hit_miss.op_cache_hit (Zen 3/4), idq.dsb_cycles (Intel) —
 * unified here as OpCacheHit/OpCacheMiss — plus branch and cache events.
 */

#ifndef PHANTOM_CPU_PMC_HPP
#define PHANTOM_CPU_PMC_HPP

#include "obs/metrics.hpp"
#include "sim/types.hpp"

#include <array>
#include <string>

namespace phantom::cpu {

/** Countable events. */
enum class PmcEvent : u32 {
    Cycles = 0,
    Instructions,
    OpCacheHit,          ///< decoded line served from the µop cache
    OpCacheMiss,         ///< decoded line filled into the µop cache
    L1IMiss,
    L1DMiss,
    BtbLookup,
    BtbHit,
    MispredictFrontend,  ///< decoder-issued resteer (PHANTOM)
    MispredictBackend,   ///< execute-issued resteer (Spectre)
    SpecFetch,           ///< speculative target line fetched
    SpecDecode,          ///< speculative target instruction decoded
    SpecExec,            ///< speculative target µop executed
    L1IPrefetch,         ///< next-line prefetcher fill
    DecoderInvalidate,   ///< BTB entry dropped on non-branch decode
    Syscalls,
    kCount,
};

/**
 * Canonical lower_snake name of @p event — the single naming table for
 * every surface that mentions a PMC event (bench tables, JSON metrics,
 * trace labels). Raw rdpmc selectors map to the same order, so
 * pmcEventName(static_cast<PmcEvent>(selector)) names what readRaw()
 * reads.
 */
const char* pmcEventName(PmcEvent event);

/** A bank of monotonic counters. */
class Pmc
{
  public:
    void bump(PmcEvent event, u64 n = 1) { counters_[idx(event)] += n; }

    u64 read(PmcEvent event) const { return counters_[idx(event)]; }

    /** Fold @p other's counts into this bank (campaign aggregation). */
    void
    absorb(const Pmc& other)
    {
        for (std::size_t i = 0; i < counters_.size(); ++i)
            counters_[i] += other.counters_[i];
    }

    /** Read by raw selector (the rdpmc instruction path). Out-of-range
     *  selectors read zero. */
    u64
    readRaw(u64 selector) const
    {
        if (selector >= static_cast<u64>(PmcEvent::kCount))
            return 0;
        return counters_[selector];
    }

    void
    reset()
    {
        counters_.fill(0);
    }

    using Counters =
        std::array<u64, static_cast<std::size_t>(PmcEvent::kCount)>;

    /** Raw counter bank (snapshot capture). */
    const Counters& counters() const { return counters_; }

    /** Restore a bank captured by counters() (snapshot restore). */
    void setCounters(const Counters& counters) { counters_ = counters; }

  private:
    static std::size_t idx(PmcEvent e) { return static_cast<std::size_t>(e); }

    Counters counters_{};
};

/**
 * Export every counter of @p pmc into @p registry as
 * "<prefix><pmcEventName(event)>" counters.
 */
void exportPmc(const Pmc& pmc, obs::MetricsRegistry& registry,
               const std::string& prefix = "pmc.");

} // namespace phantom::cpu

#endif // PHANTOM_CPU_PMC_HPP
