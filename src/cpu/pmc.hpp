/**
 * @file
 * Performance monitoring counters.
 *
 * Models the counters the paper samples:
 * de_dis_uops_from_decoder.opcache_dispatched (Zen 2),
 * op_cache_hit_miss.op_cache_hit (Zen 3/4), idq.dsb_cycles (Intel) —
 * unified here as OpCacheHit/OpCacheMiss — plus branch and cache events.
 */

#ifndef PHANTOM_CPU_PMC_HPP
#define PHANTOM_CPU_PMC_HPP

#include "sim/types.hpp"

#include <array>

namespace phantom::cpu {

/** Countable events. */
enum class PmcEvent : u32 {
    Cycles = 0,
    Instructions,
    OpCacheHit,          ///< decoded line served from the µop cache
    OpCacheMiss,         ///< decoded line filled into the µop cache
    L1IMiss,
    L1DMiss,
    BtbLookup,
    BtbHit,
    MispredictFrontend,  ///< decoder-issued resteer (PHANTOM)
    MispredictBackend,   ///< execute-issued resteer (Spectre)
    SpecFetch,           ///< speculative target line fetched
    SpecDecode,          ///< speculative target instruction decoded
    SpecExec,            ///< speculative target µop executed
    L1IPrefetch,         ///< next-line prefetcher fill
    DecoderInvalidate,   ///< BTB entry dropped on non-branch decode
    Syscalls,
    kCount,
};

/** A bank of monotonic counters. */
class Pmc
{
  public:
    void bump(PmcEvent event, u64 n = 1) { counters_[idx(event)] += n; }

    u64 read(PmcEvent event) const { return counters_[idx(event)]; }

    /** Read by raw selector (the rdpmc instruction path). Out-of-range
     *  selectors read zero. */
    u64
    readRaw(u64 selector) const
    {
        if (selector >= static_cast<u64>(PmcEvent::kCount))
            return 0;
        return counters_[selector];
    }

    void
    reset()
    {
        counters_.fill(0);
    }

  private:
    static std::size_t idx(PmcEvent e) { return static_cast<std::size_t>(e); }

    std::array<u64, static_cast<std::size_t>(PmcEvent::kCount)> counters_{};
};

} // namespace phantom::cpu

#endif // PHANTOM_CPU_PMC_HPP
