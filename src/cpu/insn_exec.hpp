/**
 * @file
 * The per-instruction execute stage as a table of handlers.
 *
 * Machine::run used to execute instructions through one large switch.
 * The switch bodies now live behind function pointers so both execution
 * paths — the classic one-instruction step loop and the decoded-
 * superblock engine (cpu/decode_cache.hpp) — dispatch the *same* code:
 * a superblock entry carries the handler resolved at block-build time
 * (the libriscv `DECODED_INSTR` shape), and the slow path resolves it
 * per step via handlerFor(). One implementation per opcode is what
 * makes the bit-identity argument for superblocks hold by construction.
 *
 * Handlers mutate only through the Machine reference and the ExecCtx
 * (defined in cpu/machine.hpp): `ctx.pc` is the instruction's address,
 * `ctx.next` comes in as the fall-through and leaves as the successor,
 * and on ExecStatus::Fault the handler has filled `ctx.fault` (the run
 * loop materializes the RunResult). ExecStatus::Halt means hlt retired:
 * the loop commits `ctx.next` and returns.
 */

#ifndef PHANTOM_CPU_INSN_EXEC_HPP
#define PHANTOM_CPU_INSN_EXEC_HPP

#include "isa/insn.hpp"
#include "sim/types.hpp"

namespace phantom::cpu {

class Machine;
struct ExecCtx;

/** What the execute stage decided; see the file comment. */
enum class ExecStatus : u8 {
    Next,   ///< retired; commit ctx.next as the new pc
    Halt,   ///< hlt retired; commit ctx.next and stop the run
    Fault,  ///< architectural fault; ctx.fault is filled
};

/** One execute-stage implementation (see cpu/insn_exec.cpp). */
using InsnHandler = ExecStatus (*)(Machine&, const isa::Insn&, ExecCtx&);

/**
 * The handler implementing @p kind. Total: every InsnKind (including
 * Invalid/Ud2, which fault) maps to a non-null handler, so superblock
 * entries can bind handlers unconditionally at build time.
 */
InsnHandler handlerFor(isa::InsnKind kind);

} // namespace phantom::cpu

#endif // PHANTOM_CPU_INSN_EXEC_HPP
