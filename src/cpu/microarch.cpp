#include "cpu/microarch.hpp"

namespace phantom::cpu {

namespace {

MicroarchConfig
baseAmd()
{
    MicroarchConfig cfg;
    cfg.vendor = Vendor::Amd;
    cfg.bpu.btb.sets = 512;
    cfg.bpu.btb.ways = 8;
    cfg.bpu.rsbEntries = 32;
    return cfg;
}

MicroarchConfig
baseIntel()
{
    MicroarchConfig cfg;
    cfg.vendor = Vendor::Intel;
    cfg.bpu.btb.sets = 1024;
    cfg.bpu.btb.ways = 8;
    cfg.bpu.rsbEntries = 16;
    cfg.bpu.btb.hash = bpu::BtbHashKind::IntelSalted;
    cfg.supportsEibrs = true;
    cfg.indirectVictimOpaque = true;
    return cfg;
}

} // namespace

MicroarchConfig
zen1()
{
    MicroarchConfig cfg = baseAmd();
    cfg.name = "zen1";
    cfg.model = "AMD Ryzen 5 1600X";
    cfg.clockGhz = 3.6;
    cfg.bpu.btb.hash = bpu::BtbHashKind::Zen12;
    cfg.transientExecUops = 6;
    cfg.decoderChecksRetType = false;        // Retbleed branch type confusion
    cfg.supportsSuppressBpOnNonBr = false;   // not supported on Zen(+)
    // Calibrated so the P1 covert channel lands near the paper's 96.3%.
    cfg.noiseEveryInsns = 16;
    cfg.noise.l1iEvictChance = 3.4;
    cfg.noise.l1dEvictChance = 0.05;
    cfg.noise.l2EvictChance = 0.02;
    return cfg;
}

MicroarchConfig
zen2()
{
    MicroarchConfig cfg = baseAmd();
    cfg.name = "zen2";
    cfg.model = "AMD EPYC 7252";
    cfg.clockGhz = 3.1;
    cfg.bpu.btb.hash = bpu::BtbHashKind::Zen12;
    cfg.transientExecUops = 6;
    cfg.decoderChecksRetType = false;        // Retbleed branch type confusion
    cfg.supportsSuppressBpOnNonBr = true;
    // Server part, busier uncore: the paper measures 93.04% on P1.
    cfg.noiseEveryInsns = 16;
    cfg.noise.l1iEvictChance = 5.9;
    cfg.noise.l1dEvictChance = 0.08;
    cfg.noise.l2EvictChance = 0.10;
    return cfg;
}

MicroarchConfig
zen3()
{
    MicroarchConfig cfg = baseAmd();
    cfg.name = "zen3";
    cfg.model = "AMD Ryzen 5 5600G";
    cfg.clockGhz = 3.9;
    cfg.bpu.btb.hash = bpu::BtbHashKind::Zen34;
    cfg.transientExecUops = 0;               // fetch + decode only
    cfg.supportsSuppressBpOnNonBr = true;
    cfg.noiseEveryInsns = 16;
    cfg.noise.l1iEvictChance = 0.02;         // paper: 100% accuracy
    cfg.noise.l1dEvictChance = 0.01;
    cfg.noise.l2EvictChance = 0.01;
    return cfg;
}

MicroarchConfig
zen4()
{
    MicroarchConfig cfg = baseAmd();
    cfg.name = "zen4";
    cfg.model = "AMD Ryzen 7 7700X";
    cfg.clockGhz = 4.5;
    cfg.bpu.btb.hash = bpu::BtbHashKind::Zen34;
    cfg.transientExecUops = 0;
    cfg.supportsSuppressBpOnNonBr = true;
    cfg.supportsAutoIbrs = true;
    // Aggressive prefetch/replacement makes L1I probing noisier: 90.67%.
    cfg.noiseEveryInsns = 16;
    cfg.noise.l1iEvictChance = 9.6;
    cfg.noise.l1dEvictChance = 0.06;
    cfg.noise.l2EvictChance = 0.03;
    return cfg;
}

MicroarchConfig
intel9()
{
    MicroarchConfig cfg = baseIntel();
    cfg.name = "intel9";
    cfg.model = "Intel Core i9-9900K";
    cfg.clockGhz = 3.6;
    return cfg;
}

MicroarchConfig
intel11()
{
    MicroarchConfig cfg = baseIntel();
    cfg.name = "intel11";
    cfg.model = "Intel Core i7-11700K";
    cfg.clockGhz = 3.6;
    return cfg;
}

MicroarchConfig
intel12()
{
    MicroarchConfig cfg = baseIntel();
    cfg.name = "intel12";
    cfg.model = "Intel Core i9-12900K (P core)";
    cfg.clockGhz = 5.1;
    return cfg;
}

MicroarchConfig
intel13()
{
    MicroarchConfig cfg = baseIntel();
    cfg.name = "intel13";
    cfg.model = "Intel Core i9-13900K (P core)";
    cfg.clockGhz = 5.4;
    return cfg;
}

std::vector<MicroarchConfig>
allMicroarchs()
{
    return {zen1(), zen2(), zen3(), zen4(),
            intel9(), intel11(), intel12(), intel13()};
}

std::vector<MicroarchConfig>
amdMicroarchs()
{
    return {zen1(), zen2(), zen3(), zen4()};
}

} // namespace phantom::cpu
