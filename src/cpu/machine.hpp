/**
 * @file
 * The simulated machine: one core plus its memory system and predictors.
 *
 * Execution model. Architectural instructions execute in order, but
 * before each instruction executes, its address is run past the BPU the
 * way the real frontend does — *before decode*. A BTB hit at any address
 * (branch or not) starts a speculation episode at the predicted target:
 *
 *  - transient fetch: the target line is translated and, if executable
 *    and mapped, filled into L1I (paper O1);
 *  - transient decode: up to phantomDecodeInsns instructions at the
 *    target are decoded, filling the µop cache (paper O2);
 *  - transient execute: on parts where the decoder-issued resteer does
 *    not reach the µop queue in time (Zen 1/2, transientExecUops > 0),
 *    target µops execute with overlay semantics — loads fill the D-cache
 *    and can never be aborted once dispatched (paper O3). Transient
 *    control flow consults the BPU again, so PHANTOM speculation nests
 *    inside Spectre windows (§7.4).
 *
 * Who detects the misprediction decides the window: type/displacement
 * mismatches are decoder-detectable (frontend resteer, short window);
 * direction/indirect-target/return mismatches resolve at execute
 * (backend resteer, wide Spectre window).
 */

#ifndef PHANTOM_CPU_MACHINE_HPP
#define PHANTOM_CPU_MACHINE_HPP

#include "bpu/bpu.hpp"
#include "cpu/decode_cache.hpp"
#include "cpu/microarch.hpp"
#include "cpu/msr.hpp"
#include "cpu/pmc.hpp"
#include "cpu/regfile.hpp"
#include "isa/encoder.hpp"
#include "mem/hierarchy.hpp"
#include "mem/noise.hpp"
#include "mem/paging.hpp"
#include "mem/phys_mem.hpp"
#include "mem/uop_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <array>
#include <optional>
#include <string>
#include <vector>

namespace phantom::cpu {

/** Why run() returned. */
enum class ExitReason : u8 {
    Halt,       ///< hlt executed
    Fault,      ///< architectural fault (page fault, #UD)
    InsnLimit,  ///< max_insns reached
};

/** Architectural fault description. */
struct FaultInfo
{
    mem::Fault fault = mem::Fault::None;  ///< paging fault kind
    bool invalidOpcode = false;           ///< #UD instead of a page fault
    VAddr va = 0;                         ///< faulting address
    VAddr pc = 0;                         ///< faulting instruction
    mem::Access access = mem::Access::Read;
};

/** Result of a run() call. */
struct RunResult
{
    ExitReason reason = ExitReason::Halt;
    FaultInfo fault;
    u64 instructions = 0;
    Cycle cycles = 0;
};

/**
 * Mutable state one execute-stage handler exchanges with the run loop
 * (see cpu/insn_exec.hpp): the instruction's own pc, the successor pc
 * (in: fall-through, out: possibly a branch target), whether this Ret
 * consumed an unrestricted RSB prediction, and the fault description
 * when the handler returns ExecStatus::Fault.
 */
struct ExecCtx
{
    VAddr pc = 0;
    VAddr next = 0;
    bool rsbConsumed = false;
    FaultInfo fault;
};

/** Classification of a speculation episode for tracing. */
enum class EpisodeKind : u8 {
    PhantomFrontend,   ///< decoder-detectable misprediction (PHANTOM)
    SpectreBackend,    ///< execute-resolved misprediction (Spectre)
    StraightLine,      ///< unpredicted branch: fall-through speculation
    AutoIbrsCancelled, ///< restricted prediction: fetch-only
    IntelOpaque,       ///< dropped prediction at an indirect victim
};

/** Stable lower_snake label for @p kind (JSON / trace slices). */
const char* episodeKindName(EpisodeKind kind);

/** One traced speculation episode. */
struct EpisodeRecord
{
    EpisodeKind kind = EpisodeKind::PhantomFrontend;
    u64 id = 0;                          ///< 1-based per-machine episode id
    VAddr sourcePc = 0;                  ///< the (mis)predicted source
    isa::InsnKind actualKind = isa::InsnKind::Nop;  ///< decoded reality
    isa::BranchType predictedType = isa::BranchType::None;
    VAddr target = 0;                    ///< where speculation went
    Privilege priv = Privilege::User;
    Cycle atCycle = 0;                   ///< cycle the episode opened
    Cycle squashCycle = 0;               ///< cycle the resteer completed
    bool fetched = false;                ///< target line entered L1I
    u32 decoded = 0;                     ///< speculatively decoded insns
    u32 executed = 0;                    ///< transiently executed µops
};

/**
 * Where the machine's cycles went. Every increment of the machine clock
 * is charged to exactly one class, so the classes always sum to the
 * clock — cycle attribution is a partition, not a sampling estimate.
 * Transient (wrong-path) work charges no cycles in this model — it hides
 * under the resteer penalty — so its volume is reported through the
 * SpecFetch/SpecDecode/SpecExec PMC events instead.
 */
enum class CycleClass : u8 {
    CommitFrontend,    ///< committed fetch: I-cache/µop-cache delivery
    CommitExecute,     ///< committed execute: the 1-cycle retire charge
    CommitMemory,      ///< committed load/store cache latency
    FrontendResteer,   ///< decoder-detected misprediction penalty
    BackendResteer,    ///< execute-detected misprediction penalty
    Syscall,           ///< privilege transition overhead
    Fence,             ///< lfence/mfence serialization
    CacheMaintenance,  ///< clflush
    Ibpb,              ///< predictor barrier cost
    TimedProbe,        ///< attacker timing ports (timed*Access)
    External,          ///< host-injected cycles (addCycles)
    kCount,
};

/** Stable lower_snake label for @p cls (JSON / metrics names). */
const char* cycleClassName(CycleClass cls);

/** Per-class cycle totals; see CycleClass. */
struct CycleAttribution
{
    std::array<u64, static_cast<std::size_t>(CycleClass::kCount)> cycles{};

    u64
    at(CycleClass cls) const
    {
        return cycles[static_cast<std::size_t>(cls)];
    }

    u64
    total() const
    {
        u64 sum = 0;
        for (u64 c : cycles)
            sum += c;
        return sum;
    }

    void
    merge(const CycleAttribution& other)
    {
        for (std::size_t i = 0; i < cycles.size(); ++i)
            cycles[i] += other.cycles[i];
    }
};

/**
 * Export @p attribution into @p registry as
 * "<prefix><cycleClassName(cls)>" counters.
 */
void exportCycleAttribution(const CycleAttribution& attribution,
                            obs::MetricsRegistry& registry,
                            const std::string& prefix = "cycles.");

/** One simulated core with private memory system. */
class Machine
{
  public:
    /**
     * @param config microarchitecture parameters
     * @param installed_bytes physical memory size
     * @param seed seed for the environmental noise stream
     */
    Machine(const MicroarchConfig& config, u64 installed_bytes,
            u64 seed = 0x1234);

    // -- Component access ------------------------------------------------

    const MicroarchConfig& config() const { return config_; }
    mem::PhysicalMemory& physMem() { return physMem_; }
    mem::CacheHierarchy& caches() { return caches_; }
    mem::UopCache& uopCache() { return uopCache_; }
    bpu::Bpu& bpu() { return bpu_; }
    Pmc& pmc() { return pmc_; }
    MsrFile& msrs() { return msrs_; }
    RegFile& regs() { return regs_; }
    Flags& flags() { return flags_; }
    mem::NoiseInjector& noise() { return noise_; }

    /**
     * The predecoded-instruction cache (derived state: never captured
     * by snapshots, flushed by snap::restore, invalidated on stores /
     * clflush / page-table mutation; see cpu/decode_cache.hpp).
     */
    DecodeCache& decodeCache() { return decodeCache_; }

    /** Install the active address space (non-owning). Predecode state
     *  derived from the previous address space is dropped. */
    void
    setPageTable(mem::PageTable* table)
    {
        pageTable_ = table;
        decodeCache_.flushAll();
        decodeGen_ = table != nullptr ? table->generation() : 0;
    }

    mem::PageTable* pageTable() { return pageTable_; }

    // -- Execution control -------------------------------------------------

    void setPc(VAddr pc) { pc_ = pc; }
    VAddr pc() const { return pc_; }
    void setPrivilege(Privilege priv) { priv_ = priv; }
    Privilege privilege() const { return priv_; }
    void setSyscallEntry(VAddr va) { syscallEntry_ = va; }
    Cycle cycles() const { return cycles_; }
    void addCycles(Cycle n) { charge(CycleClass::External, n); }

    /** Where every cycle of this machine's clock went. */
    const CycleAttribution& cycleAttribution() const { return attrib_; }

    /** Select the SMT hardware thread executing subsequent code. Both
     *  threads share every predictor and cache of this core; BTB entries
     *  are tagged with their creator thread for STIBP. */
    void setSmtThread(u8 thread) { smtThread_ = thread & 1; }
    u8 smtThread() const { return smtThread_; }

    /** Execute until hlt, a fault, or @p max_insns instructions. */
    RunResult run(u64 max_insns = 1'000'000);

    /** Software mitigation: issue an IBPB on every user->kernel
     *  transition (§8.2 — flush the BTB state when switching between
     *  distrusting execution contexts). */
    void setIbpbOnSyscall(bool on) { ibpbOnSyscall_ = on; }
    bool ibpbOnSyscall() const { return ibpbOnSyscall_; }

    // -- Episode tracing ------------------------------------------------------

    /** Record the next speculation episodes (up to @p capacity). */
    void
    enableEpisodeTrace(std::size_t capacity = 256)
    {
        traceCapacity_ = capacity;
        trace_.clear();
        droppedEpisodes_ = 0;
    }

    void disableEpisodeTrace() { traceCapacity_ = 0; }

    void
    clearEpisodeTrace()
    {
        trace_.clear();
        droppedEpisodes_ = 0;
    }

    const std::vector<EpisodeRecord>& episodeTrace() const { return trace_; }

    /** Episodes NOT recorded because the trace was at capacity (only
     *  counted while tracing is enabled — no silent caps). */
    u64 droppedEpisodes() const { return droppedEpisodes_; }

    /** Total speculation episodes since construction, traced or not. */
    u64 episodeCount() const { return episodeId_; }

    // -- Pipeline event tracing (src/obs) -----------------------------------

    /**
     * Attach @p sink to receive typed pipeline events (also forwarded to
     * the BPU's hook points). Null detaches; with no sink attached every
     * hook is a single predictable branch. Machines constructed on a
     * campaign worker default to obs::activeTraceSink().
     */
    void
    setTraceSink(obs::TraceSink* sink)
    {
        traceSink_ = sink;
        bpu_.setTrace(sink, &cycles_);
    }

    obs::TraceSink* traceSink() const { return traceSink_; }

    // -- Snapshot support ---------------------------------------------------

    /**
     * Scalar execution state living outside the component objects. The
     * episode trace buffer is deliberately excluded: it is a debugging
     * surface, not machine state, and snapshots must not resurrect it.
     */
    struct ScalarState
    {
        VAddr pc = 0;
        Privilege priv = Privilege::User;
        VAddr syscallEntry = 0;
        VAddr savedUserPc = 0;
        Cycle cycles = 0;
        u64 insnsSinceNoise = 0;
        u64 suppressConfirms = 0;
        bool ibpbOnSyscall = false;
        u8 smtThread = 0;
        u64 episodeId = 0;
        u64 curEpisode = 0;
        CycleAttribution attrib;
    };

    ScalarState
    scalarState() const
    {
        ScalarState s;
        s.pc = pc_;
        s.priv = priv_;
        s.syscallEntry = syscallEntry_;
        s.savedUserPc = savedUserPc_;
        s.cycles = cycles_;
        s.insnsSinceNoise = insnsSinceNoise_;
        s.suppressConfirms = suppressConfirms_;
        s.ibpbOnSyscall = ibpbOnSyscall_;
        s.smtThread = smtThread_;
        s.episodeId = episodeId_;
        s.curEpisode = curEpisode_;
        s.attrib = attrib_;
        return s;
    }

    void
    setScalarState(const ScalarState& s)
    {
        pc_ = s.pc;
        priv_ = s.priv;
        syscallEntry_ = s.syscallEntry;
        savedUserPc_ = s.savedUserPc;
        cycles_ = s.cycles;
        insnsSinceNoise_ = s.insnsSinceNoise;
        suppressConfirms_ = s.suppressConfirms;
        ibpbOnSyscall_ = s.ibpbOnSyscall;
        smtThread_ = s.smtThread & 1;
        episodeId_ = s.episodeId;
        curEpisode_ = s.curEpisode;
        attrib_ = s.attrib;
    }

    // -- MSR access with side effects ---------------------------------------

    /** Write an MSR; PRED_CMD.IBPB flushes the predictors. */
    void writeMsr(u32 index, u64 value);
    u64 readMsr(u32 index) const { return msrs_.read(index); }

    // -- Host debug ports (no microarchitectural side effects) -------------

    /** Read 8 bytes of virtual memory, bypassing permissions/caches. */
    std::optional<u64> debugRead64(VAddr va) const;
    /** Write 8 bytes of virtual memory, bypassing permissions/caches. */
    bool debugWrite64(VAddr va, u64 value);
    /** Copy a blob into virtual memory, bypassing permissions/caches. */
    bool debugWriteBytes(VAddr va, const std::vector<u8>& bytes);

    // -- Timed access ports -------------------------------------------------
    // Equivalent to the attacker executing a dependent load / jump to the
    // address: they translate, charge the machine clock, and mutate cache
    // state exactly as the corresponding instruction would.

    /** Timed data-load of @p va at @p priv. Unmapped addresses cost a
     *  full memory latency and leave caches untouched. */
    Cycle timedDataAccess(VAddr va, Privilege priv);

    /** Timed instruction-fetch of @p va at @p priv. */
    Cycle timedFetchAccess(VAddr va, Privilege priv);

    /** clflush of the line holding @p va (all levels). */
    void clflushVirt(VAddr va);

  private:
    friend struct InsnExec;  ///< execute-stage handlers (cpu/insn_exec.cpp)

    // Architectural helpers.
    /**
     * Decode the instruction whose first byte translates to @p pa0 and
     * sits at virtual @p pc: consult the decode cache, else gather up
     * to isa::kMaxInsnBytes with per-byte fault-suppressing translation
     * (truncating at the first failure), decode, and memoize. Performs
     * the lazy page-table-generation flush. Touches no architectural or
     * microarchitectural state, so hit and miss paths are
     * indistinguishable to the simulation.
     */
    isa::Insn decodeAt(VAddr pc, PAddr pa0);
    RunResult makeFault(const FaultInfo& fault, u64 instructions);

    // Per-instruction frontend work shared verbatim by the classic step
    // loop and the superblock engine — one implementation is what keeps
    // the two paths bit-identical (see DESIGN.md §9).
    /** Line-change work: µop-cache probe, L1I fill on miss, next-line
     *  prefetch. Called whenever @p pc's line differs from the previous
     *  instruction's. */
    void fetchLineWork(VAddr pc, VAddr line);
    /** BTB lookup, served-prediction accounting, and speculation-episode
     *  entry for the instruction at @p pc. @return true when an
     *  unrestricted RSB return prediction was consumed. */
    bool frontendWork(VAddr pc, const isa::Insn& insn);
    /** Lazy page-table-generation check: conservatively drop all
     *  predecode state (entries and superblocks) on mutation. */
    void
    syncDecodeGen()
    {
        u64 gen = pageTable_->generation();
        if (gen != decodeGen_) {
            decodeCache_.flushAll();
            decodeGen_ = gen;
        }
    }
    /** Decode-until-branch at (@p pc, @p pa0) into a superblock and
     *  register it; see DecodeCache::insertBlock. Returns null when not
     *  even the first instruction is block-cacheable. */
    std::shared_ptr<const DecodeCache::Superblock>
    buildSuperblock(VAddr pc, PAddr pa0);
    u64 loadArch(VAddr va, FaultInfo& fault, bool& ok);
    bool storeArch(VAddr va, u64 value, FaultInfo& fault);

    // Speculation machinery.
    void maybeSpeculate(VAddr pc, const isa::Insn& insn,
                        std::optional<bpu::FrontendPrediction>& pred);
    void phantomEpisode(const bpu::FrontendPrediction& pred, u32 exec_budget);
    void sequentialSpeculation(VAddr fall_through);
    void spectreEpisode(VAddr wrong_path);
    /** Fill the I-cache line of a speculative fetch target. @return true
     *  if the fetch succeeded (mapped + executable at current priv). */
    bool speculativeFetchLine(VAddr va);
    /**
     * The shared fetch+decode preamble of the speculative paths: fetch
     * one instruction at @p va with fault-suppressing translation,
     * charging line-fill machinery when @p line changes (@p count_fetch
     * additionally bumps/traces SpecFetch on a filled line — the
     * transient-execute ladder counts fetches per line, the decode walk
     * does not). Returns nothing when byte 0 does not translate or the
     * bytes do not decode — speculation stops either way.
     */
    std::optional<isa::Insn> speculativeFetchDecode(VAddr va, VAddr& line,
                                                    bool count_fetch);
    /** Decode-walk at a speculative target, filling the µop cache. */
    void speculativeDecode(VAddr va, u32 max_insns);
    /** Execute up to @p budget wrong-path µops starting at @p va. */
    void transientExecute(VAddr va, u32 budget);

    bool autoIbrsActive() const;
    bool suppressBpActive() const;
    bool stibpActive() const;

    /** Advance the clock, attributing the cycles to @p cls. */
    void
    charge(CycleClass cls, Cycle n)
    {
        cycles_ += n;
        attrib_.cycles[static_cast<std::size_t>(cls)] += n;
    }

    /** Emit a pipeline event; a single branch when no sink is attached. */
    void
    trace(obs::TraceEventKind kind, VAddr pc, VAddr addr, u32 arg32 = 0,
          u8 arg8 = 0)
    {
        if (traceSink_ == nullptr)
            return;
        obs::TraceEvent event;
        event.kind = kind;
        event.arg8 = arg8;
        event.arg32 = arg32;
        event.cycle = cycles_;
        event.episode = curEpisode_;
        event.pc = pc;
        event.addr = addr;
        traceSink_->emit(event);
    }

    MicroarchConfig config_;
    mem::PhysicalMemory physMem_;
    mem::CacheHierarchy caches_;
    mem::UopCache uopCache_;
    bpu::Bpu bpu_;
    Pmc pmc_;
    MsrFile msrs_;
    RegFile regs_;
    Flags flags_;
    mem::NoiseInjector noise_;
    DecodeCache decodeCache_;

    mem::PageTable* pageTable_ = nullptr;
    u64 decodeGen_ = 0;  ///< page-table generation the cache reflects
    VAddr pc_ = 0;
    Privilege priv_ = Privilege::User;
    VAddr syscallEntry_ = 0;
    VAddr savedUserPc_ = 0;
    Cycle cycles_ = 0;
    u64 insnsSinceNoise_ = 0;
    u64 suppressConfirms_ = 0;
    bool ibpbOnSyscall_ = false;

    std::size_t traceCapacity_ = 0;
    std::vector<EpisodeRecord> trace_;
    u64 droppedEpisodes_ = 0;
    u8 smtThread_ = 0;

    CycleAttribution attrib_;
    obs::TraceSink* traceSink_ = nullptr;
    u64 episodeId_ = 0;      ///< episodes begun since construction
    u64 curEpisode_ = 0;     ///< open episode id; 0 = outside episodes
};

} // namespace phantom::cpu

#endif // PHANTOM_CPU_MACHINE_HPP
