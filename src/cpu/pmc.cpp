#include "cpu/pmc.hpp"

namespace phantom::cpu {

const char*
pmcEventName(PmcEvent event)
{
    switch (event) {
      case PmcEvent::Cycles:             return "cycles";
      case PmcEvent::Instructions:       return "instructions";
      case PmcEvent::OpCacheHit:         return "op_cache_hit";
      case PmcEvent::OpCacheMiss:        return "op_cache_miss";
      case PmcEvent::L1IMiss:            return "l1i_miss";
      case PmcEvent::L1DMiss:            return "l1d_miss";
      case PmcEvent::BtbLookup:          return "btb_lookup";
      case PmcEvent::BtbHit:             return "btb_hit";
      case PmcEvent::MispredictFrontend: return "mispredict_frontend";
      case PmcEvent::MispredictBackend:  return "mispredict_backend";
      case PmcEvent::SpecFetch:          return "spec_fetch";
      case PmcEvent::SpecDecode:         return "spec_decode";
      case PmcEvent::SpecExec:           return "spec_exec";
      case PmcEvent::L1IPrefetch:        return "l1i_prefetch";
      case PmcEvent::DecoderInvalidate:  return "decoder_invalidate";
      case PmcEvent::Syscalls:           return "syscalls";
      case PmcEvent::kCount:             break;
    }
    return "?";
}

void
exportPmc(const Pmc& pmc, obs::MetricsRegistry& registry,
          const std::string& prefix)
{
    for (u32 i = 0; i < static_cast<u32>(PmcEvent::kCount); ++i) {
        auto event = static_cast<PmcEvent>(i);
        registry.counter(prefix + pmcEventName(event))
            .inc(pmc.read(event));
    }
}

} // namespace phantom::cpu
