#include "cpu/machine.hpp"

#include "cpu/insn_exec.hpp"
#include "obs/prof.hpp"
#include "sim/log.hpp"

#include <algorithm>
#include <cassert>

namespace phantom::cpu {

using isa::BranchType;
using isa::Insn;
using isa::InsnKind;
using mem::Access;
using mem::Fault;

const char*
episodeKindName(EpisodeKind kind)
{
    switch (kind) {
      case EpisodeKind::PhantomFrontend:   return "phantom_frontend";
      case EpisodeKind::SpectreBackend:    return "spectre_backend";
      case EpisodeKind::StraightLine:      return "straight_line";
      case EpisodeKind::AutoIbrsCancelled: return "auto_ibrs_cancelled";
      case EpisodeKind::IntelOpaque:       return "intel_opaque";
    }
    return "?";
}

const char*
cycleClassName(CycleClass cls)
{
    switch (cls) {
      case CycleClass::CommitFrontend:   return "commit_frontend";
      case CycleClass::CommitExecute:    return "commit_execute";
      case CycleClass::CommitMemory:     return "commit_memory";
      case CycleClass::FrontendResteer:  return "frontend_resteer";
      case CycleClass::BackendResteer:   return "backend_resteer";
      case CycleClass::Syscall:          return "syscall";
      case CycleClass::Fence:            return "fence";
      case CycleClass::CacheMaintenance: return "cache_maintenance";
      case CycleClass::Ibpb:             return "ibpb";
      case CycleClass::TimedProbe:       return "timed_probe";
      case CycleClass::External:         return "external";
      case CycleClass::kCount:           break;
    }
    return "?";
}

void
exportCycleAttribution(const CycleAttribution& attribution,
                       obs::MetricsRegistry& registry,
                       const std::string& prefix)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(CycleClass::kCount); ++i) {
        auto cls = static_cast<CycleClass>(i);
        registry.counter(prefix + cycleClassName(cls))
            .inc(attribution.at(cls));
    }
}

Machine::Machine(const MicroarchConfig& config, u64 installed_bytes, u64 seed)
    : config_(config),
      physMem_(installed_bytes),
      caches_(config.hierarchy),
      uopCache_(config.uopCacheSets, config.uopCacheWays),
      bpu_(config.bpu),
      noise_(config.noise, seed)
{
    // Campaign workers install a per-shard ring before constructing
    // trial machines; standalone machines get a null sink (tracing off).
    setTraceSink(obs::activeTraceSink());
    // Stores must invalidate memoized decodes (self-modifying code).
    physMem_.setWriteListener(&decodeCache_);
}

bool
Machine::autoIbrsActive() const
{
    return config_.supportsAutoIbrs &&
           msrs_.testBit(msr::kEfer, msr::kAutoIbrsBit);
}

bool
Machine::suppressBpActive() const
{
    return config_.supportsSuppressBpOnNonBr &&
           msrs_.testBit(msr::kDeCfg2, msr::kSuppressBpOnNonBrBit);
}

bool
Machine::stibpActive() const
{
    return msrs_.testBit(msr::kSpecCtrl, msr::kStibpBit);
}

void
Machine::writeMsr(u32 index, u64 value)
{
    if (index == msr::kPredCmd && (value & msr::kIbpbBit)) {
        bpu_.ibpb();
        charge(CycleClass::Ibpb, 1500);  // IBPB is expensive on real parts
        return;             // PRED_CMD is write-only command register
    }
    msrs_.write(index, value);
}

// ---- Host debug ports ------------------------------------------------------

std::optional<u64>
Machine::debugRead64(VAddr va) const
{
    if (pageTable_ == nullptr)
        return std::nullopt;
    auto t = pageTable_->lookup(va);
    if (!t)
        return std::nullopt;
    return const_cast<mem::PhysicalMemory&>(physMem_).read64(t->paddr);
}

bool
Machine::debugWrite64(VAddr va, u64 value)
{
    if (pageTable_ == nullptr)
        return false;
    auto t = pageTable_->lookup(va);
    if (!t)
        return false;
    physMem_.write64(t->paddr, value);
    return true;
}

bool
Machine::debugWriteBytes(VAddr va, const std::vector<u8>& bytes)
{
    if (pageTable_ == nullptr)
        return false;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        auto t = pageTable_->lookup(va + i);
        if (!t)
            return false;
        physMem_.write8(t->paddr, bytes[i]);
    }
    return true;
}

// ---- Timed ports -----------------------------------------------------------

Cycle
Machine::timedDataAccess(VAddr va, Privilege priv)
{
    auto t = pageTable_->translate(va, priv, Access::Read);
    if (!t.ok()) {
        // A faulting load is observed as a full-latency access (the
        // attacker's dependent-load harness swallows the fault).
        Cycle lat = caches_.config().latMem;
        charge(CycleClass::TimedProbe, lat);
        return lat;
    }
    Cycle lat = caches_.dataAccess(alignDown(t.paddr, kCacheLineBytes));
    charge(CycleClass::TimedProbe, lat);
    return lat;
}

Cycle
Machine::timedFetchAccess(VAddr va, Privilege priv)
{
    auto t = pageTable_->translate(va, priv, Access::Fetch);
    if (!t.ok()) {
        Cycle lat = caches_.config().latMem;
        charge(CycleClass::TimedProbe, lat);
        return lat;
    }
    Cycle lat = caches_.fetchAccess(alignDown(t.paddr, kCacheLineBytes));
    charge(CycleClass::TimedProbe, lat);
    return lat;
}

void
Machine::clflushVirt(VAddr va)
{
    auto t = pageTable_->lookup(va);
    if (!t)
        return;
    caches_.flushLine(alignDown(t->paddr, kCacheLineBytes));
    decodeCache_.invalidateLine(alignDown(t->paddr, kCacheLineBytes));
    charge(CycleClass::CacheMaintenance, 40);
}

// ---- Architectural memory helpers -----------------------------------------

isa::Insn
Machine::decodeAt(VAddr pc, PAddr pa0)
{
    // Lazy remap invalidation: any page-table mutation since the last
    // decode conservatively flushes the cache. Physical tagging already
    // makes entries remap-proof (an instruction cacheable at all fits
    // in one page, so its decode is a pure function of physical bytes);
    // the flush keeps entries for torn-down mappings from accumulating.
    syncDecodeGen();
    {
        // decode.hit times the cache probe itself (its count is every
        // lookup; decode.miss counts the ones that fell through).
        PROF_SCOPE(DecodeHit);
        if (const Insn* hit = decodeCache_.lookup(pa0))
            return *hit;
    }
    PROF_SCOPE(DecodeMiss);

    // Miss: gather with per-byte fault-suppressing translation. Byte 0
    // already translated (to pa0); a failure further in truncates the
    // buffer and decode works with what is available.
    u8 bytes[isa::kMaxInsnBytes];
    std::size_t avail = 0;
    bytes[avail++] = physMem_.read8(pa0);
    for (std::size_t i = 1; i < isa::kMaxInsnBytes; ++i) {
        auto t = pageTable_->translate(pc + i, priv_, Access::Fetch);
        if (!t.ok())
            break;
        bytes[avail++] = physMem_.read8(t.paddr);
    }
    Insn insn = isa::decode(bytes, avail);
    decodeCache_.insert(pa0, insn);
    return insn;
}

u64
Machine::loadArch(VAddr va, FaultInfo& fault, bool& ok)
{
    auto t = pageTable_->translate(va, priv_, Access::Read);
    if (!t.ok()) {
        fault.fault = t.fault;
        fault.va = va;
        fault.access = Access::Read;
        ok = false;
        return 0;
    }
    Cycle lat = caches_.dataAccess(alignDown(t.paddr, kCacheLineBytes));
    if (lat > caches_.config().latL1)
        pmc_.bump(PmcEvent::L1DMiss);
    charge(CycleClass::CommitMemory, lat);
    ok = true;
    return physMem_.read64(t.paddr);
}

bool
Machine::storeArch(VAddr va, u64 value, FaultInfo& fault)
{
    auto t = pageTable_->translate(va, priv_, Access::Write);
    if (!t.ok()) {
        fault.fault = t.fault;
        fault.va = va;
        fault.access = Access::Write;
        return false;
    }
    Cycle lat = caches_.dataAccess(alignDown(t.paddr, kCacheLineBytes));
    if (lat > caches_.config().latL1)
        pmc_.bump(PmcEvent::L1DMiss);
    charge(CycleClass::CommitMemory, lat);
    physMem_.write64(t.paddr, value);
    return true;
}

RunResult
Machine::makeFault(const FaultInfo& fault, u64 instructions)
{
    RunResult result;
    result.reason = ExitReason::Fault;
    result.fault = fault;
    result.instructions = instructions;
    return result;
}

// ---- Speculative machinery --------------------------------------------------

bool
Machine::speculativeFetchLine(VAddr va)
{
    auto t = pageTable_->translate(va, priv_, Access::Fetch);
    if (!t.ok())
        return false;   // failed fetch leaves the I-cache untouched (P1/P2)
    caches_.fetchAccess(alignDown(t.paddr, kCacheLineBytes));
    pmc_.bump(PmcEvent::SpecFetch);
    trace(obs::TraceEventKind::SpecFetch, va, alignDown(va, kCacheLineBytes));
    return true;
}

std::optional<Insn>
Machine::speculativeFetchDecode(VAddr va, VAddr& line, bool count_fetch)
{
    // Speculative (fault-suppressing) translation: an untranslatable
    // first byte means nothing entered the pipeline.
    auto t0 = pageTable_->translate(va, priv_, Access::Fetch);
    if (!t0.ok())
        return std::nullopt;

    VAddr cur_line = alignDown(va, kCacheLineBytes);
    if (cur_line != line) {
        line = cur_line;
        auto t = pageTable_->translate(cur_line, priv_, Access::Fetch);
        if (t.ok()) {
            caches_.fetchAccess(alignDown(t.paddr, kCacheLineBytes));
            if (count_fetch) {
                pmc_.bump(PmcEvent::SpecFetch);
                trace(obs::TraceEventKind::SpecFetch, va, cur_line);
            }
        }
        bool uop_hit = uopCache_.lookupFill(cur_line);
        trace(uop_hit ? obs::TraceEventKind::OpCacheHit
                      : obs::TraceEventKind::OpCacheFill,
              va, cur_line);
    }

    Insn insn = decodeAt(va, t0.paddr);
    if (insn.kind == InsnKind::Invalid)
        return std::nullopt;
    pmc_.bump(PmcEvent::SpecDecode);
    trace(obs::TraceEventKind::SpecDecode, va, 0, insn.length);
    return insn;
}

void
Machine::speculativeDecode(VAddr va, u32 max_insns)
{
    VAddr line = ~0ull;
    for (u32 i = 0; i < max_insns; ++i) {
        auto insn = speculativeFetchDecode(va, line, /*count_fetch=*/false);
        if (!insn)
            return;
        if (insn->isBranch())
            return;     // the frontend redirects; stop the linear walk
        va += insn->length;
    }
}

void
Machine::transientExecute(VAddr va, u32 budget)
{
    PROF_SCOPE(SpecExec);
    // Overlay state: wrong-path writes never reach architectural state.
    u64 lregs[isa::kNumRegs];
    for (u8 r = 0; r < isa::kNumRegs; ++r)
        lregs[r] = regs_.read(r);
    Flags lflags = flags_;

    // Any RSB pops along the wrong path are repaired at resteer.
    bpu::RsbCheckpoint rsb_at_entry{bpu_.rsb().top(), bpu_.rsb().depth()};

    VAddr line = ~0ull;
    u32 remaining = budget;
    while (remaining > 0) {
        --remaining;

        auto fetched =
            speculativeFetchDecode(va, line, /*count_fetch=*/true);
        if (!fetched)
            break;
        const Insn insn = *fetched;

        // Pre-decode prediction steers transient control flow too: this
        // is how PHANTOM nests inside a Spectre window (§7.4).
        auto pred2 = bpu_.predictAt(va, priv_, autoIbrsActive(),
                                    smtThread_, stibpActive());
        if (pred2) {
            if (pred2->restricted) {
                speculativeFetchLine(pred2->target);
                break;
            }
            BranchType actual = insn.branchType();
            bool type_match = actual == pred2->btb.type;
            bool direct_family = actual == BranchType::DirectJump ||
                                 actual == BranchType::DirectCall ||
                                 actual == BranchType::CondJump;
            bool delta_match =
                !direct_family ||
                pred2->btb.relDelta ==
                    static_cast<i64>(insn.relTarget(va)) - static_cast<i64>(va);
            if (!type_match || !delta_match) {
                // Nested decoder-detectable misprediction: the inner
                // window is capped at the phantom budget.
                if (actual == BranchType::None && suppressBpActive()) {
                    speculativeFetchLine(pred2->target);
                    speculativeDecode(pred2->target, config_.phantomDecodeInsns);
                    break;
                }
                remaining = std::min(remaining, config_.transientExecUops);
                if (remaining == 0) {
                    // Fetch + decode of the nested target still happen.
                    speculativeFetchLine(pred2->target);
                    speculativeDecode(pred2->target, config_.phantomDecodeInsns);
                    break;
                }
                va = pred2->target;
                continue;
            }
            // Prediction consistent with the decoded instruction: follow
            // it (this is how a trained-taken jcc path keeps going).
            if (pred2->btb.type == BranchType::CondJump && !pred2->taken) {
                va += insn.length;
            } else {
                va = pred2->target;
            }
            pmc_.bump(PmcEvent::SpecExec);
            trace(obs::TraceEventKind::SpecExec, va, 0);
            continue;
        }

        // No prediction: actual transient semantics.
        pmc_.bump(PmcEvent::SpecExec);
        trace(obs::TraceEventKind::SpecExec, va, 0);
        bool stop = false;
        VAddr next = va + insn.length;
        switch (insn.kind) {
          case InsnKind::Load: {
            VAddr addr = lregs[insn.src] + static_cast<i64>(insn.disp);
            auto t = pageTable_->translate(addr, priv_, Access::Read);
            if (t.ok()) {
                // A dispatched load cannot be aborted: it fills the
                // D-cache even though the value is never committed.
                caches_.dataAccess(alignDown(t.paddr, kCacheLineBytes));
                lregs[insn.dst] = physMem_.read64(t.paddr);
            } else {
                lregs[insn.dst] = 0;    // squashed load yields poison
            }
            break;
          }
          case InsnKind::Store:
            break;  // stores stay in the store buffer; no cache effect
          case InsnKind::MovImm: lregs[insn.dst] = insn.imm; break;
          case InsnKind::MovReg: lregs[insn.dst] = lregs[insn.src]; break;
          case InsnKind::Add:    lregs[insn.dst] += lregs[insn.src]; break;
          case InsnKind::AddImm:
            lregs[insn.dst] += static_cast<i64>(static_cast<i32>(insn.imm));
            break;
          case InsnKind::Sub:
            lflags.setCompare(lregs[insn.dst], lregs[insn.src]);
            lregs[insn.dst] -= lregs[insn.src];
            break;
          case InsnKind::SubImm:
            lflags.setCompare(lregs[insn.dst],
                              static_cast<u64>(static_cast<i64>(
                                  static_cast<i32>(insn.imm))));
            lregs[insn.dst] -= static_cast<i64>(static_cast<i32>(insn.imm));
            break;
          case InsnKind::Xor:    lregs[insn.dst] ^= lregs[insn.src]; break;
          case InsnKind::And:    lregs[insn.dst] &= lregs[insn.src]; break;
          case InsnKind::AndImm: lregs[insn.dst] &= insn.imm; break;
          case InsnKind::Shl:    lregs[insn.dst] <<= (insn.imm & 63); break;
          case InsnKind::Shr:    lregs[insn.dst] >>= (insn.imm & 63); break;
          case InsnKind::CmpImm:
            lflags.setCompare(lregs[insn.dst],
                              static_cast<u64>(static_cast<i64>(
                                  static_cast<i32>(insn.imm))));
            break;
          case InsnKind::CmpReg:
            lflags.setCompare(lregs[insn.dst], lregs[insn.src]);
            break;
          case InsnKind::JmpRel:
          case InsnKind::CallRel:
            next = insn.relTarget(va);
            break;
          case InsnKind::JccRel:
            // Without a BTB entry the PHT alone decides the direction.
            next = bpu_.pht().predictTaken(va, bpu_.bhb().value())
                       ? insn.relTarget(va)
                       : va + insn.length;
            break;
          case InsnKind::JmpInd:
          case InsnKind::CallInd:
            next = lregs[insn.src];
            break;
          case InsnKind::Ret: {
            VAddr sp = lregs[isa::RSP];
            auto t = pageTable_->translate(sp, priv_, Access::Read);
            if (!t.ok()) {
                stop = true;
                break;
            }
            caches_.dataAccess(alignDown(t.paddr, kCacheLineBytes));
            next = physMem_.read64(t.paddr);
            lregs[isa::RSP] += 8;
            break;
          }
          case InsnKind::Rdtsc: lregs[isa::RAX] = cycles_; break;
          case InsnKind::Rdpmc:
            lregs[isa::RAX] = pmc_.readRaw(lregs[isa::RCX]);
            break;
          case InsnKind::Push:
          case InsnKind::Pop:
          case InsnKind::Clflush:
          case InsnKind::Nop:
          case InsnKind::NopN:
            break;
          case InsnKind::Lfence:
          case InsnKind::Mfence:
          case InsnKind::Syscall:
          case InsnKind::Sysret:
          case InsnKind::Hlt:
          case InsnKind::Ud2:
          case InsnKind::Invalid:
            stop = true;    // barriers and mode changes end speculation
            break;
        }
        if (stop)
            break;
        va = next;
    }

    bpu_.restoreRsb(rsb_at_entry);
}

void
Machine::phantomEpisode(const bpu::FrontendPrediction& pred, u32 exec_budget)
{
    PROF_SCOPE(SpecEpisode);
    if (!speculativeFetchLine(pred.target))
        return;     // fetch failed: nothing entered the pipeline
    speculativeDecode(pred.target, config_.phantomDecodeInsns);
    if (exec_budget > 0)
        transientExecute(pred.target, exec_budget);
}

void
Machine::sequentialSpeculation(VAddr fall_through)
{
    PROF_SCOPE(SpecEpisode);
    // A branch with no prediction: the frontend keeps fetching and
    // decoding straight ahead; on Zen 1/2 the fall-through even executes
    // (Straight-Line Speculation).
    if (!speculativeFetchLine(fall_through))
        return;
    speculativeDecode(fall_through, config_.phantomDecodeInsns);
    if (config_.transientExecUops > 0)
        transientExecute(fall_through, config_.transientExecUops);
}

void
Machine::spectreEpisode(VAddr wrong_path)
{
    PROF_SCOPE(SpecEpisode);
    if (!speculativeFetchLine(wrong_path))
        return;
    transientExecute(wrong_path, config_.spectreWindowUops);
}

void
Machine::maybeSpeculate(VAddr pc, const Insn& insn,
                        std::optional<bpu::FrontendPrediction>& pred)
{
    BranchType actual = insn.branchType();

    // Episode tracing: capture speculative-activity counters around each
    // episode so the record reports how deep the target advanced.
    u64 f0 = pmc_.read(PmcEvent::SpecFetch);
    u64 d0 = pmc_.read(PmcEvent::SpecDecode);
    u64 e0 = pmc_.read(PmcEvent::SpecExec);
    Cycle episode_start = cycles_;

    // begin() opens a numbered episode before any speculative work, so
    // pipeline events emitted during the episode carry its id.
    auto begin = [&](VAddr target) {
        ++episodeId_;
        curEpisode_ = episodeId_;
        episode_start = cycles_;
        trace(obs::TraceEventKind::EpisodeBegin, pc, target);
    };
    // record() closes the episode: by the time it runs the resteer
    // penalty (if any) has been charged, so squashCycle covers it.
    auto record = [&](EpisodeKind kind, VAddr target) {
        trace(obs::TraceEventKind::EpisodeEnd, pc, target, 0,
              static_cast<u8>(kind));
        curEpisode_ = 0;
        if (traceCapacity_ == 0)
            return;
        if (trace_.size() >= traceCapacity_) {
            ++droppedEpisodes_;
            return;
        }
        EpisodeRecord rec;
        rec.kind = kind;
        rec.id = episodeId_;
        rec.sourcePc = pc;
        rec.actualKind = insn.kind;
        rec.predictedType =
            pred ? pred->btb.type : isa::BranchType::None;
        rec.target = target;
        rec.priv = priv_;
        rec.atCycle = episode_start;
        rec.squashCycle = cycles_;
        rec.fetched = pmc_.read(PmcEvent::SpecFetch) > f0;
        rec.decoded =
            static_cast<u32>(pmc_.read(PmcEvent::SpecDecode) - d0);
        rec.executed =
            static_cast<u32>(pmc_.read(PmcEvent::SpecExec) - e0);
        trace_.push_back(rec);
    };

    if (!pred) {
        if (actual != BranchType::None) {
            begin(pc + insn.length);
            sequentialSpeculation(pc + insn.length);
            record(EpisodeKind::StraightLine, pc + insn.length);
        }
        return;
    }

    bpu::FrontendPrediction& p = *pred;

    // AutoIBRS: a lower-privilege prediction is cancelled after its
    // target fetch has already been issued (paper O5 — IF still happens).
    if (p.restricted) {
        begin(p.target);
        speculativeFetchLine(p.target);
        if (p.usedRsb)
            bpu_.restoreRsb(p.rsbBefore);
        pmc_.bump(PmcEvent::MispredictFrontend);
        trace(obs::TraceEventKind::FrontendResteer, pc, p.target);
        charge(CycleClass::FrontendResteer, config_.frontendResteerPenalty);
        record(EpisodeKind::AutoIbrsCancelled, p.target);
        return;
    }

    bool type_match = actual == p.btb.type;
    bool direct_family = actual == BranchType::DirectJump ||
                         actual == BranchType::DirectCall ||
                         actual == BranchType::CondJump;
    bool delta_match =
        !direct_family ||
        p.btb.relDelta ==
            static_cast<i64>(insn.relTarget(pc)) - static_cast<i64>(pc);

    bool decoder_detectable =
        actual == BranchType::None || !type_match ||
        (direct_family && !delta_match);

    // Retbleed exception: on parts that do not validate the predicted
    // type against a decoded return, a type-confused prediction at a ret
    // only resolves at execute — a full Spectre window.
    if (actual == BranchType::Return && !type_match &&
        !config_.decoderChecksRetType) {
        begin(p.target);
        spectreEpisode(p.target);
        pmc_.bump(PmcEvent::MispredictBackend);
        trace(obs::TraceEventKind::BackendResteer, pc, p.target);
        charge(CycleClass::BackendResteer, config_.backendResteerPenalty);
        record(EpisodeKind::SpectreBackend, p.target);
        return;
    }

    if (decoder_detectable) {
        bool victim_is_indirect = actual == BranchType::IndirectJump ||
                                  actual == BranchType::IndirectCall;
        if (config_.indirectVictimOpaque && victim_is_indirect) {
            // Intel quirk (§6): no IF/ID observable for jmp* victims.
            begin(p.target);
            if (p.usedRsb)
                bpu_.restoreRsb(p.rsbBefore);
            pmc_.bump(PmcEvent::MispredictFrontend);
            trace(obs::TraceEventKind::FrontendResteer, pc, p.target);
            charge(CycleClass::FrontendResteer,
                   config_.frontendResteerPenalty);
            record(EpisodeKind::IntelOpaque, p.target);
            return;
        }

        u32 exec_budget = config_.transientExecUops;
        if (actual == BranchType::None && suppressBpActive())
            exec_budget = 0;    // O4: IF/ID still happen, EX does not

        begin(p.target);
        phantomEpisode(p, exec_budget);

        if (actual == BranchType::None) {
            bpu_.decoderInvalidate(pc, priv_);
            pmc_.bump(PmcEvent::DecoderInvalidate);
        }
        if (p.usedRsb)
            bpu_.restoreRsb(p.rsbBefore);
        pmc_.bump(PmcEvent::MispredictFrontend);
        trace(obs::TraceEventKind::FrontendResteer, pc, p.target);
        charge(CycleClass::FrontendResteer, config_.frontendResteerPenalty);
        record(EpisodeKind::PhantomFrontend, p.target);
        return;
    }

    // Prediction type (and displacement, where checkable) agree with the
    // decoded instruction. Execute-dependent aspects resolve at EX.
    switch (actual) {
      case BranchType::CondJump: {
        bool taken = flags_.test(insn.cond);
        if (taken != p.taken) {
            VAddr wrong = p.taken ? p.target : pc + insn.length;
            begin(wrong);
            spectreEpisode(wrong);
            pmc_.bump(PmcEvent::MispredictBackend);
            trace(obs::TraceEventKind::BackendResteer, pc, wrong);
            charge(CycleClass::BackendResteer,
                   config_.backendResteerPenalty);
            record(EpisodeKind::SpectreBackend, wrong);
        }
        break;
      }
      case BranchType::IndirectJump:
      case BranchType::IndirectCall: {
        VAddr actual_target = regs_.read(insn.src);
        if (actual_target != p.target) {
            begin(p.target);
            spectreEpisode(p.target);
            pmc_.bump(PmcEvent::MispredictBackend);
            trace(obs::TraceEventKind::BackendResteer, pc, p.target);
            charge(CycleClass::BackendResteer,
                   config_.backendResteerPenalty);
            record(EpisodeKind::SpectreBackend, p.target);
        }
        break;
      }
      case BranchType::Return: {
        auto top = debugRead64(regs_.read(isa::RSP));
        VAddr actual_target = top.value_or(0);
        if (actual_target != p.target) {
            begin(p.target);
            spectreEpisode(p.target);
            pmc_.bump(PmcEvent::MispredictBackend);
            trace(obs::TraceEventKind::BackendResteer, pc, p.target);
            charge(CycleClass::BackendResteer,
                   config_.backendResteerPenalty);
            record(EpisodeKind::SpectreBackend, p.target);
        }
        break;
      }
      default:
        break;    // correctly predicted direct branch
    }
}

// ---- Main loop --------------------------------------------------------------

void
Machine::fetchLineWork(VAddr pc, VAddr line)
{
    if (uopCache_.lookupFill(line)) {
        pmc_.bump(PmcEvent::OpCacheHit);
        trace(obs::TraceEventKind::OpCacheHit, pc, line);
        charge(CycleClass::CommitFrontend, 1);
    } else {
        pmc_.bump(PmcEvent::OpCacheMiss);
        auto t = pageTable_->translate(line, priv_, Access::Fetch);
        if (t.ok()) {
            Cycle lat =
                caches_.fetchAccess(alignDown(t.paddr, kCacheLineBytes));
            if (lat > caches_.config().latL1)
                pmc_.bump(PmcEvent::L1IMiss);
            charge(CycleClass::CommitFrontend, lat);
        }
        trace(obs::TraceEventKind::OpCacheFill, pc, line);
    }
    if (config_.nextLinePrefetch) {
        // Prefetched lines fill L1I but never enter the pipeline
        // (no decode, no µop-cache effect) — the IF-channel
        // confound of §5.1.
        VAddr next_line = line + kCacheLineBytes;
        auto t = pageTable_->translate(next_line, priv_, Access::Fetch);
        if (t.ok() &&
            !caches_.l1i().contains(alignDown(t.paddr, kCacheLineBytes))) {
            caches_.fetchAccess(alignDown(t.paddr, kCacheLineBytes));
            pmc_.bump(PmcEvent::L1IPrefetch);
        }
    }
}

bool
Machine::frontendWork(VAddr pc, const Insn& insn)
{
    pmc_.bump(PmcEvent::BtbLookup);
    auto pred = bpu_.predictAt(pc, priv_, autoIbrsActive(),
                               smtThread_, stibpActive());
    trace(obs::TraceEventKind::BtbLookup, pc,
          pred ? pred->target : 0, pred ? 1u : 0u);
    if (pred) {
        pmc_.bump(PmcEvent::BtbHit);
        // SuppressBPOnNonBr overhead model: served predictions must
        // be checked against the "is a branch" pre-decode marker
        // before steering. The check is pipelined; it costs a bubble
        // only when the confirmation buffer fills (1 in 16 served
        // predictions), landing in the sub-percent overhead band the
        // paper measures with UnixBench (§6.3, 0.42-0.69%).
        if (suppressBpActive() && (++suppressConfirms_ & 0xf) == 0)
            charge(CycleClass::CommitFrontend, 1);
    }
    maybeSpeculate(pc, insn, pred);

    return pred && !pred->restricted &&
           pred->btb.type == BranchType::Return &&
           insn.kind == InsnKind::Ret;
}

std::shared_ptr<const DecodeCache::Superblock>
Machine::buildSuperblock(VAddr start_pc, PAddr pa0)
{
    PROF_SCOPE(DecodeBlockBuild);
    auto block = std::make_shared<DecodeCache::Superblock>();
    block->pa = pa0;
    VAddr pc = start_pc;
    PAddr pa = pa0;
    while (block->entries.size() < DecodeCache::kMaxBlockInsns) {
        Insn insn = decodeAt(pc, pa);
        if (insn.kind == InsnKind::Invalid || insn.kind == InsnKind::Ud2)
            break;    // faulting decodes take the slow path every time
        if (pa % kPageBytes + insn.length > kPageBytes)
            break;    // entry would cross the physical page
        block->entries.push_back({insn, handlerFor(insn.kind)});
        block->byteLen += insn.length;
        bool terminal = false;
        switch (insn.kind) {
          case InsnKind::JmpRel:
          case InsnKind::JccRel:
          case InsnKind::JmpInd:
          case InsnKind::CallRel:
          case InsnKind::CallInd:
          case InsnKind::Ret:
          case InsnKind::Syscall:
          case InsnKind::Sysret:
          case InsnKind::Hlt:
            terminal = true;
            break;
          default:
            break;
        }
        if (terminal)
            break;
        pa += insn.length;
        pc += insn.length;
        if (pa % kPageBytes == 0)
            break;    // ran exactly to the page end
    }
    return decodeCache_.insertBlock(std::move(block));
}

RunResult
Machine::run(u64 max_insns)
{
    PROF_SCOPE(MachineRun);
    u64 instructions = 0;
    Cycle start_cycles = cycles_;
    VAddr cur_line = ~0ull;
    const bool use_blocks = decodeCache_.blocksEnabled();

    while (instructions < max_insns) {
        // ---- Fetch -----------------------------------------------------
        // Only an untranslatable first byte faults; translation failures
        // further into the (up to 15-byte) window merely truncate the
        // decode, which decodeAt() handles on the miss path.
        FaultInfo fault;
        auto tfetch = pageTable_->translate(pc_, priv_, Access::Fetch);
        if (!tfetch.ok()) {
            fault.fault = tfetch.fault;
            fault.va = pc_;
            fault.pc = pc_;
            fault.access = Access::Fetch;
            auto r = makeFault(fault, instructions);
            r.cycles = cycles_ - start_cycles;
            return r;
        }

        VAddr line = alignDown(pc_, kCacheLineBytes);
        if (line != cur_line) {
            cur_line = line;
            fetchLineWork(pc_, line);
        }

        // ---- Superblock fast path ---------------------------------------
        // Execute a whole decoded block through its prebound handlers.
        // Every per-instruction commitment below mirrors the slow path
        // exactly — same helpers, same order — so only decode and the
        // per-step page walk are amortized; decode_cache.hpp documents
        // why neither is architecturally observable.
        if (use_blocks) {
            syncDecodeGen();
            std::shared_ptr<const DecodeCache::Superblock> block =
                decodeCache_.lookupBlock(tfetch.paddr);
            if (block == nullptr)
                block = buildSuperblock(pc_, tfetch.paddr);
            if (block != nullptr) {
                for (const auto& entry : block->entries) {
                    if (instructions >= max_insns)
                        break;    // InsnLimit surfaces from the outer loop
                    VAddr eline = alignDown(pc_, kCacheLineBytes);
                    if (eline != cur_line) {
                        cur_line = eline;
                        fetchLineWork(pc_, eline);
                    }
                    const Insn& insn = entry.insn;
                    ExecCtx ctx;
                    ctx.pc = pc_;
                    ctx.next = pc_ + insn.length;
                    ctx.rsbConsumed = frontendWork(pc_, insn);

                    ++instructions;
                    pmc_.bump(PmcEvent::Instructions);
                    charge(CycleClass::CommitExecute, 1);

                    ExecStatus st = entry.handler(*this, insn, ctx);
                    if (st == ExecStatus::Fault) {
                        auto r = makeFault(ctx.fault, instructions);
                        r.cycles = cycles_ - start_cycles;
                        return r;
                    }
                    if (st == ExecStatus::Halt) {
                        RunResult r;
                        r.reason = ExitReason::Halt;
                        r.instructions = instructions;
                        r.cycles = cycles_ - start_cycles;
                        pc_ = ctx.next;
                        return r;
                    }
                    pc_ = ctx.next;

                    // ---- Environmental noise ----------------------------
                    if (++insnsSinceNoise_ >= config_.noiseEveryInsns) {
                        insnsSinceNoise_ = 0;
                        noise_.disturb(caches_);
                    }

                    // Invalidated under our feet (self-modifying store,
                    // clflush, remap): the rest of the block is stale —
                    // fall back to a fresh translate/decode.
                    if (block->dead)
                        break;
                    // Terminal entries redirect control flow; everything
                    // else falls through to the next entry.
                    if (pc_ != ctx.pc + insn.length)
                        break;
                }
                continue;    // revalidate translation, find the next block
            }
            // Not even one block-cacheable instruction here: step below.
        }

        // ---- Decode ----------------------------------------------------
        Insn insn = decodeAt(pc_, tfetch.paddr);
        if (insn.kind == InsnKind::Invalid || insn.kind == InsnKind::Ud2) {
            FaultInfo f;
            f.invalidOpcode = true;
            f.pc = pc_;
            f.va = pc_;
            auto r = makeFault(f, instructions);
            r.cycles = cycles_ - start_cycles;
            return r;
        }

        // ---- Pre-decode prediction & speculation episodes ---------------
        ExecCtx ctx;
        ctx.pc = pc_;
        ctx.next = pc_ + insn.length;
        ctx.rsbConsumed = frontendWork(pc_, insn);

        // ---- Execute ----------------------------------------------------
        ++instructions;
        pmc_.bump(PmcEvent::Instructions);
        charge(CycleClass::CommitExecute, 1);

        ExecStatus st = handlerFor(insn.kind)(*this, insn, ctx);
        if (st == ExecStatus::Fault) {
            auto r = makeFault(ctx.fault, instructions);
            r.cycles = cycles_ - start_cycles;
            return r;
        }
        if (st == ExecStatus::Halt) {
            RunResult r;
            r.reason = ExitReason::Halt;
            r.instructions = instructions;
            r.cycles = cycles_ - start_cycles;
            pc_ = ctx.next;
            return r;
        }
        pc_ = ctx.next;

        // ---- Environmental noise ----------------------------------------
        if (++insnsSinceNoise_ >= config_.noiseEveryInsns) {
            insnsSinceNoise_ = 0;
            noise_.disturb(caches_);
        }
    }

    RunResult r;
    r.reason = ExitReason::InsnLimit;
    r.instructions = instructions;
    r.cycles = cycles_ - start_cycles;
    return r;
}

} // namespace phantom::cpu
