/**
 * @file
 * Predecoded-instruction cache for the fetch/decode hot path.
 *
 * Every architectural step and every speculation episode used to re-run
 * isa::decode on bytes gathered with up to kMaxInsnBytes per-byte page
 * walks. Real frontends do not: decode work is cached (µop caches,
 * predecode bits in L1I). This cache memoizes decode results per
 * Machine, keyed by the *physical* address of the instruction's first
 * byte, so it is a pure function of physical memory contents:
 *
 *  - Entries are only created for valid decodes that lie entirely
 *    within one 4 KiB physical page. Because 4 KiB and 2 MiB mappings
 *    both preserve the low 12 address bits, such an instruction also
 *    lies within one *virtual* page, which makes the cached result
 *    independent of the page table: whenever byte 0 translates, the
 *    uncached gather would have collected at least `length` bytes of
 *    identical content, and decode is prefix-closed (see
 *    isa/encoder.hpp), so it would return the identical instruction.
 *  - Invalidation has three sources: stores to physical memory
 *    (self-modifying code — the cache registers as the machine's
 *    mem::PhysWriteListener), clflush (Machine::clflushVirt invalidates
 *    the flushed line), and page-table mutations (a generation counter
 *    on mem::PageTable triggers a conservative full flush — not needed
 *    for correctness given physical tagging, but it keeps entries for
 *    torn-down mappings from accumulating).
 *  - The cache is *derived state*: lookups and insertions touch no
 *    architectural or microarchitectural state (no frame creation, no
 *    cache fills, no PMC events), so cached and uncached runs are
 *    bit-identical. It is excluded from PHANSNAP images and rebuilt
 *    cold after snapshot restore/fork/replay (snap::restore flushes).
 *
 * On top of single decodes sits the *decoded-superblock engine*: whole
 * straight-line runs are decoded once into a contiguous array of
 * (Insn, handler) entries — the libriscv DECODED_INSTR shape — and
 * Machine::run executes a cached block by threading through the bound
 * handlers instead of re-entering translate+decode+dispatch per
 * instruction. Superblocks inherit the single-entry contract wholesale:
 * physically tagged, confined to one 4 KiB page, derived state only
 * (never snapshotted, cold after restore/fork), and killed by the same
 * three invalidation sources. Because an executor may be mid-block when
 * a store or clflush lands, invalidation follows a pin-and-graveyard
 * protocol (see Superblock::dead) so stale tails are never executed.
 * DESIGN.md §9 documents block formation, the mid-block exit taxonomy,
 * and the bit-identity argument in full.
 *
 * Gated by PHANTOM_DECODE_CACHE (default on; "0" disables); the block
 * layer is additionally gated by PHANTOM_SUPERBLOCKS (default on; "0"
 * falls back to single-instruction predecode). Hit/miss/invalidate and
 * block build/hit/invalidate counters drain into an ambient per-shard
 * DecodeCacheStats (same idiom as snap::activeSnapshotStore) and
 * surface as metrics.measured.counters.decode_cache.* — classified
 * informational in obs/diff, since they vary with the gates but the
 * model output does not.
 */

#ifndef PHANTOM_CPU_DECODE_CACHE_HPP
#define PHANTOM_CPU_DECODE_CACHE_HPP

#include "cpu/insn_exec.hpp"
#include "isa/encoder.hpp"
#include "isa/insn.hpp"
#include "mem/phys_mem.hpp"
#include "sim/types.hpp"

#include <memory>
#include <unordered_map>
#include <vector>

namespace phantom::cpu {

/** Counters a decode cache accumulates; exported as decode_cache.*
 *  bench metrics (pooled per scheduler shard). */
struct DecodeCacheStats
{
    u64 hits = 0;         ///< lookups served from the cache
    u64 misses = 0;       ///< lookups that fell through to a full decode
    u64 invalidates = 0;  ///< entries discarded (store/clflush/remap/flush)
    u64 blockBuilds = 0;      ///< superblocks formed
    u64 blockHits = 0;        ///< steps that entered a cached superblock
    u64 blockInvalidates = 0; ///< superblocks killed (store/clflush/remap)

    void
    merge(const DecodeCacheStats& other)
    {
        hits += other.hits;
        misses += other.misses;
        invalidates += other.invalidates;
        blockBuilds += other.blockBuilds;
        blockHits += other.blockHits;
        blockInvalidates += other.blockInvalidates;
    }
};

/**
 * Physically-tagged map from instruction start address to its decoded
 * form. Entries are bucketed by cache line; an entry may spill into the
 * following line (variable-length encodings) but never crosses a 4 KiB
 * page boundary. Strictly per-Machine — no locking.
 */
class DecodeCache : public mem::PhysWriteListener
{
  public:
    DecodeCache();
    ~DecodeCache() override;

    DecodeCache(const DecodeCache&) = delete;
    DecodeCache& operator=(const DecodeCache&) = delete;

    // -- Decoded superblocks ----------------------------------------------

    /** One decoded instruction with its execute handler bound at
     *  block-build time (the libriscv DECODED_INSTR shape). */
    struct BlockEntry
    {
        isa::Insn insn;
        InsnHandler handler;
    };

    /**
     * A straight-line run of decoded instructions starting at physical
     * address pa: decode proceeds until the first control-flow change
     * (branch/call/ret/syscall/sysret/hlt — included as the terminal
     * entry), the first non-cacheable decode (invalid, or an encoding
     * crossing a 4 KiB physical page), or kMaxBlockInsns. Like single
     * entries, a block never crosses a 4 KiB physical page, so every
     * entry shares the first instruction's translation. Blocks are
     * derived state with the same invalidation contract as entries;
     * `dead` supports the pin-and-graveyard protocol: invalidation
     * marks a block dead and unregisters it, while an executor holding
     * the shared_ptr observes `dead` after every instruction and falls
     * back to the slow path (self-modifying code, clflush, remap).
     */
    struct Superblock
    {
        PAddr pa = 0;                     ///< first byte
        u32 byteLen = 0;                  ///< total encoded length
        bool dead = false;                ///< invalidated while pinned
        std::vector<BlockEntry> entries;
    };

    /** Superblock formation cap (entries per block). */
    static constexpr std::size_t kMaxBlockInsns = 64;

    /**
     * The live superblock starting at @p pa, or null. Counts a block
     * hit; misses are not counted here (the caller decides whether it
     * builds). Null whenever superblocks are gated off.
     */
    std::shared_ptr<const Superblock> lookupBlock(PAddr pa);

    /** Register @p block (built by Machine::buildSuperblock) and count
     *  the build. Ignored (returns null) when gated off or empty. */
    std::shared_ptr<const Superblock>
    insertBlock(std::shared_ptr<Superblock> block);

    /** True when both the cache and the superblock layer are enabled. */
    bool blocksEnabled() const { return enabled_ && superblocks_; }

    /** Test hook mirroring setEnabled: gate only the superblock layer
     *  (off also drops all blocks), leaving single-entry caching on. */
    void setSuperblocksEnabled(bool on);

    std::size_t blockCount() const { return blocks_.size(); }

    /** Cached decode whose first byte is at @p pa, or nullptr. Counts a
     *  hit or miss; disabled caches miss silently (counters stay 0). */
    const isa::Insn* lookup(PAddr pa);

    /**
     * Memoize @p insn as the decode at @p pa. Ignored when disabled,
     * when the decode failed (Invalid results depend on how many bytes
     * were available, not only on the bytes), or when the instruction
     * would cross a 4 KiB page boundary (cacheability within one page
     * is what makes entries a pure function of physical bytes).
     */
    void insert(PAddr pa, const isa::Insn& insn);

    /** Discard entries overlapping [@p pa, @p pa + @p len). */
    void invalidateRange(PAddr pa, u64 len);

    /** Discard entries overlapping the line at @p line_pa (clflush). */
    void
    invalidateLine(PAddr line_pa)
    {
        invalidateRange(line_pa, kCacheLineBytes);
    }

    /** Discard everything (page-table mutation, snapshot restore). */
    void flushAll();

    /** mem::PhysWriteListener: a store reached physical memory. */
    void
    onPhysWrite(PAddr pa, u64 len) override
    {
        if (!ignoreStores_ && (!lines_.empty() || !blocks_.empty()))
            invalidateRange(pa, len);
    }

    /**
     * Test-only fault injection: drop store-driven invalidation so
     * self-modifying code leaves stale entries behind. The fuzz
     * minimizer tests use this to manufacture a known decode-cache
     * divergence and prove the pinpoint→minimize→corpus pipeline
     * catches it. Never set outside tests.
     */
    void setTestOnlyIgnoreStores(bool on) { ignoreStores_ = on; }

    /** Runtime gate; setEnabled(false) also drops all entries. Tests
     *  use this to compare cached and uncached runs in-process. */
    void setEnabled(bool on);
    bool enabled() const { return enabled_; }

    std::size_t entryCount() const { return entries_; }

    const DecodeCacheStats& stats() const { return stats_; }

  private:
    struct Entry
    {
        u8 offset;       ///< pa % kCacheLineBytes of the first byte
        isa::Insn insn;  ///< insn.length is the encoded length
    };

    /** Kill every superblock overlapping [@p pa, @p pa + @p len):
     *  mark dead (for pinned executors) and unregister. */
    void invalidateBlocksInRange(PAddr pa, u64 len);

    /** Mark every superblock dead and drop the registries. */
    void dropAllBlocks(bool count);

    /** Buckets keyed by pa / kCacheLineBytes. */
    std::unordered_map<u64, std::vector<Entry>> lines_;
    std::size_t entries_ = 0;

    /** Superblocks keyed by start pa, plus a per-4KiB-page index of
     *  start addresses for invalidation sweeps (blocks never cross a
     *  page, so each block appears under exactly one page). */
    std::unordered_map<u64, std::shared_ptr<Superblock>> blocks_;
    std::unordered_map<u64, std::vector<PAddr>> blocksByPage_;

    DecodeCacheStats stats_;
    DecodeCacheStats* ambient_;  ///< drained into on destruction
    bool enabled_;
    bool superblocks_;           ///< PHANTOM_SUPERBLOCKS gate / test hook
    bool ignoreStores_ = false;  ///< test-only injected bug
};

/** True unless PHANTOM_DECODE_CACHE=0: gates predecode memoization. */
bool decodeCacheEnabled();

/** True unless PHANTOM_SUPERBLOCKS=0: gates the superblock engine
 *  (requires the decode cache itself to be enabled, too). */
bool superblocksEnabled();

/** The calling thread's ambient stats sink (null when none). */
DecodeCacheStats* activeDecodeCacheStats();

/** Install @p stats as the calling thread's ambient sink; machines
 *  constructed afterwards drain their counters into it when destroyed
 *  (campaign worker hooks install one per scheduler shard). */
void setActiveDecodeCacheStats(DecodeCacheStats* stats);

} // namespace phantom::cpu

#endif // PHANTOM_CPU_DECODE_CACHE_HPP
