/**
 * @file
 * Predecoded-instruction cache for the fetch/decode hot path.
 *
 * Every architectural step and every speculation episode used to re-run
 * isa::decode on bytes gathered with up to kMaxInsnBytes per-byte page
 * walks. Real frontends do not: decode work is cached (µop caches,
 * predecode bits in L1I). This cache memoizes decode results per
 * Machine, keyed by the *physical* address of the instruction's first
 * byte, so it is a pure function of physical memory contents:
 *
 *  - Entries are only created for valid decodes that lie entirely
 *    within one 4 KiB physical page. Because 4 KiB and 2 MiB mappings
 *    both preserve the low 12 address bits, such an instruction also
 *    lies within one *virtual* page, which makes the cached result
 *    independent of the page table: whenever byte 0 translates, the
 *    uncached gather would have collected at least `length` bytes of
 *    identical content, and decode is prefix-closed (see
 *    isa/encoder.hpp), so it would return the identical instruction.
 *  - Invalidation has three sources: stores to physical memory
 *    (self-modifying code — the cache registers as the machine's
 *    mem::PhysWriteListener), clflush (Machine::clflushVirt invalidates
 *    the flushed line), and page-table mutations (a generation counter
 *    on mem::PageTable triggers a conservative full flush — not needed
 *    for correctness given physical tagging, but it keeps entries for
 *    torn-down mappings from accumulating).
 *  - The cache is *derived state*: lookups and insertions touch no
 *    architectural or microarchitectural state (no frame creation, no
 *    cache fills, no PMC events), so cached and uncached runs are
 *    bit-identical. It is excluded from PHANSNAP images and rebuilt
 *    cold after snapshot restore/fork/replay (snap::restore flushes).
 *
 * Gated by PHANTOM_DECODE_CACHE (default on; "0" disables). Hit/miss/
 * invalidate counters drain into an ambient per-shard DecodeCacheStats
 * (same idiom as snap::activeSnapshotStore) and surface as
 * metrics.measured.counters.decode_cache.* — classified informational
 * in obs/diff, since they vary with the gate but the model output
 * does not.
 */

#ifndef PHANTOM_CPU_DECODE_CACHE_HPP
#define PHANTOM_CPU_DECODE_CACHE_HPP

#include "isa/encoder.hpp"
#include "isa/insn.hpp"
#include "mem/phys_mem.hpp"
#include "sim/types.hpp"

#include <unordered_map>
#include <vector>

namespace phantom::cpu {

/** Counters a decode cache accumulates; exported as decode_cache.*
 *  bench metrics (pooled per scheduler shard). */
struct DecodeCacheStats
{
    u64 hits = 0;         ///< lookups served from the cache
    u64 misses = 0;       ///< lookups that fell through to a full decode
    u64 invalidates = 0;  ///< entries discarded (store/clflush/remap/flush)

    void
    merge(const DecodeCacheStats& other)
    {
        hits += other.hits;
        misses += other.misses;
        invalidates += other.invalidates;
    }
};

/**
 * Physically-tagged map from instruction start address to its decoded
 * form. Entries are bucketed by cache line; an entry may spill into the
 * following line (variable-length encodings) but never crosses a 4 KiB
 * page boundary. Strictly per-Machine — no locking.
 */
class DecodeCache : public mem::PhysWriteListener
{
  public:
    DecodeCache();
    ~DecodeCache() override;

    DecodeCache(const DecodeCache&) = delete;
    DecodeCache& operator=(const DecodeCache&) = delete;

    /** Cached decode whose first byte is at @p pa, or nullptr. Counts a
     *  hit or miss; disabled caches miss silently (counters stay 0). */
    const isa::Insn* lookup(PAddr pa);

    /**
     * Memoize @p insn as the decode at @p pa. Ignored when disabled,
     * when the decode failed (Invalid results depend on how many bytes
     * were available, not only on the bytes), or when the instruction
     * would cross a 4 KiB page boundary (cacheability within one page
     * is what makes entries a pure function of physical bytes).
     */
    void insert(PAddr pa, const isa::Insn& insn);

    /** Discard entries overlapping [@p pa, @p pa + @p len). */
    void invalidateRange(PAddr pa, u64 len);

    /** Discard entries overlapping the line at @p line_pa (clflush). */
    void
    invalidateLine(PAddr line_pa)
    {
        invalidateRange(line_pa, kCacheLineBytes);
    }

    /** Discard everything (page-table mutation, snapshot restore). */
    void flushAll();

    /** mem::PhysWriteListener: a store reached physical memory. */
    void
    onPhysWrite(PAddr pa, u64 len) override
    {
        if (!ignoreStores_ && !lines_.empty())
            invalidateRange(pa, len);
    }

    /**
     * Test-only fault injection: drop store-driven invalidation so
     * self-modifying code leaves stale entries behind. The fuzz
     * minimizer tests use this to manufacture a known decode-cache
     * divergence and prove the pinpoint→minimize→corpus pipeline
     * catches it. Never set outside tests.
     */
    void setTestOnlyIgnoreStores(bool on) { ignoreStores_ = on; }

    /** Runtime gate; setEnabled(false) also drops all entries. Tests
     *  use this to compare cached and uncached runs in-process. */
    void setEnabled(bool on);
    bool enabled() const { return enabled_; }

    std::size_t entryCount() const { return entries_; }

    const DecodeCacheStats& stats() const { return stats_; }

  private:
    struct Entry
    {
        u8 offset;       ///< pa % kCacheLineBytes of the first byte
        isa::Insn insn;  ///< insn.length is the encoded length
    };

    /** Buckets keyed by pa / kCacheLineBytes. */
    std::unordered_map<u64, std::vector<Entry>> lines_;
    std::size_t entries_ = 0;
    DecodeCacheStats stats_;
    DecodeCacheStats* ambient_;  ///< drained into on destruction
    bool enabled_;
    bool ignoreStores_ = false;  ///< test-only injected bug
};

/** True unless PHANTOM_DECODE_CACHE=0: gates predecode memoization. */
bool decodeCacheEnabled();

/** The calling thread's ambient stats sink (null when none). */
DecodeCacheStats* activeDecodeCacheStats();

/** Install @p stats as the calling thread's ambient sink; machines
 *  constructed afterwards drain their counters into it when destroyed
 *  (campaign worker hooks install one per scheduler shard). */
void setActiveDecodeCacheStats(DecodeCacheStats* stats);

} // namespace phantom::cpu

#endif // PHANTOM_CPU_DECODE_CACHE_HPP
