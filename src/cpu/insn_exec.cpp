/**
 * @file
 * Execute-stage handlers (see cpu/insn_exec.hpp). Bodies are the former
 * Machine::run switch cases, moved verbatim: each reads the instruction
 * address from ctx.pc, publishes the successor through ctx.next, and
 * reports faults through ctx.fault. Both the classic step loop and the
 * superblock engine dispatch through this table.
 */

#include "cpu/insn_exec.hpp"

#include "cpu/machine.hpp"

namespace phantom::cpu {

using isa::BranchType;
using isa::Insn;
using isa::InsnKind;

/** Friend of Machine hosting the per-kind handlers. */
struct InsnExec
{
    static ExecStatus
    nop(Machine&, const Insn&, ExecCtx&)
    {
        return ExecStatus::Next;
    }

    static ExecStatus
    movImm(Machine& m, const Insn& insn, ExecCtx&)
    {
        m.regs_.write(insn.dst, insn.imm);
        return ExecStatus::Next;
    }

    static ExecStatus
    movReg(Machine& m, const Insn& insn, ExecCtx&)
    {
        m.regs_.write(insn.dst, m.regs_.read(insn.src));
        return ExecStatus::Next;
    }

    static ExecStatus
    load(Machine& m, const Insn& insn, ExecCtx& ctx)
    {
        VAddr addr = m.regs_.read(insn.src) + static_cast<i64>(insn.disp);
        bool ok = true;
        u64 v = m.loadArch(addr, ctx.fault, ok);
        if (!ok) {
            ctx.fault.pc = ctx.pc;
            return ExecStatus::Fault;
        }
        m.regs_.write(insn.dst, v);
        return ExecStatus::Next;
    }

    static ExecStatus
    store(Machine& m, const Insn& insn, ExecCtx& ctx)
    {
        VAddr addr = m.regs_.read(insn.dst) + static_cast<i64>(insn.disp);
        if (!m.storeArch(addr, m.regs_.read(insn.src), ctx.fault)) {
            ctx.fault.pc = ctx.pc;
            return ExecStatus::Fault;
        }
        return ExecStatus::Next;
    }

    static ExecStatus
    add(Machine& m, const Insn& insn, ExecCtx&)
    {
        m.regs_.write(insn.dst,
                      m.regs_.read(insn.dst) + m.regs_.read(insn.src));
        return ExecStatus::Next;
    }

    static ExecStatus
    addImm(Machine& m, const Insn& insn, ExecCtx&)
    {
        m.regs_.write(insn.dst,
                      m.regs_.read(insn.dst) +
                          static_cast<i64>(static_cast<i32>(insn.imm)));
        return ExecStatus::Next;
    }

    static ExecStatus
    sub(Machine& m, const Insn& insn, ExecCtx&)
    {
        m.flags_.setCompare(m.regs_.read(insn.dst), m.regs_.read(insn.src));
        m.regs_.write(insn.dst,
                      m.regs_.read(insn.dst) - m.regs_.read(insn.src));
        return ExecStatus::Next;
    }

    static ExecStatus
    subImm(Machine& m, const Insn& insn, ExecCtx&)
    {
        u64 b = static_cast<u64>(
            static_cast<i64>(static_cast<i32>(insn.imm)));
        m.flags_.setCompare(m.regs_.read(insn.dst), b);
        m.regs_.write(insn.dst, m.regs_.read(insn.dst) - b);
        return ExecStatus::Next;
    }

    static ExecStatus
    xorReg(Machine& m, const Insn& insn, ExecCtx&)
    {
        m.regs_.write(insn.dst,
                      m.regs_.read(insn.dst) ^ m.regs_.read(insn.src));
        return ExecStatus::Next;
    }

    static ExecStatus
    andReg(Machine& m, const Insn& insn, ExecCtx&)
    {
        m.regs_.write(insn.dst,
                      m.regs_.read(insn.dst) & m.regs_.read(insn.src));
        return ExecStatus::Next;
    }

    static ExecStatus
    andImm(Machine& m, const Insn& insn, ExecCtx&)
    {
        m.regs_.write(insn.dst, m.regs_.read(insn.dst) & insn.imm);
        return ExecStatus::Next;
    }

    static ExecStatus
    shl(Machine& m, const Insn& insn, ExecCtx&)
    {
        m.regs_.write(insn.dst, m.regs_.read(insn.dst) << (insn.imm & 63));
        return ExecStatus::Next;
    }

    static ExecStatus
    shr(Machine& m, const Insn& insn, ExecCtx&)
    {
        m.regs_.write(insn.dst, m.regs_.read(insn.dst) >> (insn.imm & 63));
        return ExecStatus::Next;
    }

    static ExecStatus
    cmpImm(Machine& m, const Insn& insn, ExecCtx&)
    {
        m.flags_.setCompare(m.regs_.read(insn.dst),
                            static_cast<u64>(static_cast<i64>(
                                static_cast<i32>(insn.imm))));
        return ExecStatus::Next;
    }

    static ExecStatus
    cmpReg(Machine& m, const Insn& insn, ExecCtx&)
    {
        m.flags_.setCompare(m.regs_.read(insn.dst), m.regs_.read(insn.src));
        return ExecStatus::Next;
    }

    static ExecStatus
    jmpRel(Machine& m, const Insn& insn, ExecCtx& ctx)
    {
        VAddr target = insn.relTarget(ctx.pc);
        m.bpu_.trainBranch(ctx.pc, BranchType::DirectJump, target, true,
                           m.priv_, false, m.smtThread_);
        ctx.next = target;
        return ExecStatus::Next;
    }

    static ExecStatus
    jccRel(Machine& m, const Insn& insn, ExecCtx& ctx)
    {
        bool taken = m.flags_.test(insn.cond);
        VAddr target = insn.relTarget(ctx.pc);
        m.bpu_.trainBranch(ctx.pc, BranchType::CondJump, target, taken,
                           m.priv_, false, m.smtThread_);
        ctx.next = taken ? target : ctx.pc + insn.length;
        return ExecStatus::Next;
    }

    static ExecStatus
    jmpInd(Machine& m, const Insn& insn, ExecCtx& ctx)
    {
        VAddr target = m.regs_.read(insn.src);
        m.bpu_.trainBranch(ctx.pc, BranchType::IndirectJump, target, true,
                           m.priv_, false, m.smtThread_);
        ctx.next = target;
        return ExecStatus::Next;
    }

    static ExecStatus
    call(Machine& m, const Insn& insn, ExecCtx& ctx)
    {
        VAddr target = insn.kind == InsnKind::CallRel
                           ? insn.relTarget(ctx.pc)
                           : m.regs_.read(insn.src);
        VAddr ret_addr = ctx.pc + insn.length;
        m.regs_.write(isa::RSP, m.regs_.read(isa::RSP) - 8);
        if (!m.storeArch(m.regs_.read(isa::RSP), ret_addr, ctx.fault)) {
            ctx.fault.pc = ctx.pc;
            return ExecStatus::Fault;
        }
        m.bpu_.rsb().push(ret_addr);
        m.bpu_.trainBranch(ctx.pc,
                           insn.kind == InsnKind::CallRel
                               ? BranchType::DirectCall
                               : BranchType::IndirectCall,
                           target, true, m.priv_, false, m.smtThread_);
        ctx.next = target;
        return ExecStatus::Next;
    }

    static ExecStatus
    ret(Machine& m, const Insn&, ExecCtx& ctx)
    {
        bool ok = true;
        u64 ret_addr = m.loadArch(m.regs_.read(isa::RSP), ctx.fault, ok);
        if (!ok) {
            ctx.fault.pc = ctx.pc;
            return ExecStatus::Fault;
        }
        m.regs_.write(isa::RSP, m.regs_.read(isa::RSP) + 8);
        m.bpu_.trainBranch(ctx.pc, BranchType::Return, ret_addr, true,
                           m.priv_, ctx.rsbConsumed, m.smtThread_);
        ctx.next = ret_addr;
        return ExecStatus::Next;
    }

    static ExecStatus
    push(Machine& m, const Insn& insn, ExecCtx& ctx)
    {
        m.regs_.write(isa::RSP, m.regs_.read(isa::RSP) - 8);
        if (!m.storeArch(m.regs_.read(isa::RSP), m.regs_.read(insn.src),
                         ctx.fault)) {
            ctx.fault.pc = ctx.pc;
            return ExecStatus::Fault;
        }
        return ExecStatus::Next;
    }

    static ExecStatus
    pop(Machine& m, const Insn& insn, ExecCtx& ctx)
    {
        bool ok = true;
        u64 v = m.loadArch(m.regs_.read(isa::RSP), ctx.fault, ok);
        if (!ok) {
            ctx.fault.pc = ctx.pc;
            return ExecStatus::Fault;
        }
        m.regs_.write(isa::RSP, m.regs_.read(isa::RSP) + 8);
        m.regs_.write(insn.dst, v);
        return ExecStatus::Next;
    }

    static ExecStatus
    syscall(Machine& m, const Insn& insn, ExecCtx& ctx)
    {
        m.pmc_.bump(PmcEvent::Syscalls);
        m.savedUserPc_ = ctx.pc + insn.length;
        m.priv_ = Privilege::Kernel;
        ctx.next = m.syscallEntry_;
        m.charge(CycleClass::Syscall, 80);
        if (m.ibpbOnSyscall_) {
            m.bpu_.ibpb();
            m.charge(CycleClass::Ibpb, 1500);
        }
        return ExecStatus::Next;
    }

    static ExecStatus
    sysret(Machine& m, const Insn&, ExecCtx& ctx)
    {
        if (m.priv_ != Privilege::Kernel) {
            // Real hardware raises #GP on sysret outside CPL0.
            ctx.fault = FaultInfo{};
            ctx.fault.invalidOpcode = true;
            ctx.fault.pc = ctx.pc;
            ctx.fault.va = ctx.pc;
            return ExecStatus::Fault;
        }
        m.priv_ = Privilege::User;
        ctx.next = m.savedUserPc_;
        m.charge(CycleClass::Syscall, 80);
        return ExecStatus::Next;
    }

    static ExecStatus
    fence(Machine& m, const Insn&, ExecCtx&)
    {
        m.charge(CycleClass::Fence, 8);
        return ExecStatus::Next;
    }

    static ExecStatus
    clflush(Machine& m, const Insn& insn, ExecCtx&)
    {
        m.clflushVirt(m.regs_.read(insn.src));
        return ExecStatus::Next;
    }

    static ExecStatus
    rdtsc(Machine& m, const Insn&, ExecCtx&)
    {
        m.regs_.write(isa::RAX, m.cycles_);
        return ExecStatus::Next;
    }

    static ExecStatus
    rdpmc(Machine& m, const Insn&, ExecCtx&)
    {
        m.regs_.write(isa::RAX, m.pmc_.readRaw(m.regs_.read(isa::RCX)));
        return ExecStatus::Next;
    }

    static ExecStatus
    hlt(Machine&, const Insn&, ExecCtx&)
    {
        return ExecStatus::Halt;
    }

    static ExecStatus
    invalid(Machine&, const Insn&, ExecCtx& ctx)
    {
        // Reached only through direct dispatch (the step loop and the
        // block builder both screen Invalid/Ud2 out beforehand).
        ctx.fault = FaultInfo{};
        ctx.fault.invalidOpcode = true;
        ctx.fault.pc = ctx.pc;
        ctx.fault.va = ctx.pc;
        return ExecStatus::Fault;
    }
};

InsnHandler
handlerFor(InsnKind kind)
{
    switch (kind) {
      case InsnKind::Nop:
      case InsnKind::NopN:     return &InsnExec::nop;
      case InsnKind::MovImm:   return &InsnExec::movImm;
      case InsnKind::MovReg:   return &InsnExec::movReg;
      case InsnKind::Load:     return &InsnExec::load;
      case InsnKind::Store:    return &InsnExec::store;
      case InsnKind::Add:      return &InsnExec::add;
      case InsnKind::AddImm:   return &InsnExec::addImm;
      case InsnKind::Sub:      return &InsnExec::sub;
      case InsnKind::SubImm:   return &InsnExec::subImm;
      case InsnKind::Xor:      return &InsnExec::xorReg;
      case InsnKind::And:      return &InsnExec::andReg;
      case InsnKind::AndImm:   return &InsnExec::andImm;
      case InsnKind::Shl:      return &InsnExec::shl;
      case InsnKind::Shr:      return &InsnExec::shr;
      case InsnKind::CmpImm:   return &InsnExec::cmpImm;
      case InsnKind::CmpReg:   return &InsnExec::cmpReg;
      case InsnKind::JmpRel:   return &InsnExec::jmpRel;
      case InsnKind::JccRel:   return &InsnExec::jccRel;
      case InsnKind::JmpInd:   return &InsnExec::jmpInd;
      case InsnKind::CallRel:
      case InsnKind::CallInd:  return &InsnExec::call;
      case InsnKind::Ret:      return &InsnExec::ret;
      case InsnKind::Push:     return &InsnExec::push;
      case InsnKind::Pop:      return &InsnExec::pop;
      case InsnKind::Syscall:  return &InsnExec::syscall;
      case InsnKind::Sysret:   return &InsnExec::sysret;
      case InsnKind::Lfence:
      case InsnKind::Mfence:   return &InsnExec::fence;
      case InsnKind::Clflush:  return &InsnExec::clflush;
      case InsnKind::Rdtsc:    return &InsnExec::rdtsc;
      case InsnKind::Rdpmc:    return &InsnExec::rdpmc;
      case InsnKind::Hlt:      return &InsnExec::hlt;
      case InsnKind::Ud2:
      case InsnKind::Invalid:  return &InsnExec::invalid;
    }
    return &InsnExec::invalid;
}

} // namespace phantom::cpu
