#include "cpu/decode_cache.hpp"

#include <algorithm>
#include <cstdlib>

namespace phantom::cpu {

namespace {

thread_local DecodeCacheStats* t_activeStats = nullptr;

} // namespace

bool
decodeCacheEnabled()
{
    static const bool enabled = [] {
        const char* env = std::getenv("PHANTOM_DECODE_CACHE");
        return env == nullptr || !(env[0] == '0' && env[1] == '\0');
    }();
    return enabled;
}

bool
superblocksEnabled()
{
    static const bool enabled = [] {
        const char* env = std::getenv("PHANTOM_SUPERBLOCKS");
        return env == nullptr || !(env[0] == '0' && env[1] == '\0');
    }();
    return enabled;
}

DecodeCacheStats*
activeDecodeCacheStats()
{
    return t_activeStats;
}

void
setActiveDecodeCacheStats(DecodeCacheStats* stats)
{
    t_activeStats = stats;
}

DecodeCache::DecodeCache()
    : ambient_(activeDecodeCacheStats()),
      enabled_(decodeCacheEnabled()),
      superblocks_(superblocksEnabled())
{
}

DecodeCache::~DecodeCache()
{
    if (ambient_ != nullptr)
        ambient_->merge(stats_);
}

const isa::Insn*
DecodeCache::lookup(PAddr pa)
{
    if (!enabled_)
        return nullptr;
    auto it = lines_.find(pa / kCacheLineBytes);
    if (it != lines_.end()) {
        u8 offset = static_cast<u8>(pa % kCacheLineBytes);
        for (const Entry& entry : it->second) {
            if (entry.offset == offset) {
                ++stats_.hits;
                return &entry.insn;
            }
        }
    }
    ++stats_.misses;
    return nullptr;
}

void
DecodeCache::insert(PAddr pa, const isa::Insn& insn)
{
    if (!enabled_ || insn.kind == isa::InsnKind::Invalid)
        return;
    // Only instructions entirely within one 4 KiB page are a pure
    // function of physical bytes (see the file comment); anything
    // spanning a page boundary is re-decoded every time.
    if (pa % kPageBytes + insn.length > kPageBytes)
        return;
    lines_[pa / kCacheLineBytes].push_back(
        Entry{static_cast<u8>(pa % kCacheLineBytes), insn});
    ++entries_;
}

std::shared_ptr<const DecodeCache::Superblock>
DecodeCache::lookupBlock(PAddr pa)
{
    if (!blocksEnabled())
        return nullptr;
    auto it = blocks_.find(pa);
    if (it == blocks_.end())
        return nullptr;
    ++stats_.blockHits;
    return it->second;
}

std::shared_ptr<const DecodeCache::Superblock>
DecodeCache::insertBlock(std::shared_ptr<Superblock> block)
{
    if (!blocksEnabled() || block == nullptr || block->entries.empty())
        return nullptr;
    ++stats_.blockBuilds;
    PAddr pa = block->pa;
    auto& slot = blocks_[pa];
    if (slot == nullptr)  // rebuilt blocks are already unregistered
        blocksByPage_[pa / kPageBytes].push_back(pa);
    else
        slot->dead = true;
    slot = std::move(block);
    return slot;
}

void
DecodeCache::setSuperblocksEnabled(bool on)
{
    superblocks_ = on;
    if (!on)
        dropAllBlocks(/*count=*/false);
}

void
DecodeCache::invalidateBlocksInRange(PAddr pa, u64 len)
{
    if (blocks_.empty() || len == 0)
        return;
    PAddr last = pa + len - 1;
    // Blocks never cross a 4 KiB page, so only blocks registered under
    // the written pages can overlap the range.
    for (u64 page = pa / kPageBytes; page <= last / kPageBytes; ++page) {
        auto it = blocksByPage_.find(page);
        if (it == blocksByPage_.end())
            continue;
        auto& starts = it->second;
        for (std::size_t i = 0; i < starts.size();) {
            auto bit = blocks_.find(starts[i]);
            if (bit == blocks_.end()) {  // stale index entry
                starts[i] = starts.back();
                starts.pop_back();
                continue;
            }
            Superblock& block = *bit->second;
            if (block.pa <= last && block.pa + block.byteLen > pa) {
                block.dead = true;  // pinned executors bail out
                blocks_.erase(bit);
                ++stats_.blockInvalidates;
                starts[i] = starts.back();
                starts.pop_back();
            } else {
                ++i;
            }
        }
        if (starts.empty())
            blocksByPage_.erase(it);
    }
}

void
DecodeCache::dropAllBlocks(bool count)
{
    for (auto& [pa, block] : blocks_) {
        block->dead = true;
        if (count)
            ++stats_.blockInvalidates;
    }
    blocks_.clear();
    blocksByPage_.clear();
}

void
DecodeCache::invalidateRange(PAddr pa, u64 len)
{
    invalidateBlocksInRange(pa, len);
    if (lines_.empty() || len == 0)
        return;
    // An entry starting up to kMaxInsnBytes-1 before the written range
    // can still overlap it, so sweep from that line forward.
    PAddr first =
        pa >= isa::kMaxInsnBytes - 1 ? pa - (isa::kMaxInsnBytes - 1) : 0;
    PAddr last = pa + len - 1;
    for (u64 line = first / kCacheLineBytes; line <= last / kCacheLineBytes;
         ++line) {
        auto it = lines_.find(line);
        if (it == lines_.end())
            continue;
        auto& entries = it->second;
        auto dead = std::remove_if(
            entries.begin(), entries.end(), [&](const Entry& entry) {
                PAddr start = line * kCacheLineBytes + entry.offset;
                return start <= last && start + entry.insn.length > pa;
            });
        std::size_t removed =
            static_cast<std::size_t>(entries.end() - dead);
        if (removed == 0)
            continue;
        entries.erase(dead, entries.end());
        entries_ -= removed;
        stats_.invalidates += removed;
        if (entries.empty())
            lines_.erase(it);
    }
}

void
DecodeCache::flushAll()
{
    dropAllBlocks(/*count=*/true);
    stats_.invalidates += entries_;
    entries_ = 0;
    lines_.clear();
}

void
DecodeCache::setEnabled(bool on)
{
    enabled_ = on;
    if (!on) {
        // A disabled cache must behave exactly like a cold one: drop
        // entries without counting them as model invalidations.
        lines_.clear();
        entries_ = 0;
        dropAllBlocks(/*count=*/false);
    }
}

} // namespace phantom::cpu
