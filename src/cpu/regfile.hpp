/**
 * @file
 * Architectural register file and flags.
 */

#ifndef PHANTOM_CPU_REGFILE_HPP
#define PHANTOM_CPU_REGFILE_HPP

#include "isa/insn.hpp"

#include <array>

namespace phantom::cpu {

/** The 16 general-purpose registers. */
class RegFile
{
  public:
    u64 read(u8 reg) const { return regs_[reg & 0x0f]; }
    void write(u8 reg, u64 value) { regs_[reg & 0x0f] = value; }

    void
    reset()
    {
        regs_.fill(0);
    }

  private:
    std::array<u64, isa::kNumRegs> regs_{};
};

/** Condition flags produced by cmp/sub. */
struct Flags
{
    bool zf = false;
    bool cf = false;

    /** Evaluate a condition code. */
    bool
    test(isa::Cond cond) const
    {
        switch (cond) {
          case isa::Cond::Eq: return zf;
          case isa::Cond::Ne: return !zf;
          case isa::Cond::Lt: return cf;
          case isa::Cond::Ge: return !cf;
        }
        return false;
    }

    /** Set from the comparison a - b (unsigned). */
    void
    setCompare(u64 a, u64 b)
    {
        zf = (a == b);
        cf = (a < b);
    }
};

} // namespace phantom::cpu

#endif // PHANTOM_CPU_REGFILE_HPP
