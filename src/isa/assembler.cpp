#include "isa/assembler.hpp"

#include <cassert>
#include <stdexcept>

namespace phantom::isa {

Label
Assembler::newLabel()
{
    labels_.push_back(-1);
    return Label{labels_.size() - 1};
}

void
Assembler::bind(Label label)
{
    assert(label.valid() && label.id < labels_.size());
    assert(labels_[label.id] == -1 && "label bound twice");
    labels_[label.id] = static_cast<i64>(bytes_.size());
}

VAddr
Assembler::labelAddress(Label label) const
{
    assert(label.valid() && label.id < labels_.size());
    assert(labels_[label.id] >= 0 && "label not bound");
    return base_ + static_cast<u64>(labels_[label.id]);
}

void
Assembler::emit(const Insn& insn)
{
    encode(insn, bytes_);
}

void
Assembler::emitBytes(const std::vector<u8>& raw)
{
    bytes_.insert(bytes_.end(), raw.begin(), raw.end());
}

void
Assembler::alignTo(u64 alignment)
{
    while (here() % alignment != 0)
        nop();
}

void
Assembler::padTo(VAddr va)
{
    assert(va >= here());
    bytes_.resize(bytes_.size() + (va - here()), 0x90);    // 1-byte nops
}

void
Assembler::emitRel(InsnKind kind, Cond cond, VAddr target)
{
    // Encode with a placeholder displacement first, then patch using the
    // now-known instruction length.
    std::size_t start = bytes_.size();
    Insn insn;
    insn.kind = kind;
    insn.cond = cond;
    insn.disp = 0;
    insn.length = (kind == InsnKind::JccRel) ? 6 : 5;
    encode(insn, bytes_);
    std::size_t end = bytes_.size();
    i64 rel = static_cast<i64>(target) - static_cast<i64>(base_ + end);
    assert(rel >= INT32_MIN && rel <= INT32_MAX);
    u32 v = static_cast<u32>(static_cast<i32>(rel));
    std::size_t field = end - 4;
    bytes_[field + 0] = static_cast<u8>(v);
    bytes_[field + 1] = static_cast<u8>(v >> 8);
    bytes_[field + 2] = static_cast<u8>(v >> 16);
    bytes_[field + 3] = static_cast<u8>(v >> 24);
    (void)start;
}

void
Assembler::emitRelLabel(InsnKind kind, Cond cond, Label label)
{
    assert(label.valid() && label.id < labels_.size());
    Insn insn;
    insn.kind = kind;
    insn.cond = cond;
    insn.disp = 0;
    insn.length = (kind == InsnKind::JccRel) ? 6 : 5;
    encode(insn, bytes_);
    std::size_t end = bytes_.size();
    fixups_.push_back(Fixup{end - 4, end, label.id});
}

void Assembler::jmp(VAddr target) { emitRel(InsnKind::JmpRel, Cond::Eq, target); }
void Assembler::jmp(Label label) { emitRelLabel(InsnKind::JmpRel, Cond::Eq, label); }
void Assembler::jcc(Cond cond, VAddr target) { emitRel(InsnKind::JccRel, cond, target); }
void Assembler::jcc(Cond cond, Label label) { emitRelLabel(InsnKind::JccRel, cond, label); }
void Assembler::call(VAddr target) { emitRel(InsnKind::CallRel, Cond::Eq, target); }
void Assembler::call(Label label) { emitRelLabel(InsnKind::CallRel, Cond::Eq, label); }

std::vector<u8>
Assembler::finish()
{
    for (const Fixup& fixup : fixups_) {
        i64 bound = labels_[fixup.label];
        if (bound < 0)
            throw std::logic_error("Assembler::finish: unbound label");
        i64 rel = bound - static_cast<i64>(fixup.insn_end);
        assert(rel >= INT32_MIN && rel <= INT32_MAX);
        u32 v = static_cast<u32>(static_cast<i32>(rel));
        bytes_[fixup.offset + 0] = static_cast<u8>(v);
        bytes_[fixup.offset + 1] = static_cast<u8>(v >> 8);
        bytes_[fixup.offset + 2] = static_cast<u8>(v >> 16);
        bytes_[fixup.offset + 3] = static_cast<u8>(v >> 24);
    }
    fixups_.clear();
    return bytes_;
}

} // namespace phantom::isa
