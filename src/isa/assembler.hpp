/**
 * @file
 * A small two-pass assembler for building code blobs at fixed virtual
 * addresses, with forward-reference labels for PC-relative branches.
 */

#ifndef PHANTOM_ISA_ASSEMBLER_HPP
#define PHANTOM_ISA_ASSEMBLER_HPP

#include "isa/encoder.hpp"

#include <cstddef>
#include <vector>

namespace phantom::isa {

/** Opaque label handle produced by Assembler::newLabel(). */
struct Label
{
    std::size_t id = static_cast<std::size_t>(-1);
    bool valid() const { return id != static_cast<std::size_t>(-1); }
};

/**
 * Emits instruction encodings into a byte buffer anchored at a base
 * virtual address. Branch targets may be given either as absolute virtual
 * addresses or as labels bound later; label fixups are patched in
 * finish().
 */
class Assembler
{
  public:
    explicit Assembler(VAddr base) : base_(base) {}

    /** Base virtual address of the blob. */
    VAddr base() const { return base_; }

    /** Virtual address of the next emitted byte. */
    VAddr here() const { return base_ + bytes_.size(); }

    /** Number of bytes emitted so far. */
    std::size_t size() const { return bytes_.size(); }

    // -- Labels --------------------------------------------------------

    /** Create an unbound label. */
    Label newLabel();

    /** Bind @p label to the current position. */
    void bind(Label label);

    /** Address a bound label resolves to. Only valid after bind(). */
    VAddr labelAddress(Label label) const;

    // -- Generic emission ----------------------------------------------

    /** Emit an already-built non-branch instruction. */
    void emit(const Insn& insn);

    /** Emit raw bytes verbatim. */
    void emitBytes(const std::vector<u8>& raw);

    /** Pad with 1-byte nops until here() is aligned to @p alignment. */
    void alignTo(u64 alignment);

    /** Pad with 1-byte nops until here() == @p va (must be >= here()). */
    void padTo(VAddr va);

    // -- Instruction helpers (thin wrappers over the builders) ----------

    void nop() { emit(makeNop()); }
    void nopN(u8 total_length) { emit(makeNopN(total_length)); }
    void movImm(u8 dst, u64 imm) { emit(makeMovImm(dst, imm)); }
    void movReg(u8 dst, u8 src) { emit(makeMovReg(dst, src)); }
    void load(u8 dst, u8 base, i32 disp) { emit(makeLoad(dst, base, disp)); }
    void store(u8 base, i32 disp, u8 src) { emit(makeStore(base, disp, src)); }
    void add(u8 dst, u8 src) { emit(makeAdd(dst, src)); }
    void addImm(u8 dst, i32 imm) { emit(makeAddImm(dst, imm)); }
    void sub(u8 dst, u8 src) { emit(makeSub(dst, src)); }
    void subImm(u8 dst, i32 imm) { emit(makeSubImm(dst, imm)); }
    void xorReg(u8 dst, u8 src) { emit(makeXor(dst, src)); }
    void andReg(u8 dst, u8 src) { emit(makeAnd(dst, src)); }
    void andImm(u8 dst, u32 imm) { emit(makeAndImm(dst, imm)); }
    void shl(u8 dst, u8 amount) { emit(makeShl(dst, amount)); }
    void shr(u8 dst, u8 amount) { emit(makeShr(dst, amount)); }
    void cmpImm(u8 dst, i32 imm) { emit(makeCmpImm(dst, imm)); }
    void cmpReg(u8 dst, u8 src) { emit(makeCmpReg(dst, src)); }
    void jmpInd(u8 src) { emit(makeJmpInd(src)); }
    void callInd(u8 src) { emit(makeCallInd(src)); }
    void ret() { emit(makeRet()); }
    void push(u8 src) { emit(makePush(src)); }
    void pop(u8 dst) { emit(makePop(dst)); }
    void syscall() { emit(makeSyscall()); }
    void sysret() { emit(makeSysret()); }
    void lfence() { emit(makeLfence()); }
    void mfence() { emit(makeMfence()); }
    void clflush(u8 base) { emit(makeClflush(base)); }
    void rdtsc() { emit(makeRdtsc()); }
    void rdpmc() { emit(makeRdpmc()); }
    void hlt() { emit(makeHlt()); }
    void ud2() { emit(makeUd2()); }

    // -- PC-relative branches -------------------------------------------

    void jmp(VAddr target);
    void jmp(Label label);
    void jcc(Cond cond, VAddr target);
    void jcc(Cond cond, Label label);
    void call(VAddr target);
    void call(Label label);

    /**
     * Finalize: patch all label fixups and return the byte image.
     * All referenced labels must be bound.
     */
    std::vector<u8> finish();

  private:
    struct Fixup
    {
        std::size_t offset;     ///< position of the rel32 field
        std::size_t insn_end;   ///< offset just past the instruction
        std::size_t label;
    };

    void emitRel(InsnKind kind, Cond cond, VAddr target);
    void emitRelLabel(InsnKind kind, Cond cond, Label label);

    VAddr base_;
    std::vector<u8> bytes_;
    std::vector<i64> labels_;       ///< bound offset or -1
    std::vector<Fixup> fixups_;
};

} // namespace phantom::isa

#endif // PHANTOM_ISA_ASSEMBLER_HPP
