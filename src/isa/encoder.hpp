/**
 * @file
 * Byte-level encoder and decoder for the simulated ISA.
 *
 * Encodings are variable length (1..15 bytes). The decoder is the single
 * source of truth for what instruction lives at an address — the BPU never
 * sees instruction bytes, which is what makes PHANTOM speculation possible.
 */

#ifndef PHANTOM_ISA_ENCODER_HPP
#define PHANTOM_ISA_ENCODER_HPP

#include "isa/insn.hpp"

#include <cstddef>
#include <vector>

namespace phantom::isa {

/** Append the encoding of @p insn to @p out. Returns encoded length. */
std::size_t encode(const Insn& insn, std::vector<u8>& out);

/**
 * Decode one instruction from @p bytes (at most @p avail valid bytes).
 *
 * On failure (unknown opcode, truncated encoding) the result has
 * kind == InsnKind::Invalid and length 1 so a byte-wise scan can proceed.
 *
 * Prefix closure: a successful decode of length L reads only
 * bytes[0..L-1] and returns the identical Insn for every avail >= L —
 * trailing bytes never change the result. Invalid results carry no such
 * guarantee (a truncated encoding may become valid once more bytes are
 * available), which is why cpu::DecodeCache memoizes valid decodes only.
 */
Insn decode(const u8* bytes, std::size_t avail);

/** Maximum encoded instruction length in bytes. */
inline constexpr std::size_t kMaxInsnBytes = 15;

// ---- Instruction builders -------------------------------------------------

Insn makeNop();
Insn makeNopN(u8 total_length);     ///< 3..15 bytes
Insn makeMovImm(u8 dst, u64 imm);
Insn makeMovReg(u8 dst, u8 src);
Insn makeLoad(u8 dst, u8 base, i32 disp);
Insn makeStore(u8 base, i32 disp, u8 src);
Insn makeAdd(u8 dst, u8 src);
Insn makeAddImm(u8 dst, i32 imm);
Insn makeSub(u8 dst, u8 src);
Insn makeSubImm(u8 dst, i32 imm);
Insn makeXor(u8 dst, u8 src);
Insn makeAnd(u8 dst, u8 src);
Insn makeAndImm(u8 dst, u32 imm);
Insn makeShl(u8 dst, u8 amount);
Insn makeShr(u8 dst, u8 amount);
Insn makeCmpImm(u8 dst, i32 imm);
Insn makeCmpReg(u8 dst, u8 src);
Insn makeJmpRel(i32 disp);
Insn makeJccRel(Cond cond, i32 disp);
Insn makeJmpInd(u8 src);
Insn makeCallRel(i32 disp);
Insn makeCallInd(u8 src);
Insn makeRet();
Insn makePush(u8 src);
Insn makePop(u8 dst);
Insn makeSyscall();
Insn makeSysret();
Insn makeLfence();
Insn makeMfence();
Insn makeClflush(u8 base);
Insn makeRdtsc();
Insn makeRdpmc();
Insn makeHlt();
Insn makeUd2();

} // namespace phantom::isa

#endif // PHANTOM_ISA_ENCODER_HPP
