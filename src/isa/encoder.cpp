#include "isa/encoder.hpp"

#include <cassert>

namespace phantom::isa {

namespace {

// Primary opcode bytes. 0x0F escapes to a second table.
enum : u8 {
    kOpNop = 0x90,
    kOpEscape = 0x0f,
    kOpMovImm = 0x48,
    kOpMovReg = 0x89,
    kOpLoad = 0x8b,
    kOpStore = 0x8a,
    kOpAdd = 0x01,
    kOpAddImm = 0x05,
    kOpSub = 0x29,
    kOpSubImm = 0x2d,
    kOpXor = 0x31,
    kOpAnd = 0x21,
    kOpAndImm = 0x25,
    kOpShl = 0xc1,
    kOpShr = 0xc2,
    kOpCmpImm = 0x3d,
    kOpCmpReg = 0x39,
    kOpJmpRel = 0xe9,
    kOpCallRel = 0xe8,
    kOpJmpInd = 0xff,
    kOpCallInd = 0xfe,
    kOpRet = 0xc3,
    kOpPush = 0x54,
    kOpPop = 0x5c,
    kOpHlt = 0xf4,
};

// Second byte after the 0x0F escape.
enum : u8 {
    kOp2Syscall = 0x05,
    kOp2Sysret = 0x07,
    kOp2Ud2 = 0x0b,
    kOp2NopN = 0x1f,
    kOp2Rdtsc = 0x31,
    kOp2Rdpmc = 0x33,
    kOp2Fence = 0xae,
    kOp2JccBase = 0x80,
};

enum : u8 {
    kFenceL = 0xe8,
    kFenceM = 0xf0,
};

u8
modrm(u8 dst, u8 src)
{
    return static_cast<u8>((dst << 4) | (src & 0x0f));
}

void
put32(std::vector<u8>& out, u32 v)
{
    out.push_back(static_cast<u8>(v));
    out.push_back(static_cast<u8>(v >> 8));
    out.push_back(static_cast<u8>(v >> 16));
    out.push_back(static_cast<u8>(v >> 24));
}

void
put64(std::vector<u8>& out, u64 v)
{
    put32(out, static_cast<u32>(v));
    put32(out, static_cast<u32>(v >> 32));
}

u32
get32(const u8* p)
{
    return static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
           (static_cast<u32>(p[2]) << 16) | (static_cast<u32>(p[3]) << 24);
}

u64
get64(const u8* p)
{
    return static_cast<u64>(get32(p)) | (static_cast<u64>(get32(p + 4)) << 32);
}

Insn
invalid()
{
    Insn insn;
    insn.kind = InsnKind::Invalid;
    insn.length = 1;
    return insn;
}

} // namespace

std::size_t
encode(const Insn& insn, std::vector<u8>& out)
{
    std::size_t start = out.size();
    switch (insn.kind) {
      case InsnKind::Nop:
        out.push_back(kOpNop);
        break;
      case InsnKind::NopN:
        assert(insn.length >= 3 && insn.length <= kMaxInsnBytes);
        out.push_back(kOpEscape);
        out.push_back(kOp2NopN);
        out.push_back(insn.length);
        for (int i = 3; i < insn.length; ++i)
            out.push_back(0x00);
        break;
      case InsnKind::MovImm:
        out.push_back(kOpMovImm);
        out.push_back(insn.dst);
        put64(out, insn.imm);
        break;
      case InsnKind::MovReg:
        out.push_back(kOpMovReg);
        out.push_back(modrm(insn.dst, insn.src));
        break;
      case InsnKind::Load:
        out.push_back(kOpLoad);
        out.push_back(modrm(insn.dst, insn.src));
        put32(out, static_cast<u32>(insn.disp));
        break;
      case InsnKind::Store:
        out.push_back(kOpStore);
        out.push_back(modrm(insn.dst, insn.src));
        put32(out, static_cast<u32>(insn.disp));
        break;
      case InsnKind::Add:
        out.push_back(kOpAdd);
        out.push_back(modrm(insn.dst, insn.src));
        break;
      case InsnKind::AddImm:
        out.push_back(kOpAddImm);
        out.push_back(insn.dst);
        put32(out, static_cast<u32>(insn.imm));
        break;
      case InsnKind::Sub:
        out.push_back(kOpSub);
        out.push_back(modrm(insn.dst, insn.src));
        break;
      case InsnKind::SubImm:
        out.push_back(kOpSubImm);
        out.push_back(insn.dst);
        put32(out, static_cast<u32>(insn.imm));
        break;
      case InsnKind::Xor:
        out.push_back(kOpXor);
        out.push_back(modrm(insn.dst, insn.src));
        break;
      case InsnKind::And:
        out.push_back(kOpAnd);
        out.push_back(modrm(insn.dst, insn.src));
        break;
      case InsnKind::AndImm:
        out.push_back(kOpAndImm);
        out.push_back(insn.dst);
        put32(out, static_cast<u32>(insn.imm));
        break;
      case InsnKind::Shl:
        out.push_back(kOpShl);
        out.push_back(insn.dst);
        out.push_back(static_cast<u8>(insn.imm));
        break;
      case InsnKind::Shr:
        out.push_back(kOpShr);
        out.push_back(insn.dst);
        out.push_back(static_cast<u8>(insn.imm));
        break;
      case InsnKind::CmpImm:
        out.push_back(kOpCmpImm);
        out.push_back(insn.dst);
        put32(out, static_cast<u32>(insn.imm));
        break;
      case InsnKind::CmpReg:
        out.push_back(kOpCmpReg);
        out.push_back(modrm(insn.dst, insn.src));
        break;
      case InsnKind::JmpRel:
        out.push_back(kOpJmpRel);
        put32(out, static_cast<u32>(insn.disp));
        break;
      case InsnKind::JccRel:
        out.push_back(kOpEscape);
        out.push_back(static_cast<u8>(kOp2JccBase + static_cast<u8>(insn.cond)));
        put32(out, static_cast<u32>(insn.disp));
        break;
      case InsnKind::JmpInd:
        out.push_back(kOpJmpInd);
        out.push_back(modrm(0, insn.src));
        break;
      case InsnKind::CallRel:
        out.push_back(kOpCallRel);
        put32(out, static_cast<u32>(insn.disp));
        break;
      case InsnKind::CallInd:
        out.push_back(kOpCallInd);
        out.push_back(modrm(0, insn.src));
        break;
      case InsnKind::Ret:
        out.push_back(kOpRet);
        break;
      case InsnKind::Push:
        out.push_back(kOpPush);
        out.push_back(insn.src);
        break;
      case InsnKind::Pop:
        out.push_back(kOpPop);
        out.push_back(insn.dst);
        break;
      case InsnKind::Syscall:
        out.push_back(kOpEscape);
        out.push_back(kOp2Syscall);
        break;
      case InsnKind::Sysret:
        out.push_back(kOpEscape);
        out.push_back(kOp2Sysret);
        break;
      case InsnKind::Lfence:
        out.push_back(kOpEscape);
        out.push_back(kOp2Fence);
        out.push_back(kFenceL);
        break;
      case InsnKind::Mfence:
        out.push_back(kOpEscape);
        out.push_back(kOp2Fence);
        out.push_back(kFenceM);
        break;
      case InsnKind::Clflush:
        out.push_back(kOpEscape);
        out.push_back(kOp2Fence);
        out.push_back(insn.src);        // 0x00..0x0f selects the base reg
        break;
      case InsnKind::Rdtsc:
        out.push_back(kOpEscape);
        out.push_back(kOp2Rdtsc);
        break;
      case InsnKind::Rdpmc:
        out.push_back(kOpEscape);
        out.push_back(kOp2Rdpmc);
        break;
      case InsnKind::Hlt:
        out.push_back(kOpHlt);
        break;
      case InsnKind::Ud2:
        out.push_back(kOpEscape);
        out.push_back(kOp2Ud2);
        break;
      case InsnKind::Invalid:
        assert(false && "cannot encode Invalid");
        out.push_back(0x06);            // deliberately undefined opcode
        break;
    }
    return out.size() - start;
}

Insn
decode(const u8* bytes, std::size_t avail)
{
    if (avail == 0)
        return invalid();

    Insn insn;
    const u8 op = bytes[0];

    auto need = [&](std::size_t n) { return avail >= n; };

    switch (op) {
      case kOpNop:
        insn.kind = InsnKind::Nop;
        insn.length = 1;
        return insn;
      case kOpRet:
        insn.kind = InsnKind::Ret;
        insn.length = 1;
        return insn;
      case kOpHlt:
        insn.kind = InsnKind::Hlt;
        insn.length = 1;
        return insn;
      case kOpMovImm:
        if (!need(10))
            return invalid();
        insn.kind = InsnKind::MovImm;
        insn.length = 10;
        insn.dst = bytes[1] & 0x0f;
        insn.imm = get64(bytes + 2);
        return insn;
      case kOpMovReg:
      case kOpAdd:
      case kOpSub:
      case kOpXor:
      case kOpAnd:
      case kOpCmpReg: {
        if (!need(2))
            return invalid();
        insn.length = 2;
        insn.dst = (bytes[1] >> 4) & 0x0f;
        insn.src = bytes[1] & 0x0f;
        switch (op) {
          case kOpMovReg: insn.kind = InsnKind::MovReg; break;
          case kOpAdd:    insn.kind = InsnKind::Add; break;
          case kOpSub:    insn.kind = InsnKind::Sub; break;
          case kOpXor:    insn.kind = InsnKind::Xor; break;
          case kOpAnd:    insn.kind = InsnKind::And; break;
          default:        insn.kind = InsnKind::CmpReg; break;
        }
        return insn;
      }
      case kOpLoad:
      case kOpStore:
        if (!need(6))
            return invalid();
        insn.kind = (op == kOpLoad) ? InsnKind::Load : InsnKind::Store;
        insn.length = 6;
        insn.dst = (bytes[1] >> 4) & 0x0f;
        insn.src = bytes[1] & 0x0f;
        insn.disp = static_cast<i32>(get32(bytes + 2));
        if (op == kOpStore) {
            // Store encodes base in dst, value in src (same as builder).
        }
        return insn;
      case kOpAddImm:
      case kOpSubImm:
      case kOpAndImm:
      case kOpCmpImm:
        if (!need(6))
            return invalid();
        insn.length = 6;
        insn.dst = bytes[1] & 0x0f;
        insn.imm = get32(bytes + 2);
        switch (op) {
          case kOpAddImm: insn.kind = InsnKind::AddImm; break;
          case kOpSubImm: insn.kind = InsnKind::SubImm; break;
          case kOpAndImm: insn.kind = InsnKind::AndImm; break;
          default:        insn.kind = InsnKind::CmpImm; break;
        }
        return insn;
      case kOpShl:
      case kOpShr:
        if (!need(3))
            return invalid();
        insn.kind = (op == kOpShl) ? InsnKind::Shl : InsnKind::Shr;
        insn.length = 3;
        insn.dst = bytes[1] & 0x0f;
        insn.imm = bytes[2];
        return insn;
      case kOpJmpRel:
      case kOpCallRel:
        if (!need(5))
            return invalid();
        insn.kind = (op == kOpJmpRel) ? InsnKind::JmpRel : InsnKind::CallRel;
        insn.length = 5;
        insn.disp = static_cast<i32>(get32(bytes + 1));
        return insn;
      case kOpJmpInd:
      case kOpCallInd:
        if (!need(2))
            return invalid();
        insn.kind = (op == kOpJmpInd) ? InsnKind::JmpInd : InsnKind::CallInd;
        insn.length = 2;
        insn.src = bytes[1] & 0x0f;
        return insn;
      case kOpPush:
        if (!need(2))
            return invalid();
        insn.kind = InsnKind::Push;
        insn.length = 2;
        insn.src = bytes[1] & 0x0f;
        return insn;
      case kOpPop:
        if (!need(2))
            return invalid();
        insn.kind = InsnKind::Pop;
        insn.length = 2;
        insn.dst = bytes[1] & 0x0f;
        return insn;
      case kOpEscape:
        break;                          // handled below
      default:
        return invalid();
    }

    // 0x0F-escaped opcodes.
    if (!need(2))
        return invalid();
    const u8 op2 = bytes[1];

    if (op2 >= kOp2JccBase && op2 < kOp2JccBase + 4) {
        if (!need(6))
            return invalid();
        insn.kind = InsnKind::JccRel;
        insn.length = 6;
        insn.cond = static_cast<Cond>(op2 - kOp2JccBase);
        insn.disp = static_cast<i32>(get32(bytes + 2));
        return insn;
    }

    switch (op2) {
      case kOp2Syscall:
        insn.kind = InsnKind::Syscall;
        insn.length = 2;
        return insn;
      case kOp2Sysret:
        insn.kind = InsnKind::Sysret;
        insn.length = 2;
        return insn;
      case kOp2Ud2:
        insn.kind = InsnKind::Ud2;
        insn.length = 2;
        return insn;
      case kOp2Rdtsc:
        insn.kind = InsnKind::Rdtsc;
        insn.length = 2;
        return insn;
      case kOp2Rdpmc:
        insn.kind = InsnKind::Rdpmc;
        insn.length = 2;
        return insn;
      case kOp2NopN: {
        if (!need(3))
            return invalid();
        u8 total = bytes[2];
        if (total < 3 || total > kMaxInsnBytes || !need(total))
            return invalid();
        insn.kind = InsnKind::NopN;
        insn.length = total;
        return insn;
      }
      case kOp2Fence: {
        if (!need(3))
            return invalid();
        u8 sub = bytes[2];
        insn.length = 3;
        if (sub == kFenceL) {
            insn.kind = InsnKind::Lfence;
        } else if (sub == kFenceM) {
            insn.kind = InsnKind::Mfence;
        } else if (sub < 0x10) {
            insn.kind = InsnKind::Clflush;
            insn.src = sub;
        } else {
            return invalid();
        }
        return insn;
      }
      default:
        return invalid();
    }
}

// ---- Builders -------------------------------------------------------------

namespace {

Insn
basic(InsnKind kind, u8 length)
{
    Insn insn;
    insn.kind = kind;
    insn.length = length;
    return insn;
}

} // namespace

Insn makeNop() { return basic(InsnKind::Nop, 1); }

Insn
makeNopN(u8 total_length)
{
    assert(total_length >= 3 && total_length <= kMaxInsnBytes);
    return basic(InsnKind::NopN, total_length);
}

Insn
makeMovImm(u8 dst, u64 imm)
{
    Insn insn = basic(InsnKind::MovImm, 10);
    insn.dst = dst;
    insn.imm = imm;
    return insn;
}

Insn
makeMovReg(u8 dst, u8 src)
{
    Insn insn = basic(InsnKind::MovReg, 2);
    insn.dst = dst;
    insn.src = src;
    return insn;
}

Insn
makeLoad(u8 dst, u8 base, i32 disp)
{
    Insn insn = basic(InsnKind::Load, 6);
    insn.dst = dst;
    insn.src = base;
    insn.disp = disp;
    return insn;
}

Insn
makeStore(u8 base, i32 disp, u8 src)
{
    Insn insn = basic(InsnKind::Store, 6);
    insn.dst = base;
    insn.src = src;
    insn.disp = disp;
    return insn;
}

Insn
makeAdd(u8 dst, u8 src)
{
    Insn insn = basic(InsnKind::Add, 2);
    insn.dst = dst;
    insn.src = src;
    return insn;
}

Insn
makeAddImm(u8 dst, i32 imm)
{
    Insn insn = basic(InsnKind::AddImm, 6);
    insn.dst = dst;
    insn.imm = static_cast<u32>(imm);
    return insn;
}

Insn
makeSub(u8 dst, u8 src)
{
    Insn insn = basic(InsnKind::Sub, 2);
    insn.dst = dst;
    insn.src = src;
    return insn;
}

Insn
makeSubImm(u8 dst, i32 imm)
{
    Insn insn = basic(InsnKind::SubImm, 6);
    insn.dst = dst;
    insn.imm = static_cast<u32>(imm);
    return insn;
}

Insn
makeXor(u8 dst, u8 src)
{
    Insn insn = basic(InsnKind::Xor, 2);
    insn.dst = dst;
    insn.src = src;
    return insn;
}

Insn
makeAnd(u8 dst, u8 src)
{
    Insn insn = basic(InsnKind::And, 2);
    insn.dst = dst;
    insn.src = src;
    return insn;
}

Insn
makeAndImm(u8 dst, u32 imm)
{
    Insn insn = basic(InsnKind::AndImm, 6);
    insn.dst = dst;
    insn.imm = imm;
    return insn;
}

Insn
makeShl(u8 dst, u8 amount)
{
    Insn insn = basic(InsnKind::Shl, 3);
    insn.dst = dst;
    insn.imm = amount;
    return insn;
}

Insn
makeShr(u8 dst, u8 amount)
{
    Insn insn = basic(InsnKind::Shr, 3);
    insn.dst = dst;
    insn.imm = amount;
    return insn;
}

Insn
makeCmpImm(u8 dst, i32 imm)
{
    Insn insn = basic(InsnKind::CmpImm, 6);
    insn.dst = dst;
    insn.imm = static_cast<u32>(imm);
    return insn;
}

Insn
makeCmpReg(u8 dst, u8 src)
{
    Insn insn = basic(InsnKind::CmpReg, 2);
    insn.dst = dst;
    insn.src = src;
    return insn;
}

Insn
makeJmpRel(i32 disp)
{
    Insn insn = basic(InsnKind::JmpRel, 5);
    insn.disp = disp;
    return insn;
}

Insn
makeJccRel(Cond cond, i32 disp)
{
    Insn insn = basic(InsnKind::JccRel, 6);
    insn.cond = cond;
    insn.disp = disp;
    return insn;
}

Insn
makeJmpInd(u8 src)
{
    Insn insn = basic(InsnKind::JmpInd, 2);
    insn.src = src;
    return insn;
}

Insn
makeCallRel(i32 disp)
{
    Insn insn = basic(InsnKind::CallRel, 5);
    insn.disp = disp;
    return insn;
}

Insn
makeCallInd(u8 src)
{
    Insn insn = basic(InsnKind::CallInd, 2);
    insn.src = src;
    return insn;
}

Insn makeRet() { return basic(InsnKind::Ret, 1); }

Insn
makePush(u8 src)
{
    Insn insn = basic(InsnKind::Push, 2);
    insn.src = src;
    return insn;
}

Insn
makePop(u8 dst)
{
    Insn insn = basic(InsnKind::Pop, 2);
    insn.dst = dst;
    return insn;
}

Insn makeSyscall() { return basic(InsnKind::Syscall, 2); }
Insn makeSysret() { return basic(InsnKind::Sysret, 2); }
Insn makeLfence() { return basic(InsnKind::Lfence, 3); }
Insn makeMfence() { return basic(InsnKind::Mfence, 3); }

Insn
makeClflush(u8 base)
{
    Insn insn = basic(InsnKind::Clflush, 3);
    insn.src = base;
    return insn;
}

Insn makeRdtsc() { return basic(InsnKind::Rdtsc, 2); }
Insn makeRdpmc() { return basic(InsnKind::Rdpmc, 2); }
Insn makeHlt() { return basic(InsnKind::Hlt, 1); }
Insn makeUd2() { return basic(InsnKind::Ud2, 2); }

} // namespace phantom::isa
