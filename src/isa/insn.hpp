/**
 * @file
 * Instruction definitions for the simulated ISA.
 *
 * The ISA is x86-64-flavored but not binary compatible: it keeps the
 * properties PHANTOM depends on (variable-length encoding, branch type
 * only known after decode, explicit fence/flush/timer instructions) while
 * staying small enough to decode in one table lookup.
 */

#ifndef PHANTOM_ISA_INSN_HPP
#define PHANTOM_ISA_INSN_HPP

#include "sim/types.hpp"

#include <string>

namespace phantom::isa {

/** General-purpose register names (16 GPRs, x86-64 numbering). */
enum Reg : u8 {
    RAX = 0, RCX, RDX, RBX, RSP, RBP, RSI, RDI,
    R8, R9, R10, R11, R12, R13, R14, R15,
    kNumRegs,
};

/** Condition codes for conditional branches (unsigned comparisons). */
enum class Cond : u8 {
    Eq = 0,   ///< ZF set
    Ne = 1,   ///< ZF clear
    Lt = 2,   ///< CF set (below)
    Ge = 3,   ///< CF clear (above or equal)
};

/** Operation kinds. */
enum class InsnKind : u8 {
    Nop,        ///< 1-byte no-op
    NopN,       ///< multi-byte no-op (3..15 bytes)
    MovImm,     ///< dst <- imm64
    MovReg,     ///< dst <- src
    Load,       ///< dst <- mem64[src + disp]
    Store,      ///< mem64[dst + disp] <- src
    Add,        ///< dst += src
    AddImm,     ///< dst += imm32 (sign-extended)
    Sub,        ///< dst -= src
    SubImm,     ///< dst -= imm32
    Xor,        ///< dst ^= src
    And,        ///< dst &= src
    AndImm,     ///< dst &= imm32 (zero-extended)
    Shl,        ///< dst <<= imm
    Shr,        ///< dst >>= imm (logical)
    CmpImm,     ///< flags <- dst - imm32
    CmpReg,     ///< flags <- dst - src
    JmpRel,     ///< direct jump, PC-relative
    JccRel,     ///< conditional jump, PC-relative
    JmpInd,     ///< indirect jump through register
    CallRel,    ///< direct call, PC-relative
    CallInd,    ///< indirect call through register
    Ret,        ///< return (pops target from stack)
    Push,       ///< push register
    Pop,        ///< pop register
    Syscall,    ///< enter kernel at the syscall entry point
    Sysret,     ///< return to user mode
    Lfence,     ///< speculation barrier: stall until older ops complete
    Mfence,     ///< full memory barrier (superset of Lfence here)
    Clflush,    ///< flush cache line containing mem[src]
    Rdtsc,      ///< RAX <- current cycle count
    Rdpmc,      ///< RAX <- perf counter selected by RCX
    Hlt,        ///< stop simulation, return control to the harness
    Ud2,        ///< architecturally invalid opcode (#UD)
    Invalid,    ///< decode failure marker, faults like Ud2
};

/** Branch classification as seen by the BPU and the decoder. */
enum class BranchType : u8 {
    None = 0,
    DirectJump,
    CondJump,
    IndirectJump,
    DirectCall,
    IndirectCall,
    Return,
};

/** A decoded instruction. */
struct Insn
{
    InsnKind kind = InsnKind::Invalid;
    u8 length = 1;      ///< encoded size in bytes
    u8 dst = 0;         ///< destination register (or base for Store/Clflush)
    u8 src = 0;         ///< source register
    Cond cond = Cond::Eq;
    i32 disp = 0;       ///< memory displacement or branch offset
    u64 imm = 0;        ///< immediate operand

    /** Branch classification of this instruction. */
    BranchType branchType() const;

    /** True for any control-flow instruction. */
    bool isBranch() const { return branchType() != BranchType::None; }

    /**
     * True if the outcome of this branch can only be determined at the
     * execute stage (target from a register, condition from flags, or
     * return address from the stack). Mismatches on such sources resteer
     * from the backend; everything else the decoder can resteer itself.
     */
    bool isExecuteDependent() const;

    /** Architectural target of a PC-relative branch located at @p pc. */
    VAddr relTarget(VAddr pc) const { return pc + length + static_cast<i64>(disp); }
};

/** Human-readable register name. */
const char* regName(u8 reg);

/** Register named @p name ("rax".."r15"); kNumRegs when unknown. */
u8 regFromName(const std::string& name);

/**
 * Stable lower_snake identifier of @p kind ("mov_imm", "jcc_rel", ...).
 * These names are an external format (the fuzz corpus files serialize
 * instructions by kind name), so they never change for existing kinds.
 */
const char* insnKindName(InsnKind kind);

/** Kind named @p name, or InsnKind::Invalid when unknown. */
InsnKind insnKindFromName(const std::string& name);

/** Condition-code suffix of @p cond ("e", "ne", "b", "ae"). */
const char* condName(Cond cond);

/** Parse a condName() suffix. @return false when unknown. */
bool condFromName(const std::string& name, Cond& out);

/** Human-readable mnemonic with operands. */
std::string toString(const Insn& insn);

} // namespace phantom::isa

#endif // PHANTOM_ISA_INSN_HPP
