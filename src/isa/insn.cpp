#include "isa/insn.hpp"

#include <array>
#include <sstream>

namespace phantom::isa {

BranchType
Insn::branchType() const
{
    switch (kind) {
      case InsnKind::JmpRel:   return BranchType::DirectJump;
      case InsnKind::JccRel:   return BranchType::CondJump;
      case InsnKind::JmpInd:   return BranchType::IndirectJump;
      case InsnKind::CallRel:  return BranchType::DirectCall;
      case InsnKind::CallInd:  return BranchType::IndirectCall;
      case InsnKind::Ret:      return BranchType::Return;
      default:                 return BranchType::None;
    }
}

bool
Insn::isExecuteDependent() const
{
    switch (branchType()) {
      case BranchType::CondJump:
      case BranchType::IndirectJump:
      case BranchType::IndirectCall:
      case BranchType::Return:
        return true;
      default:
        return false;
    }
}

const char*
regName(u8 reg)
{
    static constexpr std::array<const char*, 16> names = {
        "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
        "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
    };
    return reg < names.size() ? names[reg] : "r?";
}

u8
regFromName(const std::string& name)
{
    for (u8 r = 0; r < kNumRegs; ++r)
        if (name == regName(r))
            return r;
    return kNumRegs;
}

namespace {

/** Indexed by InsnKind. Append-only: corpus files depend on these. */
constexpr std::array<const char*, 35> kKindNames = {
    "nop",      "nop_n",    "mov_imm",  "mov_reg",  "load",
    "store",    "add",      "add_imm",  "sub",      "sub_imm",
    "xor",      "and",      "and_imm",  "shl",      "shr",
    "cmp_imm",  "cmp_reg",  "jmp_rel",  "jcc_rel",  "jmp_ind",
    "call_rel", "call_ind", "ret",      "push",     "pop",
    "syscall",  "sysret",   "lfence",   "mfence",   "clflush",
    "rdtsc",    "rdpmc",    "hlt",      "ud2",      "invalid",
};

static_assert(kKindNames.size() ==
              static_cast<std::size_t>(InsnKind::Invalid) + 1);

} // namespace

const char*
insnKindName(InsnKind kind)
{
    auto index = static_cast<std::size_t>(kind);
    return index < kKindNames.size() ? kKindNames[index] : "invalid";
}

InsnKind
insnKindFromName(const std::string& name)
{
    for (std::size_t i = 0; i < kKindNames.size(); ++i)
        if (name == kKindNames[i])
            return static_cast<InsnKind>(i);
    return InsnKind::Invalid;
}

const char*
condName(Cond cond)
{
    switch (cond) {
      case Cond::Eq: return "e";
      case Cond::Ne: return "ne";
      case Cond::Lt: return "b";
      case Cond::Ge: return "ae";
    }
    return "?";
}

bool
condFromName(const std::string& name, Cond& out)
{
    for (Cond cond : {Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge}) {
        if (name == condName(cond)) {
            out = cond;
            return true;
        }
    }
    return false;
}

std::string
toString(const Insn& insn)
{
    std::ostringstream oss;
    switch (insn.kind) {
      case InsnKind::Nop:     oss << "nop"; break;
      case InsnKind::NopN:    oss << "nop" << static_cast<int>(insn.length); break;
      case InsnKind::MovImm:
        oss << "mov " << regName(insn.dst) << ", 0x" << std::hex << insn.imm;
        break;
      case InsnKind::MovReg:
        oss << "mov " << regName(insn.dst) << ", " << regName(insn.src);
        break;
      case InsnKind::Load:
        oss << "mov " << regName(insn.dst) << ", [" << regName(insn.src)
            << (insn.disp >= 0 ? "+" : "") << insn.disp << "]";
        break;
      case InsnKind::Store:
        oss << "mov [" << regName(insn.dst) << (insn.disp >= 0 ? "+" : "")
            << insn.disp << "], " << regName(insn.src);
        break;
      case InsnKind::Add:
        oss << "add " << regName(insn.dst) << ", " << regName(insn.src);
        break;
      case InsnKind::AddImm:
        oss << "add " << regName(insn.dst) << ", " << static_cast<i64>(insn.imm);
        break;
      case InsnKind::Sub:
        oss << "sub " << regName(insn.dst) << ", " << regName(insn.src);
        break;
      case InsnKind::SubImm:
        oss << "sub " << regName(insn.dst) << ", " << static_cast<i64>(insn.imm);
        break;
      case InsnKind::Xor:
        oss << "xor " << regName(insn.dst) << ", " << regName(insn.src);
        break;
      case InsnKind::And:
        oss << "and " << regName(insn.dst) << ", " << regName(insn.src);
        break;
      case InsnKind::AndImm:
        oss << "and " << regName(insn.dst) << ", 0x" << std::hex << insn.imm;
        break;
      case InsnKind::Shl:
        oss << "shl " << regName(insn.dst) << ", " << insn.imm;
        break;
      case InsnKind::Shr:
        oss << "shr " << regName(insn.dst) << ", " << insn.imm;
        break;
      case InsnKind::CmpImm:
        oss << "cmp " << regName(insn.dst) << ", " << static_cast<i64>(insn.imm);
        break;
      case InsnKind::CmpReg:
        oss << "cmp " << regName(insn.dst) << ", " << regName(insn.src);
        break;
      case InsnKind::JmpRel:  oss << "jmp " << insn.disp; break;
      case InsnKind::JccRel:
        oss << "j" << condName(insn.cond) << " " << insn.disp;
        break;
      case InsnKind::JmpInd:  oss << "jmp *" << regName(insn.src); break;
      case InsnKind::CallRel: oss << "call " << insn.disp; break;
      case InsnKind::CallInd: oss << "call *" << regName(insn.src); break;
      case InsnKind::Ret:     oss << "ret"; break;
      case InsnKind::Push:    oss << "push " << regName(insn.src); break;
      case InsnKind::Pop:     oss << "pop " << regName(insn.dst); break;
      case InsnKind::Syscall: oss << "syscall"; break;
      case InsnKind::Sysret:  oss << "sysret"; break;
      case InsnKind::Lfence:  oss << "lfence"; break;
      case InsnKind::Mfence:  oss << "mfence"; break;
      case InsnKind::Clflush: oss << "clflush [" << regName(insn.src) << "]"; break;
      case InsnKind::Rdtsc:   oss << "rdtsc"; break;
      case InsnKind::Rdpmc:   oss << "rdpmc"; break;
      case InsnKind::Hlt:     oss << "hlt"; break;
      case InsnKind::Ud2:     oss << "ud2"; break;
      case InsnKind::Invalid: oss << "(bad)"; break;
    }
    return oss.str();
}

} // namespace phantom::isa
