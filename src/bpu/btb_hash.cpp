#include "bpu/btb_hash.hpp"

#include <cassert>

namespace phantom::bpu {

namespace {

constexpr u64
maskOf(unsigned a, unsigned b, unsigned c)
{
    return (1ull << a) | (1ull << b) | (1ull << c);
}

constexpr u64
maskOf(unsigned a, unsigned b, unsigned c, unsigned d)
{
    return maskOf(a, b, c) | (1ull << d);
}

// Figure 7 of the paper, verbatim.
constexpr std::array<u64, kNumZen34Functions> kZen34Masks = {
    maskOf(47, 35, 23),         // f0
    maskOf(47, 36, 24, 12),     // f1
    maskOf(47, 37, 25, 13),     // f2
    maskOf(47, 38, 26, 14),     // f3
    maskOf(47, 39, 26, 13),     // f4 (overlapping, as published)
    maskOf(47, 39, 27, 15),     // f5
    maskOf(47, 40, 28, 16),     // f6
    maskOf(47, 41, 29, 17),     // f7
    maskOf(47, 42, 30, 18),     // f8
    maskOf(47, 43, 31, 19),     // f9
    maskOf(47, 44, 32, 20),     // f10
    maskOf(47, 45, 33, 21),     // f11
};

// Covers the bits no published function touches (b46, b34, b22).
constexpr u64 kZen34Extra = maskOf(46, 34, 22);

u64
zen34Key(VAddr va)
{
    u64 key = 0;
    for (unsigned i = 0; i < kNumZen34Functions; ++i)
        key |= parity64(va & kZen34Masks[i]) << i;
    key |= parity64(va & kZen34Extra) << kNumZen34Functions;
    key = (key << 12) | bits(va, 11, 0);
    return key;
}

u64
zen12Key(VAddr va)
{
    // Tag: bits [47:14] (34 bits) folded into 12 bits with shifts of 12;
    // index: bits [13:0] direct. Bit 47 lands in fold bit 9 via y >> 24.
    u64 y = bits(va, 47, 14);
    u64 tag = (y ^ (y >> 12) ^ (y >> 24)) & 0xfff;
    return (tag << 14) | bits(va, 13, 0);
}

u64
intelKey(VAddr va, Privilege priv)
{
    // Same structural fold as Zen 1/2 but salted with the privilege mode
    // so that user- and kernel-mode branches can never alias.
    u64 y = bits(va, 47, 14);
    u64 salt = (priv == Privilege::Kernel) ? 0x5a5 : 0;
    u64 tag = ((y ^ (y >> 12) ^ (y >> 24)) & 0xfff) ^ salt;
    return (1ull << 63) * (priv == Privilege::Kernel ? 1 : 0) |
           (tag << 14) | bits(va, 13, 0);
}

} // namespace

const std::array<u64, kNumZen34Functions>&
zen34ParityMasks()
{
    static const std::array<u64, kNumZen34Functions> masks = kZen34Masks;
    return masks;
}

u64
zen34ExtraParityMask()
{
    return kZen34Extra;
}

u64
btbKey(BtbHashKind kind, VAddr va, Privilege priv)
{
    switch (kind) {
      case BtbHashKind::Zen12:
        return zen12Key(va);
      case BtbHashKind::Zen34:
        return zen34Key(va);
      case BtbHashKind::IntelSalted:
        return intelKey(va, priv);
    }
    return 0;
}

VAddr
crossPrivAlias(BtbHashKind kind, VAddr kernel_va)
{
    switch (kind) {
      case BtbHashKind::Zen12: {
        // Bit 47 is fold bit 9 (via y >> 24); bit 23 is fold bit 9 too
        // (via y >> 0, 23 - 14 == 9). Flipping both preserves the tag.
        // Bits [63:48] are cleared by canonicalization and are not hashed.
        VAddr user = kernel_va ^ (1ull << 47) ^ (1ull << 23);
        user = canonicalize(user);
        assert(btbKey(kind, user, Privilege::User) ==
               btbKey(kind, kernel_va, Privilege::Kernel));
        return user;
      }
      case BtbHashKind::Zen34: {
        // The mask the paper confirms on both Zen 3 and Zen 4:
        // K ^ 0xffffbff800000000 flips b47 plus b35..b45 (and the
        // non-hashed sign-extension bits), preserving every parity.
        VAddr user = canonicalize(kernel_va ^ 0xffffbff800000000ull);
        assert(btbKey(kind, user, Privilege::User) ==
               btbKey(kind, kernel_va, Privilege::Kernel));
        return user;
      }
      case BtbHashKind::IntelSalted:
        return 0;
    }
    return 0;
}

} // namespace phantom::bpu
