/**
 * @file
 * Return Stack Buffer: the N most recent call sites (N is 16 or 32 on
 * the parts the paper tests), consulted for return target prediction.
 */

#ifndef PHANTOM_BPU_RSB_HPP
#define PHANTOM_BPU_RSB_HPP

#include "sim/types.hpp"

#include <algorithm>
#include <optional>
#include <vector>

namespace phantom::bpu {

/** Circular return-address stack. Underflow yields no prediction. */
class Rsb
{
  public:
    explicit Rsb(u32 entries = 32)
        : slots_(entries, 0)
    {
    }

    u32 capacity() const { return static_cast<u32>(slots_.size()); }

    /** Record a call's return address. */
    void
    push(VAddr return_va)
    {
        top_ = (top_ + 1) % slots_.size();
        slots_[top_] = return_va;
        if (depth_ < slots_.size())
            ++depth_;
    }

    /** Pop the predicted return target. */
    std::optional<VAddr>
    pop()
    {
        if (depth_ == 0)
            return std::nullopt;
        VAddr va = slots_[top_];
        top_ = (top_ + slots_.size() - 1) % slots_.size();
        --depth_;
        return va;
    }

    /** Peek without popping (for observation in tests). */
    std::optional<VAddr>
    peek() const
    {
        if (depth_ == 0)
            return std::nullopt;
        return slots_[top_];
    }

    std::size_t depth() const { return depth_; }
    std::size_t top() const { return top_; }

    /** Restore a previously observed (top, depth) position — used for
     *  speculation repair after a resteer. Slot contents survive pops,
     *  so restoring the position restores the stack. */
    void
    restore(std::size_t top, std::size_t depth)
    {
        top_ = top % slots_.size();
        depth_ = depth > slots_.size() ? slots_.size() : depth;
    }

    /** Clear (IBPB / RSB stuffing with dummy clears, context switch). */
    void
    flush()
    {
        depth_ = 0;
        top_ = 0;
    }

    /** Complete mutable state (slot contents + position) for snapshots. */
    struct State
    {
        std::vector<VAddr> slots;
        u64 top = 0;
        u64 depth = 0;
    };

    State
    state() const
    {
        return State{slots_, static_cast<u64>(top_),
                     static_cast<u64>(depth_)};
    }

    void
    setState(const State& s)
    {
        slots_ = s.slots;
        top_ = static_cast<std::size_t>(s.top) % slots_.size();
        depth_ = std::min(static_cast<std::size_t>(s.depth), slots_.size());
    }

  private:
    std::vector<VAddr> slots_;
    std::size_t top_ = 0;
    std::size_t depth_ = 0;
};

} // namespace phantom::bpu

#endif // PHANTOM_BPU_RSB_HPP
