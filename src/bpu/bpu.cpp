#include "bpu/bpu.hpp"

#include "obs/prof.hpp"

namespace phantom::bpu {

Bpu::Bpu(const BpuConfig& config)
    : config_(config),
      btb_(config.btb),
      rsb_(config.rsbEntries),
      pht_(config.phtEntries)
{
}

RsbCheckpoint
Bpu::checkpointRsb() const
{
    return RsbCheckpoint{rsb_.top(), rsb_.depth()};
}

std::optional<FrontendPrediction>
Bpu::predictAt(VAddr va, Privilege priv, bool auto_ibrs, u8 thread,
               bool stibp)
{
    PROF_SCOPE(BpuPredict);
    auto entry = btb_.lookup(va, priv, thread, stibp);
    if (!entry)
        return std::nullopt;

    FrontendPrediction pred;
    pred.btb = *entry;
    pred.rsbBefore = checkpointRsb();
    pred.restricted = auto_ibrs && priv == Privilege::Kernel &&
                      entry->creator == Privilege::User;

    using isa::BranchType;
    switch (entry->type) {
      case BranchType::CondJump:
        pred.taken = pht_.predictTaken(va, bhb_.value());
        pred.target = entry->targetFor(va);
        break;
      case BranchType::Return: {
        auto target = rsb_.pop();
        if (!target) {
            // Underflow: the frontend still believes a return lives
            // here, but has no target to steer to. The prediction is
            // surfaced (so the decoder can validate and correct it)
            // with an unusable target.
            pred.target = 0;
            pred.usedRsb = false;
            break;
        }
        pred.target = *target;
        pred.usedRsb = true;
        break;
      }
      default:
        pred.target = entry->targetFor(va);
        break;
    }
    return pred;
}

void
Bpu::trainBranch(VAddr source_va, isa::BranchType type, VAddr target_va,
                 bool taken, Privilege priv, bool rsb_already_popped,
                 u8 thread)
{
    PROF_SCOPE(BpuUpdate);
    using isa::BranchType;

    if (type == BranchType::CondJump)
        pht_.update(source_va, bhb_.value(), taken);

    if (taken) {
        btb_.train(source_va, type, target_va, priv, thread);
        bhb_.update(source_va, target_va);
        trace(obs::TraceEventKind::BtbInstall, source_va, target_va,
              static_cast<u32>(type));
    }

    // Calls push their return address onto the RSB from the core (which
    // knows the instruction length); returns consume an entry here unless
    // the prediction already popped it.
    if (type == BranchType::Return && !rsb_already_popped)
        rsb_.pop();
}

void
Bpu::decoderInvalidate(VAddr va, Privilege priv)
{
    btb_.invalidate(va, priv);
    trace(obs::TraceEventKind::Squash, va, 0, /*arg32=*/1);
}

void
Bpu::restoreRsb(const RsbCheckpoint& checkpoint)
{
    rsb_.restore(checkpoint.top, checkpoint.depth);
}

void
Bpu::ibpb()
{
    btb_.flushAll();
    rsb_.flush();
    pht_.flush();
    bhb_.flush();
    trace(obs::TraceEventKind::Squash, 0, 0, /*arg32=*/2);
}

} // namespace phantom::bpu
