/**
 * @file
 * Pattern History Table: 2-bit saturating counters predicting conditional
 * branch direction, indexed by a fold of the source address and the BHB.
 */

#ifndef PHANTOM_BPU_PHT_HPP
#define PHANTOM_BPU_PHT_HPP

#include "sim/types.hpp"

#include <vector>

namespace phantom::bpu {

/** Bimodal direction predictor with history mixing. */
class Pht
{
  public:
    explicit Pht(u32 entries = 4096)
        : counters_(entries, kWeaklyTaken)
    {
    }

    /** Predicted direction for a conditional at @p va with history @p bhb. */
    bool
    predictTaken(VAddr va, u64 bhb) const
    {
        return counters_[indexOf(va, bhb)] >= kWeaklyTaken;
    }

    /** Update with the resolved direction. */
    void
    update(VAddr va, u64 bhb, bool taken)
    {
        u8& c = counters_[indexOf(va, bhb)];
        if (taken) {
            if (c < kStronglyTaken)
                ++c;
        } else {
            if (c > 0)
                --c;
        }
    }

    /** Reset all counters to weakly taken (IBPB-style flush). */
    void
    flush()
    {
        for (u8& c : counters_)
            c = kWeaklyTaken;
    }

    /** Raw counter array (snapshot capture). */
    const std::vector<u8>& counters() const { return counters_; }

    /** Restore counters captured by counters(); sizes must match. */
    void
    setCounters(const std::vector<u8>& counters)
    {
        if (counters.size() == counters_.size())
            counters_ = counters;
    }

  private:
    static constexpr u8 kWeaklyTaken = 2;
    static constexpr u8 kStronglyTaken = 3;

    std::size_t
    indexOf(VAddr va, u64 bhb) const
    {
        // Only low address bits index the table, so that BTB-aliased
        // addresses — equal in their low bits — share direction state.
        // This is what lets cross-address conditional training work, as
        // the paper's exploits require. (Real parts mix in history; the
        // attacks equalize it, which we model by omitting it.)
        (void)bhb;
        u64 h = bits(va, 12, 1);
        return static_cast<std::size_t>(h % counters_.size());
    }

    std::vector<u8> counters_;
};

/**
 * Branch History Buffer: a shift register folding recent control-flow
 * edges, used to index the PHT (and, on real parts, parts of the BTB).
 */
class Bhb
{
  public:
    u64 value() const { return value_; }

    /** Record the edge @p source_va -> @p target_va. */
    void
    update(VAddr source_va, VAddr target_va)
    {
        u64 footprint = (source_va & 0x3f) ^ ((target_va & 0x3f) << 1);
        value_ = (value_ << 2) ^ footprint;
    }

    void flush() { value_ = 0; }

    /** Restore a history value captured via value() (snapshots). */
    void setValue(u64 value) { value_ = value; }

  private:
    u64 value_ = 0;
};

} // namespace phantom::bpu

#endif // PHANTOM_BPU_PHT_HPP
