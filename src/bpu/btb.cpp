#include "bpu/btb.hpp"

#include <cassert>

namespace phantom::bpu {

Btb::Btb(const BtbConfig& config)
    : config_(config),
      entries_(static_cast<std::size_t>(config.sets) * config.ways)
{
    assert(config_.sets > 0 && config_.ways > 0);
}

std::optional<BtbPrediction>
Btb::lookup(VAddr va, Privilege priv, u8 thread, bool stibp) const
{
    u64 key = btbKey(config_.hash, va, priv);
    u32 set = indexOf(key);
    u64 tag = tagOf(key);
    const Entry* base = &entries_[static_cast<std::size_t>(set) * config_.ways];
    for (u32 w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            if (stibp && base[w].pred.creatorThread != thread)
                return std::nullopt;    // sibling entries are not served
            const_cast<Entry*>(&base[w])->lastUse = ++useClock_;
            return base[w].pred;
        }
    }
    return std::nullopt;
}

void
Btb::train(VAddr source_va, isa::BranchType type, VAddr target_va,
           Privilege priv, u8 thread)
{
    using isa::BranchType;
    u64 key = btbKey(config_.hash, source_va, priv);
    u32 set = indexOf(key);
    u64 tag = tagOf(key);
    Entry* base = &entries_[static_cast<std::size_t>(set) * config_.ways];

    Entry* slot = nullptr;
    for (u32 w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            slot = &base[w];
            break;
        }
    }
    if (slot == nullptr) {
        slot = &base[0];
        for (u32 w = 0; w < config_.ways; ++w) {
            if (!base[w].valid) {
                slot = &base[w];
                break;
            }
            if (base[w].lastUse < slot->lastUse)
                slot = &base[w];
        }
    }

    slot->valid = true;
    slot->tag = tag;
    slot->lastUse = ++useClock_;
    slot->pred.sourceVa = source_va;
    slot->pred.type = type;
    slot->pred.creator = priv;
    slot->pred.creatorThread = thread;
    switch (type) {
      case BranchType::DirectJump:
      case BranchType::CondJump:
      case BranchType::DirectCall:
        slot->pred.relDelta =
            static_cast<i64>(target_va) - static_cast<i64>(source_va);
        slot->pred.absTarget = 0;
        break;
      case BranchType::IndirectJump:
      case BranchType::IndirectCall:
        slot->pred.relDelta = 0;
        slot->pred.absTarget = target_va;
        break;
      case BranchType::Return:
        // Returns predict through the RSB; the BTB only records that a
        // return lives here so the frontend knows to pop.
        slot->pred.relDelta = 0;
        slot->pred.absTarget = 0;
        break;
      case BranchType::None:
        assert(false && "cannot train a non-branch");
        break;
    }
}

bool
Btb::invalidate(VAddr va, Privilege priv)
{
    u64 key = btbKey(config_.hash, va, priv);
    u32 set = indexOf(key);
    u64 tag = tagOf(key);
    Entry* base = &entries_[static_cast<std::size_t>(set) * config_.ways];
    for (u32 w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].valid = false;
            return true;
        }
    }
    return false;
}

void
Btb::flushAll()
{
    for (Entry& entry : entries_)
        entry.valid = false;
}

std::size_t
Btb::validCount() const
{
    std::size_t n = 0;
    for (const Entry& entry : entries_)
        n += entry.valid ? 1 : 0;
    return n;
}

} // namespace phantom::bpu
