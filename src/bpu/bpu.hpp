/**
 * @file
 * Branch Prediction Unit facade.
 *
 * The central property modelled here is *prediction before decode*: the
 * frontend asks "is the thing at this address a branch, and where does it
 * go?" knowing only the address and privilege mode. What actually lives
 * at the address — possibly a different branch type, possibly no branch
 * at all — is only discovered later, by the decoder or the execute stage.
 */

#ifndef PHANTOM_BPU_BPU_HPP
#define PHANTOM_BPU_BPU_HPP

#include "bpu/btb.hpp"
#include "bpu/pht.hpp"
#include "bpu/rsb.hpp"
#include "obs/trace.hpp"

#include <optional>

namespace phantom::bpu {

/** Saved RSB position for speculation repair. */
struct RsbCheckpoint
{
    std::size_t top = 0;
    std::size_t depth = 0;
};

/** A prediction handed to the fetch unit. */
struct FrontendPrediction
{
    BtbPrediction btb;        ///< the matching BTB entry
    VAddr target = 0;         ///< resolved predicted target
    bool taken = true;        ///< PHT direction for conditional entries
    bool usedRsb = false;     ///< target came from an RSB pop
    RsbCheckpoint rsbBefore;  ///< RSB state before any speculative pop

    /**
     * True when the entry was created at a lower privilege than the
     * lookup and AutoIBRS is on: the frontend must cancel the prediction
     * after the target fetch (paper O5: IF still happens).
     */
    bool restricted = false;
};

/** BPU configuration. */
struct BpuConfig
{
    BtbConfig btb;
    u32 rsbEntries = 32;
    u32 phtEntries = 4096;
};

/** The bundled predictor state of one core. */
class Bpu
{
  public:
    explicit Bpu(const BpuConfig& config);

    /**
     * Pre-decode prediction for the instruction at @p va.
     *
     * @param va candidate branch source address
     * @param priv current privilege mode
     * @param auto_ibrs whether AutoIBRS is enabled (restricts use of
     *        lower-privilege predictions, though not their fetch)
     * @return a prediction if the BTB tag matches, including
     *         direction==false conditionals (the frontend falls through
     *         but the decoder still validates the source type).
     */
    std::optional<FrontendPrediction>
    predictAt(VAddr va, Privilege priv, bool auto_ibrs, u8 thread = 0,
              bool stibp = false);

    /**
     * Train on a resolved branch (at execute/retire).
     * Installs/refreshes the BTB entry for taken branches, updates the
     * PHT for conditionals, maintains the RSB and BHB.
     *
     * @param rsb_already_popped true when a return's RSB pop already
     *        happened at prediction time.
     */
    void trainBranch(VAddr source_va, isa::BranchType type, VAddr target_va,
                     bool taken, Privilege priv, bool rsb_already_popped,
                     u8 thread = 0);

    /** Decoder feedback: the address turned out to hold a non-branch.
     *  Drops the bogus entry so the next fetch is not re-steered. */
    void decoderInvalidate(VAddr va, Privilege priv);

    /** Restore the RSB to a pre-speculation checkpoint (resteer). */
    void restoreRsb(const RsbCheckpoint& checkpoint);

    /** Indirect Branch Prediction Barrier: flush all predictor state. */
    void ibpb();

    /**
     * Attach a pipeline event sink for predictor-state events
     * (BtbInstall on training, Squash on IBPB / decoder invalidate).
     * @p clock points at the owning core's cycle counter so events
     * carry timestamps; both may be null (tracing off).
     */
    void
    setTrace(obs::TraceSink* sink, const Cycle* clock)
    {
        traceSink_ = sink;
        traceClock_ = clock;
    }

    Btb& btb() { return btb_; }
    Rsb& rsb() { return rsb_; }
    Pht& pht() { return pht_; }
    Bhb& bhb() { return bhb_; }
    const Btb& btb() const { return btb_; }
    const Rsb& rsb() const { return rsb_; }

  private:
    RsbCheckpoint checkpointRsb() const;

    /** Emit a predictor event; a single branch when tracing is off. */
    void
    trace(obs::TraceEventKind kind, VAddr pc, VAddr target, u32 arg32 = 0)
    {
        if (traceSink_ == nullptr)
            return;
        obs::TraceEvent event;
        event.kind = kind;
        event.arg32 = arg32;
        event.cycle = traceClock_ != nullptr ? *traceClock_ : 0;
        event.pc = pc;
        event.addr = target;
        traceSink_->emit(event);
    }

    BpuConfig config_;
    Btb btb_;
    Rsb rsb_;
    Pht pht_;
    Bhb bhb_;
    obs::TraceSink* traceSink_ = nullptr;
    const Cycle* traceClock_ = nullptr;
};

} // namespace phantom::bpu

#endif // PHANTOM_BPU_BPU_HPP
