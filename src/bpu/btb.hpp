/**
 * @file
 * Branch Target Buffer.
 *
 * Set-associative, indexed/tagged by the per-microarchitecture hash of
 * the *branch source* virtual address (see btb_hash.hpp). Entries record
 * the branch type and the target — PC-relative for direct branches,
 * absolute for indirect ones, and a "use the RSB" marker for returns —
 * because, as the paper observes (§5.2), the training instruction
 * determines the prediction semantics of the victim instruction.
 */

#ifndef PHANTOM_BPU_BTB_HPP
#define PHANTOM_BPU_BTB_HPP

#include "bpu/btb_hash.hpp"
#include "isa/insn.hpp"

#include <optional>
#include <vector>

namespace phantom::bpu {

/** A prediction served by the BTB for a specific source address. */
struct BtbPrediction
{
    VAddr sourceVa = 0;               ///< the predicted branch source
    isa::BranchType type = isa::BranchType::None;
    i64 relDelta = 0;                 ///< target - source for direct types
    VAddr absTarget = 0;              ///< absolute target for indirect types
    Privilege creator = Privilege::User;  ///< who installed the entry
    u8 creatorThread = 0;             ///< SMT thread that installed it

    /** Predicted target when the prediction fires at @p at_va. Direct
     *  entries are served PC-relative (paper §5.2); returns are resolved
     *  against the RSB by the caller. */
    VAddr
    targetFor(VAddr at_va) const
    {
        using isa::BranchType;
        switch (type) {
          case BranchType::DirectJump:
          case BranchType::CondJump:
          case BranchType::DirectCall:
            return static_cast<VAddr>(static_cast<i64>(at_va) + relDelta);
          case BranchType::IndirectJump:
          case BranchType::IndirectCall:
            return absTarget;
          default:
            return 0;
        }
    }
};

/** BTB geometry. */
struct BtbConfig
{
    u32 sets = 512;
    u32 ways = 8;
    BtbHashKind hash = BtbHashKind::Zen12;
};

/**
 * The Branch Target Buffer. Lookup happens with nothing but an address
 * and the current privilege mode — before the instruction at that address
 * has been decoded, or even exists.
 */
class Btb
{
  public:
    explicit Btb(const BtbConfig& config);

    const BtbConfig& config() const { return config_; }

    /**
     * Predict whether a branch source lives at @p va.
     * @param thread SMT thread performing the lookup
     * @param stibp when set, entries installed by the sibling thread are
     *        not served (Single Thread Indirect Branch Predictors, §2.4)
     * @return the stored prediction on a tag match.
     */
    std::optional<BtbPrediction> lookup(VAddr va, Privilege priv,
                                        u8 thread = 0,
                                        bool stibp = false) const;

    /**
     * Install or refresh the entry for an executed branch.
     * @param source_va branch source address
     * @param type decoded branch type
     * @param target_va resolved target
     * @param priv privilege the branch executed at
     */
    void train(VAddr source_va, isa::BranchType type, VAddr target_va,
               Privilege priv, u8 thread = 0);

    /** Remove the entry matching @p va (decoder feedback: "not a
     *  branch"), if present. Returns true if an entry was removed. */
    bool invalidate(VAddr va, Privilege priv);

    /** Flush everything (IBPB). */
    void flushAll();

    /** Number of valid entries (for tests). */
    std::size_t validCount() const;

    /** One BTB way; exposed for snapshot capture/restore. */
    struct Entry
    {
        bool valid = false;
        u64 tag = 0;
        BtbPrediction pred;
        u64 lastUse = 0;
    };

    /** Complete mutable state (entries + LRU clock) for snapshots. */
    struct State
    {
        std::vector<Entry> entries;
        u64 useClock = 0;
    };

    State state() const { return State{entries_, useClock_}; }

    void
    setState(const State& s)
    {
        entries_ = s.entries;
        useClock_ = s.useClock;
    }

  private:

    u32 indexOf(u64 key) const { return static_cast<u32>(key % config_.sets); }
    u64 tagOf(u64 key) const { return key / config_.sets; }

    BtbConfig config_;
    std::vector<Entry> entries_;
    mutable u64 useClock_ = 0;
};

} // namespace phantom::bpu

#endif // PHANTOM_BPU_BTB_HPP
