/**
 * @file
 * BTB index/tag hash functions per microarchitecture family.
 *
 * The Zen 3/4 hash implements the twelve cross-privilege XOR parity
 * functions reverse engineered in the paper (Figure 7), all involving
 * address bit 47, plus one extra parity not involving bit 47 covering the
 * bits the paper could not attribute (b22/b34/b46) — the paper explicitly
 * suspects such functions exist ("potentially because they do not involve
 * bit 47"). Zen 1/2 use a simpler XOR fold (user/kernel aliasing needs
 * only two bit flips, consistent with prior work the paper builds on).
 * Intel (9th gen and later) salts the hash with the privilege mode, which
 * is why the paper could not reuse user-injected predictions in kernel
 * mode on Intel parts.
 */

#ifndef PHANTOM_BPU_BTB_HASH_HPP
#define PHANTOM_BPU_BTB_HASH_HPP

#include "sim/types.hpp"

#include <array>

namespace phantom::bpu {

/** Which family's indexing scheme to model. */
enum class BtbHashKind : u8 {
    Zen12,        ///< AMD Zen 1 / Zen 2
    Zen34,        ///< AMD Zen 3 / Zen 4 (Figure-7 functions)
    IntelSalted,  ///< Intel >= 9th gen (privilege-salted)
};

/** Number of Figure-7 parity functions. */
inline constexpr unsigned kNumZen34Functions = 12;

/**
 * Bit masks of the Figure-7 parity functions f0..f11 over VA bits [47:12].
 * parity(va & mask) is one hash bit.
 */
const std::array<u64, kNumZen34Functions>& zen34ParityMasks();

/** The extra non-b47 parity mask covering b46/b34/b22. */
u64 zen34ExtraParityMask();

/** Parity (XOR reduction) of the set bits of @p x. */
constexpr u64
parity64(u64 x)
{
    x ^= x >> 32;
    x ^= x >> 16;
    x ^= x >> 8;
    x ^= x >> 4;
    x ^= x >> 2;
    x ^= x >> 1;
    return x & 1;
}

/**
 * Full BTB lookup key for a branch source at @p va executed at @p priv.
 * Two sources collide in the BTB exactly when their keys are equal.
 */
u64 btbKey(BtbHashKind kind, VAddr va, Privilege priv);

/**
 * A user-space (bit 47 clear, canonical) address that collides with
 * kernel address @p kernel_va under @p kind. Only meaningful for the AMD
 * schemes; returns 0 for IntelSalted (no cross-privilege alias exists).
 */
VAddr crossPrivAlias(BtbHashKind kind, VAddr kernel_va);

} // namespace phantom::bpu

#endif // PHANTOM_BPU_BTB_HASH_HPP
