#include "fuzz/campaign.hpp"

#include "runner/scheduler.hpp"
#include "runner/schema.hpp"
#include "runner/seed_stream.hpp"

#include <cassert>
#include <cstdio>

namespace phantom::fuzz {

namespace {

std::string
hexSeed(u64 seed)
{
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(seed));
    return buf;
}

/** Everything one trial produces, folded serially in trial order. */
struct TrialOutcome
{
    u64 seed = 0;
    std::string uarch;
    u64 stmts = 0;
    std::array<u64, kGenClassCount> classCounts{};
    CheckReport report;
    MinimizeResult minimized;  ///< populated when diverged && minimizing
    bool minimizedValid = false;
};

} // namespace

CampaignSummary
runCampaign(const CampaignOptions& options)
{
    assert(!options.uarchMatrix.empty());

    ProgramGenerator generator(options.gen);
    runner::SeedStream seeds(options.seed);
    runner::TrialScheduler scheduler(options.jobs);

    auto outcomes = scheduler.run(options.budget, [&](u64 trial) {
        TrialOutcome out;
        out.seed = seeds.trialSeed(trial);
        out.uarch =
            options.uarchMatrix[trial % options.uarchMatrix.size()];

        Program program = generator.generate(out.seed);
        out.stmts = program.stmts.size();
        out.classCounts = program.classCounts;

        OracleOptions oracle_options = options.oracle;
        oracle_options.uarch = out.uarch;
        out.report = checkProgram(program, oracle_options);

        if (out.report.anyDivergence() && options.minimizeDivergences) {
            out.minimized =
                minimize(program, out.report.firstDivergent(),
                         oracle_options, options.minimizeOptions);
            out.minimizedValid = true;
        }
        return out;
    });

    CampaignSummary summary;
    summary.budget = options.budget;
    summary.seed = options.seed;
    summary.jobs = scheduler.jobs();
    summary.uarchMatrix = options.uarchMatrix;

    for (u64 trial = 0; trial < outcomes.size(); ++trial) {
        const TrialOutcome& out = outcomes[trial];
        summary.programs++;
        summary.totalStmts += out.stmts;
        for (int c = 0; c < kGenClassCount; ++c)
            summary.classCounts[c] += out.classCounts[c];

        for (int o = 0; o < kOracleCount; ++o) {
            const OracleOutcome& verdict = out.report.outcomes[o];
            if (!verdict.ran) {
                summary.oracleSkipped[o]++;
                continue;
            }
            summary.oracleRan[o]++;
            if (verdict.diverged)
                summary.oracleDiverged[o]++;
        }

        if (!out.report.anyDivergence())
            continue;

        Divergence div;
        div.trial = trial;
        div.seed = out.seed;
        div.uarch = out.uarch;
        div.oracle = out.report.firstDivergent();
        div.detail =
            out.report.outcomes[static_cast<int>(div.oracle)].detail;
        if (out.minimizedValid) {
            div.repro = out.minimized.program;
            div.stmtsBefore = out.minimized.stmtsBefore;
            div.stmtsAfter = out.minimized.stmtsAfter;
            div.minimizeSteps = out.minimized.steps;
            summary.minimizeSteps += out.minimized.steps;
        } else {
            div.repro = generator.generate(out.seed);
            div.stmtsBefore = div.stmtsAfter = out.stmts;
        }

        // Corpus writes happen here, serially in trial order, so the
        // directory contents are independent of the worker count too.
        if (!options.corpusDir.empty()) {
            CorpusEntry entry;
            entry.program = div.repro;
            entry.uarch = div.uarch;
            entry.oracle = div.oracle;
            entry.note = "minimized from " +
                         std::to_string(div.stmtsBefore) + " stmts, " +
                         "campaign seed " + hexSeed(options.seed) +
                         " trial " + std::to_string(trial);
            std::string name = std::string("div_") +
                               oracleName(div.oracle) + "_" +
                               hexSeed(div.seed).substr(2) + ".phz";
            std::string error;
            if (writeEntryFile(options.corpusDir + "/" + name, entry,
                               &error)) {
                div.corpusFile = name;
            } else {
                std::fprintf(stderr, "fuzz: corpus write failed: %s\n",
                             error.c_str());
            }
        }

        summary.divergences.push_back(std::move(div));
    }
    return summary;
}

std::vector<ReplayResult>
replayCorpus(const std::vector<std::string>& paths,
             const OracleOptions& base, unsigned jobs)
{
    runner::TrialScheduler scheduler(jobs);
    return scheduler.run(paths.size(), [&](u64 trial) {
        ReplayResult result;
        result.path = paths[trial];

        CorpusEntry entry;
        std::string error;
        if (!readEntryFile(result.path, entry, &error)) {
            result.detail = error;
            return result;
        }
        result.parsed = true;

        OracleOptions oracle_options = base;
        oracle_options.uarch = entry.uarch;
        CheckReport report = checkProgram(entry.program, oracle_options);
        if (report.anyDivergence()) {
            Oracle first = report.firstDivergent();
            result.detail =
                std::string(oracleName(first)) + ": " +
                report.outcomes[static_cast<int>(first)].detail;
        } else {
            result.clean = true;
        }
        return result;
    });
}

runner::JsonValue
summaryToJson(const CampaignSummary& summary)
{
    using runner::JsonValue;

    JsonValue doc = JsonValue::object();
    doc.set("schema", runner::kFuzzResultSchema);
    doc.set("jobs", static_cast<u64>(summary.jobs));

    JsonValue campaign = JsonValue::object();
    campaign.set("budget", summary.budget);
    campaign.set("seed", hexSeed(summary.seed));
    JsonValue matrix = JsonValue::array();
    for (const std::string& uarch : summary.uarchMatrix)
        matrix.push(uarch);
    campaign.set("uarch_matrix", std::move(matrix));
    campaign.set("programs", summary.programs);
    campaign.set("total_stmts", summary.totalStmts);
    JsonValue classes = JsonValue::object();
    for (int c = 0; c < kGenClassCount; ++c)
        classes.set(genClassName(static_cast<GenClass>(c)),
                    summary.classCounts[c]);
    campaign.set("classes", std::move(classes));
    doc.set("campaign", std::move(campaign));

    JsonValue oracles = JsonValue::object();
    for (int o = 0; o < kOracleCount; ++o) {
        JsonValue one = JsonValue::object();
        one.set("ran", summary.oracleRan[o]);
        one.set("skipped", summary.oracleSkipped[o]);
        one.set("diverged", summary.oracleDiverged[o]);
        oracles.set(oracleName(static_cast<Oracle>(o)), std::move(one));
    }
    doc.set("oracles", std::move(oracles));

    JsonValue minimization = JsonValue::object();
    minimization.set("divergences",
                     static_cast<u64>(summary.divergences.size()));
    minimization.set("steps", summary.minimizeSteps);
    doc.set("minimization", std::move(minimization));

    JsonValue divergences = JsonValue::array();
    for (const Divergence& div : summary.divergences) {
        JsonValue one = JsonValue::object();
        one.set("trial", div.trial);
        one.set("seed", hexSeed(div.seed));
        one.set("uarch", div.uarch);
        one.set("oracle", oracleName(div.oracle));
        one.set("detail", div.detail);
        one.set("stmts_before", div.stmtsBefore);
        one.set("stmts_after", div.stmtsAfter);
        one.set("minimize_steps", div.minimizeSteps);
        if (!div.corpusFile.empty())
            one.set("corpus_file", div.corpusFile);
        divergences.push(std::move(one));
    }
    doc.set("divergences", std::move(divergences));

    return doc;
}

} // namespace phantom::fuzz
