/**
 * @file
 * The mass differential-fuzz campaign: budgeted trials through the
 * runner's work-stealing TrialScheduler, each trial generating one
 * program from its SeedStream-derived seed, checking it against all
 * four oracles (fuzz/oracle.hpp) on a uarch striped from a
 * configuration matrix, and — on divergence — delta-minimizing the
 * repro (fuzz/minimize.hpp) and optionally writing it to a regression
 * corpus (fuzz/corpus.hpp).
 *
 * Determinism contract: the summary depends only on (seed, budget,
 * matrix, generator/oracle options). Trials derive seeds from the
 * campaign seed by index, results are folded in trial order, and
 * minimization is a pure function of the divergent program — so
 * PHANTOM_JOBS=1 and PHANTOM_JOBS=16 produce bit-identical summary
 * JSON (cmake/RunFuzzCheck.cmake asserts this with json_check
 * --equal-path).
 */

#ifndef PHANTOM_FUZZ_CAMPAIGN_HPP
#define PHANTOM_FUZZ_CAMPAIGN_HPP

#include "fuzz/corpus.hpp"
#include "fuzz/minimize.hpp"
#include "runner/json.hpp"

namespace phantom::fuzz {

struct CampaignOptions
{
    u64 budget = 1000;  ///< programs to generate and check
    u64 seed = 1;       ///< campaign seed (PHANTOM_SEED convention)
    unsigned jobs = 0;  ///< scheduler workers; 0 = PHANTOM_JOBS/env

    GenOptions gen;
    OracleOptions oracle;  ///< .uarch is overridden by the matrix

    /** Trial i runs on uarchMatrix[i % size]: full matrix coverage
     *  across the campaign at single-uarch per-trial cost. */
    std::vector<std::string> uarchMatrix = {"zen1", "zen2", "zen4",
                                            "intel13"};

    bool minimizeDivergences = true;
    MinimizeOptions minimizeOptions;

    /** When non-empty, minimized repros are written here as .phz. */
    std::string corpusDir;
};

/** One divergence, after minimization. */
struct Divergence
{
    u64 trial = 0;
    u64 seed = 0;
    std::string uarch;
    Oracle oracle = Oracle::kCount;
    std::string detail;
    u64 stmtsBefore = 0;
    u64 stmtsAfter = 0;
    u64 minimizeSteps = 0;
    std::string corpusFile;  ///< basename written, "" when not written
    Program repro;
};

struct CampaignSummary
{
    u64 budget = 0;
    u64 seed = 0;
    unsigned jobs = 0;  ///< informational; excluded from equality checks
    std::vector<std::string> uarchMatrix;

    u64 programs = 0;
    u64 totalStmts = 0;
    std::array<u64, kGenClassCount> classCounts{};

    std::array<u64, kOracleCount> oracleRan{};
    std::array<u64, kOracleCount> oracleSkipped{};
    std::array<u64, kOracleCount> oracleDiverged{};

    u64 minimizeSteps = 0;
    std::vector<Divergence> divergences;

    bool clean() const { return divergences.empty(); }
};

/** Run the campaign. Deterministic given options (modulo .corpusDir
 *  side effects); parallelism never changes the summary. */
CampaignSummary runCampaign(const CampaignOptions& options);

/** One corpus file's replay verdict. */
struct ReplayResult
{
    std::string path;
    bool parsed = false;
    bool clean = false;   ///< all oracles ran clean on the entry's uarch
    std::string detail;   ///< parse error or first divergence pinpoint
};

/**
 * Replay every entry in @p paths: parse, run all four oracles on the
 * entry's recorded uarch, expect zero divergences. Corpus entries are
 * repros of *fixed* bugs (or preventive seeds), so any divergence —
 * or parse failure — is a regression.
 */
std::vector<ReplayResult> replayCorpus(
    const std::vector<std::string>& paths, const OracleOptions& base,
    unsigned jobs = 0);

/**
 * Serialize @p summary as a phantom-fuzz-results/v1 document. Seeds
 * are hex strings (doubles cannot hold all u64 values); "jobs" is a
 * top-level member so the compared subtrees (campaign, oracles,
 * minimization, divergences) are identical across worker counts.
 */
runner::JsonValue summaryToJson(const CampaignSummary& summary);

} // namespace phantom::fuzz

#endif // PHANTOM_FUZZ_CAMPAIGN_HPP
