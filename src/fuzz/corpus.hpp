/**
 * @file
 * The .phz regression-corpus format: a reviewable, line-oriented text
 * serialization of one fuzz program plus the context needed to replay
 * it (microarchitecture, the oracle it once failed, a provenance note).
 *
 *   phantom-fuzz-corpus/v1
 *   seed 0x2a
 *   uarch zen2
 *   oracle decode_cache_identity
 *   note minimized from 37 stmts
 *   gen code_va=0x400000 data_va=0x800000 data_bytes=0x4000
 *   stmt mov_imm dst=r15 imm=0x2
 *   stmt jcc_rel cond=ne target=1
 *   stmt hlt
 *   end
 *
 * Statements serialize by isa::insnKindName with only the operand
 * fields that kind uses; `target` is a statement index (see
 * fuzz/generator.hpp). Files are written by the campaign's minimizer
 * and replayed forever after as ordinary CTests (tests/corpus/,
 * cmake/RunFuzzCheck.cmake), so the format is append-only: parsers must
 * keep accepting everything ever written.
 */

#ifndef PHANTOM_FUZZ_CORPUS_HPP
#define PHANTOM_FUZZ_CORPUS_HPP

#include "fuzz/oracle.hpp"

#include <string>
#include <vector>

namespace phantom::fuzz {

inline constexpr const char* kCorpusMagic = "phantom-fuzz-corpus/v1";

/** One corpus file: a program plus replay context. */
struct CorpusEntry
{
    Program program;
    std::string uarch = "zen2";
    Oracle oracle = Oracle::kCount;  ///< kCount: preventive entry
    std::string note;
};

/** Serialize @p entry (the exact on-disk bytes). */
std::string formatEntry(const CorpusEntry& entry);

/** Parse formatEntry() output. @return false with @p error set on any
 *  malformed line (strict: unknown kinds/registers/fields reject). */
bool parseEntry(const std::string& text, CorpusEntry& out,
                std::string* error);

/** Write @p entry to @p path, verifying it parses back to an identical
 *  serialization first. @return false with @p error set on failure. */
bool writeEntryFile(const std::string& path, const CorpusEntry& entry,
                    std::string* error);

/** Read and parse one corpus file. */
bool readEntryFile(const std::string& path, CorpusEntry& out,
                   std::string* error);

/** Sorted paths of every *.phz file under @p dir (empty when the
 *  directory is missing — an empty corpus is not an error). */
std::vector<std::string> listCorpus(const std::string& dir);

} // namespace phantom::fuzz

#endif // PHANTOM_FUZZ_CORPUS_HPP
