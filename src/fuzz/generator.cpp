#include "fuzz/generator.hpp"

#include "obs/prof.hpp"

#include <cassert>

namespace phantom::fuzz {

using namespace isa;

namespace {

constexpr std::array<const char*, kGenClassCount> kClassNames = {
    "arith",        "mov_const",   "load_store",  "cond_branch",
    "unmapped",     "self_modify", "cache_flush", "rsb_pattern",
    "stack_ops",    "indirect",    "serialize",   "timer",
    "block_self_modify",
};

// Register roles. The generator reserves a few registers so multi-
// statement patterns stay well-formed no matter what the surrounding
// soup does: RDI anchors the data window, R15 counts loops, RBP holds
// materialized statement addresses, R14 carries self-modify patch
// bytes. Everything else is fair game.
constexpr u8 kDataReg = RDI;
constexpr u8 kLoopReg = R15;
constexpr u8 kAddrReg = RBP;
constexpr u8 kPatchReg = R14;

bool
reservedDst(u8 reg)
{
    return reg == RSP || reg == kDataReg || reg == kLoopReg;
}

} // namespace

const char*
genClassName(GenClass cls)
{
    auto index = static_cast<std::size_t>(cls);
    return index < kClassNames.size() ? kClassNames[index] : "?";
}

bool
operator==(const Stmt& a, const Stmt& b)
{
    return a.insn.kind == b.insn.kind && a.insn.length == b.insn.length &&
           a.insn.dst == b.insn.dst && a.insn.src == b.insn.src &&
           a.insn.cond == b.insn.cond && a.insn.disp == b.insn.disp &&
           a.insn.imm == b.insn.imm && a.target == b.target;
}

std::vector<VAddr>
Program::stmtVas() const
{
    std::vector<VAddr> vas;
    vas.reserve(stmts.size());
    u64 offset = 0;
    for (const Stmt& stmt : stmts) {
        vas.push_back(options.codeVa + offset);
        offset += stmt.insn.length;
    }
    return vas;
}

u64
Program::byteSize() const
{
    u64 bytes = 0;
    for (const Stmt& stmt : stmts)
        bytes += stmt.insn.length;
    return bytes;
}

std::vector<u8>
Program::assemble() const
{
    std::vector<VAddr> vas = stmtVas();
    VAddr end = options.codeVa + byteSize();
    std::vector<u8> out;
    out.reserve(byteSize());
    for (std::size_t i = 0; i < stmts.size(); ++i) {
        Insn insn = stmts[i].insn;
        if (stmts[i].target >= 0) {
            std::size_t t = static_cast<std::size_t>(stmts[i].target);
            VAddr target_va = t < vas.size() ? vas[t] : end;
            switch (insn.kind) {
              case InsnKind::JmpRel:
              case InsnKind::JccRel:
              case InsnKind::CallRel:
                insn.disp = static_cast<i32>(
                    static_cast<i64>(target_va) -
                    static_cast<i64>(vas[i] + insn.length));
                break;
              case InsnKind::MovImm:
                insn.imm = target_va;
                break;
              default:
                break;
            }
        }
        std::size_t n = encode(insn, out);
        assert(n == insn.length);
        (void)n;
    }
    return out;
}

namespace {

/** Statement-emission state for one generate() call. */
struct Emitter
{
    Program& p;
    Rng& rng;

    i32
    here() const
    {
        return static_cast<i32>(p.stmts.size());
    }

    void
    emit(const Insn& insn, i32 target = -1)
    {
        p.stmts.push_back(Stmt{insn, target});
    }

    u8
    anyReg()
    {
        return static_cast<u8>(rng.below(kNumRegs));
    }

    /** A register safe to clobber. */
    u8
    scratchReg()
    {
        u8 reg = anyReg();
        return reservedDst(reg) ? static_cast<u8>(RAX) : reg;
    }

    /** A register safe to read (never RSP). */
    u8
    sourceReg()
    {
        u8 reg = anyReg();
        return reg == RSP ? static_cast<u8>(RBX) : reg;
    }

    i32
    dataDisp()
    {
        return static_cast<i32>(rng.below(p.options.dataBytes - 8) & ~7ull);
    }

    void
    emitArith()
    {
        u8 dst = scratchReg();
        u8 src = sourceReg();
        switch (rng.below(9)) {
          case 0: emit(makeAdd(dst, src)); break;
          case 1: emit(makeSub(dst, src)); break;
          case 2: emit(makeXor(dst, src)); break;
          case 3: emit(makeAnd(dst, src)); break;
          case 4: emit(makeShl(dst, static_cast<u8>(rng.below(64)))); break;
          case 5: emit(makeShr(dst, static_cast<u8>(rng.below(64)))); break;
          case 6: emit(makeMovReg(dst, src)); break;
          case 7:
            emit(makeAddImm(dst, static_cast<i32>(rng.below(4096))));
            break;
          default: emit(makeCmpReg(dst, src)); break;
        }
    }

    void
    emitMovConst()
    {
        emit(makeMovImm(scratchReg(), rng.next()));
    }

    void
    emitLoadStore()
    {
        if (rng.below(2) == 0)
            emit(makeLoad(scratchReg(), kDataReg, dataDisp()));
        else
            emit(makeStore(kDataReg, dataDisp(), sourceReg()));
    }

    /** cmp; jcc over one instruction. */
    void
    emitForwardSkip()
    {
        emit(makeCmpReg(sourceReg(), sourceReg()));
        emit(makeJccRel(static_cast<Cond>(rng.below(4)), 0), here() + 2);
        emit(makeAddImm(scratchReg(), static_cast<i32>(rng.below(1000))));
    }

    /** Load from one page past the data window: page fault, run ends. */
    void
    emitUnmappedAccess()
    {
        emit(makeMovImm(kAddrReg, p.options.dataVa + p.options.dataBytes +
                                      kPageBytes));
        emit(makeLoad(scratchReg(), kAddrReg, 0));
    }

    /**
     * Forward-patching self-modifying code: store 8 bytes of valid
     * instruction encodings over the nop slot that executes right
     * after. If speculation pre-decoded the slot, the store must
     * invalidate the stale decode — the decode-cache oracle's sharpest
     * stressor.
     */
    void
    emitSelfModify()
    {
        std::vector<u8> patch;
        encode(makeAddImm(RAX, static_cast<i32>(1 + rng.below(63))),
               patch);
        while (patch.size() < 8)
            encode(makeNop(), patch);
        u64 imm = 0;
        for (int i = 7; i >= 0; --i)
            imm = (imm << 8) | patch[static_cast<std::size_t>(i)];

        emit(makeMovImm(kPatchReg, imm));
        emit(makeMovImm(kAddrReg, 0), here() + 2);  // -> the slot
        emit(makeStore(kAddrReg, 0, kPatchReg));
        emit(makeNopN(8));                          // the slot
    }

    /**
     * Intra-block self-modification: the store's target is only a few
     * straight-line statements away from the store itself, so the patch
     * lands inside the very superblock being executed —
     * decode-until-branch bound the slot's stale decode before the
     * store retired, and the engine must notice mid-block. Forward
     * patches sweep the kill point across the block (0–3 filler
     * statements); backward patches rewrite an already-executed slot,
     * which only matters when a surrounding generator loop re-enters
     * the block.
     */
    void
    emitBlockSelfModify()
    {
        std::vector<u8> patch;
        encode(makeAddImm(RAX, static_cast<i32>(1 + rng.below(63))),
               patch);
        while (patch.size() < 8)
            encode(makeNop(), patch);
        u64 imm = 0;
        for (int i = 7; i >= 0; --i)
            imm = (imm << 8) | patch[static_cast<std::size_t>(i)];

        if (rng.below(4) != 0) {
            u32 gap = static_cast<u32>(rng.below(4));
            emit(makeMovImm(kPatchReg, imm));
            emit(makeMovImm(kAddrReg, 0),
                 here() + 2 + static_cast<i32>(gap));
            emit(makeStore(kAddrReg, 0, kPatchReg));
            for (u32 i = 0; i < gap; ++i)
                emitArith();    // straight-line up to the slot
            emit(makeNopN(8));  // the slot
        } else {
            i32 slot = here();
            emit(makeNopN(8));
            emit(makeMovImm(kPatchReg, imm));
            emit(makeMovImm(kAddrReg, 0), slot);
            emit(makeStore(kAddrReg, 0, kPatchReg));
        }
    }

    void
    emitCacheFlush()
    {
        if (rng.below(2) == 0) {
            emit(makeClflush(kDataReg));
        } else {
            // Flush a line of the program itself: the decode cache must
            // drop the flushed decodes on every configuration.
            emit(makeMovImm(kAddrReg, 0),
                 static_cast<i32>(rng.below(p.stmts.size() + 1)));
            emit(makeClflush(kAddrReg));
        }
    }

    void
    emitRsbPattern()
    {
        if (rng.below(2) == 0) {
            // jmp over a function body, then call it: balanced
            // call/ret exercises RSB push/pop and return prediction.
            i32 jmp_at = here();
            emit(makeJmpRel(0), 0);  // target patched below
            i32 fn = here();
            u32 body = 1 + static_cast<u32>(rng.below(2));
            for (u32 i = 0; i < body; ++i)
                emitArith();
            emit(makeRet());
            p.stmts[static_cast<std::size_t>(jmp_at)].target = here();
            emit(makeCallRel(0), fn);
        } else {
            // push addr; ret — a return the RSB never saw pushed:
            // underflow + execute-resolved misprediction.
            emit(makeMovImm(kAddrReg, 0), here() + 3);
            emit(makePush(kAddrReg));
            emit(makeRet());
        }
    }

    void
    emitStackOps()
    {
        u8 reg = sourceReg();
        u8 dst = scratchReg();
        emit(makePush(reg));
        emit(makePop(dst));
    }

    void
    emitIndirectBranch()
    {
        emit(makeMovImm(kAddrReg, 0), here() + 3);
        emit(makeJmpInd(kAddrReg));
        emitArith();  // fetched behind the jump, never retired
    }

    void
    emitSerialize()
    {
        emit(rng.below(2) == 0 ? makeLfence() : makeMfence());
    }

    void
    emitTimer()
    {
        emit(rng.below(2) == 0 ? makeRdtsc() : makeRdpmc());
    }

    void
    emitClass(GenClass cls)
    {
        p.classCounts[static_cast<std::size_t>(cls)]++;
        switch (cls) {
          case GenClass::Arith:          emitArith(); break;
          case GenClass::MovConst:       emitMovConst(); break;
          case GenClass::LoadStore:      emitLoadStore(); break;
          case GenClass::CondBranch:     emitForwardSkip(); break;
          case GenClass::UnmappedAccess: emitUnmappedAccess(); break;
          case GenClass::SelfModify:     emitSelfModify(); break;
          case GenClass::CacheFlush:     emitCacheFlush(); break;
          case GenClass::RsbPattern:     emitRsbPattern(); break;
          case GenClass::StackOps:       emitStackOps(); break;
          case GenClass::IndirectBranch: emitIndirectBranch(); break;
          case GenClass::Serialize:      emitSerialize(); break;
          case GenClass::Timer:          emitTimer(); break;
          case GenClass::BlockSelfModify: emitBlockSelfModify(); break;
          case GenClass::kCount:         break;
        }
    }
};

std::vector<GenClass>
enabledClasses(u32 mask, bool final_block)
{
    std::vector<GenClass> classes;
    for (int i = 0; i < kGenClassCount; ++i) {
        auto cls = static_cast<GenClass>(i);
        // A fault truncates everything after it, so unmapped accesses
        // are only worth emitting once the rest of the program has had
        // its chance to run.
        if (cls == GenClass::UnmappedAccess && !final_block)
            continue;
        if (mask & genClassBit(cls))
            classes.push_back(cls);
    }
    if (classes.empty())
        classes.push_back(GenClass::Arith);
    return classes;
}

} // namespace

Program
ProgramGenerator::generate(u64 seed) const
{
    PROF_SCOPE(FuzzGenerate);
    Program p;
    p.seed = seed;
    p.options = options_;
    Rng rng(seed);
    Emitter e{p, rng};

    // Prologue: every register starts from a seed-derived value, then
    // RDI anchors the data window (matching the reference interpreter's
    // assumptions in tests/prop_machine.cpp).
    for (u8 r = 0; r < kNumRegs; ++r) {
        if (r == RSP)
            continue;
        e.emit(makeMovImm(r, rng.next()));
    }
    e.emit(makeMovImm(kDataReg, options_.dataVa));

    u32 blocks =
        options_.minBlocks +
        static_cast<u32>(
            rng.below(options_.maxBlocks - options_.minBlocks + 1));
    bool loops_enabled =
        (options_.classes & genClassBit(GenClass::CondBranch)) != 0;

    for (u32 b = 0; b < blocks; ++b) {
        bool final_block = b + 1 == blocks;
        std::vector<GenClass> classes =
            enabledClasses(options_.classes, final_block);

        bool looped = loops_enabled && rng.below(2) == 0;
        i32 top = 0;
        if (looped) {
            p.classCounts[static_cast<std::size_t>(
                GenClass::CondBranch)]++;
            e.emit(makeMovImm(kLoopReg, 2 + rng.below(4)));
            top = e.here();
        }

        u32 body = options_.minBlockLen +
                   static_cast<u32>(rng.below(
                       options_.maxBlockLen - options_.minBlockLen + 1));
        for (u32 i = 0; i < body; ++i)
            e.emitClass(classes[rng.below(classes.size())]);

        if (looped) {
            e.emit(makeSubImm(kLoopReg, 1));
            e.emit(makeJccRel(Cond::Ne, 0), top);
        }
    }

    e.emit(makeHlt());
    return p;
}

Insn
ProgramGenerator::randomInsn(Rng& rng)
{
    u8 dst = static_cast<u8>(rng.below(kNumRegs));
    u8 src = static_cast<u8>(rng.below(kNumRegs));
    i32 disp = static_cast<i32>(rng.next());
    u64 imm = rng.next();
    auto cond = static_cast<Cond>(rng.below(4));
    switch (rng.below(34)) {
      case 0:  return makeNop();
      case 1:  return makeNopN(static_cast<u8>(3 + rng.below(13)));
      case 2:  return makeMovImm(dst, imm);
      case 3:  return makeMovReg(dst, src);
      case 4:  return makeLoad(dst, src, disp);
      case 5:  return makeStore(dst, disp, src);
      case 6:  return makeAdd(dst, src);
      case 7:  return makeAddImm(dst, static_cast<i32>(imm));
      case 8:  return makeSub(dst, src);
      case 9:  return makeSubImm(dst, static_cast<i32>(imm));
      case 10: return makeXor(dst, src);
      case 11: return makeAnd(dst, src);
      case 12: return makeAndImm(dst, static_cast<u32>(imm));
      case 13: return makeShl(dst, static_cast<u8>(rng.below(64)));
      case 14: return makeShr(dst, static_cast<u8>(rng.below(64)));
      case 15: return makeCmpImm(dst, static_cast<i32>(imm));
      case 16: return makeCmpReg(dst, src);
      case 17: return makeJmpRel(disp);
      case 18: return makeJccRel(cond, disp);
      case 19: return makeJmpInd(src);
      case 20: return makeCallRel(disp);
      case 21: return makeCallInd(src);
      case 22: return makeRet();
      case 23: return makePush(src);
      case 24: return makePop(dst);
      case 25: return makeSyscall();
      case 26: return makeSysret();
      case 27: return makeLfence();
      case 28: return makeMfence();
      case 29: return makeClflush(src);
      case 30: return makeRdtsc();
      case 31: return makeRdpmc();
      case 32: return makeHlt();
      default: return makeUd2();
    }
}

} // namespace phantom::fuzz
