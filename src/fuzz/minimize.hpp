/**
 * @file
 * Delta-minimization of divergent programs.
 *
 * Given a program that fails one oracle, shrink it while re-validating
 * the divergence after every candidate edit (a candidate that no longer
 * diverges is discarded). Two alternating passes run to fixpoint:
 *
 *  - instruction drop: remove one statement at a time (statement-index
 *    targets renumber and the program re-assembles, so branches keep
 *    landing on statement boundaries — see fuzz/generator.hpp);
 *  - operand shrink: per statement, try canonical operand
 *    simplifications (immediate → 0/1, displacement → 0, registers →
 *    RAX) so the surviving repro reads as plainly as possible.
 *
 * The result is a small, deterministic repro suitable for the
 * regression corpus (fuzz/corpus.hpp). Minimization cost is bounded:
 * each pass is O(statements) oracle evaluations and the pass pair
 * repeats at most maxRounds times.
 */

#ifndef PHANTOM_FUZZ_MINIMIZE_HPP
#define PHANTOM_FUZZ_MINIMIZE_HPP

#include "fuzz/oracle.hpp"

namespace phantom::fuzz {

struct MinimizeOptions
{
    u32 maxRounds = 8;  ///< drop+shrink pass pairs before giving up
};

struct MinimizeResult
{
    Program program;     ///< the reduced repro (still diverges)
    Oracle oracle = Oracle::kCount;
    u64 stmtsBefore = 0;
    u64 stmtsAfter = 0;
    u64 steps = 0;       ///< oracle evaluations spent minimizing
};

/**
 * Drop one statement and renumber targets. Targets pointing at the
 * dropped statement move to its successor; targets past the end clamp
 * to the last statement. Exposed for the minimizer tests.
 */
Program dropStmt(const Program& program, std::size_t index);

/**
 * Reduce @p program to a minimal repro of @p oracle's divergence.
 * @p program must already diverge on @p oracle under @p options.
 */
MinimizeResult minimize(const Program& program, Oracle oracle,
                        const OracleOptions& options,
                        const MinimizeOptions& minimize_options = {});

} // namespace phantom::fuzz

#endif // PHANTOM_FUZZ_MINIMIZE_HPP
