/**
 * @file
 * Differential oracles over generated guest programs.
 *
 * Each oracle runs one fuzz::Program under a controlled pair of
 * configurations and checks an invariant the simulator guarantees by
 * construction (SPECULOSE-style differential validation — the paper's
 * correctness surface):
 *
 *  (a) DecodeCacheIdentity — running with the decode cache fully
 *      enabled, with only the superblock engine pinned off, and with
 *      the cache disabled must produce pairwise bit-identical final
 *      MachineStates; both layers are derived state
 *      (src/cpu/decode_cache.hpp).
 *  (b) SnapshotRoundTrip — a state captured mid-run must survive
 *      serialize→load→serialize bit-identically (snap::roundTripError).
 *  (c) ReplayDrift — two machines forked from the mid-run state and
 *      replayed in lockstep must never diverge (snap::checkDivergence,
 *      which also pinpoints the first divergent instruction when they
 *      do).
 *  (d) MitigationMonotonic — enabling SuppressBPOnNonBr never *adds*
 *      phantom episodes (PmcEvent::MispredictFrontend), on
 *      microarchitectures that support the knob; elsewhere the oracle
 *      reports ran=false and the campaign counts it skipped.
 *
 * All four are deterministic: a divergence reproduces from (program,
 * uarch) alone, which is what makes delta-minimization and checked-in
 * regression corpora possible.
 */

#ifndef PHANTOM_FUZZ_ORACLE_HPP
#define PHANTOM_FUZZ_ORACLE_HPP

#include "fuzz/generator.hpp"

#include <array>
#include <string>

namespace phantom::fuzz {

enum class Oracle : u8 {
    DecodeCacheIdentity = 0,
    SnapshotRoundTrip,
    ReplayDrift,
    MitigationMonotonic,
    kCount,
};

inline constexpr int kOracleCount = static_cast<int>(Oracle::kCount);

/** Stable name ("decode_cache_identity", ...), the JSON/corpus key. */
const char* oracleName(Oracle oracle);

/** Oracle named @p name, or Oracle::kCount when unknown. */
Oracle oracleFromName(const std::string& name);

/** Execution parameters shared by all oracles. */
struct OracleOptions
{
    std::string uarch = "zen2";
    u64 physBytes = 1ull << 28;  ///< small install: cheap kernel boot
    u64 maxInsns = 40000;        ///< per-run instruction budget
    u64 captureAfter = 48;       ///< insns before the mid-run capture
    u64 replayInsns = 512;       ///< lockstep replay budget (oracle c)
    u64 replayWindow = 64;       ///< replay digest-window size
    bool decodeCacheBug = false; ///< test-only injected invalidation bug
};

/** One oracle's verdict on one program. */
struct OracleOutcome
{
    bool ran = false;       ///< false: skipped (e.g. no mitigation knob)
    bool diverged = false;
    std::string detail;     ///< human-readable pinpoint when diverged
};

/** All four verdicts. */
struct CheckReport
{
    std::array<OracleOutcome, kOracleCount> outcomes;

    bool anyDivergence() const;

    /** First divergent oracle, or Oracle::kCount when clean. */
    Oracle firstDivergent() const;
};

/** Run a single oracle (the minimizer's re-validation predicate). */
OracleOutcome runOracle(const Program& program, Oracle oracle,
                        const OracleOptions& options);

/** Run all four oracles on @p program. */
CheckReport checkProgram(const Program& program,
                         const OracleOptions& options);

} // namespace phantom::fuzz

#endif // PHANTOM_FUZZ_ORACLE_HPP
