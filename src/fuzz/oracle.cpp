#include "fuzz/oracle.hpp"

#include "attack/testbed.hpp"
#include "cpu/msr.hpp"
#include "obs/prof.hpp"
#include "snap/image.hpp"
#include "snap/replay.hpp"

#include <map>
#include <memory>
#include <sstream>

namespace phantom::fuzz {

namespace {

constexpr std::array<const char*, kOracleCount> kOracleNames = {
    "decode_cache_identity",
    "snapshot_roundtrip",
    "replay_drift",
    "mitigation_monotonic",
};

/**
 * One booted system kept warm for reuse. Kernel boot costs ~10ms of
 * page-table construction — two orders of magnitude more than running a
 * fuzz program — so each worker thread boots each (uarch, variant)
 * once, captures the pristine post-boot state, and every harness
 * restores it (O(dirty pages), the serve daemon's warm-fork idiom)
 * instead of re-booting. The pristine boot seed is fixed, so pooled
 * runs are identical whichever worker executes them — the
 * jobs-invariance the campaign summary is checked for.
 */
struct PooledBed
{
    /** Keeps a noise-free config copy alive for the machine. */
    std::unique_ptr<cpu::MicroarchConfig> quietConfig;
    std::unique_ptr<attack::Testbed> bed;
    snap::MachineState pristine;
};

PooledBed&
pooledBed(const cpu::MicroarchConfig& config,
          const OracleOptions& options, bool quiet)
{
    thread_local std::map<std::string, PooledBed> pool;
    std::string key = options.uarch + "/" +
                      std::to_string(options.physBytes) +
                      (quiet ? "/quiet" : "");
    auto it = pool.find(key);
    if (it == pool.end()) {
        PooledBed entry;
        const cpu::MicroarchConfig* use = &config;
        if (quiet) {
            entry.quietConfig =
                std::make_unique<cpu::MicroarchConfig>(config);
            entry.quietConfig->noise = mem::NoiseConfig{};
            use = entry.quietConfig.get();
        }
        entry.bed = std::make_unique<attack::Testbed>(
            *use, options.physBytes, /*seed=*/1);
        entry.pristine =
            snap::capture(entry.bed->machine, &entry.bed->kernel);
        it = pool.emplace(key, std::move(entry)).first;
    }
    return it->second;
}

/** A borrowed pooled system, reset to pristine, with the program
 *  mapped (code RWX so self-modifying stores are architecturally
 *  legal). Restore flushes the decode cache and page table, so no
 *  state survives from the previous borrower. */
struct Harness
{
    attack::Testbed& bed;
    VAddr entry;

    Harness(PooledBed& pooled, const Program& program,
            const std::vector<u8>& bytes, const OracleOptions& options)
        : bed(*pooled.bed), entry(program.options.codeVa)
    {
        snap::restore(bed.machine, pooled.pristine);
        bed.kernel.setLayoutState(pooled.pristine.layout);
        bed.machine.decodeCache().setEnabled(true);
        bed.machine.decodeCache().setSuperblocksEnabled(true);
        bed.machine.decodeCache().setTestOnlyIgnoreStores(
            options.decodeCacheBug);
        bed.process.mapCode(program.options.codeVa, bytes,
                            /*writable=*/true);
        bed.process.mapData(program.options.dataVa,
                            program.options.dataBytes);
    }

    ~Harness()
    {
        // Leave no test-only hooks armed for the next borrower.
        bed.machine.decodeCache().setTestOnlyIgnoreStores(false);
        bed.machine.decodeCache().setEnabled(true);
        bed.machine.decodeCache().setSuperblocksEnabled(true);
    }

    cpu::RunResult
    run(u64 max_insns)
    {
        return bed.runUser(entry, max_insns);
    }
};

std::string
componentDiff(const snap::MachineState& a, const snap::MachineState& b)
{
    std::vector<snap::ComponentDigest> da = snap::componentDigests(a);
    std::vector<snap::ComponentDigest> db = snap::componentDigests(b);
    std::ostringstream oss;
    const char* sep = "";
    for (std::size_t i = 0; i < da.size() && i < db.size(); ++i) {
        if (da[i].digest != db[i].digest) {
            oss << sep << da[i].name;
            sep = ",";
        }
    }
    return oss.str();
}

OracleOutcome
decodeCacheIdentity(const Program& program,
                    const cpu::MicroarchConfig& config,
                    const OracleOptions& options)
{
    OracleOutcome out;
    out.ran = true;
    std::vector<u8> bytes = program.assemble();
    PooledBed& pooled = pooledBed(config, options, /*quiet=*/false);

    // Three sides borrow the same pooled system back to back; the
    // captured states share frames copy-on-write, so earlier captures
    // stay intact while later runs dirty the machine. The middle leg
    // pins the superblock engine off with single-entry caching still
    // on, so a block-threading bug is attributed separately from a
    // predecode bug.
    snap::MachineState sa;
    {
        Harness cached(pooled, program, bytes, options);
        cached.run(options.maxInsns);
        sa = snap::capture(cached.bed.machine, &cached.bed.kernel);
    }
    snap::MachineState sb;
    {
        Harness noblocks(pooled, program, bytes, options);
        noblocks.bed.machine.decodeCache().setSuperblocksEnabled(false);
        noblocks.run(options.maxInsns);
        sb = snap::capture(noblocks.bed.machine, &noblocks.bed.kernel);
    }
    snap::MachineState sc;
    {
        Harness uncached(pooled, program, bytes, options);
        uncached.bed.machine.decodeCache().setEnabled(false);
        uncached.run(options.maxInsns);
        sc = snap::capture(uncached.bed.machine, &uncached.bed.kernel);
    }
    // All captures descend from the same pooled pristine snapshot, so
    // the COW-aware equality costs O(pages the program dirtied).
    if (!snap::statesEqual(sa, sb)) {
        out.diverged = true;
        out.detail = "superblocks on/off final states differ "
                     "(components: " + componentDiff(sa, sb) + ")";
    } else if (!snap::statesEqual(sa, sc)) {
        out.diverged = true;
        out.detail = "decode-cache on/off final states differ "
                     "(components: " + componentDiff(sa, sc) + ")";
    }
    return out;
}

/** Shared by oracles (b) and (c): run to the capture point. */
snap::MachineState
midRunState(const Program& program, const cpu::MicroarchConfig& config,
            const OracleOptions& options)
{
    std::vector<u8> bytes = program.assemble();
    Harness harness(pooledBed(config, options, /*quiet=*/false),
                    program, bytes, options);
    harness.run(options.captureAfter);
    return snap::capture(harness.bed.machine, &harness.bed.kernel);
}

OracleOutcome
snapshotRoundTrip(const Program& program,
                  const cpu::MicroarchConfig& config,
                  const OracleOptions& options)
{
    OracleOutcome out;
    out.ran = true;
    snap::MachineState state = midRunState(program, config, options);
    std::string error = snap::roundTripError(state);
    if (!error.empty()) {
        out.diverged = true;
        out.detail = error;
    }
    return out;
}

OracleOutcome
replayDrift(const Program& program, const cpu::MicroarchConfig& config,
            const OracleOptions& options)
{
    OracleOutcome out;
    out.ran = true;
    snap::MachineState state = midRunState(program, config, options);
    snap::ReplayOptions replay;
    replay.maxInsns = options.replayInsns;
    replay.windowInsns = options.replayWindow;
    snap::DivergenceReport report =
        snap::checkDivergence(state, config, replay);
    if (report.diverged) {
        out.diverged = true;
        out.detail = report.summary();
    }
    return out;
}

OracleOutcome
mitigationMonotonic(const Program& program,
                    const cpu::MicroarchConfig& config,
                    const OracleOptions& options)
{
    OracleOutcome out;
    if (!config.supportsSuppressBpOnNonBr)
        return out;  // no knob on this microarchitecture: skipped
    out.ran = true;

    // Noise off (the pooled "quiet" variant): episode counts must be
    // compared point-for-point, and the suppression bit legitimately
    // changes cycle timing, which would otherwise decorrelate the two
    // noise streams.
    std::vector<u8> bytes = program.assemble();
    PooledBed& pooled = pooledBed(config, options, /*quiet=*/true);

    auto phantoms = [&](bool suppress) {
        Harness harness(pooled, program, bytes, options);
        if (suppress)
            harness.bed.machine.msrs().setBit(
                cpu::msr::kDeCfg2, cpu::msr::kSuppressBpOnNonBrBit,
                true);
        harness.run(options.maxInsns);
        return harness.bed.machine.pmc().read(
            cpu::PmcEvent::MispredictFrontend);
    };

    u64 baseline = phantoms(false);
    u64 suppressed = phantoms(true);
    if (suppressed > baseline) {
        out.diverged = true;
        std::ostringstream oss;
        oss << "SuppressBPOnNonBr added phantom episodes: " << baseline
            << " without, " << suppressed << " with";
        out.detail = oss.str();
    }
    return out;
}

} // namespace

const char*
oracleName(Oracle oracle)
{
    auto index = static_cast<std::size_t>(oracle);
    return index < kOracleNames.size() ? kOracleNames[index] : "?";
}

Oracle
oracleFromName(const std::string& name)
{
    for (int i = 0; i < kOracleCount; ++i)
        if (name == kOracleNames[static_cast<std::size_t>(i)])
            return static_cast<Oracle>(i);
    return Oracle::kCount;
}

bool
CheckReport::anyDivergence() const
{
    for (const OracleOutcome& outcome : outcomes)
        if (outcome.diverged)
            return true;
    return false;
}

Oracle
CheckReport::firstDivergent() const
{
    for (int i = 0; i < kOracleCount; ++i)
        if (outcomes[static_cast<std::size_t>(i)].diverged)
            return static_cast<Oracle>(i);
    return Oracle::kCount;
}

OracleOutcome
runOracle(const Program& program, Oracle oracle,
          const OracleOptions& options)
{
    PROF_SCOPE(FuzzOracle);
    const cpu::MicroarchConfig* config =
        snap::resolveConfig(options.uarch);
    if (config == nullptr) {
        OracleOutcome out;
        out.detail = "unknown uarch \"" + options.uarch + "\"";
        return out;
    }
    switch (oracle) {
      case Oracle::DecodeCacheIdentity:
        return decodeCacheIdentity(program, *config, options);
      case Oracle::SnapshotRoundTrip:
        return snapshotRoundTrip(program, *config, options);
      case Oracle::ReplayDrift:
        return replayDrift(program, *config, options);
      case Oracle::MitigationMonotonic:
        return mitigationMonotonic(program, *config, options);
      case Oracle::kCount:
        break;
    }
    return {};
}

CheckReport
checkProgram(const Program& program, const OracleOptions& options)
{
    CheckReport report;
    for (int i = 0; i < kOracleCount; ++i)
        report.outcomes[static_cast<std::size_t>(i)] =
            runOracle(program, static_cast<Oracle>(i), options);
    return report;
}

} // namespace phantom::fuzz
