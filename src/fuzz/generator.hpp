/**
 * @file
 * Seeded, constrained random guest-program generation.
 *
 * Programs are generated as a list of statements (fuzz::Stmt), not
 * bytes: a statement is one isa::Insn plus an optional *statement-index*
 * target. Branches target statements, and MovImm statements can
 * materialize the virtual address of a statement into a register (for
 * indirect jumps, push/ret pitchforks, clflush-of-code and
 * self-modifying stores). Because every instruction kind has a fixed
 * encoded length, statement addresses are a prefix sum — assemble()
 * resolves targets to displacements/immediates and emits bytes in one
 * pass. The same property is what makes delta-minimization sound:
 * dropping a statement just renumbers targets and re-assembles
 * (fuzz/minimize.hpp).
 *
 * Generation is stratified over instruction *classes* (GenClass): every
 * enabled class gets equal pick probability, so rare-but-interesting
 * shapes (self-modifying stores, RSB underflows, unmapped accesses)
 * appear at a rate independent of how many arithmetic opcodes exist.
 * The class set is a caller-controlled mask; property tests that check
 * the machine against a dumb reference interpreter restrict it to
 * kReferenceSafeClasses (tests/prop_machine.cpp).
 */

#ifndef PHANTOM_FUZZ_GENERATOR_HPP
#define PHANTOM_FUZZ_GENERATOR_HPP

#include "isa/encoder.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

#include <array>
#include <string>
#include <vector>

namespace phantom::fuzz {

/** Generator instruction classes (stratification buckets). */
enum class GenClass : u8 {
    Arith = 0,       ///< reg-reg/imm ALU ops, mov, cmp
    MovConst,        ///< mov reg, imm64
    LoadStore,       ///< 8-byte loads/stores inside the data window
    CondBranch,      ///< bounded countdown loops + forward skips
    UnmappedAccess,  ///< load from an unmapped page (faults, ends run)
    SelfModify,      ///< store that patches an upcoming nop slot
    CacheFlush,      ///< clflush of data or of program code
    RsbPattern,      ///< call/ret pairs and push-addr/ret underflows
    StackOps,        ///< balanced push/pop pairs
    IndirectBranch,  ///< mov reg, addr-of-stmt; jmp*reg
    Serialize,       ///< lfence / mfence
    Timer,           ///< rdtsc / rdpmc
    BlockSelfModify, ///< store to pc+small-delta inside the same
                     ///< straight-line run — lands in the very
                     ///< superblock being executed
    kCount,
};

inline constexpr int kGenClassCount = static_cast<int>(GenClass::kCount);

/** Stable lower_snake name of @p cls ("self_modify", ...). */
const char* genClassName(GenClass cls);

constexpr u32
genClassBit(GenClass cls)
{
    return 1u << static_cast<int>(cls);
}

/** Every class. */
inline constexpr u32 kAllClasses = (1u << kGenClassCount) - 1;

/** Classes a speculation-free reference interpreter can execute
 *  (straight-line ALU + in-window memory + bounded branches). */
inline constexpr u32 kReferenceSafeClasses =
    genClassBit(GenClass::Arith) | genClassBit(GenClass::MovConst) |
    genClassBit(GenClass::LoadStore) | genClassBit(GenClass::CondBranch);

/** Program shape knobs. */
struct GenOptions
{
    VAddr codeVa = 0x0000000000400000ull;
    VAddr dataVa = 0x0000000000800000ull;
    u64 dataBytes = 4 * kPageBytes;
    u32 classes = kAllClasses;  ///< GenClass mask
    u32 minBlocks = 2;          ///< sequential blocks per program
    u32 maxBlocks = 5;
    u32 minBlockLen = 2;        ///< patterns per block body
    u32 maxBlockLen = 8;
};

/** One statement: an instruction, optionally aimed at another one. */
struct Stmt
{
    isa::Insn insn;

    /**
     * Statement index this one refers to, or -1. For PC-relative
     * branches the displacement is computed from it at assembly; for
     * MovImm the target statement's virtual address becomes the
     * immediate. Indices at or past the end resolve to the end-of-code
     * address.
     */
    i32 target = -1;
};

/** A generated (or minimized, or corpus-loaded) guest program. */
struct Program
{
    u64 seed = 0;
    GenOptions options;
    std::vector<Stmt> stmts;
    std::array<u64, kGenClassCount> classCounts{};  ///< generator tally

    /** Virtual address of each statement (prefix sum of lengths). */
    std::vector<VAddr> stmtVas() const;

    /** Encoded size in bytes. */
    u64 byteSize() const;

    /** Resolve targets and encode; size() == byteSize(). */
    std::vector<u8> assemble() const;
};

/** Two programs with identical statements/layout. */
bool operator==(const Stmt& a, const Stmt& b);

/**
 * The seeded program source. One instance is reusable across seeds;
 * generate() is const and thread-safe (campaign trials share one).
 */
class ProgramGenerator
{
  public:
    explicit ProgramGenerator(GenOptions options = {})
        : options_(options)
    {
    }

    const GenOptions& options() const { return options_; }

    /** Deterministic: same seed, same program. */
    Program generate(u64 seed) const;

    /**
     * One random, well-formed instruction drawn uniformly over every
     * encodable kind (operands randomized through the isa builders).
     * The decoder round-trip property tests draw from this instead of
     * keeping their own encoding tables (tests/prop_isa_fuzz.cpp).
     */
    static isa::Insn randomInsn(Rng& rng);

  private:
    GenOptions options_;
};

} // namespace phantom::fuzz

#endif // PHANTOM_FUZZ_GENERATOR_HPP
