#include "fuzz/minimize.hpp"

#include "obs/prof.hpp"

namespace phantom::fuzz {

namespace {

/** Candidate operand simplifications of one statement, cheapest-to-try
 *  first. Returns modified copies; the caller validates each. */
std::vector<Stmt>
shrinkCandidates(const Stmt& stmt)
{
    std::vector<Stmt> candidates;
    auto push = [&](auto&& mutate) {
        Stmt candidate = stmt;
        mutate(candidate);
        if (!(candidate == stmt))
            candidates.push_back(candidate);
    };
    if (stmt.target < 0 && stmt.insn.imm != 0)
        push([](Stmt& s) { s.insn.imm = 0; });
    if (stmt.target < 0 && stmt.insn.imm > 1)
        push([](Stmt& s) { s.insn.imm = 1; });
    if (stmt.insn.disp != 0 && !stmt.insn.isBranch())
        push([](Stmt& s) { s.insn.disp = 0; });
    if (stmt.insn.dst != isa::RAX)
        push([](Stmt& s) { s.insn.dst = isa::RAX; });
    if (stmt.insn.src != isa::RAX)
        push([](Stmt& s) { s.insn.src = isa::RAX; });
    return candidates;
}

} // namespace

Program
dropStmt(const Program& program, std::size_t index)
{
    Program reduced = program;
    reduced.stmts.erase(reduced.stmts.begin() +
                        static_cast<std::ptrdiff_t>(index));
    i32 last = static_cast<i32>(reduced.stmts.size()) - 1;
    for (Stmt& stmt : reduced.stmts) {
        if (stmt.target < 0)
            continue;
        if (stmt.target > static_cast<i32>(index))
            stmt.target--;
        if (stmt.target > last)
            stmt.target = last;
    }
    return reduced;
}

MinimizeResult
minimize(const Program& program, Oracle oracle,
         const OracleOptions& options,
         const MinimizeOptions& minimize_options)
{
    PROF_SCOPE(FuzzMinimize);
    MinimizeResult result;
    result.oracle = oracle;
    result.stmtsBefore = program.stmts.size();
    result.program = program;

    auto diverges = [&](const Program& candidate) {
        result.steps++;
        return runOracle(candidate, oracle, options).diverged;
    };

    for (u32 round = 0; round < minimize_options.maxRounds; ++round) {
        bool changed = false;

        // Drop pass, back to front so indices stay valid as we shrink.
        for (std::size_t i = result.program.stmts.size(); i-- > 0;) {
            if (result.program.stmts.size() <= 1)
                break;
            Program candidate = dropStmt(result.program, i);
            if (diverges(candidate)) {
                result.program = std::move(candidate);
                changed = true;
            }
        }

        // Operand-shrink pass over the survivors.
        for (std::size_t i = 0; i < result.program.stmts.size(); ++i) {
            for (const Stmt& shrunk :
                 shrinkCandidates(result.program.stmts[i])) {
                Program candidate = result.program;
                candidate.stmts[i] = shrunk;
                if (diverges(candidate)) {
                    result.program = std::move(candidate);
                    changed = true;
                }
            }
        }

        if (!changed)
            break;
    }

    result.stmtsAfter = result.program.stmts.size();
    return result;
}

} // namespace phantom::fuzz
