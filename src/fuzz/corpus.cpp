#include "fuzz/corpus.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace phantom::fuzz {

using namespace isa;

namespace {

/** Which operand fields a kind serializes. `imm` doubles as the shift
 *  amount for Shl/Shr and the byte length for NopN is separate. */
struct FieldSpec
{
    bool len = false;
    bool dst = false;
    bool src = false;
    bool cond = false;
    bool disp = false;
    bool imm = false;
};

FieldSpec
specFor(InsnKind kind)
{
    switch (kind) {
      case InsnKind::NopN:    return {.len = true};
      case InsnKind::MovImm:  return {.dst = true, .imm = true};
      case InsnKind::MovReg:
      case InsnKind::Add:
      case InsnKind::Sub:
      case InsnKind::Xor:
      case InsnKind::And:
      case InsnKind::CmpReg:  return {.dst = true, .src = true};
      case InsnKind::Load:
      case InsnKind::Store:
        return {.dst = true, .src = true, .disp = true};
      case InsnKind::AddImm:
      case InsnKind::SubImm:
      case InsnKind::AndImm:
      case InsnKind::CmpImm:
      case InsnKind::Shl:
      case InsnKind::Shr:     return {.dst = true, .imm = true};
      case InsnKind::JmpRel:
      case InsnKind::CallRel: return {.disp = true};
      case InsnKind::JccRel:  return {.cond = true, .disp = true};
      case InsnKind::JmpInd:
      case InsnKind::CallInd:
      case InsnKind::Push:
      case InsnKind::Clflush: return {.src = true};
      case InsnKind::Pop:     return {.dst = true};
      default:                return {};
    }
}

/** Rebuild an instruction through its isa builder (the single source of
 *  encoded lengths and operand normalization). */
bool
buildInsn(InsnKind kind, u8 len, u8 dst, u8 src, Cond cond, i32 disp,
          u64 imm, Insn& out, std::string* error)
{
    switch (kind) {
      case InsnKind::Nop:     out = makeNop(); return true;
      case InsnKind::NopN:
        if (len < 3 || len > kMaxInsnBytes) {
            *error = "nop_n len out of range";
            return false;
        }
        out = makeNopN(len);
        return true;
      case InsnKind::MovImm:  out = makeMovImm(dst, imm); return true;
      case InsnKind::MovReg:  out = makeMovReg(dst, src); return true;
      case InsnKind::Load:    out = makeLoad(dst, src, disp); return true;
      case InsnKind::Store:   out = makeStore(dst, disp, src); return true;
      case InsnKind::Add:     out = makeAdd(dst, src); return true;
      case InsnKind::AddImm:
        out = makeAddImm(dst, static_cast<i32>(imm));
        return true;
      case InsnKind::Sub:     out = makeSub(dst, src); return true;
      case InsnKind::SubImm:
        out = makeSubImm(dst, static_cast<i32>(imm));
        return true;
      case InsnKind::Xor:     out = makeXor(dst, src); return true;
      case InsnKind::And:     out = makeAnd(dst, src); return true;
      case InsnKind::AndImm:
        out = makeAndImm(dst, static_cast<u32>(imm));
        return true;
      case InsnKind::Shl:
        out = makeShl(dst, static_cast<u8>(imm & 63));
        return true;
      case InsnKind::Shr:
        out = makeShr(dst, static_cast<u8>(imm & 63));
        return true;
      case InsnKind::CmpImm:
        out = makeCmpImm(dst, static_cast<i32>(imm));
        return true;
      case InsnKind::CmpReg:  out = makeCmpReg(dst, src); return true;
      case InsnKind::JmpRel:  out = makeJmpRel(disp); return true;
      case InsnKind::JccRel:  out = makeJccRel(cond, disp); return true;
      case InsnKind::JmpInd:  out = makeJmpInd(src); return true;
      case InsnKind::CallRel: out = makeCallRel(disp); return true;
      case InsnKind::CallInd: out = makeCallInd(src); return true;
      case InsnKind::Ret:     out = makeRet(); return true;
      case InsnKind::Push:    out = makePush(src); return true;
      case InsnKind::Pop:     out = makePop(dst); return true;
      case InsnKind::Syscall: out = makeSyscall(); return true;
      case InsnKind::Sysret:  out = makeSysret(); return true;
      case InsnKind::Lfence:  out = makeLfence(); return true;
      case InsnKind::Mfence:  out = makeMfence(); return true;
      case InsnKind::Clflush: out = makeClflush(src); return true;
      case InsnKind::Rdtsc:   out = makeRdtsc(); return true;
      case InsnKind::Rdpmc:   out = makeRdpmc(); return true;
      case InsnKind::Hlt:     out = makeHlt(); return true;
      case InsnKind::Ud2:     out = makeUd2(); return true;
      case InsnKind::Invalid: break;
    }
    *error = "unknown instruction kind";
    return false;
}

void
formatStmt(std::ostream& out, const Stmt& stmt)
{
    out << "stmt " << insnKindName(stmt.insn.kind);
    FieldSpec spec = specFor(stmt.insn.kind);
    if (spec.len)
        out << " len=" << static_cast<int>(stmt.insn.length);
    if (spec.dst)
        out << " dst=" << regName(stmt.insn.dst);
    if (spec.src)
        out << " src=" << regName(stmt.insn.src);
    if (spec.cond)
        out << " cond=" << condName(stmt.insn.cond);
    // Targeted statements aim at an index; the disp/imm the target
    // resolves to is recomputed at assembly and not persisted.
    if (stmt.target >= 0) {
        out << " target=" << stmt.target;
    } else {
        if (spec.disp)
            out << " disp=" << stmt.insn.disp;
        if (spec.imm)
            out << " imm=0x" << std::hex << stmt.insn.imm << std::dec;
    }
    out << "\n";
}

bool
parseStmt(const std::string& line, Stmt& out, std::string* error)
{
    std::istringstream in(line);
    std::string keyword;
    std::string kind_name;
    in >> keyword >> kind_name;
    InsnKind kind = insnKindFromName(kind_name);
    if (kind == InsnKind::Invalid) {
        *error = "unknown stmt kind \"" + kind_name + "\"";
        return false;
    }

    u8 len = 0;
    u8 dst = 0;
    u8 src = 0;
    Cond cond = Cond::Eq;
    i32 disp = 0;
    u64 imm = 0;
    i32 target = -1;

    std::string token;
    while (in >> token) {
        std::size_t eq = token.find('=');
        if (eq == std::string::npos) {
            *error = "malformed stmt field \"" + token + "\"";
            return false;
        }
        std::string key = token.substr(0, eq);
        std::string value = token.substr(eq + 1);
        if (key == "len") {
            len = static_cast<u8>(std::strtoul(value.c_str(), nullptr, 0));
        } else if (key == "dst" || key == "src") {
            u8 reg = regFromName(value);
            if (reg >= kNumRegs) {
                *error = "unknown register \"" + value + "\"";
                return false;
            }
            (key == "dst" ? dst : src) = reg;
        } else if (key == "cond") {
            if (!condFromName(value, cond)) {
                *error = "unknown cond \"" + value + "\"";
                return false;
            }
        } else if (key == "disp") {
            disp = static_cast<i32>(std::strtol(value.c_str(), nullptr, 0));
        } else if (key == "imm") {
            imm = std::strtoull(value.c_str(), nullptr, 0);
        } else if (key == "target") {
            target = static_cast<i32>(std::strtol(value.c_str(), nullptr, 0));
            if (target < 0) {
                *error = "negative stmt target";
                return false;
            }
        } else {
            *error = "unknown stmt field \"" + key + "\"";
            return false;
        }
    }

    if (!buildInsn(kind, len, dst, src, cond, disp, imm, out.insn, error))
        return false;
    out.target = target;
    return true;
}

} // namespace

std::string
formatEntry(const CorpusEntry& entry)
{
    std::ostringstream out;
    out << kCorpusMagic << "\n";
    out << "seed 0x" << std::hex << entry.program.seed << std::dec << "\n";
    out << "uarch " << entry.uarch << "\n";
    out << "oracle "
        << (entry.oracle == Oracle::kCount ? "none"
                                           : oracleName(entry.oracle))
        << "\n";
    if (!entry.note.empty())
        out << "note " << entry.note << "\n";
    const GenOptions& gen = entry.program.options;
    out << "gen code_va=0x" << std::hex << gen.codeVa << " data_va=0x"
        << gen.dataVa << " data_bytes=0x" << gen.dataBytes << std::dec
        << "\n";
    for (const Stmt& stmt : entry.program.stmts)
        formatStmt(out, stmt);
    out << "end\n";
    return out.str();
}

bool
parseEntry(const std::string& text, CorpusEntry& out, std::string* error)
{
    std::string scratch;
    if (error == nullptr)
        error = &scratch;
    out = CorpusEntry{};

    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) || line != kCorpusMagic) {
        *error = "missing corpus magic \"" +
                 std::string(kCorpusMagic) + "\"";
        return false;
    }

    bool saw_end = false;
    std::size_t lineno = 1;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        if (saw_end) {
            *error = "trailing content after \"end\"";
            return false;
        }
        std::istringstream fields(line);
        std::string key;
        fields >> key;
        if (key == "end") {
            saw_end = true;
        } else if (key == "seed") {
            std::string value;
            fields >> value;
            out.program.seed = std::strtoull(value.c_str(), nullptr, 0);
        } else if (key == "uarch") {
            fields >> out.uarch;
        } else if (key == "oracle") {
            std::string value;
            fields >> value;
            if (value != "none") {
                out.oracle = oracleFromName(value);
                if (out.oracle == Oracle::kCount) {
                    *error = "unknown oracle \"" + value + "\"";
                    return false;
                }
            }
        } else if (key == "note") {
            out.note = line.substr(5);
        } else if (key == "gen") {
            std::string token;
            while (fields >> token) {
                std::size_t eq = token.find('=');
                if (eq == std::string::npos)
                    continue;
                std::string name = token.substr(0, eq);
                u64 value = std::strtoull(token.c_str() + eq + 1,
                                          nullptr, 0);
                if (name == "code_va")
                    out.program.options.codeVa = value;
                else if (name == "data_va")
                    out.program.options.dataVa = value;
                else if (name == "data_bytes")
                    out.program.options.dataBytes = value;
            }
        } else if (key == "stmt") {
            Stmt stmt;
            if (!parseStmt(line, stmt, error)) {
                *error += " (line " + std::to_string(lineno) + ")";
                return false;
            }
            out.program.stmts.push_back(stmt);
        } else {
            *error = "unknown line \"" + key + "\" (line " +
                     std::to_string(lineno) + ")";
            return false;
        }
    }
    if (!saw_end) {
        *error = "truncated corpus entry (no \"end\")";
        return false;
    }
    if (out.program.stmts.empty()) {
        *error = "corpus entry has no statements";
        return false;
    }
    // Statement targets must stay inside the program.
    for (const Stmt& stmt : out.program.stmts) {
        if (stmt.target >= 0 &&
            static_cast<std::size_t>(stmt.target) >=
                out.program.stmts.size()) {
            *error = "stmt target out of range";
            return false;
        }
    }
    return true;
}

bool
writeEntryFile(const std::string& path, const CorpusEntry& entry,
               std::string* error)
{
    std::string text = formatEntry(entry);

    // Refuse to write anything that does not round-trip: a corpus file
    // that parses differently than it was written is a useless repro.
    CorpusEntry parsed;
    if (!parseEntry(text, parsed, error))
        return false;
    if (formatEntry(parsed) != text ||
        parsed.program.assemble() != entry.program.assemble()) {
        if (error != nullptr)
            *error = "corpus entry does not round-trip";
        return false;
    }

    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        if (error != nullptr)
            *error = "cannot write " + path;
        return false;
    }
    out << text;
    out.flush();
    if (!out) {
        if (error != nullptr)
            *error = "short write to " + path;
        return false;
    }
    return true;
}

bool
readEntryFile(const std::string& path, CorpusEntry& out,
              std::string* error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr)
            *error = "cannot read " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (!parseEntry(buffer.str(), out, error)) {
        if (error != nullptr)
            *error = path + ": " + *error;
        return false;
    }
    return true;
}

std::vector<std::string>
listCorpus(const std::string& dir)
{
    std::vector<std::string> paths;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec)
        return paths;
    for (const auto& dirent : it) {
        if (dirent.path().extension() == ".phz")
            paths.push_back(dirent.path().string());
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

} // namespace phantom::fuzz
