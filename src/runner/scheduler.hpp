/**
 * @file
 * Work-stealing trial scheduler.
 *
 * Experiment campaigns consist of many INDEPENDENT trials — each trial
 * builds its own Machine/Testbed from its own seed, so trials share no
 * mutable simulator state and can run on any thread in any order. The
 * scheduler distributes trial indices across worker deques (contiguous
 * chunks for locality), lets idle workers steal from the tail of busy
 * workers' deques, and writes each result into a slot indexed by trial
 * number. Aggregation therefore sees results in trial order no matter
 * how the trials were scheduled: same seed -> bit-identical statistics
 * for any thread count.
 *
 * PHANTOM_JOBS=N selects the worker count (default: hardware
 * concurrency). PHANTOM_JOBS=1 runs every trial inline on the calling
 * thread — the exact serial path the benches had before the runner.
 */

#ifndef PHANTOM_RUNNER_SCHEDULER_HPP
#define PHANTOM_RUNNER_SCHEDULER_HPP

#include "obs/metrics.hpp"
#include "sim/types.hpp"

#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace phantom::runner {

/** max(1, std::thread::hardware_concurrency()). */
unsigned hardwareJobs();

/** Worker count from PHANTOM_JOBS, defaulting to hardwareJobs(). */
unsigned jobsFromEnv();

/**
 * Scheduling observability, accumulated across every run on one
 * scheduler. Everything here is measured (wall-clock and scheduling
 * order dependent) — it belongs in the "measured" metrics section, never
 * the "deterministic" one.
 */
struct SchedulerStats
{
    u64 trials = 0;                    ///< trials executed
    u64 steals = 0;                    ///< trials taken from another worker
    std::vector<u64> perWorkerTrials;  ///< trials executed per worker index
    obs::Histogram trialMicros;        ///< per-trial wall time (µs)

    /** max/mean of perWorkerTrials: 1.0 = perfectly balanced shards. */
    double imbalance() const;
};

class TrialScheduler
{
  public:
    /** @p jobs worker threads; 0 means "use jobsFromEnv()". */
    explicit TrialScheduler(unsigned jobs = 0);

    unsigned jobs() const { return jobs_; }

    /**
     * Execute @p fn(trial) for every trial in [0, count) and return the
     * results in trial order. The first exception thrown by any trial
     * is rethrown here after all workers have stopped.
     */
    template <typename Fn>
    auto
    run(u64 count, Fn&& fn) -> std::vector<decltype(fn(u64{}))>
    {
        return collect<decltype(fn(u64{}))>(
            count, [&](u64 trial, unsigned) { return fn(trial); });
    }

    /**
     * As run(), but @p fn also receives the worker index in
     * [0, jobs()), for code that accumulates into per-worker shards
     * (see ShardStats).
     */
    template <typename Fn>
    auto
    runSharded(u64 count, Fn&& fn)
        -> std::vector<decltype(fn(u64{}, unsigned{}))>
    {
        return collect<decltype(fn(u64{}, unsigned{}))>(
            count, std::forward<Fn>(fn));
    }

    /** Execute @p count trials for side effects only. */
    void
    forEach(u64 count, const std::function<void(u64, unsigned)>& fn)
    {
        runTasks(count, fn);
    }

    /**
     * Total seconds workers spent inside trials, summed across workers
     * and accumulated over every run on this scheduler. busySeconds /
     * wall-clock approximates the parallel speedup.
     */
    double busySeconds() const { return busySeconds_; }

    /** Trials/steals/imbalance/per-trial timing since construction. */
    const SchedulerStats& stats() const { return stats_; }

    /**
     * Install hooks run on each worker thread before its first trial and
     * after its last one (the serial path runs both around the loop as
     * worker 0). Campaign code uses these to install per-shard
     * thread-local state — notably obs::setActiveTraceSink(). Hooks
     * apply to subsequent run*() calls; pass nullptrs to clear.
     */
    void
    setWorkerHooks(std::function<void(unsigned)> setup,
                   std::function<void(unsigned)> teardown)
    {
        workerSetup_ = std::move(setup);
        workerTeardown_ = std::move(teardown);
    }

  private:
    /**
     * Run the trials and gather results in trial order. bool results
     * are staged in a byte vector: std::vector<bool> packs bits, so
     * concurrent writes to distinct trial indices would race on the
     * shared word.
     */
    template <typename Result, typename Fn>
    std::vector<Result>
    collect(u64 count, Fn&& fn)
    {
        if constexpr (std::is_same_v<Result, bool>) {
            std::vector<unsigned char> slots(count);
            runTasks(count, [&](u64 trial, unsigned worker) {
                slots[trial] = fn(trial, worker) ? 1 : 0;
            });
            return std::vector<bool>(slots.begin(), slots.end());
        } else {
            std::vector<Result> results(count);
            runTasks(count, [&](u64 trial, unsigned worker) {
                results[trial] = fn(trial, worker);
            });
            return results;
        }
    }

    /** Run @p count tasks across the pool; rethrows the first failure. */
    void runTasks(u64 count, const std::function<void(u64, unsigned)>& task);

    unsigned jobs_;
    double busySeconds_ = 0.0;
    SchedulerStats stats_;
    std::function<void(unsigned)> workerSetup_;
    std::function<void(unsigned)> workerTeardown_;
};

} // namespace phantom::runner

#endif // PHANTOM_RUNNER_SCHEDULER_HPP
