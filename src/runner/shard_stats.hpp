/**
 * @file
 * Per-worker sample accumulation with deterministic merge.
 *
 * Each scheduler worker owns one ShardStats and records samples into it
 * without synchronization. At join time the shards are merged into
 * ordinary SampleSets, ordered by trial index — NOT by worker or
 * completion order — so the merged statistics are bit-identical
 * regardless of how trials were scheduled.
 */

#ifndef PHANTOM_RUNNER_SHARD_STATS_HPP
#define PHANTOM_RUNNER_SHARD_STATS_HPP

#include "sim/stats.hpp"
#include "sim/types.hpp"

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace phantom::runner {

/**
 * One worker's private sample log. Append-only and unsynchronized.
 * Every sample is tagged with the trial index that produced it; since
 * a trial runs on exactly one worker, sorting the concatenated shards
 * by (metric, trial) with a stable sort yields a total order that is
 * independent of the schedule.
 */
class ShardStats
{
  public:
    struct Entry
    {
        std::string metric;
        u64 trial;    ///< trial index that produced the sample
        double value;
    };

    /** Record @p value for @p metric, produced by trial @p trial. */
    void
    add(std::string_view metric, u64 trial, double value)
    {
        entries_.push_back(Entry{std::string(metric), trial, value});
    }

    const std::vector<Entry>& entries() const { return entries_; }
    bool empty() const { return entries_.empty(); }

  private:
    std::vector<Entry> entries_;
};

/**
 * Merge worker shards into one SampleSet per metric. Samples are
 * ordered by trial index (insertion order within a trial), so the
 * result depends only on what the trials computed, not on thread count
 * or completion order.
 */
std::map<std::string, SampleSet>
mergeShards(const std::vector<ShardStats>& shards);

} // namespace phantom::runner

#endif // PHANTOM_RUNNER_SHARD_STATS_HPP
