/**
 * @file
 * Shared PHANTOM_* environment parsing.
 *
 * Two policies, one parser:
 *
 *  - envU64Or(): tolerant — malformed values warn on stderr and fall
 *    back. For knobs where a typo should not kill a long campaign
 *    (PHANTOM_RUNS, PHANTOM_TRACE_EVENTS, ...).
 *  - envU64Strict(): loud — malformed values terminate with exit code
 *    64 naming the offending string. For variables that select *which*
 *    campaign runs or how the daemon binds (PHANTOM_SEED, PHANTOM_JOBS,
 *    PHANTOM_SERVE_PORT, PHANTOM_SERVE_QUEUE): silently falling back
 *    would run the wrong experiment or serve on the wrong port, which
 *    is strictly worse than failing.
 *
 * Header-only so socket-free tools can use it without linking the
 * runner.
 */

#ifndef PHANTOM_RUNNER_ENV_HPP
#define PHANTOM_RUNNER_ENV_HPP

#include "sim/types.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace phantom::runner {

/**
 * Parse @p text as a decimal u64 into @p out. Rejects everything
 * strtoull quietly accepts: empty strings, trailing garbage ("10x"),
 * negative values (which would wrap), and out-of-range magnitudes.
 */
inline bool
parseEnvU64(const char* text, u64& out)
{
    if (text == nullptr || *text == '\0')
        return false;
    const char* first = text;
    while (std::isspace(static_cast<unsigned char>(*first)))
        ++first;
    char* end = nullptr;
    errno = 0;
    u64 v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || *first == '-')
        return false;
    out = v;
    return true;
}

/** @p name from the environment as a decimal u64; malformed values
 *  warn on stderr and yield @p fallback. */
inline u64
envU64Or(const char* name, u64 fallback)
{
    const char* env = std::getenv(name);
    if (env == nullptr)
        return fallback;
    u64 v = 0;
    if (!parseEnvU64(env, v)) {
        std::fprintf(stderr,
                     "phantom: ignoring malformed %s=\"%s\" (using %llu)\n",
                     name, env,
                     static_cast<unsigned long long>(fallback));
        return fallback;
    }
    return v;
}

/**
 * As envU64Or(), but a malformed value is a hard error: print the
 * offending string and exit 64 (the tools' usage-error code). @p lo /
 * @p hi bound the accepted range inclusively; values outside it are
 * rejected the same way.
 */
inline u64
envU64Strict(const char* name, u64 fallback, u64 lo = 0,
             u64 hi = ~u64{0})
{
    const char* env = std::getenv(name);
    if (env == nullptr || *env == '\0')
        return fallback;
    u64 v = 0;
    if (!parseEnvU64(env, v) || v < lo || v > hi) {
        std::fprintf(stderr,
                     "phantom: invalid %s=\"%s\" (expected an integer in "
                     "[%llu, %llu])\n",
                     name, env, static_cast<unsigned long long>(lo),
                     static_cast<unsigned long long>(hi));
        std::exit(64);
    }
    return v;
}

/** True when @p name is set to a non-empty value. */
inline bool
envPresent(const char* name)
{
    const char* env = std::getenv(name);
    return env != nullptr && *env != '\0';
}

/** @p name from the environment as a string; unset or empty yields
 *  @p fallback. Path-valued knobs (PHANTOM_SERVE_FLIGHT_DIR,
 *  PHANTOM_SERVE_LOG) have no malformed-value class, so there is no
 *  strict variant. */
inline std::string
envStringOr(const char* name, const std::string& fallback = {})
{
    const char* env = std::getenv(name);
    if (env == nullptr || *env == '\0')
        return fallback;
    return env;
}

} // namespace phantom::runner

#endif // PHANTOM_RUNNER_ENV_HPP
