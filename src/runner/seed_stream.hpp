/**
 * @file
 * Deterministic per-trial seed derivation for experiment campaigns.
 *
 * A campaign has ONE user-visible seed (PHANTOM_SEED). Every trial the
 * runner schedules derives its own independent seed from that campaign
 * seed and the trial index via SplitMix64, so the set of seeds — and
 * therefore every simulation result — is bit-identical no matter how
 * many worker threads execute the campaign or in which order the
 * trials complete.
 */

#ifndef PHANTOM_RUNNER_SEED_STREAM_HPP
#define PHANTOM_RUNNER_SEED_STREAM_HPP

#include "sim/types.hpp"

#include <string_view>

namespace phantom::runner {

/** SplitMix64 output function (Steele et al.); a bijection on u64. */
inline u64
splitmix64(u64 z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** FNV-1a 64-bit hash, used to fold experiment names into substreams. */
inline u64
fnv1a(std::string_view s)
{
    u64 h = 0xcbf29ce484222325ull;
    for (char c : s) {
        h ^= static_cast<u8>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * A stream of per-trial seeds rooted at a campaign seed.
 *
 * trialSeed(i) = splitmix64(base + (i + 1) * gamma) with an odd gamma,
 * so the pre-mix inputs are pairwise distinct for distinct indices and
 * (splitmix64 being a bijection) the derived seeds are too. Pure 64-bit
 * integer arithmetic: identical on every platform and compiler.
 */
class SeedStream
{
  public:
    explicit SeedStream(u64 campaign_seed) : base_(campaign_seed) {}

    /** Seed for trial @p index; distinct per index, stable per stream. */
    u64
    trialSeed(u64 index) const
    {
        return splitmix64(base_ + (index + 1) * kGamma);
    }

    /**
     * Independent stream for a named experiment within the same
     * campaign, so two experiments never share trial seeds even at
     * equal indices.
     */
    SeedStream
    substream(std::string_view name) const
    {
        return SeedStream(splitmix64(base_ ^ fnv1a(name)));
    }

    u64 base() const { return base_; }

  private:
    static constexpr u64 kGamma = 0x9e3779b97f4a7c15ull;   // odd

    u64 base_;
};

} // namespace phantom::runner

#endif // PHANTOM_RUNNER_SEED_STREAM_HPP
