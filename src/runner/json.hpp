/**
 * @file
 * Minimal JSON document model, serializer and parser.
 *
 * Just enough JSON for the result-export pipeline: the ResultSink
 * serializes campaign results through JsonValue, and the bench_smoke
 * tooling parses the emitted files back to validate them. No external
 * dependencies; numbers round-trip through %.17g so aggregated
 * statistics compare bit-identically across runs.
 */

#ifndef PHANTOM_RUNNER_JSON_HPP
#define PHANTOM_RUNNER_JSON_HPP

#include "sim/types.hpp"

#include <map>
#include <string>
#include <vector>

namespace phantom::runner {

/** A JSON document node. Object keys are kept sorted (std::map), which
 *  makes serialization — and therefore file diffs — deterministic. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() : kind_(Kind::Null) {}
    JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    JsonValue(double d) : kind_(Kind::Number), number_(d) {}
    JsonValue(u64 n)
        : kind_(Kind::Number), number_(static_cast<double>(n))
    {
    }
    JsonValue(int n) : kind_(Kind::Number), number_(n) {}
    JsonValue(const char* s) : kind_(Kind::String), string_(s) {}
    JsonValue(std::string s) : kind_(Kind::String), string_(std::move(s)) {}

    static JsonValue array() { JsonValue v; v.kind_ = Kind::Array; return v; }
    static JsonValue object() { JsonValue v; v.kind_ = Kind::Object; return v; }

    Kind kind() const { return kind_; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    bool boolean() const { return bool_; }
    double number() const { return number_; }
    const std::string& string() const { return string_; }
    const std::vector<JsonValue>& items() const { return items_; }
    const std::map<std::string, JsonValue>& members() const
    {
        return members_;
    }

    /** Append to an array (converts a Null node into an array). */
    void push(JsonValue v);

    /** Set an object member (converts a Null node into an object). */
    JsonValue& set(const std::string& key, JsonValue v);

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue* find(const std::string& key) const;

    /** Walk a dotted path ("a.b.c"); nullptr when any hop is missing. */
    const JsonValue* findPath(const std::string& dotted_path) const;

    /** Structural equality (numbers compared exactly). */
    bool operator==(const JsonValue& other) const;
    bool operator!=(const JsonValue& other) const
    {
        return !(*this == other);
    }

    /** Serialize; @p indent > 0 pretty-prints. */
    std::string dump(int indent = 0) const;

  private:
    void dumpTo(std::string& out, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::map<std::string, JsonValue> members_;
};

/**
 * Parse @p text as a JSON document. Returns false and fills @p error
 * (with offset context) on malformed input.
 */
bool parseJson(const std::string& text, JsonValue& out, std::string* error);

} // namespace phantom::runner

#endif // PHANTOM_RUNNER_JSON_HPP
