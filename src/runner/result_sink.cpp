#include "runner/result_sink.hpp"

#include <cstdio>
#include <cstdlib>

namespace phantom::runner {

void
ResultSink::Experiment::addSample(const std::string& metric, double value)
{
    metrics_[metric].add(value);
}

void
ResultSink::Experiment::addSamples(const std::string& metric,
                                   const SampleSet& set)
{
    SampleSet& dst = metrics_[metric];
    for (double x : set.samples())
        dst.add(x);
}

void
ResultSink::Experiment::setScalar(const std::string& key, double value)
{
    scalars_[key] = value;
}

void
ResultSink::Experiment::setLabel(const std::string& key,
                                 const std::string& value)
{
    labels_[key] = value;
}

ResultSink::ResultSink(std::string bench_name, u64 campaign_seed,
                       unsigned jobs)
    : benchName_(std::move(bench_name)),
      campaignSeed_(campaign_seed),
      jobs_(jobs),
      start_(std::chrono::steady_clock::now())
{
}

ResultSink::Experiment&
ResultSink::experiment(const std::string& name)
{
    return experiments_[name];
}

namespace {

JsonValue
metricToJson(const SampleSet& set)
{
    JsonValue m = JsonValue::object();
    m.set("count", JsonValue(static_cast<u64>(set.count())));
    m.set("mean", JsonValue(set.mean()));
    m.set("median", JsonValue(set.median()));
    m.set("stddev", JsonValue(set.stddev()));
    m.set("p10", JsonValue(set.quantile(0.10)));
    m.set("p90", JsonValue(set.quantile(0.90)));
    JsonValue samples = JsonValue::array();
    for (double x : set.samples())
        samples.push(JsonValue(x));
    m.set("samples", std::move(samples));
    return m;
}

} // namespace

JsonValue
ResultSink::toJson() const
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", JsonValue(kResultSchemaV2));
    doc.set("bench", JsonValue(benchName_));
    doc.set("campaign_seed", JsonValue(campaignSeed_));
    doc.set("jobs", JsonValue(static_cast<u64>(jobs_)));

    JsonValue experiments = JsonValue::object();
    for (const auto& [name, experiment] : experiments_) {
        JsonValue e = JsonValue::object();
        if (!experiment.metrics_.empty()) {
            JsonValue metrics = JsonValue::object();
            for (const auto& [metric, set] : experiment.metrics_)
                metrics.set(metric, metricToJson(set));
            e.set("metrics", std::move(metrics));
        }
        if (!experiment.scalars_.empty()) {
            JsonValue scalars = JsonValue::object();
            for (const auto& [key, value] : experiment.scalars_)
                scalars.set(key, JsonValue(value));
            e.set("scalars", std::move(scalars));
        }
        if (!experiment.labels_.empty()) {
            JsonValue labels = JsonValue::object();
            for (const auto& [key, value] : experiment.labels_)
                labels.set(key, JsonValue(value));
            e.set("labels", std::move(labels));
        }
        experiments.set(name, std::move(e));
    }
    doc.set("experiments", std::move(experiments));

    if (hasMetrics_)
        doc.set("metrics", metrics_);

    if (hasProfile_)
        doc.set("profile", profile_);

    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    JsonValue timing = JsonValue::object();
    timing.set("wall_seconds", JsonValue(wall));
    timing.set("busy_seconds", JsonValue(busySeconds_));
    timing.set("speedup",
               JsonValue(wall > 0.0 ? busySeconds_ / wall : 0.0));
    doc.set("timing", std::move(timing));
    return doc;
}

std::vector<std::string>
ResultSink::metricPaths() const
{
    // experiments_ and the per-experiment maps are std::map, so walking
    // them yields the paths already sorted.
    std::vector<std::string> paths;
    for (const auto& [name, experiment] : experiments_) {
        const std::string base = "experiments." + name;
        for (const auto& [key, value] : experiment.labels_) {
            (void)value;
            paths.push_back(base + ".labels." + key);
        }
        for (const auto& [metric, set] : experiment.metrics_) {
            (void)set;
            paths.push_back(base + ".metrics." + metric);
        }
        for (const auto& [key, value] : experiment.scalars_) {
            (void)value;
            paths.push_back(base + ".scalars." + key);
        }
    }
    return paths;
}

std::string
ResultSink::defaultPath() const
{
    const char* dir = std::getenv("PHANTOM_JSON_DIR");
    std::string prefix = (dir != nullptr && *dir != '\0') ? dir : ".";
    if (prefix.back() != '/')
        prefix.push_back('/');
    return prefix + benchName_ + ".json";
}

std::string
ResultSink::writeJson(const std::string& path) const
{
    std::string target = path.empty() ? defaultPath() : path;
    std::string text = toJson().dump(2);
    text.push_back('\n');

    std::FILE* f = std::fopen(target.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr,
                     "phantom: cannot open %s for JSON results\n",
                     target.c_str());
        return "";
    }
    std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = written == text.size() && std::fclose(f) == 0;
    if (!ok) {
        std::fprintf(stderr,
                     "phantom: short write of JSON results to %s\n",
                     target.c_str());
        return "";
    }
    return target;
}

} // namespace phantom::runner
