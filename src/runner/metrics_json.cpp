#include "runner/metrics_json.hpp"

namespace phantom::runner {

JsonValue
histogramToJson(const obs::Histogram& histogram)
{
    JsonValue h = JsonValue::object();
    h.set("count", JsonValue(histogram.count()));
    h.set("sum", JsonValue(histogram.sum()));
    h.set("mean", JsonValue(histogram.mean()));
    JsonValue buckets = JsonValue::array();
    for (int i = 0; i < obs::Histogram::kBuckets; ++i) {
        u64 n = histogram.buckets()[static_cast<std::size_t>(i)];
        if (n == 0)
            continue;
        JsonValue b = JsonValue::object();
        b.set("lo", JsonValue(obs::Histogram::bucketLo(i)));
        b.set("count", JsonValue(n));
        buckets.push(std::move(b));
    }
    h.set("buckets", std::move(buckets));
    return h;
}

JsonValue
metricsToJson(const obs::MetricsRegistry& registry)
{
    JsonValue doc = JsonValue::object();
    if (!registry.counters().empty()) {
        JsonValue counters = JsonValue::object();
        for (const auto& [name, counter] : registry.counters())
            counters.set(name, JsonValue(counter.value()));
        doc.set("counters", std::move(counters));
    }
    if (!registry.gauges().empty()) {
        JsonValue gauges = JsonValue::object();
        for (const auto& [name, gauge] : registry.gauges())
            gauges.set(name, JsonValue(gauge.value()));
        doc.set("gauges", std::move(gauges));
    }
    if (!registry.histograms().empty()) {
        JsonValue histograms = JsonValue::object();
        for (const auto& [name, histogram] : registry.histograms())
            histograms.set(name, histogramToJson(histogram));
        doc.set("histograms", std::move(histograms));
    }
    return doc;
}

} // namespace phantom::runner
