/**
 * @file
 * JSON serialization for obs::prof::Report — the "profile" section of
 * bench result documents and the body of GET /profilez.
 *
 * Lives in the runner (not src/obs) for the same reason as
 * metrics_json: the obs library stays free of the JSON document model.
 */

#ifndef PHANTOM_RUNNER_PROF_JSON_HPP
#define PHANTOM_RUNNER_PROF_JSON_HPP

#include "obs/prof.hpp"
#include "runner/json.hpp"

namespace phantom::runner {

/**
 * Serialize @p report as
 *
 *   {
 *     "schema": "phantom-host-profile/v1",
 *     "enabled": true, "clock": "tsc"|"steady",
 *     "wall_ns": <caller-measured wall clock of the profiled span>,
 *     "threads": <shards that recorded entries>,
 *     "overhead": { "events", "timed_events", "ns_per_timed_event",
 *                   "ns_per_counted_event", "estimated_ns" },
 *     "phases": { "<name>": { "count", "timed_count", "total_ns",
 *                             "self_ns", "sample_period",
 *                             "hist": { "count", "sum", "mean",
 *                                       "buckets": [...] } } },
 *     "stacks": [ { "stack", "count", "total_ns", "self_ns" } ... ]
 *   }
 *
 * total_ns/self_ns are raw nanoseconds over *timed* entries (see
 * prof.hpp): per phase self_ns <= total_ns, and the sum of self_ns
 * over all phases is <= wall_ns * threads — json_check
 * --profile-schema enforces both. Phase names sort (std::map), so two
 * campaigns with the same work produce the same phase ordering
 * regardless of scheduler interleaving.
 */
JsonValue profileToJson(const obs::prof::Report& report, u64 wall_ns);

/**
 * Locate the host-profile document inside @p doc: @p doc itself when
 * it carries kProfileSchema, else its "profile" member (the shape of
 * bench results and GET /profilez bodies). nullptr when absent.
 */
const JsonValue* findProfile(const JsonValue& doc);

/**
 * Rebuild a Report from profileToJson() output — what tools/prof_report
 * uses to regenerate folded stacks and traces from a results file.
 * Phase duration histograms are not reconstructed (the formatters do
 * not consume them); everything else round-trips exactly. Returns
 * false (with @p error set) on a malformed document.
 */
bool profileFromJson(const JsonValue& profile, obs::prof::Report& out,
                     std::string* error);

} // namespace phantom::runner

#endif // PHANTOM_RUNNER_PROF_JSON_HPP
