#include "runner/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace phantom::runner {

void
JsonValue::push(JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    items_.push_back(std::move(v));
}

JsonValue&
JsonValue::set(const std::string& key, JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    return members_[key] = std::move(v);
}

const JsonValue*
JsonValue::find(const std::string& key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    auto it = members_.find(key);
    return it == members_.end() ? nullptr : &it->second;
}

const JsonValue*
JsonValue::findPath(const std::string& dotted_path) const
{
    const JsonValue* node = this;
    std::size_t start = 0;
    while (node != nullptr && start <= dotted_path.size()) {
        std::size_t dot = dotted_path.find('.', start);
        if (dot == std::string::npos)
            dot = dotted_path.size();
        node = node->find(dotted_path.substr(start, dot - start));
        start = dot + 1;
    }
    return node;
}

bool
JsonValue::operator==(const JsonValue& other) const
{
    if (kind_ != other.kind_)
        return false;
    switch (kind_) {
      case Kind::Null:   return true;
      case Kind::Bool:   return bool_ == other.bool_;
      case Kind::Number: return number_ == other.number_;
      case Kind::String: return string_ == other.string_;
      case Kind::Array:  return items_ == other.items_;
      case Kind::Object: return members_ == other.members_;
    }
    return false;
}

namespace {

void
escapeTo(std::string& out, const std::string& s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
numberTo(std::string& out, double d)
{
    if (!std::isfinite(d)) {
        out += "null";   // JSON has no inf/nan
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
}

void
newlineIndent(std::string& out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

} // namespace

void
JsonValue::dumpTo(std::string& out, int indent, int depth) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Number:
        numberTo(out, number_);
        break;
      case Kind::String:
        escapeTo(out, string_);
        break;
      case Kind::Array: {
        out.push_back('[');
        bool first = true;
        for (const auto& item : items_) {
            if (!first)
                out.push_back(',');
            first = false;
            newlineIndent(out, indent, depth + 1);
            item.dumpTo(out, indent, depth + 1);
        }
        if (!items_.empty())
            newlineIndent(out, indent, depth);
        out.push_back(']');
        break;
      }
      case Kind::Object: {
        out.push_back('{');
        bool first = true;
        for (const auto& [key, value] : members_) {
            if (!first)
                out.push_back(',');
            first = false;
            newlineIndent(out, indent, depth + 1);
            escapeTo(out, key);
            out += indent > 0 ? ": " : ":";
            value.dumpTo(out, indent, depth + 1);
        }
        if (!members_.empty())
            newlineIndent(out, indent, depth);
        out.push_back('}');
        break;
      }
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// ---- parser -------------------------------------------------------------

namespace {

class Parser
{
  public:
    Parser(const std::string& text, std::string* error)
        : text_(text), error_(error)
    {
    }

    bool
    parseDocument(JsonValue& out)
    {
        skipSpace();
        if (!parseValue(out))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool
    fail(const char* what)
    {
        if (error_ != nullptr) {
            *error_ = std::string(what) + " at offset " +
                      std::to_string(pos_);
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char* word)
    {
        std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseValue(JsonValue& out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case '{':
          case '[': {
            // parseValue/parseObject/parseArray recurse per nesting
            // level; bound it so hostile input can't overflow the stack.
            if (depth_ >= kMaxDepth)
                return fail("nesting too deep");
            ++depth_;
            bool ok = c == '{' ? parseObject(out) : parseArray(out);
            --depth_;
            return ok;
          }
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = JsonValue(std::move(s));
            return true;
          }
          case 't':
            if (literal("true")) { out = JsonValue(true); return true; }
            return fail("bad literal");
          case 'f':
            if (literal("false")) { out = JsonValue(false); return true; }
            return fail("bad literal");
          case 'n':
            if (literal("null")) { out = JsonValue(); return true; }
            return fail("bad literal");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue& out)
    {
        ++pos_;   // '{'
        out = JsonValue::object();
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipSpace();
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipSpace();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.set(key, std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue& out)
    {
        ++pos_;   // '['
        out = JsonValue::array();
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipSpace();
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.push(std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string& out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            char esc = text_[pos_++];
            switch (esc) {
              case '"':  out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/':  out.push_back('/'); break;
              case 'n':  out.push_back('\n'); break;
              case 't':  out.push_back('\t'); break;
              case 'r':  out.push_back('\r'); break;
              case 'b':  out.push_back('\b'); break;
              case 'f':  out.push_back('\f'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("bad \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // Only the escapes our writer emits (< 0x20) are
                // needed; encode anything in the BMP as UTF-8.
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(static_cast<char>(0xc0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    out.push_back(static_cast<char>(0xe0 | (code >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
              }
              default:
                return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue& out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected value");
        char* end = nullptr;
        double d = std::strtod(text_.c_str() + start, &end);
        if (end != text_.c_str() + pos_)
            return fail("malformed number");
        out = JsonValue(d);
        return true;
    }

    static constexpr int kMaxDepth = 256;

    const std::string& text_;
    std::string* error_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

bool
parseJson(const std::string& text, JsonValue& out, std::string* error)
{
    Parser parser(text, error);
    return parser.parseDocument(out);
}

} // namespace phantom::runner
