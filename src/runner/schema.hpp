/**
 * @file
 * Result-document schema markers.
 *
 * Lives apart from the ResultSink so JSON-only consumers (tools like
 * json_check and serve_client, the serve protocol layer) can check
 * schema strings against the phantom_json target without linking the
 * whole runner (scheduler, threads, result sink).
 */

#ifndef PHANTOM_RUNNER_SCHEMA_HPP
#define PHANTOM_RUNNER_SCHEMA_HPP

namespace phantom::runner {

/**
 * Bench-result schema markers. v2 documents are v1 plus the "metrics"
 * section made mandatory for wired benches and an optional
 * "baseline_of" provenance object on checked-in baselines (written by
 * tools/bench_report). Readers (json_check, obs/diff) accept both.
 */
inline constexpr const char* kResultSchemaV1 = "phantom-bench-results/v1";
inline constexpr const char* kResultSchemaV2 = "phantom-bench-results/v2";

/** Schema markers of the serving layer (src/serve). */
inline constexpr const char* kServeErrorSchema = "phantom-serve-error/v1";
inline constexpr const char* kServeHealthSchema = "phantom-serve-health/v1";
inline constexpr const char* kServeStatsSchema = "phantom-serve-stats/v1";
inline constexpr const char* kServeProfileSchema =
    "phantom-serve-profile/v1";

/** Schema of the host-time self-profile: the "profile" section of a
 *  bench result document and the body of GET /profilez (which wraps it
 *  under kServeProfileSchema). */
inline constexpr const char* kProfileSchema = "phantom-host-profile/v1";

/** Schema of a differential-fuzz campaign summary (tools/fuzz_campaign,
 *  validated by json_check --fuzz-schema). */
inline constexpr const char* kFuzzResultSchema = "phantom-fuzz-results/v1";

} // namespace phantom::runner

#endif // PHANTOM_RUNNER_SCHEMA_HPP
