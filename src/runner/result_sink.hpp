/**
 * @file
 * Structured result export for experiment campaigns.
 *
 * Every wired bench keeps printing its human-readable tables, and
 * additionally streams its results into a ResultSink which writes one
 * JSON file per bench (schema "phantom-bench-results/v2"):
 *
 *   {
 *     "schema": "phantom-bench-results/v2",
 *     "bench": "bench_table1",
 *     "campaign_seed": 1, "jobs": 8, "fast_mode": true,
 *     "experiments": {
 *       "<experiment>": {
 *         "metrics": { "<metric>": { "count", "mean", "median",
 *                                    "stddev", "p10", "p90",
 *                                    "samples": [...] } },
 *         "scalars": { "<key>": <number> },
 *         "labels":  { "<key>": "<string>" }
 *       }
 *     },
 *     "metrics": {
 *       "deterministic": { "counters", "gauges", "histograms" },
 *       "measured":      { "counters", "gauges", "histograms" },
 *       "manifest":      { "campaign_seed", "fast_mode", "uarch", ... }
 *     },
 *     "profile":  host-time self-profile (prof_json.hpp; only when
 *                 PHANTOM_PROF=1 — absent by default),
 *     "timing": { "wall_seconds", "busy_seconds", "speedup" }
 *   }
 *
 * Everything under "experiments", "metrics.deterministic" and
 * "metrics.manifest" is derived from seeded simulation only and is
 * bit-identical for a given campaign seed regardless of PHANTOM_JOBS
 * (the trace_check CTest enforces this); "metrics.measured" and
 * "timing" are measured and vary run to run.
 */

#ifndef PHANTOM_RUNNER_RESULT_SINK_HPP
#define PHANTOM_RUNNER_RESULT_SINK_HPP

#include "runner/json.hpp"
#include "runner/schema.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace phantom::runner {

class ResultSink
{
  public:
    /** One named experiment (one table, figure panel, or ablation). */
    class Experiment
    {
      public:
        /** Append one sample to @p metric. */
        void addSample(const std::string& metric, double value);

        /** Append every sample of @p set to @p metric, in order. */
        void addSamples(const std::string& metric, const SampleSet& set);

        /** Record a single named number (counts, offsets, rates). */
        void setScalar(const std::string& key, double value);

        /** Record a single named string (stage cells, verdicts). */
        void setLabel(const std::string& key, const std::string& value);

        const std::map<std::string, SampleSet>& metrics() const
        {
            return metrics_;
        }

      private:
        friend class ResultSink;
        std::map<std::string, SampleSet> metrics_;
        std::map<std::string, double> scalars_;
        std::map<std::string, std::string> labels_;
    };

    ResultSink(std::string bench_name, u64 campaign_seed, unsigned jobs);

    /** Get-or-create the experiment named @p name. */
    Experiment& experiment(const std::string& name);

    /** Sum of per-worker busy time, for the timing.speedup field. */
    void setBusySeconds(double seconds) { busySeconds_ = seconds; }

    /**
     * Attach the campaign metrics document (see the schema comment
     * above; bench/bench_util.hpp builds it). Serialized verbatim as
     * the top-level "metrics" member; omitted until set.
     */
    void
    setMetrics(JsonValue metrics)
    {
        metrics_ = std::move(metrics);
        hasMetrics_ = true;
    }

    /**
     * Attach the host-time self-profile (prof_json's document).
     * Serialized as the top-level "profile" member, between "metrics"
     * and "timing"; omitted until set — with PHANTOM_PROF off nothing
     * calls this, keeping the document byte-identical to an
     * unprofiled build.
     */
    void
    setProfile(JsonValue profile)
    {
        profile_ = std::move(profile);
        hasProfile_ = true;
    }

    /** Build the full document (wall-clock measured since ctor). */
    JsonValue toJson() const;

    /**
     * Stable, sorted enumeration of every metric path this sink will
     * serialize under "experiments." — one dotted path per sample set
     * ("experiments.<name>.metrics.<metric>"), scalar and label. The
     * diff layer compares documents path-by-path against this kind of
     * enumeration, so diffs are insertion-order-free by construction.
     */
    std::vector<std::string> metricPaths() const;

    /**
     * Serialize to @p path ("" selects defaultPath()). Returns the
     * path written, or "" on I/O failure (logged, not fatal: the text
     * tables remain authoritative).
     */
    std::string writeJson(const std::string& path = "") const;

    /** $PHANTOM_JSON_DIR/<bench>.json, defaulting to "./<bench>.json". */
    std::string defaultPath() const;

    const std::string& benchName() const { return benchName_; }

  private:
    std::string benchName_;
    u64 campaignSeed_;
    unsigned jobs_;
    double busySeconds_ = 0.0;
    JsonValue metrics_;
    bool hasMetrics_ = false;
    JsonValue profile_;
    bool hasProfile_ = false;
    std::chrono::steady_clock::time_point start_;
    std::map<std::string, Experiment> experiments_;
};

} // namespace phantom::runner

#endif // PHANTOM_RUNNER_RESULT_SINK_HPP
