#include "runner/shard_stats.hpp"

#include <algorithm>

namespace phantom::runner {

std::map<std::string, SampleSet>
mergeShards(const std::vector<ShardStats>& shards)
{
    std::vector<const ShardStats::Entry*> all;
    std::size_t total = 0;
    for (const auto& shard : shards)
        total += shard.entries().size();
    all.reserve(total);
    for (const auto& shard : shards)
        for (const auto& entry : shard.entries())
            all.push_back(&entry);

    // Entries with equal (metric, trial) were produced by one worker in
    // one trial; stable_sort keeps their insertion order, so the merged
    // order is schedule-independent.
    std::stable_sort(all.begin(), all.end(),
                     [](const ShardStats::Entry* a,
                        const ShardStats::Entry* b) {
                         if (a->metric != b->metric)
                             return a->metric < b->metric;
                         return a->trial < b->trial;
                     });

    std::map<std::string, SampleSet> merged;
    for (const ShardStats::Entry* entry : all)
        merged[entry->metric].add(entry->value);
    return merged;
}

} // namespace phantom::runner
