#include "runner/prof_json.hpp"

#include "runner/metrics_json.hpp"
#include "runner/schema.hpp"

#include <map>

namespace phantom::runner {

JsonValue
profileToJson(const obs::prof::Report& report, u64 wall_ns)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", JsonValue(kProfileSchema));
    doc.set("enabled", JsonValue(report.enabled));
    doc.set("clock", JsonValue(std::string(report.calibration.clock)));
    doc.set("wall_ns", JsonValue(wall_ns));
    doc.set("threads", JsonValue(report.threads));

    JsonValue overhead = JsonValue::object();
    overhead.set("events", JsonValue(report.events()));
    overhead.set("timed_events", JsonValue(report.timedEvents()));
    overhead.set("ns_per_timed_event",
                 JsonValue(report.calibration.nsPerTimedEvent));
    overhead.set("ns_per_counted_event",
                 JsonValue(report.calibration.nsPerCountedEvent));
    overhead.set("estimated_ns", JsonValue(report.estimatedOverheadNs()));
    doc.set("overhead", std::move(overhead));

    // Order by name, not enum value: exports must not depend on the
    // enum layout, and sorted keys keep document diffs stable.
    std::map<std::string, const obs::prof::PhaseReport*> byName;
    for (const obs::prof::PhaseReport& phase : report.phases)
        byName.emplace(obs::prof::phaseName(phase.phase), &phase);

    JsonValue phases = JsonValue::object();
    for (const auto& [name, phase] : byName) {
        JsonValue p = JsonValue::object();
        p.set("count", JsonValue(phase->count));
        p.set("timed_count", JsonValue(phase->timedCount));
        p.set("total_ns", JsonValue(phase->totalNs));
        p.set("self_ns", JsonValue(phase->selfNs));
        p.set("sample_period",
              JsonValue(u64{1}
                        << obs::prof::phaseSampleShift(phase->phase)));
        p.set("hist", histogramToJson(phase->hist));
        phases.set(name, std::move(p));
    }
    doc.set("phases", std::move(phases));

    JsonValue stacks = JsonValue::array();
    for (const obs::prof::StackReport& stack : report.stacks) {
        JsonValue s = JsonValue::object();
        s.set("stack", JsonValue(stack.stack));
        s.set("count", JsonValue(stack.count));
        s.set("total_ns", JsonValue(stack.totalNs));
        s.set("self_ns", JsonValue(stack.selfNs));
        stacks.push(std::move(s));
    }
    doc.set("stacks", std::move(stacks));
    return doc;
}

const JsonValue*
findProfile(const JsonValue& doc)
{
    const JsonValue* schema = doc.find("schema");
    if (schema != nullptr && schema->string() == kProfileSchema)
        return &doc;
    const JsonValue* profile = doc.find("profile");
    if (profile == nullptr || !profile->isObject())
        return nullptr;
    schema = profile->find("schema");
    if (schema == nullptr || schema->string() != kProfileSchema)
        return nullptr;
    return profile;
}

namespace {

bool
u64Field(const JsonValue& node, const char* key, u64& out,
         std::string* error)
{
    const JsonValue* field = node.find(key);
    if (field == nullptr) {
        if (error != nullptr)
            *error = std::string("missing \"") + key + "\"";
        return false;
    }
    double v = field->number();
    out = v > 0.0 ? static_cast<u64>(v) : 0;
    return true;
}

} // namespace

bool
profileFromJson(const JsonValue& profile, obs::prof::Report& out,
                std::string* error)
{
    out = obs::prof::Report{};
    const JsonValue* enabled = profile.find("enabled");
    out.enabled = enabled != nullptr && enabled->boolean();
    const JsonValue* clock = profile.find("clock");
    out.calibration.clock =
        clock != nullptr && clock->string() == "tsc" ? "tsc" : "steady";
    u64 threads = 0;
    if (!u64Field(profile, "threads", threads, error))
        return false;
    out.threads = threads;

    if (const JsonValue* overhead = profile.find("overhead")) {
        if (const JsonValue* v = overhead->find("ns_per_timed_event"))
            out.calibration.nsPerTimedEvent = v->number();
        if (const JsonValue* v = overhead->find("ns_per_counted_event"))
            out.calibration.nsPerCountedEvent = v->number();
    }

    const JsonValue* phases = profile.find("phases");
    if (phases == nullptr || !phases->isObject()) {
        if (error != nullptr)
            *error = "missing \"phases\" object";
        return false;
    }
    for (const auto& [name, node] : phases->members()) {
        obs::prof::PhaseReport phase;
        phase.phase = obs::prof::phaseFromName(name);
        if (phase.phase == obs::prof::Phase::Count) {
            if (error != nullptr)
                *error = "unknown phase \"" + name + "\"";
            return false;
        }
        if (!u64Field(node, "count", phase.count, error) ||
            !u64Field(node, "timed_count", phase.timedCount, error) ||
            !u64Field(node, "total_ns", phase.totalNs, error) ||
            !u64Field(node, "self_ns", phase.selfNs, error))
            return false;
        out.phases.push_back(phase);
    }

    const JsonValue* stacks = profile.find("stacks");
    if (stacks == nullptr || !stacks->isArray()) {
        if (error != nullptr)
            *error = "missing \"stacks\" array";
        return false;
    }
    for (const JsonValue& node : stacks->items()) {
        obs::prof::StackReport stack;
        const JsonValue* name = node.find("stack");
        if (name == nullptr) {
            if (error != nullptr)
                *error = "stack entry lacks \"stack\"";
            return false;
        }
        stack.stack = name->string();
        if (!u64Field(node, "count", stack.count, error) ||
            !u64Field(node, "total_ns", stack.totalNs, error) ||
            !u64Field(node, "self_ns", stack.selfNs, error))
            return false;
        out.stacks.push_back(std::move(stack));
    }
    return true;
}

} // namespace phantom::runner
