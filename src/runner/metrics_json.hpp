/**
 * @file
 * JSON serialization for obs::MetricsRegistry.
 *
 * Lives in the runner (not src/obs) so the obs library stays free of
 * the JSON document model and links against phantom_sim only.
 */

#ifndef PHANTOM_RUNNER_METRICS_JSON_HPP
#define PHANTOM_RUNNER_METRICS_JSON_HPP

#include "obs/metrics.hpp"
#include "runner/json.hpp"

namespace phantom::runner {

/**
 * Serialize @p registry as
 *
 *   {
 *     "counters":   { "<name>": <integer> },
 *     "gauges":     { "<name>": <number> },
 *     "histograms": { "<name>": { "count", "sum", "mean",
 *                                 "buckets": [ { "lo", "count" } ... ] } }
 *   }
 *
 * Empty sections are omitted; histogram buckets list only non-zero
 * bins (with their inclusive lower bound), so documents stay compact
 * without losing any mass.
 */
JsonValue metricsToJson(const obs::MetricsRegistry& registry);

/**
 * Serialize one histogram as { "count", "sum", "mean", "buckets":
 * [ { "lo", "count" } ... ] } with zero buckets elided — the shape
 * json_check --metrics-schema validates. Shared with the host-profile
 * serializer (prof_json).
 */
JsonValue histogramToJson(const obs::Histogram& histogram);

} // namespace phantom::runner

#endif // PHANTOM_RUNNER_METRICS_JSON_HPP
