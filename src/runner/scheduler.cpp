#include "runner/scheduler.hpp"

#include "runner/env.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace phantom::runner {

unsigned
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1u : n;
}

unsigned
jobsFromEnv()
{
    // Strict: a malformed PHANTOM_JOBS ("8x", "-2", "0") used to warn
    // and silently run on hardware concurrency, which hid typos in CI
    // matrices. Now it terminates naming the offending string.
    return static_cast<unsigned>(
        envU64Strict("PHANTOM_JOBS", hardwareJobs(), 1, 4096));
}

double
SchedulerStats::imbalance() const
{
    u64 max_trials = 0;
    u64 total = 0;
    for (u64 c : perWorkerTrials) {
        max_trials = std::max(max_trials, c);
        total += c;
    }
    if (total == 0 || perWorkerTrials.empty())
        return 0.0;
    double mean =
        static_cast<double>(total) / double(perWorkerTrials.size());
    return static_cast<double>(max_trials) / mean;
}

TrialScheduler::TrialScheduler(unsigned jobs)
    : jobs_(jobs == 0 ? jobsFromEnv() : jobs)
{
}

namespace {

/** One worker's deque of pending trial indices. Owner pops the front;
 *  thieves take from the back, so a victim's cache-warm contiguous
 *  chunk stays with its owner as long as possible. */
struct WorkerDeque
{
    std::mutex mutex;
    std::deque<u64> trials;
};

} // namespace

void
TrialScheduler::runTasks(u64 count,
                         const std::function<void(u64, unsigned)>& task)
{
    using clock = std::chrono::steady_clock;

    if (count == 0)
        return;

    auto observe_trial = [](obs::Histogram& hist, clock::time_point t0) {
        hist.observe(static_cast<u64>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                clock::now() - t0)
                .count()));
    };

    // Serial path: no threads, no queues, exceptions propagate directly.
    // This is the behaviour of the old per-bench for loops, plus the
    // per-trial stats bookkeeping (two clock reads per trial).
    if (jobs_ == 1 || count == 1) {
        if (stats_.perWorkerTrials.empty())
            stats_.perWorkerTrials.resize(1);
        if (workerSetup_)
            workerSetup_(0);
        auto start = clock::now();
        try {
            for (u64 trial = 0; trial < count; ++trial) {
                auto t0 = clock::now();
                task(trial, 0);
                observe_trial(stats_.trialMicros, t0);
                ++stats_.trials;
                ++stats_.perWorkerTrials[0];
            }
        } catch (...) {
            busySeconds_ +=
                std::chrono::duration<double>(clock::now() - start).count();
            if (workerTeardown_)
                workerTeardown_(0);
            throw;
        }
        busySeconds_ +=
            std::chrono::duration<double>(clock::now() - start).count();
        if (workerTeardown_)
            workerTeardown_(0);
        return;
    }

    unsigned workers =
        static_cast<unsigned>(std::min<u64>(jobs_, count));

    // Contiguous block distribution: worker w starts with trials
    // [w*count/workers, (w+1)*count/workers).
    std::vector<WorkerDeque> deques(workers);
    for (unsigned w = 0; w < workers; ++w) {
        u64 lo = count * w / workers;
        u64 hi = count * (w + 1) / workers;
        for (u64 trial = lo; trial < hi; ++trial)
            deques[w].trials.push_back(trial);
    }

    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::atomic<double> busy{0.0};

    auto fail_with_current = [&]() {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error)
            first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
    };

    // Each worker accumulates stats privately; the locals are folded
    // into stats_ in worker-index order after the join, so aggregation
    // never races and serializes deterministically.
    struct WorkerLocal
    {
        u64 trials = 0;
        u64 steals = 0;
        obs::Histogram micros;
    };
    std::vector<WorkerLocal> locals(workers);

    auto worker_main = [&](unsigned self) {
        auto start = clock::now();
        try {
            if (workerSetup_)
                workerSetup_(self);
        } catch (...) {
            fail_with_current();
        }
        for (;;) {
            if (failed.load(std::memory_order_relaxed))
                break;

            u64 trial = 0;
            bool got = false;
            bool stolen = false;

            {   // Own queue first (front: preserves chunk order).
                std::lock_guard<std::mutex> lock(deques[self].mutex);
                if (!deques[self].trials.empty()) {
                    trial = deques[self].trials.front();
                    deques[self].trials.pop_front();
                    got = true;
                }
            }
            // Steal from the back of the first non-empty victim.
            for (unsigned step = 1; !got && step < workers; ++step) {
                unsigned victim = (self + step) % workers;
                std::lock_guard<std::mutex> lock(deques[victim].mutex);
                if (!deques[victim].trials.empty()) {
                    trial = deques[victim].trials.back();
                    deques[victim].trials.pop_back();
                    got = true;
                    stolen = true;
                }
            }
            if (!got)
                break;   // every deque empty: campaign drained

            if (stolen)
                ++locals[self].steals;
            try {
                auto t0 = clock::now();
                task(trial, self);
                observe_trial(locals[self].micros, t0);
                ++locals[self].trials;
            } catch (...) {
                fail_with_current();
            }
        }
        try {
            if (workerTeardown_)
                workerTeardown_(self);
        } catch (...) {
            fail_with_current();
        }
        double elapsed =
            std::chrono::duration<double>(clock::now() - start).count();
        double expected = busy.load();
        while (!busy.compare_exchange_weak(expected, expected + elapsed)) {
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(worker_main, w);
    for (auto& thread : pool)
        thread.join();

    busySeconds_ += busy.load();
    if (stats_.perWorkerTrials.size() < workers)
        stats_.perWorkerTrials.resize(workers);
    for (unsigned w = 0; w < workers; ++w) {
        stats_.trials += locals[w].trials;
        stats_.steals += locals[w].steals;
        stats_.perWorkerTrials[w] += locals[w].trials;
        stats_.trialMicros.merge(locals[w].micros);
    }

    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace phantom::runner
