#include "runner/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace phantom::runner {

unsigned
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1u : n;
}

unsigned
jobsFromEnv()
{
    const char* env = std::getenv("PHANTOM_JOBS");
    if (env == nullptr || *env == '\0')
        return hardwareJobs();
    char* end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0' || v == 0 || v > 4096) {
        std::fprintf(stderr,
                     "phantom: ignoring malformed PHANTOM_JOBS=\"%s\" "
                     "(using hardware concurrency %u)\n",
                     env, hardwareJobs());
        return hardwareJobs();
    }
    return static_cast<unsigned>(v);
}

TrialScheduler::TrialScheduler(unsigned jobs)
    : jobs_(jobs == 0 ? jobsFromEnv() : jobs)
{
}

namespace {

/** One worker's deque of pending trial indices. Owner pops the front;
 *  thieves take from the back, so a victim's cache-warm contiguous
 *  chunk stays with its owner as long as possible. */
struct WorkerDeque
{
    std::mutex mutex;
    std::deque<u64> trials;
};

} // namespace

void
TrialScheduler::runTasks(u64 count,
                         const std::function<void(u64, unsigned)>& task)
{
    using clock = std::chrono::steady_clock;

    if (count == 0)
        return;

    // Serial path: no threads, no queues, exceptions propagate directly.
    // This is byte-for-byte the behaviour of the old per-bench for loops.
    if (jobs_ == 1 || count == 1) {
        auto start = clock::now();
        for (u64 trial = 0; trial < count; ++trial)
            task(trial, 0);
        busySeconds_ +=
            std::chrono::duration<double>(clock::now() - start).count();
        return;
    }

    unsigned workers =
        static_cast<unsigned>(std::min<u64>(jobs_, count));

    // Contiguous block distribution: worker w starts with trials
    // [w*count/workers, (w+1)*count/workers).
    std::vector<WorkerDeque> deques(workers);
    for (unsigned w = 0; w < workers; ++w) {
        u64 lo = count * w / workers;
        u64 hi = count * (w + 1) / workers;
        for (u64 trial = lo; trial < hi; ++trial)
            deques[w].trials.push_back(trial);
    }

    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    std::atomic<double> busy{0.0};

    auto worker_main = [&](unsigned self) {
        auto start = clock::now();
        for (;;) {
            if (failed.load(std::memory_order_relaxed))
                break;

            u64 trial = 0;
            bool got = false;

            {   // Own queue first (front: preserves chunk order).
                std::lock_guard<std::mutex> lock(deques[self].mutex);
                if (!deques[self].trials.empty()) {
                    trial = deques[self].trials.front();
                    deques[self].trials.pop_front();
                    got = true;
                }
            }
            // Steal from the back of the first non-empty victim.
            for (unsigned step = 1; !got && step < workers; ++step) {
                unsigned victim = (self + step) % workers;
                std::lock_guard<std::mutex> lock(deques[victim].mutex);
                if (!deques[victim].trials.empty()) {
                    trial = deques[victim].trials.back();
                    deques[victim].trials.pop_back();
                    got = true;
                }
            }
            if (!got)
                break;   // every deque empty: campaign drained

            try {
                task(trial, self);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        }
        double elapsed =
            std::chrono::duration<double>(clock::now() - start).count();
        double expected = busy.load();
        while (!busy.compare_exchange_weak(expected, expected + elapsed)) {
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(worker_main, w);
    for (auto& thread : pool)
        thread.join();

    busySeconds_ += busy.load();

    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace phantom::runner
