#include "attack/btb_re.hpp"

#include "isa/assembler.hpp"
#include "os/layout.hpp"

#include <cassert>

namespace phantom::attack {

using namespace isa;

namespace {

/** Page offset of the victim nop inside the module. Chosen so that no
 *  other instruction on the syscall path shares its low 12 address bits
 *  (the dispatcher occupies offsets < 0x100 of the image base page) —
 *  otherwise those instructions produce false collision signals. */
constexpr u64 kVictimModuleOffset = 0x100;

std::vector<u8>
buildNopModule()
{
    // "a kernel module which contains nops followed by a return
    // instruction" (§6.2).
    Assembler code(0);
    Label body = code.newLabel();
    code.jmp(body);                     // entry: skip to the nop body
    code.padTo(kVictimModuleOffset);
    code.bind(body);
    code.nopN(5);
    code.nopN(5);
    code.ret();
    return code.finish();
}

} // namespace

BtbReverseEngineer::BtbReverseEngineer(const cpu::MicroarchConfig& config,
                                       u64 seed)
    : bed_(config, kDefaultPhysBytes, seed), rng_(seed * 2654435761ull + 3)
{
    moduleSyscall_ = os::kSysModuleBase + 2;
    victimVa_ = bed_.kernel.loadModule(buildNopModule(), moduleSyscall_) +
                kVictimModuleOffset;
    probeTarget_ = bed_.kernel.imageBase() + 0x2000;  // mapped, executable

    // Two recycled frames for the per-query training site (the site VA
    // changes every query; re-mapping fresh frames 10^5 times would
    // exhaust physical memory).
    sitePa_ = bed_.kernel.allocFrames(2 * kPageBytes);

    bed_.syscall(moduleSyscall_);   // warm the kernel path
}

void
BtbReverseEngineer::installTrainingSite(VAddr user_source)
{
    // Lay out: [mov r8, target][jmp* r8] with the jmp* exactly at
    // user_source, on recycled physical frames.
    VAddr entry = user_source - 10;
    VAddr first_page = alignDown(entry, kPageBytes);
    VAddr last_page = alignDown(user_source + 1, kPageBytes);

    for (VAddr va : sitePages_)
        bed_.kernel.pageTable().unmap(va);
    sitePages_.clear();

    mem::PageFlags flags;
    flags.present = true;
    flags.writable = false;
    flags.user = true;
    flags.executable = true;
    bed_.kernel.pageTable().map4k(first_page, sitePa_, flags);
    sitePages_.push_back(first_page);
    if (last_page != first_page) {
        bed_.kernel.pageTable().map4k(last_page, sitePa_ + kPageBytes,
                                      flags);
        sitePages_.push_back(last_page);
    }

    Assembler code(entry);
    code.movImm(R8, probeTarget_);
    code.jmpInd(R8);
    std::vector<u8> bytes = code.finish();
    bed_.machine.physMem().writeBlock(sitePa_ + (entry - first_page),
                                      bytes);
}

bool
BtbReverseEngineer::collides(VAddr user_source)
{
    ++queries_;
    installTrainingSite(user_source);

    // Train: the jmp* at U architecturally faults into the kernel
    // target; the BTB entry is installed regardless.
    auto run = bed_.runUser(user_source - 10, 16);
    assert(run.reason == cpu::ExitReason::Fault);
    (void)run;

    // Observe: flush the probe line, fire the kernel victim, and check
    // whether the line came back (transient fetch at K).
    bed_.machine.clflushVirt(probeTarget_);
    bed_.syscall(moduleSyscall_);
    Cycle lat =
        bed_.machine.timedFetchAccess(probeTarget_, Privilege::Kernel);
    return lat < bed_.machine.caches().config().latMem;
}

std::vector<u64>
BtbReverseEngineer::bruteForce(unsigned max_total_flips, u64 max_queries)
{
    std::vector<u64> found;
    u64 budget = max_queries;

    // Flip bit 47 (mandatory to reach user space) plus up to
    // max_total_flips - 1 bits from [12, 46].
    std::vector<unsigned> bits;
    for (unsigned b = 12; b <= 46; ++b)
        bits.push_back(b);

    auto test = [&](u64 mask) {
        if (budget == 0)
            return;
        --budget;
        VAddr candidate = canonicalize(victimVa_ ^ mask);
        // Confirm positives: stale predictions on other kernel-path
        // instructions can alias by accident, but such entries are
        // corrected by the next architectural execution, so a repeat
        // query filters them.
        if (collides(candidate) && collides(candidate))
            found.push_back(mask);
    };

    auto enumerate = [&](auto&& self, std::size_t start, unsigned left,
                         u64 mask) -> void {
        if (budget == 0)
            return;
        test(mask);
        if (left == 0)
            return;
        for (std::size_t i = start; i < bits.size(); ++i)
            self(self, i + 1, left - 1, mask | (1ull << bits[i]));
    };

    enumerate(enumerate, 0, max_total_flips - 1, 1ull << 47);
    return found;
}

std::vector<u64>
BtbReverseEngineer::collectCollisionDiffs(u64 want, u64 max_queries)
{
    std::vector<u64> diffs;
    u64 low12 = victimVa_ & 0xfff;
    for (u64 q = 0; q < max_queries && diffs.size() < want; ++q) {
        // Random user address with the low 12 bits pinned to K's
        // (shrinking the search space, as the paper does).
        VAddr candidate = (rng_.next() & 0x00007ffffffff000ull) | low12;
        candidate &= ~(1ull << 47);
        if (candidate == victimVa_)
            continue;
        // Double-confirm (see bruteForce): accidental aliasing with
        // other kernel-path instructions does not survive a repeat.
        if (collides(candidate) && collides(candidate))
            diffs.push_back(candidate ^ victimVa_);
    }
    return diffs;
}

std::vector<u64>
BtbReverseEngineer::recoverFunctions(u64 collisions, u64 max_queries)
{
    std::vector<u64> diffs = collectCollisionDiffs(collisions, max_queries);
    analysis::ParityRecoveryOptions options;
    options.bitLo = 12;
    options.bitHi = 47;
    options.maxWeight = 4;
    options.requireBit47 = true;
    return analysis::recoverParityMasks(diffs, options);
}

} // namespace phantom::attack
