/**
 * @file
 * The §6.4 covert channels: a kernel module performs direct branches; an
 * unprivileged attacker hijacks one with an injected prediction and
 * observes, per transmitted bit, whether the speculative target was
 * fetched (P1, all Zen parts) or loaded from (P2-style execute channel,
 * Zen 1/2 only).
 */

#ifndef PHANTOM_ATTACK_COVERT_HPP
#define PHANTOM_ATTACK_COVERT_HPP

#include "attack/prime_probe.hpp"
#include "attack/testbed.hpp"

#include <memory>
#include <vector>

namespace phantom::attack {

/** Outcome of one covert-channel transfer. */
struct CovertResult
{
    u64 bits = 0;             ///< bits transferred
    u64 correct = 0;          ///< bits received correctly
    Cycle cycles = 0;         ///< simulated cycles for the transfer
    double accuracy = 0.0;    ///< correct / bits
    double bitsPerSecond = 0.0;  ///< at the part's nominal clock
    bool supported = true;    ///< channel exists on this part
};

/** Options for a covert transfer. */
struct CovertOptions
{
    u64 bits = 4096;          ///< payload size (paper: 4096)
    u64 seed = 99;            ///< payload + noise randomness
    u32 votes = 1;            ///< per-bit probe repetitions (majority)

    /**
     * Hijack a nop instead of a direct branch in the module. With
     * SuppressBPOnNonBr set, the execute channel then dies on Zen 2 but
     * keeps working on Zen 1 (§6.3: the bit restricts P2/P3 to
     * control-flow-edge victims, and is unsupported on Zen 1).
     */
    bool victimNonBranch = false;
};

/**
 * Builds the victim kernel module and drives the fetch / execute
 * covert channels of Table 2 against it.
 */
class CovertChannel
{
  public:
    CovertChannel(const cpu::MicroarchConfig& config,
                  const CovertOptions& options = {});

    /** P1 fetch channel (Table 2 top). Works on every AMD Zen part. */
    CovertResult runFetchChannel();

    /** P2 execute channel (Table 2 bottom). Zen 1/2 only — the result
     *  has supported=false elsewhere (no transient execution window). */
    CovertResult runExecuteChannel();

    /** Transmit one bit over the fetch channel (send + receive).
     *  @return the received bit. */
    bool transmitBit(bool bit) { return fetchBit(bit); }

    Testbed& testbed() { return *bed_; }

  private:
    bool fetchBit(bool bit);
    bool executeBit(bool bit);

    std::unique_ptr<Testbed> bed_;
    std::unique_ptr<PredictionInjector> injector_;
    CovertOptions options_;
    Rng rng_;

    VAddr victimBranchVa_ = 0;   ///< hijacked direct branch (module)
    u64 moduleSyscall_ = 0;

    // Fetch channel state.
    u32 icacheSet_ = 0;
    VAddr fetchT1_ = 0;          ///< mapped executable kernel target
    VAddr fetchT0_ = 0;          ///< unmapped kernel target
    std::unique_ptr<IcacheSetProbe> icacheProbe_;

    // Execute channel state.
    u32 dcacheSet_ = 0;
    VAddr execTarget_ = 0;       ///< kernel code: load rax, [rsi]
    VAddr execT1_ = 0;           ///< mapped kernel data address
    VAddr execT0_ = 0;           ///< unmapped kernel data address
    std::unique_ptr<DcacheSetProbe> dcacheProbe_;
};

} // namespace phantom::attack

#endif // PHANTOM_ATTACK_COVERT_HPP
