/**
 * @file
 * Cache observation utilities: Prime+Probe on L1I, L1D and L2 sets, and
 * Flush+Reload on shared lines — the side channels behind every PHANTOM
 * observation (§5.1) and exploit (§7).
 */

#ifndef PHANTOM_ATTACK_PRIME_PROBE_HPP
#define PHANTOM_ATTACK_PRIME_PROBE_HPP

#include "attack/testbed.hpp"

#include <vector>

namespace phantom::attack {

/**
 * Prime+Probe on one L1I set. The probe buffer is user-executable memory
 * whose lines all map to the chosen set (VIPT: page-offset bits pick the
 * set, so the attacker controls it exactly).
 */
class IcacheSetProbe
{
  public:
    /**
     * @param bed the testbed
     * @param set L1I set to monitor
     * @param buffer_va page-aligned user VA for the probe buffer
     */
    IcacheSetProbe(Testbed& bed, u32 set, VAddr buffer_va);

    /** Fill every way of the set with probe lines. */
    void prime();

    /** Timed re-access of all probe lines. */
    Cycle probe();

    /** Latency of a fully-hitting probe (the no-signal baseline). */
    Cycle baseline() const;

    u32 set() const { return set_; }

  private:
    Testbed& bed_;
    u32 set_;
    std::vector<VAddr> lines_;
};

/** Prime+Probe on one L1D set. */
class DcacheSetProbe
{
  public:
    DcacheSetProbe(Testbed& bed, u32 set, VAddr buffer_va);

    void prime();
    Cycle probe();
    Cycle baseline() const;

    u32 set() const { return set_; }

  private:
    Testbed& bed_;
    u32 set_;
    std::vector<VAddr> lines_;
};

/**
 * Prime+Probe on one L2 set, using a 2 MiB transparent huge page so the
 * attacker controls physical index bits [20:6] (§7.2). Probing first
 * evicts the corresponding L1D set through same-L1-set/different-L2-set
 * filler lines so the timing reflects L2 state.
 */
class L2SetProbe
{
  public:
    /**
     * @param set L2 set to monitor (0..sets-1)
     * @param hugepage_va 2 MiB-aligned user VA; the huge page is mapped
     *        here by this class.
     */
    L2SetProbe(Testbed& bed, u32 set, VAddr hugepage_va);

    void prime();
    Cycle probe();
    Cycle baseline() const;

    u32 set() const { return set_; }

  private:
    void evictL1();

    Testbed& bed_;
    u32 set_;
    std::vector<VAddr> lines_;
    std::vector<VAddr> l1Filler_;
};

/** Flush+Reload on a single shared line. */
class FlushReload
{
  public:
    FlushReload(Testbed& bed, VAddr va) : bed_(bed), va_(va) {}

    void flush() { bed_.machine.clflushVirt(va_); }

    /** @return true if the line was cached (reload hit). */
    bool
    reload()
    {
        Cycle lat = bed_.machine.timedDataAccess(va_, Privilege::User);
        return lat < bed_.machine.caches().config().latMem;
    }

  private:
    Testbed& bed_;
    VAddr va_;
};

} // namespace phantom::attack

#endif // PHANTOM_ATTACK_PRIME_PROBE_HPP
