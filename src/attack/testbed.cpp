#include "attack/testbed.hpp"

#include "isa/assembler.hpp"

#include <cassert>

namespace phantom::attack {

using namespace isa;

VAddr
userAlias(bpu::BtbHashKind kind, VAddr va)
{
    VAddr alias;
    switch (kind) {
      case bpu::BtbHashKind::Zen12:
      case bpu::BtbHashKind::IntelSalted:
        // Bits 16 and 28 are fold-bit-2 partners in the [47:14] tag fold.
        alias = va ^ ((1ull << 16) | (1ull << 28));
        break;
      case bpu::BtbHashKind::Zen34:
        // Bits 36 and 24 appear only in Figure-7 function f1; flipping
        // both preserves every parity and the low 12 bits.
        alias = va ^ ((1ull << 36) | (1ull << 24));
        break;
      default:
        alias = va;
        break;
    }
    Privilege priv = bit(va, 47) ? Privilege::Kernel : Privilege::User;
    assert(bpu::btbKey(kind, alias, priv) == bpu::btbKey(kind, va, priv));
    return alias;
}

void
Testbed::ensureSyscallStub()
{
    if (syscallStub_ != 0)
        return;
    // mov rax, <nr>; mov rdi, <a>; mov rsi, <b>; syscall; hlt
    // The immediates are rewritten per call through the debug port.
    VAddr base = 0x00000000600000ull;
    Assembler code(base);
    code.movImm(RAX, 0);
    code.movImm(RDI, 0);
    code.movImm(RSI, 0);
    code.syscall();
    code.hlt();
    process.mapCode(base, code.finish());
    syscallStub_ = base;
}

cpu::RunResult
Testbed::syscall(u64 nr, u64 rdi, u64 rsi)
{
    ensureSyscallStub();
    // Patch the three imm64 fields (each MovImm is opcode+reg+imm64).
    machine.debugWrite64(syscallStub_ + 2, nr);
    machine.debugWrite64(syscallStub_ + 12, rdi);
    machine.debugWrite64(syscallStub_ + 22, rsi);
    return runUser(syscallStub_, 100'000);
}

VAddr
PredictionInjector::aliasOf(VAddr kernel_source) const
{
    return bpu::crossPrivAlias(bed_.machine.config().bpu.btb.hash,
                               kernel_source);
}

bool
PredictionInjector::inject(VAddr kernel_source, VAddr target)
{
    VAddr alias = aliasOf(kernel_source);
    if (alias == 0)
        return false;   // Intel: privilege-salted hash, no alias exists

    auto it = sites_.find(alias);
    if (it == sites_.end()) {
        // Lay out user code so the jmp* lands exactly at the alias VA:
        //   alias-10: mov r8, <target>      (10 bytes)
        //   alias   : jmp *r8
        VAddr entry = alias - 10;
        Assembler code(entry);
        code.movImm(R8, target);
        code.jmpInd(R8);
        assert(code.here() == alias + 2);
        bed_.process.mapCode(entry, code.finish());
        it = sites_.emplace(alias, Site{entry, entry + 2}).first;
    }

    bed_.machine.debugWrite64(it->second.immPatchVa, target);

    // Execute the training branch. The architectural jump to the kernel
    // target faults; a real attacker catches SIGSEGV. The BTB entry is
    // installed at branch resolution, before the faulting fetch.
    auto result = bed_.runUser(it->second.entry, 16);
    assert(result.reason == cpu::ExitReason::Fault);
    (void)result;
    return true;
}

} // namespace phantom::attack
