#include "attack/experiment.hpp"

#include "isa/assembler.hpp"
#include "runner/seed_stream.hpp"
#include "snap/state.hpp"
#include "snap/store.hpp"

#include <cassert>
#include <cstdio>

namespace phantom::attack {

using namespace isa;
using cpu::PmcEvent;

namespace {

// User-space layout of the Figure-4/5 harness. Chosen so that no
// architecturally-executed line shares a cache set with the observation
// target (page offset 0xac0 / its fall-through variant at 0x700).
constexpr VAddr kTrainPage = 0x0000000011000000ull;    // A
constexpr VAddr kEntryPage = 0x0000000020000000ull;    // victim entry, F, X
constexpr VAddr kTargetPage = 0x0000000031000000ull;   // C
constexpr VAddr kProbeData = 0x0000000050000000ull;    // EX probe line
constexpr VAddr kSeriesBase = 0x0000000060000000ull;   // µop-cache series
constexpr VAddr kNegTrainPage = 0x0000000013000000ull; // non-aliasing trainer

constexpr u64 kVictimLineEnd = 0x700;  ///< victim insn ends here

u8
victimLength(BranchKind kind)
{
    switch (kind) {
      case BranchKind::IndirectJmp: return 2;
      case BranchKind::DirectJmp:   return 5;
      case BranchKind::CondJmp:     return 6;
      case BranchKind::Ret:         return 1;
      case BranchKind::NonBranch:   return 5;
    }
    return 1;
}

/** Emit the 'load r13, [r9]; hlt' signal gadget. */
void
emitSignalGadget(Assembler& code)
{
    code.load(R13, R9, 0);
    code.hlt();
}

} // namespace

const char*
branchKindName(BranchKind kind)
{
    switch (kind) {
      case BranchKind::IndirectJmp: return "jmp*";
      case BranchKind::DirectJmp:   return "jmp";
      case BranchKind::CondJmp:     return "jcc";
      case BranchKind::Ret:         return "ret";
      case BranchKind::NonBranch:   return "non branch";
    }
    return "?";
}

const std::array<BranchKind, 5>&
table1Kinds()
{
    static const std::array<BranchKind, 5> kinds = {
        BranchKind::IndirectJmp, BranchKind::DirectJmp,
        BranchKind::CondJmp,     BranchKind::Ret,
        BranchKind::NonBranch,
    };
    return kinds;
}

const char*
stageCellName(const StageObservation& obs)
{
    if (!obs.applicable)
        return "--";
    if (obs.signals.execute)
        return "EX";
    if (obs.signals.decode)
        return "ID";
    if (obs.signals.fetch)
        return "IF";
    return ".";
}

std::vector<std::string>
table1CellKeys()
{
    std::vector<std::string> keys;
    keys.reserve(table1Kinds().size() * table1Kinds().size());
    for (BranchKind train : table1Kinds())
        for (BranchKind victim : table1Kinds())
            keys.push_back(std::string(branchKindName(train)) + " x " +
                           branchKindName(victim));
    return keys;
}

/** All per-combination state for one measurement campaign. */
struct StageExperiment::Trial
{
    /**
     * Build one combination's testbed. When @p warm is given it must be
     * a state captured from an identically-parameterized Trial: the
     * code/memory builds and the warm-up run are skipped and the warm
     * state is restored instead (layout fields are recomputed — they are
     * pure arithmetic on the configuration).
     */
    Trial(const cpu::MicroarchConfig& config,
          const StageExperimentOptions& options, BranchKind train,
          BranchKind victim, u64 target_offset,
          i64 series_anchor = -1,
          const snap::MachineState* warm = nullptr)
        : bed(config, kDefaultPhysBytes, options.seed),
          trainKind(train),
          victimKind(victim),
          seriesAnchor(series_anchor)
    {
        if (options.suppressBpOnNonBr)
            bed.machine.msrs().setBit(cpu::msr::kDeCfg2,
                                      cpu::msr::kSuppressBpOnNonBrBit, true);
        if (options.autoIbrs)
            bed.machine.msrs().setBit(cpu::msr::kEfer,
                                      cpu::msr::kAutoIbrsBit, true);

        auto hash = config.bpu.btb.hash;
        u8 len = victimLength(victim);
        srcOff = kVictimLineEnd - len;
        aSrc = kTrainPage + srcOff;
        bSrc = userAlias(hash, aSrc);
        cVa = kTargetPage + target_offset;
        // X (the RSB-provided target for ret training) lives in its own
        // cache set, away from C's, so the two observation targets never
        // alias in the µop cache or L1I.
        xVa = kEntryPage + 0x8c0;
        fallThrough = bSrc + len;
        cPrimeVa = bSrc + (cVa - aSrc); // PC-relative served target
        // The victim's architectural target D and the non-branch exit
        // live near B: the alias may sit far from the low user range
        // (Zen 3/4 aliasing flips bit 36) and direct branches need
        // rel32-reachable targets.
        dVa = alignDown(bSrc, kPageBytes) + 0x200000;
        exitVa = dVa + kPageBytes;

        if (warm != nullptr) {
            // Everything the builds and the warm-up produce — code
            // bytes, page tables, kernel allocator state, predictor and
            // cache contents — is in the captured state.
            snap::restore(bed.machine, *warm);
            if (warm->hasLayout)
                bed.kernel.setLayoutState(warm->layout);
            // Entry VAs below depend only on config + kind, so they are
            // recomputed identically.
        }
        computeEntryPoints(warm == nullptr);
        if (warm == nullptr) {
            // Warm the victim path once so its own cold branches are
            // BTB-trained: otherwise straight-line speculation past the
            // entry call fetches the X line on every run and masks the
            // phantom signal. (Real attack code repeats runs for the
            // same reason.)
            runVictim();
        }
    }

    /** Capture this trial's machine + kernel layout as a warm state. */
    snap::MachineState
    captureWarm()
    {
        return snap::capture(bed.machine, &bed.kernel);
    }

    /** Reset the machine to @p warm between observation channels. */
    void resetTo(const snap::MachineState& warm)
    {
        snap::restore(bed.machine, warm);
    }

    /** Observation target of this combination (see §5.2). */
    VAddr
    observationTarget() const
    {
        switch (trainKind) {
          case BranchKind::IndirectJmp: return cVa;
          case BranchKind::DirectJmp:
          case BranchKind::CondJmp:     return cPrimeVa;
          case BranchKind::Ret:         return xVa;
          case BranchKind::NonBranch:   return fallThrough;
        }
        return cVa;
    }

    void
    train(bool aliasing = true)
    {
        VAddr entry = aliasing ? trainerEntry : negTrainerEntry;
        for (int i = 0; i < 2; ++i)
            bed.runUser(entry, 64);
    }

    void runVictim() { bed.runUser(victimEntry, 64); }

    // ---- Channels --------------------------------------------------------

    bool
    observeFetch()
    {
        train();
        bed.machine.clflushVirt(observationTarget());
        bed.machine.clflushVirt(kProbeData);
        runVictim();
        Cycle lat = bed.machine.timedFetchAccess(observationTarget(),
                                                 Privilege::User);
        return lat < bed.machine.caches().config().latMem;
    }

    bool
    observeDecode()
    {
        // The paper's complementary negative test (§5.1): identical
        // protocol with a training branch that does not alias the
        // victim, cancelling systematic pollution of the monitored set.
        u64 pos = decodeSample(/*aliasing=*/true, /*run_victim=*/true);
        u64 neg = decodeSample(/*aliasing=*/false, /*run_victim=*/true);
        return pos + 1 <= neg;   // evictions reduce the hit count
    }

    bool
    observeExecute()
    {
        train();
        bed.machine.clflushVirt(kProbeData);
        runVictim();
        Cycle lat =
            bed.machine.timedDataAccess(kProbeData, Privilege::User);
        return lat < bed.machine.caches().config().latMem;
    }

    /** µop-cache hit count over 5 series executions (Figure 5 B). */
    u64
    decodeSample(bool aliasing, bool run_victim)
    {
        train(aliasing);
        runSeries(2);   // prime: fill every way of the monitored set
        if (run_victim)
            runVictim();
        u64 before = bed.machine.pmc().read(PmcEvent::OpCacheHit);
        runSeries(5);
        return bed.machine.pmc().read(PmcEvent::OpCacheHit) - before;
    }

    void
    runSeries(u32 times)
    {
        for (u32 i = 0; i < times; ++i)
            bed.runUser(seriesEntry, 64);
    }

    Testbed bed;
    BranchKind trainKind;
    BranchKind victimKind;

    u64 srcOff = 0;
    VAddr aSrc = 0, bSrc = 0, cVa = 0, cPrimeVa = 0, xVa = 0;
    VAddr dVa = 0, exitVa = 0;
    VAddr fallThrough = 0;
    VAddr trainerEntry = 0, negTrainerEntry = 0, victimEntry = 0;
    VAddr seriesEntry = 0;
    i64 seriesAnchor = -1;   ///< fixed series page offset, or -1 = follow
                             ///< the observation target

  private:
    /** Entry VA of the trainer on @p page (pure layout arithmetic). */
    VAddr
    trainerEntryFor(VAddr page) const
    {
        VAddr src = page + srcOff;
        if (trainKind == BranchKind::NonBranch)
            return src;
        u64 prologue = 10 + 10 + 10 + 6;          // r9, r8, rax, cmp
        if (trainKind == BranchKind::Ret)
            prologue += 10 + 2;                    // r10, push
        return src - prologue;
    }

    /**
     * Fill in every entry VA (pure arithmetic) and, when @p build is
     * set, assemble and map the code blobs. Restored-from-snapshot
     * trials skip the build: the mapped bytes are already in the state.
     */
    void
    computeEntryPoints(bool build)
    {
        trainerEntry = trainerEntryFor(kTrainPage);
        negTrainerEntry = trainerEntryFor(kNegTrainPage);
        victimEntry = xVa - 15;                    // movImm(10) + call(5)
        u64 series_off = seriesAnchor >= 0
                             ? static_cast<u64>(seriesAnchor) & 0xfc0
                             : observationTarget() & 0xfc0;
        seriesEntry = kSeriesBase + series_off;
        if (build) {
            buildTrainer(kTrainPage, /*to=*/cVa);
            buildTrainer(kNegTrainPage, /*to=*/cVa);
            buildVictim();
            buildFixedBlobs();
        }
    }

    void
    buildTrainer(VAddr page, VAddr to)
    {
        VAddr src = page + srcOff;
        if (trainKind == BranchKind::NonBranch) {
            Assembler code(src);
            code.nopN(5);
            code.hlt();
            bed.process.mapCode(src, code.finish());
            return;
        }

        Assembler code(trainerEntryFor(page));
        code.movImm(R9, kProbeData);
        code.movImm(R8, to);
        code.movImm(RAX, 0);
        code.cmpImm(RAX, 0);
        if (trainKind == BranchKind::Ret) {
            code.movImm(R10, to);
            code.push(R10);
        }
        assert(code.here() == src);
        switch (trainKind) {
          case BranchKind::IndirectJmp: code.jmpInd(R8); break;
          case BranchKind::DirectJmp:   code.jmp(to); break;
          case BranchKind::CondJmp:     code.jcc(Cond::Eq, to); break;
          case BranchKind::Ret:         code.ret(); break;
          case BranchKind::NonBranch:   break;   // handled above
        }
        bed.process.mapCode(trainerEntryFor(page), code.finish());
    }

    void
    buildVictim()
    {
        // Entry block: set up registers, push the X return address via a
        // discarded call (RSB ammunition for ret-trained predictions),
        // then jump into the victim instruction.
        Assembler entry(victimEntry);
        entry.movImm(R9, kProbeData);
        Label f = entry.newLabel();
        entry.call(f);
        assert(entry.here() == xVa);
        emitSignalGadget(entry);                   // X: never executed
        entry.padTo(xVa + kCacheLineBytes);
        entry.bind(f);
        entry.pop(R11);                            // discard return address
        entry.movImm(R8, dVa);
        entry.movImm(RAX, 0);
        entry.cmpImm(RAX, 0);
        if (victimKind == BranchKind::Ret) {
            entry.movImm(R10, dVa);
            entry.push(R10);
        }
        entry.movImm(R15, bSrc);                   // far transfer: the
        entry.jmpInd(R15);                         // alias may be > 2 GiB away
        bed.process.mapCode(victimEntry, entry.finish());

        // Victim page: the victim instruction at bSrc, fall-through
        // content at the next line.
        Assembler body(bSrc);
        switch (victimKind) {
          case BranchKind::IndirectJmp: body.jmpInd(R8); break;
          case BranchKind::DirectJmp:   body.jmp(dVa); break;
          case BranchKind::CondJmp:     body.jcc(Cond::Eq, dVa); break;
          case BranchKind::Ret:         body.ret(); break;
          case BranchKind::NonBranch:   body.nopN(5); break;
        }
        assert(body.here() == fallThrough);
        if (victimKind == BranchKind::NonBranch) {
            body.jmp(exitVa);                      // architectural path
        } else {
            emitSignalGadget(body);                // SLS observation point
        }
        bed.process.mapCode(bSrc, body.finish());
    }

    void
    buildFixedBlobs()
    {
        // C and (for PC-relative training) C' carry the signal gadget.
        Assembler c(cVa);
        emitSignalGadget(c);
        bed.process.mapCode(cVa, c.finish());
        if (trainKind == BranchKind::DirectJmp ||
            trainKind == BranchKind::CondJmp) {
            Assembler cp(cPrimeVa);
            emitSignalGadget(cp);
            bed.process.mapCode(cPrimeVa, cp.finish());
        }

        Assembler d(dVa);
        d.hlt();
        bed.process.mapCode(dVa, d.finish());

        Assembler exit(exitVa);
        exit.hlt();
        bed.process.mapCode(exitVa, exit.finish());

        bed.process.mapData(kProbeData, kPageBytes);

        // The µop-cache series: 8 direct forward jmps separated by
        // 4096 bytes, all at the observation target's page offset (or a
        // fixed anchor for the Figure-6 sweep). The offset was fixed by
        // computeEntryPoints.
        u64 series_off = seriesEntry - kSeriesBase;
        for (u32 k = 0; k < 8; ++k) {
            VAddr at = kSeriesBase + u64{k} * kPageBytes + series_off;
            VAddr next = (k == 7) ? kSeriesBase + 8 * kPageBytes
                                  : at + kPageBytes;
            Assembler jmp_blob(at);
            jmp_blob.jmp(next);
            bed.process.mapCode(at, jmp_blob.finish());
        }
        Assembler end(kSeriesBase + 8 * kPageBytes);
        end.hlt();
        bed.process.mapCode(kSeriesBase + 8 * kPageBytes, end.finish());
    }
};

StageExperiment::StageExperiment(const cpu::MicroarchConfig& config,
                                 const StageExperimentOptions& options)
    : config_(config), options_(options)
{
}

StageObservation
StageExperiment::run(BranchKind train, BranchKind victim)
{
    StageObservation result;
    bool symmetric_uncheckable =
        (train == BranchKind::Ret && victim == BranchKind::Ret) ||
        (train == BranchKind::NonBranch && victim == BranchKind::NonBranch);
    if (symmetric_uncheckable) {
        result.applicable = false;
        return result;
    }

    // The three observation channels, in Table-1 stage order. Each vote
    // trial runs every channel on identical warm machine state.
    static constexpr bool (Trial::*kChannels[])() = {
        &Trial::observeFetch,
        &Trial::observeDecode,
        &Trial::observeExecute,
    };
    constexpr std::size_t kNumChannels =
        sizeof(kChannels) / sizeof(kChannels[0]);

    u32 votes[kNumChannels] = {};
    auto absorb = [&result](Trial& trial) {
        result.pmc.absorb(trial.bed.machine.pmc());
        result.attribution.merge(trial.bed.machine.cycleAttribution());
        result.episodes += trial.bed.machine.episodeCount();
    };

    // Per-trial seeds come from a SeedStream substream: derived seeds
    // are pairwise distinct and cannot overlap a neighbouring cell's
    // stream the way `seed + t * constant` arithmetic could.
    runner::SeedStream seeds =
        runner::SeedStream(options_.seed).substream("stage-trial");
    bool reuse = options_.snapshotReuse && snap::snapshotReuseEnabled();

    for (u32 t = 0; t < options_.trials; ++t) {
        StageExperimentOptions opts = options_;
        opts.seed = seeds.trialSeed(t);

        if (reuse) {
            // Train once per (µarch, train, victim, seed): build + warm
            // a single testbed, capture it, and replay the warm state
            // for the later channels — O(dirty pages) per reset.
            snap::SnapshotStore* store = snap::activeSnapshotStore();
            std::shared_ptr<const snap::MachineState> warm;
            std::string key = trialKey(train, victim, opts);
            if (store != nullptr)
                warm = store->find(key);
            Trial trial(config_, opts, train, victim,
                        options_.targetPageOffset, /*series_anchor=*/-1,
                        warm.get());
            if (warm != nullptr && store != nullptr) {
                // An independent machine spun off the shared warm parent
                // — a copy-on-write fork, unlike the in-place restores
                // counted per channel reset below.
                ++store->stats().forks;
            }
            if (warm == nullptr) {
                warm = std::make_shared<const snap::MachineState>(
                    trial.captureWarm());
                if (store != nullptr)
                    store->insert(key, warm);
            }
            if (t == 0 && options_.onWarmReady)
                options_.onWarmReady();
            for (std::size_t c = 0; c < kNumChannels; ++c) {
                if (c > 0) {
                    trial.resetTo(*warm);
                    if (store != nullptr)
                        ++store->stats().restores;
                }
                votes[c] += (trial.*kChannels[c])() ? 1 : 0;
                absorb(trial);
            }
        } else {
            // Legacy path (PHANTOM_SNAP=0): a fresh build per channel.
            // Deterministic simulation makes the two paths bit-identical;
            // bench_regress asserts that equivalence.
            for (std::size_t c = 0; c < kNumChannels; ++c) {
                Trial trial(config_, opts, train, victim,
                            options_.targetPageOffset);
                if (t == 0 && c == 0 && options_.onWarmReady)
                    options_.onWarmReady();
                votes[c] += (trial.*kChannels[c])() ? 1 : 0;
                absorb(trial);
            }
        }
    }
    u32 majority = options_.trials / 2 + 1;
    result.signals.fetch = votes[0] >= majority;
    result.signals.decode = votes[1] >= majority;
    result.signals.execute = votes[2] >= majority;
    return result;
}

std::string
StageExperiment::trialKey(BranchKind train, BranchKind victim,
                          const StageExperimentOptions& opts) const
{
    char key[160];
    std::snprintf(key, sizeof(key),
                  "stage-%s-%s-%s-%016llx-%03llx%s%s", config_.name.c_str(),
                  branchKindName(train), branchKindName(victim),
                  static_cast<unsigned long long>(opts.seed),
                  static_cast<unsigned long long>(opts.targetPageOffset),
                  opts.suppressBpOnNonBr ? "-sbp" : "",
                  opts.autoIbrs ? "-aibrs" : "");
    return key;
}

u64
StageExperiment::fig6OpCacheHits(u64 c_page_offset)
{
    // Figure 6: non-branch victim trained with jmp*; the series stays
    // anchored at page offset 0xac0 while C sweeps the page. Only when
    // the offsets match does C's speculative decode evict the primed
    // µop-cache set.
    Trial trial(config_, options_, BranchKind::IndirectJmp,
                BranchKind::NonBranch, c_page_offset,
                /*series_anchor=*/0xac0);
    return trial.decodeSample(/*aliasing=*/true, /*run_victim=*/true);
}

u64
StageExperiment::fig6MaxHits() const
{
    // 5 series passes x (8 jmp lines + terminating hlt line).
    return 5 * 9;
}

} // namespace phantom::attack
