/**
 * @file
 * Shared attack scaffolding: a machine+kernel+process bundle, BTB
 * aliasing helpers, and the user->kernel prediction injector every
 * exploit builds on.
 */

#ifndef PHANTOM_ATTACK_TESTBED_HPP
#define PHANTOM_ATTACK_TESTBED_HPP

#include "bpu/btb_hash.hpp"
#include "cpu/machine.hpp"
#include "os/kernel.hpp"
#include "os/process.hpp"

#include <unordered_map>

namespace phantom::attack {

/**
 * A same-privilege virtual address distinct from @p va that collides
 * with it in the BTB (equal index and tag under @p kind). Used for the
 * user-space observation channels (§5.1).
 */
VAddr userAlias(bpu::BtbHashKind kind, VAddr va);

/** Default installed physical memory for experiments (8 GiB). */
inline constexpr u64 kDefaultPhysBytes = 8ull * 1024 * 1024 * 1024;

/**
 * One complete victim system: machine, booted kernel, attacker process.
 */
struct Testbed
{
    cpu::Machine machine;
    os::Kernel kernel;
    os::Process process;

    explicit Testbed(const cpu::MicroarchConfig& config,
                     u64 phys_bytes = kDefaultPhysBytes, u64 seed = 1)
        : machine(config, phys_bytes, seed ^ 0x517cc1b727220a95ull),
          kernel(machine, os::KernelConfig{seed, true, true}),
          process(kernel, machine)
    {
    }

    /** Run user code at @p entry until hlt/fault. */
    cpu::RunResult
    runUser(VAddr entry, u64 max_insns = 1'000'000)
    {
        machine.setPrivilege(Privilege::User);
        machine.setPc(entry);
        return machine.run(max_insns);
    }

    /** Perform a syscall exactly as user code would: executes a small
     *  user stub (mov args; syscall; hlt) on the pipeline. */
    cpu::RunResult syscall(u64 nr, u64 rdi = 0, u64 rsi = 0);

  private:
    VAddr syscallStub_ = 0;
    void ensureSyscallStub();
};

/**
 * Injects branch predictions into the kernel's BTB from user mode by
 * executing a training branch at a cross-privilege-aliasing user address
 * and catching the resulting page fault (§6.2, following [73]).
 */
class PredictionInjector
{
  public:
    explicit PredictionInjector(Testbed& bed) : bed_(bed) {}

    /**
     * Make the BTB predict an indirect branch at kernel address
     * @p kernel_source with target @p target. @return false if the
     * microarchitecture has no cross-privilege aliasing (Intel).
     */
    bool inject(VAddr kernel_source, VAddr target);

    /** The aliasing user address used for @p kernel_source. */
    VAddr aliasOf(VAddr kernel_source) const;

  private:
    struct Site
    {
        VAddr entry;        ///< user code entry (mov imm; jmp*)
        VAddr immPatchVa;   ///< VA of the imm64 field to rewrite
    };

    Testbed& bed_;
    std::unordered_map<VAddr, Site> sites_;
};

} // namespace phantom::attack

#endif // PHANTOM_ATTACK_TESTBED_HPP
