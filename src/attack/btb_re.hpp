/**
 * @file
 * §6.2: reverse engineering the cross-privilege BTB indexing functions.
 *
 * The oracle answers "does user-space source U collide with kernel
 * victim K?" purely microarchitecturally: train a jmp* at U towards a
 * probe target, fire the kernel victim (a non-branch reached through a
 * syscall), and observe whether the probe target was transiently
 * fetched. On top of the oracle:
 *
 *  - bruteForce(): the paper's first attempt — flip bit 47 plus up to
 *    n-1 more bits of K. Succeeds on Zen 1/2, fails on Zen 3/4 (the
 *    parity functions need 12 simultaneous flips).
 *  - collectCollisionDiffs() + recoverFunctions(): the paper's solver
 *    approach — random sampling with the low 12 bits pinned, then
 *    bounded-weight GF(2) parity recovery (our Z3 replacement),
 *    reproducing the twelve Figure-7 functions.
 */

#ifndef PHANTOM_ATTACK_BTB_RE_HPP
#define PHANTOM_ATTACK_BTB_RE_HPP

#include "analysis/gf2.hpp"
#include "attack/testbed.hpp"

#include <memory>
#include <vector>

namespace phantom::attack {

/** Reverse-engineering harness around one victim kernel address K. */
class BtbReverseEngineer
{
  public:
    BtbReverseEngineer(const cpu::MicroarchConfig& config, u64 seed = 11);

    /** The kernel victim address K (a nop inside a kernel module). */
    VAddr kernelVictimVa() const { return victimVa_; }

    /** Microarchitectural collision oracle: true if training at
     *  @p user_source steers speculation at K. */
    bool collides(VAddr user_source);

    /** Number of oracle queries issued so far. */
    u64 queries() const { return queries_; }

    /**
     * Brute force: try every pattern flipping bit 47 plus at most
     * @p max_total_flips - 1 bits of [12, 46].
     * @return the successful flip masks (empty on Zen 3/4 for <= 6).
     */
    std::vector<u64> bruteForce(unsigned max_total_flips,
                                u64 max_queries = ~0ull);

    /**
     * Randomly sample user addresses (low 12 bits pinned to K's) until
     * @p want collisions are found; returns the difference vectors
     * U ^ K of the colliding pairs.
     */
    std::vector<u64> collectCollisionDiffs(u64 want, u64 max_queries);

    /** Full pipeline: sample collisions and recover the bounded-weight
     *  XOR parity functions (Figure 7). */
    std::vector<u64> recoverFunctions(u64 collisions = 24,
                                      u64 max_queries = 2'000'000);

  private:
    void installTrainingSite(VAddr user_source);

    Testbed bed_;
    Rng rng_;
    u64 moduleSyscall_ = 0;
    VAddr victimVa_ = 0;
    VAddr probeTarget_ = 0;
    u64 queries_ = 0;

    PAddr sitePa_ = 0;            ///< recycled frames for training code
    std::vector<VAddr> sitePages_;
};

} // namespace phantom::attack

#endif // PHANTOM_ATTACK_BTB_RE_HPP
