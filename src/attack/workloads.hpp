/**
 * @file
 * A small synthetic benchmark suite (UnixBench stand-in) used to measure
 * the performance overhead of mitigations (§6.3): the same workloads run
 * with and without SuppressBPOnNonBr / AutoIBRS / per-syscall IBPB and
 * the geometric-mean cycle ratio is reported.
 */

#ifndef PHANTOM_ATTACK_WORKLOADS_HPP
#define PHANTOM_ATTACK_WORKLOADS_HPP

#include "attack/testbed.hpp"

#include <string>
#include <vector>

namespace phantom::attack {

/** Mitigation configuration under benchmark. */
struct MitigationSetting
{
    bool suppressBpOnNonBr = false;
    bool autoIbrs = false;
    bool ibpbEverySyscall = false;   ///< flush predictors per syscall
};

/** One workload's score (cycles; lower is better). */
struct WorkloadScore
{
    std::string name;
    Cycle cycles = 0;
};

/** Run the full suite under @p setting; one score per workload. */
std::vector<WorkloadScore> runWorkloadSuite(
    const cpu::MicroarchConfig& config, const MitigationSetting& setting,
    u64 seed = 3);

/**
 * Geometric-mean overhead of @p setting relative to no mitigations,
 * as a fraction (0.0069 == 0.69%).
 */
double mitigationOverhead(const cpu::MicroarchConfig& config,
                          const MitigationSetting& setting, u64 seed = 3);

} // namespace phantom::attack

#endif // PHANTOM_ATTACK_WORKLOADS_HPP
