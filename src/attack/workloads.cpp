#include "attack/workloads.hpp"

#include "isa/assembler.hpp"
#include "sim/stats.hpp"

#include <cassert>

namespace phantom::attack {

using namespace isa;

namespace {

constexpr VAddr kWorkCode = 0x0000000090000000ull;
constexpr VAddr kWorkData = 0x0000000091000000ull;
constexpr u64 kDataPages = 16;

/** Emit "rcx = iterations; loop { body }" around @p body. */
template <typename Body>
void
emitLoop(Assembler& code, u32 iterations, Body&& body)
{
    Label loop = code.newLabel();
    code.movImm(RCX, iterations);
    code.bind(loop);
    body(code);
    code.subImm(RCX, 1);
    code.cmpImm(RCX, 0);
    code.jcc(Cond::Ne, loop);
}

struct Workload
{
    const char* name;
    void (*build)(Assembler&);
};

void
buildAlu(Assembler& code)
{
    emitLoop(code, 2000, [](Assembler& c) {
        c.addImm(RAX, 3);
        c.shl(RAX, 1);
        c.shr(RAX, 1);
        c.xorReg(RBX, RAX);
        c.add(RBX, RAX);
    });
    code.hlt();
}

void
buildMemoryChase(Assembler& code)
{
    // Strided loads over the data pages (offset = rcx * 192 mod 64 KiB).
    emitLoop(code, 1500, [](Assembler& c) {
        c.movReg(RDI, RCX);
        c.shl(RDI, 7);
        c.andImm(RDI, 0xffff);        // stay within the 16 data pages
        c.movImm(RSI, kWorkData);
        c.add(RDI, RSI);
        c.load(RAX, RDI, 0);
    });
    code.hlt();
}

void
buildCallHeavy(Assembler& code)
{
    Label fn = code.newLabel();
    Label start = code.newLabel();
    code.jmp(start);
    code.bind(fn);
    code.addImm(RAX, 1);
    code.ret();
    code.bind(start);
    emitLoop(code, 1200, [&](Assembler& c) {
        c.call(fn);
        c.call(fn);
    });
    code.hlt();
}

void
buildBranchy(Assembler& code)
{
    emitLoop(code, 1500, [](Assembler& c) {
        Label odd = c.newLabel();
        Label join = c.newLabel();
        c.movReg(RAX, RCX);
        c.andImm(RAX, 1);
        c.cmpImm(RAX, 0);
        c.jcc(Cond::Ne, odd);
        c.addImm(RBX, 2);
        c.jmp(join);
        c.bind(odd);
        c.addImm(RBX, 3);
        c.bind(join);
    });
    code.hlt();
}

void
buildSyscallLoop(Assembler& code)
{
    emitLoop(code, 150, [](Assembler& c) {
        c.movImm(RAX, os::kSysGetpid);
        c.syscall();
    });
    code.hlt();
}

constexpr Workload kWorkloads[] = {
    {"alu", buildAlu},
    {"memchase", buildMemoryChase},
    {"calls", buildCallHeavy},
    {"branchy", buildBranchy},
    {"syscalls", buildSyscallLoop},
};

} // namespace

std::vector<WorkloadScore>
runWorkloadSuite(const cpu::MicroarchConfig& config,
                 const MitigationSetting& setting, u64 seed)
{
    std::vector<WorkloadScore> scores;
    for (const Workload& workload : kWorkloads) {
        Testbed bed(config, kDefaultPhysBytes, seed);
        bed.process.mapData(kWorkData, kDataPages * kPageBytes);
        Assembler code(kWorkCode);
        workload.build(code);
        bed.process.mapCode(kWorkCode, code.finish());

        if (setting.suppressBpOnNonBr)
            bed.machine.msrs().setBit(cpu::msr::kDeCfg2,
                                      cpu::msr::kSuppressBpOnNonBrBit,
                                      true);
        if (setting.autoIbrs)
            bed.machine.msrs().setBit(cpu::msr::kEfer,
                                      cpu::msr::kAutoIbrsBit, true);

        bed.machine.setIbpbOnSyscall(setting.ibpbEverySyscall);

        // Warm-up pass, then the measured pass.
        bed.runUser(kWorkCode, 2'000'000);
        Cycle start = bed.machine.cycles();
        auto result = bed.runUser(kWorkCode, 2'000'000);
        assert(result.reason == cpu::ExitReason::Halt);
        (void)result;
        scores.push_back({workload.name, bed.machine.cycles() - start});
    }
    return scores;
}

double
mitigationOverhead(const cpu::MicroarchConfig& config,
                   const MitigationSetting& setting, u64 seed)
{
    auto base = runWorkloadSuite(config, MitigationSetting{}, seed);
    auto with = runWorkloadSuite(config, setting, seed);
    std::vector<double> ratios;
    for (std::size_t i = 0; i < base.size(); ++i)
        ratios.push_back(static_cast<double>(with[i].cycles) /
                         static_cast<double>(base[i].cycles));
    return geomean(ratios) - 1.0;
}

} // namespace phantom::attack
