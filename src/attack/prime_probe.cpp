#include "attack/prime_probe.hpp"

#include <cassert>

namespace phantom::attack {

namespace {

/** Ret-only filler so probe buffers are valid code. */
std::vector<u8>
retFilledPage(u64 pages)
{
    return std::vector<u8>(pages * kPageBytes, 0xc3);   // ret opcode
}

} // namespace

// ---- IcacheSetProbe --------------------------------------------------------

IcacheSetProbe::IcacheSetProbe(Testbed& bed, u32 set, VAddr buffer_va)
    : bed_(bed), set_(set)
{
    const auto& geom = bed_.machine.caches().config().l1i;
    assert(set < geom.sets);
    assert(buffer_va % kPageBytes == 0);
    // One line per way, each in its own page: same page offset -> same
    // VIPT set, distinct frames -> distinct tags.
    bed_.process.mapCode(buffer_va, retFilledPage(geom.ways));
    for (u32 w = 0; w < geom.ways; ++w)
        lines_.push_back(buffer_va + u64{w} * kPageBytes +
                         u64{set} * kCacheLineBytes);
}

void
IcacheSetProbe::prime()
{
    for (VAddr va : lines_)
        bed_.machine.timedFetchAccess(va, Privilege::User);
}

Cycle
IcacheSetProbe::probe()
{
    Cycle total = 0;
    for (VAddr va : lines_)
        total += bed_.machine.timedFetchAccess(va, Privilege::User);
    return total;
}

Cycle
IcacheSetProbe::baseline() const
{
    return static_cast<Cycle>(lines_.size()) *
           bed_.machine.caches().config().latL1;
}

// ---- DcacheSetProbe --------------------------------------------------------

DcacheSetProbe::DcacheSetProbe(Testbed& bed, u32 set, VAddr buffer_va)
    : bed_(bed), set_(set)
{
    const auto& geom = bed_.machine.caches().config().l1d;
    assert(set < geom.sets);
    assert(buffer_va % kPageBytes == 0);
    bed_.process.mapData(buffer_va, u64{geom.ways} * kPageBytes);
    for (u32 w = 0; w < geom.ways; ++w)
        lines_.push_back(buffer_va + u64{w} * kPageBytes +
                         u64{set} * kCacheLineBytes);
}

void
DcacheSetProbe::prime()
{
    for (VAddr va : lines_)
        bed_.machine.timedDataAccess(va, Privilege::User);
}

Cycle
DcacheSetProbe::probe()
{
    Cycle total = 0;
    for (VAddr va : lines_)
        total += bed_.machine.timedDataAccess(va, Privilege::User);
    return total;
}

Cycle
DcacheSetProbe::baseline() const
{
    return static_cast<Cycle>(lines_.size()) *
           bed_.machine.caches().config().latL1;
}

// ---- L2SetProbe ------------------------------------------------------------

L2SetProbe::L2SetProbe(Testbed& bed, u32 set, VAddr hugepage_va)
    : bed_(bed), set_(set)
{
    const auto& l2 = bed_.machine.caches().config().l2;
    const auto& l1 = bed_.machine.caches().config().l1d;
    assert(set < l2.sets);
    assert(hugepage_va % kHugePageBytes == 0);
    bed_.process.mapHugeData(hugepage_va);

    // L2 index bits are PA[15:6] for a 1024-set L2; a 2 MiB huge page
    // gives control of PA[20:0]. Lines at stride sets*64 share the set.
    u64 set_stride = u64{l2.sets} * kCacheLineBytes;
    for (u32 w = 0; w < l2.ways; ++w)
        lines_.push_back(hugepage_va + u64{set} * kCacheLineBytes +
                         u64{w} * set_stride);

    // L1 eviction filler: same L1D set (same bits [11:6]) but different
    // L2 sets, so probing can observe L2 state.
    u32 l1_set = set % l1.sets;
    u64 l1_stride = u64{l1.sets} * kCacheLineBytes;     // 4 KiB
    u32 placed = 0;
    for (u32 j = 1; placed < l1.ways + 1; ++j) {
        VAddr va = hugepage_va + u64{l1_set} * kCacheLineBytes +
                   u64{j} * l1_stride;
        u64 pa_off = va - hugepage_va;
        u32 l2_set = static_cast<u32>((pa_off / kCacheLineBytes) % l2.sets);
        if (l2_set == set)
            continue;
        if (va >= hugepage_va + kHugePageBytes)
            break;
        l1Filler_.push_back(va);
        ++placed;
    }
}

void
L2SetProbe::evictL1()
{
    for (VAddr va : l1Filler_)
        bed_.machine.timedDataAccess(va, Privilege::User);
}

void
L2SetProbe::prime()
{
    for (VAddr va : lines_)
        bed_.machine.timedDataAccess(va, Privilege::User);
}

Cycle
L2SetProbe::probe()
{
    evictL1();
    Cycle total = 0;
    for (VAddr va : lines_)
        total += bed_.machine.timedDataAccess(va, Privilege::User);
    return total;
}

Cycle
L2SetProbe::baseline() const
{
    // After L1 eviction, resident lines answer from L2.
    return static_cast<Cycle>(lines_.size()) *
           bed_.machine.caches().config().latL2;
}

} // namespace phantom::attack
