/**
 * @file
 * The §5 experiment harness: force a misprediction between a training
 * branch A and a victim instruction B placed at BTB-aliasing user
 * addresses (Figure 4/5), and observe how far the mispredicted target
 * advances in the pipeline via three channels —
 *
 *   IF: I-cache timing of the predicted target (Figure 5 A),
 *   ID: µop-cache set pressure via performance counters (Figure 5 B),
 *   EX: D-cache timing of a load in the mispredicted path.
 *
 * This regenerates Table 1 (which training/victim combinations reach
 * which stage, per microarchitecture) and Figure 6 (µop-cache set sweep).
 */

#ifndef PHANTOM_ATTACK_EXPERIMENT_HPP
#define PHANTOM_ATTACK_EXPERIMENT_HPP

#include "attack/testbed.hpp"
#include "isa/insn.hpp"

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace phantom::attack {

/** Training / victim instruction kinds of Table 1. */
enum class BranchKind : u8 {
    IndirectJmp,   ///< jmp*
    DirectJmp,     ///< jmp (trained with a different displacement)
    CondJmp,       ///< jcc
    Ret,           ///< ret
    NonBranch,     ///< nop sled
};

/** Human-readable name ("jmp*", "jmp", "jcc", "ret", "non branch"). */
const char* branchKindName(BranchKind kind);

/** The five Table-1 instruction kinds in paper row/column order. */
const std::array<BranchKind, 5>& table1Kinds();

/** Deepest pipeline stages reached by the mispredicted target. */
struct StageSignals
{
    bool fetch = false;    ///< IF observed
    bool decode = false;   ///< ID observed
    bool execute = false;  ///< EX observed
};

/**
 * Canonical Table-1 cell text for an observation: "EX" / "ID" / "IF",
 * "." when no stage signalled, "--" when the combination is not
 * applicable. Single source for the printed table, the JSON labels, and
 * the paper-conformance checker in src/obs/diff.
 */
const char* stageCellName(const struct StageObservation& obs);

/**
 * Stable enumeration of the 25 Table-1 label keys ("<train> x
 * <victim>"), row-major with the training kind outer, in table1Kinds()
 * order. bench_table1 writes its JSON labels under exactly these keys
 * and the diff layer iterates them, so the two sides can never drift
 * apart on metric paths.
 */
std::vector<std::string> table1CellKeys();

/** One Table-1 cell. */
struct StageObservation
{
    bool applicable = true;   ///< "—" cells are not applicable
    StageSignals signals;

    // Microarchitectural activity summed over every vote trial (all
    // three channels), for campaign-level metrics export. Derived from
    // seeded simulation only, so aggregating these in trial order stays
    // bit-identical for any PHANTOM_JOBS.
    cpu::Pmc pmc;                       ///< summed PMC banks
    cpu::CycleAttribution attribution;  ///< where the cycles went
    u64 episodes = 0;                   ///< speculation episodes begun
};

/** Options for the stage experiment. */
struct StageExperimentOptions
{
    u64 seed = 7;
    u32 trials = 5;            ///< majority vote across trials
    u64 targetPageOffset = 0xac0;  ///< page offset of the target C
    bool suppressBpOnNonBr = false;  ///< set the Zen 2+ MSR bit
    bool autoIbrs = false;           ///< enable AutoIBRS (Zen 4)

    /**
     * Build + warm one machine per trial seed and replay the captured
     * warm state for the decode/execute channels instead of rebuilding
     * the testbed from scratch per channel (src/snap). Bit-identical to
     * three fresh builds — the simulator is deterministic — just ~3x
     * cheaper. Also gated globally by PHANTOM_SNAP (=0 disables).
     */
    bool snapshotReuse = true;

    /**
     * Wall-clock observability hook: invoked once per run(), during the
     * first trial, the moment warm training state is in hand (trained
     * fresh, forked from a snapshot, or freshly built on the
     * PHANTOM_SNAP=0 path) and before the first observation channel
     * executes. The serve layer uses it to split a request timeline's
     * train-or-fork stage from its execute stage. Purely measured —
     * it can never influence seeded results.
     */
    std::function<void()> onWarmReady;
};

/**
 * Runs one (training, victim) combination on one microarchitecture and
 * reports the deepest stage observed.
 */
class StageExperiment
{
  public:
    StageExperiment(const cpu::MicroarchConfig& config,
                    const StageExperimentOptions& options = {});

    /** Measure one Table-1 cell. */
    StageObservation run(BranchKind train, BranchKind victim);

    /**
     * Figure 6: train a non-branch victim with jmp*, place the target C
     * at @p c_page_offset, and count µop-cache hits while re-executing a
     * jmp series primed at page offset 0xac0. A dip below the full hit
     * count signals speculative decode at the matching offset.
     */
    u64 fig6OpCacheHits(u64 c_page_offset);

    /** Full hit count of the Figure-6 series when nothing was evicted. */
    u64 fig6MaxHits() const;

  private:
    struct Trial;

    /** Snapshot-store key for one warmed (train, victim, seed) testbed. */
    std::string trialKey(BranchKind train, BranchKind victim,
                         const StageExperimentOptions& opts) const;

    cpu::MicroarchConfig config_;
    StageExperimentOptions options_;
};

} // namespace phantom::attack

#endif // PHANTOM_ATTACK_EXPERIMENT_HPP
