#include "attack/covert.hpp"

#include "isa/assembler.hpp"

#include <cassert>

namespace phantom::attack {

using namespace isa;

namespace {

// Attacker-side probe buffers.
constexpr VAddr kIcacheProbeBuf = 0x0000000070000000ull;
constexpr VAddr kDcacheProbeBuf = 0x0000000071000000ull;

// Kernel-side fixture addresses (page-aligned regions in unused kernel
// VA space; the experiment plays the role of the victim module author).
constexpr VAddr kFetchT1Page = 0xffffffffc1000000ull;
constexpr VAddr kFetchT0Page = 0xffffffffc2000000ull;  // left unmapped
constexpr VAddr kExecCodePage = 0xffffffffc3000000ull;
constexpr VAddr kExecT1Page = 0xffffffffc4000000ull;
constexpr VAddr kExecT0Page = 0xffffffffc5000000ull;   // left unmapped

std::vector<u8>
buildBranchModule(bool victim_non_branch)
{
    // A module whose body is a chain of direct branches (§6.4), entered
    // through the syscall dispatcher's indirect call. The hijack victim
    // at offset 0 is either the first jmp or — for the §6.3 variant — a
    // nop in front of it.
    Assembler code(0);   // position-independent: only rel branches
    Label l1 = code.newLabel();
    if (victim_non_branch)
        code.nopN(5);            // <- victim non-branch (offset 0)
    code.jmp(l1);                // <- victim direct branch (offset 0)
    code.padTo(0x40);
    code.bind(l1);
    Label l2 = code.newLabel();
    code.jmp(l2);
    code.padTo(0x80);
    code.bind(l2);
    code.nop();
    code.ret();
    return code.finish();
}

} // namespace

CovertChannel::CovertChannel(const cpu::MicroarchConfig& config,
                             const CovertOptions& options)
    : bed_(std::make_unique<Testbed>(config, kDefaultPhysBytes,
                                     options.seed)),
      options_(options),
      rng_(options.seed * 0x9e3779b97f4a7c15ull + 1)
{
    injector_ = std::make_unique<PredictionInjector>(*bed_);

    moduleSyscall_ = os::kSysModuleBase;
    victimBranchVa_ = bed_->kernel.loadModule(
        buildBranchModule(options.victimNonBranch), moduleSyscall_);

    // ---- Fetch channel fixtures ----------------------------------------
    icacheSet_ = 43;   // arbitrary monitored set
    {
        Assembler t1(kFetchT1Page);
        t1.padTo(kFetchT1Page + icacheSet_ * kCacheLineBytes);
        t1.nop();
        t1.ret();
        bed_->kernel.mapKernelCode(kFetchT1Page, t1.finish());
    }
    fetchT1_ = kFetchT1Page + icacheSet_ * kCacheLineBytes;
    fetchT0_ = kFetchT0Page + icacheSet_ * kCacheLineBytes;
    icacheProbe_ = std::make_unique<IcacheSetProbe>(*bed_, icacheSet_,
                                                    kIcacheProbeBuf);

    // ---- Execute channel fixtures ---------------------------------------
    dcacheSet_ = 21;
    {
        // T: kernel code performing a load of the address in RSI
        // ("containing a memory load of the address in register R").
        Assembler t(kExecCodePage);
        t.load(RAX, RSI, 0);
        t.ret();
        bed_->kernel.mapKernelCode(kExecCodePage, t.finish());
    }
    execTarget_ = kExecCodePage;
    bed_->kernel.mapKernelData(kExecT1Page, kPageBytes);
    execT1_ = kExecT1Page + dcacheSet_ * kCacheLineBytes;
    execT0_ = kExecT0Page + dcacheSet_ * kCacheLineBytes;
    dcacheProbe_ = std::make_unique<DcacheSetProbe>(*bed_, dcacheSet_,
                                                    kDcacheProbeBuf);

    // Warm the kernel paths so only the injected prediction misses.
    bed_->syscall(moduleSyscall_);
    bed_->syscall(moduleSyscall_);
}

bool
CovertChannel::fetchBit(bool bit)
{
    // 1: prime the chosen I-cache set. 2: inject a prediction to Tb.
    // 3: invoke the kernel module. 4: probe the set.
    u32 votes = 0;
    for (u32 v = 0; v < options_.votes; ++v) {
        icacheProbe_->prime();
        injector_->inject(victimBranchVa_, bit ? fetchT1_ : fetchT0_);
        bed_->syscall(moduleSyscall_);
        Cycle lat = icacheProbe_->probe();
        Cycle margin = (bed_->machine.caches().config().latL2 -
                        bed_->machine.caches().config().latL1) / 2;
        votes += (lat >= icacheProbe_->baseline() + margin) ? 1 : 0;
    }
    return votes * 2 > options_.votes;
}

bool
CovertChannel::executeBit(bool bit)
{
    u32 votes = 0;
    for (u32 v = 0; v < options_.votes; ++v) {
        dcacheProbe_->prime();
        injector_->inject(victimBranchVa_, execTarget_);
        bed_->syscall(moduleSyscall_, 0, bit ? execT1_ : execT0_);
        Cycle lat = dcacheProbe_->probe();
        Cycle margin = (bed_->machine.caches().config().latL2 -
                        bed_->machine.caches().config().latL1) / 2;
        votes += (lat >= dcacheProbe_->baseline() + margin) ? 1 : 0;
    }
    return votes * 2 > options_.votes;
}

CovertResult
CovertChannel::runFetchChannel()
{
    CovertResult result;
    result.bits = options_.bits;
    Cycle start = bed_->machine.cycles();
    for (u64 i = 0; i < options_.bits; ++i) {
        bool sent = rng_.chance(0.5);
        bool received = fetchBit(sent);
        result.correct += (sent == received) ? 1 : 0;
    }
    result.cycles = bed_->machine.cycles() - start;
    result.accuracy =
        static_cast<double>(result.correct) / static_cast<double>(result.bits);
    double seconds = static_cast<double>(result.cycles) /
                     (bed_->machine.config().clockGhz * 1e9);
    result.bitsPerSecond = static_cast<double>(result.bits) / seconds;
    return result;
}

CovertResult
CovertChannel::runExecuteChannel()
{
    CovertResult result;
    result.bits = options_.bits;
    if (bed_->machine.config().transientExecUops == 0) {
        result.supported = false;   // no execution window past ID
        return result;
    }
    Cycle start = bed_->machine.cycles();
    for (u64 i = 0; i < options_.bits; ++i) {
        bool sent = rng_.chance(0.5);
        bool received = executeBit(sent);
        result.correct += (sent == received) ? 1 : 0;
    }
    result.cycles = bed_->machine.cycles() - start;
    result.accuracy =
        static_cast<double>(result.correct) / static_cast<double>(result.bits);
    double seconds = static_cast<double>(result.cycles) /
                     (bed_->machine.config().clockGhz * 1e9);
    result.bitsPerSecond = static_cast<double>(result.bits) / seconds;
    return result;
}

} // namespace phantom::attack
