/**
 * @file
 * Sparse physical memory backing store.
 *
 * Frames are allocated lazily on first touch so that machines with large
 * "installed" memory (the paper's 64 GiB EPYC config) stay cheap to model.
 *
 * Frames are reference-counted so snapshots can share them copy-on-write:
 * a write to a frame whose refcount is > 1 clones it first, keeping forks
 * O(dirty pages). Sharing is not thread-safe across concurrent writers;
 * snapshot stores are strictly per-shard.
 */

#ifndef PHANTOM_MEM_PHYS_MEM_HPP
#define PHANTOM_MEM_PHYS_MEM_HPP

#include "sim/types.hpp"

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

namespace phantom::mem {

/**
 * Observer notified after each mutating call on PhysicalMemory, once
 * per public write (not per byte). Derived structures keyed by physical
 * bytes — the predecoded-instruction cache in src/cpu — invalidate on
 * this. adoptFrames() deliberately does NOT notify: it is the snapshot
 * restore path, and restore flushes derived state wholesale instead.
 */
struct PhysWriteListener
{
    virtual ~PhysWriteListener() = default;

    /** Bytes [@p pa, @p pa + @p len) were (possibly) modified. */
    virtual void onPhysWrite(PAddr pa, u64 len) = 0;
};

/**
 * Byte-addressable sparse physical memory of a fixed installed size.
 * Reads of untouched memory return zero.
 */
class PhysicalMemory
{
  public:
    using Frame = std::array<u8, kPageBytes>;
    using FrameMap = std::unordered_map<u64, std::shared_ptr<Frame>>;

    /** @param installed_bytes total physical memory size (bounds checks). */
    explicit PhysicalMemory(u64 installed_bytes);

    u64 installedBytes() const { return installed_; }

    /** True if @p pa names an installed byte. */
    bool valid(PAddr pa) const { return pa < installed_; }

    u8 read8(PAddr pa) const;
    u64 read64(PAddr pa) const;
    void write8(PAddr pa, u8 value);
    void write64(PAddr pa, u64 value);

    /** Bulk copy into physical memory. */
    void writeBlock(PAddr pa, const std::vector<u8>& bytes);

    /** Bulk copy out of physical memory. */
    std::vector<u8> readBlock(PAddr pa, u64 length) const;

    /** Number of frames actually materialized (for tests). */
    std::size_t framesAllocated() const { return frames_.size(); }

    /**
     * Copy of the frame map sharing ownership of every frame (no byte
     * copies). Both sides subsequently copy-on-write any shared frame.
     */
    FrameMap shareFrames() const { return frames_; }

    /** Replace the frame map wholesale (snapshot restore / fork). */
    void adoptFrames(FrameMap frames) { frames_ = std::move(frames); }

    /** Frames currently shared with a snapshot (refcount > 1). */
    std::size_t framesShared() const;

    /** Install @p listener (non-owning; null detaches). */
    void setWriteListener(PhysWriteListener* listener)
    {
        writeListener_ = listener;
    }

  private:
    Frame* frameFor(PAddr pa, bool create) const;
    Frame* frameForWrite(PAddr pa);
    void poke(PAddr pa, u8 value);

    void
    notifyWrite(PAddr pa, u64 len)
    {
        if (writeListener_ != nullptr)
            writeListener_->onPhysWrite(pa, len);
    }

    u64 installed_;
    mutable FrameMap frames_;
    PhysWriteListener* writeListener_ = nullptr;
};

} // namespace phantom::mem

#endif // PHANTOM_MEM_PHYS_MEM_HPP
