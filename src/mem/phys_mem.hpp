/**
 * @file
 * Sparse physical memory backing store.
 *
 * Frames are allocated lazily on first touch so that machines with large
 * "installed" memory (the paper's 64 GiB EPYC config) stay cheap to model.
 */

#ifndef PHANTOM_MEM_PHYS_MEM_HPP
#define PHANTOM_MEM_PHYS_MEM_HPP

#include "sim/types.hpp"

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

namespace phantom::mem {

/**
 * Byte-addressable sparse physical memory of a fixed installed size.
 * Reads of untouched memory return zero.
 */
class PhysicalMemory
{
  public:
    /** @param installed_bytes total physical memory size (bounds checks). */
    explicit PhysicalMemory(u64 installed_bytes);

    u64 installedBytes() const { return installed_; }

    /** True if @p pa names an installed byte. */
    bool valid(PAddr pa) const { return pa < installed_; }

    u8 read8(PAddr pa) const;
    u64 read64(PAddr pa) const;
    void write8(PAddr pa, u8 value);
    void write64(PAddr pa, u64 value);

    /** Bulk copy into physical memory. */
    void writeBlock(PAddr pa, const std::vector<u8>& bytes);

    /** Bulk copy out of physical memory. */
    std::vector<u8> readBlock(PAddr pa, u64 length) const;

    /** Number of frames actually materialized (for tests). */
    std::size_t framesAllocated() const { return frames_.size(); }

  private:
    using Frame = std::array<u8, kPageBytes>;

    Frame* frameFor(PAddr pa, bool create) const;

    u64 installed_;
    mutable std::unordered_map<u64, std::unique_ptr<Frame>> frames_;
};

} // namespace phantom::mem

#endif // PHANTOM_MEM_PHYS_MEM_HPP
