/**
 * @file
 * Sparse physical memory backing store.
 *
 * Frames are allocated lazily on first touch so that machines with large
 * "installed" memory (the paper's 64 GiB EPYC config) stay cheap to model.
 *
 * Sharing is copy-on-write at two levels:
 *
 *  - Frames are reference-counted so snapshots can share them: a write
 *    to a frame whose refcount is > 1 clones it first, keeping forks
 *    O(dirty pages).
 *  - The frame *map* itself is reference-counted the same way: capture
 *    hands out the map by pointer, restore adopts it by pointer, and
 *    the first write after either clones the map (pointer copies only —
 *    no page bytes move). Snapshot capture/restore therefore costs O(1)
 *    until the machine actually dirties something.
 *
 * Sharing is not thread-safe across concurrent writers; snapshot stores
 * are strictly per-shard.
 */

#ifndef PHANTOM_MEM_PHYS_MEM_HPP
#define PHANTOM_MEM_PHYS_MEM_HPP

#include "sim/types.hpp"

#include <array>
#include <memory>
#include <unordered_map>
#include <vector>

namespace phantom::mem {

/**
 * Observer notified after each mutating call on PhysicalMemory, once
 * per public write (not per byte). Derived structures keyed by physical
 * bytes — the predecoded-instruction cache in src/cpu — invalidate on
 * this. adoptFrames() deliberately does NOT notify: it is the snapshot
 * restore path, and restore flushes derived state wholesale instead.
 */
struct PhysWriteListener
{
    virtual ~PhysWriteListener() = default;

    /** Bytes [@p pa, @p pa + @p len) were (possibly) modified. */
    virtual void onPhysWrite(PAddr pa, u64 len) = 0;
};

/**
 * Byte-addressable sparse physical memory of a fixed installed size.
 * Reads of untouched memory return zero.
 */
class PhysicalMemory
{
  public:
    using Frame = std::array<u8, kPageBytes>;
    using FrameMap = std::unordered_map<u64, std::shared_ptr<Frame>>;
    using FrameMapPtr = std::shared_ptr<const FrameMap>;

    /** @param installed_bytes total physical memory size (bounds checks). */
    explicit PhysicalMemory(u64 installed_bytes);

    u64 installedBytes() const { return installed_; }

    /** True if @p pa names an installed byte. */
    bool valid(PAddr pa) const { return pa < installed_; }

    u8 read8(PAddr pa) const;
    u64 read64(PAddr pa) const;
    void write8(PAddr pa, u8 value);
    void write64(PAddr pa, u64 value);

    /** Bulk copy into physical memory. */
    void writeBlock(PAddr pa, const std::vector<u8>& bytes);

    /** Bulk copy out of physical memory. */
    std::vector<u8> readBlock(PAddr pa, u64 length) const;

    /** Number of frames actually materialized (for tests). */
    std::size_t framesAllocated() const { return frames_->size(); }

    /**
     * The frame map by pointer — O(1), no copies. Both sides
     * subsequently copy-on-write the map (and any shared frame) before
     * mutating, so the returned snapshot is immutable.
     */
    FrameMapPtr shareFrames() const { return frames_; }

    /** Adopt @p frames wholesale (snapshot restore / fork) — O(1). */
    void
    adoptFrames(FrameMapPtr frames)
    {
        frames_ = std::const_pointer_cast<FrameMap>(std::move(frames));
    }

    /**
     * Install every frame of @p tpl (keyed by frame index relative to
     * page-aligned @p pa) as a copy-on-write shared mapping — O(frames)
     * pointer copies, no page bytes move. Used to stamp the immutable
     * boot-image template into freshly built machines; like
     * adoptFrames(), this is a construction-time bulk install and does
     * NOT notify the write listener. The template may be shared across
     * threads: its frames are only ever read (writers clone first).
     */
    void installSharedFrames(PAddr pa, const FrameMap& tpl);

    /** Frames currently shared with a snapshot (refcount > 1). */
    std::size_t framesShared() const;

    /** Install @p listener (non-owning; null detaches). */
    void setWriteListener(PhysWriteListener* listener)
    {
        writeListener_ = listener;
    }

  private:
    /** The frame holding @p pa, or null if untouched. Throws on
     *  uninstalled addresses. */
    const Frame* frameAt(PAddr pa) const;

    /** The frame map, cloned first if a snapshot still shares it. */
    FrameMap& mutableFrames();

    Frame* frameForWrite(PAddr pa);
    void poke(PAddr pa, u8 value);

    void
    notifyWrite(PAddr pa, u64 len)
    {
        if (writeListener_ != nullptr)
            writeListener_->onPhysWrite(pa, len);
    }

    u64 installed_;
    std::shared_ptr<FrameMap> frames_;
    PhysWriteListener* writeListener_ = nullptr;
};

} // namespace phantom::mem

#endif // PHANTOM_MEM_PHYS_MEM_HPP
